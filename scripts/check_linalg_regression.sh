#!/usr/bin/env bash
# Linalg kernel performance gate (run by CI).
#
# Reads a fresh bench_linalg_json report ($1, default
# results/BENCH_linalg_new.json — produce one with run_linalg_bench.sh)
# and fails (exit 1) when:
#
#   1. a machine-relative speedup floor is missed — the packed GEMM must
#      beat the reference GEMM by >= GEMM_MIN_SPEEDUP (default 2.0) and
#      the blocked randomized SVD must beat the reference composition by
#      >= RSVD_MIN_SPEEDUP (default 1.5); these ratios compare two runs
#      on the *same* machine, so they hold regardless of host speed; or
#   2. absolute GFLOP/s regressed by more than (1 - MIN_RATIO) against
#      the committed baseline (default MIN_RATIO=0.75, i.e. a >25% drop
#      fails). This check is skipped per-metric when the report's problem
#      sizes differ from the baseline's (CI smoke runs use smaller
#      sizes), and entirely when no baseline exists yet.
set -euo pipefail
cd "$(dirname "$0")/.."

NEW=${1:-results/BENCH_linalg_new.json}
BASELINE=${BASELINE:-results/BENCH_linalg.json}
GEMM_MIN_SPEEDUP=${GEMM_MIN_SPEEDUP:-2.0}
RSVD_MIN_SPEEDUP=${RSVD_MIN_SPEEDUP:-1.5}
MIN_RATIO=${MIN_RATIO:-0.75}

[ -f "$NEW" ] || { echo "no report at $NEW (run scripts/run_linalg_bench.sh $NEW)"; exit 1; }

# Extracts the value of a flat one-key-per-line JSON field.
field() { # field <file> <key>
    awk -F': ' -v k="\"$2\"" '$1 ~ k { gsub(/[ ,]/, "", $2); print $2; exit }' "$1"
}

fail=0

check_speedup() { # check_speedup <name> <key> <floor>
    local got floor=$3
    got=$(field "$NEW" "$2")
    [ -n "$got" ] || { echo "FAIL: $NEW has no $2"; fail=1; return; }
    if awk -v g="$got" -v f="$floor" 'BEGIN { exit !(g >= f) }'; then
        echo "ok: $1 speedup ${got}x >= ${floor}x"
    else
        echo "FAIL: $1 speedup ${got}x below floor ${floor}x"
        fail=1
    fi
}

check_speedup "packed gemm" gemm_speedup "$GEMM_MIN_SPEEDUP"
check_speedup "blocked rsvd" rsvd_speedup "$RSVD_MIN_SPEEDUP"

if [ -f "$BASELINE" ]; then
    check_gflops() { # check_gflops <name> <gflops_key> <size_keys...>
        local name=$1 key=$2; shift 2
        local sk
        for sk in "$@"; do
            if [ "$(field "$NEW" "$sk")" != "$(field "$BASELINE" "$sk")" ]; then
                echo "skip: $name baseline comparison ($sk differs from baseline)"
                return
            fi
        done
        local got base
        got=$(field "$NEW" "$key")
        base=$(field "$BASELINE" "$key")
        [ -n "$got" ] && [ -n "$base" ] || { echo "skip: $name ($key missing)"; return; }
        if awk -v g="$got" -v b="$base" -v r="$MIN_RATIO" 'BEGIN { exit !(g >= b * r) }'; then
            echo "ok: $name $got GFLOP/s vs baseline $base (floor ${MIN_RATIO}x)"
        else
            echo "FAIL: $name regressed to $got GFLOP/s, baseline $base (floor ${MIN_RATIO}x)"
            fail=1
        fi
    }
    # The packed-GEMM number depends on which SIMD tier the report ran
    # on, so it is only compared like-for-like (dispatch_tier must match
    # the baseline's); the forced-scalar number anchors cross-tier runs.
    check_gflops "packed gemm" gemm_packed_gflops gemm_m gemm_k gemm_n dispatch_tier
    check_gflops "hot gemm" gemm_hot_gflops gemm_hot_m gemm_k gemm_n dispatch_tier
    check_gflops "scalar gemm" gemm_scalar_gflops gemm_m gemm_k gemm_n
    check_gflops "panel qr" qr_panel_gflops qr_rows qr_cols dispatch_tier
    check_gflops "blocked rsvd" rsvd_blocked_gflops rsvd_n rsvd_rank dispatch_tier
else
    echo "no committed baseline at $BASELINE; speedup floors only"
fi

exit "$fail"
