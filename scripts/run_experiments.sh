#!/usr/bin/env bash
# Regenerates every table/figure of the paper (outputs under results/).
# Usage: scripts/run_experiments.sh [extra args passed to every binary]
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release -p lightne-bench
mkdir -p results
for b in exp_datasets exp_pbg exp_graphvite exp_oag exp_fig2_tradeoff \
         exp_table5_breakdown exp_ablation_memory exp_fig3_verylarge \
         exp_fig4_small exp_extensions; do
  echo "== $b =="
  ./target/release/$b "$@" | tee "results/$b.txt"
done
