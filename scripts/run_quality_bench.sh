#!/usr/bin/env bash
# Runs the embedding-quality scenario matrix (every generator profile ×
# both sparsifier probability schemes × classification / link prediction
# / structure preservation) and writes the flat JSON report to
# results/BENCH_quality.json (or $1 if given).
#
# Environment: TARGET_N (per-profile vertex count, default 4000) and
# PROFILES (comma-separated subset, default all nine) are passed through
# to the bench_quality_json binary; --seed/--dim use the
# committed-baseline defaults unless SEED/DIM are set.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-results/BENCH_quality.json}
SEED=${SEED:-42}
DIM=${DIM:-32}
mkdir -p "$(dirname "$OUT")"

cargo run --release -p lightne-bench --bin bench_quality_json -- \
    --seed "$SEED" --dim "$DIM" > "$OUT"
echo "wrote $OUT:"
cat "$OUT"
