#!/usr/bin/env bash
# End-to-end throughput gate (run by CI).
#
# Reads a fresh bench_e2e_json report ($1, default
# results/BENCH_e2e_new.json — produce one with run_e2e_bench.sh) and
# fails (exit 1) when:
#
#   1. the report is malformed (no embeddings_per_sec) or throughput is
#      below the absolute sanity floor MIN_EPS (default 1.0 — a pipeline
#      that embeds less than one vertex per second on any CI-sized input
#      is broken, not slow); or
#   2. embeddings/sec regressed by more than (1 - MIN_RATIO) against the
#      committed baseline (default MIN_RATIO=0.6 — e2e wall time is
#      noisier than kernel GFLOP/s, so the band is wider). This check is
#      skipped when any configuration key (profile, scale, dim, window,
#      sample_ratio, threads, or the SIMD dispatch tier) differs from
#      the baseline's — CI smoke runs use smaller profiles — and
#      entirely when no baseline exists yet.
set -euo pipefail
cd "$(dirname "$0")/.."

NEW=${1:-results/BENCH_e2e_new.json}
BASELINE=${BASELINE:-results/BENCH_e2e.json}
MIN_EPS=${MIN_EPS:-1.0}
MIN_RATIO=${MIN_RATIO:-0.6}

[ -f "$NEW" ] || { echo "no report at $NEW (run scripts/run_e2e_bench.sh $NEW)"; exit 1; }

# Extracts the value of a flat one-key-per-line JSON field.
field() { # field <file> <key>
    awk -F': ' -v k="\"$2\"" '$1 ~ k { gsub(/[ ,]/, "", $2); print $2; exit }' "$1"
}

fail=0

eps=$(field "$NEW" embeddings_per_sec)
[ -n "$eps" ] || { echo "FAIL: $NEW has no embeddings_per_sec"; exit 1; }
if awk -v g="$eps" -v f="$MIN_EPS" 'BEGIN { exit !(g >= f) }'; then
    echo "ok: $eps embeddings/sec >= sanity floor $MIN_EPS"
else
    echo "FAIL: $eps embeddings/sec below sanity floor $MIN_EPS"
    fail=1
fi

if [ -f "$BASELINE" ]; then
    skip=""
    for sk in profile scale dim window sample_ratio threads simd_tier; do
        if [ "$(field "$NEW" "$sk")" != "$(field "$BASELINE" "$sk")" ]; then
            skip="$sk"
            break
        fi
    done
    if [ -n "$skip" ]; then
        echo "skip: baseline comparison ($skip differs from baseline)"
    else
        base=$(field "$BASELINE" embeddings_per_sec)
        if awk -v g="$eps" -v b="$base" -v r="$MIN_RATIO" 'BEGIN { exit !(g >= b * r) }'; then
            echo "ok: $eps embeddings/sec vs baseline $base (floor ${MIN_RATIO}x)"
        else
            echo "FAIL: throughput regressed to $eps embeddings/sec, baseline $base (floor ${MIN_RATIO}x)"
            fail=1
        fi
    fi
else
    echo "no committed baseline at $BASELINE; sanity floor only"
fi

exit "$fail"
