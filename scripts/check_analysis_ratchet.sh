#!/usr/bin/env bash
# Whole-program analysis ratchet (run by CI).
#
# Reads a fresh `cargo xtask analyze --json` report ($1, default
# results/ANALYSIS_new.json) and fails (exit 1) when:
#
#   1. any hard-zero gate is nonzero — taint_unjustified,
#      panic_unjustified, and directive_errors must all be 0 (the
#      analyze exit code enforces this too; checking here keeps the
#      ratchet self-contained); or
#   2. a ratcheted count grew above the committed baseline
#      (results/ANALYSIS_baseline.json). The ratchet is monotone
#      downward: panic_justified, slice_index, int_div, assert_sites,
#      panic_vendor_exempt, and unsafe_reach_apis may shrink freely but
#      may only grow by editing the baseline in the same PR — which
#      makes every new panic site, vendored waiver, or unsafe-reaching
#      API a reviewed, deliberate change rather than silent drift.
#
# taint_justified is reported but not ratcheted: converting an
# unjustified source into a justified one is progress even though the
# justified count rises.
set -euo pipefail
cd "$(dirname "$0")/.."

NEW=${1:-results/ANALYSIS_new.json}
BASELINE=${BASELINE:-results/ANALYSIS_baseline.json}

[ -f "$NEW" ] || { echo "no report at $NEW (run: cargo xtask analyze --json > $NEW)"; exit 1; }

# Extracts the value of a flat one-key-per-line JSON field.
field() { # field <file> <key>
    awk -F': ' -v k="\"$2\"" '$1 ~ k { gsub(/[ ,]/, "", $2); print $2; exit }' "$1"
}

fail=0

check_zero() { # check_zero <key>
    local got
    got=$(field "$NEW" "$1")
    [ -n "$got" ] || { echo "FAIL: $NEW has no $1"; fail=1; return; }
    if [ "$got" = "0" ]; then
        echo "ok: $1 = 0"
    else
        echo "FAIL: $1 = $got (must be 0)"
        fail=1
    fi
}

check_zero taint_unjustified
check_zero panic_unjustified
check_zero directive_errors

if [ -f "$BASELINE" ]; then
    check_ratchet() { # check_ratchet <key>
        local got base
        got=$(field "$NEW" "$1")
        base=$(field "$BASELINE" "$1")
        [ -n "$got" ] || { echo "FAIL: $NEW has no $1"; fail=1; return; }
        [ -n "$base" ] || { echo "FAIL: baseline has no $1 (schema drift?)"; fail=1; return; }
        if [ "$got" -le "$base" ]; then
            echo "ok: $1 $got <= baseline $base"
        else
            echo "FAIL: $1 grew to $got, baseline $base — justify the new sites and"
            echo "      update results/ANALYSIS_baseline.json in the same PR"
            fail=1
        fi
    }
    check_ratchet panic_justified
    check_ratchet slice_index
    check_ratchet int_div
    check_ratchet assert_sites
    check_ratchet panic_vendor_exempt
    check_ratchet unsafe_reach_apis
else
    echo "no committed baseline at $BASELINE; hard-zero gates only"
fi

exit "$fail"
