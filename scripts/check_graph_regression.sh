#!/usr/bin/env bash
# Graph-format compression/decode gate (run by CI).
#
# Reads a fresh bench_graph_json report ($1, default
# results/BENCH_graph_new.json — produce one with run_graph_bench.sh)
# and fails (exit 1) when:
#
#   1. a machine-independent floor is missed — the best v2 codec must
#      compress to <= BITS_MAX_RATIO of v1's bits/edge (default 0.8) and
#      sequentially decode within DECODE_MAX_SLOWDOWN of v1 (default
#      2.0); both are ratios of two measurements on the *same* machine
#      and graph, so they hold regardless of host speed; or
#   2. bits/edge regressed against the committed baseline by more than
#      BITS_TOLERANCE (default 2%). The encoding is deterministic in
#      (profile, scale, seed), so this check is skipped per-report when
#      those keys differ from the baseline's (CI smoke runs use smaller
#      scales), and entirely when no baseline exists yet.
set -euo pipefail
cd "$(dirname "$0")/.."

NEW=${1:-results/BENCH_graph_new.json}
BASELINE=${BASELINE:-results/BENCH_graph.json}
BITS_MAX_RATIO=${BITS_MAX_RATIO:-0.8}
DECODE_MAX_SLOWDOWN=${DECODE_MAX_SLOWDOWN:-2.0}
BITS_TOLERANCE=${BITS_TOLERANCE:-1.02}

[ -f "$NEW" ] || { echo "no report at $NEW (run scripts/run_graph_bench.sh $NEW)"; exit 1; }

# Extracts the value of a flat one-key-per-line JSON field.
field() { # field <file> <key>
    awk -F': ' -v k="\"$2\"" '$1 ~ k { gsub(/[ ,"]/, "", $2); print $2; exit }' "$1"
}

fail=0

check_max() { # check_max <name> <key> <ceiling>
    local got ceiling=$3
    got=$(field "$NEW" "$2")
    [ -n "$got" ] || { echo "FAIL: $NEW has no $2"; fail=1; return; }
    if awk -v g="$got" -v c="$ceiling" 'BEGIN { exit !(g <= c) }'; then
        echo "ok: $1 $got <= $ceiling"
    else
        echo "FAIL: $1 $got above ceiling $ceiling"
        fail=1
    fi
}

check_max "v2/v1 bits ratio (best codec $(field "$NEW" v2_best_codec))" \
    bits_ratio_best "$BITS_MAX_RATIO"
check_max "v2 sequential decode slowdown" seq_slowdown_best "$DECODE_MAX_SLOWDOWN"

if [ -f "$BASELINE" ]; then
    same=1
    for sk in profile scale seed n arcs; do
        if [ "$(field "$NEW" "$sk")" != "$(field "$BASELINE" "$sk")" ]; then
            echo "skip: baseline comparison ($sk differs from baseline)"
            same=0
            break
        fi
    done
    if [ "$same" = 1 ]; then
        got=$(field "$NEW" v2_best_bits_per_edge)
        base=$(field "$BASELINE" v2_best_bits_per_edge)
        if awk -v g="$got" -v b="$base" -v t="$BITS_TOLERANCE" 'BEGIN { exit !(g <= b * t) }'; then
            echo "ok: best v2 bits/edge $got vs baseline $base (tolerance ${BITS_TOLERANCE}x)"
        else
            echo "FAIL: best v2 bits/edge regressed to $got, baseline $base"
            fail=1
        fi
    fi
else
    echo "no committed baseline at $BASELINE; ratio floors only"
fi

exit "$fail"
