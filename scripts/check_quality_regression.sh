#!/usr/bin/env bash
# Embedding-quality gate (run by CI).
#
# Reads a fresh bench_quality_json report ($1, default
# results/BENCH_quality_new.json — produce one with run_quality_bench.sh)
# and fails (exit 1) when:
#
#   1. any scenario's primary metric in the new report drops below the
#      floor committed in the baseline (floors are measured value minus a
#      statistical margin, so identical-config runs always pass). Floors
#      for scenarios absent from the new report (a PROFILES subset run)
#      are skipped; floor comparison is skipped entirely when the
#      matrix configuration keys differ from the baseline's; or
#   2. the report covers the full matrix but the PSNE probability scheme
#      fails to match or beat the degree scheme on at least one scenario
#      (the head-to-head claim the trajectory exists to defend).
set -euo pipefail
cd "$(dirname "$0")/.."

NEW=${1:-results/BENCH_quality_new.json}
BASELINE=${BASELINE:-results/BENCH_quality.json}

[ -f "$NEW" ] || { echo "no report at $NEW (run scripts/run_quality_bench.sh $NEW)"; exit 1; }

# Extracts the value of a flat one-key-per-line JSON field.
field() { # field <file> <key>
    awk -F': ' -v k="\"$2\"" '$1 ~ k { gsub(/[ ,"]/, "", $2); print $2; exit }' "$1"
}

fail=0

if [ "$(field "$NEW" full_matrix)" = 1 ]; then
    wins=$(field "$NEW" psne_win_scenarios)
    if [ -n "$wins" ] && [ "$wins" -ge 1 ]; then
        echo "ok: psne >= degree on $wins scenario(s)"
    else
        echo "FAIL: psne beats degree on no scenario (psne_win_scenarios=$wins)"
        fail=1
    fi
fi

if [ -f "$BASELINE" ]; then
    same=1
    for sk in target_n dim window sample_ratio train_ratio holdout negatives pairs seed; do
        if [ "$(field "$NEW" "$sk")" != "$(field "$BASELINE" "$sk")" ]; then
            echo "skip: floor comparison ($sk differs from baseline)"
            same=0
            break
        fi
    done
    if [ "$same" = 1 ]; then
        checked=0
        while read -r key floor; do
            got=$(field "$NEW" "$key")
            [ -n "$got" ] || continue # scenario not in this (subset) run
            checked=$((checked + 1))
            if awk -v g="$got" -v f="$floor" 'BEGIN { exit !(g >= f) }'; then
                echo "ok: $key $got >= floor $floor"
            else
                echo "FAIL: $key dropped to $got, floor $floor"
                fail=1
            fi
        done < <(awk -F': ' '/"floor_/ {
            k = $1; gsub(/[ "]/, "", k); sub(/^floor_/, "", k)
            v = $2; gsub(/[ ,]/, "", v)
            print k, v
        }' "$BASELINE")
        if [ "$checked" = 0 ]; then
            echo "FAIL: no scenario of the new report matches a baseline floor"
            fail=1
        fi
    fi
else
    echo "no committed baseline at $BASELINE; psne head-to-head check only"
fi

exit "$fail"
