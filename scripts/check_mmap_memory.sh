#!/usr/bin/env bash
# Out-of-core loading gate (run by CI).
#
# Runs the same embedding twice from one v2 container — once loaded fully
# into memory, once memory-mapped with --mmap — and fails (exit 1) unless:
#
#   1. the two embeddings are byte-identical (the GraphAccess abstraction
#      must not leak into the numerics);
#   2. the in-memory run charges the container to the sparsify stage
#      (graph_bytes > 0) while the mmap run charges nothing (pages belong
#      to the page cache, not the heap); and
#   3. the mmap run's peak per-stage heap is strictly below the in-memory
#      run's — the point of out-of-core loading.
#
# Peaks come from the --stats-json per-stage heap accounting, the same
# numbers check_memory_regression.sh budgets; every contributor is
# deterministic in the seed, so a violation is a regression, not noise.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE=${SCALE:-0.0002}
SEED=${SEED:-42}
BIN=${BIN:-target/release/lightne}
[ -x "$BIN" ] || cargo build --release

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$BIN" generate --profile oag --scale "$SCALE" --seed "$SEED" --out "$TMP/g.lne"
"$BIN" compress --graph "$TMP/g.lne" --out "$TMP/g.lng2"
"$BIN" embed --graph "$TMP/g.lng2" --out "$TMP/owned.txt" --seed "$SEED" \
    --stats-json "$TMP/owned.json"
"$BIN" embed --graph "$TMP/g.lng2" --mmap --out "$TMP/mapped.txt" --seed "$SEED" \
    --stats-json "$TMP/mapped.json"

if ! cmp -s "$TMP/owned.txt" "$TMP/mapped.txt"; then
    echo "FAIL: --mmap embedding differs from the in-memory v2 embedding"
    exit 1
fi
echo "ok: embeddings byte-identical (in-memory v2 vs --mmap)"

# Largest value of a "key": N field across the per-stage records.
peak() { # peak <file> <key>
    grep -o "\"$2\": [0-9]*" "$1" | awk '{ if ($2 + 0 > m) m = $2 + 0 } END { print m + 0 }'
}

owned_graph=$(peak "$TMP/owned.json" graph_bytes)
mapped_graph=$(peak "$TMP/mapped.json" graph_bytes)
if [ "$owned_graph" -le 0 ] || [ "$mapped_graph" -ne 0 ]; then
    echo "FAIL: graph_bytes accounting (owned $owned_graph, mapped $mapped_graph)"
    exit 1
fi
echo "ok: graph_bytes owned $owned_graph, mapped 0"

owned_peak=$(peak "$TMP/owned.json" heap_bytes)
mapped_peak=$(peak "$TMP/mapped.json" heap_bytes)
if [ "$mapped_peak" -ge "$owned_peak" ]; then
    echo "FAIL: --mmap peak heap $mapped_peak not below in-memory peak $owned_peak"
    exit 1
fi
echo "ok: peak heap mapped $mapped_peak < owned $owned_peak"
