#!/usr/bin/env bash
# Measures the register-blocked linalg kernels against the reference
# (pre-blocking) implementations and writes the flat JSON report to
# results/BENCH_linalg.json (or $1 if given).
#
# Environment: REPS (timing repetitions, default 3) and the problem-size
# knobs GEMM_M / QR_ROWS / JACOBI_N / RSVD_N are passed through to the
# bench_linalg_json binary; defaults are the full committed-baseline
# sizes. LIGHTNE_SIMD caps the dispatch tier. NATIVE=1 selects the
# opt-in `-C target-cpu=native` bench profile the committed baselines
# are measured under (it accelerates the scalar tier and the reference
# kernels; the SIMD tiers are ISA-pinned by #[target_feature] either
# way — correctness never depends on it).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-results/BENCH_linalg.json}
mkdir -p "$(dirname "$OUT")"

if [ "${NATIVE:-0}" = "1" ]; then
    export RUSTFLAGS="${RUSTFLAGS:-} -C target-cpu=native"
fi
cargo run --release -p lightne-bench --bin bench_linalg_json > "$OUT"
echo "wrote $OUT:"
cat "$OUT"
