#!/usr/bin/env bash
# Measures end-to-end pipeline throughput (embeddings/sec plus the
# per-stage breakdown) and writes the flat JSON report to
# results/BENCH_e2e.json (or $1 if given).
#
# Environment: PROFILE / SCALE / REPS / DIM / WINDOW / RATIO / SEED /
# THREADS / PIN_SHARDS are passed through to the bench_e2e_json binary
# (defaults are the committed-baseline configuration: the largest
# generator profile at a scale that fits CI). LIGHTNE_SIMD caps the
# kernel dispatch tier. NATIVE=1 selects the opt-in
# `-C target-cpu=native` bench profile the committed baselines are
# measured under.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-results/BENCH_e2e.json}
mkdir -p "$(dirname "$OUT")"

if [ "${NATIVE:-0}" = "1" ]; then
    export RUSTFLAGS="${RUSTFLAGS:-} -C target-cpu=native"
fi
cargo run --release -p lightne-bench --bin bench_e2e_json > "$OUT"
echo "wrote $OUT:"
cat "$OUT"
