#!/usr/bin/env bash
# Small-graph peak-memory regression gate (run by CI).
#
# Runs the Section 5.2.4 memory ablation on the tiny OAG profile and fails
# (exit 1) if the pipeline's peak per-stage heap — as recorded in RunStats
# and printed by the binary — exceeds the committed budget.
#
# Committed baseline: 16.00 MiB peak (the sparsifier hash-table capacity,
# a power of two) at scale 0.000035 / seed 42. The budget below allows the
# next doubling step plus nothing more: a change that grows any stage past
# 24 MiB on this profile is a memory regression, not noise, because every
# contributor to the peak is deterministic in the seed.
set -euo pipefail
cd "$(dirname "$0")/.."

BUDGET_BYTES=${BUDGET_BYTES:-25165824} # 24 MiB = 1.5x the 16 MiB baseline
SCALE=${SCALE:-0.000035}

cargo run --release -p lightne-bench --bin exp_ablation_memory -- \
    --scale "$SCALE" --check-peak-bytes "$BUDGET_BYTES"
