#!/usr/bin/env bash
# Measures v2 graph containers (per codec) against the v1 parallel-byte
# format — bits/edge and sequential/random decode throughput — and writes
# the flat JSON report to results/BENCH_graph.json (or $1 if given).
#
# Environment: PROFILE (dataset profile name, default friendster) and
# RAND_PROBES (random-access probe count) are passed through to the
# bench_graph_json binary; --scale/--seed use the committed-baseline
# defaults unless SCALE/SEED are set.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-results/BENCH_graph.json}
SCALE=${SCALE:-0.001}
SEED=${SEED:-42}
mkdir -p "$(dirname "$OUT")"

cargo run --release -p lightne-bench --bin bench_graph_json -- \
    --scale "$SCALE" --seed "$SEED" > "$OUT"
echo "wrote $OUT:"
cat "$OUT"
