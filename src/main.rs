//! `lightne` — command-line interface to the LightNE reproduction.
//!
//! ```text
//! lightne generate --profile oag --scale 0.0001 --out graph.lne [--seed N]
//! lightne compress --graph graph.lne --out graph.lng2 [--codec C]
//!                  [--block-size B]
//! lightne stats    --graph graph.lne
//! lightne embed    --graph graph.lne --out emb.txt [--dim D] [--window T]
//!                  [--ratio R] [--no-downsample] [--sparsify-prob degree|psne]
//!                  [--no-propagation]
//!                  [--weighted] [--seed N] [--shards N] [--global-table]
//!                  [--pin-shards]
//!                  [--graph-format csr|v1|v2] [--codec C] [--block-size B]
//!                  [--mmap] [--save-artifacts DIR] [--resume-from DIR]
//!                  [--strict-resume] [--stats-json PATH]
//! lightne classify --graph graph.lne --labels graph.lne.labels
//!                  --embedding emb.txt [--train-ratio F] [--seed N]
//! lightne linkpred --graph graph.lne [--holdout F] [--dim D] [--window T]
//!                  [--ratio R] [--negatives K] [--seed N]
//! lightne quality  [--profiles a,b,..] [--target-n N] [--dim D] [--seed N]
//! ```
//!
//! `--threads N` (any command) sizes the rayon worker pool (0 = one per
//! core). Graphs ending in `.lne` use the binary CSR format and graphs
//! ending in `.lng2` the compressed v2 container (written by `compress`;
//! codecs: `arice` (default, per-block adaptive Golomb–Rice), `gamma`,
//! `delta`, `zeta1`..`zeta8`, `rice0`..`rice31`, `unary`); anything else is
//! parsed as a text edge list (`--weighted` expects `u v w` lines).
//! `generate` writes `<out>.labels` alongside classification profiles.
//!
//! `embed` consumes a `.lng2` container directly — decoded on the fly,
//! and with `--mmap` memory-mapped out-of-core so the adjacency never
//! touches the heap; `--graph-format v1|v2` instead recompresses an
//! uncompressed input in memory. Embeddings are byte-identical across
//! all formats.
//!
//! `embed` can checkpoint each stage's output (`--save-artifacts DIR`
//! writes the sparsifier COO, NetMF matrix, and initial embedding) and
//! resume a later run from the deepest artifact found (`--resume-from
//! DIR`); `--stats-json PATH` dumps the per-stage wall time, counters,
//! and peak heap bytes. `--shards N` sets the shard count of the
//! vertex-range-sharded aggregation path (0 = automatic), and
//! `--global-table` forces the legacy single-table path; output bytes are
//! identical either way. `--pin-shards` pins rayon workers to cores for
//! the sample→aggregate stage (off by default; scheduling only, output
//! bytes unchanged). The numeric kernels pick their SIMD tier at runtime
//! (`LIGHTNE_SIMD=scalar|avx2|avx512` caps it); the chosen tier and the
//! detected feature set are printed and recorded in `--stats-json`. The
//! implementation lives in [`lightne::cli`].
//!
//! `--sparsify-prob` (embed/linkpred) selects the sparsifier's
//! edge-survival probability scheme: `degree` (the paper's
//! `C·(1/d_u + 1/d_v)` bound, default) or `psne` (sharpened by the
//! common-neighbour conductance bound, never looser). `quality` runs the
//! embedding-quality scenario matrix — every generator profile (or a
//! `--profiles` subset) × both schemes × classification / link
//! prediction / structure preservation — and prints one primary metric
//! per cell plus the PSNE-vs-degree head-to-head count; the committed
//! `results/BENCH_quality.json` trajectory and its CI gate use the same
//! matrix via the `bench_quality_json` binary.
//!
//! On resume, artifacts are validated against a per-file checksum
//! manifest; corrupt or uncommitted files are skipped and the run
//! degrades to the deepest stage that is still trustworthy.
//! `--strict-resume` turns any invalid artifact into a hard error
//! instead. In builds with the `failpoints` feature, `--fail-point
//! point=action` (or the `LIGHTNE_FAIL_POINTS` environment variable)
//! arms deterministic fault injection for crash testing; actions are
//! `io-error`, `truncate:N`, `bitflip:SEED`, and `panic`.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    match lightne::cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: lightne <generate|compress|stats|embed|classify|linkpred|quality> [options]\n\
                 see the README or `src/main.rs` for the option list"
            );
            ExitCode::FAILURE
        }
    }
}
