//! Implementation of the `lightne` command-line interface.
//!
//! Kept in the library so the full command flows are unit-testable; the
//! binary in `main.rs` is a thin shim. See the binary's module docs for
//! the command reference.

use crate::core::{LightNe, LightNeConfig, RunOptions};
use crate::eval::classify::evaluate_node_classification;
use crate::eval::linkpred::{rank_held_out, split_edges};
use crate::eval::scenario::{psne_wins, run_matrix, MatrixConfig};
use crate::gen::labels::{read_labels, write_labels};
use crate::gen::profiles::Profile;
use crate::graph::algorithms::graph_stats;
use crate::graph::io::{read_binary, read_edge_list, read_weighted_edge_list, write_binary};
use crate::graph::v2::V2_EXTENSION;
use crate::graph::{Codec, CompressedGraph, Graph, V2Graph};
use crate::linalg::matio::{read_matrix, write_matrix};
use crate::sparsifier::ProbScheme;
use std::collections::BTreeMap;

/// Minimal `--key value` / `--flag` parser.
pub struct Opts {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Opts {
    /// Parses an argument list (without the command word).
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut values = BTreeMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got {:?}", args[i]))?;
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                values.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(Self { values, flags })
    }

    /// Looks up an option's value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Requires an option to be present.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required --{key}"))
    }

    /// Parses an option with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| format!("bad value for --{key}: {s:?}")),
        }
    }

    /// Whether a bare `--flag` was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn is_v2_container(path: &str) -> bool {
    path.ends_with(&format!(".{V2_EXTENSION}"))
}

fn load_graph(path: &str) -> Result<Graph, String> {
    if is_v2_container(path) {
        let v2 = V2Graph::open(path.as_ref()).map_err(|e| format!("reading {path}: {e}"))?;
        Ok(v2.decompress())
    } else if path.ends_with(".lne") {
        read_binary(path).map_err(|e| format!("reading {path}: {e}"))
    } else {
        read_edge_list(path, 0).map_err(|e| format!("reading {path}: {e}"))
    }
}

fn load_v2(path: &str, mmap: bool) -> Result<V2Graph, String> {
    let r = if mmap { V2Graph::open_mmap(path.as_ref()) } else { V2Graph::open(path.as_ref()) };
    r.map_err(|e| format!("reading {path}: {e}"))
}

fn codec_opt(o: &Opts) -> Result<Codec, String> {
    let name = o.get("codec").unwrap_or("arice");
    Codec::parse(name).ok_or_else(|| {
        format!("unknown --codec {name:?} (arice, unary, gamma, delta, zeta1.., rice0..)")
    })
}

/// Resolves a dataset profile by (case-insensitive) name.
pub fn profile_by_name(name: &str) -> Result<Profile, String> {
    Profile::ALL
        .into_iter()
        .find(|p| {
            p.name().eq_ignore_ascii_case(name)
                || p.name().replace('-', "_").eq_ignore_ascii_case(name)
        })
        .ok_or_else(|| {
            let names: Vec<_> = Profile::ALL.iter().map(|p| p.name()).collect();
            format!("unknown profile {name:?}; options: {}", names.join(", "))
        })
}

fn prob_scheme_opt(o: &Opts) -> Result<ProbScheme, String> {
    let name = o.get("sparsify-prob").unwrap_or("degree");
    ProbScheme::parse(name)
        .ok_or_else(|| format!("unknown --sparsify-prob {name:?} (degree, psne)"))
}

fn lightne_config(o: &Opts) -> Result<LightNeConfig, String> {
    Ok(LightNeConfig {
        dim: o.num("dim", 128usize)?,
        window: o.num("window", 10usize)?,
        sample_ratio: o.num("ratio", 1.0f64)?,
        downsample: !o.flag("no-downsample"),
        prob: prob_scheme_opt(o)?,
        propagation: if o.flag("no-propagation") { None } else { Some(Default::default()) },
        seed: o.num("seed", 42u64)?,
        shards: o.num("shards", 0usize)?,
        global_table: o.flag("global-table"),
        pin_shards: o.flag("pin-shards"),
        ..Default::default()
    })
}

/// Runs one CLI invocation; `args` is everything after the program name.
/// Human-readable output goes through `out` so tests can capture it.
pub fn run(args: &[String], out: &mut dyn std::io::Write) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("no command given".into());
    };
    let o = Opts::parse(&args[1..])?;
    // Size the rayon pool before any parallel stage runs (global: applies
    // to every command). 0 = one worker per available core.
    if let Some(n) = o.get("threads") {
        let n: usize = n.parse().map_err(|_| format!("bad value for --threads: {n:?}"))?;
        crate::utils::parallel::configure_threads(n);
    }
    // Deterministic fault injection for crash testing. Both routes error
    // in builds without the `failpoints` feature, where the hooks are
    // compiled out — a silently ignored fault spec would make a crash
    // test vacuously pass.
    crate::utils::faults::arm_from_env()?;
    if let Some(spec) = o.get("fail-point") {
        crate::utils::faults::arm_spec(spec)?;
    }
    let mut say = |s: String| writeln!(out, "{s}").map_err(|e| e.to_string());

    match cmd.as_str() {
        "generate" => {
            let profile = profile_by_name(o.require("profile")?)?;
            let scale: f64 = o.num("scale", 0.001)?;
            let seed: u64 = o.num("seed", 42)?;
            let out_path = o.require("out")?;
            let data = profile.generate(scale, seed);
            write_binary(&data.graph, out_path).map_err(|e| e.to_string())?;
            say(data.stats_row())?;
            say(format!("wrote {out_path}"))?;
            if let Some(labels) = &data.labels {
                let lpath = format!("{out_path}.labels");
                write_labels(labels, &lpath).map_err(|e| e.to_string())?;
                say(format!("wrote {lpath} ({} classes)", labels.num_labels()))?;
            }
            Ok(())
        }
        "compress" => {
            let g = load_graph(o.require("graph")?)?;
            let out_path = o.require("out")?;
            if !is_v2_container(out_path) {
                return Err(format!("--out must end in .{V2_EXTENSION}"));
            }
            let codec = codec_opt(&o)?;
            let block_size: usize = o.num("block-size", 64)?;
            V2Graph::write(&g, codec, block_size, out_path.as_ref())
                .map_err(|e| format!("writing {out_path}: {e}"))?;
            let v2 = load_v2(out_path, false)?;
            let arcs = v2.num_arcs().max(1);
            say(format!(
                "wrote {out_path}: {} vertices, {} arcs, codec {}, block size {}",
                v2.num_vertices(),
                v2.num_arcs(),
                codec.name(),
                block_size
            ))?;
            say(format!(
                "container {} bytes ({:.3} bits/edge adjacency, {:.3} bits/edge total)",
                v2.container_bytes(),
                v2.arena_bytes() as f64 * 8.0 / arcs as f64,
                v2.container_bytes() as f64 * 8.0 / arcs as f64
            ))?;
            Ok(())
        }
        "stats" => {
            let g = load_graph(o.require("graph")?)?;
            let s = graph_stats(&g);
            say(format!("vertices           {}", s.vertices))?;
            say(format!("edges              {}", s.edges))?;
            say(format!("max degree         {}", s.max_degree))?;
            say(format!("avg degree         {:.2}", s.avg_degree))?;
            say(format!("components         {}", s.components))?;
            say(format!("largest component  {}", s.largest_component))?;
            say(format!("triangles          {}", s.triangles))?;
            say(format!("degeneracy         {}", s.degeneracy))?;
            Ok(())
        }
        "embed" => {
            let path = o.require("graph")?;
            let out_path = o.require("out")?;
            let cfg = lightne_config(&o)?;
            let opts = RunOptions {
                save_artifacts: o.get("save-artifacts").map(Into::into),
                resume_from: o.get("resume-from").map(Into::into),
                strict_resume: o.flag("strict-resume"),
                progress: None,
            };
            let format = o.get("graph-format").unwrap_or("csr");
            let use_mmap = o.flag("mmap");
            let engine = LightNe::new(cfg);
            let result = if o.flag("weighted") {
                let g = read_weighted_edge_list(path, 0).map_err(|e| e.to_string())?;
                engine.embed_weighted_with(&g, opts)
            } else if is_v2_container(path) {
                // A v2 container is consumed directly — decoded on the fly
                // (zero-copy from the page cache under --mmap), never
                // expanded back to CSR.
                let g = load_v2(path, use_mmap)?;
                say(format!(
                    "graph: v2 container, codec {}, {} resident bytes",
                    g.codec().name(),
                    g.resident_bytes()
                ))?;
                engine.embed_with(&g, opts)
            } else {
                if use_mmap {
                    return Err(format!(
                        "--mmap needs a .{V2_EXTENSION} container; run `compress` first"
                    ));
                }
                let g = load_graph(path)?;
                match format {
                    "csr" => engine.embed_with(&g, opts),
                    "v1" => engine.embed_with(&CompressedGraph::from_graph(&g), opts),
                    "v2" => {
                        let block_size: usize = o.num("block-size", 64)?;
                        let v2 =
                            V2Graph::from_graph_with_block_size(&g, codec_opt(&o)?, block_size);
                        engine.embed_with(&v2, opts)
                    }
                    other => return Err(format!("unknown --graph-format {other:?} (csr, v1, v2)")),
                }
            }
            .map_err(|e| e.to_string())?;
            write_matrix(&result.embedding, out_path).map_err(|e| e.to_string())?;
            say(format!("{}", result.timings))?;
            say(format!("threads: {}", result.stats.threads))?;
            say(format!(
                "simd: {} tier (detected: {}){}",
                result.stats.simd_tier,
                result.stats.simd_features,
                if result.stats.pinned { "; workers pinned" } else { "" }
            ))?;
            say(format!(
                "sampler: {} trials, {} kept, {} distinct; NetMF nnz {}",
                result.sampler.trials,
                result.sampler.kept,
                result.sampler.distinct_entries,
                result.netmf_nnz
            ))?;
            if let Some(stats_path) = o.get("stats-json") {
                std::fs::write(stats_path, result.stats.to_json())
                    .map_err(|e| format!("writing {stats_path}: {e}"))?;
                say(format!("wrote {stats_path}"))?;
            }
            say(format!(
                "wrote {out_path} ({} x {})",
                result.embedding.rows(),
                result.embedding.cols()
            ))?;
            Ok(())
        }
        "classify" => {
            let g = load_graph(o.require("graph")?)?;
            let labels = read_labels(o.require("labels")?).map_err(|e| e.to_string())?;
            let emb = read_matrix(o.require("embedding")?).map_err(|e| e.to_string())?;
            if emb.rows() != g.num_vertices() {
                return Err(format!(
                    "embedding has {} rows but graph has {} vertices",
                    emb.rows(),
                    g.num_vertices()
                ));
            }
            let ratio: f64 = o.num("train-ratio", 0.1)?;
            let seed: u64 = o.num("seed", 42)?;
            let f1 = evaluate_node_classification(&emb, &labels, ratio, seed);
            say(format!(
                "train ratio {:.1}%  micro-F1 {:.2}  macro-F1 {:.2}",
                100.0 * ratio,
                f1.micro,
                f1.macro_
            ))?;
            Ok(())
        }
        "linkpred" => {
            let g = load_graph(o.require("graph")?)?;
            let holdout: f64 = o.num("holdout", 0.01)?;
            let negatives: usize = o.num("negatives", 100)?;
            let seed: u64 = o.num("seed", 42)?;
            let mut cfg = lightne_config(&o)?;
            cfg.propagation = None; // ranking task: factorization embedding
            let (train, held) = split_edges(&g, holdout, seed + 1);
            say(format!(
                "held out {} positives; training on {} edges",
                held.len(),
                train.num_edges()
            ))?;
            let result = LightNe::new(cfg).embed(&train);
            let m = rank_held_out(&result.embedding, &held, negatives, &[1, 10, 50], seed + 2);
            say(format!("MR {:.2}  MRR {:.3}  AUC {:.1}%", m.mr, m.mrr, 100.0 * m.auc))?;
            for (k, v) in &m.hits {
                say(format!("HITS@{k:<3} {:.1}%", 100.0 * v))?;
            }
            Ok(())
        }
        "quality" => {
            // The scenario matrix: every requested profile × both
            // probability schemes × classify / linkpred / structure.
            let cfg = MatrixConfig {
                target_n: o.num("target-n", 4_000usize)?,
                dim: o.num("dim", 32usize)?,
                seed: o.num("seed", 0x51u64)?,
                ..Default::default()
            };
            let profiles: Vec<Profile> = match o.get("profiles") {
                None => Profile::ALL.to_vec(),
                Some(list) => {
                    list.split(',').map(profile_by_name).collect::<Result<Vec<_>, _>>()?
                }
            };
            say(format!("{:<18} {:<10} {:<7} {:>9}", "profile", "task", "scheme", "primary"))?;
            let results = run_matrix(&profiles, &cfg);
            for r in &results {
                say(format!(
                    "{:<18} {:<10} {:<7} {:>9.4}",
                    r.profile,
                    r.task.name(),
                    r.scheme.name(),
                    r.primary
                ))?;
            }
            say(format!(
                "psne >= degree on {}/{} (profile, task) pairs",
                psne_wins(&results),
                results.len() / 2
            ))?;
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn run_capture(args: &[&str]) -> Result<String, String> {
        let mut buf = Vec::new();
        run(&argv(args), &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("lightne_cli_{}_{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn opts_values_and_flags() {
        let o = Opts::parse(&argv(&["--dim", "32", "--no-propagation", "--seed", "7"])).unwrap();
        assert_eq!(o.get("dim"), Some("32"));
        assert!(o.flag("no-propagation"));
        assert!(!o.flag("no-downsample"));
        assert_eq!(o.num("seed", 0u64).unwrap(), 7);
        assert_eq!(o.num("window", 10usize).unwrap(), 10);
        assert!(o.require("missing").is_err());
        assert!(o.num::<u64>("dim", 0).is_ok());
    }

    #[test]
    fn opts_rejects_positional() {
        assert!(Opts::parse(&argv(&["positional"])).is_err());
    }

    #[test]
    fn profile_lookup_is_forgiving() {
        assert_eq!(profile_by_name("oag").unwrap(), Profile::Oag);
        assert_eq!(profile_by_name("BLOGCATALOG").unwrap(), Profile::BlogCatalog);
        assert_eq!(profile_by_name("friendster_small").unwrap(), Profile::FriendsterSmall);
        assert!(profile_by_name("nope").is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run_capture(&["frobnicate"]).is_err());
        assert!(run_capture(&[]).is_err());
    }

    #[test]
    fn full_flow_generate_embed_classify() {
        let gpath = tmp("flow.lne");
        let epath = tmp("flow_emb.txt");

        let out = run_capture(&[
            "generate",
            "--profile",
            "blogcatalog",
            "--scale",
            "0.05",
            "--out",
            &gpath,
        ])
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        assert!(std::path::Path::new(&gpath).exists());
        assert!(std::path::Path::new(&format!("{gpath}.labels")).exists());

        let out = run_capture(&[
            "embed", "--graph", &gpath, "--out", &epath, "--dim", "16", "--window", "5", "--ratio",
            "2.0",
        ])
        .unwrap();
        assert!(out.contains("sampler:"), "{out}");

        let labels_path = format!("{gpath}.labels");
        let out = run_capture(&[
            "classify",
            "--graph",
            &gpath,
            "--labels",
            &labels_path,
            "--embedding",
            &epath,
            "--train-ratio",
            "0.3",
        ])
        .unwrap();
        assert!(out.contains("micro-F1"), "{out}");
        // The embedding should classify far above the 39-class chance.
        let micro: f64 = out
            .split("micro-F1")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(micro > 30.0, "full CLI flow quality too low: {micro}");

        let out = run_capture(&["stats", "--graph", &gpath]).unwrap();
        assert!(out.contains("vertices"), "{out}");

        std::fs::remove_file(&gpath).ok();
        std::fs::remove_file(&epath).ok();
        std::fs::remove_file(&labels_path).ok();
    }

    #[test]
    fn weighted_embed_flow() {
        let gpath = tmp("weighted.txt");
        let epath = tmp("weighted_emb.txt");
        // A small weighted triangle chain.
        std::fs::write(&gpath, "0 1 2.0\n1 2 1.0\n2 3 4.0\n3 0 1.0\n").unwrap();
        let out = run_capture(&[
            "embed",
            "--graph",
            &gpath,
            "--out",
            &epath,
            "--dim",
            "2",
            "--window",
            "2",
            "--ratio",
            "20.0",
            "--weighted",
        ])
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let m = read_matrix(&epath).unwrap();
        assert_eq!(m.rows(), 4);
        std::fs::remove_file(&gpath).ok();
        std::fs::remove_file(&epath).ok();
    }

    #[test]
    fn sharded_and_global_table_embeds_are_byte_identical() {
        let gpath = tmp("shards.lne");
        let e_sharded = tmp("shards_emb_a.txt");
        let e_global = tmp("shards_emb_b.txt");
        run_capture(&["generate", "--profile", "oag", "--scale", "0.0001", "--out", &gpath])
            .unwrap();
        let common =
            ["--graph", &gpath, "--dim", "8", "--window", "4", "--ratio", "1.0", "--seed", "5"];
        let mut a = vec!["embed", "--out", &e_sharded, "--shards", "4"];
        a.extend_from_slice(&common);
        run_capture(&a).unwrap();
        let mut b = vec!["embed", "--out", &e_global, "--global-table"];
        b.extend_from_slice(&common);
        run_capture(&b).unwrap();
        assert_eq!(
            std::fs::read(&e_sharded).unwrap(),
            std::fs::read(&e_global).unwrap(),
            "sharded and global-table paths must write identical embeddings"
        );
        std::fs::remove_file(&gpath).ok();
        std::fs::remove_file(format!("{gpath}.labels")).ok();
        std::fs::remove_file(&e_sharded).ok();
        std::fs::remove_file(&e_global).ok();
    }

    #[test]
    fn compress_then_v2_and_mmap_embeds_match_csr() {
        let gpath = tmp("v2flow.lne");
        let cpath = tmp("v2flow.lng2");
        let e_csr = tmp("v2flow_emb_csr.txt");
        let e_v1 = tmp("v2flow_emb_v1.txt");
        let e_mmap = tmp("v2flow_emb_mmap.txt");
        run_capture(&["generate", "--profile", "oag", "--scale", "0.0001", "--out", &gpath])
            .unwrap();

        let out =
            run_capture(&["compress", "--graph", &gpath, "--out", &cpath, "--codec", "zeta2"])
                .unwrap();
        assert!(out.contains("bits/edge"), "{out}");

        let common = ["--dim", "8", "--window", "4", "--ratio", "1.0", "--seed", "5"];
        let mut a = vec!["embed", "--graph", &gpath, "--out", &e_csr];
        a.extend_from_slice(&common);
        run_capture(&a).unwrap();
        let mut b = vec!["embed", "--graph", &gpath, "--out", &e_v1, "--graph-format", "v1"];
        b.extend_from_slice(&common);
        run_capture(&b).unwrap();
        let mut c = vec!["embed", "--graph", &cpath, "--out", &e_mmap, "--mmap"];
        c.extend_from_slice(&common);
        let out = run_capture(&c).unwrap();
        assert!(out.contains("v2 container"), "{out}");

        let csr = std::fs::read(&e_csr).unwrap();
        assert_eq!(csr, std::fs::read(&e_v1).unwrap(), "v1 embedding differs from CSR");
        assert_eq!(csr, std::fs::read(&e_mmap).unwrap(), "mmap v2 embedding differs from CSR");

        // stats transparently decompresses the container.
        let out = run_capture(&["stats", "--graph", &cpath]).unwrap();
        assert!(out.contains("vertices"), "{out}");

        // --mmap without a container is a typed error, not a silent no-op.
        let err =
            run_capture(&["embed", "--graph", &gpath, "--out", &e_csr, "--mmap"]).unwrap_err();
        assert!(err.contains("lng2"), "{err}");

        for p in [&gpath, &cpath, &e_csr, &e_v1, &e_mmap] {
            std::fs::remove_file(p).ok();
        }
        std::fs::remove_file(format!("{gpath}.labels")).ok();
    }

    #[test]
    fn classify_rejects_shape_mismatch() {
        let gpath = tmp("mismatch.lne");
        let epath = tmp("mismatch_emb.txt");
        run_capture(&["generate", "--profile", "oag", "--scale", "0.00002", "--out", &gpath])
            .unwrap();
        std::fs::write(&epath, "1 2\n3 4\n").unwrap();
        let labels_path = format!("{gpath}.labels");
        let err = run_capture(&[
            "classify",
            "--graph",
            &gpath,
            "--labels",
            &labels_path,
            "--embedding",
            &epath,
        ])
        .unwrap_err();
        assert!(err.contains("rows"), "{err}");
        std::fs::remove_file(&gpath).ok();
        std::fs::remove_file(&epath).ok();
        std::fs::remove_file(&labels_path).ok();
    }

    #[test]
    fn sparsify_prob_flag_selects_scheme_and_rejects_unknown() {
        let o = Opts::parse(&argv(&["--sparsify-prob", "psne"])).unwrap();
        assert_eq!(lightne_config(&o).unwrap().prob, ProbScheme::Psne);
        let o = Opts::parse(&argv(&[])).unwrap();
        assert_eq!(lightne_config(&o).unwrap().prob, ProbScheme::Degree);
        let o = Opts::parse(&argv(&["--sparsify-prob", "nope"])).unwrap();
        let err = lightne_config(&o).unwrap_err();
        assert!(err.contains("sparsify-prob"), "{err}");
    }

    #[test]
    fn embed_accepts_psne_scheme() {
        let gpath = tmp("psne.lne");
        let epath = tmp("psne_emb.txt");
        run_capture(&["generate", "--profile", "blogcatalog", "--scale", "0.02", "--out", &gpath])
            .unwrap();
        let out = run_capture(&[
            "embed",
            "--graph",
            &gpath,
            "--out",
            &epath,
            "--dim",
            "8",
            "--window",
            "3",
            "--sparsify-prob",
            "psne",
        ])
        .unwrap();
        assert!(out.contains("sampler:"), "{out}");
        assert!(std::path::Path::new(&epath).exists());
        std::fs::remove_file(&gpath).ok();
        std::fs::remove_file(format!("{gpath}.labels")).ok();
        std::fs::remove_file(&epath).ok();
    }

    #[test]
    fn quality_command_prints_matrix_rows() {
        let out = run_capture(&[
            "quality",
            "--profiles",
            "blogcatalog",
            "--target-n",
            "300",
            "--dim",
            "8",
        ])
        .unwrap();
        for needle in ["classify", "linkpred", "structure", "psne", "degree", "psne >= degree"] {
            assert!(out.contains(needle), "missing {needle:?} in {out}");
        }
        // One header + 3 tasks x 2 schemes + the summary line.
        assert_eq!(out.lines().count(), 8, "{out}");
        assert!(run_capture(&["quality", "--profiles", "nope"]).is_err());
    }
}
