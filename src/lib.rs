//! # LightNE (Rust reproduction)
//!
//! Meta-crate that re-exports the full public API of the LightNE
//! reproduction, so examples, integration tests and downstream users can
//! depend on a single crate:
//!
//! ```
//! use lightne::prelude::*;
//! ```
//!
//! See the individual crates for the subsystem documentation:
//! [`graph`] (GBBS-style substrate), [`gen`] (synthetic datasets),
//! [`linalg`] (randomized SVD), [`hash`] (sparse parallel hashing),
//! [`sparsifier`] (Algorithms 1–2), [`core`] (the pipeline),
//! [`baselines`] (NetSMF / ProNE+ / NetMF / DeepWalk-SGD) and
//! [`eval`] (classification & link-prediction harness).

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cli;

pub use lightne_baselines as baselines;
pub use lightne_core as core;
pub use lightne_eval as eval;
pub use lightne_gen as gen;
pub use lightne_graph as graph;
pub use lightne_hash as hash;
pub use lightne_linalg as linalg;
pub use lightne_sparsifier as sparsifier;
pub use lightne_utils as utils;

/// Convenience re-exports of the most used types.
pub mod prelude {
    pub use lightne_core::{LightNe, LightNeConfig};
    pub use lightne_eval::{classify, cost, linkpred};
    pub use lightne_gen::profiles;
    pub use lightne_graph::{
        Codec, CompressedGraph, Graph, GraphAccess, GraphBuilder, GraphFormatError, GraphOps,
        V2Graph, VertexId,
    };
    pub use lightne_linalg::{CsrMatrix, DenseMatrix};
}
