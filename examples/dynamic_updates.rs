//! Dynamic re-embedding — the paper's future-work scenario.
//!
//! ```text
//! cargo run --release --example dynamic_updates
//! ```
//!
//! Simulates the Alibaba/LinkedIn loop from the paper's introduction:
//! edges arrive in batches, and the embedding must be refreshed after
//! each batch. `DynamicLightNe` keeps the sparsifier hash table alive
//! across batches, samples only the new edges, and re-runs just the
//! factorization — compare its cost and quality against a full rebuild.

use lightne::core::{DynamicLightNe, LightNeConfig};
use lightne::eval::classify::evaluate_node_classification;
use lightne::gen::sbm::{labelled_sbm, SbmConfig};
use std::time::Instant;

fn main() {
    // Ground-truth graph whose edges will "arrive" over time.
    let cfg = SbmConfig {
        n: 3000,
        communities: 10,
        avg_degree: 24.0,
        mixing: 0.1,
        overlap: 0.15,
        gamma: 2.5,
    };
    let (graph, labels) = labelled_sbm(&cfg, 11);
    let mut edges = Vec::new();
    for u in 0..graph.num_vertices() as u32 {
        for &v in graph.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    println!("stream of {} edges over 5 batches (60% bootstrap + 4x10%)", edges.len());

    let ne_cfg = LightNeConfig { dim: 32, window: 5, sample_ratio: 2.0, ..Default::default() };
    let mut dyn_ne = DynamicLightNe::new(cfg.n, ne_cfg);

    let bootstrap = edges.len() * 6 / 10;
    dyn_ne.insert_edges(&edges[..bootstrap]);

    println!(
        "\n{:>6} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "batch", "edges", "incr time", "incr F1", "full time", "full F1"
    );
    let batch_size = edges.len() / 10;
    for (i, batch) in edges[bootstrap..].chunks(batch_size).enumerate() {
        dyn_ne.insert_edges(batch);

        let t0 = Instant::now();
        let incremental = dyn_ne.reembed();
        let t_inc = t0.elapsed();

        let t0 = Instant::now();
        let full = dyn_ne.full_rebuild();
        let t_full = t0.elapsed();

        let f_inc = evaluate_node_classification(&incremental.embedding, &labels, 0.3, 5);
        let f_full = evaluate_node_classification(&full.embedding, &labels, 0.3, 5);
        println!(
            "{:>6} {:>9} {:>11.2}s {:>12.2} {:>11.2}s {:>12.2}",
            i + 1,
            dyn_ne.num_edges(),
            t_inc.as_secs_f64(),
            f_inc.micro,
            t_full.as_secs_f64(),
            f_full.micro
        );
    }
    println!(
        "\nincremental refresh skips re-sampling old edges; quality should track the full rebuild."
    );
}
