//! Quickstart: embed a graph with LightNE in a dozen lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small social-style graph, runs the full LightNE pipeline
//! (downsampled NetSMF sparsifier → randomized SVD → spectral
//! propagation) and prints the stage breakdown plus a few embedding rows.

use lightne::core::{LightNe, LightNeConfig};
use lightne::gen::generators::barabasi_albert;

fn main() {
    // 1. Get a graph. Any `lightne::graph::Graph` works — load one with
    //    `lightne::graph::io::read_edge_list`, or generate one:
    let graph = barabasi_albert(5_000, 8, 42);
    println!("graph: {} vertices, {} edges", graph.num_vertices(), graph.num_edges());

    // 2. Configure LightNE. `sample_ratio` is the paper's M = ratio·T·m.
    let config = LightNeConfig { dim: 32, window: 10, sample_ratio: 1.0, ..Default::default() };

    // 3. Embed.
    let output = LightNe::new(config).embed(&graph);

    // 4. Inspect the run: per-stage wall clock (the paper's Table 5 rows)
    //    and sampler statistics.
    println!("\nstage breakdown:\n{}", output.timings);
    println!(
        "\nsampler: {} trials, {} kept after downsampling, {} distinct entries",
        output.sampler.trials, output.sampler.kept, output.sampler.distinct_entries
    );
    println!("NetMF matrix non-zeros: {}", output.netmf_nnz);

    // 5. Use the embedding: one row per vertex.
    let x = &output.embedding;
    println!("\nembedding shape: {} x {}", x.rows(), x.cols());
    for v in 0..3 {
        let row: Vec<String> = x.row(v)[..6].iter().map(|f| format!("{f:+.3}")).collect();
        println!("vertex {v}: [{} ...]", row.join(", "));
    }
}
