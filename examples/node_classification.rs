//! Node classification — the paper's flagship downstream task.
//!
//! ```text
//! cargo run --release --example node_classification
//! ```
//!
//! Generates a BlogCatalog-style labelled graph, embeds it with LightNE
//! and with ProNE+ (the closest-quality baseline), and evaluates both
//! with the standard protocol: one-vs-rest logistic regression on a
//! fraction of labelled vertices, Micro/Macro-F1 on the rest.

use lightne::baselines::{ProNe, ProNeConfig};
use lightne::core::{LightNe, LightNeConfig};
use lightne::eval::classify::evaluate_node_classification;
use lightne::gen::profiles::Profile;

fn main() {
    // A scaled-down BlogCatalog analogue: 39 classes, power-law degrees,
    // overlapping community ground truth.
    let data = Profile::BlogCatalog.generate(0.3, 7);
    let labels = data.labels.as_ref().expect("BlogCatalog is a labelled profile");
    println!("{}", data.stats_row());
    println!(
        "classes: {}, mean labels per vertex: {:.2}",
        labels.num_labels(),
        labels.mean_labels()
    );

    let lightne = LightNe::new(LightNeConfig {
        dim: 64,
        window: 10,
        sample_ratio: 5.0,
        ..Default::default()
    })
    .embed(&data.graph);

    let prone = ProNe::new(ProNeConfig { dim: 64, ..Default::default() }).embed(&data.graph);

    println!("\n{:<10} {:>12} {:>12} {:>12}", "method", "train ratio", "Micro-F1", "Macro-F1");
    for train_ratio in [0.1, 0.5, 0.9] {
        for (name, emb) in [("LightNE", &lightne.embedding), ("ProNE+", &prone.embedding)] {
            let f1 = evaluate_node_classification(emb, labels, train_ratio, 99);
            println!(
                "{:<10} {:>11.0}% {:>12.2} {:>12.2}",
                name,
                100.0 * train_ratio,
                f1.micro,
                f1.macro_
            );
        }
    }
    println!("\n(LightNE should match or beat ProNE+ at every ratio — Figure 4's shape.)");
}
