//! Scalability sweep — the "Lightweight" claim in miniature.
//!
//! ```text
//! cargo run --release --example scale_sweep
//! ```
//!
//! Runs the full LightNE pipeline on successively larger R-MAT graphs
//! (the paper's very-large-graph family) with compressed and uncompressed
//! representations, printing runtime, stage breakdown and the memory of
//! graph + sparsifier — the quantities that let the paper fit a 124B-edge
//! graph into 1.5 TB.

use lightne::core::{LightNe, LightNeConfig};
use lightne::gen::generators::{rmat, RmatParams};
use lightne::graph::CompressedGraph;
use lightne::utils::mem::{human_bytes, MemUsage};
use std::time::Instant;

fn main() {
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>10} {:>12}",
        "scale", "edges", "graph raw", "compressed", "time", "sparsifier"
    );
    for scale in [12u32, 14, 16] {
        let m = (1usize << scale) * 16;
        let g = rmat(scale, m, RmatParams::default(), 5);
        let cg = CompressedGraph::from_graph(&g);

        let cfg = LightNeConfig {
            dim: 32,
            window: 5,
            sample_ratio: 1.0,
            propagation: None, // matches the paper's very-large-graph runs
            ..Default::default()
        };
        let start = Instant::now();
        let out = LightNe::new(cfg).embed(&cg);
        let elapsed = start.elapsed();

        println!(
            "{:>6} {:>10} {:>12} {:>12} {:>9.1}s {:>12}",
            format!("2^{scale}"),
            g.num_edges(),
            human_bytes(g.heap_bytes()),
            human_bytes(cg.heap_bytes()),
            elapsed.as_secs_f64(),
            human_bytes(out.sampler.aggregator_bytes)
        );
    }
    println!(
        "\ncompression should hold steady near 2-3x; runtime should scale ~linearly in edges."
    );
}
