//! Weighted-graph embedding.
//!
//! ```text
//! cargo run --release --example weighted_graph
//! ```
//!
//! The paper's theory (Theorems 3.1–3.2) is stated for weighted
//! adjacency matrices; this example exercises the weighted pipeline:
//! weight-proportional PathSampling, weighted downsampling probabilities
//! and the weighted NetMF inversion. The graph is two communities whose
//! internal edges are 10× heavier than the noise between them — weights,
//! not topology, carry the signal.

use lightne::core::{LightNe, LightNeConfig};
use lightne::graph::WeightedGraph;
use lightne::utils::rng::XorShiftStream;

fn main() {
    let n = 600usize;
    let half = n / 2;
    let mut rng = XorShiftStream::new(21, 0);
    let mut edges: Vec<(u32, u32, f32)> = Vec::new();

    // Dense random topology everywhere (so the unweighted structure is
    // nearly uninformative)...
    for _ in 0..n * 10 {
        let u = rng.bounded_usize(n) as u32;
        let v = rng.bounded_usize(n) as u32;
        if u != v {
            // ...but intra-community edges are 10x heavier.
            let same = (u as usize) / half == (v as usize) / half;
            edges.push((u, v, if same { 10.0 } else { 1.0 }));
        }
    }
    let g = WeightedGraph::from_edges(n, &edges);
    println!(
        "weighted graph: {} vertices, {} edges, volume {:.0}",
        g.num_vertices(),
        g.num_edges(),
        g.volume()
    );

    let out =
        LightNe::new(LightNeConfig { dim: 16, window: 5, sample_ratio: 5.0, ..Default::default() })
            .embed_weighted(&g);
    println!("\nstage breakdown:\n{}", out.timings);

    // Measure separation between the two weight-defined communities.
    let y = &out.embedding;
    let dot =
        |a: &[f32], b: &[f32]| -> f64 { a.iter().zip(b).map(|(&p, &q)| p as f64 * q as f64).sum() };
    let (mut same, mut sn, mut diff, mut dn) = (0.0, 0usize, 0.0, 0usize);
    for i in (0..n).step_by(7) {
        for j in (1..n).step_by(11) {
            if i == j {
                continue;
            }
            let s = dot(y.row(i), y.row(j));
            if i / half == j / half {
                same += s;
                sn += 1;
            } else {
                diff += s;
                dn += 1;
            }
        }
    }
    println!(
        "\nmean cosine: same-community {:.3}, cross-community {:.3}",
        same / sn as f64,
        diff / dn as f64
    );
    println!("(the gap comes entirely from edge weights — topology alone is random)");
}
