//! Link prediction — the paper's task for graphs without vertex labels
//! (LiveJournal, Hyperlink-PLD, and both very-large web graphs).
//!
//! ```text
//! cargo run --release --example link_prediction
//! ```
//!
//! Holds out 1% of edges, embeds the remaining graph, and ranks each
//! held-out edge against 100 corrupted candidates — reporting MR, MRR,
//! HITS@K and AUC, exactly the metrics of Sections 5.2.1–5.2.2.

use lightne::core::{LightNe, LightNeConfig};
use lightne::eval::linkpred::{rank_held_out, split_edges};
use lightne::gen::profiles::Profile;

fn main() {
    let data = Profile::LiveJournal.generate(0.001, 17);
    println!("{}", data.stats_row());

    // Hold out 1% of edges for evaluation (never isolating a vertex).
    let (train, held_out) = split_edges(&data.graph, 0.01, 18);
    println!(
        "training on {} edges, evaluating {} held-out positives",
        train.num_edges(),
        held_out.len()
    );

    // Propagation is a classification booster; ranking uses the raw
    // factorization embedding (as the paper does on its very-large runs).
    let output = LightNe::new(LightNeConfig {
        dim: 64,
        window: 5,
        sample_ratio: 5.0,
        propagation: None,
        ..Default::default()
    })
    .embed(&train);

    let metrics = rank_held_out(&output.embedding, &held_out, 100, &[1, 10, 50], 19);
    println!("\nlink prediction results (100 negatives per positive):");
    println!("  MR      {:.2}   (1 = perfect, ~50 = random)", metrics.mr);
    println!("  MRR     {:.3}", metrics.mrr);
    for (k, v) in &metrics.hits {
        println!("  HITS@{k:<3} {:.1}%", 100.0 * v);
    }
    println!("  AUC     {:.1}%", 100.0 * metrics.auc);
}
