//! Elias–Fano encoding of monotone sequences.
//!
//! The v1 format spends 16 bytes per vertex on offset tables (a `u64` byte
//! offset plus a `u64` cumulative arc count). Elias–Fano stores a monotone
//! sequence of `n` values over a universe `u` in `n·(2 + ⌈log₂(u/n)⌉)`
//! bits — within half a bit per element of the information-theoretic
//! minimum — while still answering `get(i)` in O(1) with a sampled select
//! structure. v2 uses two of these: one for cumulative arc counts, one for
//! per-vertex bit offsets into the adjacency arena.
//!
//! Layout: each value is split at `l = max(0, ⌊log₂(u/n)⌋)` bits. The low
//! `l` bits go to a packed array; the high bits are stored as a unary-ish
//! bitvector where bit `(vᵢ >> l) + i` is set for the `i`-th element
//! (monotonicity makes these positions strictly increasing; the vector has
//! at most `n + (u >> l) < 3n` bits). `get(i)` selects the `i`-th set bit
//! and recombines. Select is accelerated by sampling the word position of
//! every 64th set bit.
//!
//! [`EfSeq`] is a *view*: it borrows the byte storage (owned heap or a
//! memory map) and holds only parsed parameters plus byte ranges, so the
//! same struct serves both in-memory and zero-copy containers.

use crate::error::GraphFormatError;

/// Select sample rate: the word index of every `SELECT_EVERY`-th set bit
/// is recorded, bounding the scan in `select` to a few words.
const SELECT_EVERY: usize = 64;

/// Builds the serialized form of an Elias–Fano sequence.
///
/// The byte layout (all fixed-width fields little-endian):
///
/// ```text
/// n: u64 | universe: u64 | lower bits: ⌈n·l/8⌉ bytes (LSB-first packing)
/// | upper words: u64 × nwords | select samples: u64 × nsamples
/// ```
///
/// Sample `s` is the absolute bit position of the `s·SELECT_EVERY`-th set
/// bit, so `select(i)` starts at a known position and scans at most
/// `SELECT_EVERY` ones (≤ `2·SELECT_EVERY` bits ≈ 2 words) forward.
pub fn encode(values: &[u64], universe: u64) -> Vec<u8> {
    let n = values.len() as u64;
    debug_assert!(values.windows(2).all(|w| w[0] <= w[1]), "values must be monotone");
    debug_assert!(values.last().map(|&v| v <= universe).unwrap_or(true));
    let l = lower_bits(n, universe);

    let lower_bytes = ((n * l as u64) as usize).div_ceil(8);
    let nbits_upper = n as usize + (universe >> l) as usize + 1;
    let nwords = nbits_upper.div_ceil(64);
    let mut lower = vec![0u8; lower_bytes];
    let mut upper = vec![0u64; nwords];

    for (i, &v) in values.iter().enumerate() {
        if l > 0 {
            let lo = v & ((1u64 << l) - 1);
            let bit = i as u64 * l as u64;
            let byte = (bit / 8) as usize;
            let shift = (bit % 8) as u32;
            // LSB-first packing: a value spans at most 9 bytes (l ≤ 64).
            let mut rest = lo << shift;
            let mut b = byte;
            let mut width = shift + l;
            while width > 0 {
                lower[b] |= rest as u8;
                rest >>= 8;
                width = width.saturating_sub(8);
                b += 1;
            }
        }
        let pos = (v >> l) as usize + i;
        upper[pos / 64] |= 1u64 << (pos % 64);
    }

    // Select samples: absolute bit position of every SELECT_EVERY-th one.
    let mut samples: Vec<u64> = Vec::with_capacity(values.len().div_ceil(SELECT_EVERY));
    for (i, &v) in values.iter().enumerate() {
        if i % SELECT_EVERY == 0 {
            samples.push((v >> l) + i as u64);
        }
    }
    debug_assert_eq!(samples.len(), values.len().div_ceil(SELECT_EVERY));

    let mut out = Vec::with_capacity(16 + lower.len() + nwords * 8 + samples.len() * 8);
    out.extend_from_slice(&n.to_le_bytes());
    out.extend_from_slice(&universe.to_le_bytes());
    out.extend_from_slice(&lower);
    for w in &upper {
        out.extend_from_slice(&w.to_le_bytes());
    }
    for s in &samples {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

/// Number of low bits stored in the packed array: `max(0, ⌊log₂(u/n)⌋)`.
fn lower_bits(n: u64, universe: u64) -> u32 {
    if n == 0 || universe <= n {
        return 0;
    }
    63 - (universe / n).leading_zeros()
}

/// A parsed view of an Elias–Fano sequence inside a larger byte buffer.
///
/// Holds absolute byte offsets into the containing storage rather than
/// borrowed slices, so a [`EfSeq`] can live inside a struct that owns (or
/// maps) the storage without self-referential borrows. All accessors take
/// the storage explicitly.
#[derive(Debug, Clone)]
pub struct EfSeq {
    n: u64,
    universe: u64,
    l: u32,
    /// Absolute byte offset of the lower-bits array.
    lower_off: usize,
    /// Absolute byte offset of the upper-bits words.
    upper_off: usize,
    nwords: usize,
    /// Absolute byte offset of the select samples.
    select_off: usize,
    /// Total serialized length in bytes (for section-length validation).
    len: usize,
}

impl EfSeq {
    /// Parses a sequence whose serialized bytes start at `base` within
    /// `storage`. Validates that every section fits inside `storage`.
    pub fn parse(storage: &[u8], base: usize) -> Result<EfSeq, GraphFormatError> {
        let header = storage.get(base..base + 16).ok_or(GraphFormatError::LengthMismatch {
            what: "elias-fano header",
            expected: 16,
            actual: storage.len().saturating_sub(base) as u64,
        })?;
        // xtask:panic-ok(infallible: fixed 8-byte windows of a header whose length was just bounds-checked)
        let n = u64::from_le_bytes(header[0..8].try_into().unwrap());
        let universe = u64::from_le_bytes(header[8..16].try_into().unwrap());
        if n > storage.len() as u64 * 8 {
            // An EF sequence of n elements needs ≥ 2n upper bits; a claimed
            // n beyond that is corrupt, and rejecting it here prevents the
            // size computations below from overflowing.
            return Err(GraphFormatError::Corrupt("elias-fano element count implausible"));
        }
        let l = lower_bits(n, universe);
        if (universe >> l) > storage.len() as u64 * 8 {
            // The upper vector needs one bit per (value >> l) slot; a
            // universe this large cannot fit the available bytes and would
            // overflow the size arithmetic below.
            return Err(GraphFormatError::Corrupt("elias-fano universe implausible"));
        }
        let lower_bytes = ((n * l as u64) as usize).div_ceil(8);
        let nbits_upper = n as usize + (universe >> l) as usize + 1;
        let nwords = nbits_upper.div_ceil(64);
        let nsamples = (n as usize).div_ceil(SELECT_EVERY);
        let lower_off = base + 16;
        let upper_off = lower_off + lower_bytes;
        let select_off = upper_off + nwords * 8;
        let end = select_off + nsamples * 8;
        if end > storage.len() {
            return Err(GraphFormatError::LengthMismatch {
                what: "elias-fano sections",
                expected: (end - base) as u64,
                actual: storage.len().saturating_sub(base) as u64,
            });
        }
        Ok(EfSeq { n, universe, l, lower_off, upper_off, nwords, select_off, len: end - base })
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// True when the sequence has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Upper bound on the values (as passed to [`encode`]).
    #[inline]
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Serialized size in bytes.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.len
    }

    #[inline]
    fn upper_word(&self, storage: &[u8], w: usize) -> u64 {
        let off = self.upper_off + w * 8;
        // xtask:panic-ok(infallible: 8-byte window, parse validated lengths)
        u64::from_le_bytes(storage[off..off + 8].try_into().unwrap())
    }

    #[inline]
    fn sample(&self, storage: &[u8], s: usize) -> usize {
        let off = self.select_off + s * 8;
        // xtask:panic-ok(infallible: 8-byte window, parse validated lengths)
        u64::from_le_bytes(storage[off..off + 8].try_into().unwrap()) as usize
    }

    #[inline]
    fn lower_value(&self, storage: &[u8], i: usize) -> u64 {
        if self.l == 0 {
            return 0;
        }
        let bit = i as u64 * self.l as u64;
        let byte = self.lower_off + (bit / 8) as usize;
        let shift = (bit % 8) as u32;
        // Read up to 9 bytes LSB-first; l ≤ 57 in practice (universe is a
        // byte/arc count), so 8 bytes + carry byte always suffice.
        let avail = storage.len() - byte;
        let mut word = [0u8; 8];
        let take = avail.min(8);
        word[..take].copy_from_slice(&storage[byte..byte + take]);
        let mut v = u64::from_le_bytes(word) >> shift;
        let got = 64 - shift;
        if got < self.l && byte + 8 < storage.len() {
            v |= (storage[byte + 8] as u64) << got;
        }
        v & ((1u64 << self.l) - 1)
    }

    /// Position (bit index in the upper vector) of the `i`-th set bit.
    /// The sample gives the exact position of the nearest preceding
    /// sampled one; at most `SELECT_EVERY` further ones are scanned.
    #[inline]
    fn select(&self, storage: &[u8], i: usize) -> usize {
        let base = self.sample(storage, i / SELECT_EVERY);
        let mut remaining = i % SELECT_EVERY;
        let mut w = base / 64;
        // Mask off bits below the sampled position; the sampled one itself
        // has rank i − remaining.
        let mut word = self.upper_word(storage, w) & !((1u64 << (base % 64)) - 1);
        loop {
            let c = word.count_ones() as usize;
            if remaining < c {
                let mut bits = word;
                for _ in 0..remaining {
                    bits &= bits - 1;
                }
                return w * 64 + bits.trailing_zeros() as usize;
            }
            remaining -= c;
            w += 1;
            word = self.upper_word(storage, w);
        }
    }

    /// The `i`-th value. Panics on out-of-range `i` (callers index with
    /// vertex ids already validated against `n`).
    #[inline]
    pub fn get(&self, storage: &[u8], i: usize) -> u64 {
        assert!(i < self.n as usize, "EF index {i} out of range (n = {})", self.n);
        let pos = self.select(storage, i);
        (((pos - i) as u64) << self.l) | self.lower_value(storage, i)
    }

    /// `(get(i), get(i+1))` in one select walk — the common degree query
    /// `offsets[v+1] − offsets[v]` hits this path.
    #[inline]
    pub fn get_pair(&self, storage: &[u8], i: usize) -> (u64, u64) {
        assert!(i + 1 < self.n as usize, "EF pair {i} out of range (n = {})", self.n);
        let pos = self.select(storage, i);
        let a = (((pos - i) as u64) << self.l) | self.lower_value(storage, i);
        // The (i+1)-th one is the next set bit after `pos`.
        let mut w = pos / 64;
        let mut word = self.upper_word(storage, w) & !((1u64 << (pos % 64)) - 1);
        word &= word - 1; // drop the i-th one itself
        while word == 0 {
            w += 1;
            word = self.upper_word(storage, w);
        }
        let pos2 = w * 64 + word.trailing_zeros() as usize;
        let b = (((pos2 - (i + 1)) as u64) << self.l) | self.lower_value(storage, i + 1);
        (a, b)
    }

    /// Structural validation: every element decodes, the sequence is
    /// monotone, and the last element does not exceed the universe. Used
    /// when opening an untrusted container.
    pub fn validate(&self, storage: &[u8]) -> Result<(), GraphFormatError> {
        // Total ones in the upper vector must equal n, else select() on a
        // hostile container could walk past the section end.
        let mut ones = 0u64;
        for w in 0..self.nwords {
            ones += self.upper_word(storage, w).count_ones() as u64;
        }
        if ones != self.n {
            return Err(GraphFormatError::Corrupt("elias-fano upper-bit population"));
        }
        // Every select sample must name the exact position of its one, or
        // select() on a hostile container could scan past the section end.
        let mut rank = 0usize;
        for w in 0..self.nwords {
            let mut bits = self.upper_word(storage, w);
            while bits != 0 {
                if rank.is_multiple_of(SELECT_EVERY) {
                    let pos = w * 64 + bits.trailing_zeros() as usize;
                    if self.sample(storage, rank / SELECT_EVERY) != pos {
                        return Err(GraphFormatError::Corrupt("elias-fano select sample"));
                    }
                }
                rank += 1;
                bits &= bits - 1;
            }
        }
        let mut prev = 0u64;
        for i in 0..self.n as usize {
            let v = self.get(storage, i);
            if v < prev {
                return Err(GraphFormatError::Corrupt("elias-fano sequence not monotone"));
            }
            if v > self.universe {
                return Err(GraphFormatError::Corrupt("elias-fano value exceeds universe"));
            }
            prev = v;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_utils::rng::XorShiftStream;

    fn roundtrip(values: &[u64], universe: u64) {
        let bytes = encode(values, universe);
        let ef = EfSeq::parse(&bytes, 0).unwrap();
        assert_eq!(ef.len(), values.len());
        assert_eq!(ef.byte_len(), bytes.len());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(ef.get(&bytes, i), v, "index {i}");
        }
        for i in 0..values.len().saturating_sub(1) {
            assert_eq!(ef.get_pair(&bytes, i), (values[i], values[i + 1]), "pair {i}");
        }
        ef.validate(&bytes).unwrap();
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(&[], 0);
        roundtrip(&[], 100);
        roundtrip(&[0], 0);
        roundtrip(&[5], 5);
        roundtrip(&[0, 0, 0], 0);
        roundtrip(&[0, 0, 7, 7, 7], 7);
    }

    #[test]
    fn dense_and_sparse() {
        // Dense: universe == n (l = 0, pure unary upper).
        let dense: Vec<u64> = (0..1000).collect();
        roundtrip(&dense, 1000);
        // Sparse: huge universe forces large l.
        let sparse: Vec<u64> = (0..100).map(|i| i * 1_000_000_007).collect();
        roundtrip(&sparse, 100 * 1_000_000_007);
    }

    #[test]
    fn random_monotone_sequences() {
        let mut rng = XorShiftStream::new(3, 0);
        for trial in 0..20 {
            let n = 1 + rng.bounded_usize(3000);
            let mut values: Vec<u64> = Vec::with_capacity(n);
            let mut cur = 0u64;
            for _ in 0..n {
                // Mix small and occasionally huge gaps.
                cur += if rng.bounded(10) == 0 { rng.bounded(1 << 20) } else { rng.bounded(16) };
                values.push(cur);
            }
            let universe = cur + rng.bounded(100);
            roundtrip(&values, universe);
            let _ = trial;
        }
    }

    #[test]
    fn select_sample_boundaries() {
        // Lengths straddling the SELECT_EVERY sampling period.
        for n in [63u64, 64, 65, 127, 128, 129, 4096] {
            let values: Vec<u64> = (0..n).map(|i| i * 3).collect();
            roundtrip(&values, n * 3);
        }
    }

    #[test]
    fn space_beats_plain_u64() {
        // The whole point: cumulative offsets of a 100k-arc graph must
        // take far less than 8 bytes per entry.
        let values: Vec<u64> = (0..10_000u64).map(|i| i * 10).collect();
        let bytes = encode(&values, 100_000);
        assert!(
            bytes.len() < values.len() * 2,
            "EF took {} bytes for {} values",
            bytes.len(),
            values.len()
        );
    }

    #[test]
    fn parse_rejects_truncation() {
        let values: Vec<u64> = (0..500u64).map(|i| i * 7).collect();
        let bytes = encode(&values, 3500);
        for cut in 0..bytes.len() {
            match EfSeq::parse(&bytes[..cut], 0) {
                Err(_) => {}
                Ok(ef) => {
                    // A prefix that still parses must fail validation or
                    // have consistent sections (cut beyond the last sample
                    // can't happen: parse checks the full length).
                    panic!("prefix of {cut} bytes parsed: {ef:?}");
                }
            }
        }
    }

    #[test]
    fn validate_catches_bit_flips() {
        let values: Vec<u64> = (0..300u64).map(|i| i * 11).collect();
        let bytes = encode(&values, 3300);
        let ef = EfSeq::parse(&bytes, 0).unwrap();
        ef.validate(&bytes).unwrap();
        let mut flagged = 0usize;
        for byte in 16..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 0x40;
            // Either parse params changed (can't: header untouched) or
            // validate flags it or the flip only hit padding bits.
            if ef.validate(&corrupt).is_err() {
                flagged += 1;
            }
        }
        // The vast majority of flips must be caught (a flip in the low
        // bits of a non-boundary element keeps monotonicity only rarely).
        assert!(flagged * 2 > (bytes.len() - 16), "only {flagged} flips caught");
    }

    #[test]
    fn nonzero_base_offset() {
        // EfSeq must work at an arbitrary base inside a larger container.
        let values: Vec<u64> = (0..200u64).map(|i| i * 5).collect();
        let encoded = encode(&values, 1000);
        let mut storage = vec![0xAAu8; 37];
        storage.extend_from_slice(&encoded);
        storage.extend_from_slice(&[0xBB; 11]);
        let ef = EfSeq::parse(&storage, 37).unwrap();
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(ef.get(&storage, i), v);
        }
        ef.validate(&storage).unwrap();
    }
}
