//! Graph format v2: bit-granular gap coding behind an on-disk container.
//!
//! v2 replaces the three big costs of the v1 parallel-byte format:
//!
//! * **byte-aligned varints** → instantaneous codes ([`crate::codecs`]):
//!   every gap costs its information content, not a minimum of 8 bits;
//! * **`Vec<u64>` offset tables** (16 bytes/vertex across the byte and
//!   arc tables) → two Elias–Fano sequences ([`crate::ef`]), ~2 bits +
//!   log₂(avg) per vertex each;
//! * **heap-resident arena** → an on-disk container that loads either
//!   fully in memory or zero-copy via [`crate::mmap`], so graphs larger
//!   than RAM stream through sampling.
//!
//! ## Per-vertex bit layout
//!
//! Neighbor lists keep the v1 blocking (block size 64 by default, the
//! Section 4.2 trade-off) so the `i`-th-neighbor query of random walks
//! decodes one block:
//!
//! ```text
//! ┌────────────────────────────┬─────────┬─────────┬───┐
//! │ γ(len₀) … γ(len_{B-2})     │ block 0 │ block 1 │ … │
//! └────────────────────────────┴─────────┴─────────┴───┘
//! block b: codec(zigzag(first − v)) codec(gap−1) codec(gap−1) …
//! ```
//!
//! With the adaptive Rice codec (`arice`) each block body starts with a
//! 5-bit Rice parameter chosen to minimize that block's exact bit cost;
//! gaps within one vertex share a scale (≈ n / degree), so the per-block
//! prefix recovers most of the gain of a per-vertex optimal Golomb code.
//!
//! The header stores the bit length of every block but the last, γ-coded,
//! so block `b` starts at `header_end + Σ_{j<b} len_j`; sequential decode
//! skips the header and reads blocks back to back. Within a block the
//! first neighbor is a zigzag delta from the source (as in v1) and each
//! subsequent gap is stored minus one (lists are strictly increasing).
//!
//! ## Container layout
//!
//! ```text
//! magic "LNV2" | version | block_size | codec  (4 × u32-ish, 16 bytes)
//! n | arcs | len(ef_arcs) | len(ef_bits) | len(arena)  (5 × u64)
//! payload FNV-1a-64 | header FNV-1a-64               (2 × u64)
//! ef_arcs: EF of cumulative degrees (n+1 values)
//! ef_bits: EF of cumulative per-vertex bit offsets (n+1 values)
//! arena:   concatenated per-vertex bit streams
//! ```
//!
//! Containers are written via the repo-wide tmp+rename discipline. An
//! in-memory open verifies the payload checksum; a zero-copy mmap open
//! verifies the header checksum and the structural invariants of both EF
//! sequences (population, select samples, monotonicity) but — by design —
//! does not fault in the arena. Arena decoding is fully bounds-checked
//! ([`crate::codecs::BitReader`]), so hostile arena bytes fail typed (or
//! panic with a message on the infallible [`GraphAccess`] paths), never
//! read out of bounds.

use crate::codecs::{best_rice_k, BitReader, BitWriter, Codec};
use crate::compressed::DEFAULT_BLOCK_SIZE;
use crate::ef::{self, EfSeq};
use crate::error::GraphFormatError;
use crate::mmap::Mmap;
use crate::ops::GraphAccess;
use crate::{Graph, VertexId};
use lightne_utils::checksum::fnv1a64;
use lightne_utils::mem::MemUsage;
use rayon::prelude::*;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// Container magic bytes.
pub const V2_MAGIC: [u8; 4] = *b"LNV2";
/// Container format version this build reads and writes.
pub const V2_VERSION: u32 = 1;
/// Fixed header length in bytes.
const HEADER_LEN: usize = 72;
/// Canonical file extension for v2 containers.
pub const V2_EXTENSION: &str = "lng2";

/// Zigzag encoding of a signed difference (same convention as v1).
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse zigzag.
#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes one sorted neighbor list; returns the bit stream (byte-padded)
/// and its exact bit length.
fn encode_vertex(
    source: VertexId,
    neighbors: &[VertexId],
    codec: Codec,
    block_size: usize,
) -> (Vec<u8>, u64) {
    let deg = neighbors.len();
    if deg == 0 {
        return (Vec::new(), 0);
    }
    let nblocks = deg.div_ceil(block_size);
    let mut bodies: Vec<BitWriter> = Vec::with_capacity(nblocks);
    let mut vals: Vec<u64> = Vec::with_capacity(block_size);
    for b in 0..nblocks {
        let lo = b * block_size;
        let hi = ((b + 1) * block_size).min(deg);
        vals.clear();
        vals.push(zigzag(neighbors[lo] as i64 - source as i64));
        let mut prev = neighbors[lo];
        for &v in &neighbors[lo + 1..hi] {
            debug_assert!(v > prev, "neighbor list must be strictly increasing");
            vals.push((v - prev - 1) as u64);
            prev = v;
        }
        let mut w = BitWriter::new();
        match codec {
            // Adaptive Rice re-chooses the parameter per block: the gaps
            // of one vertex share a scale (≈ n / degree), so a 5-bit
            // prefix buys a near-optimal k for the whole block.
            Codec::RiceAdaptive => {
                let k = best_rice_k(&vals);
                w.write_bits(k as u64, 5);
                for &x in &vals {
                    w.write_rice(x, k);
                }
            }
            c => {
                for &x in &vals {
                    c.encode(&mut w, x);
                }
            }
        }
        bodies.push(w);
    }
    let mut out = BitWriter::new();
    for body in &bodies[..nblocks - 1] {
        out.write_gamma(body.len_bits());
    }
    for body in bodies {
        let nbits = body.len_bits();
        out.append(&body.into_bytes(), nbits);
    }
    let nbits = out.len_bits();
    (out.into_bytes(), nbits)
}

/// Serializes `g` into a v2 container byte image.
pub fn encode_container(g: &Graph, codec: Codec, block_size: usize) -> Vec<u8> {
    assert!(block_size >= 1, "block size must be at least 1");
    let n = g.num_vertices();

    let encoded: Vec<(Vec<u8>, u64)> = (0..n)
        .into_par_iter()
        .map(|v| encode_vertex(v as VertexId, g.neighbors(v as VertexId), codec, block_size))
        .collect();

    let mut bit_offsets: Vec<u64> = Vec::with_capacity(n + 1);
    let mut acc = 0u64;
    bit_offsets.push(0);
    for (_, bits) in &encoded {
        acc += bits;
        bit_offsets.push(acc);
    }
    let total_bits = acc;

    let mut arena_w = BitWriter::new();
    for (bytes, bits) in &encoded {
        arena_w.append(bytes, *bits);
    }
    let arena = arena_w.into_bytes();

    let arc_offsets: Vec<u64> = {
        let mut v = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        v.push(0);
        for u in 0..n {
            acc += g.degree(u as VertexId) as u64;
            v.push(acc);
        }
        v
    };
    // xtask:panic-ok(invariant: arc_offsets always has n+1 entries here)
    let arcs = *arc_offsets.last().unwrap();

    let ef_arcs = ef::encode(&arc_offsets, arcs);
    let ef_bits = ef::encode(&bit_offsets, total_bits);

    let mut out = Vec::with_capacity(HEADER_LEN + ef_arcs.len() + ef_bits.len() + arena.len());
    out.extend_from_slice(&V2_MAGIC);
    out.extend_from_slice(&V2_VERSION.to_le_bytes());
    out.extend_from_slice(&(block_size as u32).to_le_bytes());
    out.extend_from_slice(&(codec.id() as u32).to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&arcs.to_le_bytes());
    out.extend_from_slice(&(ef_arcs.len() as u64).to_le_bytes());
    out.extend_from_slice(&(ef_bits.len() as u64).to_le_bytes());
    out.extend_from_slice(&(arena.len() as u64).to_le_bytes());
    let mut payload_sum = fnv1a64(&ef_arcs);
    payload_sum = continue_fnv(payload_sum, &ef_bits);
    payload_sum = continue_fnv(payload_sum, &arena);
    out.extend_from_slice(&payload_sum.to_le_bytes());
    let header_sum = fnv1a64(&out);
    out.extend_from_slice(&header_sum.to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);
    out.extend_from_slice(&ef_arcs);
    out.extend_from_slice(&ef_bits);
    out.extend_from_slice(&arena);
    out
}

/// Continues an FNV-1a-64 stream over more bytes (matching
/// [`fnv1a64`]'s constants).
fn continue_fnv(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Backing bytes of an open container: owned heap or a memory map.
#[derive(Debug)]
enum Storage {
    Owned(Vec<u8>),
    Mapped(Mmap),
}

impl Storage {
    #[inline]
    fn bytes(&self) -> &[u8] {
        match self {
            Storage::Owned(v) => v,
            Storage::Mapped(m) => m.as_slice(),
        }
    }
}

/// An undirected graph in format v2 (see the module docs), backed either
/// by owned heap bytes or a zero-copy memory map.
#[derive(Debug)]
pub struct V2Graph {
    storage: Storage,
    ef_arcs: EfSeq,
    ef_bits: EfSeq,
    /// Absolute byte offset of the arena within the container.
    arena_off: usize,
    arena_len: usize,
    n: usize,
    arcs: u64,
    block_size: usize,
    codec: Codec,
}

impl V2Graph {
    /// Compresses an uncompressed CSR graph into an owned in-memory
    /// container with the default block size.
    pub fn from_graph(g: &Graph, codec: Codec) -> Self {
        Self::from_graph_with_block_size(g, codec, DEFAULT_BLOCK_SIZE)
    }

    /// Compresses with an explicit block size (≥ 1).
    pub fn from_graph_with_block_size(g: &Graph, codec: Codec, block_size: usize) -> Self {
        let bytes = encode_container(g, codec, block_size);
        Self::from_bytes(bytes).expect("freshly encoded container must validate")
    }

    /// Opens a container from owned bytes, verifying the header and the
    /// payload checksum.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, GraphFormatError> {
        Self::parse(Storage::Owned(bytes), true)
    }

    /// Reads a container file fully into memory (payload checksum
    /// verified).
    pub fn open(path: &Path) -> Result<Self, GraphFormatError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(bytes)
    }

    /// Memory-maps a container file zero-copy.
    ///
    /// Verifies the header checksum and the structural invariants of both
    /// offset indices, but does **not** fault in the adjacency arena (the
    /// point of out-of-core loading); arena decoding is bounds-checked, so
    /// corrupt arena bytes surface as typed errors (or panics with a
    /// message on the infallible access paths), never as wild reads. The
    /// file must not be truncated while mapped — containers are replaced
    /// atomically via tmp+rename, never truncated in place.
    pub fn open_mmap(path: &Path) -> Result<Self, GraphFormatError> {
        let file = File::open(path)?;
        let map = Mmap::map(&file)?;
        Self::parse(Storage::Mapped(map), false)
    }

    /// Writes the container image to `path` atomically (tmp + rename).
    pub fn write(
        g: &Graph,
        codec: Codec,
        block_size: usize,
        path: &Path,
    ) -> Result<(), GraphFormatError> {
        let bytes = encode_container(g, codec, block_size);
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    fn parse(storage: Storage, check_payload: bool) -> Result<Self, GraphFormatError> {
        let bytes = storage.bytes();
        if bytes.len() < HEADER_LEN {
            return Err(GraphFormatError::LengthMismatch {
                what: "container header",
                expected: HEADER_LEN as u64,
                actual: bytes.len() as u64,
            });
        }
        if bytes[0..4] != V2_MAGIC {
            return Err(GraphFormatError::BadMagic);
        }
        // xtask:panic-ok(infallible: fixed 8-byte window of a header whose length was checked against HEADER_LEN above)
        let header_sum = u64::from_le_bytes(bytes[64..72].try_into().unwrap());
        if fnv1a64(&bytes[0..64]) != header_sum {
            return Err(GraphFormatError::ChecksumMismatch { region: "header" });
        }
        // xtask:panic-ok(infallible: fixed window of the checked header)
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != V2_VERSION {
            return Err(GraphFormatError::UnsupportedVersion {
                found: version,
                supported: V2_VERSION,
            });
        }
        // xtask:panic-ok(infallible: fixed windows of the checked header)
        let block_size = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let codec_id = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let n = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        // xtask:panic-ok(infallible: fixed windows of the checked header)
        let arcs = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        let len_ef_arcs = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
        let len_ef_bits = u64::from_le_bytes(bytes[40..48].try_into().unwrap());
        // xtask:panic-ok(infallible: fixed windows of the checked header)
        let len_arena = u64::from_le_bytes(bytes[48..56].try_into().unwrap());
        let payload_sum = u64::from_le_bytes(bytes[56..64].try_into().unwrap());

        if block_size == 0 {
            return Err(GraphFormatError::Corrupt("zero block size"));
        }
        let codec = match u8::try_from(codec_id).ok().and_then(Codec::from_id) {
            Some(c) => c,
            None => return Err(GraphFormatError::Corrupt("unknown codec id")),
        };
        let expected_len = HEADER_LEN as u64 + len_ef_arcs + len_ef_bits + len_arena;
        if expected_len != bytes.len() as u64 {
            return Err(GraphFormatError::LengthMismatch {
                what: "container payload",
                expected: expected_len,
                actual: bytes.len() as u64,
            });
        }
        if n > u32::MAX as u64 {
            return Err(GraphFormatError::Corrupt("vertex count exceeds u32 id space"));
        }
        let n = n as usize;

        if check_payload {
            let mut sum = fnv1a64(&bytes[HEADER_LEN..HEADER_LEN + len_ef_arcs as usize]);
            sum = continue_fnv(
                sum,
                &bytes[HEADER_LEN + len_ef_arcs as usize..bytes.len() - len_arena as usize],
            );
            sum = continue_fnv(sum, &bytes[bytes.len() - len_arena as usize..]);
            if sum != payload_sum {
                return Err(GraphFormatError::ChecksumMismatch { region: "payload" });
            }
        }

        let ef_arcs = EfSeq::parse(bytes, HEADER_LEN)?;
        if ef_arcs.byte_len() as u64 != len_ef_arcs {
            return Err(GraphFormatError::LengthMismatch {
                what: "arc-offset index",
                expected: len_ef_arcs,
                actual: ef_arcs.byte_len() as u64,
            });
        }
        let ef_bits = EfSeq::parse(bytes, HEADER_LEN + len_ef_arcs as usize)?;
        if ef_bits.byte_len() as u64 != len_ef_bits {
            return Err(GraphFormatError::LengthMismatch {
                what: "bit-offset index",
                expected: len_ef_bits,
                actual: ef_bits.byte_len() as u64,
            });
        }
        // Structural validation of both indices — required before any
        // select() runs over untrusted bytes (see EfSeq::validate).
        ef_arcs.validate(bytes)?;
        ef_bits.validate(bytes)?;
        if ef_arcs.len() != n + 1 || ef_bits.len() != n + 1 {
            return Err(GraphFormatError::Corrupt("offset index length != n + 1"));
        }
        if n > 0 || arcs > 0 {
            if ef_arcs.get(bytes, n) != arcs {
                return Err(GraphFormatError::Corrupt("arc-offset total disagrees with header"));
            }
            if ef_bits.get(bytes, n) > len_arena * 8 {
                return Err(GraphFormatError::Corrupt("bit offsets exceed arena"));
            }
        }
        let arena_off = HEADER_LEN + len_ef_arcs as usize + len_ef_bits as usize;
        Ok(V2Graph {
            storage,
            ef_arcs,
            ef_bits,
            arena_off,
            arena_len: len_arena as usize,
            n,
            arcs,
            block_size,
            codec,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of stored directed arcs (`2m`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.arcs as usize
    }

    /// Degree of `v` — one Elias–Fano pair query.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let (a, b) = self.ef_arcs.get_pair(self.storage.bytes(), v as usize);
        (b - a) as usize
    }

    /// Global arc index of `v`'s first arc.
    #[inline]
    pub fn first_arc_index(&self, v: VertexId) -> u64 {
        self.ef_arcs.get(self.storage.bytes(), v as usize)
    }

    /// The configured block size.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The gap codec this container was encoded with.
    #[inline]
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// True when backed by a memory map rather than owned heap bytes.
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(self.storage, Storage::Mapped(_))
    }

    /// Size of the adjacency arena in bytes.
    #[inline]
    pub fn arena_bytes(&self) -> usize {
        self.arena_len
    }

    /// Total container size in bytes (header + indices + arena).
    #[inline]
    pub fn container_bytes(&self) -> usize {
        self.storage.bytes().len()
    }

    /// Heap bytes resident in this process: the whole container when
    /// owned, ~0 when memory-mapped (pages belong to the page cache).
    #[inline]
    pub fn resident_bytes(&self) -> usize {
        match &self.storage {
            Storage::Owned(v) => v.heap_bytes(),
            Storage::Mapped(_) => 0,
        }
    }

    #[inline]
    fn arena(&self) -> &[u8] {
        &self.storage.bytes()[self.arena_off..self.arena_off + self.arena_len]
    }

    /// Reader positioned at the start of `v`'s region, plus the degree.
    #[inline]
    fn vertex_reader(&self, v: VertexId) -> (BitReader<'_>, usize) {
        let start = self.ef_bits.get(self.storage.bytes(), v as usize);
        (BitReader::new(self.arena(), start), self.degree(v))
    }

    /// Checked sequential decode: calls `f` for every neighbor of `v` in
    /// sorted order, failing typed on malformed bytes.
    pub fn try_for_each_neighbor(
        &self,
        v: VertexId,
        f: &mut dyn FnMut(VertexId),
    ) -> Result<(), GraphFormatError> {
        let (mut r, deg) = self.vertex_reader(v);
        if deg == 0 {
            return Ok(());
        }
        let nblocks = deg.div_ceil(self.block_size);
        // Skip the block-length header; blocks are laid out back to back.
        for _ in 0..nblocks - 1 {
            r.read_gamma()?;
        }
        for b in 0..nblocks {
            let lo = b * self.block_size;
            let hi = ((b + 1) * self.block_size).min(deg);
            self.decode_block_body(v, &mut r, hi - lo, f)?;
        }
        Ok(())
    }

    /// Decodes `count` neighbors of one block, `r` positioned at its body.
    /// The codec match is hoisted out of the gap loop so each arm runs a
    /// monomorphized loop with the symbol reader inlined.
    fn decode_block_body(
        &self,
        v: VertexId,
        r: &mut BitReader<'_>,
        count: usize,
        f: &mut dyn FnMut(VertexId),
    ) -> Result<(), GraphFormatError> {
        match self.codec {
            Codec::Unary => self.decode_block_inner(v, r, count, f, |r| r.read_unary()),
            Codec::Gamma => self.decode_block_inner(v, r, count, f, |r| r.read_gamma()),
            Codec::Delta => self.decode_block_inner(v, r, count, f, |r| r.read_delta()),
            Codec::Zeta(k) => self.decode_block_inner(v, r, count, f, move |r| r.read_zeta(k)),
            Codec::Rice(k) => self.decode_block_inner(v, r, count, f, move |r| r.read_rice(k)),
            Codec::RiceAdaptive => {
                let k = r.read_bits(5)? as u32;
                self.decode_block_inner(v, r, count, f, move |r| r.read_rice(k))
            }
        }
    }

    #[inline]
    fn decode_block_inner(
        &self,
        v: VertexId,
        r: &mut BitReader<'_>,
        count: usize,
        f: &mut dyn FnMut(VertexId),
        read: impl Fn(&mut BitReader<'_>) -> Result<u64, GraphFormatError>,
    ) -> Result<(), GraphFormatError> {
        let first = v as i64 + unzigzag(read(r)?);
        if first < 0 || first >= self.n as i64 {
            return Err(GraphFormatError::VertexOutOfRange {
                vertex: v,
                decoded: first,
                n: self.n,
            });
        }
        f(first as VertexId);
        let mut prev = first as u64;
        for _ in 1..count {
            let gap = read(r)?;
            let next = prev + gap + 1;
            if next >= self.n as u64 {
                return Err(GraphFormatError::VertexOutOfRange {
                    vertex: v,
                    decoded: next as i64,
                    n: self.n,
                });
            }
            f(next as VertexId);
            prev = next;
        }
        Ok(())
    }

    /// Checked random access: the `i`-th neighbor of `v`, decoding only
    /// block `i / block_size`.
    pub fn try_ith_neighbor(&self, v: VertexId, i: usize) -> Result<VertexId, GraphFormatError> {
        let (mut r, deg) = self.vertex_reader(v);
        assert!(i < deg, "neighbor index {i} out of range for degree {deg}");
        let nblocks = deg.div_ceil(self.block_size);
        let b = i / self.block_size;
        let within = i % self.block_size;
        // Read the header; sum the lengths of the blocks before `b`.
        let mut skip = 0u64;
        for j in 0..nblocks - 1 {
            let len = r.read_gamma()?;
            if j < b {
                skip += len;
            }
        }
        let mut r = BitReader::new(self.arena(), r.bit_pos() + skip);
        let lo = b * self.block_size;
        let hi = ((b + 1) * self.block_size).min(deg);
        let mut result = 0;
        let mut k = 0usize;
        self.decode_block_body(v, &mut r, hi - lo, &mut |u| {
            if k == within {
                result = u;
            }
            k += 1;
        })?;
        Ok(result)
    }

    /// Fully decodes every adjacency list, verifying structure. O(n + m);
    /// used by tests and by callers that mmap untrusted files but want
    /// up-front validation anyway.
    pub fn validate(&self) -> Result<(), GraphFormatError> {
        for v in 0..self.n as VertexId {
            let mut prev: Option<VertexId> = None;
            let mut ok = true;
            self.try_for_each_neighbor(v, &mut |u| {
                if let Some(p) = prev {
                    ok &= u > p;
                }
                prev = Some(u);
            })?;
            if !ok {
                return Err(GraphFormatError::NonMonotoneNeighbors { vertex: v });
            }
        }
        Ok(())
    }

    /// Decompresses back to an uncompressed CSR graph.
    pub fn decompress(&self) -> Graph {
        let n = self.n;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut acc = 0u64;
        for v in 0..n {
            acc += self.degree(v as VertexId) as u64;
            offsets.push(acc);
        }
        let mut neighbors = vec![0 as VertexId; self.num_arcs()];
        let mut slices: Vec<&mut [VertexId]> = Vec::with_capacity(n);
        let mut rest: &mut [VertexId] = &mut neighbors;
        for v in 0..n {
            let (head, tail) = rest.split_at_mut(self.degree(v as VertexId));
            slices.push(head);
            rest = tail;
        }
        slices.into_par_iter().enumerate().for_each(|(v, dst)| {
            let mut k = 0;
            self.try_for_each_neighbor(v as VertexId, &mut |u| {
                dst[k] = u;
                k += 1;
            })
            .expect("container validated at open");
        });
        Graph::from_csr(offsets, neighbors)
    }
}

impl GraphAccess for V2Graph {
    #[inline]
    fn num_vertices(&self) -> usize {
        V2Graph::num_vertices(self)
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        V2Graph::num_arcs(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        V2Graph::degree(self, v)
    }

    #[inline]
    fn ith_neighbor(&self, v: VertexId, i: usize) -> VertexId {
        // xtask:panic-ok(container integrity was verified at load by the checksummed parse; decode failure here is unrecoverable corruption)
        self.try_ith_neighbor(v, i).expect("corrupt v2 container")
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        // xtask:panic-ok(container integrity was verified at load by the checksummed parse; decode failure here is unrecoverable corruption)
        self.try_for_each_neighbor(v, f).expect("corrupt v2 container")
    }

    #[inline]
    fn first_arc_index(&self, v: VertexId) -> u64 {
        V2Graph::first_arc_index(self, v)
    }

    #[inline]
    fn resident_bytes(&self) -> usize {
        V2Graph::resident_bytes(self)
    }
}

impl MemUsage for V2Graph {
    fn heap_bytes(&self) -> usize {
        self.resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use lightne_utils::rng::XorShiftStream;

    fn random_graph(n: usize, m: usize, seed: u64) -> Graph {
        let mut rng = XorShiftStream::new(seed, 0);
        let edges: Vec<(u32, u32)> =
            (0..m).map(|_| (rng.bounded_usize(n) as u32, rng.bounded_usize(n) as u32)).collect();
        GraphBuilder::from_edges(n, &edges)
    }

    /// Star graph whose hub has exactly `deg` neighbors `1..=deg`.
    fn star(deg: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (1..=deg as u32).map(|v| (0u32, v)).collect();
        GraphBuilder::from_edges(deg + 1, &edges)
    }

    fn check_equal(g: &Graph, c: &V2Graph) {
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_arcs(), g.num_arcs());
        c.validate().unwrap();
        assert_eq!(&c.decompress(), g);
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(c.degree(v), g.degree(v), "degree of {v}");
            assert_eq!(c.first_arc_index(v), g.offsets()[v as usize]);
            for i in 0..g.degree(v) {
                assert_eq!(c.try_ith_neighbor(v, i).unwrap(), g.ith_neighbor(v, i), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn roundtrip_every_codec() {
        let g = random_graph(300, 3_000, 17);
        for codec in Codec::SWEEP {
            let c = V2Graph::from_graph(&g, codec);
            check_equal(&g, &c);
            assert_eq!(c.codec(), codec);
        }
    }

    #[test]
    fn roundtrip_odd_block_sizes() {
        let g = random_graph(150, 2_000, 23);
        for bs in [1usize, 2, 3, 7, 63, 64, 65, 1024] {
            let c = V2Graph::from_graph_with_block_size(&g, Codec::Gamma, bs);
            check_equal(&g, &c);
        }
    }

    #[test]
    fn empty_graph_and_isolated_vertices() {
        let empty = GraphBuilder::from_edges(0, &[]);
        let c = V2Graph::from_graph(&empty, Codec::Gamma);
        assert_eq!(c.num_vertices(), 0);
        assert_eq!(c.num_arcs(), 0);
        c.validate().unwrap();

        let sparse = GraphBuilder::from_edges(10, &[(2, 7)]);
        let c = V2Graph::from_graph(&sparse, Codec::Delta);
        check_equal(&sparse, &c);
        let mut seen = Vec::new();
        c.try_for_each_neighbor(5, &mut |u| seen.push(u)).unwrap();
        assert!(seen.is_empty());
    }

    #[test]
    fn block_size_boundary_degrees() {
        for deg in [63usize, 64, 65, 127, 128, 129] {
            let g = star(deg);
            let c = V2Graph::from_graph(&g, Codec::Zeta(3));
            check_equal(&g, &c);
        }
    }

    #[test]
    fn max_gap_neighbor_lists() {
        // Two neighbors at the extreme ends of the id space: the largest
        // gap a u32-id graph can produce.
        let n = (u32::MAX - 1) as usize + 1;
        // Building a full-size graph is infeasible; emulate with the
        // largest ids GraphBuilder handles cheaply.
        let n = n.min(1 << 20);
        let g = GraphBuilder::from_edges(n, &[(0, (n - 1) as u32), (0, 1)]);
        for codec in Codec::SWEEP {
            let c = V2Graph::from_graph(&g, codec);
            check_equal(&g, &c);
        }
    }

    #[test]
    fn beats_v1_on_random_graph() {
        let g = random_graph(2_000, 40_000, 5);
        let v1 = crate::CompressedGraph::from_graph(&g);
        let v1_total = v1.arena_bytes() + 16 * (g.num_vertices() + 1);
        let best = Codec::SWEEP
            .iter()
            .map(|&c| V2Graph::from_graph(&g, c).container_bytes())
            .min()
            .unwrap();
        assert!(
            (best as f64) < 0.8 * v1_total as f64,
            "v2 best {best} bytes vs v1 {v1_total} bytes"
        );
    }

    #[test]
    fn file_roundtrip_in_memory_and_mmap() {
        let g = random_graph(400, 6_000, 31);
        let mut path = std::env::temp_dir();
        path.push(format!("lightne-v2-test-{}.lng2", std::process::id()));
        V2Graph::write(&g, Codec::Zeta(2), DEFAULT_BLOCK_SIZE, &path).unwrap();

        let owned = V2Graph::open(&path).unwrap();
        check_equal(&g, &owned);
        assert!(!owned.is_mapped());
        assert!(owned.resident_bytes() > 0);

        #[cfg(not(miri))]
        {
            let mapped = V2Graph::open_mmap(&path).unwrap();
            check_equal(&g, &mapped);
            assert!(mapped.is_mapped());
            assert_eq!(mapped.resident_bytes(), 0);
            assert_eq!(mapped.container_bytes(), owned.container_bytes());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_is_atomic_no_tmp_left_behind() {
        let g = star(10);
        let mut path = std::env::temp_dir();
        path.push(format!("lightne-v2-atomic-{}.lng2", std::process::id()));
        V2Graph::write(&g, Codec::Gamma, 64, &path).unwrap();
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_byte_flip_is_detected_or_harmless() {
        // In-memory open verifies the payload checksum, so ANY single-bit
        // flip anywhere in the container must be rejected at open or —
        // if it hits the checksum fields themselves — also rejected.
        let g = random_graph(60, 400, 41);
        let bytes = encode_container(&g, Codec::Gamma, 64);
        V2Graph::from_bytes(bytes.clone()).unwrap();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(V2Graph::from_bytes(corrupt).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn truncated_container_fails_typed() {
        let g = random_graph(50, 300, 43);
        let bytes = encode_container(&g, Codec::Delta, 64);
        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN, bytes.len() / 2, bytes.len() - 1] {
            match V2Graph::from_bytes(bytes[..cut].to_vec()) {
                Err(_) => {}
                Ok(_) => panic!("prefix of {cut} bytes parsed"),
            }
        }
    }

    #[test]
    fn hostile_arena_fails_typed_not_panic() {
        // Mmap-style open skips the payload checksum; corrupt arena bytes
        // must surface as typed errors from the checked decode paths.
        let g = random_graph(80, 600, 47);
        let mut bytes = encode_container(&g, Codec::Gamma, 64);
        let arena_start = bytes.len() - 10;
        for b in bytes.iter_mut().skip(arena_start) {
            *b = 0xFF;
        }
        // Rewrite nothing else: header checksum still valid, payload not.
        assert!(matches!(
            V2Graph::from_bytes(bytes.clone()),
            Err(GraphFormatError::ChecksumMismatch { region: "payload" })
        ));
        // Bypass the payload check the way open_mmap would.
        let c = match V2Graph::parse(Storage::Owned(bytes), false) {
            Ok(c) => c,
            Err(_) => return, // structural validation already caught it
        };
        let mut failures = 0;
        for v in 0..c.num_vertices() as u32 {
            if c.try_for_each_neighbor(v, &mut |_| {}).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0, "overwritten arena tail decoded cleanly");
    }

    #[test]
    fn wrong_magic_and_version() {
        let g = star(4);
        let mut bytes = encode_container(&g, Codec::Gamma, 64);
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(V2Graph::from_bytes(wrong_magic), Err(GraphFormatError::BadMagic)));

        // Bump the version and re-stamp the header checksum so the
        // version check (not the checksum) fires.
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let sum = fnv1a64(&bytes[0..64]);
        bytes[64..72].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            V2Graph::from_bytes(bytes),
            Err(GraphFormatError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn container_smaller_than_plain_offsets() {
        // The EF indices must undercut v1's 16 bytes/vertex of offsets.
        let g = random_graph(5_000, 50_000, 53);
        let c = V2Graph::from_graph(&g, Codec::Zeta(3));
        let index_bytes = c.container_bytes() - c.arena_bytes() - HEADER_LEN;
        assert!(index_bytes < 8 * (g.num_vertices() + 1), "EF indices take {index_bytes} bytes");
    }
}
