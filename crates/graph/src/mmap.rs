//! Read-only memory mapping of container files.
//!
//! This is the **only** module in the crate where unsafe code is allowed
//! (`#![allow(unsafe_code)]` below against the crate-wide deny): it wraps
//! the raw `mmap(2)`/`munmap(2)` system calls behind [`Mmap`], an owned
//! read-only mapping that derefs to `&[u8]`. Everything above this layer —
//! the v2 container, the Elias–Fano index, the bit codecs — consumes plain
//! byte slices through fully bounds-checked decoders, so the unsafe
//! surface is exactly these few lines.
//!
//! Safety argument for handing out `&[u8]` over a file mapping: the
//! mapping is `PROT_READ` + `MAP_PRIVATE`, so the kernel delivers a
//! copy-on-write snapshot that this process cannot write through and other
//! processes' writes do not alter (private mappings see the pages as of
//! fault time; the container format additionally carries checksums so a
//! torn file fails typed at open). The pointer is page-aligned, non-null,
//! and valid for `len` bytes for the lifetime of the `Mmap`, which unmaps
//! on drop. A file truncated *while mapped* can still SIGBUS on fault —
//! the one hazard `&[u8]` cannot express — which is why containers are
//! written via tmp+rename (no in-place truncation of live files) and the
//! limitation is documented at the public entry point.
//!
//! We declare the libc prototypes ourselves instead of depending on a
//! `libc` crate: std already links the platform C library, and the two
//! symbols used here are in POSIX.

#![allow(unsafe_code)]

use std::fs::File;
use std::io;
use std::os::fd::AsRawFd;

mod ffi {
    //! Minimal POSIX prototypes resolved from the C library std links.
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 0x02;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// An owned read-only, private memory mapping of an entire file.
///
/// Derefs to `&[u8]`; unmapped on drop. See the module docs for the
/// safety argument and the file-truncation caveat.
#[derive(Debug)]
pub struct Mmap {
    ptr: *mut std::os::raw::c_void,
    len: usize,
}

// SAFETY: the mapping is read-only for its whole lifetime (PROT_READ,
// never mprotect'd), so shared references to its bytes may cross threads
// exactly like an `Arc<[u8]>`; the raw pointer is only used to unmap in
// Drop, which takes `&mut self`.
unsafe impl Send for Mmap {}
// SAFETY: as above — all access is through `&self` yielding `&[u8]` into
// immutable pages.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    ///
    /// Returns an empty mapping (no syscall) for a zero-length file, since
    /// `mmap` rejects `len == 0`.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Mmap { ptr: std::ptr::null_mut(), len: 0 });
        }
        // SAFETY: fd is a valid open file descriptor borrowed from `file`
        // for the duration of the call; addr = NULL lets the kernel pick a
        // page-aligned address; len > 0 was checked above. On success the
        // kernel guarantees `ptr` is valid for `len` bytes of read access
        // until munmap.
        let ptr = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                len,
                ffi::PROT_READ,
                ffi::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == ffi::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` came from a successful PROT_READ mmap of exactly
        // `len` bytes and stays mapped until Drop; the pages are never
        // writable through this process, so `&[u8]` aliasing rules hold
        // for the lifetime of `&self`.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }

    /// Length of the mapping in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length mapping.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len == 0 {
            return;
        }
        // SAFETY: `(ptr, len)` is exactly the region returned by the mmap
        // in `map`, not yet unmapped (Drop runs once), and no `&[u8]` into
        // it can outlive `self` (as_slice ties the lifetime to `&self`).
        unsafe {
            ffi::munmap(self.ptr, self.len);
        }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lightne-mmap-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn maps_file_contents() {
        let path = tmp_path("contents");
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 7) as u8).collect();
        std::fs::File::create(&path).unwrap().write_all(&data).unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert_eq!(&*map, &data[..]);
        assert_eq!(map.len(), data.len());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = tmp_path("empty");
        std::fs::File::create(&path).unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert!(map.is_empty());
        assert_eq!(&*map, &[] as &[u8]);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapping_outlives_file_handle_and_unlink() {
        let path = tmp_path("unlink");
        std::fs::File::create(&path).unwrap().write_all(b"still here").unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        drop(file);
        std::fs::remove_file(&path).unwrap();
        // The pages stay valid after close + unlink (POSIX keeps the
        // backing object until the last mapping goes away).
        assert_eq!(&*map, b"still here");
    }

    #[test]
    fn is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<Mmap>();
    }
}
