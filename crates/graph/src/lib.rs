//! GBBS/Ligra+-style parallel graph substrate for LightNE.
//!
//! LightNE (Section 4.1) builds on the Graph Based Benchmark Suite (GBBS),
//! which extends Ligra with purely-functional bulk-parallel primitives and
//! the *parallel-byte* compressed CSR format of Ligra+. This crate is a
//! from-scratch Rust reproduction of the parts of that stack the embedding
//! system needs:
//!
//! * [`csr::Graph`] — an uncompressed CSR graph with `u32` vertex ids.
//! * [`builder::GraphBuilder`] — parallel CSR construction from edge lists
//!   (sort + dedup + symmetrize), the standard GBBS ingestion path.
//! * [`compressed::CompressedGraph`] — CSR with neighbor lists compressed
//!   in the parallel-byte format: difference-encoded blocks of a
//!   configurable size (64 by default, the trade-off chosen in Section 4.2),
//!   with per-block offsets so blocks decode in parallel and the `i`-th
//!   neighbor of a vertex is fetched by decoding a single block.
//! * [`ops::GraphOps`] — the uniform interface (degrees, neighbor access,
//!   `map_edges`, `map_vertices`) that both representations implement, so
//!   the sampler is generic over compression.
//! * [`frontier`] — Ligra's `VertexSubset` + direction-switching
//!   `edge_map`, the traversal interface GBBS extends.
//! * [`algorithms`] — BFS, connected components, triangle counting and
//!   k-core built on the frontier machinery.
//! * [`walk`] — the one-step-at-a-time random-walk engine used by
//!   PathSampling (Algorithm 1).
//! * [`io`] — text edge-list and binary CSR readers/writers.
//! * [`codecs`] / [`ef`] / [`v2`] — graph format v2: bit-granular
//!   instantaneous codes (γ/δ/ζ), Elias–Fano offset indices, and an
//!   on-disk container loadable in-memory or zero-copy via [`mmap`].
//!
//! Unsafe code is denied crate-wide except in [`mmap`], the single module
//! that wraps the `mmap(2)`/`munmap(2)` system calls; every unsafe block
//! there carries a SAFETY comment (enforced by `cargo xtask check`, L1).

#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod builder;
pub mod codecs;
pub mod compressed;
pub mod csr;
pub mod ef;
pub mod error;
pub mod frontier;
pub mod io;
pub mod mmap;
pub mod ops;
pub mod v2;
pub mod walk;
pub mod weighted;

pub use builder::GraphBuilder;
pub use codecs::Codec;
pub use compressed::CompressedGraph;
pub use csr::Graph;
pub use error::GraphFormatError;
pub use ops::{GraphAccess, GraphOps};
pub use v2::V2Graph;
pub use weighted::WeightedGraph;

/// Vertex identifier. `u32` covers every graph this reproduction targets
/// and halves the memory of every neighbor array relative to `u64` ids,
/// matching the id width GBBS uses for graphs below 4B vertices.
pub type VertexId = u32;
