//! Typed errors for the compressed graph formats.
//!
//! Every decode path that consumes bytes it did not just produce — a file
//! read back from disk, a memory-mapped container, a v1 arena handed in by
//! a caller — must fail *typed* on malformed input instead of panicking or
//! reading out of bounds. [`GraphFormatError`] is that shared vocabulary,
//! used by the bounds-checked v1 decoders ([`crate::compressed`]), the
//! bit-granular codecs ([`crate::codecs`]), the Elias–Fano offset index
//! ([`crate::ef`]) and the v2 container ([`crate::v2`]).

use std::fmt;
use std::io;

/// A typed failure while decoding or validating a compressed graph.
#[derive(Debug)]
pub enum GraphFormatError {
    /// A read ran past the end of the available bytes. Carries the bit
    /// offset at which the decoder was positioned when it ran out.
    Truncated {
        /// Bit offset of the failed read.
        at_bit: u64,
    },
    /// A decoded value exceeds what the format permits at that position
    /// (e.g. a varint longer than 64 bits, or a unary run that would
    /// overflow the value domain).
    Overflow {
        /// Bit (or byte, for byte-aligned formats) offset of the value.
        at_bit: u64,
    },
    /// A decoded neighbor id falls outside `0..n`.
    VertexOutOfRange {
        /// The vertex whose adjacency was being decoded.
        vertex: u32,
        /// The out-of-range id that was decoded.
        decoded: i64,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// Neighbor lists must be strictly increasing; a non-positive gap was
    /// decoded.
    NonMonotoneNeighbors {
        /// The vertex whose adjacency was being decoded.
        vertex: u32,
    },
    /// The container's magic bytes did not match.
    BadMagic,
    /// The container's format version is not supported by this build.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// A checksum recorded in the container does not match the bytes.
    ChecksumMismatch {
        /// Which region failed ("header" or "payload").
        region: &'static str,
    },
    /// A structural size recorded in the header disagrees with the actual
    /// byte count.
    LengthMismatch {
        /// What was being sized.
        what: &'static str,
        /// The size the header claims.
        expected: u64,
        /// The size actually present.
        actual: u64,
    },
    /// A structural invariant of the format does not hold (offsets not
    /// monotone, degree/offset disagreement, …).
    Corrupt(&'static str),
    /// Underlying I/O failure while reading or writing a container.
    Io(io::Error),
}

impl fmt::Display for GraphFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphFormatError::Truncated { at_bit } => {
                write!(f, "truncated input: read past end at bit {at_bit}")
            }
            GraphFormatError::Overflow { at_bit } => {
                write!(f, "value overflow while decoding at bit {at_bit}")
            }
            GraphFormatError::VertexOutOfRange { vertex, decoded, n } => {
                write!(f, "neighbor {decoded} of vertex {vertex} out of range (n = {n})")
            }
            GraphFormatError::NonMonotoneNeighbors { vertex } => {
                write!(f, "non-monotone neighbor list for vertex {vertex}")
            }
            GraphFormatError::BadMagic => write!(f, "bad magic bytes"),
            GraphFormatError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported format version {found} (this build reads {supported})")
            }
            GraphFormatError::ChecksumMismatch { region } => {
                write!(f, "{region} checksum mismatch")
            }
            GraphFormatError::LengthMismatch { what, expected, actual } => {
                write!(f, "{what}: header claims {expected} bytes, found {actual}")
            }
            GraphFormatError::Corrupt(what) => write!(f, "corrupt graph container: {what}"),
            GraphFormatError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphFormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphFormatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphFormatError {
    fn from(e: io::Error) -> Self {
        GraphFormatError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(GraphFormatError, &str)> = vec![
            (GraphFormatError::Truncated { at_bit: 17 }, "bit 17"),
            (GraphFormatError::BadMagic, "magic"),
            (GraphFormatError::UnsupportedVersion { found: 9, supported: 2 }, "version 9"),
            (GraphFormatError::ChecksumMismatch { region: "payload" }, "payload"),
            (GraphFormatError::LengthMismatch { what: "arena", expected: 10, actual: 3 }, "arena"),
            (GraphFormatError::VertexOutOfRange { vertex: 1, decoded: -4, n: 2 }, "-4"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: GraphFormatError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
