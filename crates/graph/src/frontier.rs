//! Ligra-style frontier-based traversal: `VertexSubset` + `edge_map`.
//!
//! GBBS (Section 4.1) extends the Ligra interface, whose central idea is
//! a *vertex subset* (the frontier) and an `edgeMap` primitive that
//! applies an update function over all edges leaving the frontier,
//! returning the subset of target vertices for which the update
//! succeeded. Ligra's key optimization — inherited by GBBS and
//! reproduced here — is **direction switching**: when the frontier is
//! small, iterate its out-edges ("sparse"/push mode); when it covers a
//! large fraction of the graph, instead scan every candidate target's
//! in-edges ("dense"/pull mode), which avoids the scatter and enables
//! early exit. For symmetric graphs (all of LightNE's inputs) in- and
//! out-neighbors coincide.

use crate::{GraphOps, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// A subset of vertices, stored sparsely (id list) or densely (bitmap).
#[derive(Debug, Clone)]
pub enum VertexSubset {
    /// Explicit vertex ids (unordered, unique).
    Sparse(Vec<VertexId>),
    /// One flag per vertex.
    Dense(Vec<bool>),
}

impl VertexSubset {
    /// The empty subset.
    pub fn empty() -> Self {
        VertexSubset::Sparse(Vec::new())
    }

    /// A singleton subset.
    pub fn single(v: VertexId) -> Self {
        VertexSubset::Sparse(vec![v])
    }

    /// Builds from an id list.
    pub fn from_vertices(mut vs: Vec<VertexId>) -> Self {
        vs.sort_unstable();
        vs.dedup();
        VertexSubset::Sparse(vs)
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        match self {
            VertexSubset::Sparse(v) => v.len(),
            VertexSubset::Dense(b) => b.par_iter().filter(|&&x| x).count(),
        }
    }

    /// Whether the subset is empty.
    pub fn is_empty(&self) -> bool {
        match self {
            VertexSubset::Sparse(v) => v.is_empty(),
            VertexSubset::Dense(b) => !b.par_iter().any(|&x| x),
        }
    }

    /// Membership test (O(len) for sparse; callers needing many tests
    /// should densify first).
    pub fn contains(&self, v: VertexId) -> bool {
        match self {
            VertexSubset::Sparse(ids) => ids.contains(&v),
            VertexSubset::Dense(b) => b[v as usize],
        }
    }

    /// Converts to the dense representation over `n` vertices.
    pub fn to_dense(&self, n: usize) -> Vec<bool> {
        match self {
            VertexSubset::Dense(b) => b.clone(),
            VertexSubset::Sparse(ids) => {
                let mut b = vec![false; n];
                for &v in ids {
                    b[v as usize] = true;
                }
                b
            }
        }
    }

    /// Converts to a sorted sparse id list.
    pub fn to_sparse(&self) -> Vec<VertexId> {
        match self {
            VertexSubset::Sparse(ids) => {
                let mut v = ids.clone();
                v.sort_unstable();
                v
            }
            VertexSubset::Dense(b) => (0..b.len() as VertexId).filter(|&v| b[v as usize]).collect(),
        }
    }

    /// Total degree of the subset's members (used by the direction
    /// heuristic).
    pub fn out_degree_sum<G: GraphOps>(&self, g: &G) -> usize {
        match self {
            VertexSubset::Sparse(ids) => ids.par_iter().map(|&v| g.degree(v)).sum(),
            VertexSubset::Dense(b) => (0..b.len())
                .into_par_iter()
                .filter(|&v| b[v])
                .map(|v| g.degree(v as VertexId))
                .sum(),
        }
    }
}

/// Ligra's direction threshold: switch to dense when the frontier plus
/// its out-edges exceed `arcs / DENSE_FRACTION`.
const DENSE_FRACTION: usize = 20;

/// Applies `update(u, v)` over every arc `u → v` with `u` in `frontier`
/// and `cond(v)` true, returning the subset of `v` for which some call
/// returned `true`.
///
/// ```
/// use lightne_graph::{GraphBuilder, frontier::{edge_map, VertexSubset}};
/// let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// let next = edge_map(&g, &VertexSubset::single(1), |_, _| true, |_| true);
/// assert_eq!(next.to_sparse(), vec![0, 2]);
/// ```
///
/// Each target enters the output at most once; `update` must therefore
/// be safe to call concurrently and idempotent-friendly (the classic
/// Ligra contract — use CAS inside `update` to claim).
pub fn edge_map<G, U, C>(g: &G, frontier: &VertexSubset, update: U, cond: C) -> VertexSubset
where
    G: GraphOps,
    U: Fn(VertexId, VertexId) -> bool + Sync + Send,
    C: Fn(VertexId) -> bool + Sync + Send,
{
    let n = g.num_vertices();
    let work = frontier.len() + frontier.out_degree_sum(g);
    if work * DENSE_FRACTION > g.num_arcs() + n {
        edge_map_dense(g, frontier, update, cond)
    } else {
        edge_map_sparse(g, frontier, update, cond)
    }
}

/// Push-mode `edge_map` (always sparse output representation).
pub fn edge_map_sparse<G, U, C>(g: &G, frontier: &VertexSubset, update: U, cond: C) -> VertexSubset
where
    G: GraphOps,
    U: Fn(VertexId, VertexId) -> bool + Sync + Send,
    C: Fn(VertexId) -> bool + Sync + Send,
{
    let n = g.num_vertices();
    let claimed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let ids = frontier.to_sparse();
    let out: Vec<VertexId> = ids
        .par_iter()
        .flat_map_iter(|&u| {
            let mut local = Vec::new();
            g.for_each_neighbor(u, &mut |v| {
                if cond(v) && update(u, v) && !claimed[v as usize].swap(true, Ordering::Relaxed) {
                    local.push(v);
                }
            });
            local
        })
        .collect();
    VertexSubset::Sparse(out)
}

/// Pull-mode `edge_map`: every candidate target scans its (in-)neighbors
/// for a frontier member, stopping at the first successful update.
pub fn edge_map_dense<G, U, C>(g: &G, frontier: &VertexSubset, update: U, cond: C) -> VertexSubset
where
    G: GraphOps,
    U: Fn(VertexId, VertexId) -> bool + Sync + Send,
    C: Fn(VertexId) -> bool + Sync + Send,
{
    let n = g.num_vertices();
    let in_frontier = frontier.to_dense(n);
    let out: Vec<bool> = (0..n as VertexId)
        .into_par_iter()
        .map(|v| {
            if !cond(v) {
                return false;
            }
            let mut hit = false;
            g.for_each_neighbor(v, &mut |u| {
                // Symmetric graph: u is also an in-neighbor of v.
                if !hit && in_frontier[u as usize] && update(u, v) {
                    hit = true;
                }
            });
            hit
        })
        .collect();
    VertexSubset::Dense(out)
}

/// Applies `f` to every member of the subset, in parallel.
pub fn vertex_map<F>(subset: &VertexSubset, f: F)
where
    F: Fn(VertexId) + Sync + Send,
{
    match subset {
        VertexSubset::Sparse(ids) => ids.par_iter().for_each(|&v| f(v)),
        VertexSubset::Dense(b) => {
            (0..b.len() as VertexId).into_par_iter().filter(|&v| b[v as usize]).for_each(f)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use std::sync::atomic::AtomicU32;

    fn path(n: usize) -> crate::Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
        GraphBuilder::from_edges(n, &edges)
    }

    #[test]
    fn subset_representations_agree() {
        let s = VertexSubset::from_vertices(vec![3, 1, 3, 7]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(1) && s.contains(3) && s.contains(7));
        assert!(!s.contains(2));
        let d = VertexSubset::Dense(s.to_dense(10));
        assert_eq!(d.len(), 3);
        assert_eq!(d.to_sparse(), vec![1, 3, 7]);
    }

    #[test]
    fn empty_subset() {
        let s = VertexSubset::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn edge_map_expands_frontier_once_per_target() {
        let g = path(10);
        let hits: Vec<AtomicU32> = (0..10).map(|_| AtomicU32::new(0)).collect();
        let next = edge_map(
            &g,
            &VertexSubset::single(5),
            |_, v| {
                hits[v as usize].fetch_add(1, Ordering::Relaxed);
                true
            },
            |_| true,
        );
        let mut got = next.to_sparse();
        got.sort_unstable();
        assert_eq!(got, vec![4, 6]);
    }

    #[test]
    fn sparse_and_dense_modes_agree() {
        let g = GraphBuilder::from_edges(
            8,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (0, 7)],
        );
        let frontier = VertexSubset::from_vertices(vec![0, 3]);
        let a = edge_map_sparse(&g, &frontier, |_, _| true, |v| v != 4);
        let b = edge_map_dense(&g, &frontier, |_, _| true, |v| v != 4);
        assert_eq!(a.to_sparse(), b.to_sparse());
    }

    #[test]
    fn cond_filters_targets() {
        let g = path(6);
        let next = edge_map(&g, &VertexSubset::single(2), |_, _| true, |v| v > 2);
        assert_eq!(next.to_sparse(), vec![3]);
    }

    #[test]
    fn update_false_excludes_target() {
        let g = path(6);
        let next = edge_map(&g, &VertexSubset::single(2), |_, v| v == 1, |_| true);
        assert_eq!(next.to_sparse(), vec![1]);
    }

    #[test]
    fn vertex_map_visits_members_only() {
        let s = VertexSubset::from_vertices(vec![2, 4]);
        let hits: Vec<AtomicU32> = (0..6).map(|_| AtomicU32::new(0)).collect();
        vertex_map(&s, |v| {
            hits[v as usize].fetch_add(1, Ordering::Relaxed);
        });
        let got: Vec<u32> = hits.iter().map(|h| h.load(Ordering::Relaxed)).collect();
        assert_eq!(got, vec![0, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn dense_mode_triggers_on_large_frontier() {
        // A star graph: frontier = hub → out-degree is n-1 → dense path.
        let edges: Vec<(u32, u32)> = (1..200u32).map(|v| (0, v)).collect();
        let g = GraphBuilder::from_edges(200, &edges);
        let next = edge_map(&g, &VertexSubset::single(0), |_, _| true, |_| true);
        assert_eq!(next.len(), 199);
        assert!(matches!(next, VertexSubset::Dense(_)));
    }
}
