//! Uncompressed CSR (compressed sparse row) graph representation.
//!
//! This is the baseline representation the paper calls "CSR (without extra
//! compression)": an offsets array of `n + 1` entries and a flat neighbor
//! array of `2m` entries (each undirected edge stored in both directions).
//! Fetching the `i`-th neighbor of a vertex is a single indexed load, which
//! is why the random-walk engine is fastest on this layout.

use crate::VertexId;
use lightne_utils::mem::MemUsage;

/// An undirected graph in CSR form. Neighbor lists are sorted and contain
/// no duplicates or self-loops (enforced by [`crate::GraphBuilder`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<u64>,
    neighbors: Vec<VertexId>,
}

impl Graph {
    /// Builds a graph directly from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent: `offsets` must be
    /// monotonically non-decreasing, start at 0, and end at
    /// `neighbors.len()`; every neighbor must be `< offsets.len() - 1`.
    pub fn from_csr(offsets: Vec<u64>, neighbors: Vec<VertexId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            neighbors.len() as u64,
            "offsets must end at neighbors.len()"
        );
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets must be non-decreasing");
        let n = offsets.len() - 1;
        assert!(neighbors.iter().all(|&v| (v as usize) < n), "neighbor id out of range");
        Self { offsets, neighbors }
    }

    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self { offsets: vec![0; n + 1], neighbors: Vec::new() }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m` (half the stored directed arcs).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Number of stored directed arcs (`2m` for a symmetric graph).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.neighbors.len()
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// The `i`-th neighbor of `v` (0-based). O(1).
    #[inline]
    pub fn ith_neighbor(&self, v: VertexId, i: usize) -> VertexId {
        self.neighbors[self.offsets[v as usize] as usize + i]
    }

    /// Whether the edge `(u, v)` exists (binary search over `u`'s list).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The volume of the graph, `vol(G) = Σ_v deg(v) = 2m`.
    #[inline]
    pub fn volume(&self) -> f64 {
        self.neighbors.len() as f64
    }

    /// Raw offsets array (length `n + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw neighbor array (length `2m`).
    pub fn neighbor_array(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        lightne_utils::parallel::parallel_reduce_max(self.num_vertices(), |v| {
            self.degree(v as VertexId) as u64
        })
        .unwrap_or(0) as usize
    }
}

impl MemUsage for Graph {
    fn heap_bytes(&self) -> usize {
        self.offsets.heap_bytes() + self.neighbors.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        // 0-1, 0-2, 1-2
        Graph::from_csr(vec![0, 2, 4, 6], vec![1, 2, 0, 2, 0, 1])
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.volume(), 6.0);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle();
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.ith_neighbor(1, 1), 2);
    }

    #[test]
    fn has_edge_works() {
        let g = Graph::from_csr(vec![0, 1, 2, 2], vec![1, 0]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(2, 0));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    #[should_panic(expected = "neighbor id out of range")]
    fn rejects_out_of_range_neighbor() {
        Graph::from_csr(vec![0, 1], vec![7]);
    }

    #[test]
    #[should_panic(expected = "offsets must end")]
    fn rejects_bad_offsets() {
        Graph::from_csr(vec![0, 3], vec![0]);
    }

    #[test]
    fn max_degree_star() {
        // star: 0 connected to 1..=4
        let g = Graph::from_csr(vec![0, 4, 5, 6, 7, 8], vec![1, 2, 3, 4, 0, 0, 0, 0]);
        assert_eq!(g.max_degree(), 4);
    }
}
