//! Graph serialization: text edge lists and a binary CSR format.
//!
//! The text format is the de-facto standard of the network-embedding
//! literature (one `u v` pair per line, `#` comments); the binary format is
//! a direct dump of the CSR arrays with a magic header, so very large
//! generated graphs round-trip without re-parsing.

use crate::{Graph, GraphBuilder, VertexId};
use bytes::{Buf, BufMut};
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying the binary CSR format.
pub const BINARY_MAGIC: &[u8; 4] = b"LNE2";

/// Version of the binary CSR format this build reads and writes.
/// Version 2 added the version field itself and the payload checksum
/// (version-1 files, magic `LNE1`, are rejected with a bad-magic error).
pub const BINARY_VERSION: u32 = 2;

/// Errors produced by graph I/O.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line in a text edge list (line number, content).
    Parse(usize, String),
    /// Binary payload is malformed or truncated.
    Corrupt(&'static str),
    /// The binary header's format version is not supported by this build.
    BadVersion {
        /// The version found in the header.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// The payload checksum recorded in the header does not match.
    ChecksumMismatch,
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "i/o error: {e}"),
            GraphIoError::Parse(line, text) => write!(f, "parse error on line {line}: {text:?}"),
            GraphIoError::Corrupt(what) => write!(f, "corrupt binary graph: {what}"),
            GraphIoError::BadVersion { found, supported } => {
                write!(f, "unsupported binary graph version {found} (this build reads {supported})")
            }
            GraphIoError::ChecksumMismatch => write!(f, "binary graph checksum mismatch"),
        }
    }
}

impl std::error::Error for GraphIoError {}

impl From<io::Error> for GraphIoError {
    fn from(e: io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

/// Reads a whitespace-separated edge list. Lines starting with `#` or `%`
/// are comments; blank lines are skipped. Vertex ids must fit in `u32`.
/// The number of vertices is `max id + 1` unless `min_vertices` is larger.
pub fn read_edge_list(path: impl AsRef<Path>, min_vertices: usize) -> Result<Graph, GraphIoError> {
    let file = File::open(path)?;
    let reader = BufReader::with_capacity(1 << 20, file);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: usize = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> Result<VertexId, GraphIoError> {
            s.and_then(|x| x.parse::<VertexId>().ok())
                .ok_or_else(|| GraphIoError::Parse(lineno + 1, t.to_string()))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_id = max_id.max(u as usize).max(v as usize);
        edges.push((u, v));
    }
    let n = (max_id + 1).max(min_vertices).max(1);
    Ok(GraphBuilder::from_edges(n, &edges))
}

/// Reads a weighted edge list (`u v w` per line; `w` optional and
/// defaulting to 1.0, so unweighted files load too). Comments as in
/// [`read_edge_list`].
pub fn read_weighted_edge_list(
    path: impl AsRef<Path>,
    min_vertices: usize,
) -> Result<crate::WeightedGraph, GraphIoError> {
    let file = File::open(path)?;
    let reader = BufReader::with_capacity(1 << 20, file);
    let mut edges: Vec<(VertexId, VertexId, f32)> = Vec::new();
    let mut max_id: usize = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse_v = |s: Option<&str>| -> Result<VertexId, GraphIoError> {
            s.and_then(|x| x.parse::<VertexId>().ok())
                .ok_or_else(|| GraphIoError::Parse(lineno + 1, t.to_string()))
        };
        let u = parse_v(it.next())?;
        let v = parse_v(it.next())?;
        let w = match it.next() {
            None => 1.0,
            Some(s) => s
                .parse::<f32>()
                .ok()
                .filter(|w| *w > 0.0 && w.is_finite())
                .ok_or_else(|| GraphIoError::Parse(lineno + 1, t.to_string()))?,
        };
        max_id = max_id.max(u as usize).max(v as usize);
        edges.push((u, v, w));
    }
    let n = (max_id + 1).max(min_vertices).max(1);
    Ok(crate::WeightedGraph::from_edges(n, &edges))
}

/// Writes the graph as a text edge list, one undirected edge per line
/// (each edge emitted once, with `u < v`).
pub fn write_edge_list(g: &Graph, path: impl AsRef<Path>) -> Result<(), GraphIoError> {
    let mut w = BufWriter::with_capacity(1 << 20, File::create(path)?);
    writeln!(w, "# lightne edge list: n={} m={}", g.num_vertices(), g.num_edges())?;
    for u in 0..g.num_vertices() as VertexId {
        for &v in g.neighbors(u) {
            if u < v {
                writeln!(w, "{u} {v}")?;
            }
        }
    }
    w.flush()?;
    Ok(())
}

/// Fixed binary header length: magic + version + n + arcs + checksum.
const BINARY_HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8;

/// Serializes the graph to the binary CSR format (header with magic,
/// version, and an FNV-1a-64 payload checksum, then the raw CSR arrays).
pub fn write_binary(g: &Graph, path: impl AsRef<Path>) -> Result<(), GraphIoError> {
    let mut payload = Vec::with_capacity(g.offsets().len() * 8 + g.num_arcs() * 4);
    for &o in g.offsets() {
        payload.put_u64_le(o);
    }
    for &v in g.neighbor_array() {
        payload.put_u32_le(v);
    }
    let mut buf = Vec::with_capacity(BINARY_HEADER_LEN + payload.len());
    buf.put_slice(BINARY_MAGIC);
    buf.put_u32_le(BINARY_VERSION);
    buf.put_u64_le(g.num_vertices() as u64);
    buf.put_u64_le(g.num_arcs() as u64);
    buf.put_u64_le(lightne_utils::checksum::fnv1a64(&payload));
    buf.extend_from_slice(&payload);
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Deserializes a graph from the binary CSR format.
///
/// Every field the header claims is validated before use — magic,
/// version, section lengths, the payload checksum, offset monotonicity,
/// and neighbor ranges — so a corrupt or truncated file of any shape
/// fails with a typed [`GraphIoError`] rather than a panic.
pub fn read_binary(path: impl AsRef<Path>) -> Result<Graph, GraphIoError> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    let mut buf = &raw[..];
    if buf.remaining() < BINARY_HEADER_LEN {
        return Err(GraphIoError::Corrupt("header too short"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != BINARY_MAGIC {
        return Err(GraphIoError::Corrupt("bad magic"));
    }
    let version = buf.get_u32_le();
    if version != BINARY_VERSION {
        return Err(GraphIoError::BadVersion { found: version, supported: BINARY_VERSION });
    }
    let n = buf.get_u64_le();
    let arcs = buf.get_u64_le();
    let checksum = buf.get_u64_le();
    // Checked size arithmetic: a hostile header must not overflow usize.
    let expected = (n as u128 + 1) * 8 + arcs as u128 * 4;
    if expected != buf.remaining() as u128 {
        return Err(GraphIoError::Corrupt("payload length mismatch"));
    }
    let (n, arcs) = (n as usize, arcs as usize);
    if lightne_utils::checksum::fnv1a64(buf) != checksum {
        return Err(GraphIoError::ChecksumMismatch);
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(buf.get_u64_le());
    }
    let mut neighbors = Vec::with_capacity(arcs);
    for _ in 0..arcs {
        neighbors.push(buf.get_u32_le());
    }
    // Pre-validate everything `Graph::from_csr` would otherwise panic on.
    if offsets.first().copied() != Some(0) {
        return Err(GraphIoError::Corrupt("offsets do not start at 0"));
    }
    if offsets.last().copied() != Some(arcs as u64) {
        return Err(GraphIoError::Corrupt("offset/arc mismatch"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(GraphIoError::Corrupt("offsets not monotone"));
    }
    if neighbors.iter().any(|&v| v as usize >= n) {
        return Err(GraphIoError::Corrupt("neighbor id out of range"));
    }
    Ok(Graph::from_csr(offsets, neighbors))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lightne_io_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        let p = tmp("roundtrip.txt");
        write_edge_list(&g, &p).unwrap();
        let g2 = read_edge_list(&p, 6).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn edge_list_skips_comments_and_blank_lines() {
        let p = tmp("comments.txt");
        let mut f = File::create(&p).unwrap();
        writeln!(f, "# header\n\n0 1\n% other comment\n1 2").unwrap();
        drop(f);
        let g = read_edge_list(&p, 0).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let p = tmp("garbage.txt");
        std::fs::write(&p, "0 1\nfoo bar\n").unwrap();
        match read_edge_list(&p, 0) {
            Err(GraphIoError::Parse(2, _)) => {}
            other => panic!("expected parse error on line 2, got {other:?}"),
        }
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn weighted_edge_list_parses_weights_and_defaults() {
        let p = tmp("weighted.txt");
        std::fs::write(&p, "# header\n0 1 2.5\n1 2\n").unwrap();
        let g = read_weighted_edge_list(&p, 0).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(g.edge_weight(0, 1), 2.5);
        assert_eq!(g.edge_weight(1, 2), 1.0);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn weighted_edge_list_rejects_bad_weight() {
        let p = tmp("badw.txt");
        std::fs::write(&p, "0 1 -3\n").unwrap();
        assert!(matches!(read_weighted_edge_list(&p, 0), Err(GraphIoError::Parse(1, _))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn binary_roundtrip() {
        let edges: Vec<(u32, u32)> = (0..500u32).map(|v| (v, (v * 7 + 1) % 500)).collect();
        let g = GraphBuilder::from_edges(500, &edges);
        let p = tmp("bin.lne");
        write_binary(&g, &p).unwrap();
        let g2 = read_binary(&p).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn binary_detects_bad_magic() {
        let p = tmp("badmagic.lne");
        std::fs::write(&p, [b'X'; BINARY_HEADER_LEN]).unwrap();
        match read_binary(&p) {
            Err(GraphIoError::Corrupt("bad magic")) => {}
            other => panic!("expected bad magic, got {other:?}"),
        }
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn binary_rejects_unsupported_version() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        let p = tmp("badver.lne");
        write_binary(&g, &p).unwrap();
        let mut raw = std::fs::read(&p).unwrap();
        raw[4..8].copy_from_slice(&7u32.to_le_bytes());
        std::fs::write(&p, &raw).unwrap();
        assert!(matches!(
            read_binary(&p),
            Err(GraphIoError::BadVersion { found: 7, supported: BINARY_VERSION })
        ));
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn binary_every_byte_flip_detected() {
        // Flip every byte of the file in turn: each corruption must yield
        // a typed error (never a panic, never a silently wrong graph).
        let g = GraphBuilder::from_edges(20, &[(0, 1), (1, 2), (5, 19), (3, 4), (2, 7)]);
        let p = tmp("flip.lne");
        write_binary(&g, &p).unwrap();
        let raw = std::fs::read(&p).unwrap();
        for i in 0..raw.len() {
            let mut bad = raw.clone();
            bad[i] ^= 0x01;
            std::fs::write(&p, &bad).unwrap();
            assert!(read_binary(&p).is_err(), "flip at byte {i} went undetected");
        }
        std::fs::write(&p, &raw).unwrap();
        assert_eq!(read_binary(&p).unwrap(), g);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn binary_empty_graph_roundtrip() {
        let g = Graph::empty(0);
        let p = tmp("empty.lne");
        write_binary(&g, &p).unwrap();
        assert_eq!(read_binary(&p).unwrap(), g);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn binary_detects_truncation() {
        let g = GraphBuilder::from_edges(10, &[(0, 1), (2, 3)]);
        let p = tmp("trunc.lne");
        write_binary(&g, &p).unwrap();
        let mut raw = std::fs::read(&p).unwrap();
        raw.truncate(raw.len() - 3);
        std::fs::write(&p, &raw).unwrap();
        assert!(matches!(read_binary(&p), Err(GraphIoError::Corrupt(_))));
        std::fs::remove_file(p).ok();
    }
}
