//! Bit-granular instantaneous codes (WebGraph's γ/δ/ζ family).
//!
//! The v1 parallel-byte format spends a minimum of 8 bits per gap because
//! LEB128 varints are byte-aligned. The codes here are *bit*-aligned
//! prefix-free codes over the naturals, the toolbox BVGraph-class
//! compression is built from:
//!
//! * **unary** — `x` zeros then a one; optimal for geometric gaps with
//!   p = 1/2 (degenerate, but the building block of everything below).
//! * **γ (gamma)** — `⌊log₂(x+1)⌋` in unary, then the mantissa bits;
//!   `2⌊log₂(x+1)⌋ + 1` bits, optimal for power laws with exponent ≈ 2.
//! * **δ (delta)** — like γ but the length field is itself γ-coded;
//!   asymptotically shorter for large values.
//! * **ζ(k) (zeta)** — Boldi–Vigna's code tuned for the power-law gap
//!   distributions of web/social graphs: the exponent is coded in unary
//!   base `2^k`, the remainder in minimal (truncated) binary. `ζ(1) = γ`.
//!
//! All codes are MSB-first within the byte stream. Every reader method is
//! bounds-checked and returns a typed [`GraphFormatError`] on truncated or
//! malformed input — a prerequisite for decoding hostile memory-mapped
//! bytes — while staying branch-light enough for the decode hot path.

use crate::error::GraphFormatError;

/// Maximum bits a single `write_bits`/`read_bits` call may move. 57 keeps
/// the accumulator arithmetic overflow-free for any `(pending, n)` pair.
pub const MAX_BITS: u32 = 57;

/// An MSB-first bit sink backed by a `Vec<u8>`.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits not yet flushed, right-aligned in the low `pending` bits.
    acc: u64,
    pending: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bits written so far.
    #[inline]
    pub fn len_bits(&self) -> u64 {
        self.bytes.len() as u64 * 8 + self.pending as u64
    }

    /// Appends the low `n` bits of `v`, most significant first. `n` may be
    /// 0 (no-op) and at most [`MAX_BITS`].
    #[inline]
    pub fn write_bits(&mut self, v: u64, n: u32) {
        debug_assert!(n <= MAX_BITS, "write_bits of {n} bits");
        debug_assert!(n == 64 || v < (1u64 << n), "value {v} wider than {n} bits");
        if n == 0 {
            return;
        }
        self.acc = (self.acc << n) | v;
        self.pending += n;
        while self.pending >= 8 {
            self.pending -= 8;
            self.bytes.push((self.acc >> self.pending) as u8);
        }
    }

    /// Appends `x` in unary: `x` zeros followed by a one.
    #[inline]
    pub fn write_unary(&mut self, mut x: u64) {
        while x >= MAX_BITS as u64 {
            self.write_bits(0, MAX_BITS);
            x -= MAX_BITS as u64;
        }
        self.write_bits(1, x as u32 + 1);
    }

    /// Appends `x` in γ code.
    #[inline]
    pub fn write_gamma(&mut self, x: u64) {
        let z = x + 1; // x == u64::MAX is rejected by debug_assert below
        debug_assert!(z != 0, "gamma cannot encode u64::MAX");
        let h = 63 - z.leading_zeros(); // ⌊log₂ z⌋
        self.write_unary(h as u64);
        self.write_long_bits(z & !(1u64 << h), h);
    }

    /// Appends `x` in δ code.
    #[inline]
    pub fn write_delta(&mut self, x: u64) {
        let z = x + 1;
        debug_assert!(z != 0, "delta cannot encode u64::MAX");
        let h = 63 - z.leading_zeros();
        self.write_gamma(h as u64);
        self.write_long_bits(z & !(1u64 << h), h);
    }

    /// Appends `x` in ζ(k) code (`k ≥ 1`).
    pub fn write_zeta(&mut self, x: u64, k: u32) {
        debug_assert!(k >= 1, "zeta requires k >= 1");
        let z = x + 1;
        debug_assert!(z != 0, "zeta cannot encode u64::MAX");
        let log = 63 - z.leading_zeros(); // ⌊log₂ z⌋
        let h = log / k;
        self.write_unary(h as u64);
        // Interval [2^(hk), 2^((h+1)k)) has 2^(hk)·(2^k − 1) values;
        // encode z − 2^(hk) in minimal binary over that interval size.
        self.write_min_binary(z - (1u64 << (h * k)), zeta_span(h, k));
    }

    /// Appends `x` in Rice code with parameter `k`: the quotient `x >> k`
    /// in unary, then the `k` low remainder bits. Optimal for geometric
    /// gap distributions with mean ≈ 2^k — the shape uniformly random
    /// neighbor sets produce — where the γ/δ/ζ family pays for a
    /// heavy-tail assumption that never materializes.
    #[inline]
    pub fn write_rice(&mut self, x: u64, k: u32) {
        debug_assert!(k <= MAX_BITS, "rice parameter {k} too large");
        self.write_unary(x >> k);
        self.write_long_bits(x & ((1u64 << k) - 1), k);
    }

    /// Minimal (truncated) binary code of `r ∈ [0, span)`.
    fn write_min_binary(&mut self, r: u64, span: u64) {
        debug_assert!(r < span);
        if span <= 1 {
            return;
        }
        let b = 64 - (span - 1).leading_zeros(); // ⌈log₂ span⌉, may be 64
        let short = ((1u128 << b) - span as u128) as u64; // (b−1)-bit codewords
        if r < short {
            self.write_long_bits(r, b - 1);
        } else {
            self.write_long_bits(r + short, b);
        }
    }

    /// `write_bits` without the [`MAX_BITS`] cap (splits the value).
    fn write_long_bits(&mut self, v: u64, n: u32) {
        if n > MAX_BITS {
            self.write_bits(v >> MAX_BITS, n - MAX_BITS);
            self.write_bits(v & ((1u64 << MAX_BITS) - 1), MAX_BITS);
        } else {
            self.write_bits(v, n);
        }
    }

    /// Appends the first `nbits` bits of another (byte-padded) stream,
    /// keeping this writer's bit alignment. Used to concatenate per-vertex
    /// encodings produced in parallel into one arena without padding.
    pub fn append(&mut self, bytes: &[u8], nbits: u64) {
        debug_assert!(nbits <= bytes.len() as u64 * 8);
        let mut r = BitReader::new(bytes, 0);
        let mut left = nbits;
        while left >= 32 {
            // xtask:panic-ok(infallible: nbits was checked against the slice length before the loop)
            let v = r.read_bits(32).expect("append within bounds");
            self.write_bits(v, 32);
            left -= 32;
        }
        if left > 0 {
            // xtask:panic-ok(infallible: left < 32 bits remain by the loop bound above)
            let v = r.read_bits(left as u32).expect("append within bounds");
            self.write_bits(v, left as u32);
        }
    }

    /// Finishes the stream, padding the final partial byte with zeros, and
    /// returns the bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.pending > 0 {
            let pad = 8 - self.pending;
            self.acc <<= pad;
            self.bytes.push(self.acc as u8);
            self.pending = 0;
        }
        self.bytes
    }
}

/// Size of the ζ(k) minimal-binary interval for unary exponent `h`,
/// clamped so the top interval never exceeds the `u64` value domain
/// (writer and reader must agree on the clamp for the code to round-trip).
#[inline]
fn zeta_span(h: u32, k: u32) -> u64 {
    let base = 1u64 << (h * k);
    let full = base as u128 * ((1u128 << k) - 1);
    let cap = (u64::MAX - base) as u128 + 1;
    full.min(cap) as u64
}

/// An MSB-first bounds-checked bit source over `&[u8]`.
///
/// The reader never indexes past the slice: every method returns
/// [`GraphFormatError::Truncated`] when the stream ends mid-value, which
/// is what makes it safe to point at untrusted (e.g. memory-mapped)
/// bytes.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Current position in bits from the start of `data`.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at bit `pos` of `data`.
    #[inline]
    pub fn new(data: &'a [u8], pos: u64) -> Self {
        Self { data, pos }
    }

    /// Current position in bits.
    #[inline]
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Total bits available in the underlying slice.
    #[inline]
    pub fn len_bits(&self) -> u64 {
        self.data.len() as u64 * 8
    }

    /// Fetches up to 57 bits starting at `self.pos` into the high-to-low
    /// order of the return value *without* advancing. Bits past the end of
    /// the slice read as zero; callers check the requested width against
    /// [`BitReader::len_bits`] before trusting them.
    #[inline]
    fn peek(&self) -> u64 {
        let byte = (self.pos / 8) as usize;
        let shift = (self.pos % 8) as u32;
        // Fast path: 8 whole bytes available.
        let w = if byte + 8 <= self.data.len() {
            let mut a = [0u8; 8];
            a.copy_from_slice(&self.data[byte..byte + 8]);
            u64::from_be_bytes(a)
        } else {
            let mut a = [0u8; 8];
            for (i, slot) in a.iter_mut().enumerate() {
                *slot = self.data.get(byte + i).copied().unwrap_or(0);
            }
            u64::from_be_bytes(a)
        };
        // Drop the `shift` already-consumed bits of the first byte; the
        // top 64 − shift bits of the result are valid stream bits.
        w << shift
    }

    /// Reads `n ≤ 57` bits as an unsigned value.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64, GraphFormatError> {
        debug_assert!(n <= MAX_BITS);
        if n == 0 {
            return Ok(0);
        }
        if self.pos + n as u64 > self.len_bits() {
            return Err(GraphFormatError::Truncated { at_bit: self.pos });
        }
        let v = self.peek() >> (64 - n);
        self.pos += n as u64;
        Ok(v)
    }

    /// Reads an arbitrary-width (≤ 64) value, splitting long reads.
    fn read_long_bits(&mut self, n: u32) -> Result<u64, GraphFormatError> {
        if n > MAX_BITS {
            let hi = self.read_bits(n - MAX_BITS)?;
            let lo = self.read_bits(MAX_BITS)?;
            Ok((hi << MAX_BITS) | lo)
        } else {
            self.read_bits(n)
        }
    }

    /// Reads a unary value (count of zeros before the terminating one).
    #[inline]
    pub fn read_unary(&mut self) -> Result<u64, GraphFormatError> {
        let mut x = 0u64;
        loop {
            if self.pos >= self.len_bits() {
                return Err(GraphFormatError::Truncated { at_bit: self.pos });
            }
            let w = self.peek();
            if w == 0 {
                // All 64 peeked bits are zero: either a very long run or
                // padding past the end. Advance by the valid bit count.
                let valid = (self.len_bits() - self.pos).min(57);
                x += valid;
                self.pos += valid;
                if x > u32::MAX as u64 {
                    // A unary run longer than 2³² bits cannot occur in any
                    // value this crate encodes; treat it as corruption
                    // rather than spinning through gigabytes of zeros.
                    return Err(GraphFormatError::Overflow { at_bit: self.pos });
                }
                continue;
            }
            let zeros = w.leading_zeros() as u64;
            let remaining = self.len_bits() - self.pos;
            if zeros >= remaining {
                return Err(GraphFormatError::Truncated { at_bit: self.pos });
            }
            self.pos += zeros + 1;
            return Ok(x + zeros);
        }
    }

    /// Reads a γ-coded value.
    ///
    /// Fast path: the whole codeword (`2h + 1` bits) is extracted from a
    /// single [`BitReader::peek`] window — one bounds check, one load —
    /// which is what keeps bit-granular decoding competitive with the
    /// byte-aligned v1 varints on the sequential scan.
    #[inline]
    pub fn read_gamma(&mut self) -> Result<u64, GraphFormatError> {
        let w = self.peek();
        let z = w.leading_zeros();
        let need = 2 * z as u64 + 1;
        if need <= MAX_BITS as u64 && self.pos + need <= self.len_bits() {
            self.pos += need;
            // Layout: z zeros, the leading 1, then z mantissa bits — the
            // extracted word *is* `(1 << z) | mantissa`.
            return Ok((w >> (64 - need)) - 1);
        }
        self.read_gamma_slow()
    }

    /// γ decode via the general unary/bits readers: long codewords and
    /// end-of-stream handling.
    fn read_gamma_slow(&mut self) -> Result<u64, GraphFormatError> {
        let h = self.read_unary()?;
        if h > 63 {
            return Err(GraphFormatError::Overflow { at_bit: self.pos });
        }
        let mantissa = self.read_long_bits(h as u32)?;
        Ok(((1u64 << h) | mantissa) - 1)
    }

    /// Reads a δ-coded value (single-peek fast path, as in
    /// [`BitReader::read_gamma`]).
    #[inline]
    pub fn read_delta(&mut self) -> Result<u64, GraphFormatError> {
        let w = self.peek();
        let z = w.leading_zeros() as u64;
        let gbits = 2 * z + 1;
        if gbits < MAX_BITS as u64 {
            let h = (w >> (64 - gbits)) - 1; // the γ-coded mantissa length
            let need = gbits + h;
            if need <= MAX_BITS as u64 && self.pos + need <= self.len_bits() {
                self.pos += need;
                let mantissa = if h == 0 { 0 } else { (w << gbits) >> (64 - h) };
                return Ok(((1u64 << h) | mantissa) - 1);
            }
        }
        self.read_delta_slow()
    }

    fn read_delta_slow(&mut self) -> Result<u64, GraphFormatError> {
        let h = self.read_gamma()?;
        if h > 63 {
            return Err(GraphFormatError::Overflow { at_bit: self.pos });
        }
        let mantissa = self.read_long_bits(h as u32)?;
        Ok(((1u64 << h) | mantissa) - 1)
    }

    /// Reads a ζ(k)-coded value (single-peek fast path for codewords that
    /// fit one window, which is every gap below 2⁴⁰ even at `k = 8`).
    #[inline]
    pub fn read_zeta(&mut self, k: u32) -> Result<u64, GraphFormatError> {
        debug_assert!(k >= 1);
        let w = self.peek();
        let h = w.leading_zeros();
        if h * k + k <= 63 {
            // Unclamped interval: span = 2^(hk)·(2^k − 1), so the long
            // codeword is hk + k bits wide and `short` is exact.
            let span = ((1u64 << k) - 1) << (h * k);
            let base = 1u64 << (h * k);
            if span <= 1 {
                // k = 1, h = 0: the codeword is the lone terminator bit.
                if self.pos < self.len_bits() {
                    self.pos += 1;
                    return Ok(base - 1);
                }
            } else {
                let b = 64 - (span - 1).leading_zeros();
                let need = (h + 1 + b) as u64;
                if b >= 2 && need <= MAX_BITS as u64 && self.pos + need <= self.len_bits() {
                    let short = (1u64 << b) - span;
                    let body = w << (h + 1); // bits after the unary terminator
                                             // Branchless short/long select: the two candidate
                                             // codewords share their first b − 1 bits, so decode
                                             // both and pick by the (data-dependent) comparison
                                             // without a branch the predictor would miss on.
                    let r_short = body >> (64 - (b - 1));
                    let r_long = body >> (64 - b);
                    let long = r_short >= short;
                    let r = if long { r_long - short } else { r_short };
                    self.pos += need - 1 + long as u64;
                    return Ok(base + r - 1);
                }
                if need <= MAX_BITS as u64 && self.pos + need <= self.len_bits() {
                    // b == 1: every codeword is the single long form.
                    let body = w << (h + 1);
                    self.pos += need;
                    return Ok(base + (body >> 63) - (2 - span) - 1);
                }
            }
        }
        self.read_zeta_slow(k)
    }

    fn read_zeta_slow(&mut self, k: u32) -> Result<u64, GraphFormatError> {
        let h = self.read_unary()?;
        if h.saturating_mul(k as u64) > 63 {
            return Err(GraphFormatError::Overflow { at_bit: self.pos });
        }
        let base = 1u64 << (h as u32 * k);
        let r = self.read_min_binary(zeta_span(h as u32, k))?;
        Ok(base + r - 1)
    }

    /// Reads a Rice-coded value with parameter `k` (single-peek fast
    /// path: a leading-zero count and two shifts, the cheapest decode in
    /// the family).
    #[inline]
    pub fn read_rice(&mut self, k: u32) -> Result<u64, GraphFormatError> {
        debug_assert!(k <= MAX_BITS);
        let w = self.peek();
        let q = w.leading_zeros();
        let need = q as u64 + 1 + k as u64;
        if k >= 1 && need <= MAX_BITS as u64 && self.pos + need <= self.len_bits() {
            self.pos += need;
            let rem = (w << (q + 1)) >> (64 - k);
            return Ok(((q as u64) << k) | rem);
        }
        self.read_rice_slow(k)
    }

    fn read_rice_slow(&mut self, k: u32) -> Result<u64, GraphFormatError> {
        let q = self.read_unary()?;
        if k > 0 && q > (u64::MAX >> k) {
            return Err(GraphFormatError::Overflow { at_bit: self.pos });
        }
        let rem = self.read_long_bits(k)?;
        Ok((q << k) | rem)
    }

    /// Reads a minimal (truncated) binary value over `span` codewords.
    fn read_min_binary(&mut self, span: u64) -> Result<u64, GraphFormatError> {
        if span <= 1 {
            return Ok(0);
        }
        let b = 64 - (span - 1).leading_zeros();
        let short = ((1u128 << b) - span as u128) as u64;
        let hi = self.read_long_bits(b - 1)?;
        if hi < short {
            Ok(hi)
        } else {
            let low = self.read_bits(1)?;
            Ok(((hi << 1) | low) - short)
        }
    }
}

/// Identifier of an instantaneous code, the per-container knob of the v2
/// format. `Zeta(k)` is Boldi–Vigna's ζ_k; `Zeta(1)` coincides with γ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// Unary code (diagnostic; impractically long for real gaps).
    Unary,
    /// Elias γ.
    Gamma,
    /// Elias δ.
    Delta,
    /// Boldi–Vigna ζ with shrinking factor `k ∈ [1, 8]`.
    Zeta(u32),
    /// Golomb–Rice with parameter `k ∈ [0, 31]`; `Rice(0)` is unary.
    Rice(u32),
    /// Golomb–Rice with the parameter re-chosen per unit and stored as a
    /// 5-bit prefix: per block in v2 containers (where neighbor gaps
    /// within a vertex share one parameter), per value in the standalone
    /// [`Codec::encode`] convention.
    RiceAdaptive,
}

/// Largest Rice parameter (fits the 5-bit adaptive prefix).
pub const MAX_RICE_K: u32 = 31;

/// The Rice parameter `k` minimizing `Σ ((x >> k) + 1 + k)` over
/// `values` — the exact cost of Rice-coding all of them.
pub fn best_rice_k(values: &[u64]) -> u32 {
    let mut best_k = 0u32;
    let mut best_cost = u64::MAX;
    for k in 0..=MAX_RICE_K {
        let mut cost = 0u64;
        for &x in values {
            cost = cost.saturating_add((x >> k) + 1 + k as u64);
        }
        if cost < best_cost {
            best_cost = cost;
            best_k = k;
        }
    }
    best_k
}

impl Codec {
    /// The codecs the bench sweeps when picking the best per graph.
    pub const SWEEP: [Codec; 9] = [
        Codec::Gamma,
        Codec::Delta,
        Codec::Zeta(2),
        Codec::Zeta(3),
        Codec::Zeta(4),
        Codec::Rice(8),
        Codec::Rice(10),
        Codec::Rice(12),
        Codec::RiceAdaptive,
    ];

    /// Stable on-disk identifier.
    pub fn id(self) -> u8 {
        match self {
            Codec::Unary => 0,
            Codec::Gamma => 1,
            Codec::Delta => 2,
            Codec::Zeta(k) => 0x10 + k as u8,
            Codec::Rice(k) => 0x20 + k as u8,
            Codec::RiceAdaptive => 3,
        }
    }

    /// Inverse of [`Codec::id`].
    pub fn from_id(id: u8) -> Option<Codec> {
        match id {
            0 => Some(Codec::Unary),
            1 => Some(Codec::Gamma),
            2 => Some(Codec::Delta),
            3 => Some(Codec::RiceAdaptive),
            k @ 0x11..=0x18 => Some(Codec::Zeta(k as u32 - 0x10)),
            k @ 0x20..=0x3F => Some(Codec::Rice(k as u32 - 0x20)),
            _ => None,
        }
    }

    /// Human name, accepted back by [`Codec::parse`].
    pub fn name(self) -> String {
        match self {
            Codec::Unary => "unary".to_string(),
            Codec::Gamma => "gamma".to_string(),
            Codec::Delta => "delta".to_string(),
            Codec::Zeta(k) => format!("zeta{k}"),
            Codec::Rice(k) => format!("rice{k}"),
            Codec::RiceAdaptive => "arice".to_string(),
        }
    }

    /// Parses a codec name (`gamma`, `delta`, `zeta3`, `unary`).
    pub fn parse(s: &str) -> Option<Codec> {
        match s {
            "unary" => Some(Codec::Unary),
            "gamma" => Some(Codec::Gamma),
            "delta" => Some(Codec::Delta),
            "arice" => Some(Codec::RiceAdaptive),
            _ => {
                if let Some(rest) = s.strip_prefix("rice") {
                    let k: u32 = rest.parse().ok()?;
                    return (0..=MAX_RICE_K).contains(&k).then_some(Codec::Rice(k));
                }
                let k: u32 = s.strip_prefix("zeta")?.parse().ok()?;
                (1..=8).contains(&k).then_some(Codec::Zeta(k))
            }
        }
    }

    /// Encodes `x` into `w`.
    #[inline]
    pub fn encode(self, w: &mut BitWriter, x: u64) {
        match self {
            Codec::Unary => w.write_unary(x),
            Codec::Gamma => w.write_gamma(x),
            Codec::Delta => w.write_delta(x),
            Codec::Zeta(k) => w.write_zeta(x, k),
            Codec::Rice(k) => w.write_rice(x, k),
            Codec::RiceAdaptive => {
                let k = best_rice_k(std::slice::from_ref(&x));
                w.write_bits(k as u64, 5);
                w.write_rice(x, k);
            }
        }
    }

    /// Decodes one value from `r`.
    #[inline]
    pub fn decode(self, r: &mut BitReader<'_>) -> Result<u64, GraphFormatError> {
        match self {
            Codec::Unary => r.read_unary(),
            Codec::Gamma => r.read_gamma(),
            Codec::Delta => r.read_delta(),
            Codec::Zeta(k) => r.read_zeta(k),
            Codec::Rice(k) => r.read_rice(k),
            Codec::RiceAdaptive => {
                let k = r.read_bits(5)? as u32;
                r.read_rice(k)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_utils::rng::XorShiftStream;

    fn all_codecs() -> Vec<Codec> {
        let mut v = vec![Codec::Unary, Codec::Gamma, Codec::Delta, Codec::RiceAdaptive];
        v.extend((1..=8).map(Codec::Zeta));
        v.extend([0, 1, 2, 5, 8, 13, 31].map(Codec::Rice));
        v
    }

    #[test]
    fn raw_bits_roundtrip() {
        let mut w = BitWriter::new();
        let widths = [1u32, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 56, 57];
        let mut rng = XorShiftStream::new(1, 0);
        let values: Vec<(u64, u32)> = widths
            .iter()
            .cycle()
            .take(500)
            .map(|&n| {
                let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
                (rng.next_u64() & mask, n)
            })
            .collect();
        for &(v, n) in &values {
            w.write_bits(v, n);
        }
        let total = w.len_bits();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes, 0);
        for &(v, n) in &values {
            assert_eq!(r.read_bits(n).unwrap(), v, "width {n}");
        }
        assert_eq!(r.bit_pos(), total);
    }

    #[test]
    fn exhaustive_small_roundtrip_every_codec() {
        // Every codec must round-trip every value in 0..4096 exactly, with
        // the stream position landing exactly at the end of each code.
        for codec in all_codecs() {
            if codec == Codec::Unary {
                continue; // unary of 4095 is fine but covered below
            }
            let mut w = BitWriter::new();
            for x in 0..4096u64 {
                codec.encode(&mut w, x);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes, 0);
            for x in 0..4096u64 {
                assert_eq!(codec.decode(&mut r).unwrap(), x, "{}", codec.name());
            }
        }
        let mut w = BitWriter::new();
        for x in 0..256u64 {
            Codec::Unary.encode(&mut w, x);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes, 0);
        for x in 0..256u64 {
            assert_eq!(Codec::Unary.decode(&mut r).unwrap(), x);
        }
    }

    #[test]
    fn random_large_values_roundtrip() {
        let mut rng = XorShiftStream::new(7, 0);
        // Spread magnitudes across the whole u64-exponent range (shift by
        // 0..=56 keeps every value short of the u64::MAX encode limit).
        let values: Vec<u64> =
            (0..2000).map(|i| rng.next_u64() >> (i % 57)).map(|v| v.min(u64::MAX - 1)).collect();
        for codec in all_codecs() {
            // Codes with a value-linear unary part would need astronomical
            // streams here; they get their own bounded test below.
            if matches!(codec, Codec::Unary | Codec::Rice(_) | Codec::RiceAdaptive) {
                continue;
            }
            let mut w = BitWriter::new();
            for &v in &values {
                codec.encode(&mut w, v);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes, 0);
            for &v in &values {
                assert_eq!(codec.decode(&mut r).unwrap(), v, "{} value {v}", codec.name());
            }
        }
    }

    #[test]
    fn rice_large_values_roundtrip() {
        // Rice quotients are unary, so bound each value to keep the
        // quotient small while still exercising the full mantissa width.
        let mut rng = XorShiftStream::new(11, 0);
        for k in [0u32, 1, 2, 5, 8, 13, 21, 31] {
            let max = 1u64 << (k + 12).min(63);
            let values: Vec<u64> = (0..500).map(|_| rng.next_u64() % max).collect();
            for codec in [Codec::Rice(k), Codec::RiceAdaptive] {
                let mut w = BitWriter::new();
                for &v in &values {
                    codec.encode(&mut w, v);
                }
                let bytes = w.into_bytes();
                let mut r = BitReader::new(&bytes, 0);
                for &v in &values {
                    assert_eq!(codec.decode(&mut r).unwrap(), v, "{} value {v}", codec.name());
                }
            }
        }
    }

    #[test]
    fn best_rice_k_is_exactly_optimal() {
        let cost = |values: &[u64], k: u32| -> u64 {
            let mut w = BitWriter::new();
            for &v in values {
                w.write_rice(v, k);
            }
            w.len_bits()
        };
        let mut rng = XorShiftStream::new(13, 0);
        for mean_bits in [0u32, 3, 8, 14, 20] {
            let values: Vec<u64> = (0..64).map(|_| rng.next_u64() >> (63 - mean_bits)).collect();
            let k = best_rice_k(&values);
            let got = cost(&values, k);
            for other in 0..=MAX_RICE_K {
                assert!(
                    got <= cost(&values, other),
                    "k={k} not optimal for mean_bits={mean_bits}: k={other} is smaller"
                );
            }
        }
    }

    #[test]
    fn gamma_known_codewords() {
        // γ: 0 → "1", 1 → "010", 2 → "011", 3 → "00100".
        let mut w = BitWriter::new();
        for x in 0..4 {
            w.write_gamma(x);
        }
        // Concatenation: 1 010 011 00100 → 1010 0110 0100 (pad) = 0xA6 0x40.
        assert_eq!(w.into_bytes(), vec![0xA6, 0x40]);
    }

    #[test]
    fn zeta1_equals_gamma() {
        let mut rng = XorShiftStream::new(9, 0);
        let values: Vec<u64> = (0..500).map(|i| rng.next_u64() >> (i % 57)).collect();
        let mut a = BitWriter::new();
        let mut b = BitWriter::new();
        for &v in &values {
            a.write_gamma(v);
            b.write_zeta(v, 1);
        }
        assert_eq!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn code_lengths_match_theory() {
        let len = |codec: Codec, x: u64| {
            let mut w = BitWriter::new();
            codec.encode(&mut w, x);
            w.len_bits()
        };
        for x in [0u64, 1, 2, 3, 7, 8, 100, 1000, 1 << 20] {
            let h = 64 - (x + 1).leading_zeros() as u64 - 1; // ⌊log₂(x+1)⌋
            assert_eq!(len(Codec::Unary, x), x + 1);
            assert_eq!(len(Codec::Gamma, x), 2 * h + 1);
            // δ(x) = γ(h) + h bits.
            let hh = 64 - (h + 1).leading_zeros() as u64 - 1;
            assert_eq!(len(Codec::Delta, x), 2 * hh + 1 + h);
        }
        // ζ₃ beats γ in the heavy tail (its design point).
        assert!(len(Codec::Zeta(3), 5_000) < len(Codec::Gamma, 5_000));
    }

    #[test]
    fn truncated_reads_fail_typed() {
        let mut w = BitWriter::new();
        w.write_gamma(1_000_000);
        let bytes = w.into_bytes();
        // Every strict prefix must produce Truncated, never panic.
        for cut in 0..bytes.len() {
            let mut r = BitReader::new(&bytes[..cut], 0);
            match r.read_gamma() {
                Err(GraphFormatError::Truncated { .. }) => {}
                other => panic!("prefix of {cut} bytes: expected Truncated, got {other:?}"),
            }
        }
        // Reading past a valid value into padding also fails typed.
        let mut r = BitReader::new(&bytes, 0);
        r.read_gamma().unwrap();
        assert!(r.read_gamma().is_err() || r.bit_pos() <= r.len_bits());
    }

    #[test]
    fn all_zero_bytes_overflow_not_hang() {
        // A long run of zero bytes is an unterminated unary code: the
        // reader must fail typed (Truncated at the end or Overflow), not
        // loop forever or panic.
        let zeros = vec![0u8; 64];
        let mut r = BitReader::new(&zeros, 0);
        match r.read_unary() {
            Err(GraphFormatError::Truncated { .. }) | Err(GraphFormatError::Overflow { .. }) => {}
            other => panic!("expected typed failure, got {other:?}"),
        }
        for codec in all_codecs() {
            let mut r = BitReader::new(&zeros, 0);
            assert!(codec.decode(&mut r).is_err(), "{}", codec.name());
        }
    }

    #[test]
    fn random_garbage_never_panics() {
        let mut rng = XorShiftStream::new(21, 0);
        for trial in 0..200 {
            let len = rng.bounded_usize(40);
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            for codec in all_codecs() {
                let mut r = BitReader::new(&bytes, 0);
                // Decode until error or end; must terminate and never panic.
                for _ in 0..10_000 {
                    if codec.decode(&mut r).is_err() || r.bit_pos() >= r.len_bits() {
                        break;
                    }
                }
                let _ = trial;
            }
        }
    }

    #[test]
    fn codec_id_and_name_roundtrip() {
        for codec in all_codecs() {
            assert_eq!(Codec::from_id(codec.id()), Some(codec));
            assert_eq!(Codec::parse(&codec.name()), Some(codec));
        }
        assert_eq!(Codec::from_id(0xFF), None);
        assert_eq!(Codec::parse("zeta0"), None);
        assert_eq!(Codec::parse("zeta9"), None);
        assert_eq!(Codec::parse("huffman"), None);
    }

    #[test]
    fn reader_positions_mid_stream() {
        // A reader can be constructed at an arbitrary bit offset — the v2
        // format relies on this to jump straight to a vertex's region.
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_gamma(42);
        let total = w.len_bits();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes, 3);
        assert_eq!(r.read_gamma().unwrap(), 42);
        assert_eq!(r.bit_pos(), total);
    }
}
