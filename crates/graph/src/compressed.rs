//! Parallel-byte compressed CSR (the Ligra+ format, Section 4.1).
//!
//! In sequential byte coding a neighbor list is difference-encoded: the
//! first neighbor is stored as a signed varint delta from the source vertex,
//! and each subsequent neighbor as an unsigned varint delta from its
//! predecessor. Decoding is a running sum — inherently sequential, which is
//! costly for high-degree vertices.
//!
//! The *parallel-byte* format of Ligra+ breaks each neighbor list into
//! blocks of a configurable size (LightNE picks 64 after evaluating the
//! trade-off between compressed size and the latency of fetching an
//! arbitrary incident edge during random walks). Each block is internally
//! difference-encoded with respect to the source, and per-block byte
//! offsets are stored so that (a) blocks of one vertex decode in parallel
//! and (b) the `i`-th neighbor is fetched by decoding only block
//! `i / block_size`.
//!
//! Layout per vertex inside the shared byte arena:
//!
//! ```text
//! [u32 offset of block 1] .. [u32 offset of block B-1] [block 0] [block 1] ..
//! ```
//!
//! (block 0 starts right after the offset table, so its offset is implicit).

use crate::error::GraphFormatError;
use crate::{Graph, VertexId};
use lightne_utils::mem::MemUsage;
use lightne_utils::parallel::parallel_prefix_sum;
use rayon::prelude::*;

/// Default neighbors-per-block, the value chosen in the paper.
pub const DEFAULT_BLOCK_SIZE: usize = 64;

/// Appends `v` as an LEB128 varint.
#[inline]
fn encode_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes an LEB128 varint starting at `pos`, advancing `pos`.
#[inline]
fn decode_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = buf[*pos];
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Bounds-checked [`decode_varint`]: fails typed on truncation (running
/// off the buffer) or a continuation chain longer than a `u64` can hold,
/// so corrupt or hostile arena bytes never cause a panic or a wild read.
#[inline]
fn try_decode_varint(buf: &[u8], pos: &mut usize) -> Result<u64, GraphFormatError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(GraphFormatError::Truncated { at_bit: *pos as u64 * 8 })?;
        *pos += 1;
        let group = (byte & 0x7f) as u64;
        if shift >= 63 && group >> (64 - shift.min(63)) != 0 {
            // The 10th byte may only contribute one bit; anything more
            // (or an 11th byte) overflows 64 bits.
            return Err(GraphFormatError::Overflow { at_bit: *pos as u64 * 8 });
        }
        v |= group << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(GraphFormatError::Overflow { at_bit: *pos as u64 * 8 });
        }
    }
}

/// Zigzag encoding of a signed difference.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse zigzag.
#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes one sorted neighbor list into the parallel-byte format.
fn encode_vertex(source: VertexId, neighbors: &[VertexId], block_size: usize, out: &mut Vec<u8>) {
    let deg = neighbors.len();
    if deg == 0 {
        return;
    }
    let nblocks = deg.div_ceil(block_size);
    // Encode each block body first; we need their sizes for the offset table.
    let mut bodies: Vec<Vec<u8>> = Vec::with_capacity(nblocks);
    for b in 0..nblocks {
        let lo = b * block_size;
        let hi = ((b + 1) * block_size).min(deg);
        let mut body = Vec::new();
        encode_varint(&mut body, zigzag(neighbors[lo] as i64 - source as i64));
        let mut prev = neighbors[lo];
        for &v in &neighbors[lo + 1..hi] {
            debug_assert!(v > prev, "neighbor list must be strictly increasing");
            encode_varint(&mut body, (v - prev) as u64);
            prev = v;
        }
        bodies.push(body);
    }
    // Offset table: byte offset of blocks 1..nblocks, relative to the start
    // of block 0.
    let mut acc = 0u32;
    for body in &bodies[..nblocks - 1] {
        acc += body.len() as u32;
        out.extend_from_slice(&acc.to_le_bytes());
    }
    for body in &bodies {
        out.extend_from_slice(body);
    }
}

/// An undirected graph whose neighbor lists are stored in the
/// parallel-byte compressed format.
#[derive(Debug, Clone)]
pub struct CompressedGraph {
    /// Byte offset of each vertex's region in `data` (length `n + 1`).
    vertex_byte_offsets: Vec<u64>,
    /// Prefix sums of degrees (length `n + 1`): `arc_offsets[v]` is the
    /// global index of `v`'s first arc. Also yields O(1) degree queries.
    arc_offsets: Vec<u64>,
    /// The shared encoded arena.
    data: Vec<u8>,
    block_size: usize,
}

impl CompressedGraph {
    /// Compresses an uncompressed CSR graph with the default block size.
    pub fn from_graph(g: &Graph) -> Self {
        Self::from_graph_with_block_size(g, DEFAULT_BLOCK_SIZE)
    }

    /// Compresses with an explicit block size (the paper's Section 4.2
    /// trade-off knob; must be ≥ 1).
    pub fn from_graph_with_block_size(g: &Graph, block_size: usize) -> Self {
        assert!(block_size >= 1, "block size must be at least 1");
        let n = g.num_vertices();

        // Encode every vertex independently in parallel.
        let encoded: Vec<Vec<u8>> = (0..n)
            .into_par_iter()
            .map(|v| {
                let mut buf = Vec::new();
                encode_vertex(v as VertexId, g.neighbors(v as VertexId), block_size, &mut buf);
                buf
            })
            .collect();

        let sizes: Vec<u64> = encoded.iter().map(|b| b.len() as u64).collect();
        let vertex_byte_offsets = parallel_prefix_sum(&sizes);
        let total = vertex_byte_offsets[n] as usize;

        // Concatenate into the shared arena, writing disjoint regions in
        // parallel through split-off mutable slices.
        let mut data = vec![0u8; total];
        let mut slices: Vec<&mut [u8]> = Vec::with_capacity(n);
        let mut rest: &mut [u8] = &mut data;
        for &size in sizes.iter().take(n) {
            let (head, tail) = rest.split_at_mut(size as usize);
            slices.push(head);
            rest = tail;
        }
        slices
            .into_par_iter()
            .zip(encoded.par_iter())
            .for_each(|(dst, src)| dst.copy_from_slice(src));

        let degrees: Vec<u64> = (0..n).map(|v| g.degree(v as VertexId) as u64).collect();
        let arc_offsets = parallel_prefix_sum(&degrees);

        Self { vertex_byte_offsets, arc_offsets, data, block_size }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.arc_offsets.len() - 1
    }

    /// Number of stored directed arcs (`2m`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        // xtask:panic-ok(invariant: arc_offsets has n+1 entries, checked at construction)
        *self.arc_offsets.last().unwrap() as usize
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_arcs() / 2
    }

    /// Degree of `v` — O(1), from the arc-offset table.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.arc_offsets[v + 1] - self.arc_offsets[v]) as usize
    }

    /// Global arc index of `v`'s first arc (used to derive deterministic
    /// per-edge RNG streams in the sampler).
    #[inline]
    pub fn first_arc_index(&self, v: VertexId) -> u64 {
        self.arc_offsets[v as usize]
    }

    /// The configured block size.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Compressed bytes used by the neighbor arena only.
    pub fn arena_bytes(&self) -> usize {
        self.data.len()
    }

    fn vertex_region(&self, v: VertexId) -> &[u8] {
        let v = v as usize;
        &self.data[self.vertex_byte_offsets[v] as usize..self.vertex_byte_offsets[v + 1] as usize]
    }

    /// Number of blocks for a vertex of degree `deg`.
    #[inline]
    fn nblocks(&self, deg: usize) -> usize {
        deg.div_ceil(self.block_size)
    }

    /// Byte position (within the vertex region) where block `b` starts,
    /// plus the position where block bodies begin.
    fn block_start(&self, region: &[u8], deg: usize, b: usize) -> usize {
        let nblocks = self.nblocks(deg);
        let table_bytes = (nblocks - 1) * 4;
        if b == 0 {
            table_bytes
        } else {
            let at = (b - 1) * 4;
            let off =
                u32::from_le_bytes([region[at], region[at + 1], region[at + 2], region[at + 3]]);
            table_bytes + off as usize
        }
    }

    /// Decodes block `b` of vertex `v`, invoking `f` for each neighbor in
    /// order. Returns the number of neighbors decoded.
    pub fn decode_block(&self, v: VertexId, b: usize, mut f: impl FnMut(VertexId)) -> usize {
        let deg = self.degree(v);
        if deg == 0 {
            return 0;
        }
        let region = self.vertex_region(v);
        let lo = b * self.block_size;
        let hi = ((b + 1) * self.block_size).min(deg);
        let mut pos = self.block_start(region, deg, b);
        let first = (v as i64 + unzigzag(decode_varint(region, &mut pos))) as VertexId;
        f(first);
        let mut prev = first;
        for _ in lo + 1..hi {
            prev += decode_varint(region, &mut pos) as VertexId;
            f(prev);
        }
        hi - lo
    }

    /// Invokes `f` for every neighbor of `v`, in sorted order.
    pub fn for_each_neighbor(&self, v: VertexId, mut f: impl FnMut(VertexId)) {
        let deg = self.degree(v);
        for b in 0..self.nblocks(deg) {
            self.decode_block(v, b, &mut f);
        }
    }

    /// Fetches the `i`-th neighbor of `v` by decoding a single block —
    /// the operation random walks depend on (Section 4.2).
    pub fn ith_neighbor(&self, v: VertexId, i: usize) -> VertexId {
        debug_assert!(i < self.degree(v));
        let b = i / self.block_size;
        let within = i % self.block_size;
        let mut result = 0;
        let mut k = 0usize;
        self.decode_block(v, b, |u| {
            if k == within {
                result = u;
            }
            k += 1;
        });
        result
    }

    /// Bounds-checked [`CompressedGraph::decode_block`]: every arena read
    /// is checked and every decoded neighbor validated against `0..n` and
    /// strict monotonicity, so corrupt bytes fail typed instead of
    /// panicking (the contract shared with the v2 decoders).
    pub fn try_decode_block(
        &self,
        v: VertexId,
        b: usize,
        mut f: impl FnMut(VertexId),
    ) -> Result<usize, GraphFormatError> {
        let deg = self.degree(v);
        if deg == 0 {
            return Ok(0);
        }
        let region = self.vertex_region(v);
        let lo = b * self.block_size;
        let hi = ((b + 1) * self.block_size).min(deg);
        let mut pos = self.try_block_start(region, deg, b)?;
        let n = self.num_vertices();
        let first = v as i64 + unzigzag(try_decode_varint(region, &mut pos)?);
        if first < 0 || first >= n as i64 {
            return Err(GraphFormatError::VertexOutOfRange { vertex: v, decoded: first, n });
        }
        f(first as VertexId);
        let mut prev = first as u64;
        for _ in lo + 1..hi {
            let gap = try_decode_varint(region, &mut pos)?;
            if gap == 0 {
                return Err(GraphFormatError::NonMonotoneNeighbors { vertex: v });
            }
            let next = prev + gap;
            if next >= n as u64 {
                return Err(GraphFormatError::VertexOutOfRange {
                    vertex: v,
                    decoded: next as i64,
                    n,
                });
            }
            f(next as VertexId);
            prev = next;
        }
        Ok(hi - lo)
    }

    /// Bounds-checked [`CompressedGraph::block_start`].
    fn try_block_start(
        &self,
        region: &[u8],
        deg: usize,
        b: usize,
    ) -> Result<usize, GraphFormatError> {
        let nblocks = self.nblocks(deg);
        if b >= nblocks {
            return Err(GraphFormatError::Corrupt("block index out of range"));
        }
        let table_bytes = (nblocks - 1) * 4;
        if region.len() < table_bytes {
            return Err(GraphFormatError::Truncated { at_bit: region.len() as u64 * 8 });
        }
        if b == 0 {
            return Ok(table_bytes);
        }
        let at = (b - 1) * 4;
        let off = u32::from_le_bytes([region[at], region[at + 1], region[at + 2], region[at + 3]]);
        let start = table_bytes + off as usize;
        if start >= region.len() {
            return Err(GraphFormatError::Corrupt("block offset beyond vertex region"));
        }
        Ok(start)
    }

    /// Bounds-checked [`CompressedGraph::for_each_neighbor`].
    pub fn try_for_each_neighbor(
        &self,
        v: VertexId,
        f: &mut dyn FnMut(VertexId),
    ) -> Result<(), GraphFormatError> {
        let deg = self.degree(v);
        for b in 0..self.nblocks(deg) {
            self.try_decode_block(v, b, &mut *f)?;
        }
        Ok(())
    }

    /// Bounds-checked [`CompressedGraph::ith_neighbor`].
    pub fn try_ith_neighbor(&self, v: VertexId, i: usize) -> Result<VertexId, GraphFormatError> {
        assert!(i < self.degree(v), "neighbor index out of range");
        let b = i / self.block_size;
        let within = i % self.block_size;
        let mut result = 0;
        let mut k = 0usize;
        self.try_decode_block(v, b, |u| {
            if k == within {
                result = u;
            }
            k += 1;
        })?;
        Ok(result)
    }

    /// Structural validation: offset tables monotone and in range, every
    /// block of every vertex decodes cleanly. O(n + m).
    pub fn validate(&self) -> Result<(), GraphFormatError> {
        let n = self.num_vertices();
        if self.vertex_byte_offsets.len() != n + 1 || self.arc_offsets.len() != n + 1 {
            return Err(GraphFormatError::Corrupt("offset table length != n + 1"));
        }
        for w in self.vertex_byte_offsets.windows(2).chain(self.arc_offsets.windows(2)) {
            if w[0] > w[1] {
                return Err(GraphFormatError::Corrupt("offset table not monotone"));
            }
        }
        // xtask:panic-ok(invariant: offsets array is non-empty, checked at parse)
        if *self.vertex_byte_offsets.last().unwrap() != self.data.len() as u64 {
            return Err(GraphFormatError::LengthMismatch {
                what: "compressed arena",
                // xtask:panic-ok(same non-empty invariant as the check above)
                expected: *self.vertex_byte_offsets.last().unwrap(),
                actual: self.data.len() as u64,
            });
        }
        for v in 0..n as VertexId {
            self.try_for_each_neighbor(v, &mut |_| {})?;
        }
        Ok(())
    }

    /// Decompresses back to an uncompressed CSR graph.
    pub fn decompress(&self) -> Graph {
        let n = self.num_vertices();
        let mut neighbors = vec![0 as VertexId; self.num_arcs()];
        let mut slices: Vec<&mut [VertexId]> = Vec::with_capacity(n);
        let mut rest: &mut [VertexId] = &mut neighbors;
        for v in 0..n {
            let (head, tail) = rest.split_at_mut(self.degree(v as VertexId));
            slices.push(head);
            rest = tail;
        }
        slices.into_par_iter().enumerate().for_each(|(v, dst)| {
            let mut k = 0;
            self.for_each_neighbor(v as VertexId, |u| {
                dst[k] = u;
                k += 1;
            });
        });
        Graph::from_csr(self.arc_offsets.clone(), neighbors)
    }
}

impl MemUsage for CompressedGraph {
    fn heap_bytes(&self) -> usize {
        self.vertex_byte_offsets.heap_bytes()
            + self.arc_offsets.heap_bytes()
            + self.data.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use lightne_utils::rng::XorShiftStream;

    fn random_graph(n: usize, m: usize, seed: u64) -> Graph {
        let mut rng = XorShiftStream::new(seed, 0);
        let edges: Vec<(u32, u32)> =
            (0..m).map(|_| (rng.bounded_usize(n) as u32, rng.bounded_usize(n) as u32)).collect();
        GraphBuilder::from_edges(n, &edges)
    }

    #[test]
    fn varint_roundtrip() {
        let values = [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            encode_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(decode_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-1_000_000i64, -1, 0, 1, 5, i32::MAX as i64, i32::MIN as i64] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn compress_decompress_identity() {
        let g = random_graph(500, 5_000, 11);
        let c = CompressedGraph::from_graph(&g);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_arcs(), g.num_arcs());
        assert_eq!(c.decompress(), g);
    }

    #[test]
    fn compress_with_tiny_blocks() {
        let g = random_graph(200, 3_000, 3);
        for bs in [1, 2, 3, 7, 64, 1024] {
            let c = CompressedGraph::from_graph_with_block_size(&g, bs);
            assert_eq!(c.decompress(), g, "block size {bs}");
        }
    }

    #[test]
    fn ith_neighbor_matches_uncompressed() {
        let g = random_graph(300, 4_000, 5);
        let c = CompressedGraph::from_graph_with_block_size(&g, 8);
        for v in 0..g.num_vertices() as u32 {
            for i in 0..g.degree(v) {
                assert_eq!(c.ith_neighbor(v, i), g.ith_neighbor(v, i), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn degrees_match() {
        let g = random_graph(300, 4_000, 9);
        let c = CompressedGraph::from_graph(&g);
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(c.degree(v), g.degree(v));
        }
    }

    #[test]
    fn compression_shrinks_dense_lists() {
        // A graph with clustered ids compresses well under difference coding.
        let mut b = GraphBuilder::new(10_000);
        for v in 0..9_999u32 {
            b.add_edge(v, v + 1);
        }
        let g = b.build();
        let c = CompressedGraph::from_graph(&g);
        let raw = g.num_arcs() * std::mem::size_of::<VertexId>();
        assert!(
            c.arena_bytes() < raw / 2,
            "expected >2x compression: {} vs {}",
            c.arena_bytes(),
            raw
        );
    }

    #[test]
    fn empty_and_isolated() {
        let g = GraphBuilder::from_edges(5, &[(0, 1)]);
        let c = CompressedGraph::from_graph(&g);
        assert_eq!(c.degree(3), 0);
        let mut seen = Vec::new();
        c.for_each_neighbor(3, |u| seen.push(u));
        assert!(seen.is_empty());
        c.for_each_neighbor(0, |u| seen.push(u));
        assert_eq!(seen, vec![1]);
    }

    /// Star graph whose hub has exactly `deg` neighbors `1..=deg`.
    fn star(deg: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (1..=deg as u32).map(|v| (0u32, v)).collect();
        GraphBuilder::from_edges(deg + 1, &edges)
    }

    #[test]
    fn decode_block_degree_zero() {
        let g = GraphBuilder::from_edges(4, &[(1, 2)]);
        let c = CompressedGraph::from_graph(&g);
        // Vertex 0 is isolated: no blocks exist; decode_block(b=0) must
        // report zero neighbors and never invoke the callback.
        let decoded = c.decode_block(0, 0, |_| panic!("no neighbors to decode"));
        assert_eq!(decoded, 0);
    }

    #[test]
    fn degree_exactly_one_block() {
        // Degree == block size: exactly one block and an empty offset
        // table — the boundary where an off-by-one would add a phantom
        // second block.
        let deg = DEFAULT_BLOCK_SIZE;
        let g = star(deg);
        let c = CompressedGraph::from_graph(&g);
        assert_eq!(c.degree(0), deg);
        assert_eq!(c.nblocks(deg), 1);

        let mut block = Vec::new();
        assert_eq!(c.decode_block(0, 0, |u| block.push(u)), deg);
        let want: Vec<u32> = (1..=deg as u32).collect();
        assert_eq!(block, want);

        let mut all = Vec::new();
        c.for_each_neighbor(0, |u| all.push(u));
        assert_eq!(all, want);

        for i in [0, 1, deg - 2, deg - 1] {
            assert_eq!(c.ith_neighbor(0, i), (i + 1) as u32, "i={i}");
        }
    }

    #[test]
    fn degree_not_multiple_of_block_size() {
        // Degree = block size + 1: a full block plus a one-neighbor tail
        // block, exercising the partial final block in all three readers.
        let deg = DEFAULT_BLOCK_SIZE + 1;
        let g = star(deg);
        let c = CompressedGraph::from_graph(&g);
        assert_eq!(c.nblocks(deg), 2);

        let mut b0 = Vec::new();
        assert_eq!(c.decode_block(0, 0, |u| b0.push(u)), DEFAULT_BLOCK_SIZE);
        assert_eq!(b0, (1..=DEFAULT_BLOCK_SIZE as u32).collect::<Vec<_>>());
        let mut b1 = Vec::new();
        assert_eq!(c.decode_block(0, 1, |u| b1.push(u)), 1);
        assert_eq!(b1, vec![deg as u32]);

        let mut all = Vec::new();
        c.for_each_neighbor(0, |u| all.push(u));
        assert_eq!(all, (1..=deg as u32).collect::<Vec<_>>());

        // The tail neighbor crosses into block 1.
        assert_eq!(c.ith_neighbor(0, deg - 1), deg as u32);
        assert_eq!(c.ith_neighbor(0, DEFAULT_BLOCK_SIZE - 1), DEFAULT_BLOCK_SIZE as u32);
    }

    #[test]
    fn checked_paths_agree_with_unchecked() {
        let g = random_graph(250, 3_000, 29);
        let c = CompressedGraph::from_graph_with_block_size(&g, 8);
        c.validate().unwrap();
        for v in 0..g.num_vertices() as u32 {
            let mut a = Vec::new();
            c.for_each_neighbor(v, |u| a.push(u));
            let mut b = Vec::new();
            c.try_for_each_neighbor(v, &mut |u| b.push(u)).unwrap();
            assert_eq!(a, b);
            for i in 0..c.degree(v) {
                assert_eq!(c.try_ith_neighbor(v, i).unwrap(), c.ith_neighbor(v, i));
            }
        }
    }

    #[test]
    fn corrupt_arena_fails_typed_never_panics() {
        // Flip each byte of the arena in turn: the checked decoders must
        // either still produce a structurally valid graph (flips that keep
        // varints well-formed and neighbors in range) or fail typed —
        // never panic or read out of bounds.
        let g = random_graph(40, 300, 37);
        let c = CompressedGraph::from_graph_with_block_size(&g, 4);
        let mut rejected = 0usize;
        for i in 0..c.data.len() {
            let mut bad = c.clone();
            bad.data[i] ^= 0xFF;
            if bad.validate().is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "no corruption was ever detected");
    }

    #[test]
    fn truncated_arena_fails_typed() {
        let g = random_graph(40, 300, 39);
        let mut c = CompressedGraph::from_graph(&g);
        c.data.truncate(c.data.len() / 2);
        match c.validate() {
            Err(
                GraphFormatError::Truncated { .. }
                | GraphFormatError::LengthMismatch { .. }
                | GraphFormatError::Corrupt(_),
            ) => {}
            other => panic!("expected typed failure, got {other:?}"),
        }
    }

    #[test]
    fn try_varint_overflow_and_truncation() {
        // 11 continuation bytes: longer than any u64 varint.
        let buf = [0xFFu8; 11];
        let mut pos = 0;
        assert!(matches!(
            try_decode_varint(&buf, &mut pos),
            Err(GraphFormatError::Overflow { .. })
        ));
        // A continuation byte at the end of the buffer: truncated.
        let buf = [0x80u8];
        let mut pos = 0;
        assert!(matches!(
            try_decode_varint(&buf, &mut pos),
            Err(GraphFormatError::Truncated { .. })
        ));
        // Checked and unchecked agree on valid input.
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 16_384, u64::MAX] {
            encode_varint(&mut buf, v);
        }
        let (mut p1, mut p2) = (0, 0);
        for _ in 0..6 {
            assert_eq!(try_decode_varint(&buf, &mut p1).unwrap(), decode_varint(&buf, &mut p2));
            assert_eq!(p1, p2);
        }
    }

    #[test]
    fn high_degree_vertex_many_blocks() {
        // Star with hub degree 1000 → 16 blocks at the default size.
        let edges: Vec<(u32, u32)> = (1..=1000).map(|v| (0u32, v)).collect();
        let g = GraphBuilder::from_edges(1001, &edges);
        let c = CompressedGraph::from_graph(&g);
        let mut got = Vec::new();
        c.for_each_neighbor(0, |u| got.push(u));
        let want: Vec<u32> = (1..=1000).collect();
        assert_eq!(got, want);
        assert_eq!(c.ith_neighbor(0, 999), 1000);
        assert_eq!(c.ith_neighbor(0, 64), 65);
    }
}
