//! Frontier-based graph algorithms and structural statistics.
//!
//! These serve two roles: they exercise the Ligra/GBBS machinery of
//! [`crate::frontier`] the way the original systems do (BFS and connected
//! components are the canonical Ligra benchmarks), and they feed the
//! workload characterization the experiment harness prints (component
//! structure, clustering, degeneracy — the properties that justify the
//! downsampling analysis on "well-connected" graphs, Theorem 3.2).

use crate::frontier::{edge_map, VertexSubset};
use crate::{GraphOps, VertexId};
use lightne_utils::parallel::parallel_reduce_sum;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Distance label for unreachable vertices.
pub const UNREACHED: u32 = u32::MAX;

/// Parallel BFS from `src`, returning hop distances (`UNREACHED` where
/// not reachable). Built on `edge_map` with CAS claiming — the textbook
/// Ligra BFS.
pub fn bfs<G: GraphOps>(g: &G, src: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    dist[src as usize].store(0, Ordering::Relaxed);
    let mut frontier = VertexSubset::single(src);
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let d = &dist;
        frontier = edge_map(
            g,
            &frontier,
            |_, v| {
                d[v as usize]
                    .compare_exchange(UNREACHED, level, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            },
            |v| d[v as usize].load(Ordering::Relaxed) == UNREACHED,
        );
    }
    dist.into_iter().map(|a| a.into_inner()).collect()
}

/// Connected components by parallel label propagation (min-label
/// convergence). Returns one label per vertex; vertices share a label
/// iff they share a component.
pub fn connected_components<G: GraphOps>(g: &G) -> Vec<u32> {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let mut frontier = VertexSubset::Dense(vec![true; n]);
    while !frontier.is_empty() {
        let l = &labels;
        frontier = edge_map(
            g,
            &frontier,
            |u, v| {
                let lu = l[u as usize].load(Ordering::Relaxed);
                let mut lv = l[v as usize].load(Ordering::Relaxed);
                let mut changed = false;
                while lu < lv {
                    match l[v as usize].compare_exchange(
                        lv,
                        lu,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            changed = true;
                            break;
                        }
                        Err(actual) => lv = actual,
                    }
                }
                changed
            },
            |_| true,
        );
    }
    labels.into_iter().map(|a| a.into_inner()).collect()
}

/// Number of distinct components and the size of the largest.
pub fn component_summary(labels: &[u32]) -> (usize, usize) {
    use std::collections::HashMap;
    let mut sizes: HashMap<u32, usize> = HashMap::new();
    for &l in labels {
        *sizes.entry(l).or_insert(0) += 1;
    }
    let largest = sizes.values().copied().max().unwrap_or(0);
    (sizes.len(), largest)
}

/// Exact triangle count via sorted-neighbor-list intersection, counting
/// each triangle once (`u < v < w`). O(Σ d(u)·d(v)) over edges — fine at
/// benchmark scale and a strong test of CSR ordering invariants.
pub fn triangle_count<G: GraphOps>(g: &G) -> u64 {
    let n = g.num_vertices();
    (0..n as VertexId)
        .into_par_iter()
        .map(|u| {
            // Collect u's higher neighbors once.
            let mut hi_u: Vec<VertexId> = Vec::new();
            g.for_each_neighbor(u, &mut |v| {
                if v > u {
                    hi_u.push(v);
                }
            });
            let mut count = 0u64;
            for &v in &hi_u {
                // Intersect hi_u ∩ {w ∈ N(v) : w > v}.
                let mut hi_v: Vec<VertexId> = Vec::new();
                g.for_each_neighbor(v, &mut |w| {
                    if w > v {
                        hi_v.push(w);
                    }
                });
                let (mut i, mut j) = (0, 0);
                while i < hi_u.len() && j < hi_v.len() {
                    match hi_u[i].cmp(&hi_v[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            count += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
            count
        })
        .sum()
}

/// K-core decomposition by sequential bucket peeling (Matula–Beck).
/// Returns each vertex's core number; the maximum is the graph's
/// degeneracy.
pub fn kcore<G: GraphOps>(g: &G) -> Vec<u32> {
    let n = g.num_vertices();
    let mut deg: Vec<u32> = (0..n).map(|v| g.degree(v as VertexId) as u32).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort vertices by degree.
    let mut bucket_start = vec![0usize; max_deg + 2];
    for &d in &deg {
        bucket_start[d as usize + 1] += 1;
    }
    for i in 1..bucket_start.len() {
        bucket_start[i] += bucket_start[i - 1];
    }
    let mut order = vec![0 as VertexId; n];
    let mut pos = vec![0usize; n];
    let mut cursor = bucket_start.clone();
    for v in 0..n {
        let d = deg[v] as usize;
        order[cursor[d]] = v as VertexId;
        pos[v] = cursor[d];
        cursor[d] += 1;
    }

    let mut core = vec![0u32; n];
    for idx in 0..n {
        let v = order[idx];
        core[v as usize] = deg[v as usize];
        g.for_each_neighbor(v, &mut |u| {
            let du = deg[u as usize];
            if du > deg[v as usize] {
                // Move u one bucket down: swap with first member of its
                // bucket, shift the bucket boundary.
                let bucket = du as usize;
                let first = bucket_start[bucket];
                let w = order[first];
                if w != u {
                    order.swap(pos[u as usize], first);
                    pos.swap(u as usize, w as usize);
                }
                bucket_start[bucket] += 1;
                deg[u as usize] -= 1;
            }
        });
    }
    core
}

/// PageRank by parallel power iteration (damping `alpha`, convergence on
/// L1 change below `tol`). Returns `(scores, iterations)`. Dangling mass
/// (from isolated vertices) is redistributed uniformly, so scores sum to
/// 1 exactly. The other canonical Ligra/GBBS benchmark alongside BFS.
pub fn pagerank<G: GraphOps>(g: &G, alpha: f64, tol: f64, max_iters: usize) -> (Vec<f64>, usize) {
    let n = g.num_vertices();
    assert!(n > 0);
    let mut rank = vec![1.0 / n as f64; n];
    let mut iters = 0;
    for it in 0..max_iters {
        iters = it + 1;
        let dangling: f64 =
            parallel_reduce_sum(n, |v| if g.degree(v as VertexId) == 0 { rank[v] } else { 0.0 });
        let base = (1.0 - alpha) / n as f64 + alpha * dangling / n as f64;
        let next: Vec<f64> = (0..n as VertexId)
            .into_par_iter()
            .map(|u| {
                let mut acc = 0.0;
                g.for_each_neighbor(u, &mut |v| {
                    acc += rank[v as usize] / g.degree(v) as f64;
                });
                base + alpha * acc
            })
            .collect();
        let delta: f64 = parallel_reduce_sum(n, |i| (next[i] - rank[i]).abs());
        rank = next;
        if delta < tol {
            break;
        }
    }
    (rank, iters)
}

/// Structural statistics of a graph (printed by the workload
/// characterization in the experiment harness).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub vertices: usize,
    /// Edge count.
    pub edges: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree.
    pub avg_degree: f64,
    /// Number of connected components.
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Global triangle count.
    pub triangles: u64,
    /// Degeneracy (maximum core number).
    pub degeneracy: u32,
}

/// Computes all [`GraphStats`] in one pass set.
pub fn graph_stats<G: GraphOps>(g: &G) -> GraphStats {
    let labels = connected_components(g);
    let (components, largest_component) = component_summary(&labels);
    let max_degree = (0..g.num_vertices()).map(|v| g.degree(v as VertexId)).max().unwrap_or(0);
    GraphStats {
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        max_degree,
        avg_degree: g.num_arcs() as f64 / g.num_vertices().max(1) as f64,
        components,
        largest_component,
        triangles: triangle_count(g),
        degeneracy: kcore(g).into_iter().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressedGraph, GraphBuilder};

    fn two_triangles_and_isolate() -> crate::Graph {
        // {0,1,2} triangle, {3,4,5} triangle, 6 isolated
        GraphBuilder::from_edges(7, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
    }

    #[test]
    fn bfs_distances_on_path() {
        let edges: Vec<(u32, u32)> = (0..9u32).map(|v| (v, v + 1)).collect();
        let g = GraphBuilder::from_edges(10, &edges);
        let d = bfs(&g, 3);
        assert_eq!(d[3], 0);
        assert_eq!(d[0], 3);
        assert_eq!(d[9], 6);
    }

    #[test]
    fn bfs_unreachable() {
        let g = two_triangles_and_isolate();
        let d = bfs(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], 1);
        assert_eq!(d[3], UNREACHED);
        assert_eq!(d[6], UNREACHED);
    }

    #[test]
    fn components_found() {
        let g = two_triangles_and_isolate();
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[6], labels[0]);
        let (count, largest) = component_summary(&labels);
        assert_eq!(count, 3);
        assert_eq!(largest, 3);
    }

    #[test]
    fn triangles_counted_once() {
        let g = two_triangles_and_isolate();
        assert_eq!(triangle_count(&g), 2);
        // A 4-clique has C(4,3) = 4 triangles.
        let k4 = GraphBuilder::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(triangle_count(&k4), 4);
        // A tree has none.
        let tree = GraphBuilder::from_edges(5, &[(0, 1), (0, 2), (1, 3), (1, 4)]);
        assert_eq!(triangle_count(&tree), 0);
    }

    #[test]
    fn kcore_of_clique_plus_tail() {
        // 4-clique (core 3) with a pendant path (core 1).
        let g = GraphBuilder::from_edges(
            6,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)],
        );
        let core = kcore(&g);
        assert_eq!(&core[0..4], &[3, 3, 3, 3]);
        assert_eq!(core[4], 1);
        assert_eq!(core[5], 1);
    }

    #[test]
    fn kcore_of_cycle_is_two() {
        let edges: Vec<(u32, u32)> = (0..8u32).map(|v| (v, (v + 1) % 8)).collect();
        let g = GraphBuilder::from_edges(8, &edges);
        assert!(kcore(&g).into_iter().all(|c| c == 2));
    }

    #[test]
    fn pagerank_uniform_on_regular_graph() {
        // On a cycle every vertex has the same rank 1/n.
        let n = 20usize;
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, (v + 1) % n as u32)).collect();
        let g = GraphBuilder::from_edges(n, &edges);
        let (pr, _) = pagerank(&g, 0.85, 1e-10, 200);
        for (v, &r) in pr.iter().enumerate() {
            assert!((r - 1.0 / n as f64).abs() < 1e-8, "vertex {v}: {r}");
        }
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hubs() {
        // Star graph: the hub outranks the leaves.
        let edges: Vec<(u32, u32)> = (1..30u32).map(|v| (0, v)).collect();
        let g = GraphBuilder::from_edges(30, &edges);
        let (pr, iters) = pagerank(&g, 0.85, 1e-12, 500);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "ranks sum to {total}");
        assert!(pr[0] > 5.0 * pr[1], "hub {} vs leaf {}", pr[0], pr[1]);
        assert!(iters < 500, "did not converge");
    }

    #[test]
    fn pagerank_handles_dangling_mass() {
        // Isolated vertex: scores must still sum to 1.
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2)]);
        let (pr, _) = pagerank(&g, 0.85, 1e-12, 500);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr[3] > 0.0);
        assert!(pr[1] > pr[3]);
    }

    #[test]
    fn stats_consistent_across_representations() {
        use lightne_utils::rng::XorShiftStream;
        let mut rng = XorShiftStream::new(4, 0);
        let edges: Vec<(u32, u32)> =
            (0..2000).map(|_| (rng.bounded(300) as u32, rng.bounded(300) as u32)).collect();
        let g = GraphBuilder::from_edges(300, &edges);
        let c = CompressedGraph::from_graph(&g);
        assert_eq!(graph_stats(&g), graph_stats(&c));
    }

    #[test]
    fn bfs_matches_on_compressed() {
        let edges: Vec<(u32, u32)> = (0..499u32).map(|v| (v, v + 1)).collect();
        let g = GraphBuilder::from_edges(500, &edges);
        let c = CompressedGraph::from_graph(&g);
        assert_eq!(bfs(&g, 0), bfs(&c, 0));
    }
}
