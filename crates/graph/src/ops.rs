//! The uniform graph interface and GBBS-style bulk-parallel primitives.
//!
//! The interface is split in two layers:
//!
//! * [`GraphAccess`] — the object-safe point-query core (sizes, degrees,
//!   neighbor access). Implemented by the uncompressed [`Graph`], the
//!   parallel-byte [`CompressedGraph`] (v1), and the bit-compressed
//!   [`crate::V2Graph`] — heap-owned or memory-mapped — so all four
//!   backends are interchangeable everywhere downstream.
//! * [`GraphOps`] — LightNE's sampler (Algorithm 2) is expressed as
//!   `G.MapEdges(f)`, a parallel map applying a user function to every
//!   arc. `GraphOps` provides that primitive plus the other bulk-parallel
//!   maps, blanket-implemented for every `GraphAccess + Sync` type.

use crate::{CompressedGraph, Graph, VertexId};
use lightne_utils::mem::MemUsage;
use lightne_utils::parallel::parallel_reduce_sum;
use rayon::prelude::*;

/// Uniform point access to an undirected graph: the minimal, object-safe
/// surface the walk engine, sampler, and pipeline need from any backend.
pub trait GraphAccess {
    /// Number of vertices `n`.
    fn num_vertices(&self) -> usize;

    /// Number of stored directed arcs (`2m`).
    fn num_arcs(&self) -> usize;

    /// Degree of `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// The `i`-th neighbor of `v` (0-based, sorted order).
    fn ith_neighbor(&self, v: VertexId, i: usize) -> VertexId;

    /// Calls `f` on every neighbor of `v` in sorted order.
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId));

    /// Global index of `v`'s first arc in the arc ordering (CSR order).
    fn first_arc_index(&self, v: VertexId) -> u64;

    /// Number of undirected edges `m`.
    fn num_edges(&self) -> usize {
        self.num_arcs() / 2
    }

    /// Volume `vol(G) = Σ_v deg(v) = 2m`.
    fn volume(&self) -> f64 {
        self.num_arcs() as f64
    }

    /// Heap bytes this representation keeps resident in the process.
    /// Memory-mapped backends return ~0 — their pages live in the page
    /// cache, the property the out-of-core pipeline accounts for.
    fn resident_bytes(&self) -> usize {
        0
    }
}

/// Bulk-parallel maps over a graph, available for every thread-safe
/// [`GraphAccess`] backend via the blanket impl below.
pub trait GraphOps: GraphAccess + Sync {
    /// Parallel map over all vertices: `f(v)`.
    fn map_vertices<F>(&self, f: F)
    where
        F: Fn(VertexId) + Sync + Send,
        Self: Sized,
    {
        (0..self.num_vertices() as VertexId).into_par_iter().for_each(f);
    }

    /// Parallel map over all arcs: `f(u, v, arc_index)` for every directed
    /// arc `u → v`. `arc_index` is the arc's global CSR position, used by
    /// callers that need a deterministic per-arc RNG stream. Work is
    /// parallelized across vertices; an undirected edge is visited twice
    /// (once per direction), exactly like GBBS's `MapEdges`.
    fn map_edges<F>(&self, f: F)
    where
        F: Fn(VertexId, VertexId, u64) + Sync + Send,
        Self: Sized,
    {
        (0..self.num_vertices() as VertexId).into_par_iter().for_each(|u| {
            let base = self.first_arc_index(u);
            let mut i = 0u64;
            self.for_each_neighbor(u, &mut |v| {
                f(u, v, base + i);
                i += 1;
            });
        });
    }

    /// Parallel degree histogram: `out[v] = deg(v)`.
    fn degrees(&self) -> Vec<u32>
    where
        Self: Sized,
    {
        (0..self.num_vertices())
            .into_par_iter()
            .map(|v| self.degree(v as VertexId) as u32)
            .collect()
    }

    /// Sum over all arcs of `f(u, v)`, in parallel (a `MapReduce` over
    /// edges; used e.g. to compute modularity-style statistics).
    ///
    /// Per-vertex contributions are summed sequentially over the
    /// adjacency list, then folded with the fixed-block deterministic
    /// reduction, so the result is bitwise identical at any thread count.
    fn reduce_edges<F>(&self, f: F) -> f64
    where
        F: Fn(VertexId, VertexId) -> f64 + Sync + Send,
        Self: Sized,
    {
        parallel_reduce_sum(self.num_vertices(), |u| {
            let u = u as VertexId;
            let mut acc = 0.0;
            self.for_each_neighbor(u, &mut |v| acc += f(u, v));
            acc
        })
    }
}

impl<G: GraphAccess + Sync> GraphOps for G {}

impl GraphAccess for Graph {
    #[inline]
    fn num_vertices(&self) -> usize {
        Graph::num_vertices(self)
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        Graph::num_arcs(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        Graph::degree(self, v)
    }

    #[inline]
    fn ith_neighbor(&self, v: VertexId, i: usize) -> VertexId {
        Graph::ith_neighbor(self, v, i)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        for &u in self.neighbors(v) {
            f(u);
        }
    }

    #[inline]
    fn first_arc_index(&self, v: VertexId) -> u64 {
        self.offsets()[v as usize]
    }

    #[inline]
    fn resident_bytes(&self) -> usize {
        self.heap_bytes()
    }
}

impl GraphAccess for CompressedGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        CompressedGraph::num_vertices(self)
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        CompressedGraph::num_arcs(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CompressedGraph::degree(self, v)
    }

    #[inline]
    fn ith_neighbor(&self, v: VertexId, i: usize) -> VertexId {
        CompressedGraph::ith_neighbor(self, v, i)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        CompressedGraph::for_each_neighbor(self, v, f);
    }

    #[inline]
    fn first_arc_index(&self, v: VertexId) -> u64 {
        CompressedGraph::first_arc_index(self, v)
    }

    #[inline]
    fn resident_bytes(&self) -> usize {
        self.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
        GraphBuilder::from_edges(n, &edges)
    }

    fn check_ops<G: GraphOps>(g: &G, n: usize, arcs: usize) {
        assert_eq!(g.num_vertices(), n);
        assert_eq!(g.num_arcs(), arcs);
        assert_eq!(g.num_edges(), arcs / 2);
        assert_eq!(g.volume(), arcs as f64);
    }

    #[test]
    fn ops_consistent_across_representations() {
        let g = path_graph(100);
        let c = CompressedGraph::from_graph(&g);
        check_ops(&g, 100, 198);
        check_ops(&c, 100, 198);
        for v in 0..100u32 {
            assert_eq!(GraphAccess::degree(&g, v), GraphAccess::degree(&c, v));
            assert_eq!(GraphAccess::first_arc_index(&g, v), GraphAccess::first_arc_index(&c, v));
        }
    }

    #[test]
    fn map_edges_visits_every_arc_once() {
        let g = path_graph(50);
        let count = AtomicU64::new(0);
        let idx_sum = AtomicU64::new(0);
        g.map_edges(|_, _, idx| {
            count.fetch_add(1, Ordering::Relaxed);
            idx_sum.fetch_add(idx, Ordering::Relaxed);
        });
        let arcs = g.num_arcs() as u64;
        assert_eq!(count.load(Ordering::Relaxed), arcs);
        // Arc indices must be exactly 0..arcs.
        assert_eq!(idx_sum.load(Ordering::Relaxed), arcs * (arcs - 1) / 2);
    }

    #[test]
    fn map_edges_compressed_matches_uncompressed() {
        let g = path_graph(64);
        let c = CompressedGraph::from_graph(&g);
        type ArcList = Vec<(u32, u32, u64)>;
        let collect = |g: &dyn Fn(&mut ArcList)| {
            let mut v = Vec::new();
            g(&mut v);
            v.sort_unstable();
            v
        };
        let a = collect(&|out| {
            let m = std::sync::Mutex::new(out);
            g.map_edges(|u, v, i| m.lock().unwrap().push((u, v, i)));
        });
        let b = collect(&|out| {
            let m = std::sync::Mutex::new(out);
            c.map_edges(|u, v, i| m.lock().unwrap().push((u, v, i)));
        });
        assert_eq!(a, b);
    }

    #[test]
    fn reduce_edges_counts_degrees() {
        let g = path_graph(10);
        let total = g.reduce_edges(|_, _| 1.0);
        assert_eq!(total, g.num_arcs() as f64);
    }

    #[test]
    fn map_vertices_covers_all() {
        let g = path_graph(128);
        let hits: Vec<AtomicU64> = (0..128).map(|_| AtomicU64::new(0)).collect();
        g.map_vertices(|v| {
            hits[v as usize].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn degrees_vector() {
        let g = path_graph(5);
        assert_eq!(g.degrees(), vec![1, 2, 2, 2, 1]);
    }
}
