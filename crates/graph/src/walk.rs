//! The random-walk engine used by PathSampling (Algorithm 1).
//!
//! Walks are simulated one step at a time: draw a uniform 32-bit value,
//! reduce it modulo the current vertex's degree, and fetch that incident
//! edge (Section 4.2). On the uncompressed CSR this fetch is O(1); on the
//! parallel-byte format it decodes one block, which is the latency the
//! paper's block-size experiment trades against memory.

use crate::{GraphAccess, VertexId};
use lightne_utils::rng::XorShiftStream;

/// Advances a random walk from `start` for `steps` steps, returning the
/// final vertex. A walk stops early (stays put) only at an isolated vertex,
/// which cannot occur when the walk starts from an endpoint of an edge.
#[inline]
pub fn walk<G: GraphAccess>(
    g: &G,
    start: VertexId,
    steps: usize,
    rng: &mut XorShiftStream,
) -> VertexId {
    let mut cur = start;
    for _ in 0..steps {
        let deg = g.degree(cur);
        if deg == 0 {
            return cur;
        }
        let i = rng.bounded_usize(deg);
        cur = g.ith_neighbor(cur, i);
    }
    cur
}

/// Records the full trajectory of a walk (used by the DeepWalk baseline,
/// which consumes whole walk sequences rather than endpoints).
pub fn walk_trajectory<G: GraphAccess>(
    g: &G,
    start: VertexId,
    steps: usize,
    rng: &mut XorShiftStream,
    out: &mut Vec<VertexId>,
) {
    out.clear();
    out.push(start);
    let mut cur = start;
    for _ in 0..steps {
        let deg = g.degree(cur);
        if deg == 0 {
            break;
        }
        cur = g.ith_neighbor(cur, rng.bounded_usize(deg));
        out.push(cur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressedGraph, GraphBuilder};

    #[test]
    fn walk_stays_on_isolated_vertex() {
        let g = GraphBuilder::from_edges(3, &[(0, 1)]);
        let mut rng = XorShiftStream::new(1, 0);
        assert_eq!(walk(&g, 2, 10, &mut rng), 2);
    }

    #[test]
    fn walk_on_edge_alternates() {
        // A single edge: any walk of even length returns to the start.
        let g = GraphBuilder::from_edges(2, &[(0, 1)]);
        let mut rng = XorShiftStream::new(2, 0);
        assert_eq!(walk(&g, 0, 4, &mut rng), 0);
        assert_eq!(walk(&g, 0, 7, &mut rng), 1);
    }

    #[test]
    fn walk_visits_reachable_vertices_only() {
        // Two disconnected triangles.
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let mut rng = XorShiftStream::new(3, 0);
        for _ in 0..200 {
            let end = walk(&g, 0, 5, &mut rng);
            assert!(end < 3, "walk escaped its component: {end}");
        }
    }

    #[test]
    fn walk_distribution_on_cycle_is_roughly_uniform() {
        // On a cycle, long walks approach the uniform stationary distribution.
        let n = 8u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let g = GraphBuilder::from_edges(n as usize, &edges);
        let mut rng = XorShiftStream::new(4, 0);
        let mut counts = vec![0usize; n as usize];
        let trials = 80_000;
        for _ in 0..trials {
            counts[walk(&g, 0, 31, &mut rng) as usize] += 1;
        }
        // Parity: a 31-step walk on an even cycle lands on odd vertices only.
        let odd_total: usize = counts.iter().skip(1).step_by(2).sum();
        assert_eq!(odd_total, trials);
        for v in (1..n as usize).step_by(2) {
            let p = counts[v] as f64 / trials as f64;
            assert!((p - 0.25).abs() < 0.02, "vertex {v}: {p}");
        }
    }

    #[test]
    fn walk_same_on_compressed_graph() {
        let edges: Vec<(u32, u32)> =
            (0..999).map(|v| (v, v + 1)).chain((0..500).map(|v| (v, v + 500))).collect();
        let g = GraphBuilder::from_edges(1000, &edges);
        let c = CompressedGraph::from_graph(&g);
        for seed in 0..20 {
            let mut r1 = XorShiftStream::new(seed, 0);
            let mut r2 = XorShiftStream::new(seed, 0);
            assert_eq!(walk(&g, 0, 12, &mut r1), walk(&c, 0, 12, &mut r2));
        }
    }

    #[test]
    fn trajectory_has_consecutive_edges() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mut rng = XorShiftStream::new(5, 0);
        let mut traj = Vec::new();
        walk_trajectory(&g, 2, 10, &mut rng, &mut traj);
        assert_eq!(traj.len(), 11);
        for w in traj.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "non-edge in trajectory: {w:?}");
        }
    }
}
