//! Parallel CSR construction from edge lists.
//!
//! The GBBS ingestion path: pack each edge into a `u64`, parallel-sort,
//! deduplicate, then compute offsets with a parallel prefix sum. Self-loops
//! are dropped and (by default) the edge set is symmetrized, because every
//! algorithm in the paper operates on undirected graphs.

use crate::{Graph, VertexId};
use lightne_utils::parallel::parallel_prefix_sum;
use rayon::prelude::*;

/// Packs an ordered pair into a sortable `u64` key.
#[inline]
pub fn pack_edge(u: VertexId, v: VertexId) -> u64 {
    ((u as u64) << 32) | v as u64
}

/// Unpacks a `u64` key into an ordered pair.
#[inline]
pub fn unpack_edge(key: u64) -> (VertexId, VertexId) {
    ((key >> 32) as VertexId, key as VertexId)
}

/// Accumulates edges and builds a CSR [`Graph`].
///
/// ```
/// use lightne_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(2, 3);
/// let g = b.build();
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<u64>,
    symmetrize: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices; edges are symmetrized.
    pub fn new(n: usize) -> Self {
        assert!(n <= VertexId::MAX as usize, "vertex count exceeds u32 id space");
        Self { n, edges: Vec::new(), symmetrize: true }
    }

    /// Disables symmetrization (the input is already symmetric).
    pub fn assume_symmetric(mut self) -> Self {
        self.symmetrize = false;
        self
    }

    /// Adds one undirected edge. Self-loops are ignored.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        debug_assert!((u as usize) < self.n && (v as usize) < self.n);
        if u == v {
            return;
        }
        self.edges.push(pack_edge(u, v));
        if self.symmetrize {
            self.edges.push(pack_edge(v, u));
        }
    }

    /// Adds a batch of undirected edges.
    pub fn add_edges(&mut self, edges: impl IntoIterator<Item = (VertexId, VertexId)>) {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
    }

    /// Number of (directed) arc records currently buffered.
    pub fn buffered_arcs(&self) -> usize {
        self.edges.len()
    }

    /// Builds the CSR graph: parallel sort, dedup, offsets by prefix sum.
    pub fn build(mut self) -> Graph {
        let n = self.n;
        self.edges.par_sort_unstable();
        self.edges.dedup();
        let edges = self.edges;

        // Count degrees: edges are sorted by source, so the degree of v is
        // the size of its contiguous run. A parallel histogram via atomic
        // increments would also work; counting by binary-searching run
        // boundaries keeps this deterministic and contention-free.
        let mut degrees = vec![0u64; n];
        // Parallel: each chunk counts into a local map keyed by source run.
        // Runs can span chunk boundaries, so count with atomics instead.
        use std::sync::atomic::{AtomicU64, Ordering};
        let deg_atomic: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        edges.par_iter().for_each(|&e| {
            let (u, _) = unpack_edge(e);
            deg_atomic[u as usize].fetch_add(1, Ordering::Relaxed);
        });
        degrees
            .par_iter_mut()
            .zip(deg_atomic.par_iter())
            .for_each(|(d, a)| *d = a.load(Ordering::Relaxed));

        let offsets = parallel_prefix_sum(&degrees);
        let neighbors: Vec<VertexId> = edges.par_iter().map(|&e| unpack_edge(e).1).collect();
        Graph::from_csr(offsets, neighbors)
    }

    /// Convenience: builds a graph from a slice of edges.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Graph {
        let mut b = Self::new(n);
        b.add_edges(edges.iter().copied());
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_deduped_symmetric() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 0), (0, 1), (2, 3), (3, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.neighbors(3), &[2]);
    }

    #[test]
    fn drops_self_loops() {
        let g = GraphBuilder::from_edges(3, &[(0, 0), (1, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn neighbor_lists_sorted() {
        let g = GraphBuilder::from_edges(5, &[(2, 4), (2, 0), (2, 3), (2, 1)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = GraphBuilder::from_edges(10, &[(0, 9)]);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(5), 0);
        assert_eq!(g.degree(9), 1);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for &(u, v) in &[(0u32, 0u32), (1, 2), (u32::MAX, 7), (123456, u32::MAX)] {
            assert_eq!(unpack_edge(pack_edge(u, v)), (u, v));
        }
    }

    #[test]
    fn large_random_graph_consistency() {
        use lightne_utils::rng::XorShiftStream;
        let n = 1000usize;
        let mut rng = XorShiftStream::new(7, 0);
        let edges: Vec<(u32, u32)> = (0..20_000)
            .map(|_| (rng.bounded_usize(n) as u32, rng.bounded_usize(n) as u32))
            .collect();
        let g = GraphBuilder::from_edges(n, &edges);
        // Symmetry: u in N(v) iff v in N(u).
        for v in 0..n as u32 {
            for &u in g.neighbors(v) {
                assert!(g.has_edge(u, v), "asymmetric edge ({u},{v})");
            }
        }
        // Offsets sum to arcs.
        assert_eq!(g.offsets()[n] as usize, g.num_arcs());
    }
}
