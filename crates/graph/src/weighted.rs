//! Weighted undirected graphs.
//!
//! The paper's formulation (Table 1, Theorem 3.1) is stated for weighted
//! adjacency matrices — `vol(G) = Σ A_uv`, downsampling probability
//! `p_e = min(1, C·A_uv·(1/d_u + 1/d_v))` with *weighted* degrees — and
//! NetSMF's PathSampling on weighted graphs walks proportionally to edge
//! weight. This module provides the weighted CSR representation with the
//! O(log deg) weighted neighbor sampling that the weighted sampler
//! (`lightne_sparsifier::weighted`) builds on.

use crate::{Graph, VertexId};
use lightne_utils::mem::MemUsage;
use lightne_utils::parallel::parallel_prefix_sum;
use lightne_utils::rng::XorShiftStream;
use rayon::prelude::*;

/// An undirected graph with positive edge weights, in CSR form.
///
/// ```
/// use lightne_graph::WeightedGraph;
/// let g = WeightedGraph::from_edges(3, &[(0, 1, 2.0), (1, 2, 3.0)]);
/// assert_eq!(g.edge_weight(1, 0), 2.0);
/// assert_eq!(g.weighted_degree(1), 5.0);
/// assert_eq!(g.volume(), 10.0);
/// ```
///
/// Alongside the weight of each arc, each vertex stores the running
/// (inclusive) prefix sums of its incident weights, so drawing a random
/// neighbor proportionally to weight is one uniform draw plus a binary
/// search.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedGraph {
    offsets: Vec<u64>,
    neighbors: Vec<VertexId>,
    weights: Vec<f32>,
    /// Inclusive per-vertex prefix sums of `weights`.
    cumulative: Vec<f32>,
    weighted_degrees: Vec<f64>,
}

impl WeightedGraph {
    /// Builds from an undirected weighted edge list. Duplicate edges have
    /// their weights summed; self-loops are dropped; weights must be
    /// positive and finite.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId, f32)]) -> Self {
        assert!(n <= VertexId::MAX as usize);
        for &(u, v, w) in edges {
            assert!((u as usize) < n && (v as usize) < n, "vertex id out of range");
            assert!(w > 0.0 && w.is_finite(), "edge weights must be positive and finite");
        }
        // Symmetrize, sort by packed key, merge duplicates.
        let mut arcs: Vec<(u64, f32)> = Vec::with_capacity(edges.len() * 2);
        for &(u, v, w) in edges {
            if u == v {
                continue;
            }
            arcs.push((((u as u64) << 32) | v as u64, w));
            arcs.push((((v as u64) << 32) | u as u64, w));
        }
        arcs.par_sort_unstable_by_key(|&(k, _)| k);
        let mut write = 0usize;
        for read in 0..arcs.len() {
            if write > 0 && arcs[write - 1].0 == arcs[read].0 {
                arcs[write - 1].1 += arcs[read].1;
            } else {
                arcs[write] = arcs[read];
                write += 1;
            }
        }
        arcs.truncate(write);

        let mut counts = vec![0u64; n];
        for &(k, _) in &arcs {
            counts[(k >> 32) as usize] += 1;
        }
        let offsets = parallel_prefix_sum(&counts);
        let neighbors: Vec<VertexId> = arcs.par_iter().map(|&(k, _)| k as VertexId).collect();
        let weights: Vec<f32> = arcs.par_iter().map(|&(_, w)| w).collect();

        // Per-vertex inclusive prefix sums.
        let mut cumulative = weights.clone();
        for v in 0..n {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            let mut acc = 0.0f32;
            for c in &mut cumulative[lo..hi] {
                acc += *c;
                *c = acc;
            }
        }
        let weighted_degrees: Vec<f64> = (0..n)
            .map(|v| {
                let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
                weights[lo..hi].iter().map(|&w| w as f64).sum()
            })
            .collect();

        Self { offsets, neighbors, weights, cumulative, weighted_degrees }
    }

    /// Lifts an unweighted graph to unit weights.
    pub fn from_unweighted(g: &Graph) -> Self {
        let mut edges = Vec::with_capacity(g.num_edges());
        for u in 0..g.num_vertices() as VertexId {
            for &v in g.neighbors(u) {
                if u < v {
                    edges.push((u, v, 1.0));
                }
            }
        }
        Self::from_edges(g.num_vertices(), &edges)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Number of stored directed arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.neighbors.len()
    }

    /// Unweighted degree (neighbor count) of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Weighted degree `d_v = Σ_u A_vu`.
    #[inline]
    pub fn weighted_degree(&self, v: VertexId) -> f64 {
        self.weighted_degrees[v as usize]
    }

    /// Weighted volume `vol(G) = Σ_v d_v`.
    pub fn volume(&self) -> f64 {
        self.weighted_degrees.iter().sum()
    }

    /// Neighbor ids and weights of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> (&[VertexId], &[f32]) {
        let v = v as usize;
        let (lo, hi) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
        (&self.neighbors[lo..hi], &self.weights[lo..hi])
    }

    /// The weight of edge `(u, v)`, 0.0 if absent.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> f32 {
        let (nb, ws) = self.neighbors(u);
        match nb.binary_search(&v) {
            Ok(i) => ws[i],
            Err(_) => 0.0,
        }
    }

    /// Global arc index of `v`'s first arc.
    #[inline]
    pub fn first_arc_index(&self, v: VertexId) -> u64 {
        self.offsets[v as usize]
    }

    /// Draws a neighbor of `v` with probability proportional to edge
    /// weight (O(log deg) binary search over the prefix sums). Returns
    /// `None` for isolated vertices.
    pub fn sample_neighbor(&self, v: VertexId, rng: &mut XorShiftStream) -> Option<VertexId> {
        let vu = v as usize;
        let (lo, hi) = (self.offsets[vu] as usize, self.offsets[vu + 1] as usize);
        if lo == hi {
            return None;
        }
        let cum = &self.cumulative[lo..hi];
        // xtask:panic-ok(invariant: degree > 0 was checked above, so the cumulative slice is non-empty)
        let total = *cum.last().unwrap();
        let target = rng.unit_f32() * total;
        let idx = cum.partition_point(|&c| c <= target).min(cum.len() - 1);
        Some(self.neighbors[lo + idx])
    }

    /// Weighted random walk: each step moves to a neighbor drawn
    /// proportionally to edge weight.
    pub fn walk(&self, start: VertexId, steps: usize, rng: &mut XorShiftStream) -> VertexId {
        let mut cur = start;
        for _ in 0..steps {
            match self.sample_neighbor(cur, rng) {
                Some(next) => cur = next,
                None => return cur,
            }
        }
        cur
    }

    /// Parallel map over all arcs: `f(u, v, weight, arc_index)`.
    pub fn map_arcs<F>(&self, f: F)
    where
        F: Fn(VertexId, VertexId, f32, u64) + Sync + Send,
    {
        (0..self.num_vertices() as VertexId).into_par_iter().for_each(|u| {
            let base = self.first_arc_index(u);
            let (nb, ws) = self.neighbors(u);
            for (i, (&v, &w)) in nb.iter().zip(ws).enumerate() {
                f(u, v, w, base + i as u64);
            }
        });
    }
}

impl MemUsage for WeightedGraph {
    fn heap_bytes(&self) -> usize {
        self.offsets.heap_bytes()
            + self.neighbors.heap_bytes()
            + self.weights.heap_bytes()
            + self.cumulative.heap_bytes()
            + self.weighted_degrees.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn weighted_triangle() -> WeightedGraph {
        WeightedGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)])
    }

    #[test]
    fn basic_structure() {
        let g = weighted_triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(0, 1), 1.0);
        assert_eq!(g.edge_weight(1, 0), 1.0);
        assert_eq!(g.edge_weight(2, 0), 3.0);
        assert_eq!(g.edge_weight(0, 0), 0.0);
        assert!((g.weighted_degree(0) - 4.0).abs() < 1e-6);
        assert!((g.volume() - 12.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_edges_sum() {
        let g = WeightedGraph::from_edges(2, &[(0, 1, 1.5), (1, 0, 2.5)]);
        assert_eq!(g.edge_weight(0, 1), 4.0);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn self_loops_dropped() {
        let g = WeightedGraph::from_edges(2, &[(0, 0, 5.0), (0, 1, 1.0)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 0), 0.0);
    }

    #[test]
    fn from_unweighted_has_unit_weights() {
        let u = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let g = WeightedGraph::from_unweighted(&u);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(1, 2), 1.0);
        assert_eq!(g.volume(), u.volume());
    }

    #[test]
    fn neighbor_sampling_respects_weights() {
        // Vertex 0 has neighbors 1 (w=1) and 2 (w=9).
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1.0), (0, 2, 9.0)]);
        let mut rng = XorShiftStream::new(3, 0);
        let mut count2 = 0usize;
        let trials = 50_000;
        for _ in 0..trials {
            if g.sample_neighbor(0, &mut rng) == Some(2) {
                count2 += 1;
            }
        }
        let p = count2 as f64 / trials as f64;
        assert!((p - 0.9).abs() < 0.01, "P(neighbor=2) = {p}");
    }

    #[test]
    fn isolated_vertex_sampling_returns_none() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1.0)]);
        let mut rng = XorShiftStream::new(4, 0);
        assert_eq!(g.sample_neighbor(2, &mut rng), None);
        assert_eq!(g.walk(2, 5, &mut rng), 2);
    }

    #[test]
    fn weighted_walk_stationary_distribution() {
        // On a weighted path 0-1 (w=1), 1-2 (w=3): stationary probability
        // ∝ weighted degree = [1, 4, 3]. Long walks should match.
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 3.0)]);
        let mut rng = XorShiftStream::new(5, 0);
        let mut counts = [0usize; 3];
        // Long walks (even+odd mix to wash out parity).
        for t in 0..30_000 {
            let steps = 20 + (t % 2);
            counts[g.walk(1, steps, &mut rng) as usize] += 1;
        }
        let total: usize = counts.iter().sum();
        let p0 = counts[0] as f64 / total as f64;
        let p2 = counts[2] as f64 / total as f64;
        assert!((p0 - 1.0 / 8.0).abs() < 0.02, "p0 {p0}");
        assert!((p2 - 3.0 / 8.0).abs() < 0.02, "p2 {p2}");
    }

    #[test]
    fn map_arcs_covers_all() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let g = weighted_triangle();
        let count = AtomicU32::new(0);
        let wsum = lightne_utils::atomic::AtomicF64::new(0.0);
        g.map_arcs(|_, _, w, _| {
            count.fetch_add(1, Ordering::Relaxed);
            wsum.fetch_add(w as f64);
        });
        assert_eq!(count.load(Ordering::Relaxed), 6);
        assert!((wsum.load() - 12.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nonpositive_weights() {
        WeightedGraph::from_edges(2, &[(0, 1, 0.0)]);
    }
}
