//! Micro-benchmarks of the linear-algebra kernels replacing Intel MKL
//! (Section 4.3 / Algorithm 3): GEMM, Gram products, orthonormalization,
//! the small Jacobi SVD, SPMM, and the full randomized SVD.
//!
//! Each blocked kernel is benchmarked side by side with its
//! [`lightne_linalg::reference`] (pre register-blocking) implementation,
//! so a criterion run shows the packed-GEMM / panel-QR / blocked-Jacobi
//! speedups directly. The full-size GFLOP/s measurements live in
//! `bench_linalg_json` (see `scripts/run_linalg_bench.sh`), which this
//! smoke-size run complements.

use criterion::{criterion_group, criterion_main, Criterion};
use lightne_linalg::qr::orthonormalize_columns;
use lightne_linalg::svd::jacobi_svd;
use lightne_linalg::{randomized_svd, reference, CsrMatrix, DenseMatrix, RsvdConfig};
use lightne_utils::rng::XorShiftStream;
use std::hint::black_box;

fn sparse_random(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = XorShiftStream::new(seed, 0);
    let mut coo = Vec::with_capacity(n * nnz_per_row);
    for i in 0..n as u32 {
        for _ in 0..nnz_per_row {
            coo.push((i, rng.bounded_usize(n) as u32, rng.unit_f32()));
        }
    }
    CsrMatrix::from_coo(n, n, coo)
}

fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_kernels");
    group.sample_size(10);

    let a = DenseMatrix::gaussian(256, 256, 1);
    let b2 = DenseMatrix::gaussian(256, 256, 2);
    group.bench_function("gemm_256x256", |b| b.iter(|| black_box(a.matmul(&b2))));
    group.bench_function("gemm_256x256_reference", |b| {
        b.iter(|| black_box(reference::matmul(&a, &b2)))
    });

    let wide = DenseMatrix::gaussian(16_384, 256, 11);
    let proj = DenseMatrix::gaussian(256, 256, 12);
    group.bench_function("gemm_16k_x256", |b| b.iter(|| black_box(wide.matmul(&proj))));
    group.bench_function("gemm_16k_x256_reference", |b| {
        b.iter(|| black_box(reference::matmul(&wide, &proj)))
    });

    let tall = DenseMatrix::gaussian(50_000, 32, 3);
    group.bench_function("gram_tn_50k_x32", |b| b.iter(|| black_box(tall.gram_tn(&tall))));

    group.bench_function("panel_qr_50k_x32", |b| {
        b.iter(|| {
            let mut x = tall.clone();
            black_box(orthonormalize_columns(&mut x))
        })
    });
    group.bench_function("mgs_qr_50k_x32_reference", |b| {
        b.iter(|| {
            let mut x = tall.clone();
            black_box(reference::orthonormalize_columns(&mut x))
        })
    });

    let small = DenseMatrix::gaussian(48, 48, 4);
    group.bench_function("jacobi_svd_48x48", |b| b.iter(|| black_box(jacobi_svd(&small))));
    group.bench_function("jacobi_svd_48x48_reference", |b| {
        b.iter(|| black_box(reference::jacobi_svd(&small)))
    });

    let blocked = DenseMatrix::gaussian(50_000, 32, 13);
    group.bench_function("transpose_50k_x32", |b| b.iter(|| black_box(blocked.transpose())));
    group.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_kernels");
    group.sample_size(10);

    let m = sparse_random(50_000, 20, 5);
    let x = DenseMatrix::gaussian(50_000, 32, 6);
    group.bench_function("spmm_1m_nnz_x32", |b| b.iter(|| black_box(m.spmm(&x))));

    group.bench_function("rsvd_rank32_1m_nnz", |b| {
        b.iter(|| {
            black_box(randomized_svd(
                &m,
                &RsvdConfig { rank: 32, oversampling: 8, power_iters: 1, seed: 7 },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dense, bench_sparse);
criterion_main!(benches);
