//! Micro-benchmarks of the sparse parallel hash table (Section 4.2).
//!
//! Compares the lock-free concurrent table against the NetSMF-style
//! per-thread buffers and a naive `Mutex<HashMap>` on the aggregation
//! workload (many weighted inserts over a skewed key distribution), plus
//! the `xadd`-analogue contended-counter case the paper cites.

use criterion::{criterion_group, criterion_main, Criterion};
use lightne_hash::{ConcurrentEdgeTable, EdgeAggregator, ThreadLocalAggregator};
use lightne_utils::rng::XorShiftStream;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hint::black_box;

const OPS: usize = 200_000;
const DISTINCT: u64 = 10_000;

fn keys() -> Vec<(u32, u32)> {
    let mut rng = XorShiftStream::new(1, 0);
    (0..OPS)
        .map(|_| {
            // Skewed: square the uniform to concentrate on low ids.
            let x = rng.unit_f64();
            let u = ((x * x) * DISTINCT as f64) as u32;
            (u, u + 1)
        })
        .collect()
}

fn bench_aggregation(c: &mut Criterion) {
    let keys = keys();
    let mut group = c.benchmark_group("edge_aggregation_200k_ops");
    group.sample_size(10);

    group.bench_function("concurrent_table", |b| {
        b.iter(|| {
            let t = ConcurrentEdgeTable::with_expected(DISTINCT as usize);
            for &(u, v) in &keys {
                t.add_edge(u, v, 1.0);
            }
            black_box(t.len())
        })
    });

    group.bench_function("thread_local_buffers", |b| {
        b.iter(|| {
            let t = ThreadLocalAggregator::new();
            for &(u, v) in &keys {
                t.add(u, v, 1.0);
            }
            black_box(t.into_coo().len())
        })
    });

    group.bench_function("mutex_hashmap", |b| {
        b.iter(|| {
            let t: Mutex<HashMap<(u32, u32), f32>> = Mutex::new(HashMap::new());
            for &(u, v) in &keys {
                *t.lock().entry((u, v)).or_insert(0.0) += 1.0;
            }
            let len = t.lock().len();
            black_box(len)
        })
    });
    group.finish();
}

fn bench_contended_counter(c: &mut Criterion) {
    // The paper's xadd-vs-CAS note: all updates hit one slot.
    let mut group = c.benchmark_group("single_hot_key");
    group.sample_size(10);
    group.bench_function("concurrent_table_hot", |b| {
        b.iter(|| {
            let t = ConcurrentEdgeTable::with_expected(16);
            for _ in 0..OPS {
                t.add_edge(1, 2, 1.0);
            }
            black_box(t.get(1, 2))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_aggregation, bench_contended_counter);
criterion_main!(benches);
