//! Micro-benchmarks of the parallel-byte compressed format (Section 4.1).
//!
//! Reproduces the block-size trade-off the paper evaluated before picking
//! 64: smaller blocks fetch an arbitrary incident edge faster (less to
//! decode) but compress worse; larger blocks compress better but slow the
//! random walks. Also reports encode/decode throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lightne_gen::generators::chung_lu;
use lightne_graph::CompressedGraph;
use lightne_utils::rng::XorShiftStream;
use std::hint::black_box;

fn bench_block_size_tradeoff(c: &mut Criterion) {
    let g = chung_lu(20_000, 400_000, 2.3, 1);
    let raw_bytes = g.num_arcs() * 4;

    let mut group = c.benchmark_group("ith_neighbor_by_block_size");
    group.sample_size(20);
    for block in [16usize, 64, 256] {
        let cg = CompressedGraph::from_graph_with_block_size(&g, block);
        eprintln!(
            "block={block}: arena {} bytes ({:.2}x raw)",
            cg.arena_bytes(),
            cg.arena_bytes() as f64 / raw_bytes as f64
        );
        group.bench_with_input(BenchmarkId::from_parameter(block), &cg, |b, cg| {
            let mut rng = XorShiftStream::new(3, 0);
            b.iter(|| {
                let v = rng.bounded_usize(20_000) as u32;
                let d = cg.degree(v);
                if d > 0 {
                    black_box(cg.ith_neighbor(v, rng.bounded_usize(d)));
                }
            })
        });
    }
    group.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    let g = chung_lu(20_000, 400_000, 2.3, 2);
    let cg = CompressedGraph::from_graph(&g);

    let mut group = c.benchmark_group("compression");
    group.sample_size(10);
    group.bench_function("encode_full_graph", |b| {
        b.iter(|| black_box(CompressedGraph::from_graph(&g)))
    });
    group.bench_function("decode_all_neighbors", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..cg.num_vertices() as u32 {
                cg.for_each_neighbor(v, |u| acc = acc.wrapping_add(u as u64));
            }
            black_box(acc)
        })
    });
    group.bench_function("scan_uncompressed_baseline", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..g.num_vertices() as u32 {
                for &u in g.neighbors(v) {
                    acc = acc.wrapping_add(u as u64);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_block_size_tradeoff, bench_encode_decode);
criterion_main!(benches);
