//! Micro-benchmarks of the parallel-byte compressed format (Section 4.1)
//! and the v2 bit-granular container.
//!
//! Reproduces the block-size trade-off the paper evaluated before picking
//! 64: smaller blocks fetch an arbitrary incident edge faster (less to
//! decode) but compress worse; larger blocks compress better but slow the
//! random walks. Also reports encode/decode throughput, and the same
//! decode paths through v2 containers per codec so a codec change shows
//! up next to the v1 numbers it must compete with.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lightne_gen::generators::chung_lu;
use lightne_graph::{Codec, CompressedGraph, V2Graph};
use lightne_utils::rng::XorShiftStream;
use std::hint::black_box;

fn bench_block_size_tradeoff(c: &mut Criterion) {
    let g = chung_lu(20_000, 400_000, 2.3, 1);
    let raw_bytes = g.num_arcs() * 4;

    let mut group = c.benchmark_group("ith_neighbor_by_block_size");
    group.sample_size(20);
    for block in [16usize, 64, 256] {
        let cg = CompressedGraph::from_graph_with_block_size(&g, block);
        eprintln!(
            "block={block}: arena {} bytes ({:.2}x raw)",
            cg.arena_bytes(),
            cg.arena_bytes() as f64 / raw_bytes as f64
        );
        group.bench_with_input(BenchmarkId::from_parameter(block), &cg, |b, cg| {
            let mut rng = XorShiftStream::new(3, 0);
            b.iter(|| {
                let v = rng.bounded_usize(20_000) as u32;
                let d = cg.degree(v);
                if d > 0 {
                    black_box(cg.ith_neighbor(v, rng.bounded_usize(d)));
                }
            })
        });
    }
    group.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    let g = chung_lu(20_000, 400_000, 2.3, 2);
    let cg = CompressedGraph::from_graph(&g);

    let mut group = c.benchmark_group("compression");
    group.sample_size(10);
    group.bench_function("encode_full_graph", |b| {
        b.iter(|| black_box(CompressedGraph::from_graph(&g)))
    });
    group.bench_function("decode_all_neighbors", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..cg.num_vertices() as u32 {
                cg.for_each_neighbor(v, |u| acc = acc.wrapping_add(u as u64));
            }
            black_box(acc)
        })
    });
    group.bench_function("scan_uncompressed_baseline", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..g.num_vertices() as u32 {
                for &u in g.neighbors(v) {
                    acc = acc.wrapping_add(u as u64);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_v2_codecs(c: &mut Criterion) {
    let g = chung_lu(20_000, 400_000, 2.3, 2);
    let codecs = [Codec::Gamma, Codec::Zeta(3), Codec::Rice(10), Codec::RiceAdaptive];

    let mut group = c.benchmark_group("v2_decode_all_neighbors");
    group.sample_size(10);
    for codec in codecs {
        let v2 = V2Graph::from_graph(&g, codec);
        eprintln!(
            "v2/{}: container {} bytes ({:.3} bits/edge)",
            codec.name(),
            v2.container_bytes(),
            v2.container_bytes() as f64 * 8.0 / g.num_arcs() as f64
        );
        group.bench_with_input(BenchmarkId::from_parameter(codec.name()), &v2, |b, v2| {
            b.iter(|| {
                let mut acc = 0u64;
                for v in 0..v2.num_vertices() as u32 {
                    v2.try_for_each_neighbor(v, &mut |u| acc = acc.wrapping_add(u as u64)).unwrap();
                }
                black_box(acc)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("v2_ith_neighbor");
    group.sample_size(20);
    for codec in codecs {
        let v2 = V2Graph::from_graph(&g, codec);
        group.bench_with_input(BenchmarkId::from_parameter(codec.name()), &v2, |b, v2| {
            let mut rng = XorShiftStream::new(3, 0);
            b.iter(|| {
                let v = rng.bounded_usize(20_000) as u32;
                let d = v2.degree(v);
                if d > 0 {
                    black_box(v2.try_ith_neighbor(v, rng.bounded_usize(d)).unwrap());
                }
            })
        });
    }
    group.finish();
}

fn bench_v2_encode(c: &mut Criterion) {
    let g = chung_lu(20_000, 400_000, 2.3, 2);
    let mut group = c.benchmark_group("v2_encode_full_graph");
    group.sample_size(10);
    for codec in [Codec::Zeta(3), Codec::RiceAdaptive] {
        group.bench_with_input(BenchmarkId::from_parameter(codec.name()), &codec, |b, &codec| {
            b.iter(|| black_box(V2Graph::from_graph(&g, codec)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_block_size_tradeoff,
    bench_encode_decode,
    bench_v2_codecs,
    bench_v2_encode
);
criterion_main!(benches);
