//! Micro-benchmarks of the sampling stage (Algorithm 1 and Algorithm 2).
//!
//! Measures per-sample PathSampling cost on compressed vs uncompressed
//! graphs (the block-decode latency trade-off of Section 4.2) and the
//! throughput effect of edge downsampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lightne_gen::generators::chung_lu;
use lightne_graph::CompressedGraph;
use lightne_sparsifier::construct::{build_sparsifier, SamplerConfig};
use lightne_sparsifier::path_sampling::path_sample;
use lightne_sparsifier::sharded::build_sharded_sparsifier;
use lightne_utils::rng::XorShiftStream;
use std::hint::black_box;

fn bench_path_sample(c: &mut Criterion) {
    let g = chung_lu(10_000, 150_000, 2.5, 1);
    let cg = CompressedGraph::from_graph(&g);
    let mut group = c.benchmark_group("path_sample_T10");
    group.sample_size(20);

    group.bench_function("uncompressed_csr", |b| {
        let mut rng = XorShiftStream::new(7, 0);
        b.iter(|| {
            let r = 1 + rng.bounded_usize(10);
            black_box(path_sample(&g, 0, 1, r, &mut rng))
        })
    });
    group.bench_function("parallel_byte_compressed", |b| {
        let mut rng = XorShiftStream::new(7, 0);
        b.iter(|| {
            let r = 1 + rng.bounded_usize(10);
            black_box(path_sample(&cg, 0, 1, r, &mut rng))
        })
    });
    group.finish();
}

fn bench_algorithm2(c: &mut Criterion) {
    let g = chung_lu(5_000, 75_000, 2.5, 2);
    let mut group = c.benchmark_group("algorithm2_full_run");
    group.sample_size(10);

    for downsample in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("downsample", downsample),
            &downsample,
            |b, &ds| {
                let cfg = SamplerConfig {
                    window: 10,
                    samples: 750_000, // M = 1·T·m
                    downsample: ds,
                    c_factor: None,
                    seed: 3,
                    ..Default::default()
                };
                b.iter(|| black_box(build_sparsifier(&g, &cfg)))
            },
        );
    }
    group.finish();
}

fn bench_aggregation_paths(c: &mut Criterion) {
    // Global table vs vertex-range sharding, same sample stream. The
    // sharded drain yields sorted entries for free, so the fair comparison
    // charges the global path the packed-key sort `from_coo` runs next.
    let g = chung_lu(5_000, 75_000, 2.5, 4);
    let cfg = SamplerConfig { window: 10, samples: 750_000, seed: 5, ..Default::default() };
    let mut group = c.benchmark_group("aggregation_path");
    group.sample_size(10);

    group.bench_function("global_table", |b| {
        b.iter(|| {
            let (mut coo, stats) = build_sparsifier(&g, &cfg).unwrap();
            coo.sort_unstable_by_key(|&(u, v, _)| ((u as u64) << 32) | v as u64);
            black_box((coo, stats))
        })
    });
    for shards in [8usize, 64] {
        group.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |b, &s| {
            b.iter(|| {
                let (table, stats) = build_sharded_sparsifier(&g, &cfg, s).unwrap();
                black_box((table.into_sorted_runs(), stats))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_path_sample, bench_algorithm2, bench_aggregation_paths);
criterion_main!(benches);
