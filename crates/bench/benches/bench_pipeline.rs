//! End-to-end pipeline benchmarks: the three LightNE stages on an
//! OAG-like workload, plus spectral propagation in isolation and the
//! ProNE+/NetSMF baselines for the Table 5 comparison at micro scale.

use criterion::{criterion_group, criterion_main, Criterion};
use lightne_baselines::{NetSmf, NetSmfConfig, ProNe, ProNeConfig};
use lightne_core::{spectral_propagation, LightNe, LightNeConfig, PropagationConfig};
use lightne_gen::profiles::Profile;
use lightne_linalg::DenseMatrix;
use std::hint::black_box;

fn bench_systems(c: &mut Criterion) {
    let data = Profile::Oag.generate(0.00003, 11);
    let g = data.graph;
    let mut group = c.benchmark_group("end_to_end_oag_like");
    group.sample_size(10);

    group.bench_function("lightne_small_0.1Tm", |b| {
        let pipe = LightNe::new(LightNeConfig {
            dim: 32,
            window: 10,
            sample_ratio: 0.1,
            ..Default::default()
        });
        b.iter(|| black_box(pipe.embed(&g)))
    });
    group.bench_function("lightne_2Tm", |b| {
        let pipe = LightNe::new(LightNeConfig {
            dim: 32,
            window: 10,
            sample_ratio: 2.0,
            ..Default::default()
        });
        b.iter(|| black_box(pipe.embed(&g)))
    });
    group.bench_function("lightne_2Tm_global_table", |b| {
        let pipe = LightNe::new(LightNeConfig {
            dim: 32,
            window: 10,
            sample_ratio: 2.0,
            global_table: true,
            ..Default::default()
        });
        b.iter(|| black_box(pipe.embed(&g)))
    });
    group.bench_function("netsmf_2Tm", |b| {
        let sys = NetSmf::new(NetSmfConfig {
            dim: 32,
            window: 10,
            sample_ratio: 2.0,
            ..Default::default()
        });
        b.iter(|| black_box(sys.embed(&g)))
    });
    group.bench_function("prone_plus", |b| {
        let sys = ProNe::new(ProNeConfig { dim: 32, ..Default::default() });
        b.iter(|| black_box(sys.embed(&g)))
    });
    group.finish();
}

fn bench_propagation(c: &mut Criterion) {
    let data = Profile::Oag.generate(0.0001, 12);
    let g = data.graph;
    let x = DenseMatrix::gaussian(g.num_vertices(), 32, 13);
    let mut group = c.benchmark_group("spectral_propagation");
    group.sample_size(10);
    for order in [5usize, 10] {
        group.bench_function(format!("order_{order}"), |b| {
            let cfg = PropagationConfig { order, ..Default::default() };
            b.iter(|| black_box(spectral_propagation(&g, &x, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_systems, bench_propagation);
criterion_main!(benches);
