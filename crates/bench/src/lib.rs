//! Benchmark harness for the LightNE reproduction.
//!
//! One binary per table/figure of the paper's evaluation (Section 5) lives
//! in `src/bin/`; Criterion micro-benchmarks live in `benches/`. This
//! library hosts the shared plumbing: argument parsing, run timing and
//! table rendering.
//!
//! Every binary accepts `--scale <f>` (vertex-count multiplier applied to
//! the paper dataset profiles; defaults are laptop-sized), `--seed <n>`
//! and `--dim <d>`, so the same harness reproduces shapes at any size the
//! host machine affords.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod harness {
    //! Shared experiment plumbing.

    use std::time::{Duration, Instant};

    /// Common command-line arguments of every experiment binary.
    #[derive(Debug, Clone, Copy)]
    pub struct Args {
        /// Vertex-count multiplier applied to dataset profiles.
        pub scale: f64,
        /// Master RNG seed.
        pub seed: u64,
        /// Embedding dimension.
        pub dim: usize,
        /// Regression gate: fail the process if a run's peak heap bytes
        /// (per `RunStats`) exceed this bound. `None` = report only.
        pub check_peak_bytes: Option<usize>,
    }

    impl Args {
        /// Parses `--scale`, `--seed`, `--dim` and `--check-peak-bytes`
        /// from `std::env::args`, with the given defaults.
        pub fn parse(default_scale: f64, default_dim: usize) -> Self {
            let mut out =
                Self { scale: default_scale, seed: 42, dim: default_dim, check_peak_bytes: None };
            let argv: Vec<String> = std::env::args().collect();
            let mut i = 1;
            while i < argv.len() {
                let key = argv[i].as_str();
                // xtask:panic-ok(bench CLI: aborting with a message on bad argv is the intended interface of a dev harness)
                let val = argv.get(i + 1).unwrap_or_else(|| panic!("{key} needs a value"));
                match key {
                    // xtask:panic-ok(bench CLI abort on malformed flag value)
                    "--scale" => out.scale = val.parse().expect("bad --scale"),
                    "--seed" => out.seed = val.parse().expect("bad --seed"),
                    "--dim" => out.dim = val.parse().expect("bad --dim"),
                    "--check-peak-bytes" => {
                        // xtask:panic-ok(bench CLI abort on malformed flag value)
                        out.check_peak_bytes = Some(val.parse().expect("bad --check-peak-bytes"));
                    }
                    // xtask:panic-ok(bench CLI abort on unknown flag)
                    other => panic!("unknown argument {other}"),
                }
                i += 2;
            }
            out
        }

        /// Enforces the `--check-peak-bytes` gate against a measured peak:
        /// prints the verdict and exits non-zero on regression. A no-op
        /// when the flag was not passed.
        pub fn enforce_peak_bytes(&self, peak: usize) {
            let Some(limit) = self.check_peak_bytes else { return };
            if peak > limit {
                eprintln!("MEMORY REGRESSION: peak heap {peak} bytes exceeds budget {limit} bytes");
                std::process::exit(1);
            }
            println!("peak heap {peak} bytes within budget {limit} bytes");
        }
    }

    /// Times a closure, returning its result and the elapsed wall-clock.
    pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
        let start = Instant::now();
        let out = f();
        (out, start.elapsed())
    }

    /// Prints a section header.
    pub fn header(title: &str) {
        println!("\n=== {title} ===");
    }

    /// Formats a duration like the paper ("5.83 min", "1.53 h").
    pub fn fmt_time(d: Duration) -> String {
        lightne_utils::timer::humanize(d)
    }

    /// Formats a dollar amount.
    pub fn fmt_cost(dollars: f64) -> String {
        format!("${dollars:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::harness::*;

    #[test]
    fn timed_measures() {
        let (v, d) = timed(|| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            7
        });
        assert_eq!(v, 7);
        assert!(d >= std::time::Duration::from_millis(5));
    }

    #[test]
    fn format_helpers() {
        assert!(fmt_time(std::time::Duration::from_secs(90)).contains('s'));
        assert_eq!(fmt_cost(1.5), "$1.5000");
    }
}
