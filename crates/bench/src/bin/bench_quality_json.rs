//! Embedding-quality benchmark: the scenario matrix of
//! `lightne_eval::scenario` — every generator profile × both sparsifier
//! probability schemes × classification / link prediction / structure
//! preservation — serialized for the quality regression gate.
//!
//! Prints one flat JSON object — one key per line, so `awk`/`grep` can
//! parse it without a JSON library — to stdout; progress goes to stderr.
//! `scripts/run_quality_bench.sh` redirects stdout into
//! `results/BENCH_quality.json`, and
//! `scripts/check_quality_regression.sh` gates changes against the
//! committed copy.
//!
//! Each scenario's *primary* metric also gets a `floor_` key (measured
//! value minus a statistical margin); the check script compares a fresh
//! report's measured values against the committed floors, so quality can
//! only ratchet within the margin, never silently collapse.
//!
//! Environment knobs: `TARGET_N` rescales every profile to roughly that
//! many vertices (default 4000); `PROFILES` restricts the sweep to a
//! comma-separated subset (CI smoke runs use the two smallest profiles).

use lightne_bench::harness::Args;
use lightne_eval::scenario::{psne_wins, run_profile, MatrixConfig, Task};
use lightne_gen::profiles::Profile;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Lowercases and strips non-alphanumerics, so "Hyperlink-PLD" and
/// "hyperlinkpld" compare (and key) identically.
fn slug(name: &str) -> String {
    name.chars().filter(char::is_ascii_alphanumeric).map(|c| c.to_ascii_lowercase()).collect()
}

/// Statistical margin under the primary metric of each task: the floor
/// committed with a measurement is `measured - margin`. Micro-F1 is on
/// the 0-100 scale; the AUCs are on 0-1.
fn floor_margin(task: Task) -> f64 {
    match task {
        Task::Classify => 6.0,
        Task::LinkPred => 0.05,
        Task::Structure => 0.10,
    }
}

fn main() {
    let args = Args::parse(1.0, 32);
    let cfg = MatrixConfig {
        target_n: env_usize("TARGET_N", 4_000),
        dim: args.dim,
        seed: args.seed,
        ..Default::default()
    };
    let wanted: Option<Vec<String>> = std::env::var("PROFILES")
        .ok()
        .map(|s| s.split(',').map(slug).filter(|t| !t.is_empty()).collect());
    let profiles: Vec<Profile> = Profile::ALL
        .into_iter()
        .filter(|p| wanted.as_ref().is_none_or(|w| w.contains(&slug(p.name()))))
        .collect();
    assert!(!profiles.is_empty(), "PROFILES matched no profile");

    let mut lines: Vec<String> = Vec::new();
    let mut put = |key: &str, val: String| lines.push(format!("  \"{key}\": {val}"));
    put("target_n", cfg.target_n.to_string());
    put("dim", cfg.dim.to_string());
    put("window", cfg.window.to_string());
    put("sample_ratio", cfg.sample_ratio.to_string());
    put("train_ratio", cfg.train_ratio.to_string());
    put("holdout", cfg.holdout.to_string());
    put("negatives", cfg.negatives.to_string());
    put("pairs", cfg.pairs.to_string());
    put("seed", cfg.seed.to_string());
    put("full_matrix", u32::from(profiles.len() == Profile::ALL.len()).to_string());

    let mut results = Vec::new();
    for &profile in &profiles {
        eprintln!("profile {} ...", profile.name());
        let rs = run_profile(profile, &cfg);
        for r in &rs {
            eprintln!("  {}/{}/{}: {:.4}", r.profile, r.task.name(), r.scheme.name(), r.primary);
        }
        results.extend(rs);
    }

    for r in &results {
        let base = format!("{}_{}_{}", slug(r.profile), r.task.name(), r.scheme.name());
        for &(metric, value) in &r.metrics {
            put(&format!("{base}_{metric}"), format!("{value:.4}"));
        }
        let floor = (r.primary - floor_margin(r.task)).max(0.0);
        let primary_name = r.metrics.first().expect("every task reports metrics").0;
        put(&format!("floor_{base}_{primary_name}"), format!("{floor:.4}"));
    }

    put("num_scenarios", results.len().to_string());
    put("psne_win_scenarios", psne_wins(&results).to_string());

    println!("{{\n{}\n}}", lines.join(",\n"));
}
