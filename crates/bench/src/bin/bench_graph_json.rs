//! Graph-format benchmark: v2 containers (per codec) against the v1
//! parallel-byte format — compression ratio (bits/edge) and decode
//! throughput, sequential and random.
//!
//! Prints one flat JSON object — one key per line, so `awk`/`grep` can
//! parse it without a JSON library — to stdout; progress goes to stderr.
//! `scripts/run_graph_bench.sh` redirects stdout into
//! `results/BENCH_graph.json`, and `scripts/check_graph_regression.sh`
//! gates changes against the committed copy.
//!
//! The graph is the largest classification profile (Friendster) scaled
//! to the host; `--scale` / `--seed` come from the shared harness, and
//! `PROFILE` / `RAND_PROBES` environment knobs override the dataset and
//! the random-access probe count for CI smoke runs.

use lightne_bench::harness::{timed, Args};
use lightne_gen::profiles::Profile;
use lightne_graph::{Codec, CompressedGraph, Graph, GraphAccess, V2Graph};
use lightne_utils::mem::MemUsage;
use lightne_utils::rng::XorShiftStream;
use std::hint::black_box;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Sequential decode: full adjacency scan through the [`GraphAccess`]
/// interface (the same dynamic-dispatch cost for every format), in
/// million arcs per second. Best of `reps` (noise on a shared machine
/// only ever adds time).
fn seq_medges_per_sec(g: &dyn GraphAccess, reps: usize) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let (acc, d) = timed(|| {
            let mut acc = 0u64;
            for v in 0..g.num_vertices() as u32 {
                g.for_each_neighbor(v, &mut |u| acc = acc.wrapping_add(u as u64));
            }
            acc
        });
        black_box(acc);
        best = best.min(d.as_secs_f64());
    }
    g.num_arcs() as f64 / best / 1e6
}

/// Random access: `probes` uniform `ith_neighbor` lookups, in million
/// accesses per second. Best of `reps`.
fn rand_maccess_per_sec(g: &dyn GraphAccess, probes: usize, seed: u64, reps: usize) -> f64 {
    let n = g.num_vertices();
    let mut best = f64::MAX;
    for _ in 0..reps {
        let mut rng = XorShiftStream::new(seed, 1);
        let (acc, d) = timed(|| {
            let mut acc = 0u64;
            for _ in 0..probes {
                let v = rng.bounded_usize(n) as u32;
                let deg = g.degree(v);
                if deg > 0 {
                    acc = acc.wrapping_add(g.ith_neighbor(v, rng.bounded_usize(deg)) as u64);
                }
            }
            acc
        });
        black_box(acc);
        best = best.min(d.as_secs_f64());
    }
    probes as f64 / best / 1e6
}

fn main() {
    let args = Args::parse(0.001, 32);
    let profile_name = std::env::var("PROFILE").unwrap_or_else(|_| "friendster".to_string());
    let probes = env_usize("RAND_PROBES", 1_000_000);
    let reps = env_usize("REPS", 5).max(1);
    let profile = Profile::ALL
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(&profile_name))
        .unwrap_or_else(|| panic!("unknown PROFILE {profile_name:?}"));

    eprintln!("generating {} at scale {} ...", profile.name(), args.scale);
    let g: Graph = profile.generate(args.scale, args.seed).graph;
    let (n, arcs) = (g.num_vertices(), g.num_arcs());
    eprintln!("n={n} arcs={arcs}");

    let mut lines: Vec<String> = Vec::new();
    let mut put = |key: &str, val: String| lines.push(format!("  \"{key}\": {val}"));
    put("profile", format!("\"{}\"", profile.name()));
    put("scale", args.scale.to_string());
    put("seed", args.seed.to_string());
    put("n", n.to_string());
    put("arcs", arcs.to_string());
    put("rand_probes", probes.to_string());

    // --- v1 baseline: parallel-byte compressed, block size 64.
    eprintln!("v1 encode ...");
    let v1 = CompressedGraph::from_graph(&g);
    let v1_bytes = v1.heap_bytes();
    let v1_bpe = v1_bytes as f64 * 8.0 / arcs as f64;
    let v1_seq = seq_medges_per_sec(&v1, reps);
    let v1_rand = rand_maccess_per_sec(&v1, probes, args.seed, reps);
    eprintln!("v1: {v1_bpe:.3} bits/edge, seq {v1_seq:.1} Marcs/s, rand {v1_rand:.2} M/s");
    put("v1_bytes", v1_bytes.to_string());
    put("v1_bits_per_edge", format!("{v1_bpe:.4}"));
    put("v1_seq_medges_per_sec", format!("{v1_seq:.3}"));
    put("v1_rand_maccess_per_sec", format!("{v1_rand:.4}"));

    // --- v2 per codec: container bytes (EF offsets + arena + header).
    let mut best: Option<(Codec, usize, f64, f64)> = None;
    for codec in Codec::SWEEP {
        let name = codec.name();
        eprintln!("v2/{name} encode ...");
        let v2 = V2Graph::from_graph(&g, codec);
        let bytes = v2.container_bytes();
        let bpe = bytes as f64 * 8.0 / arcs as f64;
        let seq = seq_medges_per_sec(&v2, reps);
        let rand = rand_maccess_per_sec(&v2, probes, args.seed, reps);
        eprintln!("v2/{name}: {bpe:.3} bits/edge, seq {seq:.1} Marcs/s, rand {rand:.2} M/s");
        put(&format!("v2_{name}_bytes"), bytes.to_string());
        put(&format!("v2_{name}_bits_per_edge"), format!("{bpe:.4}"));
        put(&format!("v2_{name}_seq_medges_per_sec"), format!("{seq:.3}"));
        put(&format!("v2_{name}_rand_maccess_per_sec"), format!("{rand:.4}"));
        if best.as_ref().is_none_or(|(_, b, _, _)| bytes < *b) {
            best = Some((codec, bytes, seq, rand));
        }
    }

    // --- Summary the regression gate reads: smallest codec vs v1.
    let (codec, bytes, seq, rand) = best.expect("codec sweep is non-empty");
    let best_bpe = bytes as f64 * 8.0 / arcs as f64;
    put("v2_best_codec", format!("\"{}\"", codec.name()));
    put("v2_best_bits_per_edge", format!("{best_bpe:.4}"));
    put("bits_ratio_best", format!("{:.4}", best_bpe / v1_bpe));
    put("seq_slowdown_best", format!("{:.4}", v1_seq / seq));
    put("rand_slowdown_best", format!("{:.4}", v1_rand / rand));

    println!("{{\n{}\n}}", lines.join(",\n"));
}
