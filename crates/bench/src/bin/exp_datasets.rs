//! Table 3 (dataset statistics) and Table 2 (hardware/pricing).
//!
//! Prints the synthetic analogue generated for each of the paper's nine
//! datasets next to the original's statistics, plus the Azure pricing
//! table the cost model uses.
//!
//! ```text
//! cargo run --release -p lightne-bench --bin exp_datasets -- --scale 0.001
//! ```

use lightne_bench::harness::{header, Args};
use lightne_eval::cost::CostModel;
use lightne_gen::profiles::Profile;

fn main() {
    let args = Args::parse(0.001, 32);

    header("Table 2: hardware configurations and Azure pricing");
    print!("{}", CostModel::table2());

    header(&format!("Table 3: dataset statistics (synthetic analogues at scale {})", args.scale));
    for p in Profile::ALL {
        // The very large profiles get an extra 10x reduction so the
        // default invocation stays fast on small machines.
        let scale = match p {
            Profile::ClueWebSym | Profile::Hyperlink2014Sym => args.scale / 10.0,
            _ => args.scale,
        };
        let d = p.generate(scale, args.seed);
        println!("{}", d.stats_row());
        if let Some(labels) = &d.labels {
            println!(
                "{:<18} classes={} mean labels/vertex={:.2}",
                "",
                labels.num_labels(),
                labels.mean_labels()
            );
        }
    }
}
