//! Figure 3 — HITS@K vs number of samples on the very large graphs.
//!
//! On ClueWeb-Sym and Hyperlink2014-Sym the paper trains LightNE with
//! `T = 2`, `d = 32`, *no* spectral propagation (memory), holds out
//! 0.00001% of edges, and sweeps the sample count up to the 1.5 TB
//! ceiling; HITS@{1,10,50} rise monotonically with samples. We reproduce
//! the sweep on R-MAT analogues (holdout fraction scaled up so there are
//! enough positives to rank at laptop size).

use lightne_bench::harness::{fmt_time, header, timed, Args};
use lightne_core::{LightNe, LightNeConfig};
use lightne_eval::linkpred::{rank_held_out, split_edges};
use lightne_gen::profiles::Profile;

fn main() {
    let args = Args::parse(0.00002, 32);

    for profile in [Profile::ClueWebSym, Profile::Hyperlink2014Sym] {
        let data = profile.generate(args.scale, args.seed);
        header(&format!("Figure 3: {} (T=2, d={}, no propagation)", data.name, args.dim));
        println!("{}", data.stats_row());
        let (train, held) = split_edges(&data.graph, 0.002, args.seed + 1);
        println!("held-out positives: {}", held.len());

        println!(
            "{:>10} {:>12} {:>9} {:>9} {:>9} {:>10}",
            "M/Tm", "samples", "HITS@1", "HITS@10", "HITS@50", "time"
        );
        for ratio in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let (out, t) = timed(|| {
                LightNe::new(LightNeConfig {
                    dim: args.dim,
                    window: 2,
                    sample_ratio: ratio,
                    propagation: None,
                    ..Default::default()
                })
                .embed(&train)
            });
            let m = rank_held_out(&out.embedding, &held, 100, &[1, 10, 50], args.seed + 2);
            println!(
                "{:>10} {:>12} {:>9.2} {:>9.2} {:>9.2} {:>10}",
                ratio,
                out.sampler.trials,
                100.0 * m.hits_at(1).unwrap(),
                100.0 * m.hits_at(10).unwrap(),
                100.0 * m.hits_at(50).unwrap(),
                fmt_time(t)
            );
        }
        println!("paper shape: all three HITS@K curves rise with the sample count");
    }
}
