//! Section 5.2.4 — ablation on affordable sample size.
//!
//! The paper's accounting on OAG: NetSMF (per-thread buffers, no
//! downsampling) affords `8Tm` samples in 1.7 TB; switching to the shared
//! hash table raises the ceiling by 56.3% (to `12.5Tm` in 1.5 TB), and
//! downsampling adds another 60% (to `20Tm`). The mechanism: buffer
//! memory grows linearly with the sample count forever, while the hash
//! table's grows only until the distinct `T`-hop pairs saturate — so the
//! gap opens in the high-sample regime the paper operates in. We measure
//! both laws, report the affordable sample count under a fixed budget,
//! and quantify the (small) accuracy cost of downsampling at fixed `M`.

use lightne_bench::harness::{header, Args};
use lightne_core::{LightNe, LightNeConfig};
use lightne_eval::classify::evaluate_node_classification;
use lightne_gen::profiles::Profile;
use lightne_hash::{ConcurrentEdgeTable, ThreadLocalAggregator};
use lightne_sparsifier::construct::{sample_into, SamplerConfig};
use lightne_utils::mem::human_bytes;

fn measure(
    g: &lightne_graph::Graph,
    window: usize,
    samples: u64,
    downsample: bool,
    buffers: bool,
    seed: u64,
) -> usize {
    let cfg = SamplerConfig { window, samples, downsample, seed, ..Default::default() };
    if buffers {
        let agg = ThreadLocalAggregator::new();
        sample_into(g, &cfg, &agg).expect("sampling failed").aggregator_bytes
    } else {
        let agg = ConcurrentEdgeTable::with_expected(1024);
        sample_into(g, &cfg, &agg).expect("sampling failed").aggregator_bytes
    }
}

fn main() {
    // Smaller, denser analogue: the contrast needs samples ≫ distinct
    // T-hop pairs, which the paper's billion-edge graphs satisfy
    // naturally and a scaled-down graph only reaches at high ratios.
    let args = Args::parse(0.000035, 32);
    let window = 5;
    let data = Profile::Oag.generate(args.scale, args.seed);
    let g = &data.graph;
    let labels = data.labels.as_ref().unwrap();
    println!("{}", data.stats_row());
    let m = g.num_edges() as f64;
    let tm = (window as f64 * m) as u64;

    header("aggregation memory vs sample count (the §5.2.4 mechanism)");
    println!(
        "{:<10} {:>22} {:>22} {:>22}",
        "M/Tm", "buffers,no-ds (NetSMF)", "table,no-ds", "table+ds (LightNE)"
    );
    for ratio in [4u64, 16, 64, 128] {
        let samples = ratio * tm;
        println!(
            "{:<10} {:>22} {:>22} {:>22}",
            ratio,
            human_bytes(measure(g, window, samples, false, true, args.seed)),
            human_bytes(measure(g, window, samples, false, false, args.seed)),
            human_bytes(measure(g, window, samples, true, false, args.seed)),
        );
    }

    header("affordable samples under a fixed memory budget");
    let budget = measure(g, window, 16 * tm, false, true, args.seed);
    println!("budget = NetSMF buffer memory at 16Tm = {}", human_bytes(budget));
    for (name, downsample, buffers) in [
        ("NetSMF (buffers)", false, true),
        ("+ shared hash table", false, false),
        ("+ downsampling", true, false),
    ] {
        let mut affordable = 0u64;
        let mut ratio = 4u64;
        while ratio <= 1024 {
            if measure(g, window, ratio * tm, downsample, buffers, args.seed) > budget {
                break;
            }
            affordable = ratio;
            ratio *= 2;
        }
        let label = if ratio > 1024 { format!("> {affordable}") } else { format!("{affordable}") };
        println!("{:<22} affords {:>6}Tm samples", name, label);
    }

    header("downsampling accuracy effect at fixed M (should be small)");
    let mut peak_heap = 0usize;
    for downsample in [false, true] {
        let out = LightNe::new(LightNeConfig {
            dim: args.dim,
            window,
            sample_ratio: 2.0,
            downsample,
            ..Default::default()
        })
        .embed(g);
        let f1 = evaluate_node_classification(&out.embedding, labels, 0.1, args.seed + 1);
        println!(
            "downsample={:<5}  micro {:>6.2}  macro {:>6.2}  kept {:>10}  distinct {:>9}",
            downsample, f1.micro, f1.macro_, out.sampler.kept, out.sampler.distinct_entries
        );
        peak_heap = peak_heap.max(out.stats.stages.iter().map(|s| s.heap_bytes).max().unwrap_or(0));
    }

    header("peak stage heap (the --check-peak-bytes regression gate)");
    println!("peak stage heap: {} ({peak_heap} bytes)", human_bytes(peak_heap));
    args.enforce_peak_bytes(peak_heap);
}
