//! Extension experiments (beyond the paper's evaluation):
//!
//! 1. **Spectral gaps of the workload profiles** — the Theorem 3.2
//!    precondition for degree-based downsampling, measured per dataset
//!    (the paper cites BlogCatalog's gap ≈ 0.43 as justification).
//! 2. **Clustering probe** — k-means/NMI of LightNE vs ProNE+ embeddings
//!    on community workloads.
//! 3. **Dynamic embedding** — incremental refresh vs full rebuild as
//!    edges stream in (the paper's stated future work).

use lightne_baselines::{ProNe, ProNeConfig};
use lightne_bench::harness::{header, timed, Args};
use lightne_core::spectral::estimate_spectral_gap;
use lightne_core::{DynamicLightNe, LightNe, LightNeConfig};
use lightne_eval::classify::evaluate_node_classification;
use lightne_eval::clustering::{kmeans, nmi};
use lightne_gen::profiles::Profile;

fn main() {
    let args = Args::parse(0.0001, 32);

    header("spectral gaps of the dataset profiles (Theorem 3.2 precondition)");
    println!("{:<18} {:>9} {:>9}", "profile", "lambda2", "gap");
    for p in [
        Profile::BlogCatalog,
        Profile::YouTube,
        Profile::LiveJournal,
        Profile::Oag,
        Profile::ClueWebSym,
    ] {
        let scale = match p {
            Profile::BlogCatalog => 0.3,
            Profile::ClueWebSym => args.scale / 10.0,
            _ => args.scale * 20.0,
        };
        let d = p.generate(scale, args.seed);
        let s = estimate_spectral_gap(&d.graph, 150, args.seed);
        println!("{:<18} {:>9.3} {:>9.3}", d.name, s.lambda2, s.gap);
    }
    println!("(paper: BlogCatalog ≈ 0.43; disconnected graphs report ~0)");

    header("clustering probe: k-means NMI on OAG-like communities");
    let data = Profile::Oag.generate(args.scale, args.seed);
    let labels = data.labels.as_ref().unwrap();
    let truth: Vec<u32> = (0..data.graph.num_vertices()).map(|v| labels.of(v)[0] as u32).collect();
    let k = labels.num_labels();
    for (name, emb) in [
        (
            "LightNE (2Tm)",
            LightNe::new(LightNeConfig {
                dim: args.dim,
                window: 10,
                sample_ratio: 2.0,
                ..Default::default()
            })
            .embed(&data.graph)
            .embedding,
        ),
        (
            "ProNE+",
            ProNe::new(ProNeConfig { dim: args.dim, ..Default::default() })
                .embed(&data.graph)
                .embedding,
        ),
    ] {
        let clusters = kmeans(&emb, k, 60, args.seed + 1);
        println!("{:<14} NMI {:.3}", name, nmi(&clusters.assignment, &truth));
    }

    header("dynamic embedding: incremental refresh vs full rebuild");
    let data = Profile::Oag.generate(args.scale, args.seed + 2);
    let labels = data.labels.as_ref().unwrap();
    let mut edges = Vec::new();
    for u in 0..data.graph.num_vertices() as u32 {
        for &v in data.graph.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    let cfg = LightNeConfig { dim: args.dim, window: 5, sample_ratio: 2.0, ..Default::default() };
    let mut dyn_ne = DynamicLightNe::new(data.graph.num_vertices(), cfg);
    let bootstrap = edges.len() * 7 / 10;
    dyn_ne.insert_edges(&edges[..bootstrap]);

    println!(
        "{:>6} {:>9} {:>11} {:>9} {:>11} {:>9}",
        "batch", "edges", "incr time", "incr F1", "full time", "full F1"
    );
    for (i, batch) in edges[bootstrap..].chunks(edges.len() / 10).enumerate() {
        let (stats, t_ins) = timed(|| dyn_ne.insert_edges(batch));
        let (inc, t_inc) = timed(|| dyn_ne.reembed());
        let (full, t_full) = timed(|| dyn_ne.full_rebuild());
        let f_inc = evaluate_node_classification(&inc.embedding, labels, 0.1, 9);
        let f_full = evaluate_node_classification(&full.embedding, labels, 0.1, 9);
        println!(
            "{:>6} {:>9} {:>10.2}s {:>9.2} {:>10.2}s {:>9.2}   (+{} samples in {:.2}s)",
            i + 1,
            dyn_ne.num_edges(),
            t_inc.as_secs_f64(),
            f_inc.micro,
            t_full.as_secs_f64(),
            f_full.micro,
            stats.trials,
            t_ins.as_secs_f64(),
        );
    }
    println!("\nincremental refresh re-samples only new edges; F1 should track the rebuild.");
}
