//! Figure 4 — predictive performance on the small graphs.
//!
//! BlogCatalog and YouTube, Micro/Macro-F1 as a function of the training
//! ratio, six methods: GraphVite and PBG (skip-gram SGD stand-ins at two
//! operating points), NetSMF, ProNE+, NRP (no-log factorization) and
//! LightNE. Paper shape: LightNE at or near the top everywhere, ProNE+
//! consistently below LightNE, NRP below the log-based factorizations.
//!
//! Profiles are scaled to ~1.5–2k vertices so the exact-NetMF-class
//! baselines remain tractable on one core; BlogCatalog's ratios (10–90%)
//! and YouTube's (1–10%) follow the paper's two panels.

use lightne_baselines::{
    nrp_embed, DeepWalk, DeepWalkConfig, NetSmf, NetSmfConfig, NrpConfig, ProNe, ProNeConfig,
};
use lightne_bench::harness::{header, Args};
use lightne_core::{LightNe, LightNeConfig};
use lightne_eval::classify::evaluate_node_classification;
use lightne_gen::profiles::Profile;
use lightne_linalg::DenseMatrix;

fn main() {
    let args = Args::parse(0.15, 32);

    let panels: [(Profile, f64, Vec<f64>); 2] = [
        (Profile::BlogCatalog, args.scale, vec![0.1, 0.3, 0.5, 0.7, 0.9]),
        (Profile::YouTube, args.scale / 100.0, vec![0.02, 0.04, 0.06, 0.08, 0.10]),
    ];

    for (profile, scale, ratios) in panels {
        let data = profile.generate(scale, args.seed);
        let labels = data.labels.as_ref().unwrap();
        header(&format!("Figure 4: {} ({} vertices)", data.name, data.graph.num_vertices()));

        let window = 10;
        let methods: Vec<(&str, DenseMatrix)> = vec![
            (
                "GraphVite*",
                DeepWalk::new(DeepWalkConfig {
                    dim: args.dim,
                    walks_per_vertex: 10,
                    walk_length: 40,
                    window: 5,
                    negatives: 5,
                    epochs: 2,
                    lr: 0.05,
                    seed: args.seed,
                })
                .embed(&data.graph)
                .embedding,
            ),
            (
                "PBG*",
                // PBG's LiveJournal config is LINE-flavored: window 1.
                DeepWalk::new(DeepWalkConfig {
                    dim: args.dim,
                    walks_per_vertex: 10,
                    walk_length: 40,
                    window: 1,
                    negatives: 5,
                    epochs: 2,
                    lr: 0.05,
                    seed: args.seed,
                })
                .embed(&data.graph)
                .embedding,
            ),
            (
                "NetSMF",
                NetSmf::new(NetSmfConfig {
                    dim: args.dim,
                    window,
                    sample_ratio: 4.0,
                    ..Default::default()
                })
                .embed(&data.graph)
                .embedding,
            ),
            (
                "ProNE+",
                ProNe::new(ProNeConfig { dim: args.dim, ..Default::default() })
                    .embed(&data.graph)
                    .embedding,
            ),
            (
                "NRP",
                nrp_embed(
                    &data.graph,
                    &NrpConfig { dim: args.dim, window, sample_ratio: 4.0, seed: args.seed },
                ),
            ),
            (
                "LightNE",
                LightNe::new(LightNeConfig {
                    dim: args.dim,
                    window,
                    sample_ratio: 10.0,
                    ..Default::default()
                })
                .embed(&data.graph)
                .embedding,
            ),
        ];

        for metric in ["micro", "macro"] {
            println!("\n{metric}-F1 (%)");
            print!("{:<12}", "method");
            for r in &ratios {
                print!(" {:>7.0}%", 100.0 * r);
            }
            println!();
            for (name, emb) in &methods {
                print!("{name:<12}");
                for &r in &ratios {
                    let s = evaluate_node_classification(emb, labels, r, args.seed + 9);
                    let v = if metric == "micro" { s.micro } else { s.macro_ };
                    print!(" {v:>8.2}");
                }
                println!();
            }
        }
        println!(
            "\npaper shape: LightNE top-tier on both metrics; ProNE+ < LightNE;\n\
             NRP below log-based methods."
        );
    }
}
