//! Figure 2 — the efficiency-effectiveness trade-off curve of LightNE.
//!
//! The paper sweeps the sample count `M` from `0.1Tm` to `20Tm` on OAG and
//! plots runtime against Micro/Macro-F1 at two label ratios, showing
//! (a) a clean monotone trade-off and (b) that the curve Pareto-dominates
//! both ProNE+ and NetSMF. This binary prints the same series as CSV-ish
//! rows; baselines are included as reference points.

use lightne_baselines::{NetSmf, NetSmfConfig, ProNe, ProNeConfig};
use lightne_bench::harness::{header, timed, Args};
use lightne_core::{LightNe, LightNeConfig};
use lightne_eval::classify::evaluate_node_classification;
use lightne_gen::profiles::Profile;

fn main() {
    let args = Args::parse(0.0001, 32);
    let window = 10;
    let ratios = [0.01, 0.10]; // scaled analogues of the paper's two panels

    let data = Profile::Oag.generate(args.scale, args.seed);
    let labels = data.labels.as_ref().unwrap();
    println!("{}", data.stats_row());

    header("Figure 2: LightNE sample-ratio sweep (time vs F1)");
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "series", "time_s", "micro@1%", "macro@1%", "micro@10%", "macro@10%"
    );

    for ratio in [0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0] {
        let (out, t) = timed(|| {
            LightNe::new(LightNeConfig {
                dim: args.dim,
                window,
                sample_ratio: ratio,
                ..Default::default()
            })
            .embed(&data.graph)
        });
        let s: Vec<_> = ratios
            .iter()
            .map(|&r| evaluate_node_classification(&out.embedding, labels, r, args.seed + 1))
            .collect();
        println!(
            "{:<14} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            format!("LightNE M={ratio}Tm"),
            t.as_secs_f64(),
            s[0].micro,
            s[0].macro_,
            s[1].micro,
            s[1].macro_
        );
    }

    // Baseline reference points.
    let (p, t) = timed(|| {
        ProNe::new(ProNeConfig { dim: args.dim, ..Default::default() }).embed(&data.graph)
    });
    let s: Vec<_> = ratios
        .iter()
        .map(|&r| evaluate_node_classification(&p.embedding, labels, r, args.seed + 1))
        .collect();
    println!(
        "{:<14} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
        "ProNE+",
        t.as_secs_f64(),
        s[0].micro,
        s[0].macro_,
        s[1].micro,
        s[1].macro_
    );

    for ratio in [1.0, 4.0, 8.0] {
        let (nf, t) = timed(|| {
            NetSmf::new(NetSmfConfig {
                dim: args.dim,
                window,
                sample_ratio: ratio,
                ..Default::default()
            })
            .embed(&data.graph)
        });
        let s: Vec<_> = ratios
            .iter()
            .map(|&r| evaluate_node_classification(&nf.embedding, labels, r, args.seed + 1))
            .collect();
        println!(
            "{:<14} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            format!("NetSMF M={ratio}Tm"),
            t.as_secs_f64(),
            s[0].micro,
            s[0].macro_,
            s[1].micro,
            s[1].macro_
        );
    }

    println!(
        "\npaper shape: LightNE's curve should be Pareto-optimal — for any\n\
         baseline point there is a LightNE configuration both faster and better."
    );
}
