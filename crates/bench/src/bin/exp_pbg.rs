//! Section 5.2.1 — PyTorch-BigGraph vs LightNE on LiveJournal.
//!
//! Paper's table:
//!
//! ```text
//!           Time     Cost    MR    MRR   Hits@10
//! PBG       7.25 h   $21.95  4.25  0.87  0.93
//! LightNE   16 min   $2.76   2.13  0.91  0.98
//! ```
//!
//! Reproduction: a LiveJournal-like Chung–Lu graph, link prediction with
//! held-out edges ranked against 100 corrupted negatives (so MR is on the
//! same 1–101 scale class as the paper's). "PBG" is the skip-gram SGD
//! stand-in (see `lightne_baselines::deepwalk`); LightNE runs with the
//! paper's cross-validated `T = 5`.

use lightne_baselines::{DeepWalk, DeepWalkConfig};
use lightne_bench::harness::{fmt_cost, fmt_time, header, timed, Args};
use lightne_core::{LightNe, LightNeConfig};
use lightne_eval::cost::CostModel;
use lightne_eval::linkpred::{rank_held_out, split_edges};
use lightne_gen::profiles::Profile;

fn main() {
    let args = Args::parse(0.002, 64);

    header("Section 5.2.1: PBG vs LightNE on LiveJournal (link prediction)");
    let data = Profile::LiveJournal.generate(args.scale, args.seed);
    println!("{}", data.stats_row());

    let (train, held) = split_edges(&data.graph, 0.01, args.seed + 1);
    println!("training graph: m={}  held-out positives: {}", train.num_edges(), held.len());
    let negatives = 100;
    let hits = [1usize, 10];

    // --- PBG stand-in: skip-gram SGD ---
    let (pbg_emb, pbg_time) = timed(|| {
        DeepWalk::new(DeepWalkConfig {
            dim: args.dim,
            walks_per_vertex: 6,
            walk_length: 30,
            window: 5,
            negatives: 5,
            epochs: 1,
            lr: 0.05,
            seed: args.seed,
        })
        .embed(&train)
        .embedding
    });
    let pbg = rank_held_out(&pbg_emb, &held, negatives, &hits, args.seed + 2);

    // --- LightNE, T = 5 ---
    // Spectral propagation is tuned for classification; for dot-product
    // ranking the factorization embedding is the right output (the paper
    // itself skips propagation for its link-prediction-only runs, §5.3).
    let (ln_out, ln_time) = timed(|| {
        LightNe::new(LightNeConfig {
            dim: args.dim,
            window: 5,
            sample_ratio: 5.0,
            propagation: None,
            ..Default::default()
        })
        .embed(&train)
    });
    let ln = rank_held_out(&ln_out.embedding, &held, negatives, &hits, args.seed + 2);

    println!(
        "\n{:<10} {:>10} {:>10} {:>7} {:>6} {:>8}",
        "System", "Time", "Cost", "MR", "MRR", "Hits@10"
    );
    for (name, time, m) in [("PBG", pbg_time, &pbg), ("LightNE", ln_time, &ln)] {
        println!(
            "{:<10} {:>10} {:>10} {:>7.2} {:>6.3} {:>8.3}",
            name,
            fmt_time(time),
            fmt_cost(CostModel::cost(name, time)),
            m.mr,
            m.mrr,
            m.hits_at(10).unwrap()
        );
    }
    println!(
        "\npaper shape check: LightNE should win every metric and be ≥10x faster\n\
         measured speedup: {:.1}x",
        pbg_time.as_secs_f64() / ln_time.as_secs_f64()
    );
}
