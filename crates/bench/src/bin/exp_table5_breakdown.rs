//! Table 5 — the running-time distribution over pipeline stages.
//!
//! Paper's rows on OAG:
//!
//! ```text
//!                   sparsifier   rSVD      propagation
//! LightNE-Large     32.8 min     49.9 min  8.1 min
//! NetSMF (M=8Tm)    18 h         4 h       NA
//! LightNE-Small     1.4 min      10.5 min  8.2 min
//! ProNE+            NA           12.0 min  8.2 min
//! ```
//!
//! Shape targets: NetSMF's sparsifier stage dwarfs LightNE-Large's
//! (downsampling + shared hashing), and LightNE-Small's propagation time
//! matches ProNE+'s exactly (identical code path).
//!
//! All numbers come from the stage engine's [`RunStats`]: wall time per
//! stage, plus the sampler counters and peak heap bytes each stage
//! reported. The paper folds NetMF conversion into the sparsifier stage,
//! so the sparsifier column sums the engine's two stages.

use lightne_baselines::{NetSmf, NetSmfConfig, ProNe, ProNeConfig};
use lightne_bench::harness::{header, Args};
use lightne_core::{pipeline, LightNe, LightNeConfig, RunStats};
use lightne_gen::profiles::Profile;
use lightne_utils::timer::humanize;
use std::time::Duration;

/// Seconds attributed to the paper's "sparsifier" column: sparsifier
/// construction plus NetMF conversion (the engine times them separately).
fn sparsifier_secs(stats: &RunStats) -> Option<f64> {
    let secs: f64 = stats
        .stages
        .iter()
        .filter(|s| s.name.contains("sparsifier") || s.name.contains("netmf"))
        .map(|s| s.secs)
        .sum();
    stats.stages.iter().any(|s| s.name.contains("sparsifier")).then_some(secs)
}

fn stage_secs(stats: &RunStats, needle: &str) -> Option<f64> {
    stats.stages.iter().find(|s| s.name.contains(needle)).map(|s| s.secs)
}

fn row(name: &str, stats: &RunStats) {
    let fmt = |secs: Option<f64>| -> String {
        secs.map(|s| humanize(Duration::from_secs_f64(s))).unwrap_or_else(|| "NA".into())
    };
    println!(
        "{:<18} {:>14} {:>14} {:>14}",
        name,
        fmt(sparsifier_secs(stats)),
        fmt(stage_secs(stats, "svd")),
        fmt(stage_secs(stats, "propagation"))
    );
}

fn main() {
    let args = Args::parse(0.0001, 32);
    let window = 10;
    let data = Profile::Oag.generate(args.scale, args.seed);
    println!("{}", data.stats_row());

    header("Table 5: running time per stage");
    println!(
        "{:<18} {:>14} {:>14} {:>14}",
        "Method", "sparsifier", "randomized svd", "propagation"
    );

    let large = LightNe::new(LightNeConfig {
        dim: args.dim,
        window,
        sample_ratio: 20.0,
        ..Default::default()
    })
    .embed(&data.graph);
    row("LightNE-Large", &large.stats);

    let netsmf = NetSmf::new(NetSmfConfig {
        dim: args.dim,
        window,
        sample_ratio: 8.0,
        ..Default::default()
    })
    .embed(&data.graph);
    row("NetSMF (M=8Tm)", &netsmf.stats);

    let small = LightNe::new(LightNeConfig {
        dim: args.dim,
        window,
        sample_ratio: 0.1,
        ..Default::default()
    })
    .embed(&data.graph);
    row("LightNE-Small", &small.stats);

    let prone = ProNe::new(ProNeConfig { dim: args.dim, ..Default::default() }).embed(&data.graph);
    row("ProNE+", &prone.stats);

    let spars_large = sparsifier_secs(&large.stats).unwrap();
    let spars_netsmf = sparsifier_secs(&netsmf.stats).unwrap();
    println!(
        "\nshape checks:\n\
         - NetSMF sparsifier vs LightNE-Large sparsifier: {:.1}x slower (paper: 33x)\n\
         - LightNE-Small and ProNE+ propagation should match (same code)",
        spars_netsmf / spars_large.max(1e-9)
    );
    let nnz = |stats: &RunStats| -> u64 {
        stats
            .get(pipeline::STAGE_NETMF)
            .or_else(|| stats.get(pipeline::STAGE_RSVD))
            .and_then(|s| s.counter("nnz"))
            .unwrap_or(0)
    };
    println!(
        "- NetMF matrix nnz: LightNE-Small {} vs ProNE+ {} (paper: Small can be sparser than m={})",
        nnz(&small.stats),
        nnz(&prone.stats),
        data.graph.num_edges()
    );
    println!(
        "- sampler memory (peak aggregator bytes): LightNE-Large {} vs NetSMF {}",
        large.stats.get(pipeline::STAGE_SPARSIFIER).map_or(0, |s| s.heap_bytes),
        netsmf.stats.get(pipeline::STAGE_SPARSIFIER).map_or(0, |s| s.heap_bytes),
    );
    let gflops = |stats: &RunStats, stage: &str| -> String {
        stats
            .get(stage)
            .and_then(|s| s.gflops())
            .map(|g| format!("{g:.2}"))
            .unwrap_or_else(|| "NA".into())
    };
    println!(
        "- achieved GFLOP/s (LightNE-Small): rsvd {} propagation {}",
        gflops(&small.stats, pipeline::STAGE_RSVD),
        gflops(&small.stats, pipeline::STAGE_PROPAGATION),
    );
}
