//! Table 5 — the running-time distribution over pipeline stages.
//!
//! Paper's rows on OAG:
//!
//! ```text
//!                   sparsifier   rSVD      propagation
//! LightNE-Large     32.8 min     49.9 min  8.1 min
//! NetSMF (M=8Tm)    18 h         4 h       NA
//! LightNE-Small     1.4 min      10.5 min  8.2 min
//! ProNE+            NA           12.0 min  8.2 min
//! ```
//!
//! Shape targets: NetSMF's sparsifier stage dwarfs LightNE-Large's
//! (downsampling + shared hashing), and LightNE-Small's propagation time
//! matches ProNE+'s exactly (identical code path).

use lightne_baselines::{NetSmf, NetSmfConfig, ProNe, ProNeConfig};
use lightne_bench::harness::{header, Args};
use lightne_core::{pipeline, LightNe, LightNeConfig};
use lightne_gen::profiles::Profile;
use lightne_utils::timer::{humanize, StageTimer};

fn row(name: &str, t: &StageTimer) {
    let get = |stage: &str| -> String {
        t.stages()
            .iter()
            .find(|s| s.name.contains(stage))
            .map(|s| humanize(s.duration))
            .unwrap_or_else(|| "NA".into())
    };
    println!(
        "{:<18} {:>14} {:>14} {:>14}",
        name,
        get("sparsifier"),
        get("svd"),
        get("propagation")
    );
}

fn main() {
    let args = Args::parse(0.0001, 32);
    let window = 10;
    let data = Profile::Oag.generate(args.scale, args.seed);
    println!("{}", data.stats_row());

    header("Table 5: running time per stage");
    println!(
        "{:<18} {:>14} {:>14} {:>14}",
        "Method", "sparsifier", "randomized svd", "propagation"
    );

    let large = LightNe::new(LightNeConfig {
        dim: args.dim,
        window,
        sample_ratio: 20.0,
        ..Default::default()
    })
    .embed(&data.graph);
    row("LightNE-Large", &large.timings);

    let netsmf = NetSmf::new(NetSmfConfig {
        dim: args.dim,
        window,
        sample_ratio: 8.0,
        ..Default::default()
    })
    .embed(&data.graph);
    row("NetSMF (M=8Tm)", &netsmf.timings);

    let small = LightNe::new(LightNeConfig {
        dim: args.dim,
        window,
        sample_ratio: 0.1,
        ..Default::default()
    })
    .embed(&data.graph);
    row("LightNE-Small", &small.timings);

    let prone = ProNe::new(ProNeConfig { dim: args.dim, ..Default::default() }).embed(&data.graph);
    row("ProNE+", &prone.timings);

    let spars_large = large.timings.get(pipeline::STAGE_SPARSIFIER).unwrap();
    let spars_netsmf = netsmf.timings.get("parallel sparsifier construction").unwrap();
    println!(
        "\nshape checks:\n\
         - NetSMF sparsifier vs LightNE-Large sparsifier: {:.1}x slower (paper: 33x)\n\
         - LightNE-Small and ProNE+ propagation should match (same code)",
        spars_netsmf.as_secs_f64() / spars_large.as_secs_f64().max(1e-9)
    );
    println!(
        "- NetMF matrix nnz: LightNE-Small {} vs ProNE+ {} (paper: Small can be sparser than m={})",
        small.netmf_nnz,
        prone.matrix_nnz,
        data.graph.num_edges()
    );
}
