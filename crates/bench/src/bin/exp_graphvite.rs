//! Section 5.2.2 — GraphVite vs LightNE.
//!
//! Three paper results reproduced on synthetic analogues:
//!
//! 1. Micro-F1 at label ratios 1/5/10% on Friendster-small and
//!    Friendster (LightNE with the paper's cross-validated `T = 1`);
//! 2. link-prediction AUC on Hyperlink-PLD (`T = 5`);
//! 3. the time/cost table ("GraphVite" = skip-gram SGD stand-in).
//!
//! Paper shape: LightNE beats GraphVite on every accuracy number and is
//! 11–32× faster / 22–25× cheaper.

use lightne_baselines::{DeepWalk, DeepWalkConfig};
use lightne_bench::harness::{fmt_cost, fmt_time, header, timed, Args};
use lightne_core::{LightNe, LightNeConfig};
use lightne_eval::classify::evaluate_node_classification;
use lightne_eval::cost::CostModel;
use lightne_eval::linkpred::{rank_held_out, split_edges};
use lightne_gen::profiles::Profile;

fn main() {
    let args = Args::parse(0.0008, 64);
    let ratios = [0.01, 0.05, 0.10];

    // --- node classification on the two Friendster profiles ---
    for profile in [Profile::FriendsterSmall, Profile::Friendster] {
        // Friendster is ~8x larger than Friendster-small; apply the same
        // relative sizing so the comparison carries the paper's shape.
        let scale = match profile {
            Profile::Friendster => args.scale / 4.0,
            _ => args.scale,
        };
        let data = profile.generate(scale, args.seed);
        let labels = data.labels.as_ref().expect("classification profile");
        header(&format!("{}: Micro-F1 at 1/5/10% labels", data.name));
        println!("{}", data.stats_row());

        let (gv_emb, gv_time) = timed(|| {
            DeepWalk::new(DeepWalkConfig {
                dim: args.dim,
                walks_per_vertex: 6,
                walk_length: 30,
                window: 5,
                negatives: 5,
                epochs: 1,
                lr: 0.05,
                seed: args.seed,
            })
            .embed(&data.graph)
            .embedding
        });
        let (ln_out, ln_time) = timed(|| {
            LightNe::new(LightNeConfig {
                dim: args.dim,
                window: 1, // the paper's cross-validated choice here
                sample_ratio: 10.0,
                ..Default::default()
            })
            .embed(&data.graph)
        });

        println!("{:<11} {:>8} {:>8} {:>8}   time / cost", "System", "1%", "5%", "10%");
        for (name, emb, time) in
            [("GraphVite", &gv_emb, gv_time), ("LightNE", &ln_out.embedding, ln_time)]
        {
            let f1: Vec<f64> = ratios
                .iter()
                .map(|&r| evaluate_node_classification(emb, labels, r, args.seed + 7).micro)
                .collect();
            println!(
                "{:<11} {:>8.2} {:>8.2} {:>8.2}   {} / {}",
                name,
                f1[0],
                f1[1],
                f1[2],
                fmt_time(time),
                fmt_cost(CostModel::cost(name, time))
            );
        }
        println!(
            "speedup {:.1}x, cost ratio {:.1}x",
            gv_time.as_secs_f64() / ln_time.as_secs_f64(),
            CostModel::cost("GraphVite", gv_time) / CostModel::cost("LightNE", ln_time)
        );
    }

    // --- link prediction AUC on Hyperlink-PLD ---
    header("Hyperlink-PLD: link prediction AUC");
    let data = Profile::HyperlinkPld.generate(args.scale / 4.0, args.seed);
    println!("{}", data.stats_row());
    let (train, held) = split_edges(&data.graph, 0.005, args.seed + 3);
    let (gv_emb, gv_time) = timed(|| {
        DeepWalk::new(DeepWalkConfig {
            dim: args.dim,
            walks_per_vertex: 4,
            walk_length: 30,
            window: 5,
            negatives: 5,
            epochs: 1,
            lr: 0.05,
            seed: args.seed,
        })
        .embed(&train)
        .embedding
    });
    // Propagation off for the ranking task (see exp_pbg).
    let (ln_emb, ln_time) = timed(|| {
        LightNe::new(LightNeConfig {
            dim: args.dim,
            window: 5,
            sample_ratio: 5.0,
            propagation: None,
            ..Default::default()
        })
        .embed(&train)
        .embedding
    });
    let gv = rank_held_out(&gv_emb, &held, 100, &[10], args.seed + 4);
    let ln = rank_held_out(&ln_emb, &held, 100, &[10], args.seed + 4);
    println!(
        "GraphVite  AUC {:.3}  ({} / {})",
        100.0 * gv.auc,
        fmt_time(gv_time),
        fmt_cost(CostModel::cost("GraphVite", gv_time))
    );
    println!(
        "LightNE    AUC {:.3}  ({} / {})",
        100.0 * ln.auc,
        fmt_time(ln_time),
        fmt_cost(CostModel::cost("LightNE", ln_time))
    );
    println!("paper shape: LightNE 96.7 vs GraphVite 94.3, 11x faster");
}
