//! Table 4 — NetSMF / ProNE+ / LightNE-Small / LightNE-Large on OAG.
//!
//! Paper's rows (Micro-F1 at 0.001/0.01/0.1/1% labels, then Macro-F1):
//!
//! ```text
//! NetSMF (M=8Tm)   22.4 h    30.43 31.66 35.77 38.88
//! ProNE+           21 min    23.56 29.32 31.17 31.46
//! LightNE-Small    20.9 min  23.89 30.23 32.16 32.35
//! LightNE-Large    1.53 h    44.50 52.89 54.98 55.23
//! ```
//!
//! Shape targets: LightNE-Large dominates everything; LightNE-Small edges
//! out ProNE+ at comparable time; NetSMF needs far more time for less
//! accuracy than LightNE-Large.
//!
//! The label ratios are scaled up (1–50%) because our synthetic OAG has
//! thousands, not 67M, of vertices; the paper's 0.001% of 67M ≈ 700
//! training points, and our 1% of ~7k is the same order.

use lightne_baselines::{NetSmf, NetSmfConfig, ProNe, ProNeConfig};
use lightne_bench::harness::{fmt_time, header, timed, Args};
use lightne_core::{LightNe, LightNeConfig};
use lightne_eval::classify::{evaluate_node_classification, F1Scores};
use lightne_gen::profiles::Profile;
use lightne_linalg::DenseMatrix;
use std::time::Duration;

fn eval_all(
    emb: &DenseMatrix,
    labels: &lightne_gen::Labels,
    ratios: &[f64],
    seed: u64,
) -> Vec<F1Scores> {
    ratios.iter().map(|&r| evaluate_node_classification(emb, labels, r, seed)).collect()
}

fn print_rows(title: &str, rows: &[(String, Duration, Vec<F1Scores>)], ratios: &[f64]) {
    header(title);
    print!("{:<16} {:>10}", "Method", "Time");
    for r in ratios {
        print!(" {:>7.1}%", 100.0 * r);
    }
    println!();
    for (name, time, scores) in rows {
        print!("{:<16} {:>10}", name, fmt_time(*time));
        for s in scores {
            print!(" {:>8.2}", s.micro);
        }
        println!("  (micro)");
        print!("{:<16} {:>10}", "", "");
        for s in scores {
            print!(" {:>8.2}", s.macro_);
        }
        println!("  (macro)");
    }
}

fn main() {
    let args = Args::parse(0.0001, 32);
    let window = 10;
    let ratios = [0.01, 0.05, 0.10, 0.50];

    let data = Profile::Oag.generate(args.scale, args.seed);
    let labels = data.labels.as_ref().unwrap();
    println!("{}", data.stats_row());

    let mut rows: Vec<(String, Duration, Vec<F1Scores>)> = Vec::new();

    // NetSMF at the paper's maximum affordable M = 8Tm.
    let (netsmf, t) = timed(|| {
        NetSmf::new(NetSmfConfig { dim: args.dim, window, sample_ratio: 8.0, ..Default::default() })
            .embed(&data.graph)
    });
    rows.push((
        "NetSMF (M=8Tm)".into(),
        t,
        eval_all(&netsmf.embedding, labels, &ratios, args.seed + 1),
    ));

    // ProNE+.
    let (prone, t) = timed(|| {
        ProNe::new(ProNeConfig { dim: args.dim, ..Default::default() }).embed(&data.graph)
    });
    rows.push(("ProNE+".into(), t, eval_all(&prone.embedding, labels, &ratios, args.seed + 1)));

    // LightNE-Small (M = 0.1Tm) and LightNE-Large (M = 20Tm).
    for (name, ratio) in [("LightNE-Small", 0.1), ("LightNE-Large", 20.0)] {
        let (out, t) = timed(|| {
            LightNe::new(LightNeConfig {
                dim: args.dim,
                window,
                sample_ratio: ratio,
                ..Default::default()
            })
            .embed(&data.graph)
        });
        rows.push((name.into(), t, eval_all(&out.embedding, labels, &ratios, args.seed + 1)));
    }

    print_rows("Table 4: OAG node classification", &rows, &ratios);

    println!(
        "\npaper shape checks:\n\
         - LightNE-Large best accuracy across all ratios\n\
         - LightNE-Small ≈ ProNE+ time, slightly better accuracy\n\
         - NetSMF slower than LightNE-Large yet less accurate"
    );
}
