//! End-to-end pipeline throughput: embeddings per second over a
//! generated graph, plus the per-stage wall-time/GFLOP/s breakdown — the
//! headline number the SIMD and affinity work exists to move.
//!
//! Prints one flat JSON object — one key per line, so `awk`/`grep` can
//! parse it without a JSON library — to stdout; progress goes to stderr.
//! `scripts/run_e2e_bench.sh` redirects stdout into
//! `results/BENCH_e2e.json`, and `scripts/check_e2e_regression.sh` gates
//! changes against the committed copy.
//!
//! "Embeddings per second" is vertices embedded divided by total
//! pipeline wall time (all four stages, generation excluded), the
//! throughput metric of the paper's Table 5 comparison.
//!
//! Environment knobs (all optional):
//!
//! * `PROFILE` — generator profile name (default `Hyperlink2014-Sym`,
//!   the largest).
//! * `SCALE` — generator scale factor (default 0.00002, ~34k vertices
//!   from the default profile).
//! * `REPS` — timing repetitions; the best run (by embeddings/sec) is
//!   reported (default 3).
//! * `DIM`, `WINDOW`, `RATIO`, `SEED`, `THREADS` — pipeline knobs.
//! * `PIN_SHARDS=1` — enable shard→core worker pinning.
//! * `LIGHTNE_SIMD` — caps the kernel dispatch tier; the report records
//!   the tier it ran on.

use lightne_core::pipeline::{STAGE_NETMF, STAGE_PROPAGATION, STAGE_RSVD, STAGE_SPARSIFIER};
use lightne_core::{LightNe, LightNeConfig, RunStats};
use lightne_gen::profiles::Profile;
use lightne_linalg::simd;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Short stable key for a stage name ("parallel sparsifier construction"
/// → `sparsify`), used as the JSON key prefix.
fn stage_key(name: &str) -> &'static str {
    match name {
        STAGE_SPARSIFIER => "sparsify",
        STAGE_NETMF => "netmf",
        STAGE_RSVD => "rsvd",
        STAGE_PROPAGATION => "propagate",
        _ => "other",
    }
}

fn main() {
    let profile_name = std::env::var("PROFILE").unwrap_or_else(|_| "Hyperlink2014-Sym".into());
    let profile = Profile::ALL
        .into_iter()
        .find(|p| {
            p.name().eq_ignore_ascii_case(&profile_name)
                || p.name().replace('-', "_").eq_ignore_ascii_case(&profile_name)
        })
        .unwrap_or_else(|| panic!("unknown PROFILE {profile_name:?}"));
    let scale = env_f64("SCALE", 0.000_02);
    let reps = env_usize("REPS", 3);
    let dim = env_usize("DIM", 128);
    let threads = env_usize("THREADS", 0);
    let pin = std::env::var("PIN_SHARDS").is_ok_and(|v| v == "1");
    lightne_utils::parallel::configure_threads(threads);

    let cfg = LightNeConfig {
        dim,
        window: env_usize("WINDOW", 10),
        sample_ratio: env_f64("RATIO", 1.0),
        seed: env_usize("SEED", 42) as u64,
        pin_shards: pin,
        ..Default::default()
    };

    eprintln!("generating {} at scale {scale} ...", profile.name());
    let data = profile.generate(scale, cfg.seed);
    let g = data.graph;
    let n = g.num_vertices();
    let m = g.num_edges();
    eprintln!("graph: {n} vertices, {m} edges; {reps} reps at dim {dim}");

    let engine = LightNe::new(cfg);
    // Best rep by throughput (noise on a shared machine only ever adds
    // time); the stage breakdown reported is the best rep's.
    let mut best: Option<(f64, RunStats)> = None;
    for rep in 0..reps.max(1) {
        let out = engine.embed(&g);
        let secs = out.stats.total_secs();
        let eps = n as f64 / secs.max(1e-12);
        eprintln!("rep {rep}: {secs:.3}s total, {eps:.1} embeddings/sec");
        if best.as_ref().is_none_or(|(b, _)| eps > *b) {
            best = Some((eps, out.stats));
        }
    }
    let (eps, stats) = best.expect("at least one rep");

    let mut lines: Vec<String> = Vec::new();
    let mut put = |key: &str, val: String| lines.push(format!("  \"{key}\": {val}"));
    put("profile", format!("\"{}\"", profile.name()));
    put("scale", format!("{scale}"));
    put("vertices", n.to_string());
    put("edges", m.to_string());
    put("dim", dim.to_string());
    put("window", cfg.window.to_string());
    put("sample_ratio", format!("{}", cfg.sample_ratio));
    put("seed", cfg.seed.to_string());
    put("threads", stats.threads.to_string());
    put("simd_tier", format!("\"{}\"", stats.simd_tier));
    put("simd_features", format!("\"{}\"", simd::detected_features()));
    put("pinned", stats.pinned.to_string());
    put("total_secs", format!("{:.6}", stats.total_secs()));
    put("embeddings_per_sec", format!("{eps:.3}"));
    for s in &stats.stages {
        let key = stage_key(&s.name);
        put(&format!("{key}_secs"), format!("{:.6}", s.secs));
        if let Some(gf) = s.gflops() {
            put(&format!("{key}_gflops"), format!("{gf:.3}"));
        }
    }
    println!("{{\n{}\n}}", lines.join(",\n"));
}
