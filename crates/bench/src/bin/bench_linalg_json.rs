//! Full-size GFLOP/s measurement of the register-blocked linalg kernels
//! against their [`lightne_linalg::reference`] (pre-blocking) versions.
//!
//! Prints one flat JSON object — one key per line, so `awk`/`grep` can
//! parse it without a JSON library — to stdout; progress goes to stderr.
//! `scripts/run_linalg_bench.sh` redirects stdout into
//! `results/BENCH_linalg.json`, and `scripts/check_linalg_regression.sh`
//! gates changes against the committed copy.
//!
//! Environment knobs (all optional):
//!
//! * `REPS` — timing repetitions per case; the minimum is reported
//!   (default 3).
//! * `GEMM_M`, `GEMM_HOT_M`, `QR_ROWS`, `JACOBI_N`, `RSVD_N` — problem
//!   sizes, for CI smoke runs on shared machines (defaults are the full
//!   sizes the committed baseline was measured at).
//! * `LIGHTNE_SIMD` — caps the dispatch tier (`scalar`/`avx2`/`avx512`);
//!   the report records the tier it actually ran on (`dispatch_tier`)
//!   and always includes a forced-scalar GEMM number so tiers can be
//!   compared like-for-like.

use lightne_bench::harness::timed;
use lightne_linalg::kernels::gemm_flops;
use lightne_linalg::qr::orthonormalize_columns;
use lightne_linalg::rsvd::rsvd_flops;
use lightne_linalg::simd::{self, SimdTier};
use lightne_linalg::svd::jacobi_svd;
use lightne_linalg::{randomized_svd, reference, CsrMatrix, DenseMatrix, RsvdConfig};
use lightne_utils::rng::XorShiftStream;
use std::hint::black_box;
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Minimum wall-clock over `reps` runs of `f` (minimum, not mean: noise
/// on a shared machine only ever adds time).
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let (out, d) = timed(&mut f);
        black_box(out);
        best = best.min(d);
    }
    best
}

/// The pre-PR randomized SVD: Algorithm 3 composed from the reference
/// GEMM/QR/Jacobi kernels. SPMM and `gram_tn` are shared with the
/// blocked version (they were not rewritten), so the comparison isolates
/// exactly the kernels this PR replaced.
fn reference_rsvd(a: &CsrMatrix, cfg: &RsvdConfig) -> (DenseMatrix, Vec<f32>) {
    let n = a.n_rows();
    let l = (cfg.rank + cfg.oversampling).min(n).max(1);
    let o = DenseMatrix::gaussian(n, l, cfg.seed);
    let mut y = a.spmm(&o);
    reference::orthonormalize_columns(&mut y);
    for _ in 0..cfg.power_iters {
        let ay = a.spmm(&y);
        y = a.spmm(&ay);
        reference::orthonormalize_columns(&mut y);
    }
    let b = a.spmm(&y);
    let p = DenseMatrix::gaussian(l, l, cfg.seed.wrapping_add(1));
    let mut z = reference::matmul(&b, &p);
    reference::orthonormalize_columns(&mut z);
    let c = z.gram_tn(&b);
    let small = reference::jacobi_svd(&c);
    let u = reference::matmul(&z, &small.u);
    (u, small.sigma)
}

/// Random symmetric sparse matrix — the shape the sparsifier emits, so
/// neither SVD pays a transpose the other skips.
fn sparse_random(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = XorShiftStream::new(seed, 0);
    let mut coo = Vec::with_capacity(n * nnz_per_row);
    for i in 0..n as u32 {
        for _ in 0..nnz_per_row.div_ceil(2) {
            let j = rng.bounded_usize(n) as u32;
            let w = rng.unit_f32();
            coo.push((i, j, w));
            coo.push((j, i, w));
        }
    }
    CsrMatrix::from_coo(n, n, coo)
}

fn main() {
    let reps = env_usize("REPS", 3);
    let gemm_m = env_usize("GEMM_M", 65_536);
    let qr_rows = env_usize("QR_ROWS", 65_536);
    let jacobi_n = env_usize("JACOBI_N", 192);
    let rsvd_n = env_usize("RSVD_N", 50_000);
    let mut lines: Vec<String> = Vec::new();
    let mut put = |key: &str, val: String| lines.push(format!("  \"{key}\": {val}"));

    // The tier the blocked kernels dispatch to for this whole report
    // (honours LIGHTNE_SIMD), plus the raw detection result, so the
    // regression gate can compare like-for-like tiers.
    let tier = simd::active_tier();
    eprintln!("simd dispatch: {} (detected: {})", tier.name(), simd::detected_features());
    put("dispatch_tier", format!("\"{}\"", tier.name()));
    put("simd_features", format!("\"{}\"", simd::detected_features()));

    // --- GEMM: (gemm_m × 256) · (256 × 256), the projection shape of
    // Algorithm 3 step 5 at embedding scale.
    eprintln!("gemm {gemm_m}x256 * 256x256 ({reps} reps) ...");
    let (k, n) = (256usize, 256usize);
    let a = DenseMatrix::gaussian(gemm_m, k, 1);
    let b = DenseMatrix::gaussian(k, n, 2);
    let flops = gemm_flops(gemm_m, n, k) as f64;
    let packed = best_of(reps, || a.matmul(&b)).as_secs_f64();
    let refr = best_of(reps, || reference::matmul(&a, &b)).as_secs_f64();
    put("gemm_m", gemm_m.to_string());
    put("gemm_k", k.to_string());
    put("gemm_n", n.to_string());
    put("gemm_packed_secs", format!("{packed:.6}"));
    put("gemm_packed_gflops", format!("{:.3}", flops / packed / 1e9));
    put("gemm_reference_secs", format!("{refr:.6}"));
    put("gemm_reference_gflops", format!("{:.3}", flops / refr / 1e9));
    put("gemm_speedup", format!("{:.3}", refr / packed));

    // Forced-scalar GEMM: the portable-fallback number, measured in the
    // same process so the baseline check has a tier-independent anchor.
    if tier != SimdTier::Scalar {
        eprintln!("gemm (forced scalar tier) ...");
        simd::set_tier(SimdTier::Scalar);
        let scalar = best_of(reps, || a.matmul(&b)).as_secs_f64();
        simd::set_tier(tier);
        put("gemm_scalar_secs", format!("{scalar:.6}"));
        put("gemm_scalar_gflops", format!("{:.3}", flops / scalar / 1e9));
    } else {
        put("gemm_scalar_secs", format!("{packed:.6}"));
        put("gemm_scalar_gflops", format!("{:.3}", flops / packed / 1e9));
    }

    // --- Hot GEMM: same shape family at a size whose operands stay
    // cache-resident across reps. The full-size run above streams ~192MB
    // through DRAM per rep (page-fault zero-fill plus A and C traffic)
    // and measures the memory system as much as the kernel; this one
    // measures the micro-kernel's arithmetic throughput.
    let hot_m = env_usize("GEMM_HOT_M", 16_384);
    eprintln!("gemm (hot) {hot_m}x256 * 256x256 ({reps} reps) ...");
    let ah = DenseMatrix::gaussian(hot_m, k, 6);
    let hot_flops = gemm_flops(hot_m, n, k) as f64;
    let hot = best_of(reps, || ah.matmul(&b)).as_secs_f64();
    put("gemm_hot_m", hot_m.to_string());
    put("gemm_hot_secs", format!("{hot:.6}"));
    put("gemm_hot_gflops", format!("{:.3}", hot_flops / hot / 1e9));

    // --- QR: panel BCGS2 vs sequential MGS on a tall sketch.
    eprintln!("qr {qr_rows}x128 ({reps} reps) ...");
    let d = 128usize;
    let tall = DenseMatrix::gaussian(qr_rows, d, 3);
    let qr_flops = (4 * qr_rows * d * d) as f64;
    let panel = best_of(reps, || {
        let mut x = tall.clone();
        orthonormalize_columns(&mut x)
    })
    .as_secs_f64();
    let refq = best_of(reps, || {
        let mut x = tall.clone();
        reference::orthonormalize_columns(&mut x)
    })
    .as_secs_f64();
    put("qr_rows", qr_rows.to_string());
    put("qr_cols", d.to_string());
    put("qr_panel_secs", format!("{panel:.6}"));
    put("qr_panel_gflops", format!("{:.3}", qr_flops / panel / 1e9));
    put("qr_reference_secs", format!("{refq:.6}"));
    put("qr_reference_gflops", format!("{:.3}", qr_flops / refq / 1e9));
    put("qr_speedup", format!("{:.3}", refq / panel));

    // --- Small SVD: blocked round-robin vs cyclic Vec<Vec> Jacobi.
    eprintln!("jacobi_svd {jacobi_n}x{jacobi_n} ({reps} reps) ...");
    let small = DenseMatrix::gaussian(jacobi_n, jacobi_n, 4);
    let blocked = best_of(reps, || jacobi_svd(&small)).as_secs_f64();
    let refj = best_of(reps, || reference::jacobi_svd(&small)).as_secs_f64();
    put("jacobi_n", jacobi_n.to_string());
    put("jacobi_blocked_secs", format!("{blocked:.6}"));
    put("jacobi_reference_secs", format!("{refj:.6}"));
    put("jacobi_speedup", format!("{:.3}", refj / blocked));

    // --- End-to-end randomized SVD on a sparsifier-shaped matrix.
    eprintln!("rsvd n={rsvd_n} nnz/row=20 rank=32 ({reps} reps) ...");
    let m = sparse_random(rsvd_n, 20, 5);
    let cfg = RsvdConfig { rank: 32, oversampling: 8, power_iters: 1, seed: 7 };
    let rflops = rsvd_flops(m.n_rows(), m.nnz() as u64, &cfg) as f64;
    let rnew = best_of(reps, || randomized_svd(&m, &cfg)).as_secs_f64();
    let rold = best_of(reps, || reference_rsvd(&m, &cfg)).as_secs_f64();
    put("rsvd_n", rsvd_n.to_string());
    put("rsvd_nnz", m.nnz().to_string());
    put("rsvd_rank", cfg.rank.to_string());
    put("rsvd_blocked_secs", format!("{rnew:.6}"));
    put("rsvd_blocked_gflops", format!("{:.3}", rflops / rnew / 1e9));
    put("rsvd_reference_secs", format!("{rold:.6}"));
    put("rsvd_reference_gflops", format!("{:.3}", rflops / rold / 1e9));
    put("rsvd_speedup", format!("{:.3}", rold / rnew));

    println!("{{\n{}\n}}", lines.join(",\n"));
}
