//! Exact NetMF (Qiu et al., WSDM 2018) — the dense quality reference.
//!
//! Computes the full matrix of Equation 1 by explicit dense powers and
//! factorizes it. O(n³) work and O(n²) memory restrict it to small
//! benchmark graphs (BlogCatalog / YouTube scale in Figure 4), which is
//! exactly how the literature uses it: the accuracy ceiling that sampling
//! methods approximate.

use lightne_graph::GraphOps;
use lightne_linalg::{randomized_svd, DenseMatrix, RsvdConfig};
use lightne_sparsifier::exact::exact_netmf;

/// Embeds via the exact NetMF matrix.
///
/// # Panics
/// Panics (by design) if asked to densify a graph too large to hold an
/// `n × n` matrix; callers should restrict to small graphs.
pub fn netmf_embed<G: GraphOps>(
    g: &G,
    dim: usize,
    window: usize,
    negative: f64,
    seed: u64,
) -> DenseMatrix {
    assert!(g.num_vertices() <= 50_000, "exact NetMF is dense; refusing n = {}", g.num_vertices());
    let m = exact_netmf(g, window, negative);
    let svd = randomized_svd(&m, &RsvdConfig { rank: dim, oversampling: 16, power_iters: 2, seed });
    svd.embedding()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_core::{LightNe, LightNeConfig};
    use lightne_gen::generators::erdos_renyi;
    use lightne_gen::sbm::{labelled_sbm, SbmConfig};

    #[test]
    fn shapes() {
        let g = erdos_renyi(120, 700, 1);
        let x = netmf_embed(&g, 12, 5, 1.0, 2);
        assert_eq!(x.rows(), 120);
        assert_eq!(x.cols(), 12);
    }

    #[test]
    fn lightne_with_many_samples_approaches_exact_netmf_quality() {
        // The foundational claim: LightNE's sampled factorization targets
        // the same matrix NetMF factorizes exactly. Compare community
        // separation of the two embeddings (they should both capture it).
        let cfg = SbmConfig {
            n: 400,
            communities: 4,
            avg_degree: 20.0,
            mixing: 0.05,
            overlap: 0.0,
            gamma: 2.5,
        };
        let (g, labels) = labelled_sbm(&cfg, 3);
        let exact = netmf_embed(&g, 16, 5, 1.0, 4);
        let sampled = LightNe::new(LightNeConfig {
            dim: 16,
            window: 5,
            sample_ratio: 10.0,
            propagation: None,
            ..Default::default()
        })
        .embed(&g)
        .embedding;

        let separation = |y: &DenseMatrix| -> f64 {
            let mut yn = y.clone();
            yn.normalize_rows();
            let dot = |a: &[f32], b: &[f32]| -> f64 {
                a.iter().zip(b).map(|(&p, &q)| p as f64 * q as f64).sum()
            };
            let (mut s, mut sn, mut d, mut dn) = (0.0, 0, 0.0, 0);
            for i in (0..400).step_by(3) {
                for j in (1..400).step_by(7) {
                    if i == j {
                        continue;
                    }
                    let v = dot(yn.row(i), yn.row(j));
                    if labels.of(i) == labels.of(j) {
                        s += v;
                        sn += 1;
                    } else {
                        d += v;
                        dn += 1;
                    }
                }
            }
            s / sn as f64 - d / dn as f64
        };
        let sep_exact = separation(&exact);
        let sep_sampled = separation(&sampled);
        assert!(sep_exact > 0.1, "exact NetMF found no structure: {sep_exact}");
        assert!(
            sep_sampled > 0.5 * sep_exact,
            "sampled separation {sep_sampled} far below exact {sep_exact}"
        );
    }

    #[test]
    #[should_panic(expected = "refusing")]
    fn refuses_large_graphs() {
        let g = erdos_renyi(60_000, 60_000, 5);
        let _ = netmf_embed(&g, 8, 2, 1.0, 6);
    }
}
