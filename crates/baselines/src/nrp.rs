//! NRP-style baseline: factorizing the random-walk matrix *without* the
//! truncated logarithm.
//!
//! Section 2 of the paper singles out NRP (Yang et al., VLDB 2020): it
//! factorizes a personalized-PageRank matrix directly, which permits a
//! shortcut around constructing the walk matrix — but omits the
//! entry-wise `trunc_log` that NetMF proves necessary for the DeepWalk
//! equivalence, and the paper argues the omission costs accuracy
//! (Figure 4 shows NRP below LightNE). To reproduce that comparison
//! without NRP's Matlab stack, we reuse LightNE's own sparsifier and
//! factorize the *raw* (non-logarithmic) estimate of
//! `vol(G)/(bT) Σ_r (D⁻¹A)^r D⁻¹` — isolating exactly the design choice
//! the paper criticizes.

use lightne_graph::GraphOps;
use lightne_linalg::{randomized_svd, CsrMatrix, DenseMatrix, RsvdConfig};
use lightne_sparsifier::construct::{build_sparsifier, SamplerConfig};
use rayon::prelude::*;

/// NRP-style configuration (shares the sampler's knobs).
#[derive(Debug, Clone, Copy)]
pub struct NrpConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Walk window `T`.
    pub window: usize,
    /// Samples as a ratio of `T·m`.
    pub sample_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NrpConfig {
    fn default() -> Self {
        Self { dim: 128, window: 10, sample_ratio: 1.0, seed: 0x0909 }
    }
}

/// Embeds by factorizing the raw (no `trunc_log`) walk-matrix estimate.
pub fn nrp_embed<G: GraphOps>(g: &G, cfg: &NrpConfig) -> DenseMatrix {
    let samples = (cfg.sample_ratio * cfg.window as f64 * g.num_edges() as f64).round() as u64;
    let sampler_cfg = SamplerConfig {
        window: cfg.window,
        samples: samples.max(1),
        downsample: true,
        c_factor: None,
        seed: cfg.seed,
        ..Default::default()
    };
    let (coo, _) = build_sparsifier(g, &sampler_cfg).expect("nrp sampling failed");

    // Same estimator inversion as netmf.rs, but NO trunc_log.
    let n = g.num_vertices();
    let vol = g.volume();
    let degrees: Vec<f64> = (0..n).map(|v| g.degree(v as u32) as f64).collect();
    let factor = vol * vol / (2.0 * sampler_cfg.samples as f64);
    let entries: Vec<(u32, u32, f32)> = coo
        .into_par_iter()
        .filter_map(|(i, j, w)| {
            let (di, dj) = (degrees[i as usize], degrees[j as usize]);
            if di == 0.0 || dj == 0.0 {
                None
            } else {
                Some((i, j, (factor * w as f64 / (di * dj)) as f32))
            }
        })
        .collect();
    let m = CsrMatrix::from_coo(n, n, entries);
    let svd = randomized_svd(
        &m,
        &RsvdConfig { rank: cfg.dim, oversampling: 16, power_iters: 1, seed: cfg.seed },
    );
    svd.embedding()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_gen::generators::erdos_renyi;

    #[test]
    fn shapes_and_determinism() {
        let g = erdos_renyi(200, 1500, 1);
        let cfg = NrpConfig { dim: 12, window: 4, sample_ratio: 2.0, seed: 3 };
        let a = nrp_embed(&g, &cfg);
        let b = nrp_embed(&g, &cfg);
        assert_eq!(a.rows(), 200);
        assert_eq!(a.cols(), 12);
        assert!(a.max_abs_diff(&b) < 1e-6);
    }

    #[test]
    fn raw_matrix_is_degree_dominated() {
        // Without the log, the leading singular direction is dominated by
        // low-degree vertices (1/(d_i·d_j) blows up) — the pathology the
        // log fixes. Sanity-check the embedding is still finite.
        let g = erdos_renyi(150, 800, 2);
        let x = nrp_embed(&g, &NrpConfig { dim: 8, window: 3, sample_ratio: 4.0, seed: 5 });
        assert!(x.as_slice().iter().all(|v| v.is_finite()));
        assert!(x.frobenius_norm() > 0.0);
    }
}
