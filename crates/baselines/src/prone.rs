//! ProNE+ — ProNE rebuilt on the LightNE system stack (Section 5.2.3).
//!
//! The original ProNE release is a Python implementation the paper calls
//! "inefficient"; ProNE+ is the authors' re-implementation sharing
//! LightNE's graph processing and linear algebra, which is what we
//! reproduce. Two stages:
//!
//! 1. **Sparse matrix factorization**: randomized SVD of the modulated
//!    normalized Laplacian with entries (for each edge `(u,v)`):
//!
//!    ```text
//!    M_uv = log( (A_uv / d_u) · Z / (b · s_v^α) ),
//!       s_v = Σ_{i∈N(v)} 1/d_i,   Z = Σ_j s_j^α
//!    ```
//!
//!    with ProNE's defaults `b = 1`, `α = 0.75`. The matrix has exactly
//!    one entry per arc — the paper's Table 5 note that ProNE+ factorizes
//!    "exactly m non-zeros".
//! 2. **Spectral propagation**: identical to LightNE's
//!    ([`lightne_core::propagation`]).

use lightne_core::engine::{RunContext, RunStats, StageKind};
use lightne_core::propagation::{spectral_propagation, PropagationConfig};
use lightne_graph::GraphOps;
use lightne_linalg::{randomized_svd, CsrMatrix, DenseMatrix, RsvdConfig};
use lightne_utils::parallel::parallel_reduce_sum;
use lightne_utils::timer::StageTimer;
use rayon::prelude::*;

/// ProNE+ configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProNeConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Negative-sampling modulation `b`.
    pub negative: f64,
    /// Degree-modulation exponent `α` (ProNE default 0.75).
    pub alpha: f64,
    /// Randomized-SVD oversampling.
    pub oversampling: usize,
    /// Randomized-SVD subspace iterations.
    pub power_iters: usize,
    /// Spectral propagation settings.
    pub propagation: PropagationConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProNeConfig {
    fn default() -> Self {
        Self {
            dim: 128,
            negative: 1.0,
            alpha: 0.75,
            oversampling: 16,
            power_iters: 1,
            propagation: PropagationConfig::default(),
            seed: 0x960e,
        }
    }
}

/// Output of a ProNE+ run.
#[derive(Debug, Clone)]
pub struct ProNeOutput {
    /// The final embedding after propagation.
    pub embedding: DenseMatrix,
    /// The factorization-only embedding (pre-propagation).
    pub initial_embedding: DenseMatrix,
    /// Non-zeros in the factorized matrix (always the arc count).
    pub matrix_nnz: usize,
    /// Stage timings (randomized SVD, spectral propagation).
    pub timings: StageTimer,
    /// Full per-stage run statistics.
    pub stats: RunStats,
}

/// The ProNE+ system.
#[derive(Debug, Clone)]
pub struct ProNe {
    cfg: ProNeConfig,
}

/// Builds ProNE's modulated-Laplacian matrix.
pub fn modulated_matrix<G: GraphOps>(g: &G, b: f64, alpha: f64) -> CsrMatrix {
    let n = g.num_vertices();
    // s_v = Σ_{i ∈ N(v)} 1/d_i
    let s: Vec<f64> = (0..n as u32)
        .into_par_iter()
        .map(|v| {
            let mut acc = 0.0;
            g.for_each_neighbor(v, &mut |i| acc += 1.0 / g.degree(i) as f64);
            acc
        })
        .collect();
    let z: f64 = parallel_reduce_sum(s.len(), |i| s[i].powf(alpha));

    let coo: Vec<(u32, u32, f32)> = (0..n as u32)
        .into_par_iter()
        .flat_map_iter(|u| {
            let du = g.degree(u) as f64;
            let mut row = Vec::with_capacity(g.degree(u));
            g.for_each_neighbor(u, &mut |v| {
                let val = ((1.0 / du) * z / (b * s[v as usize].powf(alpha))).ln();
                if val > 0.0 {
                    row.push((u, v, val as f32));
                }
            });
            row
        })
        .collect();
    CsrMatrix::from_coo(n, n, coo)
}

impl ProNe {
    /// Creates a ProNE+ instance.
    pub fn new(cfg: ProNeConfig) -> Self {
        Self { cfg }
    }

    /// Embeds the graph.
    pub fn embed<G: GraphOps>(&self, g: &G) -> ProNeOutput {
        let cfg = &self.cfg;
        let mut ctx = RunContext::new(cfg.seed);

        // ProNE's single factorization stage covers matrix build + SVD.
        // Note: ProNE has always seeded its SVD with the master seed
        // directly (no 0x5EED offset); keep that convention.
        let (initial, matrix_nnz) = ctx.run(StageKind::Rsvd, |scope| {
            let m = modulated_matrix(g, cfg.negative, cfg.alpha);
            scope.counter("nnz", m.nnz() as u64);
            scope.heap(&m);
            let svd = randomized_svd(
                &m,
                &RsvdConfig {
                    rank: cfg.dim,
                    oversampling: cfg.oversampling,
                    power_iters: cfg.power_iters,
                    seed: cfg.seed,
                },
            );
            let x = svd.embedding();
            scope.counter("rank", cfg.dim as u64);
            (x, m.nnz())
        });

        let embedding = ctx.run(StageKind::Propagate, |scope| {
            let e = spectral_propagation(g, &initial, &cfg.propagation);
            scope.heap(&e);
            e
        });

        let stats = ctx.into_stats();
        let timings = stats.timer();
        ProNeOutput { embedding, initial_embedding: initial, matrix_nnz, timings, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_gen::generators::erdos_renyi;
    use lightne_gen::sbm::{labelled_sbm, SbmConfig};

    #[test]
    fn matrix_has_at_most_arc_nnz() {
        let g = erdos_renyi(200, 1500, 1);
        let m = modulated_matrix(&g, 1.0, 0.75);
        assert!(m.nnz() <= g.num_arcs());
        // On a typical sparse graph most entries are positive (kept).
        assert!(m.nnz() > g.num_arcs() / 2);
    }

    #[test]
    fn matrix_entries_only_on_edges() {
        let g = erdos_renyi(100, 500, 2);
        let m = modulated_matrix(&g, 1.0, 0.75);
        for u in 0..100u32 {
            let (cols, _) = m.row(u as usize);
            for &v in cols {
                assert!(g.has_edge(u, v), "({u},{v}) not an edge");
            }
        }
    }

    #[test]
    fn end_to_end_shapes() {
        let g = erdos_renyi(300, 3000, 3);
        let out = ProNe::new(ProNeConfig { dim: 16, ..Default::default() }).embed(&g);
        assert_eq!(out.embedding.rows(), 300);
        assert_eq!(out.embedding.cols(), 16);
        assert!(out.timings.get("spectral propagation").is_some());
    }

    #[test]
    fn captures_community_structure() {
        let cfg = SbmConfig {
            n: 600,
            communities: 4,
            avg_degree: 24.0,
            mixing: 0.05,
            overlap: 0.0,
            gamma: 2.5,
        };
        let (g, labels) = labelled_sbm(&cfg, 4);
        let out = ProNe::new(ProNeConfig { dim: 16, ..Default::default() }).embed(&g);
        let y = &out.embedding;
        let dot = |a: &[f32], b: &[f32]| -> f64 {
            a.iter().zip(b).map(|(&p, &q)| p as f64 * q as f64).sum()
        };
        let (mut same, mut sn, mut diff, mut dn) = (0.0, 0, 0.0, 0);
        for i in (0..600).step_by(5) {
            for j in (2..600).step_by(11) {
                if i == j {
                    continue;
                }
                let s = dot(y.row(i), y.row(j));
                if labels.of(i) == labels.of(j) {
                    same += s;
                    sn += 1;
                } else {
                    diff += s;
                    dn += 1;
                }
            }
        }
        let (s, d) = (same / sn as f64, diff / dn as f64);
        assert!(s > d + 0.05, "no separation: same {s:.4} diff {d:.4}");
    }
}
