//! NetMF-large (Qiu et al., WSDM 2018) — the eigen-decomposition
//! approximation for large windows.
//!
//! For `T = 10` the exact NetMF matrix needs ten dense matrix powers;
//! the NetMF paper's "large-window" algorithm instead takes a rank-`h`
//! eigendecomposition of the symmetric normalized adjacency
//! `N = D^{-1/2} A D^{-1/2} ≈ U diag(λ) Uᵀ` and evaluates the window
//! polynomial spectrally:
//!
//! ```text
//! Σ_{r=1..T} (D⁻¹A)^r D⁻¹ ≈ D^{-1/2} U diag( f(λ) ) Uᵀ D^{-1/2},
//!     f(λ) = (1/T)·Σ_{r=1..T} λ^r
//! ```
//!
//! then forms `trunc_log(vol/b · ·)` on the (dense, but rank-`h`
//! structured) approximation and factorizes. This sits between exact
//! NetMF (dense powers) and NetSMF (sampling) — the design point that
//! motivated the paper's sampling line of work, included here to complete
//! the lineage. Densifying limits it to small graphs, like exact NetMF.

use lightne_graph::GraphOps;
use lightne_linalg::eigen::symmetric_eigs;
use lightne_linalg::{randomized_svd, CsrMatrix, DenseMatrix, RsvdConfig};

/// NetMF-large configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetMfLargeConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Window `T`.
    pub window: usize,
    /// Eigenpairs retained (`h` in the NetMF paper; 128–256 typical).
    pub rank_h: usize,
    /// Negative samples `b`.
    pub negative: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NetMfLargeConfig {
    fn default() -> Self {
        Self { dim: 128, window: 10, rank_h: 256, negative: 1.0, seed: 0x6e7f }
    }
}

/// Embeds via the spectral approximation of the NetMF matrix.
///
/// # Panics
/// Panics for graphs beyond 50k vertices (densification bound, same as
/// exact NetMF).
pub fn netmf_large_embed<G: GraphOps>(g: &G, cfg: &NetMfLargeConfig) -> DenseMatrix {
    let n = g.num_vertices();
    assert!(n <= 50_000, "netmf_large densifies; refusing n = {n}");
    let h = cfg.rank_h.min(n);

    // N = D^{-1/2} A D^{-1/2}.
    let inv_sqrt_d: Vec<f64> = (0..n)
        .map(|v| {
            let d = g.degree(v as u32);
            if d == 0 {
                0.0
            } else {
                1.0 / (d as f64).sqrt()
            }
        })
        .collect();
    let mut coo = Vec::with_capacity(g.num_arcs());
    for u in 0..n as u32 {
        g.for_each_neighbor(u, &mut |v| {
            coo.push((u, v, (inv_sqrt_d[u as usize] * inv_sqrt_d[v as usize]) as f32));
        });
    }
    let nmat = CsrMatrix::from_coo(n, n, coo);

    // Truncated eigendecomposition and spectral window filter.
    let eigs = symmetric_eigs(&nmat, h, 50, cfg.seed);
    let t = cfg.window as i32;
    let filtered: Vec<f32> = eigs
        .values
        .iter()
        .map(|&l| {
            let l = l as f64;
            // f(λ) = (1/T) Σ_{r=1..T} λ^r, numerically stable both near
            // λ=1 and elsewhere.
            let f = if (1.0 - l).abs() < 1e-9 {
                1.0
            } else {
                l * (1.0 - l.powi(t)) / ((1.0 - l) * t as f64)
            };
            // NetMF clips the filtered spectrum at 0 (negative filtered
            // eigenvalues only add noise under the truncated log).
            f.max(0.0) as f32
        })
        .collect();

    // M' = vol/b · D^{-1/2} U f(Λ) Uᵀ D^{-1/2}, then trunc_log, densified.
    let mut left = eigs.vectors.clone(); // n × h
                                         // rows scaled by d^{-1/2}
    for (i, &isd) in inv_sqrt_d.iter().enumerate() {
        let s = isd as f32;
        for x in left.row_mut(i) {
            *x *= s;
        }
    }
    let mut lf = left.clone();
    lf.scale_columns(&filtered);
    let mut dense = lf.matmul(&left.transpose()); // n × n
    let scale = (g.volume() / cfg.negative) as f32;
    dense.scale(scale);
    dense.map_inplace(|x| if x > 1.0 { x.ln() } else { 0.0 });

    // Sparse-ify the truncated-log matrix and factorize.
    let mut coo = Vec::new();
    for i in 0..n {
        for (j, &v) in dense.row(i).iter().enumerate() {
            if v > 0.0 {
                coo.push((i as u32, j as u32, v));
            }
        }
    }
    let m = CsrMatrix::from_coo(n, n, coo);
    let svd = randomized_svd(
        &m,
        &RsvdConfig { rank: cfg.dim, oversampling: 16, power_iters: 2, seed: cfg.seed },
    );
    svd.embedding()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmf::netmf_embed;
    use lightne_eval::classify::evaluate_node_classification;
    use lightne_gen::generators::erdos_renyi;
    use lightne_gen::sbm::{labelled_sbm, SbmConfig};

    #[test]
    fn shapes_and_determinism() {
        let g = erdos_renyi(150, 900, 1);
        let cfg = NetMfLargeConfig { dim: 12, window: 5, rank_h: 64, ..Default::default() };
        let a = netmf_large_embed(&g, &cfg);
        let b = netmf_large_embed(&g, &cfg);
        assert_eq!(a.rows(), 150);
        assert_eq!(a.cols(), 12);
        assert!(a.max_abs_diff(&b) < 1e-5);
    }

    #[test]
    fn full_rank_matches_exact_netmf_quality() {
        // With h = n the spectral filter is exact (up to eigensolver
        // accuracy), so classification quality should track exact NetMF.
        let cfg = SbmConfig {
            n: 300,
            communities: 4,
            avg_degree: 18.0,
            mixing: 0.05,
            overlap: 0.0,
            gamma: 2.5,
        };
        let (g, labels) = labelled_sbm(&cfg, 2);
        let exact = netmf_embed(&g, 16, 5, 1.0, 3);
        let large = netmf_large_embed(
            &g,
            &NetMfLargeConfig { dim: 16, window: 5, rank_h: 300, negative: 1.0, seed: 3 },
        );
        let fe = evaluate_node_classification(&exact, &labels, 0.3, 4);
        let fl = evaluate_node_classification(&large, &labels, 0.3, 4);
        assert!(
            fl.micro > fe.micro - 10.0,
            "netmf-large {} far below exact {}",
            fl.micro,
            fe.micro
        );
        assert!(fl.micro > 60.0, "absolute quality too low: {}", fl.micro);
    }

    #[test]
    fn low_rank_truncation_degrades_gracefully() {
        let cfg = SbmConfig {
            n: 300,
            communities: 4,
            avg_degree: 18.0,
            mixing: 0.05,
            overlap: 0.0,
            gamma: 2.5,
        };
        let (g, labels) = labelled_sbm(&cfg, 5);
        let hi = netmf_large_embed(
            &g,
            &NetMfLargeConfig { dim: 16, window: 5, rank_h: 128, negative: 1.0, seed: 6 },
        );
        let f = evaluate_node_classification(&hi, &labels, 0.3, 7);
        // 128 eigenpairs comfortably cover 4 planted communities.
        assert!(f.micro > 60.0, "micro {}", f.micro);
    }
}
