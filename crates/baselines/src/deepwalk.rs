//! DeepWalk-style skip-gram with negative sampling, trained by SGD — the
//! stand-in for GraphVite and PyTorch-BigGraph.
//!
//! Both of the paper's "big system" comparators optimize the skip-gram
//! objective over random-walk co-occurrence pairs with stochastic gradient
//! descent (GraphVite on GPUs, PBG on a distributed parameter server).
//! Neither runtime is reproducible on one CPU core, but the *algorithm* —
//! and its cost structure of many cheap SGD updates versus LightNE's few
//! heavy matrix passes — is. This module implements it faithfully:
//!
//! * truncated random walks (`walks_per_vertex × walk_length`);
//! * skip-gram pairs within a `window`;
//! * `negatives` negative samples per pair from the unigram^{3/4}
//!   distribution (word2vec's choice, kept by DeepWalk/GraphVite);
//! * SGD with linearly decaying learning rate over `epochs` passes.
//!
//! Scoring for evaluation uses the input ("center") embeddings.

use lightne_core::engine::{RunContext, RunStats};
use lightne_gen::alias::AliasTable;
use lightne_graph::{walk::walk_trajectory, GraphOps, VertexId};
use lightne_linalg::DenseMatrix;
use lightne_utils::rng::XorShiftStream;
use lightne_utils::timer::StageTimer;

/// DeepWalk hyper-parameters (word2vec-lineage defaults).
#[derive(Debug, Clone, Copy)]
pub struct DeepWalkConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Walks started per vertex per epoch.
    pub walks_per_vertex: usize,
    /// Length of each walk.
    pub walk_length: usize,
    /// Skip-gram window size.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Passes over the walk corpus.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to 1% of itself).
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeepWalkConfig {
    fn default() -> Self {
        Self {
            dim: 128,
            walks_per_vertex: 10,
            walk_length: 40,
            window: 5,
            negatives: 5,
            epochs: 1,
            lr: 0.025,
            seed: 0xDEE9,
        }
    }
}

/// Output of a DeepWalk run.
#[derive(Debug, Clone)]
pub struct DeepWalkOutput {
    /// Input ("center") embeddings, used for scoring.
    pub embedding: DenseMatrix,
    /// Number of SGD pair updates performed.
    pub updates: u64,
    /// Timing (one stage: "sgd training").
    pub timings: StageTimer,
    /// Full per-stage run statistics.
    pub stats: RunStats,
}

/// The DeepWalk-SGD system.
#[derive(Debug, Clone)]
pub struct DeepWalk {
    cfg: DeepWalkConfig,
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl DeepWalk {
    /// Creates a DeepWalk instance.
    pub fn new(cfg: DeepWalkConfig) -> Self {
        assert!(cfg.dim >= 1 && cfg.walk_length >= 2 && cfg.window >= 1);
        Self { cfg }
    }

    /// Trains embeddings on `g`.
    pub fn embed<G: GraphOps>(&self, g: &G) -> DeepWalkOutput {
        let cfg = &self.cfg;
        let n = g.num_vertices();
        let d = cfg.dim;
        let mut ctx = RunContext::new(cfg.seed);
        let (input, updates) = ctx.run_named("sgd training", |scope| self.train(g, n, d, scope));
        let stats = ctx.into_stats();
        let timings = stats.timer();
        DeepWalkOutput { embedding: input, updates, timings, stats }
    }

    // Index loops are deliberate in the SGD hot path: the windowed pair
    // loop skips the center position and the gradient loops walk two
    // arrays in lockstep.
    #[allow(clippy::needless_range_loop)]
    fn train<G: GraphOps>(
        &self,
        g: &G,
        n: usize,
        d: usize,
        scope: &mut lightne_core::engine::StageScope,
    ) -> (DenseMatrix, u64) {
        let cfg = &self.cfg;
        // word2vec-style init: inputs uniform in [-0.5/d, 0.5/d], outputs 0.
        let mut rng = XorShiftStream::new(cfg.seed, 0);
        let mut input = DenseMatrix::zeros(n, d);
        for i in 0..n {
            for j in 0..d {
                input.set(i, j, (rng.unit_f32() - 0.5) / d as f32);
            }
        }
        let mut output = DenseMatrix::zeros(n, d);

        // Unigram^{3/4} negative table over degrees.
        let weights: Vec<f64> =
            (0..n).map(|v| (g.degree(v as VertexId) as f64).powf(0.75).max(1e-12)).collect();
        let neg_table = AliasTable::new(&weights);

        let total_pairs_estimate =
            (n * cfg.walks_per_vertex * cfg.walk_length * cfg.window * cfg.epochs) as f64;
        let mut seen_pairs = 0f64;
        let mut updates = 0u64;
        let mut traj: Vec<VertexId> = Vec::with_capacity(cfg.walk_length + 1);
        let mut grad = vec![0f32; d];

        for epoch in 0..cfg.epochs {
            for start in 0..n as VertexId {
                if g.degree(start) == 0 {
                    continue;
                }
                for wk in 0..cfg.walks_per_vertex {
                    let stream =
                        (epoch * cfg.walks_per_vertex + wk) as u64 * n as u64 + start as u64 + 1;
                    let mut wrng = XorShiftStream::new(cfg.seed, stream);
                    walk_trajectory(g, start, cfg.walk_length, &mut wrng, &mut traj);
                    for c in 0..traj.len() {
                        let center = traj[c] as usize;
                        let lo = c.saturating_sub(cfg.window);
                        let hi = (c + cfg.window + 1).min(traj.len());
                        for t in lo..hi {
                            if t == c {
                                continue;
                            }
                            seen_pairs += 1.0;
                            let lr = cfg.lr
                                * (1.0 - seen_pairs as f32 / total_pairs_estimate as f32).max(0.01);
                            let context = traj[t] as usize;
                            // One positive + `negatives` negative updates.
                            grad.fill(0.0);
                            for neg in 0..=cfg.negatives {
                                let (target, label) = if neg == 0 {
                                    (context, 1.0f32)
                                } else {
                                    (neg_table.sample(&mut wrng), 0.0f32)
                                };
                                if label == 0.0 && target == center {
                                    continue;
                                }
                                let dot: f32 = input
                                    .row(center)
                                    .iter()
                                    .zip(output.row(target))
                                    .map(|(&a, &b)| a * b)
                                    .sum();
                                let err = (label - sigmoid(dot)) * lr;
                                for k in 0..d {
                                    grad[k] += err * output.get(target, k);
                                }
                                let ci = input.row(center).to_vec();
                                let orow = output.row_mut(target);
                                for k in 0..d {
                                    orow[k] += err * ci[k];
                                }
                                updates += 1;
                            }
                            let crow = input.row_mut(center);
                            for k in 0..d {
                                crow[k] += grad[k];
                            }
                        }
                    }
                }
            }
        }
        scope.counter("updates", updates);
        // Input and output embedding tables coexist during training.
        scope.heap_bytes(2 * n * d * std::mem::size_of::<f32>());
        (input, updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_gen::generators::erdos_renyi;
    use lightne_gen::sbm::{labelled_sbm, SbmConfig};

    fn tiny() -> DeepWalkConfig {
        DeepWalkConfig {
            dim: 16,
            walks_per_vertex: 4,
            walk_length: 20,
            window: 4,
            negatives: 3,
            epochs: 1,
            lr: 0.05,
            seed: 1,
        }
    }

    #[test]
    fn trains_and_reports_updates() {
        let g = erdos_renyi(200, 1200, 1);
        let out = DeepWalk::new(tiny()).embed(&g);
        assert_eq!(out.embedding.rows(), 200);
        assert!(out.updates > 10_000, "updates {}", out.updates);
    }

    #[test]
    fn deterministic() {
        let g = erdos_renyi(100, 600, 2);
        let a = DeepWalk::new(tiny()).embed(&g);
        let b = DeepWalk::new(tiny()).embed(&g);
        assert!(a.embedding.max_abs_diff(&b.embedding) < 1e-7);
    }

    #[test]
    fn learns_community_structure() {
        let cfg = SbmConfig {
            n: 400,
            communities: 3,
            avg_degree: 20.0,
            mixing: 0.05,
            overlap: 0.0,
            gamma: 2.5,
        };
        let (g, labels) = labelled_sbm(&cfg, 5);
        let out = DeepWalk::new(DeepWalkConfig { epochs: 2, ..tiny() }).embed(&g);
        let mut y = out.embedding.clone();
        y.normalize_rows();
        let dot = |a: &[f32], b: &[f32]| -> f64 {
            a.iter().zip(b).map(|(&p, &q)| p as f64 * q as f64).sum()
        };
        let (mut s, mut sn, mut di, mut dn) = (0.0, 0, 0.0, 0);
        for i in (0..400).step_by(3) {
            for j in (1..400).step_by(7) {
                if i == j {
                    continue;
                }
                let v = dot(y.row(i), y.row(j));
                if labels.of(i) == labels.of(j) {
                    s += v;
                    sn += 1;
                } else {
                    di += v;
                    dn += 1;
                }
            }
        }
        let (s, di) = (s / sn as f64, di / dn as f64);
        assert!(s > di + 0.05, "no structure learned: same {s:.4} diff {di:.4}");
    }

    #[test]
    fn isolated_vertices_keep_init() {
        let g = lightne_graph::GraphBuilder::from_edges(10, &[(0, 1), (1, 2)]);
        let out = DeepWalk::new(tiny()).embed(&g);
        // Vertex 9 is isolated: no walks start there, no context hits it
        // (negatives can, but only its output vector). Input row stays at
        // its tiny init values.
        let norm: f32 = out.embedding.row(9).iter().map(|&x| x.abs()).sum();
        assert!(norm < 0.5, "isolated vertex moved: {norm}");
    }
}
