//! The NetSMF baseline (Qiu et al., WWW 2019), as re-characterized by the
//! LightNE paper.
//!
//! Differences from LightNE, each of which the paper ablates:
//!
//! 1. **No edge downsampling** — every PathSampling trial is kept, so the
//!    sparsifier holds Θ(M) entries instead of O(n log n).
//! 2. **Per-thread aggregation buffers** merged after sampling
//!    ([`lightne_hash::ThreadLocalAggregator`]) — memory proportional to
//!    the *sample count*, the reason NetSMF capped out at `M = 8Tm` on a
//!    1.7 TB machine (Section 5.2.4).
//! 3. **No spectral propagation** — the factorization output is final.
//!
//! The estimator and randomized SVD are shared with LightNE, so quality
//! differences in experiments come from the above, not implementation
//! noise.

use lightne_core::engine::{run_pipeline, PipelineSource, RunOptions, RunStats};
use lightne_core::propagation::PropagationConfig;
use lightne_core::LightNeConfig;
use lightne_graph::GraphOps;
use lightne_hash::{EdgeAggregator, ThreadLocalAggregator};
use lightne_linalg::{CsrMatrix, DenseMatrix};
use lightne_sparsifier::construct::{sample_into, SamplerConfig, SamplerStats, SparsifierOutput};
use lightne_sparsifier::netmf::sparsifier_to_netmf;
use lightne_utils::timer::StageTimer;

/// NetSMF configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetSmfConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Context window `T`.
    pub window: usize,
    /// Samples as a ratio of `T·m` (the paper runs NetSMF at 1–8).
    pub sample_ratio: f64,
    /// Negative samples `b`.
    pub negative: f64,
    /// Randomized-SVD oversampling / power iterations.
    pub oversampling: usize,
    /// Randomized-SVD subspace iterations.
    pub power_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NetSmfConfig {
    fn default() -> Self {
        Self {
            dim: 128,
            window: 10,
            sample_ratio: 1.0,
            negative: 1.0,
            oversampling: 16,
            power_iters: 1,
            seed: 0x5e75,
        }
    }
}

/// Result of a NetSMF run.
#[derive(Debug, Clone)]
pub struct NetSmfOutput {
    /// The `n × d` embedding.
    pub embedding: DenseMatrix,
    /// Sampler statistics (note `aggregator_bytes` grows with samples).
    pub sampler: SamplerStats,
    /// Stage timings (sparsifier construction, randomized SVD).
    pub timings: StageTimer,
    /// Full per-stage run statistics.
    pub stats: RunStats,
}

/// The NetSMF system.
#[derive(Debug, Clone)]
pub struct NetSmf {
    cfg: NetSmfConfig,
}

/// [`PipelineSource`] realizing NetSMF's stage variants: per-thread
/// aggregation buffers instead of the shared hash table, and no
/// propagation stage (the configuration disables it).
struct NetSmfSource<'a, G: GraphOps>(&'a G);

impl<G: GraphOps> PipelineSource for NetSmfSource<'_, G> {
    fn num_vertices(&self) -> usize {
        self.0.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.0.num_edges()
    }

    fn sparsify(&self, cfg: &SamplerConfig) -> SparsifierOutput {
        let agg = ThreadLocalAggregator::new();
        let stats = sample_into(self.0, cfg, &agg)?;
        Ok((agg.into_coo(), stats))
    }

    fn netmf(&self, coo: Vec<(u32, u32, f32)>, samples: u64, negative: f64) -> CsrMatrix {
        sparsifier_to_netmf(self.0, coo, samples, negative)
    }

    fn propagate(&self, _initial: &DenseMatrix, _cfg: &PropagationConfig) -> DenseMatrix {
        // xtask:panic-ok(NetSMF config pins propagation off; this stub only exists to satisfy the Source trait)
        unreachable!("netsmf runs with propagation disabled")
    }
}

impl NetSmf {
    /// Creates a NetSMF instance.
    pub fn new(cfg: NetSmfConfig) -> Self {
        Self { cfg }
    }

    /// Embeds the graph.
    pub fn embed<G: GraphOps>(&self, g: &G) -> NetSmfOutput {
        let cfg = &self.cfg;
        let engine_cfg = LightNeConfig {
            dim: cfg.dim,
            window: cfg.window,
            sample_ratio: cfg.sample_ratio,
            downsample: false,
            c_factor: None,
            prob: lightne_sparsifier::ProbScheme::Degree,
            negative: cfg.negative,
            oversampling: cfg.oversampling,
            power_iters: cfg.power_iters,
            propagation: None,
            seed: cfg.seed,
            shards: 0,
            global_table: false,
            pin_shards: false,
        };
        let out = run_pipeline(&engine_cfg, &NetSmfSource(g), RunOptions::default())
            .unwrap_or_else(|e| panic!("pipeline failed: {e}"));
        NetSmfOutput {
            embedding: out.embedding,
            sampler: out.sampler,
            timings: out.timings,
            stats: out.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_core::{LightNe, LightNeConfig};
    use lightne_gen::generators::erdos_renyi;

    #[test]
    fn produces_embedding() {
        let g = erdos_renyi(300, 3000, 1);
        let out = NetSmf::new(NetSmfConfig {
            dim: 16,
            window: 5,
            sample_ratio: 1.0,
            ..Default::default()
        })
        .embed(&g);
        assert_eq!(out.embedding.rows(), 300);
        assert_eq!(out.embedding.cols(), 16);
        assert!(out.timings.get("randomized svd").is_some());
    }

    #[test]
    fn memory_grows_with_samples_unlike_lightne() {
        // The §5.2.4 contrast in miniature: NetSMF's aggregation memory
        // scales with M, LightNE's with distinct kept entries.
        let g = erdos_renyi(400, 4000, 2);
        let small = NetSmf::new(NetSmfConfig {
            dim: 8,
            window: 5,
            sample_ratio: 0.5,
            ..Default::default()
        })
        .embed(&g);
        let large = NetSmf::new(NetSmfConfig {
            dim: 8,
            window: 5,
            sample_ratio: 4.0,
            ..Default::default()
        })
        .embed(&g);
        assert!(
            large.sampler.aggregator_bytes > 3 * small.sampler.aggregator_bytes,
            "netsmf memory should scale with samples: {} vs {}",
            large.sampler.aggregator_bytes,
            small.sampler.aggregator_bytes
        );

        // At a high sample ratio the contrast is stark: NetSMF buffers all
        // samples, while LightNE's table is capped by distinct pairs (at
        // most n² here, far fewer in general).
        let huge = NetSmf::new(NetSmfConfig {
            dim: 8,
            window: 5,
            sample_ratio: 16.0,
            ..Default::default()
        })
        .embed(&g);
        let lightne = LightNe::new(LightNeConfig {
            dim: 8,
            window: 5,
            sample_ratio: 16.0,
            ..Default::default()
        })
        .embed(&g);
        assert!(
            2 * lightne.sampler.aggregator_bytes < huge.sampler.aggregator_bytes,
            "lightne {} should use far less aggregation memory than netsmf {}",
            lightne.sampler.aggregator_bytes,
            huge.sampler.aggregator_bytes
        );
    }

    #[test]
    fn no_downsampling_keeps_every_trial() {
        let g = erdos_renyi(200, 2000, 3);
        let out = NetSmf::new(NetSmfConfig {
            dim: 8,
            window: 4,
            sample_ratio: 1.0,
            ..Default::default()
        })
        .embed(&g);
        assert_eq!(out.sampler.trials, out.sampler.kept);
    }
}
