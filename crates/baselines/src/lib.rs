//! Baseline embedding systems reproduced for the LightNE evaluation.
//!
//! Every comparison in Section 5 needs the other side of the table, so
//! this crate implements:
//!
//! * [`netsmf`] — **NetSMF** as the paper characterizes it: the same
//!   PathSampling, but *no* edge downsampling and *per-thread buffer*
//!   aggregation (memory grows with samples, the limitation the
//!   Section 5.2.4 ablation quantifies), no spectral propagation.
//! * [`prone`] — **ProNE+**: the paper's own re-implementation of ProNE
//!   on the LightNE system stack — sparse factorization of the modulated
//!   normalized Laplacian (nnz exactly the graph's arcs) followed by the
//!   same spectral propagation as LightNE.
//! * [`netmf`] — exact **NetMF** (dense matrix powers), feasible only on
//!   small graphs; the quality reference in Figure 4.
//! * [`nrp`] — an **NRP-style** no-logarithm factorization of the walk
//!   matrix, isolating the design choice (omitting `trunc_log`) that
//!   Section 2 criticizes.
//! * [`deepwalk`] — a DeepWalk/LINE-style **skip-gram with negative
//!   sampling trained by SGD**, the algorithm class inside GraphVite and
//!   PyTorch-BigGraph. The paper's GPU/distributed comparators are not
//!   reproducible on one CPU, but their per-sample SGD economics are —
//!   which is what the time/cost comparisons exercise.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod deepwalk;
pub mod netmf;
pub mod netmf_large;
pub mod netsmf;
pub mod nrp;
pub mod prone;

pub use deepwalk::{DeepWalk, DeepWalkConfig};
pub use netmf::netmf_embed;
pub use netmf_large::{netmf_large_embed, NetMfLargeConfig};
pub use netsmf::{NetSmf, NetSmfConfig, NetSmfOutput};
pub use nrp::{nrp_embed, NrpConfig};
pub use prone::{ProNe, ProNeConfig};
