//! Multi-label ground truth for node classification.
//!
//! The paper's classification datasets (BlogCatalog, YouTube, Friendster,
//! OAG) are *multi-label*: a vertex can belong to several groups, and the
//! standard evaluation predicts exactly as many labels per vertex as the
//! ground truth has. This container mirrors that structure.

/// Per-vertex multi-label assignments over `num_labels` classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labels {
    num_labels: usize,
    per_vertex: Vec<Vec<u16>>,
}

impl Labels {
    /// Creates a label set. Each inner vector lists the classes of one
    /// vertex (sorted, deduplicated).
    pub fn new(num_labels: usize, mut per_vertex: Vec<Vec<u16>>) -> Self {
        for ls in &mut per_vertex {
            ls.sort_unstable();
            ls.dedup();
            if let Some(&max) = ls.last() {
                assert!((max as usize) < num_labels, "label id out of range");
            }
        }
        Self { num_labels, per_vertex }
    }

    /// Number of distinct classes.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.per_vertex.len()
    }

    /// The classes of vertex `v`.
    pub fn of(&self, v: usize) -> &[u16] {
        &self.per_vertex[v]
    }

    /// Whether vertex `v` carries class `l`.
    pub fn has(&self, v: usize, l: u16) -> bool {
        self.per_vertex[v].binary_search(&l).is_ok()
    }

    /// Vertices that have at least one label.
    pub fn labelled_vertices(&self) -> Vec<usize> {
        (0..self.per_vertex.len()).filter(|&v| !self.per_vertex[v].is_empty()).collect()
    }

    /// Mean number of labels per labelled vertex.
    pub fn mean_labels(&self) -> f64 {
        let labelled = self.labelled_vertices();
        if labelled.is_empty() {
            return 0.0;
        }
        labelled.iter().map(|&v| self.per_vertex[v].len()).sum::<usize>() as f64
            / labelled.len() as f64
    }
}

/// Writes labels as text: `vertex label label ...`, one labelled vertex
/// per line, with a `# num_vertices num_labels` header.
pub fn write_labels(labels: &Labels, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    use std::io::Write;
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "# {} {}", labels.num_vertices(), labels.num_labels())?;
    for v in 0..labels.num_vertices() {
        let ls = labels.of(v);
        if ls.is_empty() {
            continue;
        }
        write!(w, "{v}")?;
        for l in ls {
            write!(w, " {l}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Reads labels written by [`write_labels`].
pub fn read_labels(path: impl AsRef<std::path::Path>) -> std::io::Result<Labels> {
    use std::io::BufRead;
    let reader = std::io::BufReader::new(std::fs::File::open(path)?);
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut num_vertices = 0usize;
    let mut num_labels = 0usize;
    let mut rows: Vec<(usize, Vec<u16>)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if let Some(rest) = t.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            num_vertices =
                it.next().and_then(|x| x.parse().ok()).ok_or_else(|| bad("bad header".into()))?;
            num_labels =
                it.next().and_then(|x| x.parse().ok()).ok_or_else(|| bad("bad header".into()))?;
            continue;
        }
        let mut it = t.split_whitespace();
        let v: usize = it
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| bad(format!("bad vertex on line {}", lineno + 1)))?;
        let ls: Result<Vec<u16>, _> = it.map(str::parse).collect();
        let ls = ls.map_err(|e| bad(format!("bad label on line {}: {e}", lineno + 1)))?;
        rows.push((v, ls));
    }
    let n = num_vertices.max(rows.iter().map(|(v, _)| v + 1).max().unwrap_or(0));
    let mut per_vertex = vec![Vec::new(); n];
    for (v, ls) in rows {
        per_vertex[v] = ls;
    }
    let k = num_labels.max(
        per_vertex.iter().flat_map(|ls| ls.iter().map(|&l| l as usize + 1)).max().unwrap_or(1),
    );
    Ok(Labels::new(k, per_vertex))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lightne_labels_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn label_io_roundtrip() {
        let l = Labels::new(5, vec![vec![0, 2], vec![], vec![4], vec![1, 3], vec![]]);
        let p = tmp("rt.txt");
        write_labels(&l, &p).unwrap();
        let l2 = read_labels(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(l, l2);
    }

    #[test]
    fn label_io_rejects_garbage() {
        let p = tmp("bad.txt");
        std::fs::write(&p, "# 3 2\n0 zero\n").unwrap();
        assert!(read_labels(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let l = Labels::new(5, vec![vec![3, 1, 3], vec![], vec![0]]);
        assert_eq!(l.of(0), &[1, 3]);
        assert!(l.has(0, 3));
        assert!(!l.has(0, 0));
        assert_eq!(l.labelled_vertices(), vec![0, 2]);
    }

    #[test]
    fn mean_labels_ignores_unlabelled() {
        let l = Labels::new(4, vec![vec![0, 1], vec![], vec![2]]);
        assert!((l.mean_labels() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "label id out of range")]
    fn rejects_out_of_range() {
        Labels::new(2, vec![vec![2]]);
    }
}
