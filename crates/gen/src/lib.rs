//! Synthetic graph generators and per-paper dataset profiles.
//!
//! The LightNE evaluation runs on nine real graphs (Table 3), from
//! BlogCatalog (10K vertices) to Hyperlink2014 (124B edges). Those datasets
//! — and the 1.5 TB machine that held them — are not available here, so
//! per the reproduction's substitution rule this crate provides synthetic
//! analogues that preserve the graph properties the algorithms exploit:
//!
//! * power-law degree distributions ([`generators::chung_lu`],
//!   [`generators::rmat`], [`generators::barabasi_albert`]),
//! * community structure with multi-label ground truth for the node
//!   classification tasks ([`sbm::labelled_sbm`]), and
//! * well-connectedness / spectral-gap behaviour (the property Theorem 3.2
//!   needs for degree-based downsampling to approximate effective
//!   resistances).
//!
//! [`profiles`] maps each paper dataset to a generator configuration with
//! a `scale` knob, so every experiment binary can run the paper's workload
//! shape at laptop size.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod alias;
pub mod generators;
pub mod labels;
pub mod profiles;
pub mod sbm;

pub use alias::AliasTable;
pub use labels::Labels;
pub use profiles::{Dataset, Profile};
