//! Per-paper dataset profiles (Table 3), scaled to laptop size.
//!
//! Each profile records the original dataset's statistics and knows how to
//! generate a synthetic analogue whose *shape* matches: the same
//! edges-per-vertex density, community structure with the same number of
//! classes for classification datasets, and a heavy-tailed degree
//! distribution. The `scale` parameter multiplies the vertex count
//! (`scale = 1.0` would reproduce the paper's sizes — far beyond this
//! machine for the larger graphs, which is exactly why the knob exists).

use crate::generators::{rmat, RmatParams};
use crate::labels::Labels;
use crate::sbm::{labelled_sbm, SbmConfig};
use lightne_graph::Graph;

/// The nine datasets of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// BlogCatalog: 10K vertices, 334K edges, 39 classes (small).
    BlogCatalog,
    /// YouTube: 1.1M vertices, 3.0M edges, 47 classes (small).
    YouTube,
    /// LiveJournal: 4.8M vertices, 69M edges; link prediction (large).
    LiveJournal,
    /// Friendster-small: 7.9M vertices, 447M edges, 100 classes (large).
    FriendsterSmall,
    /// Hyperlink-PLD: 39M vertices, 623M edges; link prediction (large).
    HyperlinkPld,
    /// Friendster: 66M vertices, 1.8B edges, 100 classes (large).
    Friendster,
    /// OAG: 68M vertices, 895M edges, 19 venue classes (large).
    Oag,
    /// ClueWeb-Sym: 978M vertices, 74.7B edges (very large).
    ClueWebSym,
    /// Hyperlink2014-Sym: 1.7B vertices, 124B edges (very large).
    Hyperlink2014Sym,
}

/// A generated dataset: graph, optional classification ground truth and
/// the statistics of the paper's original (for the Table 3 printout).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name as the paper spells it.
    pub name: &'static str,
    /// The synthetic analogue graph.
    pub graph: Graph,
    /// Multi-label ground truth, for classification datasets.
    pub labels: Option<Labels>,
    /// `|V|` of the paper's original.
    pub paper_vertices: u64,
    /// `|E|` of the paper's original.
    pub paper_edges: u64,
}

impl Profile {
    /// All nine profiles, in Table 3 order.
    pub const ALL: [Profile; 9] = [
        Profile::BlogCatalog,
        Profile::YouTube,
        Profile::LiveJournal,
        Profile::FriendsterSmall,
        Profile::HyperlinkPld,
        Profile::Friendster,
        Profile::Oag,
        Profile::ClueWebSym,
        Profile::Hyperlink2014Sym,
    ];

    /// The dataset name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Profile::BlogCatalog => "BlogCatalog",
            Profile::YouTube => "YouTube",
            Profile::LiveJournal => "LiveJournal",
            Profile::FriendsterSmall => "Friendster-small",
            Profile::HyperlinkPld => "Hyperlink-PLD",
            Profile::Friendster => "Friendster",
            Profile::Oag => "OAG",
            Profile::ClueWebSym => "ClueWeb-Sym",
            Profile::Hyperlink2014Sym => "Hyperlink2014-Sym",
        }
    }

    /// `(|V|, |E|)` of the paper's original dataset (Table 3).
    pub fn paper_stats(self) -> (u64, u64) {
        match self {
            Profile::BlogCatalog => (10_312, 333_983),
            Profile::YouTube => (1_138_499, 2_990_443),
            Profile::LiveJournal => (4_847_571, 68_993_773),
            Profile::FriendsterSmall => (7_944_949, 447_219_610),
            Profile::HyperlinkPld => (39_497_204, 623_056_313),
            Profile::Friendster => (65_608_376, 1_806_067_142),
            Profile::Oag => (67_768_244, 895_368_962),
            Profile::ClueWebSym => (978_408_098, 74_744_358_622),
            Profile::Hyperlink2014Sym => (1_724_573_718, 124_141_874_032),
        }
    }

    /// Number of classes for classification datasets (None = link
    /// prediction only).
    pub fn num_classes(self) -> Option<usize> {
        match self {
            Profile::BlogCatalog => Some(39),
            Profile::YouTube => Some(47),
            Profile::FriendsterSmall | Profile::Friendster => Some(100),
            Profile::Oag => Some(19),
            _ => None,
        }
    }

    /// Generates the scaled synthetic analogue. `scale` multiplies `|V|`;
    /// average degree follows the paper's `|E|/|V|` ratio, capped at 64 to
    /// keep the densest profiles (Friendster-small, ClueWeb) tractable.
    pub fn generate(self, scale: f64, seed: u64) -> Dataset {
        assert!(scale > 0.0, "scale must be positive");
        let (pv, pe) = self.paper_stats();
        let n = ((pv as f64 * scale) as usize).max(64);
        let avg_degree = (2.0 * pe as f64 / pv as f64).min(64.0);
        let m = (n as f64 * avg_degree / 2.0) as usize;

        let (graph, labels) = match self {
            // Classification datasets: community-labelled SBM.
            Profile::BlogCatalog
            | Profile::YouTube
            | Profile::FriendsterSmall
            | Profile::Friendster
            | Profile::Oag => {
                let communities = self.num_classes().unwrap();
                let cfg = SbmConfig {
                    n,
                    communities,
                    avg_degree,
                    mixing: 0.15,
                    overlap: 0.25,
                    gamma: 2.5,
                };
                let (g, l) = labelled_sbm(&cfg, seed);
                (g, Some(l))
            }
            // Social link-prediction graph: community-structured like the
            // real LiveJournal (its edges are overwhelmingly intra-group),
            // which is what makes held-out edges predictable at all. The
            // ground-truth communities are discarded — the task is link
            // prediction. (A pure Chung–Lu graph has independent edges and
            // no learnable structure beyond degree.)
            Profile::LiveJournal => {
                let communities = (n / 120).clamp(8, u16::MAX as usize - 1);
                let cfg = SbmConfig {
                    n,
                    communities,
                    avg_degree,
                    mixing: 0.10,
                    overlap: 0.15,
                    gamma: 2.5,
                };
                let (g, _labels) = labelled_sbm(&cfg, seed);
                (g, None)
            }
            // Web graphs: R-MAT skew.
            Profile::HyperlinkPld | Profile::ClueWebSym | Profile::Hyperlink2014Sym => {
                let scale_bits = (n as f64).log2().ceil() as u32;
                (rmat(scale_bits, m, RmatParams::default(), seed), None)
            }
        };

        Dataset { name: self.name(), graph, labels, paper_vertices: pv, paper_edges: pe }
    }
}

impl Dataset {
    /// A one-line Table 3-style row: name, synthetic |V|/|E|, paper |V|/|E|.
    pub fn stats_row(&self) -> String {
        format!(
            "{:<18} |V|={:<9} |E|={:<10} (paper: |V|={}, |E|={})",
            self.name,
            self.graph.num_vertices(),
            self.graph.num_edges(),
            self.paper_vertices,
            self.paper_edges
        )
    }
}

/// Convenience: BlogCatalog at its natural size (it is already small).
pub fn blogcatalog(seed: u64) -> Dataset {
    Profile::BlogCatalog.generate(1.0, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_generate_tiny() {
        for p in Profile::ALL {
            let d = p.generate(0.0005, 1);
            assert!(d.graph.num_vertices() >= 64, "{}: too few vertices", d.name);
            assert!(d.graph.num_edges() > 0, "{}: no edges", d.name);
            assert_eq!(d.labels.is_some(), p.num_classes().is_some(), "{}", d.name);
        }
    }

    #[test]
    fn classification_profiles_have_right_class_count() {
        let d = Profile::YouTube.generate(0.002, 2);
        assert_eq!(d.labels.as_ref().unwrap().num_labels(), 47);
        let d = Profile::Oag.generate(0.0002, 2);
        assert_eq!(d.labels.as_ref().unwrap().num_labels(), 19);
    }

    #[test]
    fn blogcatalog_matches_paper_scale() {
        let d = blogcatalog(3);
        assert_eq!(d.graph.num_vertices(), 10_312);
        // Density ratio should approximate the paper's 32.4 edges/vertex.
        let density = d.graph.num_edges() as f64 / d.graph.num_vertices() as f64;
        assert!(density > 20.0 && density < 40.0, "density {density}");
    }

    #[test]
    fn scale_controls_size() {
        let small = Profile::LiveJournal.generate(0.0005, 4);
        let big = Profile::LiveJournal.generate(0.002, 4);
        assert!(big.graph.num_vertices() > 3 * small.graph.num_vertices());
    }

    #[test]
    fn stats_rows_render() {
        let d = blogcatalog(5);
        let row = d.stats_row();
        assert!(row.contains("BlogCatalog"));
        assert!(row.contains("10312") || row.contains("10,312"));
    }
}
