//! Classic random-graph generators.
//!
//! All generators are deterministic in `(parameters, seed)`, parallelize
//! edge generation across independent RNG streams, and return simple
//! undirected [`Graph`]s (self-loops and duplicates removed by the
//! builder), so generated edge counts land slightly below the nominal `m`.

use crate::alias::AliasTable;
use lightne_graph::{Graph, GraphBuilder, VertexId};
use lightne_utils::rng::XorShiftStream;
use rayon::prelude::*;

/// Erdős–Rényi `G(n, m)`: `m` uniformly random edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    let edges = parallel_edges(m, seed, move |rng| {
        (rng.bounded_usize(n) as VertexId, rng.bounded_usize(n) as VertexId)
    });
    GraphBuilder::from_edges(n, &edges)
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `k` existing vertices with probability proportional to degree.
/// Produces a power-law degree distribution with exponent ≈ 3.
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> Graph {
    assert!(n > k && k >= 1, "need n > k >= 1");
    let mut rng = XorShiftStream::new(seed, 0);
    // `targets` holds one entry per edge endpoint; sampling uniformly from
    // it is sampling proportionally to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * k);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * k);
    // Seed clique over the first k+1 vertices.
    for u in 0..=(k as VertexId) {
        for v in 0..u {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in (k + 1)..n {
        for _ in 0..k {
            let t = endpoints[rng.bounded_usize(endpoints.len())];
            edges.push((u as VertexId, t));
            endpoints.push(u as VertexId);
            endpoints.push(t);
        }
    }
    GraphBuilder::from_edges(n, &edges)
}

/// Chung–Lu model with a power-law expected-degree sequence
/// `w_i ∝ (i+1)^{-1/(gamma-1)}`: `m` edges drawn with endpoint
/// probabilities proportional to the weights. `gamma` ≈ 2.2–3 matches
/// social/web graphs.
pub fn chung_lu(n: usize, m: usize, gamma: f64, seed: u64) -> Graph {
    assert!(gamma > 1.0, "gamma must exceed 1");
    let exponent = -1.0 / (gamma - 1.0);
    let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exponent)).collect();
    let table = AliasTable::new(&weights);
    let edges = parallel_edges(m, seed, move |rng| {
        (table.sample(rng) as VertexId, table.sample(rng) as VertexId)
    });
    GraphBuilder::from_edges(n, &edges)
}

/// Parameters of the R-MAT recursive generator.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
}

impl Default for RmatParams {
    /// The classic Graph500 parameters (a=0.57, b=c=0.19, d=0.05).
    fn default() -> Self {
        Self { a: 0.57, b: 0.19, c: 0.19 }
    }
}

/// R-MAT generator: `2^scale` vertices, `m` edges, heavily skewed degree
/// distribution — the standard stand-in for web-scale hyperlink graphs
/// (our ClueWeb / Hyperlink analogues).
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> Graph {
    let n = 1usize << scale;
    let RmatParams { a, b, c } = params;
    assert!(a + b + c < 1.0 + 1e-9, "quadrant probabilities must sum below 1");
    let edges = parallel_edges(m, seed, move |rng| {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r = rng.unit_f64();
            if r < a {
                // top-left: nothing to add
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        (u as VertexId, v as VertexId)
    });
    GraphBuilder::from_edges(n, &edges)
}

/// A ring lattice with `k` neighbors per side, rewired with probability
/// `p` (Watts–Strogatz small world) — used in tests as a well-connected,
/// near-regular graph with a known spectral gap.
pub fn watts_strogatz(n: usize, k: usize, p: f64, seed: u64) -> Graph {
    assert!(k >= 1 && n > 2 * k);
    let mut rng = XorShiftStream::new(seed, 0);
    let mut edges = Vec::with_capacity(n * k);
    for u in 0..n {
        for j in 1..=k {
            let v = (u + j) % n;
            if rng.bernoulli(p) {
                edges.push((u as VertexId, rng.bounded_usize(n) as VertexId));
            } else {
                edges.push((u as VertexId, v as VertexId));
            }
        }
    }
    GraphBuilder::from_edges(n, &edges)
}

/// Generates `m` candidate edges in parallel with per-chunk deterministic
/// RNG streams.
fn parallel_edges<F>(m: usize, seed: u64, f: F) -> Vec<(VertexId, VertexId)>
where
    F: Fn(&mut XorShiftStream) -> (VertexId, VertexId) + Sync + Send,
{
    const CHUNK: usize = 1 << 14;
    let nchunks = m.div_ceil(CHUNK).max(1);
    (0..nchunks)
        .into_par_iter()
        .flat_map_iter(|c| {
            let mut rng = XorShiftStream::new(seed, c as u64);
            let count = CHUNK.min(m - c * CHUNK);
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                out.push(f(&mut rng));
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_basic_shape() {
        let g = erdos_renyi(1000, 5000, 1);
        assert_eq!(g.num_vertices(), 1000);
        // Some loss to dedup/self-loops, but most edges survive.
        assert!(g.num_edges() > 4800 && g.num_edges() <= 5000, "{}", g.num_edges());
    }

    #[test]
    fn erdos_renyi_deterministic() {
        assert_eq!(erdos_renyi(100, 500, 7), erdos_renyi(100, 500, 7));
        assert_ne!(erdos_renyi(100, 500, 7), erdos_renyi(100, 500, 8));
    }

    #[test]
    fn barabasi_albert_power_law_hubs() {
        let g = barabasi_albert(2000, 3, 2);
        assert_eq!(g.num_vertices(), 2000);
        // Preferential attachment must create hubs far above the mean.
        let mean = g.num_arcs() as f64 / 2000.0;
        assert!(g.max_degree() as f64 > 8.0 * mean, "max degree {} vs mean {mean}", g.max_degree());
        // Every non-seed vertex attaches to >= 1 distinct target.
        for v in 0..2000u32 {
            assert!(g.degree(v) >= 1, "vertex {v} isolated");
        }
    }

    #[test]
    fn chung_lu_respects_weight_skew() {
        let g = chung_lu(1000, 20_000, 2.2, 3);
        // Vertex 0 has the largest expected degree.
        let d0 = g.degree(0);
        let d_tail = g.degree(900);
        assert!(d0 > 5 * d_tail.max(1), "d0={d0}, d900={d_tail}");
    }

    #[test]
    fn rmat_shape_and_skew() {
        let g = rmat(12, 40_000, RmatParams::default(), 4);
        assert_eq!(g.num_vertices(), 1 << 12);
        let mean = g.num_arcs() as f64 / g.num_vertices() as f64;
        assert!(g.max_degree() as f64 > 10.0 * mean, "rmat should be skewed");
    }

    #[test]
    fn watts_strogatz_no_rewire_is_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 5);
        for v in 0..20u32 {
            assert_eq!(g.degree(v), 4, "vertex {v}");
        }
    }

    #[test]
    fn generators_have_no_self_loops() {
        for g in [
            erdos_renyi(200, 1000, 1),
            barabasi_albert(200, 2, 1),
            chung_lu(200, 1000, 2.5, 1),
            rmat(8, 1000, RmatParams::default(), 1),
        ] {
            for v in 0..g.num_vertices() as u32 {
                assert!(!g.neighbors(v).contains(&v), "self-loop at {v}");
            }
        }
    }
}
