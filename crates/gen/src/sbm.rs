//! Labelled stochastic block model (LFR-lite) — the workload generator
//! behind every node-classification experiment in the reproduction.
//!
//! Real classification benchmarks couple three properties: power-law
//! degrees, overlapping community structure, and labels that *are* the
//! communities (so that embeddings which capture structure can predict
//! them). This generator reproduces all three:
//!
//! 1. community sizes follow a Zipf law;
//! 2. each vertex joins one primary community and, with probability
//!    `overlap`, extra ones — memberships are the multi-label ground truth;
//! 3. every vertex has a power-law "activity" weight, and edges pick
//!    their endpoints activity-weighted — `1 - mixing` of them inside a
//!    community, `mixing` of them as global background noise.

use crate::alias::AliasTable;
use crate::labels::Labels;
use lightne_graph::{Graph, GraphBuilder, VertexId};
use lightne_utils::rng::XorShiftStream;
use rayon::prelude::*;

/// Parameters of the labelled SBM.
#[derive(Debug, Clone, Copy)]
pub struct SbmConfig {
    /// Number of vertices.
    pub n: usize,
    /// Number of communities (= number of classes).
    pub communities: usize,
    /// Average vertex degree (so `m ≈ n·avg_degree/2`).
    pub avg_degree: f64,
    /// Fraction of edges drawn as global background noise (0 = pure
    /// communities, 1 = no community signal).
    pub mixing: f64,
    /// Probability that a vertex joins one additional community (applied
    /// twice, so memberships are 1–3 per vertex).
    pub overlap: f64,
    /// Power-law exponent of the activity weights (≈ 2.2–3).
    pub gamma: f64,
}

impl Default for SbmConfig {
    fn default() -> Self {
        Self { n: 10_000, communities: 40, avg_degree: 30.0, mixing: 0.2, overlap: 0.2, gamma: 2.5 }
    }
}

/// Generates a graph with multi-label community ground truth.
///
/// ```
/// use lightne_gen::sbm::{labelled_sbm, SbmConfig};
/// let cfg = SbmConfig { n: 500, communities: 4, ..Default::default() };
/// let (graph, labels) = labelled_sbm(&cfg, 42);
/// assert_eq!(graph.num_vertices(), 500);
/// assert_eq!(labels.num_labels(), 4);
/// assert!(labels.labelled_vertices().len() == 500);
/// ```
pub fn labelled_sbm(cfg: &SbmConfig, seed: u64) -> (Graph, Labels) {
    assert!(cfg.communities >= 1 && cfg.communities <= u16::MAX as usize);
    assert!((0.0..=1.0).contains(&cfg.mixing) && (0.0..=1.0).contains(&cfg.overlap));
    let n = cfg.n;
    let k = cfg.communities;

    // Zipf community weights; membership assignment.
    let comm_weights: Vec<f64> = (0..k).map(|i| 1.0 / (i + 1) as f64).collect();
    let comm_table = AliasTable::new(&comm_weights);
    let mut rng = XorShiftStream::new(seed, 0);
    let mut memberships: Vec<Vec<u16>> = Vec::with_capacity(n);
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); k];
    for v in 0..n {
        let mut ls = vec![comm_table.sample(&mut rng) as u16];
        for _ in 0..2 {
            if rng.bernoulli(cfg.overlap) {
                ls.push(comm_table.sample(&mut rng) as u16);
            }
        }
        ls.sort_unstable();
        ls.dedup();
        for &c in &ls {
            members[c as usize].push(v as VertexId);
        }
        memberships.push(ls);
    }

    // Power-law activity weights.
    let exponent = -1.0 / (cfg.gamma - 1.0);
    let activity: Vec<f64> = {
        // Shuffle the ranks so hub vertices are spread across communities.
        let mut ranks: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.bounded_usize(i + 1);
            ranks.swap(i, j);
        }
        ranks.into_iter().map(|r| ((r + 1) as f64).powf(exponent)).collect()
    };

    // Per-community alias tables over member activity.
    let comm_tables: Vec<Option<AliasTable>> = members
        .par_iter()
        .map(|ms| {
            if ms.len() < 2 {
                None
            } else {
                Some(AliasTable::new(&ms.iter().map(|&v| activity[v as usize]).collect::<Vec<_>>()))
            }
        })
        .collect();
    let global_table = AliasTable::new(&activity);

    // Edge budget per community, proportional to total member activity.
    let m_total = (n as f64 * cfg.avg_degree / 2.0) as usize;
    let m_background = (m_total as f64 * cfg.mixing) as usize;
    let m_intra = m_total - m_background;
    let comm_activity: Vec<f64> =
        members.iter().map(|ms| ms.iter().map(|&v| activity[v as usize]).sum::<f64>()).collect();
    let total_activity: f64 = comm_activity.iter().sum();

    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(m_total);
    // Intra-community edges.
    for c in 0..k {
        let Some(table) = &comm_tables[c] else { continue };
        let quota = (m_intra as f64 * comm_activity[c] / total_activity).round() as usize;
        let ms = &members[c];
        for _ in 0..quota {
            let u = ms[table.sample(&mut rng)];
            let v = ms[table.sample(&mut rng)];
            edges.push((u, v));
        }
    }
    // Background noise edges.
    for _ in 0..m_background {
        edges.push((
            global_table.sample(&mut rng) as VertexId,
            global_table.sample(&mut rng) as VertexId,
        ));
    }

    let graph = GraphBuilder::from_edges(n, &edges);
    (graph, Labels::new(k, memberships))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SbmConfig {
        SbmConfig {
            n: 2000,
            communities: 10,
            avg_degree: 20.0,
            mixing: 0.1,
            overlap: 0.2,
            gamma: 2.5,
        }
    }

    #[test]
    fn shape_is_as_configured() {
        let (g, labels) = labelled_sbm(&small_cfg(), 1);
        assert_eq!(g.num_vertices(), 2000);
        assert_eq!(labels.num_vertices(), 2000);
        assert_eq!(labels.num_labels(), 10);
        let m = g.num_edges() as f64;
        assert!(m > 15_000.0 && m < 20_500.0, "m = {m}");
    }

    #[test]
    fn every_vertex_labelled() {
        let (_, labels) = labelled_sbm(&small_cfg(), 2);
        assert_eq!(labels.labelled_vertices().len(), 2000);
        assert!(labels.mean_labels() >= 1.0 && labels.mean_labels() <= 3.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let (g1, l1) = labelled_sbm(&small_cfg(), 3);
        let (g2, l2) = labelled_sbm(&small_cfg(), 3);
        assert_eq!(g1, g2);
        assert_eq!(l1, l2);
    }

    #[test]
    fn community_signal_present() {
        // Edges should fall inside a shared community far more often than
        // the mixing rate alone would produce.
        let (g, labels) = labelled_sbm(&small_cfg(), 4);
        let mut intra = 0usize;
        let mut total = 0usize;
        for u in 0..g.num_vertices() as u32 {
            for &v in g.neighbors(u) {
                if u < v {
                    total += 1;
                    if labels.of(u as usize).iter().any(|l| labels.has(v as usize, *l)) {
                        intra += 1;
                    }
                }
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.7, "intra-community edge fraction only {frac}");
    }

    #[test]
    fn mixing_one_destroys_signal() {
        let cfg = SbmConfig { mixing: 1.0, ..small_cfg() };
        let (g, labels) = labelled_sbm(&cfg, 5);
        let mut intra = 0usize;
        let mut total = 0usize;
        for u in 0..g.num_vertices() as u32 {
            for &v in g.neighbors(u) {
                if u < v {
                    total += 1;
                    if labels.of(u as usize).iter().any(|l| labels.has(v as usize, *l)) {
                        intra += 1;
                    }
                }
            }
        }
        // With ~10 Zipf communities, random coincidence is sizable but far
        // below the structured case.
        let frac = intra as f64 / total as f64;
        assert!(frac < 0.55, "background edges look structured: {frac}");
    }

    #[test]
    fn degrees_are_skewed() {
        let (g, _) = labelled_sbm(&small_cfg(), 6);
        let mean = g.num_arcs() as f64 / g.num_vertices() as f64;
        assert!(g.max_degree() as f64 > 5.0 * mean);
    }
}
