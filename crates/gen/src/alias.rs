//! Walker's alias method for O(1) weighted sampling.
//!
//! The Chung–Lu generator and the DeepWalk baseline's negative sampler
//! both need millions of draws from a fixed discrete distribution; the
//! alias table gives each draw in constant time after O(n) setup.

use lightne_utils::rng::XorShiftStream;

/// A pre-processed discrete distribution supporting O(1) sampling.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (not necessarily
    /// normalized).
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        assert!(n <= u32::MAX as usize);

        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];

        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            let leftover = prob[l as usize] + prob[s as usize] - 1.0;
            prob[l as usize] = leftover;
            if leftover < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers land exactly at 1.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Draws an index distributed according to the weights.
    #[inline]
    pub fn sample(&self, rng: &mut XorShiftStream) -> usize {
        let i = rng.bounded_usize(self.prob.len());
        if rng.unit_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true — construction requires a
    /// non-empty weight vector; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let t = AliasTable::new(weights);
        let mut rng = XorShiftStream::new(seed, 0);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights() {
        let freq = empirical(&[1.0, 1.0, 1.0, 1.0], 200_000, 1);
        for f in freq {
            assert!((f - 0.25).abs() < 0.01, "{f}");
        }
    }

    #[test]
    fn skewed_weights() {
        let freq = empirical(&[8.0, 1.0, 1.0], 300_000, 2);
        assert!((freq[0] - 0.8).abs() < 0.01, "{}", freq[0]);
        assert!((freq[1] - 0.1).abs() < 0.01, "{}", freq[1]);
    }

    #[test]
    fn zero_weight_outcome_never_drawn() {
        let freq = empirical(&[1.0, 0.0, 1.0], 100_000, 3);
        assert_eq!(freq[1], 0.0);
    }

    #[test]
    fn unnormalized_input_ok() {
        let a = empirical(&[2.0, 6.0], 200_000, 4);
        assert!((a[0] - 0.25).abs() < 0.01);
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[42.0]);
        let mut rng = XorShiftStream::new(5, 0);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_rejected() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn all_zero_rejected() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn power_law_distribution_tail() {
        // Zipf-ish weights: empirical frequency must be monotone.
        let weights: Vec<f64> = (1..=50).map(|i| 1.0 / i as f64).collect();
        let freq = empirical(&weights, 500_000, 6);
        assert!(freq[0] > freq[10] && freq[10] > freq[40]);
    }
}
