//! Property tests for the evaluation metrics: randomized inputs checked
//! against tiny brute-force oracles, plus the degenerate inputs
//! (single-class labels, all-tied scores, empty test split) that a
//! protocol implementation must survive without panicking or emitting NaN.
//!
//! Everything is seeded through [`XorShiftStream`]; no ambient randomness.

use lightne_eval::classify::{evaluate_classification_report, f1_scores, TrainConfig};
use lightne_eval::metrics::{average_ranks, precision_at_k, roc_auc, spearman};
use lightne_gen::Labels;
use lightne_linalg::DenseMatrix;
use lightne_utils::rng::XorShiftStream;

/// O(P*N) pairwise ROC-AUC: wins + half-credit ties over all
/// positive/negative pairs. The library computes the same quantity via
/// the Mann-Whitney rank-sum identity; the two must agree to float
/// round-off on every input.
fn auc_oracle(scores: &[f64], labels: &[bool]) -> f64 {
    let pos: Vec<f64> = scores.iter().zip(labels).filter(|(_, &l)| l).map(|(&s, _)| s).collect();
    let neg: Vec<f64> = scores.iter().zip(labels).filter(|(_, &l)| !l).map(|(&s, _)| s).collect();
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    let mut credit = 0.0;
    for &p in &pos {
        for &n in &neg {
            if p > n {
                credit += 1.0;
            } else if p == n {
                credit += 0.5;
            }
        }
    }
    credit / (pos.len() * neg.len()) as f64
}

#[test]
fn roc_auc_matches_pairwise_oracle_on_random_inputs() {
    let mut rng = XorShiftStream::new(0xA0C, 0);
    for trial in 0..200 {
        let n = 2 + rng.bounded_usize(40);
        // Quantized scores so ties actually occur.
        let scores: Vec<f64> = (0..n).map(|_| rng.bounded(8) as f64).collect();
        let labels: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.4)).collect();
        let got = roc_auc(&scores, &labels);
        let want = auc_oracle(&scores, &labels);
        assert!((got - want).abs() < 1e-12, "trial {trial}: got {got}, oracle {want}");
        assert!(got.is_finite());
    }
}

#[test]
fn roc_auc_degenerate_inputs_are_half() {
    // Single-class label vectors and the empty input have no ranking
    // information: chance AUC, not NaN and not a panic.
    assert_eq!(roc_auc(&[1.0, 2.0, 3.0], &[true, true, true]), 0.5);
    assert_eq!(roc_auc(&[1.0, 2.0, 3.0], &[false, false, false]), 0.5);
    assert_eq!(roc_auc(&[], &[]), 0.5);
    // All-tied scores: every positive/negative pair is a half-credit tie.
    let auc = roc_auc(&[7.0; 6], &[true, false, true, false, false, true]);
    assert!((auc - 0.5).abs() < 1e-12, "all-tied AUC {auc}");
}

/// Definitional micro/macro F1 from per-class precision/recall, written
/// independently of the library's TP/FP/FN counting.
fn f1_oracle(num_labels: usize, truth: &[&[u16]], predicted: &[Vec<u16>]) -> (f64, f64) {
    let mut micro_tp = 0.0;
    let mut micro_pred = 0.0;
    let mut micro_truth = 0.0;
    let mut macro_sum = 0.0;
    let mut macro_n = 0usize;
    for l in 0..num_labels as u16 {
        let tp =
            truth.iter().zip(predicted).filter(|(t, p)| t.contains(&l) && p.contains(&l)).count()
                as f64;
        let n_pred = predicted.iter().filter(|p| p.contains(&l)).count() as f64;
        let n_truth = truth.iter().filter(|t| t.contains(&l)).count() as f64;
        micro_tp += tp;
        micro_pred += n_pred;
        micro_truth += n_truth;
        if n_truth > 0.0 {
            let (prec, rec) = (if n_pred == 0.0 { 0.0 } else { tp / n_pred }, tp / n_truth);
            macro_sum += if prec + rec == 0.0 { 0.0 } else { 2.0 * prec * rec / (prec + rec) };
            macro_n += 1;
        }
    }
    let (prec, rec) = (
        if micro_pred == 0.0 { 0.0 } else { micro_tp / micro_pred },
        if micro_truth == 0.0 { 0.0 } else { micro_tp / micro_truth },
    );
    let micro = if prec + rec == 0.0 { 0.0 } else { 2.0 * prec * rec / (prec + rec) };
    let macro_ = if macro_n == 0 { 0.0 } else { macro_sum / macro_n as f64 };
    (100.0 * micro, 100.0 * macro_)
}

#[test]
fn f1_scores_match_definitional_oracle_on_random_label_sets() {
    let mut rng = XorShiftStream::new(0xF1, 1);
    for trial in 0..100 {
        let num_labels = 1 + rng.bounded_usize(6);
        let n = 1 + rng.bounded_usize(20);
        let draw = |rng: &mut XorShiftStream| -> Vec<u16> {
            let mut set: Vec<u16> =
                (0..num_labels as u16).filter(|_| rng.bernoulli(0.35)).collect();
            set.sort_unstable();
            set
        };
        let truth_owned: Vec<Vec<u16>> = (0..n).map(|_| draw(&mut rng)).collect();
        let truth: Vec<&[u16]> = truth_owned.iter().map(|t| t.as_slice()).collect();
        let predicted: Vec<Vec<u16>> = (0..n).map(|_| draw(&mut rng)).collect();
        let got = f1_scores(num_labels, &truth, &predicted);
        let (micro, macro_) = f1_oracle(num_labels, &truth, &predicted);
        assert!((got.micro - micro).abs() < 1e-9, "trial {trial}: micro {} vs {micro}", got.micro);
        assert!(
            (got.macro_ - macro_).abs() < 1e-9,
            "trial {trial}: macro {} vs {macro_}",
            got.macro_
        );
        assert!(got.micro.is_finite() && got.macro_.is_finite());
    }
}

#[test]
fn f1_single_class_and_empty_truth_do_not_blow_up() {
    // Single class everywhere: perfect prediction is 100/100.
    let truth: Vec<&[u16]> = vec![&[0], &[0], &[0]];
    let predicted = vec![vec![0], vec![0], vec![0]];
    let f1 = f1_scores(1, &truth, &predicted);
    assert_eq!((f1.micro, f1.macro_), (100.0, 100.0));
    // Nothing true and nothing predicted: defined as zero, not NaN.
    let truth: Vec<&[u16]> = vec![&[], &[]];
    let f1 = f1_scores(3, &truth, &[vec![], vec![]]);
    assert_eq!((f1.micro, f1.macro_), (0.0, 0.0));
}

#[test]
fn precision_at_k_matches_counting_oracle() {
    let mut rng = XorShiftStream::new(0x9A7, 2);
    for _ in 0..100 {
        let classes = 1 + rng.bounded_usize(8);
        let mut ranked: Vec<u16> = (0..classes as u16).collect();
        for i in (1..ranked.len()).rev() {
            let j = rng.bounded_usize(i + 1);
            ranked.swap(i, j);
        }
        let relevant: Vec<u16> = (0..classes as u16).filter(|_| rng.bernoulli(0.5)).collect();
        for k in 0..=classes + 2 {
            let got = precision_at_k(&ranked, &relevant, k);
            let hits = ranked.iter().take(k).filter(|c| relevant.contains(c)).count() as f64;
            let want = if k == 0 { 0.0 } else { hits / k as f64 };
            assert!((got - want).abs() < 1e-12, "k={k}: got {got}, want {want}");
        }
    }
}

#[test]
fn spearman_matches_rank_pearson_oracle() {
    let mut rng = XorShiftStream::new(0x5EA, 3);
    for _ in 0..50 {
        let n = 3 + rng.bounded_usize(30);
        let xs: Vec<f64> = (0..n).map(|_| rng.bounded(10) as f64).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.bounded(10) as f64).collect();
        let got = spearman(&xs, &ys);
        // Oracle: plain Pearson on tie-averaged ranks, written out longhand.
        let (rx, ry) = (average_ranks(&xs), average_ranks(&ys));
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mx, my) = (mean(&rx), mean(&ry));
        let cov: f64 = rx.iter().zip(&ry).map(|(a, b)| (a - mx) * (b - my)).sum();
        let (vx, vy): (f64, f64) =
            (rx.iter().map(|a| (a - mx).powi(2)).sum(), ry.iter().map(|b| (b - my).powi(2)).sum());
        let want = if vx == 0.0 || vy == 0.0 { 0.0 } else { cov / (vx * vy).sqrt() };
        assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        assert!(got.is_finite() && (-1.0..=1.0).contains(&got));
    }
}

#[test]
fn classification_report_with_empty_test_split_reports_zeros() {
    // One labelled vertex cannot be split into train AND test: the
    // protocol must report zeros, not panic on an empty test set.
    let labels = Labels::new(2, vec![vec![0], vec![], vec![]]);
    let embedding = DenseMatrix::zeros(3, 4);
    let report = evaluate_classification_report(
        &embedding,
        &labels,
        0.5,
        7,
        &TrainConfig::default(),
        &[1, 3],
    );
    assert_eq!((report.f1.micro, report.f1.macro_), (0.0, 0.0));
    assert_eq!(report.precision_at, vec![(1, 0.0), (3, 0.0)]);
}
