//! Scalar ranking metrics shared by the evaluation protocols.
//!
//! All functions are total on degenerate input: single-class label sets,
//! all-tied scores and empty slices return the metric's natural neutral
//! value (chance-level AUC, zero correlation, zero precision) instead of
//! panicking or producing NaN.

/// 1-based average ranks of `values` in ascending order; exact ties share
/// the mean of the rank positions they occupy (the Mann-Whitney / Spearman
/// convention). NaNs order via `total_cmp` so the ranking is always total.
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// ROC-AUC of `scores` against boolean `labels` via the rank-sum
/// (Mann-Whitney U) identity, with half credit for tied scores. Returns
/// 0.5 when one class is absent (no ranking question exists).
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&b| b).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let ranks = average_ranks(scores);
    let rank_sum: f64 = ranks.iter().zip(labels).filter(|&(_, &b)| b).map(|(&r, _)| r).sum();
    (rank_sum - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va * vb).sqrt()
}

/// Spearman rank correlation: Pearson correlation of the tie-averaged
/// ranks. Returns 0.0 for constant inputs or fewer than two points.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.len() < 2 {
        return 0.0;
    }
    pearson(&average_ranks(a), &average_ranks(b))
}

/// Precision@K: the fraction of the first `k` entries of the ranked
/// prediction that appear in the (unordered) relevant set. `k = 0` and
/// empty predictions score 0.0.
pub fn precision_at_k(ranked: &[u16], relevant: &[u16], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranked.iter().take(k).filter(|l| relevant.contains(l)).count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_without_ties_are_positions() {
        assert_eq!(average_ranks(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn tied_ranks_share_the_average() {
        // Sorted: 1, 2, 2, 3 → tied pair occupies positions 2 and 3.
        assert_eq!(average_ranks(&[2.0, 1.0, 3.0, 2.0]), vec![2.5, 1.0, 4.0, 2.5]);
    }

    #[test]
    fn auc_separable_and_inverted() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        assert_eq!(roc_auc(&scores, &[false, false, true, true]), 1.0);
        assert_eq!(roc_auc(&scores, &[true, true, false, false]), 0.0);
    }

    #[test]
    fn auc_all_tied_is_half() {
        let scores = [3.0; 6];
        let labels = [true, false, true, false, false, true];
        assert_eq!(roc_auc(&scores, &labels), 0.5);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[1.0, 2.0], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[1.0, 2.0], &[false, false]), 0.5);
        assert_eq!(roc_auc(&[], &[]), 0.5);
    }

    #[test]
    fn spearman_monotone_and_inverted() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((spearman(&a, &[10.0, 20.0, 25.0, 90.0]) - 1.0).abs() < 1e-12);
        assert!((spearman(&a, &[4.0, 3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_constant_input_is_zero() {
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(spearman(&[5.0], &[7.0]), 0.0);
    }

    #[test]
    fn precision_at_k_hand_cases() {
        let ranked = [3u16, 1, 4, 2];
        assert_eq!(precision_at_k(&ranked, &[3, 2], 1), 1.0);
        assert_eq!(precision_at_k(&ranked, &[3, 2], 2), 0.5);
        assert_eq!(precision_at_k(&ranked, &[3, 2], 4), 0.5);
        assert_eq!(precision_at_k(&ranked, &[9], 4), 0.0);
        assert_eq!(precision_at_k(&ranked, &[3], 0), 0.0);
        assert_eq!(precision_at_k(&[], &[3], 2), 0.0);
    }
}
