//! Link prediction: the held-out edge ranking protocol.
//!
//! Following PyTorch-BigGraph (and Section 5.3 of the paper): a fraction
//! of edges is removed from the training graph; after embedding, each
//! held-out positive `(u, v)` is scored by the dot product of its endpoint
//! embeddings and ranked against `num_negatives` corrupted edges
//! `(u, v')` with uniformly resampled targets. Reported metrics: MR
//! (mean rank), MRR (mean reciprocal rank), HITS@K, plus ROC-AUC over
//! positive/negative scores for the GraphVite comparison (Section 5.2.2).

use lightne_graph::{Graph, GraphBuilder, GraphOps, VertexId};
use lightne_linalg::DenseMatrix;
use lightne_utils::rng::XorShiftStream;
use rayon::prelude::*;

/// Ranking metrics of a link-prediction run.
#[derive(Debug, Clone)]
pub struct LinkPredMetrics {
    /// Mean rank of the positive among its negatives (1 = best).
    pub mr: f64,
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// `(K, HITS@K)` pairs in the order requested.
    pub hits: Vec<(usize, f64)>,
    /// ROC-AUC over positive vs negative scores.
    pub auc: f64,
}

/// Removes ~`holdout · m` edges from `g`, returning the training graph
/// and the held-out positives. Edges whose removal would isolate an
/// endpoint (degree 1) are kept in training, matching the usual protocol.
///
/// Generic over [`GraphOps`] so the split is taken identically on the
/// CSR, v1-compressed and v2-compressed backends: every backend visits
/// each vertex's neighbours in the same ascending order, and the single
/// sequential RNG consumes one coin per undirected edge in that order.
pub fn split_edges<G: GraphOps>(
    g: &G,
    holdout: f64,
    seed: u64,
) -> (Graph, Vec<(VertexId, VertexId)>) {
    assert!(holdout > 0.0 && holdout < 1.0);
    let mut rng = XorShiftStream::new(seed, 0);
    let mut held = Vec::new();
    let mut kept = Vec::new();
    let mut deg: Vec<usize> = (0..g.num_vertices()).map(|v| g.degree(v as VertexId)).collect();
    for u in 0..g.num_vertices() as VertexId {
        g.for_each_neighbor(u, &mut |v| {
            if u < v {
                if rng.bernoulli(holdout) && deg[u as usize] > 1 && deg[v as usize] > 1 {
                    held.push((u, v));
                    deg[u as usize] -= 1;
                    deg[v as usize] -= 1;
                } else {
                    kept.push((u, v));
                }
            }
        });
    }
    (GraphBuilder::from_edges(g.num_vertices(), &kept), held)
}

#[inline]
fn score(x: &DenseMatrix, u: VertexId, v: VertexId) -> f64 {
    x.row(u as usize).iter().zip(x.row(v as usize)).map(|(&a, &b)| a as f64 * b as f64).sum()
}

/// Ranks each positive against corrupted negatives and computes the
/// metrics. `hits_at` lists the `K` values to report.
///
/// Degenerate inputs are well-defined rather than panics: an empty
/// positive set reports zero ranks and chance-level AUC, and a graph too
/// small to corrupt (`n <= 2`, where every redraw collides with the
/// positive pair) yields zero negatives per edge and chance-level AUC.
pub fn rank_held_out(
    embedding: &DenseMatrix,
    positives: &[(VertexId, VertexId)],
    num_negatives: usize,
    hits_at: &[usize],
    seed: u64,
) -> LinkPredMetrics {
    if positives.is_empty() {
        return LinkPredMetrics {
            mr: 0.0,
            mrr: 0.0,
            hits: hits_at.iter().map(|&k| (k, 0.0)).collect(),
            auc: 0.5,
        };
    }
    let n = embedding.rows();
    let per_edge: Vec<(f64, f64, Vec<bool>, u64, u64, u64)> = positives
        .par_iter()
        .enumerate()
        .map(|(i, &(u, v))| {
            let mut rng = XorShiftStream::new(seed, i as u64);
            let pos = score(embedding, u, v);
            let mut rank = 1usize;
            let mut auc_wins = 0u64;
            let mut ties = 0u64;
            let mut drawn = 0u64;
            while n > 2 && drawn < num_negatives as u64 {
                let v_neg = rng.bounded_usize(n) as VertexId;
                // A "corrupted" edge equal to the positive (or a self-loop)
                // is not a negative; redraw.
                if v_neg == v || v_neg == u {
                    continue;
                }
                drawn += 1;
                let s = score(embedding, u, v_neg);
                if s > pos {
                    rank += 1;
                } else if s < pos {
                    auc_wins += 1;
                } else {
                    // Exact ties (all-equal scores, zero embeddings) take
                    // the Mann-Whitney half credit instead of silently
                    // counting against the AUC; the optimistic rank is
                    // unchanged.
                    ties += 1;
                }
            }
            let hit: Vec<bool> = hits_at.iter().map(|&k| rank <= k).collect();
            (rank as f64, 1.0 / rank as f64, hit, auc_wins, ties, drawn)
        })
        .collect();

    let n_pos = per_edge.len() as f64;
    let mr = per_edge.iter().map(|e| e.0).sum::<f64>() / n_pos;
    let mrr = per_edge.iter().map(|e| e.1).sum::<f64>() / n_pos;
    let hits = hits_at
        .iter()
        .enumerate()
        .map(|(ki, &k)| {
            let rate = per_edge.iter().filter(|e| e.2[ki]).count() as f64 / n_pos;
            (k, rate)
        })
        .collect();
    let wins: u64 = per_edge.iter().map(|e| e.3).sum();
    let ties: u64 = per_edge.iter().map(|e| e.4).sum();
    let trials: u64 = per_edge.iter().map(|e| e.5).sum();
    let auc = if trials == 0 { 0.5 } else { (wins as f64 + 0.5 * ties as f64) / trials as f64 };
    LinkPredMetrics { mr, mrr, hits, auc }
}

/// HITS@K convenience accessor.
impl LinkPredMetrics {
    /// Returns HITS@K if it was requested.
    pub fn hits_at(&self, k: usize) -> Option<f64> {
        self.hits.iter().find(|&&(kk, _)| kk == k).map(|&(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_gen::generators::erdos_renyi;

    #[test]
    fn split_partitions_edges() {
        let g = erdos_renyi(200, 2000, 1);
        let (train, held) = split_edges(&g, 0.1, 2);
        assert_eq!(train.num_edges() + held.len(), g.num_edges());
        // Held-out edges are absent from the training graph.
        for &(u, v) in &held {
            assert!(!train.has_edge(u, v));
            assert!(g.has_edge(u, v));
        }
        let frac = held.len() as f64 / g.num_edges() as f64;
        assert!((frac - 0.1).abs() < 0.03, "holdout fraction {frac}");
    }

    #[test]
    fn split_never_isolates_vertices() {
        let g = erdos_renyi(100, 300, 3);
        let (train, _) = split_edges(&g, 0.5, 4);
        for v in 0..100u32 {
            if g.degree(v) > 0 {
                assert!(train.degree(v) >= 1, "vertex {v} isolated by split");
            }
        }
    }

    #[test]
    fn perfect_embedding_ranks_first() {
        // Construct an embedding where each positive pair shares a huge
        // coordinate no other vertex has.
        let n = 50;
        let mut emb = DenseMatrix::zeros(n, 8);
        let positives: Vec<(u32, u32)> = vec![(0, 1), (2, 3), (4, 5)];
        for (k, &(u, v)) in positives.iter().enumerate() {
            emb.set(u as usize, k, 10.0);
            emb.set(v as usize, k, 10.0);
        }
        let m = rank_held_out(&emb, &positives, 100, &[1, 10], 7);
        assert_eq!(m.mr, 1.0);
        assert_eq!(m.mrr, 1.0);
        assert_eq!(m.hits_at(1), Some(1.0));
        assert!(m.auc > 0.99);
    }

    #[test]
    fn random_embedding_near_chance() {
        let emb = DenseMatrix::gaussian(200, 8, 5);
        let positives: Vec<(u32, u32)> = (0..50).map(|i| (i, i + 100)).collect();
        let m = rank_held_out(&emb, &positives, 99, &[1, 10, 50], 8);
        // Expected rank with 99 random negatives ≈ 50.5.
        assert!(m.mr > 30.0 && m.mr < 70.0, "mr {}", m.mr);
        assert!((m.auc - 0.5).abs() < 0.1, "auc {}", m.auc);
        let h50 = m.hits_at(50).unwrap();
        assert!((h50 - 0.5).abs() < 0.2, "hits@50 {h50}");
    }

    #[test]
    fn auc_matches_hand_computation_on_planted_scores() {
        // Embedding: vertex i has value i on one axis; positive edges pair
        // high-value vertices, so score(u,·) ranks targets by their value.
        // For positive (u, v) with v's value above exactly q of the
        // candidate values, AUC per edge = q / (n-2 candidates)… rather
        // than derive exactly, plant a *perfectly separable* case and a
        // *perfectly inverted* case and check 1.0 / 0.0.
        let n = 40;
        let mut emb = DenseMatrix::zeros(n, 1);
        for i in 0..n {
            emb.set(i, 0, i as f32);
        }
        // Positive (1, 39): score = 39; negatives (1, v) score v < 39 for
        // all v ≠ 39 → AUC 1.0 and rank 1.
        let best = rank_held_out(&emb, &[(1, 39)], 200, &[1], 3);
        assert_eq!(best.mr, 1.0);
        assert!((best.auc - 1.0).abs() < 1e-12);
        // Positive (1, 0): score = 0; every negative scores higher → AUC 0.
        let worst = rank_held_out(&emb, &[(1, 0)], 200, &[1], 3);
        assert!((worst.auc - 0.0).abs() < 1e-12);
        assert!(worst.mr > 100.0);
    }

    #[test]
    fn hits_at_unrequested_k_is_none() {
        let emb = DenseMatrix::gaussian(50, 4, 7);
        let m = rank_held_out(&emb, &[(0, 1)], 10, &[5], 8);
        assert!(m.hits_at(5).is_some());
        assert!(m.hits_at(10).is_none());
    }

    #[test]
    fn metrics_are_deterministic() {
        let emb = DenseMatrix::gaussian(100, 4, 6);
        let pos: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        let a = rank_held_out(&emb, &pos, 50, &[10], 9);
        let b = rank_held_out(&emb, &pos, 50, &[10], 9);
        assert_eq!(a.mr, b.mr);
        assert_eq!(a.auc, b.auc);
    }
}
