//! Multi-label node classification on frozen embeddings.
//!
//! The standard protocol of the network-embedding literature (used by
//! DeepWalk, NetMF, NetSMF, GraphVite and this paper): train one-vs-rest
//! logistic regression on a random fraction of labelled vertices, then for
//! each test vertex predict exactly as many labels as it truly has (the
//! "known k" convention) and score Micro-F1 (global counts) and Macro-F1
//! (per-class average).

use lightne_gen::Labels;
use lightne_linalg::DenseMatrix;
use lightne_utils::rng::XorShiftStream;
use rayon::prelude::*;

/// Micro and Macro F1 scores, in percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F1Scores {
    /// Micro-averaged F1 (%): global TP/FP/FN.
    pub micro: f64,
    /// Macro-averaged F1 (%): unweighted mean of per-class F1.
    pub macro_: f64,
}

/// Training hyper-parameters for the one-vs-rest logistic regression.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Full-batch gradient steps.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 100, lr: 0.5, l2: 1e-4 }
    }
}

/// A trained one-vs-rest logistic regression model.
#[derive(Debug, Clone)]
pub struct OneVsRest {
    /// Weights: `num_labels × (d + 1)` (last column is the bias).
    weights: Vec<Vec<f64>>,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl OneVsRest {
    /// Trains per-class binary classifiers on the given vertices.
    pub fn train(
        embedding: &DenseMatrix,
        labels: &Labels,
        train_vertices: &[usize],
        cfg: &TrainConfig,
    ) -> Self {
        let d = embedding.cols();
        let n = train_vertices.len().max(1);
        let weights: Vec<Vec<f64>> = (0..labels.num_labels() as u16)
            .into_par_iter()
            .map(|class| {
                let mut w = vec![0.0f64; d + 1];
                let targets: Vec<f64> = train_vertices
                    .iter()
                    .map(|&v| if labels.has(v, class) { 1.0 } else { 0.0 })
                    .collect();
                // Full-batch gradient descent with momentum.
                let mut velocity = vec![0.0f64; d + 1];
                let beta = 0.9;
                for _ in 0..cfg.epochs {
                    let mut grad = vec![0.0f64; d + 1];
                    for (&v, &y) in train_vertices.iter().zip(&targets) {
                        let x = embedding.row(v);
                        let mut z = w[d];
                        for (wi, &xi) in w[..d].iter().zip(x) {
                            z += wi * xi as f64;
                        }
                        let err = sigmoid(z) - y;
                        for (g, &xi) in grad[..d].iter_mut().zip(x) {
                            *g += err * xi as f64;
                        }
                        grad[d] += err;
                    }
                    for ((wi, g), vel) in w.iter_mut().zip(&grad).zip(velocity.iter_mut()) {
                        let step = g / n as f64 + cfg.l2 * *wi;
                        *vel = beta * *vel - cfg.lr * step;
                        *wi += *vel;
                    }
                }
                w
            })
            .collect();
        Self { weights }
    }

    /// Raw decision scores for one vertex (`num_labels` values).
    pub fn scores(&self, x: &[f32]) -> Vec<f64> {
        let d = x.len();
        self.weights
            .iter()
            .map(|w| {
                let mut z = w[d];
                for (wi, &xi) in w[..d].iter().zip(x) {
                    z += wi * xi as f64;
                }
                z
            })
            .collect()
    }

    /// All classes ranked by decreasing decision score.
    ///
    /// `total_cmp` keeps the ordering total even when a score is NaN
    /// (a diverged or all-zero model must degrade, not panic).
    pub fn rank_classes(&self, x: &[f32]) -> Vec<u16> {
        let scores = self.scores(x);
        let mut idx: Vec<u16> = (0..scores.len() as u16).collect();
        idx.sort_by(|&a, &b| scores[b as usize].total_cmp(&scores[a as usize]));
        idx
    }

    /// Predicts the top-`k` classes for one vertex.
    pub fn predict_top_k(&self, x: &[f32], k: usize) -> Vec<u16> {
        let mut idx = self.rank_classes(x);
        idx.truncate(k);
        idx.sort_unstable();
        idx
    }
}

/// Splits the labelled vertices into train/test with the given ratio.
///
/// With fewer than two labelled vertices no split exists: everything goes
/// to the (possibly empty) train side and the test side is empty, instead
/// of the `len - 1` underflow this used to hit.
pub fn train_test_split(labels: &Labels, train_ratio: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(train_ratio > 0.0 && train_ratio < 1.0, "ratio must be in (0,1)");
    let mut vertices = labels.labelled_vertices();
    if vertices.len() < 2 {
        return (vertices, Vec::new());
    }
    let mut rng = XorShiftStream::new(seed, 0);
    for i in (1..vertices.len()).rev() {
        let j = rng.bounded_usize(i + 1);
        vertices.swap(i, j);
    }
    let cut =
        ((vertices.len() as f64 * train_ratio).round() as usize).max(1).min(vertices.len() - 1);
    let test = vertices.split_off(cut);
    (vertices, test)
}

/// Computes Micro/Macro F1 for predicted vs true label sets.
pub fn f1_scores(num_labels: usize, truth: &[&[u16]], predicted: &[Vec<u16>]) -> F1Scores {
    assert_eq!(truth.len(), predicted.len());
    let mut tp = vec![0u64; num_labels];
    let mut fp = vec![0u64; num_labels];
    let mut fnn = vec![0u64; num_labels];
    for (t, p) in truth.iter().zip(predicted) {
        for &l in p.iter() {
            if t.contains(&l) {
                tp[l as usize] += 1;
            } else {
                fp[l as usize] += 1;
            }
        }
        for &l in t.iter() {
            if !p.contains(&l) {
                fnn[l as usize] += 1;
            }
        }
    }
    let (tps, fps, fns): (u64, u64, u64) = (tp.iter().sum(), fp.iter().sum(), fnn.iter().sum());
    let micro = if 2 * tps + fps + fns == 0 {
        0.0
    } else {
        2.0 * tps as f64 / (2 * tps + fps + fns) as f64
    };
    // Macro over classes that appear in the truth (standard convention:
    // classes absent from the test set are skipped).
    let mut macro_sum = 0.0;
    let mut macro_n = 0usize;
    for l in 0..num_labels {
        let support = tp[l] + fnn[l];
        if support == 0 {
            continue;
        }
        let denom = 2 * tp[l] + fp[l] + fnn[l];
        macro_sum += if denom == 0 { 0.0 } else { 2.0 * tp[l] as f64 / denom as f64 };
        macro_n += 1;
    }
    let macro_ = if macro_n == 0 { 0.0 } else { macro_sum / macro_n as f64 };
    F1Scores { micro: 100.0 * micro, macro_: 100.0 * macro_ }
}

/// End-to-end protocol: split, train, predict top-k, score.
pub fn evaluate_node_classification(
    embedding: &DenseMatrix,
    labels: &Labels,
    train_ratio: f64,
    seed: u64,
) -> F1Scores {
    evaluate_with_config(embedding, labels, train_ratio, seed, &TrainConfig::default())
}

/// [`evaluate_node_classification`] with explicit training parameters.
pub fn evaluate_with_config(
    embedding: &DenseMatrix,
    labels: &Labels,
    train_ratio: f64,
    seed: u64,
    cfg: &TrainConfig,
) -> F1Scores {
    evaluate_classification_report(embedding, labels, train_ratio, seed, cfg, &[]).f1
}

/// F1 plus ranking-quality detail from one classification run.
#[derive(Debug, Clone)]
pub struct ClassificationReport {
    /// Micro/Macro F1 under the "known k" protocol.
    pub f1: F1Scores,
    /// `(K, mean precision@K)` over test vertices, for each requested `K`:
    /// the fraction of the top-`K` ranked classes that are true labels.
    pub precision_at: Vec<(usize, f64)>,
}

/// Full protocol with precision@K detail: split, train, rank classes per
/// test vertex, score. An empty test split (too few labelled vertices)
/// reports zeros rather than panicking.
pub fn evaluate_classification_report(
    embedding: &DenseMatrix,
    labels: &Labels,
    train_ratio: f64,
    seed: u64,
    cfg: &TrainConfig,
    precision_ks: &[usize],
) -> ClassificationReport {
    let (train, test) = train_test_split(labels, train_ratio, seed);
    if test.is_empty() {
        return ClassificationReport {
            f1: F1Scores { micro: 0.0, macro_: 0.0 },
            precision_at: precision_ks.iter().map(|&k| (k, 0.0)).collect(),
        };
    }
    let model = OneVsRest::train(embedding, labels, &train, cfg);
    let ranked: Vec<Vec<u16>> =
        test.par_iter().map(|&v| model.rank_classes(embedding.row(v))).collect();
    let predicted: Vec<Vec<u16>> = ranked
        .iter()
        .zip(&test)
        .map(|(r, &v)| {
            let mut p = r[..labels.of(v).len().min(r.len())].to_vec();
            p.sort_unstable();
            p
        })
        .collect();
    let truth: Vec<&[u16]> = test.iter().map(|&v| labels.of(v)).collect();
    let f1 = f1_scores(labels.num_labels(), &truth, &predicted);
    let precision_at = precision_ks
        .iter()
        .map(|&k| {
            let mean = ranked
                .iter()
                .zip(&truth)
                .map(|(r, t)| crate::metrics::precision_at_k(r, t, k))
                .sum::<f64>()
                / test.len() as f64;
            (k, mean)
        })
        .collect();
    ClassificationReport { f1, precision_at }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_perfect_prediction() {
        let truth: Vec<&[u16]> = vec![&[0, 1], &[2]];
        let pred = vec![vec![0, 1], vec![2]];
        let s = f1_scores(3, &truth, &pred);
        assert_eq!(s.micro, 100.0);
        assert_eq!(s.macro_, 100.0);
    }

    #[test]
    fn f1_total_miss() {
        let truth: Vec<&[u16]> = vec![&[0]];
        let pred = vec![vec![1]];
        let s = f1_scores(2, &truth, &pred);
        assert_eq!(s.micro, 0.0);
        assert_eq!(s.macro_, 0.0);
    }

    #[test]
    fn f1_known_hand_computed_case() {
        // v0: truth {0,1}, pred {0,2} → tp0=1, fp2=1, fn1=1
        // v1: truth {1},   pred {1}   → tp1=1
        let truth: Vec<&[u16]> = vec![&[0, 1], &[1]];
        let pred = vec![vec![0, 2], vec![1]];
        let s = f1_scores(3, &truth, &pred);
        // micro: tp=2, fp=1, fn=1 → 2*2/(4+1+1) = 0.6667
        assert!((s.micro - 66.666_666).abs() < 1e-3, "{}", s.micro);
        // macro over classes with support: class0 f1=1, class1: tp=1,fn=1 →
        // 2/(2+1)=0.6667; class2 skipped (no support) → (1+0.6667)/2
        assert!((s.macro_ - 83.333_333).abs() < 1e-3, "{}", s.macro_);
    }

    #[test]
    fn split_respects_ratio_and_partition() {
        let labels = Labels::new(3, (0..100).map(|i| vec![(i % 3) as u16]).collect());
        let (train, test) = train_test_split(&labels, 0.3, 1);
        assert_eq!(train.len(), 30);
        assert_eq!(test.len(), 70);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn logreg_learns_linearly_separable_labels() {
        // Embedding = 2-d points; class 0 = x>0, class 1 = y>0 (multi-label).
        let n = 400;
        let mut rng = XorShiftStream::new(9, 0);
        let mut emb = DenseMatrix::zeros(n, 2);
        let mut per_vertex = Vec::with_capacity(n);
        for i in 0..n {
            let x = rng.gaussian() as f32;
            let y = rng.gaussian() as f32;
            emb.set(i, 0, x);
            emb.set(i, 1, y);
            let mut ls = Vec::new();
            if x > 0.0 {
                ls.push(0u16);
            }
            if y > 0.0 {
                ls.push(1u16);
            }
            if ls.is_empty() {
                ls.push(2u16); // ensure every vertex is labelled
            }
            per_vertex.push(ls);
        }
        let labels = Labels::new(3, per_vertex);
        let s = evaluate_node_classification(&emb, &labels, 0.5, 3);
        assert!(s.micro > 90.0, "micro {}", s.micro);
        assert!(s.macro_ > 85.0, "macro {}", s.macro_);
    }

    #[test]
    fn random_embedding_scores_near_chance() {
        let n = 300;
        let emb = DenseMatrix::gaussian(n, 8, 4);
        let labels = Labels::new(10, (0..n).map(|i| vec![(i % 10) as u16]).collect());
        let s = evaluate_node_classification(&emb, &labels, 0.5, 5);
        // Chance for single-label/10 classes with top-1 prediction ≈ 10%.
        assert!(s.micro < 30.0, "suspiciously high micro {}", s.micro);
    }

    #[test]
    fn predict_top_k_returns_k_sorted() {
        let model = OneVsRest { weights: vec![vec![0.0, 1.0], vec![0.0, 3.0], vec![0.0, 2.0]] };
        let picks = model.predict_top_k(&[1.0], 2);
        assert_eq!(picks, vec![1, 2]);
    }
}
