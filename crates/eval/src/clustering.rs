//! Unsupervised evaluation: k-means over embeddings + normalized mutual
//! information (NMI) against ground-truth communities.
//!
//! The paper's tasks are classification and link prediction, but the
//! embedding literature it builds on (DeepWalk, ProNE) also reports
//! clustering quality, and it is the natural *label-free* quality probe
//! for the synthetic SBM workloads — so the harness exposes it as an
//! additional lens on the same embeddings.

use lightne_linalg::DenseMatrix;
use lightne_utils::parallel::parallel_reduce_sum;
use lightne_utils::rng::XorShiftStream;
use rayon::prelude::*;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster assignment per row.
    pub assignment: Vec<u32>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum()
}

/// Lloyd's k-means with k-means++ seeding on the rows of `x`.
///
/// ```
/// use lightne_eval::clustering::{kmeans, nmi};
/// use lightne_linalg::DenseMatrix;
/// // Two obvious 1-d clusters.
/// let x = DenseMatrix::from_vec(4, 1, vec![0.0, 0.1, 10.0, 10.1]);
/// let r = kmeans(&x, 2, 20, 1);
/// assert_eq!(r.assignment[0], r.assignment[1]);
/// assert_ne!(r.assignment[0], r.assignment[3]);
/// assert_eq!(nmi(&r.assignment, &[0, 0, 1, 1]), 1.0);
/// ```
pub fn kmeans(x: &DenseMatrix, k: usize, max_iters: usize, seed: u64) -> KMeansResult {
    let n = x.rows();
    let d = x.cols();
    assert!(k >= 1 && k <= n, "need 1 <= k <= n");
    let mut rng = XorShiftStream::new(seed, 0);

    // k-means++ seeding.
    let mut centers: Vec<Vec<f32>> = Vec::with_capacity(k);
    centers.push(x.row(rng.bounded_usize(n)).to_vec());
    let mut dist2: Vec<f64> = (0..n).map(|i| sq_dist(x.row(i), &centers[0])).collect();
    while centers.len() < k {
        let total: f64 = dist2.iter().sum();
        let next = if total <= 0.0 {
            rng.bounded_usize(n)
        } else {
            let mut target = rng.unit_f64() * total;
            let mut pick = n - 1;
            for (i, &w) in dist2.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        centers.push(x.row(next).to_vec());
        let c = centers.last().unwrap();
        dist2.par_iter_mut().enumerate().for_each(|(i, dd)| *dd = dd.min(sq_dist(x.row(i), c)));
    }

    // Lloyd iterations.
    let mut assignment = vec![0u32; n];
    let mut iterations = 0;
    for it in 0..max_iters {
        iterations = it + 1;
        // Assign.
        let new_assign: Vec<u32> = (0..n)
            .into_par_iter()
            .map(|i| {
                let row = x.row(i);
                let mut best = 0u32;
                let mut best_d = f64::INFINITY;
                for (c, center) in centers.iter().enumerate() {
                    let dd = sq_dist(row, center);
                    if dd < best_d {
                        best_d = dd;
                        best = c as u32;
                    }
                }
                best
            })
            .collect();
        let changed = new_assign.iter().zip(&assignment).filter(|(a, b)| a != b).count();
        assignment = new_assign;
        // Update.
        let mut sums = vec![vec![0.0f64; d]; k];
        let mut counts = vec![0usize; k];
        for (i, &a) in assignment.iter().enumerate() {
            counts[a as usize] += 1;
            for (s, &v) in sums[a as usize].iter_mut().zip(x.row(i)) {
                *s += v as f64;
            }
        }
        for (c, center) in centers.iter_mut().enumerate() {
            if counts[c] > 0 {
                for (cc, s) in center.iter_mut().zip(&sums[c]) {
                    *cc = (*s / counts[c] as f64) as f32;
                }
            }
        }
        if changed == 0 {
            break;
        }
    }

    let inertia = parallel_reduce_sum(n, |i| sq_dist(x.row(i), &centers[assignment[i] as usize]));
    KMeansResult { assignment, inertia, iterations }
}

/// Normalized mutual information between two hard clusterings, in
/// `[0, 1]` (arithmetic-mean normalization).
pub fn nmi(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let ka = *a.iter().max().unwrap() as usize + 1;
    let kb = *b.iter().max().unwrap() as usize + 1;
    let mut joint = vec![0usize; ka * kb];
    let mut ca = vec![0usize; ka];
    let mut cb = vec![0usize; kb];
    for (&x, &y) in a.iter().zip(b) {
        joint[x as usize * kb + y as usize] += 1;
        ca[x as usize] += 1;
        cb[y as usize] += 1;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for i in 0..ka {
        for j in 0..kb {
            let nij = joint[i * kb + j];
            if nij > 0 {
                let pij = nij as f64 / nf;
                mi += pij * (pij * nf * nf / (ca[i] as f64 * cb[j] as f64)).ln();
            }
        }
    }
    let h = |counts: &[usize]| -> f64 {
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let (ha, hb) = (h(&ca), h(&cb));
    if ha + hb == 0.0 {
        1.0
    } else {
        (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(
        n_per: usize,
        centers: &[(f32, f32)],
        spread: f32,
        seed: u64,
    ) -> (DenseMatrix, Vec<u32>) {
        let n = n_per * centers.len();
        let mut x = DenseMatrix::zeros(n, 2);
        let mut truth = Vec::with_capacity(n);
        let mut rng = XorShiftStream::new(seed, 0);
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..n_per {
                let row = c * n_per + i;
                x.set(row, 0, cx + spread * rng.gaussian() as f32);
                x.set(row, 1, cy + spread * rng.gaussian() as f32);
                truth.push(c as u32);
            }
        }
        (x, truth)
    }

    #[test]
    fn kmeans_recovers_separated_blobs() {
        let (x, truth) = blobs(100, &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], 0.5, 1);
        let r = kmeans(&x, 3, 50, 2);
        assert!(nmi(&r.assignment, &truth) > 0.99, "nmi {}", nmi(&r.assignment, &truth));
        assert!(r.iterations < 50);
    }

    #[test]
    fn kmeans_inertia_decreases_with_k() {
        let (x, _) = blobs(50, &[(0.0, 0.0), (5.0, 5.0)], 1.0, 3);
        let i1 = kmeans(&x, 1, 30, 4).inertia;
        let i2 = kmeans(&x, 2, 30, 4).inertia;
        let i4 = kmeans(&x, 4, 30, 4).inertia;
        assert!(i2 < i1);
        assert!(i4 < i2 + 1e-9);
    }

    #[test]
    fn nmi_identity_and_permutation_invariance() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
        let relabelled = vec![2, 2, 0, 0, 1, 1];
        assert!((nmi(&a, &relabelled) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_independent_labels_near_zero() {
        // Perfectly balanced independent labels: MI = 0 exactly.
        let a: Vec<u32> = (0..400).map(|i| (i / 200) as u32).collect(); // halves
        let b: Vec<u32> = (0..400).map(|i| (i % 2) as u32).collect(); // alternating
        assert!(nmi(&a, &b) < 0.01, "{}", nmi(&a, &b));
    }

    #[test]
    fn nmi_single_cluster_edge_case() {
        let a = vec![0u32; 10];
        let b = vec![0u32; 10];
        assert_eq!(nmi(&a, &b), 1.0);
    }

    #[test]
    fn kmeans_k_equals_n() {
        let (x, _) = blobs(3, &[(0.0, 0.0)], 1.0, 5);
        let r = kmeans(&x, 3, 10, 6);
        assert!(r.inertia < 1e-9);
    }

    #[test]
    #[should_panic(expected = "need 1 <= k <= n")]
    fn kmeans_rejects_bad_k() {
        let x = DenseMatrix::zeros(3, 2);
        let _ = kmeans(&x, 5, 10, 7);
    }
}
