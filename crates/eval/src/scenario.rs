//! The quality scenario matrix.
//!
//! Sweeps the full embedding pipeline over every generator profile
//! (`lightne_gen::Profile::ALL`), every sparsifier probability scheme
//! (`ProbScheme::ALL`) and three evaluation tasks — multi-label
//! classification (where the profile has labels), link prediction, and
//! graph-structure preservation — producing one [`ScenarioResult`] per
//! `(profile, task, scheme)` cell. `bench_quality_json` serializes the
//! matrix into the committed `results/BENCH_quality.json` trajectory, and
//! `scripts/check_quality_regression.sh` gates CI on its per-scenario
//! floors.
//!
//! Profiles are rescaled so every generated graph has roughly
//! `target_n` vertices: the paper's datasets span 10K to 1.7B vertices,
//! and the matrix needs comparable, minutes-not-hours cells.

use crate::classify::{evaluate_classification_report, TrainConfig};
use crate::linkpred::{rank_held_out, split_edges};
use crate::structure::structure_report;
use lightne_core::{LightNe, LightNeConfig};
use lightne_gen::Profile;
use lightne_sparsifier::ProbScheme;

/// Knobs of one matrix run. Everything that shapes a score is here, so
/// the bench report can record the exact configuration it measured.
#[derive(Debug, Clone, Copy)]
pub struct MatrixConfig {
    /// Approximate vertex count every profile is rescaled to.
    pub target_n: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Context window `T`.
    pub window: usize,
    /// PathSampling ratio (`M = ratio · T · m`).
    pub sample_ratio: f64,
    /// Labelled-vertex train fraction for classification.
    pub train_ratio: f64,
    /// Held-out edge fraction for link prediction.
    pub holdout: f64,
    /// Corrupted negatives per held-out positive.
    pub negatives: usize,
    /// Vertex pairs sampled for the component-separability AUC.
    pub pairs: usize,
    /// Seed shared by generation, embedding and every split.
    pub seed: u64,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        Self {
            target_n: 4_000,
            dim: 32,
            window: 5,
            sample_ratio: 2.0,
            train_ratio: 0.5,
            holdout: 0.2,
            negatives: 50,
            pairs: 20_000,
            seed: 0x51,
        }
    }
}

/// The evaluation tasks of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Multi-label node classification (Micro/Macro-F1, precision@K).
    Classify,
    /// Held-out edge ranking (AUC, MRR, HITS@K).
    LinkPred,
    /// Structure preservation (component AUC, centrality correlations).
    Structure,
}

impl Task {
    /// Report name of the task.
    pub fn name(self) -> &'static str {
        match self {
            Task::Classify => "classify",
            Task::LinkPred => "linkpred",
            Task::Structure => "structure",
        }
    }
}

/// One cell of the matrix: a task scored on one profile under one scheme.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Profile name as the paper spells it.
    pub profile: &'static str,
    /// Which task produced the scores.
    pub task: Task,
    /// Which sparsifier probability scheme the embedding used.
    pub scheme: ProbScheme,
    /// The gated headline metric of this task (micro-F1 for
    /// classification, AUC for link prediction, component AUC for
    /// structure).
    pub primary: f64,
    /// All `(metric name, value)` pairs, primary included.
    pub metrics: Vec<(&'static str, f64)>,
}

/// Runs every task on one profile under both probability schemes.
pub fn run_profile(profile: Profile, cfg: &MatrixConfig) -> Vec<ScenarioResult> {
    let (pv, _) = profile.paper_stats();
    let scale = cfg.target_n as f64 / pv as f64;
    let data = profile.generate(scale, cfg.seed);
    let mut out = Vec::new();

    for scheme in ProbScheme::ALL {
        let ne_cfg = LightNeConfig {
            dim: cfg.dim,
            window: cfg.window,
            sample_ratio: cfg.sample_ratio,
            prob: scheme,
            seed: cfg.seed,
            ..Default::default()
        };
        let full = LightNe::new(ne_cfg).embed(&data.graph);

        if let Some(labels) = &data.labels {
            let rep = evaluate_classification_report(
                &full.embedding,
                labels,
                cfg.train_ratio,
                cfg.seed,
                &TrainConfig::default(),
                &[1, 3],
            );
            let p_at = |k: usize| {
                rep.precision_at.iter().find(|&&(kk, _)| kk == k).map_or(0.0, |&(_, v)| v)
            };
            out.push(ScenarioResult {
                profile: data.name,
                task: Task::Classify,
                scheme,
                primary: rep.f1.micro,
                metrics: vec![
                    ("micro_f1", rep.f1.micro),
                    ("macro_f1", rep.f1.macro_),
                    ("precision_at_1", p_at(1)),
                    ("precision_at_3", p_at(3)),
                ],
            });
        }

        let s = structure_report(&data.graph, &full.embedding, cfg.pairs, cfg.seed);
        out.push(ScenarioResult {
            profile: data.name,
            task: Task::Structure,
            scheme,
            primary: s.component_auc,
            metrics: vec![
                ("component_auc", s.component_auc),
                ("degree_spearman", s.degree_spearman),
                ("pagerank_spearman", s.pagerank_spearman),
            ],
        });

        let (train, held) = split_edges(&data.graph, cfg.holdout, cfg.seed);
        let lp = LightNe::new(ne_cfg).embed(&train);
        let m = rank_held_out(&lp.embedding, &held, cfg.negatives, &[1, 10], cfg.seed);
        out.push(ScenarioResult {
            profile: data.name,
            task: Task::LinkPred,
            scheme,
            primary: m.auc,
            metrics: vec![
                ("auc", m.auc),
                ("mrr", m.mrr),
                ("hits_at_10", m.hits_at(10).unwrap_or(0.0)),
            ],
        });
    }
    out
}

/// Runs the matrix over the given profiles (pass `&Profile::ALL` for the
/// full sweep).
pub fn run_matrix(profiles: &[Profile], cfg: &MatrixConfig) -> Vec<ScenarioResult> {
    profiles.iter().flat_map(|&p| run_profile(p, cfg)).collect()
}

/// Counts `(profile, task)` pairs where the PSNE scheme's primary metric
/// is at least the degree scheme's.
pub fn psne_wins(results: &[ScenarioResult]) -> usize {
    results
        .iter()
        .filter(|r| r.scheme == ProbScheme::Psne)
        .filter(|p| {
            results
                .iter()
                .find(|d| {
                    d.scheme == ProbScheme::Degree && d.profile == p.profile && d.task == p.task
                })
                .is_some_and(|d| p.primary >= d.primary)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small config so the matrix tests stay fast.
    fn tiny() -> MatrixConfig {
        MatrixConfig { target_n: 400, dim: 16, pairs: 4_000, ..Default::default() }
    }

    #[test]
    fn blogcatalog_profile_produces_all_three_tasks_per_scheme() {
        let results = run_profile(Profile::BlogCatalog, &tiny());
        // Labelled profile → classify + structure + linkpred, × 2 schemes.
        assert_eq!(results.len(), 6);
        for task in [Task::Classify, Task::LinkPred, Task::Structure] {
            for scheme in ProbScheme::ALL {
                assert!(
                    results.iter().any(|r| r.task == task && r.scheme == scheme),
                    "missing {}/{}",
                    task.name(),
                    scheme.name()
                );
            }
        }
        for r in &results {
            assert!(r.primary.is_finite(), "{}/{} primary not finite", r.profile, r.task.name());
            assert!(r.metrics.iter().all(|&(_, v)| v.is_finite()));
        }
    }

    #[test]
    fn unlabelled_profile_skips_classification() {
        let results = run_profile(Profile::HyperlinkPld, &tiny());
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.task != Task::Classify));
    }

    #[test]
    fn embeddings_beat_chance_on_sbm_linkpred() {
        let results = run_profile(Profile::BlogCatalog, &tiny());
        for r in results.iter().filter(|r| r.task == Task::LinkPred) {
            assert!(r.primary > 0.6, "{} linkpred auc {}", r.scheme.name(), r.primary);
        }
    }

    #[test]
    fn psne_wins_counts_pairs() {
        let mk = |scheme, task, primary| ScenarioResult {
            profile: "X",
            task,
            scheme,
            primary,
            metrics: vec![],
        };
        let results = vec![
            mk(ProbScheme::Degree, Task::LinkPred, 0.7),
            mk(ProbScheme::Psne, Task::LinkPred, 0.8),
            mk(ProbScheme::Degree, Task::Structure, 0.9),
            mk(ProbScheme::Psne, Task::Structure, 0.85),
        ];
        assert_eq!(psne_wins(&results), 1);
    }
}
