//! Evaluation harness: the tasks, metrics and cost model of Section 5.
//!
//! * [`classify`] — multi-label node classification with one-vs-rest
//!   logistic regression on frozen embeddings, evaluated by Micro/Macro-F1
//!   under the literature's standard protocol (predict exactly as many
//!   labels per vertex as the ground truth has), at configurable label
//!   ratios — the protocol behind Table 4, Figure 2 and Figure 4.
//! * [`linkpred`] — link prediction in the PyTorch-BigGraph style: hold
//!   out a fraction of edges, rank each positive against sampled corrupted
//!   edges, report MR / MRR / HITS@K, plus ROC-AUC for the GraphVite
//!   comparison — the protocol behind Sections 5.2.1–5.2.2 and Figure 3.
//! * [`clustering`] — k-means + NMI, a label-free quality probe for the
//!   synthetic community workloads (standard in the embedding literature
//!   the paper builds on).
//! * [`cost`] — the Azure price table of Table 2, converting measured
//!   wall-clock into the dollar figures the paper reports.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod classify;
pub mod clustering;
pub mod cost;
pub mod linkpred;

pub use classify::{evaluate_node_classification, F1Scores};
pub use clustering::{kmeans, nmi, KMeansResult};
pub use cost::{AzureInstance, CostModel};
pub use linkpred::{split_edges, LinkPredMetrics};
