//! Evaluation harness: the tasks, metrics and cost model of Section 5.
//!
//! * [`classify`] — multi-label node classification with one-vs-rest
//!   logistic regression on frozen embeddings, evaluated by Micro/Macro-F1
//!   under the literature's standard protocol (predict exactly as many
//!   labels per vertex as the ground truth has), at configurable label
//!   ratios — the protocol behind Table 4, Figure 2 and Figure 4.
//! * [`linkpred`] — link prediction in the PyTorch-BigGraph style: hold
//!   out a fraction of edges, rank each positive against sampled corrupted
//!   edges, report MR / MRR / HITS@K, plus ROC-AUC for the GraphVite
//!   comparison — the protocol behind Sections 5.2.1–5.2.2 and Figure 3.
//! * [`clustering`] — k-means + NMI, a label-free quality probe for the
//!   synthetic community workloads (standard in the embedding literature
//!   the paper builds on).
//! * [`metrics`] — the scalar ranking metrics behind the protocols
//!   (tie-aware ROC-AUC, Spearman, precision@K), total on degenerate
//!   input.
//! * [`structure`] — label-free structure-preservation probes:
//!   connected-component separability and centrality rank correlation.
//! * [`scenario`] — the quality scenario matrix: every generator profile
//!   × every sparsifier probability scheme × every task, feeding the
//!   committed `results/BENCH_quality.json` trajectory and its CI gate.
//! * [`cost`] — the Azure price table of Table 2, converting measured
//!   wall-clock into the dollar figures the paper reports.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod classify;
pub mod clustering;
pub mod cost;
pub mod linkpred;
pub mod metrics;
pub mod scenario;
pub mod structure;

pub use classify::{
    evaluate_classification_report, evaluate_node_classification, ClassificationReport, F1Scores,
};
pub use clustering::{kmeans, nmi, KMeansResult};
pub use cost::{AzureInstance, CostModel};
pub use linkpred::{split_edges, LinkPredMetrics};
pub use metrics::{precision_at_k, roc_auc, spearman};
pub use scenario::{psne_wins, run_matrix, run_profile, MatrixConfig, ScenarioResult, Task};
pub use structure::{structure_report, StructureReport};
