//! The cloud cost model of Table 2.
//!
//! The paper argues cost-efficiency by multiplying each system's wall
//! clock by the hourly price of the cheapest Azure instance that fits its
//! hardware profile: GraphVite (4×P100) → NC24s v2, PyTorch-BigGraph →
//! E48 v3, NetSMF and LightNE (1.5–1.7 TB RAM) → M128s. We reproduce the
//! same table and arithmetic.

use std::time::Duration;

/// Azure instance types from Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AzureInstance {
    /// NC24s v2: 24 vCores, 448 GiB, 4×P100 — $8.28/h.
    Nc24sV2,
    /// E48 v3: 48 vCores, 384 GiB — $3.024/h.
    E48V3,
    /// M64: 64 vCores, 1024 GiB — $6.669/h.
    M64,
    /// M128s: 128 vCores, 2048 GiB — $13.338/h.
    M128s,
}

impl AzureInstance {
    /// Hourly price in dollars (Table 2).
    pub fn price_per_hour(self) -> f64 {
        match self {
            AzureInstance::Nc24sV2 => 8.28,
            AzureInstance::E48V3 => 3.024,
            AzureInstance::M64 => 6.669,
            AzureInstance::M128s => 13.338,
        }
    }

    /// `(vCores, RAM GiB, #GPUs)` as listed in Table 2.
    pub fn specs(self) -> (u32, u32, u32) {
        match self {
            AzureInstance::Nc24sV2 => (24, 448, 4),
            AzureInstance::E48V3 => (48, 384, 0),
            AzureInstance::M64 => (64, 1024, 0),
            AzureInstance::M128s => (128, 2048, 0),
        }
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            AzureInstance::Nc24sV2 => "NC24s v2",
            AzureInstance::E48V3 => "E48 v3",
            AzureInstance::M64 => "M64",
            AzureInstance::M128s => "M128s",
        }
    }
}

/// Maps each evaluated system to its Table 2 instance and prices runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModel;

impl CostModel {
    /// The instance the paper assumes for a given system name.
    pub fn instance_for(system: &str) -> AzureInstance {
        match system {
            "GraphVite" => AzureInstance::Nc24sV2,
            "PBG" | "PyTorch-BigGraph" => AzureInstance::E48V3,
            _ => AzureInstance::M128s, // NetSMF, ProNE+, LightNE
        }
    }

    /// Dollar cost of running `system` for `elapsed` wall-clock.
    pub fn cost(system: &str, elapsed: Duration) -> f64 {
        Self::instance_for(system).price_per_hour() * elapsed.as_secs_f64() / 3600.0
    }

    /// Renders the Table 2 hardware/pricing rows.
    pub fn table2() -> String {
        let mut out = String::from("Instance    vCores  RAM(GiB)  GPUs  $/h\n");
        for inst in
            [AzureInstance::Nc24sV2, AzureInstance::E48V3, AzureInstance::M64, AzureInstance::M128s]
        {
            let (c, r, g) = inst.specs();
            out.push_str(&format!(
                "{:<11} {:<7} {:<9} {:<5} {}\n",
                inst.name(),
                c,
                r,
                g,
                inst.price_per_hour()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prices_match_table2() {
        assert_eq!(AzureInstance::Nc24sV2.price_per_hour(), 8.28);
        assert_eq!(AzureInstance::E48V3.price_per_hour(), 3.024);
        assert_eq!(AzureInstance::M64.price_per_hour(), 6.669);
        assert_eq!(AzureInstance::M128s.price_per_hour(), 13.338);
    }

    #[test]
    fn paper_headline_costs_reproduce() {
        // §5.2.1: PBG 7.25 h on E48 v3 → $21.92 (paper rounds to $21.95).
        let pbg = CostModel::cost("PBG", Duration::from_secs_f64(7.25 * 3600.0));
        assert!((pbg - 21.95).abs() < 0.05, "PBG cost {pbg}");
        // LightNE 16 min on M128s → $3.56... the paper says $2.76 using
        // 12.4 min effective; just check the formula's order of magnitude.
        let lightne = CostModel::cost("LightNE", Duration::from_secs(16 * 60));
        assert!(lightne > 2.0 && lightne < 4.0, "LightNE cost {lightne}");
        // §5.2.2: GraphVite 20.3 h on NC24s v2 → $168...$210 band: the
        // paper's 209.84 uses 25.34 h total pipeline time; formula check:
        let gv = CostModel::cost("GraphVite", Duration::from_secs_f64(25.34 * 3600.0));
        assert!((gv - 209.84).abs() < 0.5, "GraphVite cost {gv}");
    }

    #[test]
    fn system_mapping() {
        assert_eq!(CostModel::instance_for("GraphVite"), AzureInstance::Nc24sV2);
        assert_eq!(CostModel::instance_for("PBG"), AzureInstance::E48V3);
        assert_eq!(CostModel::instance_for("LightNE"), AzureInstance::M128s);
        assert_eq!(CostModel::instance_for("NetSMF"), AzureInstance::M128s);
    }

    #[test]
    fn table_renders_all_rows() {
        let t = CostModel::table2();
        for name in ["NC24s v2", "E48 v3", "M64", "M128s"] {
            assert!(t.contains(name), "missing {name}");
        }
    }
}
