//! Graph-structure preservation checks.
//!
//! Label-free probes that any faithful embedding must pass, used by the
//! quality scenario matrix alongside the supervised tasks:
//!
//! * **connected-component separability** — vertices in the same
//!   component should be closer in embedding space than vertices in
//!   different components, scored as a ROC-AUC over sampled vertex pairs
//!   (score = negative squared distance, positive = same component);
//! * **centrality rank correlation** — embedding row norms should rank
//!   vertices similarly to degree and PageRank (NetMF-family embeddings
//!   scale rows with vertex frequency), scored by Spearman correlation.

use crate::metrics::{roc_auc, spearman};
use lightne_graph::algorithms::{connected_components, pagerank};
use lightne_graph::GraphOps;
use lightne_linalg::DenseMatrix;
use lightne_utils::rng::XorShiftStream;

/// Structure-preservation scores for one embedding.
#[derive(Debug, Clone)]
pub struct StructureReport {
    /// ROC-AUC of same-component vs cross-component pairs by embedding
    /// distance. Vacuously 1.0 when all non-isolated vertices share one
    /// component (there is no cross-component pair to mis-rank).
    pub component_auc: f64,
    /// Spearman correlation of embedding row norms with vertex degrees.
    pub degree_spearman: f64,
    /// Spearman correlation of embedding row norms with PageRank.
    pub pagerank_spearman: f64,
    /// Number of connected components among non-isolated vertices.
    pub components: usize,
}

fn sq_dist(x: &DenseMatrix, u: usize, v: usize) -> f64 {
    x.row(u)
        .iter()
        .zip(x.row(v))
        .map(|(&a, &b)| {
            let d = a as f64 - b as f64;
            d * d
        })
        .sum()
}

/// Computes the [`StructureReport`] for `embedding` on `g`, sampling up
/// to `pairs` vertex pairs for the component-separability AUC. Isolated
/// vertices are excluded throughout: their embedding rows carry no
/// structural signal, and each would be its own singleton component.
pub fn structure_report<G: GraphOps>(
    g: &G,
    embedding: &DenseMatrix,
    pairs: usize,
    seed: u64,
) -> StructureReport {
    let n = g.num_vertices();
    assert_eq!(embedding.rows(), n, "embedding rows must match vertex count");
    let comp = connected_components(g);
    let active: Vec<usize> = (0..n).filter(|&v| g.degree(v as u32) > 0).collect();
    let mut distinct: Vec<u32> = active.iter().map(|&v| comp[v]).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let components = distinct.len();

    let component_auc = if components < 2 || active.len() < 2 {
        1.0
    } else {
        let mut rng = XorShiftStream::new(seed, 0);
        let mut scores = Vec::with_capacity(pairs);
        let mut labels = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            let u = active[rng.bounded_usize(active.len())];
            let v = active[rng.bounded_usize(active.len())];
            if u == v {
                continue;
            }
            scores.push(-sq_dist(embedding, u, v));
            labels.push(comp[u] == comp[v]);
        }
        roc_auc(&scores, &labels)
    };

    let norms: Vec<f64> = active.iter().map(|&v| sq_dist_origin(embedding, v)).collect();
    let degrees: Vec<f64> = active.iter().map(|&v| g.degree(v as u32) as f64).collect();
    let (pr, _) = pagerank(g, 0.85, 1e-10, 100);
    let pr_active: Vec<f64> = active.iter().map(|&v| pr[v]).collect();

    StructureReport {
        component_auc,
        degree_spearman: spearman(&norms, &degrees),
        pagerank_spearman: spearman(&norms, &pr_active),
        components,
    }
}

fn sq_dist_origin(x: &DenseMatrix, v: usize) -> f64 {
    x.row(v).iter().map(|&a| a as f64 * a as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_graph::GraphBuilder;

    /// Two disconnected triangles plus one isolated vertex.
    fn two_triangles() -> lightne_graph::Graph {
        GraphBuilder::from_edges(7, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
    }

    #[test]
    fn planted_components_are_separable() {
        let g = two_triangles();
        let mut emb = DenseMatrix::zeros(7, 2);
        for v in 0..3 {
            emb.set(v, 0, 1.0);
        }
        for v in 3..6 {
            emb.set(v, 1, 1.0);
        }
        let r = structure_report(&g, &emb, 5_000, 3);
        assert_eq!(r.components, 2);
        assert_eq!(r.component_auc, 1.0);
    }

    #[test]
    fn scrambled_embedding_separates_nothing() {
        let g = two_triangles();
        // All active vertices identical → every pair distance ties → 0.5.
        let mut emb = DenseMatrix::zeros(7, 2);
        for v in 0..6 {
            emb.set(v, 0, 1.0);
        }
        let r = structure_report(&g, &emb, 5_000, 3);
        assert_eq!(r.component_auc, 0.5);
    }

    #[test]
    fn single_component_is_vacuously_separable() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let emb = DenseMatrix::gaussian(4, 3, 1);
        let r = structure_report(&g, &emb, 1_000, 2);
        assert_eq!(r.components, 1);
        assert_eq!(r.component_auc, 1.0);
    }

    #[test]
    fn norms_tracking_degree_score_positive_spearman() {
        // Star: center has degree 6, leaves degree 1. Plant norms ∝ degree.
        let edges: Vec<(u32, u32)> = (1..7).map(|v| (0, v)).collect();
        let g = GraphBuilder::from_edges(7, &edges);
        let mut emb = DenseMatrix::zeros(7, 1);
        emb.set(0, 0, 10.0);
        for v in 1..7 {
            emb.set(v, 0, 1.0 + 0.01 * v as f32);
        }
        let r = structure_report(&g, &emb, 1_000, 4);
        assert!(r.degree_spearman > 0.5, "degree spearman {}", r.degree_spearman);
        assert!(r.pagerank_spearman > 0.5, "pagerank spearman {}", r.pagerank_spearman);
    }
}
