//! Explicit-SIMD kernels behind runtime CPU-feature dispatch — the
//! crate's **sole unsafe module** (xtask L1 isolation; every `std::arch`
//! intrinsic call site in the workspace lives here or in the hash-table
//! prefetch helper, inside `#[target_feature]` functions, per lint L6).
//!
//! # Dispatch model
//!
//! [`active_tier`] resolves once (cached in an atomic) to the highest
//! [`SimdTier`] the CPU supports, optionally *lowered* — never raised —
//! by the `LIGHTNE_SIMD` environment knob (`scalar`, `avx2`, `avx512`);
//! [`set_tier`] is the in-process equivalent the kernel tests use to
//! force both dispatch paths. Because a requested tier is clamped to the
//! detected one, the `unsafe` dispatch into a `#[target_feature]` kernel
//! is sound by construction: the feature bit was observed via
//! `is_x86_feature_detected!` before the tier became reachable. On
//! non-x86_64 targets the tier is always [`SimdTier::Scalar`] and the
//! kernels here are unreachable stubs.
//!
//! # Determinism contract (per kernel)
//!
//! * [`dot_accumulate`], [`col_dots_block`] — **bitwise identical** to
//!   the scalar lane loops: `f32` operands widened to `f64` multiply
//!   *exactly* (24-bit mantissas → ≤ 48-bit product < 53-bit mantissa),
//!   so a fused `vfmadd…pd` rounds once from the same exact value the
//!   scalar mul-then-add rounds from. Lane assignment and the pairwise
//!   fold stay in [`crate::kernels`], shared with the scalar path.
//! * [`axpy4`], [`gram2_accumulate`], [`rot2`] — **bitwise identical**:
//!   elementwise kernels compiled as separate multiply and add/sub in
//!   the scalar source order (no FMA contraction), vectorized across
//!   independent elements/lanes only.
//! * [`microkernel_avx2`] / [`microkernel_avx512`] — **tolerance, not
//!   bitwise**, vs the scalar GEMM micro-kernel: the `f32` FMAs round
//!   once where the scalar kernel rounds twice, and the AVX-512 variant
//!   splits the k-loop over two accumulator sets. Within one tier the
//!   result is still bitwise thread-count-deterministic (parallelism
//!   only ever splits the M dimension). The property tests bound the
//!   divergence at the same `√k`-scaled tolerance as the naive oracle.
//!
//! Every kernel run stays on one thread; no blocking parameter here
//! depends on the pool size, so each tier independently preserves the
//! PR 1 bitwise 1/2/8-thread determinism guarantee.

// This is the crate's designated unsafe module (`#![allow(unsafe_code)]`
// below against the crate-wide deny): the `std::arch` intrinsics need
// raw-pointer loads/stores, and confining them here keeps the rest of
// the crate `unsafe`-free — enforced by xtask lint L1's isolation rule
// and L6's intrinsic-confinement rule.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

/// The instruction-set tier the numeric kernels dispatch on. Ordered so
/// that `min` clamps a requested tier to the detected one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Portable scalar kernels (the PR 4 register-blocked code); also
    /// the correctness oracle for the SIMD tiers.
    Scalar = 0,
    /// AVX2 + FMA: 8-wide `f32`, 4-wide `f64`.
    Avx2 = 1,
    /// AVX-512F: 16-wide `f32` GEMM micro-kernel; the `f64` vector
    /// kernels reuse the AVX2 implementations (already bandwidth-bound).
    Avx512 = 2,
}

impl SimdTier {
    /// Stable lower-case name, used in `RunStats`, bench JSON and the
    /// `LIGHTNE_SIMD` knob.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx512 => "avx512",
        }
    }

    fn from_u8(v: u8) -> SimdTier {
        match v {
            2 => SimdTier::Avx512,
            1 => SimdTier::Avx2,
            _ => SimdTier::Scalar,
        }
    }

    fn parse(s: &str) -> Option<SimdTier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdTier::Scalar),
            "avx2" => Some(SimdTier::Avx2),
            "avx512" => Some(SimdTier::Avx512),
            _ => None,
        }
    }
}

const UNINIT: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(UNINIT);
static DETECTED: AtomicU8 = AtomicU8::new(UNINIT);

/// The highest tier this CPU supports, independent of any override.
pub fn detected_tier() -> SimdTier {
    // ordering: idempotent cache of a pure CPUID probe — racing writers
    // all store the same value, so any interleaving reads one answer.
    let v = DETECTED.load(Ordering::Relaxed);
    if v != UNINIT {
        return SimdTier::from_u8(v);
    }
    let det = detect();
    // ordering: idempotent store, every writer computes the same value.
    DETECTED.store(det as u8, Ordering::Relaxed);
    det
}

#[cfg(target_arch = "x86_64")]
fn detect() -> SimdTier {
    let avx2 =
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma");
    if avx2 && std::arch::is_x86_feature_detected!("avx512f") {
        SimdTier::Avx512
    } else if avx2 {
        SimdTier::Avx2
    } else {
        SimdTier::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> SimdTier {
    SimdTier::Scalar
}

/// The tier the kernels currently dispatch on: the detected tier,
/// lowered by `LIGHTNE_SIMD` (read once) or a later [`set_tier`] call.
#[inline]
pub fn active_tier() -> SimdTier {
    // ordering: tier byte is a self-contained value, no data published
    // through it; racing initialisers converge on the same tier.
    let v = ACTIVE.load(Ordering::Relaxed);
    if v != UNINIT {
        return SimdTier::from_u8(v);
    }
    init_tier()
}

#[cold]
fn init_tier() -> SimdTier {
    let det = detected_tier();
    let req = std::env::var("LIGHTNE_SIMD").ok().and_then(|s| SimdTier::parse(&s)).unwrap_or(det);
    let tier = req.min(det);
    // ordering: same idempotent-cache argument as detected_tier.
    ACTIVE.store(tier as u8, Ordering::Relaxed);
    tier
}

/// Forces the dispatch tier for this process, clamped to the detected
/// tier (requesting a tier the CPU lacks selects the best available one
/// instead — the request can only *lower* the tier, which is what keeps
/// the `#[target_feature]` dispatch sound). Returns the tier actually
/// installed. Test hook: the kernel determinism/property tests sweep
/// dispatch both ways with it; `LIGHTNE_SIMD` is the process-level knob.
pub fn set_tier(requested: SimdTier) -> SimdTier {
    let tier = requested.min(detected_tier());
    ACTIVE.store(tier as u8, Ordering::Relaxed);
    tier
}

/// Comma-separated list of the detected CPU features the dispatch layer
/// considers, recorded in `RunStats` so bench JSONs are attributable to
/// a CPU class.
pub fn detected_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut out = Vec::new();
        for (name, present) in [
            ("sse2", true),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("fma", std::arch::is_x86_feature_detected!("fma")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
        ] {
            if present {
                out.push(name);
            }
        }
        out.join(",")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        String::new()
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The `#[target_feature]` kernel bodies. Each public wrapper holds
    //! the single `unsafe` dispatch site; its safety rests on the
    //! [`super::active_tier`] clamp (a SIMD tier is only reachable after
    //! `is_x86_feature_detected!` confirmed the feature).

    use crate::kernels::{DOT_LANES, GRAM_LANES, MR, NR};
    use std::arch::x86_64::*;

    /// AVX2+FMA micro-kernel with direct writeback: accumulates the
    /// register tile over the packed strips like [`mk_avx2`], then adds
    /// it straight into the output rows at `out[off + r·stride ..]` —
    /// skipping the staging buffer saves a second pass over every full
    /// tile (the scalar path's per-element writeback was ~30% of GEMM
    /// wall time). Full `MR×NR` tiles only.
    ///
    /// # Safety
    /// Requires AVX2 and FMA (guaranteed by the dispatching wrapper).
    // SAFETY: pointer arithmetic is bounded by the shape asserts below;
    // the feature guard is the wrapper's detection clamp.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn mk_avx2_direct(
        kc: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        off: usize,
        stride: usize,
    ) {
        assert!(
            a.len() >= kc * MR
                && b.len() >= kc * NR
                && stride >= NR
                && out.len() >= off + (MR - 1) * stride + NR,
            "direct tile out of bounds"
        );
        // SAFETY: loads stay inside the asserted `kc`-deep packed
        // strips; the writeback touches rows `off + r·stride` for
        // r < MR, NR floats each, all inside `out` by the assert.
        unsafe {
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let mut c: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
            for kk in 0..kc {
                let b0 = _mm256_loadu_ps(bp.add(kk * NR));
                let b1 = _mm256_loadu_ps(bp.add(kk * NR + 8));
                for (r, cr) in c.iter_mut().enumerate() {
                    let ar = _mm256_set1_ps(*ap.add(kk * MR + r));
                    cr[0] = _mm256_fmadd_ps(ar, b0, cr[0]);
                    cr[1] = _mm256_fmadd_ps(ar, b1, cr[1]);
                }
            }
            let op = out.as_mut_ptr().add(off);
            for (r, cr) in c.iter().enumerate() {
                let p = op.add(r * stride);
                _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), cr[0]));
                _mm256_storeu_ps(p.add(8), _mm256_add_ps(_mm256_loadu_ps(p.add(8)), cr[1]));
            }
        }
    }

    /// AVX-512F paired-strip micro-kernel with direct writeback: one
    /// `MR×2NR` register tile over two adjacent packed B strips (eight
    /// independent FMA chains — both FMA ports busy without the k-unroll
    /// the single-strip variant needs), accumulated straight into
    /// `out[off + r·stride ..]`. Full tiles only.
    ///
    /// # Safety
    /// Requires AVX-512F (guaranteed by the dispatching wrapper).
    // SAFETY: pointer arithmetic is bounded by the shape asserts below;
    // the feature guard is the wrapper's detection clamp.
    #[target_feature(enable = "avx512f")]
    unsafe fn mk_avx512_pair(
        kc: usize,
        a: &[f32],
        b0s: &[f32],
        b1s: &[f32],
        out: &mut [f32],
        off: usize,
        stride: usize,
    ) {
        assert!(
            a.len() >= kc * MR
                && b0s.len() >= kc * NR
                && b1s.len() >= kc * NR
                && stride >= 2 * NR
                && out.len() >= off + (MR - 1) * stride + 2 * NR,
            "direct pair tile out of bounds"
        );
        // SAFETY: loads stay inside the asserted `kc`-deep packed
        // strips; the writeback touches rows `off + r·stride` for
        // r < MR, 2·NR floats each, all inside `out` by the assert.
        unsafe {
            let ap = a.as_ptr();
            let bp0 = b0s.as_ptr();
            let bp1 = b1s.as_ptr();
            let mut c: [[__m512; 2]; MR] = [[_mm512_setzero_ps(); 2]; MR];
            for kk in 0..kc {
                let b0 = _mm512_loadu_ps(bp0.add(kk * NR));
                let b1 = _mm512_loadu_ps(bp1.add(kk * NR));
                for (r, cr) in c.iter_mut().enumerate() {
                    let ar = _mm512_set1_ps(*ap.add(kk * MR + r));
                    cr[0] = _mm512_fmadd_ps(ar, b0, cr[0]);
                    cr[1] = _mm512_fmadd_ps(ar, b1, cr[1]);
                }
            }
            let op = out.as_mut_ptr().add(off);
            for (r, cr) in c.iter().enumerate() {
                let p = op.add(r * stride);
                _mm512_storeu_ps(p, _mm512_add_ps(_mm512_loadu_ps(p), cr[0]));
                _mm512_storeu_ps(p.add(NR), _mm512_add_ps(_mm512_loadu_ps(p.add(NR)), cr[1]));
            }
        }
    }

    /// Main-loop accumulation of [`crate::kernels::dot_f64`]: widens
    /// 4-float groups to `f64` and fuses multiply-add per fixed lane.
    /// Bitwise identical to the scalar lane loop (see module docs).
    ///
    /// # Safety
    /// Requires AVX2 and FMA (guaranteed by the dispatching wrapper).
    // SAFETY: pointer arithmetic is bounded by the length asserts below;
    // the feature guard is the wrapper's detection clamp.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn dot_acc_avx2(a: &[f32], b: &[f32], acc: &mut [f64; DOT_LANES]) {
        assert!(a.len() == b.len() && a.len().is_multiple_of(DOT_LANES), "dot accumulate shape");
        // SAFETY: `a`/`b` are whole multiples of DOT_LANES (asserted), so
        // every 4-float load at `off + 4i`, i < 8, is in bounds; `acc`
        // is exactly DOT_LANES = 32 doubles = eight 4-lane vectors.
        unsafe {
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let mut v: [__m256d; 8] = [_mm256_setzero_pd(); 8];
            for (i, vi) in v.iter_mut().enumerate() {
                *vi = _mm256_loadu_pd(acc.as_ptr().add(4 * i));
            }
            let mut off = 0usize;
            while off < a.len() {
                for (i, vi) in v.iter_mut().enumerate() {
                    let ad = _mm256_cvtps_pd(_mm_loadu_ps(ap.add(off + 4 * i)));
                    let bd = _mm256_cvtps_pd(_mm_loadu_ps(bp.add(off + 4 * i)));
                    *vi = _mm256_fmadd_pd(ad, bd, *vi);
                }
                off += DOT_LANES;
            }
            for (i, vi) in v.iter().enumerate() {
                _mm256_storeu_pd(acc.as_mut_ptr().add(4 * i), *vi);
            }
        }
    }

    /// One row-block of [`crate::kernels::columnwise_dots`]: per row,
    /// `local[j] += a[j]·b[j]` (widened), 4 columns per vector, scalar
    /// tail columns. Column accumulators are independent, so this is
    /// bitwise identical to the scalar row loop.
    ///
    /// # Safety
    /// Requires AVX2 and FMA (guaranteed by the dispatching wrapper).
    // SAFETY: pointer arithmetic is bounded by the length asserts below;
    // the feature guard is the wrapper's detection clamp.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn col_dots_avx2(ab: &[f32], bb: &[f32], cols: usize, local: &mut [f64]) {
        assert!(
            cols > 0
                && ab.len() == bb.len()
                && ab.len().is_multiple_of(cols)
                && local.len() == cols,
            "columnwise block shape"
        );
        // SAFETY: rows are exactly `cols` floats (asserted); the vector
        // loop stops at `cols - cols % 4`, so all 4-wide loads/stores on
        // the row slices and on `local` stay in bounds.
        unsafe {
            let main = cols - cols % 4;
            let lp = local.as_mut_ptr();
            for (ar, br) in ab.chunks_exact(cols).zip(bb.chunks_exact(cols)) {
                let arp = ar.as_ptr();
                let brp = br.as_ptr();
                let mut j = 0usize;
                while j < main {
                    let ad = _mm256_cvtps_pd(_mm_loadu_ps(arp.add(j)));
                    let bd = _mm256_cvtps_pd(_mm_loadu_ps(brp.add(j)));
                    let cur = _mm256_loadu_pd(lp.add(j));
                    _mm256_storeu_pd(lp.add(j), _mm256_fmadd_pd(ad, bd, cur));
                    j += 4;
                }
                while j < cols {
                    *lp.add(j) += *arp.add(j) as f64 * *brp.add(j) as f64;
                    j += 1;
                }
            }
        }
    }

    /// Four fused `f32` axpys of [`crate::kernels::sub_proj`]:
    /// `seg -= c0·d0 + c1·d1 + c2·d2 + c3·d3`, multiplies and adds kept
    /// separate and left-associated exactly like the scalar expression —
    /// bitwise identical per element.
    ///
    /// # Safety
    /// Requires AVX2 (guaranteed by the dispatching wrapper).
    // SAFETY: pointer arithmetic is bounded by the length asserts below;
    // the feature guard is the wrapper's detection clamp.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn axpy4_avx2(
        seg: &mut [f32],
        d0: &[f32],
        d1: &[f32],
        d2: &[f32],
        d3: &[f32],
        c0: f32,
        c1: f32,
        c2: f32,
        c3: f32,
    ) {
        let n = seg.len();
        assert!(d0.len() == n && d1.len() == n && d2.len() == n && d3.len() == n, "axpy4 shape");
        // SAFETY: all five slices have length n (asserted); the vector
        // loop stops at `n - n % 8`, the scalar loop covers the rest.
        unsafe {
            let (v0, v1, v2, v3) =
                (_mm256_set1_ps(c0), _mm256_set1_ps(c1), _mm256_set1_ps(c2), _mm256_set1_ps(c3));
            let sp = seg.as_mut_ptr();
            let (p0, p1, p2, p3) = (d0.as_ptr(), d1.as_ptr(), d2.as_ptr(), d3.as_ptr());
            let main = n - n % 8;
            let mut i = 0usize;
            while i < main {
                // Same association as the scalar `c0*v0 + c1*v1 + c2*v2
                // + c3*v3`: ((m0 + m1) + m2) + m3, no FMA contraction.
                let mut t = _mm256_mul_ps(v0, _mm256_loadu_ps(p0.add(i)));
                t = _mm256_add_ps(t, _mm256_mul_ps(v1, _mm256_loadu_ps(p1.add(i))));
                t = _mm256_add_ps(t, _mm256_mul_ps(v2, _mm256_loadu_ps(p2.add(i))));
                t = _mm256_add_ps(t, _mm256_mul_ps(v3, _mm256_loadu_ps(p3.add(i))));
                _mm256_storeu_ps(sp.add(i), _mm256_sub_ps(_mm256_loadu_ps(sp.add(i)), t));
                i += 8;
            }
            while i < n {
                *sp.add(i) -= c0 * *p0.add(i) + c1 * *p1.add(i) + c2 * *p2.add(i) + c3 * *p3.add(i);
                i += 1;
            }
        }
    }

    /// Main-loop accumulation of [`crate::kernels::gram2`] over the
    /// eight fixed `f64` lanes — multiply then add (no FMA), matching
    /// the scalar lane loop bitwise.
    ///
    /// # Safety
    /// Requires AVX2 (guaranteed by the dispatching wrapper).
    // SAFETY: pointer arithmetic is bounded by the length asserts below;
    // the feature guard is the wrapper's detection clamp.
    #[target_feature(enable = "avx2")]
    unsafe fn gram2_acc_avx2(
        cp: &[f64],
        cq: &[f64],
        aa: &mut [f64; GRAM_LANES],
        bb: &mut [f64; GRAM_LANES],
        gg: &mut [f64; GRAM_LANES],
    ) {
        assert!(
            cp.len() == cq.len() && cp.len().is_multiple_of(GRAM_LANES),
            "gram2 accumulate shape"
        );
        // SAFETY: inputs are whole multiples of GRAM_LANES = 8
        // (asserted), covered by two 4-lane vectors per accumulator.
        unsafe {
            let pp = cp.as_ptr();
            let qp = cq.as_ptr();
            let mut av = [_mm256_loadu_pd(aa.as_ptr()), _mm256_loadu_pd(aa.as_ptr().add(4))];
            let mut bv = [_mm256_loadu_pd(bb.as_ptr()), _mm256_loadu_pd(bb.as_ptr().add(4))];
            let mut gv = [_mm256_loadu_pd(gg.as_ptr()), _mm256_loadu_pd(gg.as_ptr().add(4))];
            let mut off = 0usize;
            while off < cp.len() {
                for h in 0..2 {
                    let x = _mm256_loadu_pd(pp.add(off + 4 * h));
                    let y = _mm256_loadu_pd(qp.add(off + 4 * h));
                    av[h] = _mm256_add_pd(av[h], _mm256_mul_pd(x, x));
                    bv[h] = _mm256_add_pd(bv[h], _mm256_mul_pd(y, y));
                    gv[h] = _mm256_add_pd(gv[h], _mm256_mul_pd(x, y));
                }
                off += GRAM_LANES;
            }
            _mm256_storeu_pd(aa.as_mut_ptr(), av[0]);
            _mm256_storeu_pd(aa.as_mut_ptr().add(4), av[1]);
            _mm256_storeu_pd(bb.as_mut_ptr(), bv[0]);
            _mm256_storeu_pd(bb.as_mut_ptr().add(4), bv[1]);
            _mm256_storeu_pd(gg.as_mut_ptr(), gv[0]);
            _mm256_storeu_pd(gg.as_mut_ptr().add(4), gv[1]);
        }
    }

    /// Vector body of [`crate::kernels::rot2`]: the plane rotation with
    /// multiplies, add and subtract kept separate — bitwise identical to
    /// the scalar element loop. Handles whole 4-lane groups only; the
    /// dispatcher runs the scalar tail.
    ///
    /// # Safety
    /// Requires AVX2 (guaranteed by the dispatching wrapper).
    // SAFETY: pointer arithmetic is bounded by the length asserts below;
    // the feature guard is the wrapper's detection clamp.
    #[target_feature(enable = "avx2")]
    unsafe fn rot2_avx2(cp: &mut [f64], cq: &mut [f64], c: f64, s: f64) {
        assert!(cp.len() == cq.len() && cp.len().is_multiple_of(4), "rot2 vector prefix shape");
        // SAFETY: equal lengths in whole 4-lane groups (asserted), so
        // every paired load/store is in bounds.
        unsafe {
            let (cv, sv) = (_mm256_set1_pd(c), _mm256_set1_pd(s));
            let xp = cp.as_mut_ptr();
            let yp = cq.as_mut_ptr();
            let mut i = 0usize;
            while i < cp.len() {
                let x = _mm256_loadu_pd(xp.add(i));
                let y = _mm256_loadu_pd(yp.add(i));
                let nx = _mm256_sub_pd(_mm256_mul_pd(cv, x), _mm256_mul_pd(sv, y));
                let ny = _mm256_add_pd(_mm256_mul_pd(sv, x), _mm256_mul_pd(cv, y));
                _mm256_storeu_pd(xp.add(i), nx);
                _mm256_storeu_pd(yp.add(i), ny);
                i += 4;
            }
        }
    }

    /// Issues a best-effort read prefetch for the cache line at `ptr`
    /// into all cache levels. A pure scheduling hint: prefetch never
    /// faults, never reads architecturally, and never changes results.
    ///
    /// PREFETCHT0 is an architectural no-op on invalid addresses — it
    /// never faults and never dereferences `ptr`, so this fn is safe.
    // SAFETY: PREFETCHT0 only hints the cache hierarchy; it performs no
    // architectural load, so any `ptr` value (even dangling) is fine.
    #[target_feature(enable = "sse")]
    fn prefetch_raw(ptr: *const u8) {
        _mm_prefetch::<_MM_HINT_T0>(ptr.cast())
    }

    /// Best-effort read prefetch of the cache line holding `ptr`. A pure
    /// scheduling hint: it never faults and never changes results.
    // PREFETCHT0 performs no architectural dereference (doc above), so a
    // safe raw-pointer API is sound here.
    #[allow(clippy::not_unsafe_ptr_arg_deref)]
    #[inline(always)]
    pub fn prefetch_read(ptr: *const u8) {
        // SAFETY: the only feature `prefetch_raw` needs is SSE, which is
        // statically part of the x86_64 baseline every build here
        // targets (the compiler merely insists it be spelled out).
        unsafe { prefetch_raw(ptr) }
    }

    /// AVX2 GEMM micro-kernel, direct writeback (see [`mk_avx2_direct`]).
    #[inline]
    pub fn microkernel_avx2_direct(
        kc: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        off: usize,
        stride: usize,
    ) {
        // SAFETY: reachable only when active_tier() >= Avx2, which the
        // clamp in set_tier/init_tier ties to is_x86_feature_detected!
        // having confirmed avx2+fma on this CPU.
        unsafe { mk_avx2_direct(kc, a, b, out, off, stride) }
    }

    /// AVX-512 paired-strip GEMM micro-kernel, direct writeback (see
    /// [`mk_avx512_pair`]).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn microkernel_avx512_pair(
        kc: usize,
        a: &[f32],
        b0s: &[f32],
        b1s: &[f32],
        out: &mut [f32],
        off: usize,
        stride: usize,
    ) {
        // SAFETY: reachable only when active_tier() == Avx512, which the
        // clamp in set_tier/init_tier ties to is_x86_feature_detected!
        // having confirmed avx512f on this CPU.
        unsafe { mk_avx512_pair(kc, a, b0s, b1s, out, off, stride) }
    }

    /// Vectorized dot-product accumulation (see [`dot_acc_avx2`]).
    #[inline]
    pub fn dot_accumulate(a: &[f32], b: &[f32], acc: &mut [f64; DOT_LANES]) {
        // SAFETY: reachable only when active_tier() >= Avx2 (detection
        // clamp, see microkernel_avx2).
        unsafe { dot_acc_avx2(a, b, acc) }
    }

    /// Vectorized columnwise-dots row block (see [`col_dots_avx2`]).
    #[inline]
    pub fn col_dots_block(ab: &[f32], bb: &[f32], cols: usize, local: &mut [f64]) {
        // SAFETY: reachable only when active_tier() >= Avx2 (detection
        // clamp, see microkernel_avx2).
        unsafe { col_dots_avx2(ab, bb, cols, local) }
    }

    /// Vectorized fused 4-way axpy (see [`axpy4_avx2`]).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn axpy4(seg: &mut [f32], d: [&[f32]; 4], c0: f32, c1: f32, c2: f32, c3: f32) {
        // SAFETY: reachable only when active_tier() >= Avx2 (detection
        // clamp, see microkernel_avx2).
        unsafe { axpy4_avx2(seg, d[0], d[1], d[2], d[3], c0, c1, c2, c3) }
    }

    /// Vectorized gram2 accumulation (see [`gram2_acc_avx2`]).
    #[inline]
    pub fn gram2_accumulate(
        cp: &[f64],
        cq: &[f64],
        aa: &mut [f64; GRAM_LANES],
        bb: &mut [f64; GRAM_LANES],
        gg: &mut [f64; GRAM_LANES],
    ) {
        // SAFETY: reachable only when active_tier() >= Avx2 (detection
        // clamp, see microkernel_avx2).
        unsafe { gram2_acc_avx2(cp, cq, aa, bb, gg) }
    }

    /// Vectorized plane rotation over whole 4-lane groups (see
    /// [`rot2_avx2`]).
    #[inline]
    pub fn rot2(cp: &mut [f64], cq: &mut [f64], c: f64, s: f64) {
        // SAFETY: reachable only when active_tier() >= Avx2 (detection
        // clamp, see microkernel_avx2).
        unsafe { rot2_avx2(cp, cq, c, s) }
    }
}

#[cfg(target_arch = "x86_64")]
pub use x86::*;

#[cfg(not(target_arch = "x86_64"))]
mod fallback {
    //! Unreachable stubs: off x86_64 [`super::active_tier`] is always
    //! [`super::SimdTier::Scalar`], so the dispatch arms calling these
    //! never execute.

    use crate::kernels::{DOT_LANES, GRAM_LANES};

    /// No-op on non-x86_64 targets (no portable prefetch hint).
    #[inline(always)]
    pub fn prefetch_read(_ptr: *const u8) {}

    /// Unreachable off x86_64 (dispatch never selects a SIMD tier).
    pub fn microkernel_avx2_direct(
        _: usize,
        _: &[f32],
        _: &[f32],
        _: &mut [f32],
        _: usize,
        _: usize,
    ) {
        // xtask:panic-ok(cfg stub: dispatch clamps to Scalar off x86_64, so no caller ever reaches a SIMD tier here)
        unreachable!("SIMD tier selected off x86_64")
    }

    /// Unreachable off x86_64 (dispatch never selects a SIMD tier).
    #[allow(clippy::too_many_arguments)]
    pub fn microkernel_avx512_pair(
        _: usize,
        _: &[f32],
        _: &[f32],
        _: &[f32],
        _: &mut [f32],
        _: usize,
        _: usize,
    ) {
        // xtask:panic-ok(cfg stub: dispatch clamps to Scalar off x86_64, so no caller ever reaches a SIMD tier here)
        unreachable!("SIMD tier selected off x86_64")
    }

    /// Unreachable off x86_64 (dispatch never selects a SIMD tier).
    pub fn dot_accumulate(_: &[f32], _: &[f32], _: &mut [f64; DOT_LANES]) {
        // xtask:panic-ok(cfg stub: dispatch clamps to Scalar off x86_64, so no caller ever reaches a SIMD tier here)
        unreachable!("SIMD tier selected off x86_64")
    }

    /// Unreachable off x86_64 (dispatch never selects a SIMD tier).
    pub fn col_dots_block(_: &[f32], _: &[f32], _: usize, _: &mut [f64]) {
        // xtask:panic-ok(cfg stub: dispatch clamps to Scalar off x86_64, so no caller ever reaches a SIMD tier here)
        unreachable!("SIMD tier selected off x86_64")
    }

    /// Unreachable off x86_64 (dispatch never selects a SIMD tier).
    pub fn axpy4(_: &mut [f32], _: [&[f32]; 4], _: f32, _: f32, _: f32, _: f32) {
        // xtask:panic-ok(cfg stub: dispatch clamps to Scalar off x86_64, so no caller ever reaches a SIMD tier here)
        unreachable!("SIMD tier selected off x86_64")
    }

    /// Unreachable off x86_64 (dispatch never selects a SIMD tier).
    pub fn gram2_accumulate(
        _: &[f64],
        _: &[f64],
        _: &mut [f64; GRAM_LANES],
        _: &mut [f64; GRAM_LANES],
        _: &mut [f64; GRAM_LANES],
    ) {
        // xtask:panic-ok(cfg stub: dispatch clamps to Scalar off x86_64, so no caller ever reaches a SIMD tier here)
        unreachable!("SIMD tier selected off x86_64")
    }

    /// Unreachable off x86_64 (dispatch never selects a SIMD tier).
    pub fn rot2(_: &mut [f64], _: &mut [f64], _: f64, _: f64) {
        // xtask:panic-ok(cfg stub: dispatch clamps to Scalar off x86_64, so no caller ever reaches a SIMD tier here)
        unreachable!("SIMD tier selected off x86_64")
    }
}

#[cfg(not(target_arch = "x86_64"))]
pub use fallback::*;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_ordering_supports_clamping() {
        assert!(SimdTier::Scalar < SimdTier::Avx2);
        assert!(SimdTier::Avx2 < SimdTier::Avx512);
        assert_eq!(SimdTier::Avx512.min(SimdTier::Scalar), SimdTier::Scalar);
    }

    #[test]
    fn parse_and_name_roundtrip() {
        for t in [SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512] {
            assert_eq!(SimdTier::parse(t.name()), Some(t));
        }
        assert_eq!(SimdTier::parse("AVX2"), Some(SimdTier::Avx2));
        assert_eq!(SimdTier::parse("neon"), None);
    }

    #[test]
    fn set_tier_clamps_to_detected() {
        let det = detected_tier();
        assert_eq!(set_tier(SimdTier::Avx512), det.min(SimdTier::Avx512));
        assert_eq!(set_tier(SimdTier::Scalar), SimdTier::Scalar);
        assert_eq!(active_tier(), SimdTier::Scalar);
        // Restore the best tier for the rest of the test binary.
        set_tier(det);
    }

    #[test]
    fn detected_features_lists_baseline() {
        let f = detected_features();
        if cfg!(target_arch = "x86_64") {
            assert!(f.contains("sse2"), "{f}");
        }
    }
}
