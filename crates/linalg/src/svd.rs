//! One-sided Jacobi SVD for small dense matrices (replacing
//! `LAPACKE_sgesvd` in Algorithm 3).
//!
//! The randomized SVD only ever takes the SVD of the tiny projected matrix
//! `C = Zᵀ B` (`d × d`, with `d` ≤ a few hundred), so an O(d³)-per-sweep
//! Jacobi iteration is plenty fast and — unlike faster bidiagonalization
//! methods — is simple to make robustly convergent. We run in `f64`
//! internally and convert at the boundary.
//!
//! One-sided Jacobi orthogonalizes the *columns* of `A` by plane rotations
//! `A ← A·J`; at convergence `A = U·Σ` column-wise and the accumulated
//! rotations give `V`, i.e. `A_original = U Σ Vᵀ`.

use crate::dense::DenseMatrix;

/// Full SVD result of a small matrix: `A = U · diag(sigma) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct SmallSvd {
    /// Left singular vectors, `m × n` (thin).
    pub u: DenseMatrix,
    /// Singular values, descending.
    pub sigma: Vec<f32>,
    /// Right singular vectors, `n × n`.
    pub v: DenseMatrix,
}

/// Computes the thin SVD of `a` (`m × n`, requires `m ≥ n`).
///
/// # Panics
/// Panics if `m < n` (transpose first; the caller in this workspace always
/// has a square matrix).
pub fn jacobi_svd(a: &DenseMatrix) -> SmallSvd {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "jacobi_svd requires rows >= cols");

    // Column-major f64 working copies.
    let mut cols: Vec<Vec<f64>> =
        (0..n).map(|j| (0..m).map(|i| a.get(i, j) as f64).collect()).collect();
    let mut v: Vec<Vec<f64>> = (0..n)
        .map(|j| {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            e
        })
        .collect();

    let eps = 1e-14;
    let max_sweeps = 60;
    for _sweep in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let (alpha, beta, gamma) = {
                    let (cp, cq) = (&cols[p], &cols[q]);
                    let mut alpha = 0.0;
                    let mut beta = 0.0;
                    let mut gamma = 0.0;
                    for i in 0..m {
                        alpha += cp[i] * cp[i];
                        beta += cq[i] * cq[i];
                        gamma += cp[i] * cq[i];
                    }
                    (alpha, beta, gamma)
                };
                let denom = (alpha * beta).sqrt();
                if denom <= 0.0 || gamma.abs() <= eps * denom {
                    continue;
                }
                off = off.max(gamma.abs() / denom);
                // Rotation angle zeroing the (p,q) off-diagonal of AᵀA.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;

                // Apply to columns p, q of A and of V.
                let (lo, hi) = cols.split_at_mut(q);
                let (cp, cq) = (&mut lo[p], &mut hi[0]);
                for i in 0..m {
                    let (x, y) = (cp[i], cq[i]);
                    cp[i] = c * x - s * y;
                    cq[i] = s * x + c * y;
                }
                let (lo, hi) = v.split_at_mut(q);
                let (vp, vq) = (&mut lo[p], &mut hi[0]);
                for i in 0..n {
                    let (x, y) = (vp[i], vq[i]);
                    vp[i] = c * x - s * y;
                    vq[i] = s * x + c * y;
                }
            }
        }
        if off < 1e-12 {
            break;
        }
    }

    // Extract singular values (column norms), sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> =
        cols.iter().map(|c| c.iter().map(|x| x * x).sum::<f64>().sqrt()).collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

    let mut u = DenseMatrix::zeros(m, n);
    let mut vm = DenseMatrix::zeros(n, n);
    let mut sigma = vec![0.0f32; n];
    for (jj, &j) in order.iter().enumerate() {
        let s = norms[j];
        sigma[jj] = s as f32;
        if s > 0.0 {
            for (i, &x) in cols[j].iter().enumerate().take(m) {
                u.set(i, jj, (x / s) as f32);
            }
        }
        for (i, &x) in v[j].iter().enumerate().take(n) {
            vm.set(i, jj, x as f32);
        }
    }
    SmallSvd { u, sigma, v: vm }
}

/// Thin SVD of a tall matrix (`n × d`, `n ≫ d`) via the Gram-matrix
/// method: Jacobi-diagonalize `YᵀY = V Σ² Vᵀ` (a `d × d` problem) and lift
/// `U = Y V Σ⁻¹`. This is how ProNE re-orthogonalizes the propagated
/// embedding; accuracy is `O(κ²·ε)` which is ample for embedding purposes.
pub fn tall_thin_svd(y: &DenseMatrix) -> SmallSvd {
    let gram = y.gram_tn(y); // d × d, symmetric PSD
    let gsvd = jacobi_svd(&gram);
    // Eigenvalues of the Gram matrix are σ², eigenvectors are V.
    let sigma: Vec<f32> = gsvd.sigma.iter().map(|&s| s.max(0.0).sqrt()).collect();
    let v = gsvd.u; // for symmetric PSD input, U == V
    let mut u = y.matmul(&v);
    let inv: Vec<f32> = sigma.iter().map(|&s| if s > 1e-12 { 1.0 / s } else { 0.0 }).collect();
    u.scale_columns(&inv);
    SmallSvd { u, sigma, v }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(svd: &SmallSvd) -> DenseMatrix {
        let mut us = svd.u.clone();
        us.scale_columns(&svd.sigma);
        us.matmul(&svd.v.transpose())
    }

    fn assert_orthonormal(q: &DenseMatrix, tol: f32) {
        let g = q.gram_tn(q);
        for i in 0..q.cols() {
            for j in 0..q.cols() {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (g.get(i, j) - want).abs() < tol,
                    "gram[{i},{j}]={} want {want}",
                    g.get(i, j)
                );
            }
        }
    }

    #[test]
    fn diagonal_matrix_svd() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 7.0]]);
        let svd = jacobi_svd(&a);
        assert!((svd.sigma[0] - 7.0).abs() < 1e-5);
        assert!((svd.sigma[1] - 3.0).abs() < 1e-5);
        assert!(reconstruct(&svd).max_abs_diff(&a) < 1e-5);
    }

    #[test]
    fn random_square_reconstruction() {
        for seed in 0..5 {
            let a = DenseMatrix::gaussian(32, 32, seed);
            let svd = jacobi_svd(&a);
            let diff = reconstruct(&svd).max_abs_diff(&a);
            assert!(diff < 1e-3, "seed {seed}: reconstruction error {diff}");
            assert_orthonormal(&svd.u, 1e-4);
            assert_orthonormal(&svd.v, 1e-4);
            // Descending order.
            assert!(svd.sigma.windows(2).all(|w| w[0] >= w[1] - 1e-6));
        }
    }

    #[test]
    fn tall_matrix_reconstruction() {
        let a = DenseMatrix::gaussian(50, 10, 3);
        let svd = jacobi_svd(&a);
        assert!(reconstruct(&svd).max_abs_diff(&a) < 1e-3);
        assert_orthonormal(&svd.u, 1e-4);
    }

    #[test]
    fn rank_one_matrix() {
        // a = 2 * u v^T with unit u,v: single nonzero singular value 2·||u||·||v||.
        let mut a = DenseMatrix::zeros(4, 3);
        let u = [0.5f32, 0.5, 0.5, 0.5];
        let v = [1.0f32 / 3.0f32.sqrt(); 3];
        for (i, &ui) in u.iter().enumerate() {
            for (j, &vj) in v.iter().enumerate() {
                a.set(i, j, 2.0 * ui * vj);
            }
        }
        let svd = jacobi_svd(&a);
        assert!((svd.sigma[0] - 2.0).abs() < 1e-5, "{:?}", svd.sigma);
        assert!(svd.sigma[1].abs() < 1e-5);
        assert!(svd.sigma[2].abs() < 1e-5);
    }

    #[test]
    fn singular_values_match_eigendecomposition_of_gram() {
        // For symmetric PSD A, singular values = eigenvalues; check against
        // a hand-built spectrum via Q diag(λ) Qᵀ.
        let mut q = DenseMatrix::gaussian(6, 6, 17);
        crate::qr::orthonormalize_columns(&mut q);
        let lambda = [9.0f32, 5.0, 3.0, 2.0, 1.0, 0.5];
        let mut ql = q.clone();
        ql.scale_columns(&lambda);
        let a = ql.matmul(&q.transpose());
        let svd = jacobi_svd(&a);
        for (got, want) in svd.sigma.iter().zip(lambda.iter()) {
            assert!((got - want).abs() < 1e-3, "sigma {got} want {want}");
        }
    }

    #[test]
    fn zero_matrix() {
        let a = DenseMatrix::zeros(5, 5);
        let svd = jacobi_svd(&a);
        assert!(svd.sigma.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn tall_thin_svd_reconstructs() {
        let y = DenseMatrix::gaussian(800, 6, 21);
        let svd = tall_thin_svd(&y);
        assert!(reconstruct(&svd).max_abs_diff(&y) < 2e-3);
        assert_orthonormal(&svd.u, 2e-3);
        assert!(svd.sigma.windows(2).all(|w| w[0] >= w[1] - 1e-4));
    }

    #[test]
    fn tall_thin_svd_matches_jacobi_on_small_input() {
        let y = DenseMatrix::gaussian(40, 5, 22);
        let a = tall_thin_svd(&y);
        let b = jacobi_svd(&y);
        for (x, z) in a.sigma.iter().zip(&b.sigma) {
            assert!((x - z).abs() < 1e-2 * z.max(1.0), "{x} vs {z}");
        }
    }

    #[test]
    fn tall_thin_svd_rank_deficient() {
        // Two identical columns → one zero singular value, zeroed U column.
        let g = DenseMatrix::gaussian(100, 1, 23);
        let mut y = DenseMatrix::zeros(100, 2);
        for i in 0..100 {
            y.set(i, 0, g.get(i, 0));
            y.set(i, 1, g.get(i, 0));
        }
        let svd = tall_thin_svd(&y);
        assert!(svd.sigma[1] < 1e-2 * svd.sigma[0]);
        assert!(reconstruct(&svd).max_abs_diff(&y) < 2e-3);
    }
}
