//! One-sided Jacobi SVD for small dense matrices (replacing
//! `LAPACKE_sgesvd` in Algorithm 3).
//!
//! The randomized SVD only ever takes the SVD of the tiny projected matrix
//! `C = Zᵀ B` (`d × d`, with `d` ≤ a few hundred), so an O(d³)-per-sweep
//! Jacobi iteration is plenty fast and — unlike faster bidiagonalization
//! methods — is simple to make robustly convergent. We run in `f64`
//! internally and convert at the boundary.
//!
//! One-sided Jacobi orthogonalizes the *columns* of `A` by plane rotations
//! `A ← A·J`; at convergence `A = U·Σ` column-wise and the accumulated
//! rotations give `V`, i.e. `A_original = U Σ Vᵀ`.
//!
//! This is the blocked rewrite of the first port: columns live in one
//! flat column-major `f64` buffer (one allocation, no per-column `Vec`
//! churn), rotations go through the fused [`kernels::gram2`] /
//! [`kernels::rot2`] kernels, and each sweep is ordered by a fixed
//! round-robin (Brent–Luk) tournament — every round pairs all columns
//! into disjoint couples, so the rotations of a round commute exactly
//! and can run in parallel. The schedule depends only on `n`, never on
//! the thread count, so sweep order — and therefore the output bytes —
//! are identical at any rayon pool size.

use crate::dense::DenseMatrix;
use crate::kernels;
use rayon::prelude::*;

/// Full SVD result of a small matrix: `A = U · diag(sigma) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct SmallSvd {
    /// Left singular vectors, `m × n` (thin).
    pub u: DenseMatrix,
    /// Singular values, descending.
    pub sigma: Vec<f32>,
    /// Right singular vectors, `n × n`.
    pub v: DenseMatrix,
}

/// Off-diagonal threshold below which a pair is skipped (relative to the
/// geometric mean of the two column norms).
const PAIR_EPS: f64 = 1e-14;
/// A sweep whose largest relative off-diagonal stays below this has
/// converged.
const SWEEP_TOL: f64 = 1e-12;
const MAX_SWEEPS: usize = 60;

/// Column count below which a round's rotations run sequentially (in the
/// same fixed pair order). Spawning tasks and building the per-round
/// slot tables costs more than the rotations themselves for the small
/// projected matrices; the threshold depends only on `n` — never on the
/// thread count — and the rotations of a round touch disjoint columns
/// (they commute exactly), so both paths produce identical bytes.
const PAR_COLS: usize = 128;

/// The disjoint column pairs of round `round` (0-based, `< slots − 1`)
/// of the round-robin tournament over `n` columns. `slots` is `n`
/// rounded up to even; pairs touching the dummy slot are dropped, so odd
/// `n` simply sits one column out per round. Over the `slots − 1` rounds
/// of a sweep every unordered pair meets exactly once (the circle
/// method), independent of data and thread count.
fn round_robin_pairs(n: usize, round: usize) -> Vec<(usize, usize)> {
    let slots = n + (n & 1);
    if slots < 2 {
        return Vec::new();
    }
    let rot = slots - 1; // players 0..slots-2 rotate; player slots-1 is fixed
    let player = |pos: usize| (pos + round) % rot;
    let mut pairs = Vec::with_capacity(slots / 2);
    let (a, b) = (player(0), slots - 1);
    if a < n && b < n {
        pairs.push((a, b));
    }
    for k in 1..slots / 2 {
        let (a, b) = (player(k), player(rot - k));
        if a < n && b < n {
            pairs.push((a, b));
        }
    }
    pairs
}

/// Splits two length-`len` columns `p` and `q` out of a flat
/// column-major buffer, returned in `(p, q)` order.
fn pair_slices(buf: &mut [f64], len: usize, p: usize, q: usize) -> (&mut [f64], &mut [f64]) {
    let (lo, hi) = (p.min(q), p.max(q));
    let (head, tail) = buf.split_at_mut(hi * len);
    let a = &mut head[lo * len..(lo + 1) * len];
    let b = &mut tail[..len];
    if p < q {
        (a, b)
    } else {
        (b, a)
    }
}

/// Computes the Jacobi rotation for one column pair and applies it to
/// the data columns and the accumulated right-vector columns. Returns
/// the pre-rotation relative off-diagonal (0 when the pair was skipped).
fn rotate_pair(cp: &mut [f64], cq: &mut [f64], vp: &mut [f64], vq: &mut [f64]) -> f64 {
    let (alpha, beta, gamma) = kernels::gram2(cp, cq);
    let denom = (alpha * beta).sqrt();
    if denom <= 0.0 || gamma.abs() <= PAIR_EPS * denom {
        return 0.0;
    }
    // Rotation angle zeroing the (p,q) off-diagonal of AᵀA.
    let zeta = (beta - alpha) / (2.0 * gamma);
    let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = c * t;
    kernels::rot2(cp, cq, c, s);
    kernels::rot2(vp, vq, c, s);
    gamma.abs() / denom
}

/// Computes the thin SVD of `a` (`m × n`, requires `m ≥ n`).
///
/// # Panics
/// Panics if `m < n` (transpose first; the caller in this workspace always
/// has a square matrix).
pub fn jacobi_svd(a: &DenseMatrix) -> SmallSvd {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "jacobi_svd requires rows >= cols");
    if n == 0 {
        return SmallSvd {
            u: DenseMatrix::zeros(m, 0),
            sigma: Vec::new(),
            v: DenseMatrix::zeros(0, 0),
        };
    }

    // Flat column-major f64 working copies: `cols[j·m + i] = a[i][j]`,
    // `v[j·n + i] = V[i][j]` (started at the identity).
    let mut cols = vec![0.0f64; n * m];
    for (j, col) in cols.chunks_exact_mut(m).enumerate() {
        for (i, x) in col.iter_mut().enumerate() {
            *x = a.get(i, j) as f64;
        }
    }
    let mut v = vec![0.0f64; n * n];
    for j in 0..n {
        v[j * n + j] = 1.0;
    }

    // The tournament schedule depends only on `n`: build it once.
    let slots = n + (n & 1);
    let schedule: Vec<Vec<(usize, usize)>> =
        (0..slots.saturating_sub(1)).map(|r| round_robin_pairs(n, r)).collect();

    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for pairs in &schedule {
            if pairs.is_empty() {
                continue;
            }
            let round_off = if n < PAR_COLS {
                // Small problem: run the round's rotations in the same
                // fixed pair order without task-spawn overhead.
                let mut worst = 0.0f64;
                for &(p, q) in pairs {
                    let (cp, cq) = pair_slices(&mut cols, m, p, q);
                    let (vp, vq) = pair_slices(&mut v, n, p, q);
                    worst = worst.max(rotate_pair(cp, cq, vp, vq));
                }
                worst
            } else {
                // Disjoint pairs: hand each task exclusive &mut slices
                // of its two data columns and two V columns.
                let mut cslots: Vec<Option<&mut [f64]>> =
                    cols.chunks_exact_mut(m).map(Some).collect();
                let mut vslots: Vec<Option<&mut [f64]>> = v.chunks_exact_mut(n).map(Some).collect();
                let tasks: Vec<_> = pairs
                    .iter()
                    .map(|&(p, q)| {
                        // xtask:panic-ok(invariant: round-robin schedule pairs each column index at most once per round)
                        let cp = cslots[p].take().expect("round pairs must be disjoint");
                        let cq = cslots[q].take().expect("round pairs must be disjoint");
                        let vp = vslots[p].take().expect("round pairs must be disjoint");
                        // xtask:panic-ok(same disjoint-pairs invariant)
                        let vq = vslots[q].take().expect("round pairs must be disjoint");
                        (cp, cq, vp, vq)
                    })
                    .collect();
                // Max is exactly commutative, so the parallel reduction
                // is deterministic; the rotations themselves touch
                // disjoint columns whose content is fixed at the round
                // boundary.
                tasks
                    .into_par_iter()
                    .map(|(cp, cq, vp, vq)| rotate_pair(cp, cq, vp, vq))
                    // xtask:allow(L3): f64::max is commutative and
                    // associative; reduction order cannot change it.
                    .reduce(|| 0.0f64, f64::max)
            };
            off = off.max(round_off);
        }
        if off < SWEEP_TOL {
            break;
        }
    }

    // Extract singular values (column norms), sort descending (stable:
    // ties keep ascending column order).
    let norms: Vec<f64> =
        cols.chunks_exact(m).map(|c| c.iter().map(|x| x * x).sum::<f64>().sqrt()).collect();
    let mut order: Vec<usize> = (0..n).collect();
    // xtask:panic-ok(norms are sums of squares, never NaN, so partial_cmp always succeeds)
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

    let mut u = DenseMatrix::zeros(m, n);
    let mut vm = DenseMatrix::zeros(n, n);
    let mut sigma = vec![0.0f32; n];
    for (jj, &j) in order.iter().enumerate() {
        let s = norms[j];
        sigma[jj] = s as f32;
        if s > 0.0 {
            for (i, &x) in cols[j * m..(j + 1) * m].iter().enumerate() {
                u.set(i, jj, (x / s) as f32);
            }
        }
        for (i, &x) in v[j * n..(j + 1) * n].iter().enumerate() {
            vm.set(i, jj, x as f32);
        }
    }
    SmallSvd { u, sigma, v: vm }
}

/// Thin SVD of a tall matrix (`n × d`, `n ≫ d`) via the Gram-matrix
/// method: Jacobi-diagonalize `YᵀY = V Σ² Vᵀ` (a `d × d` problem) and lift
/// `U = Y V Σ⁻¹`. This is how ProNE re-orthogonalizes the propagated
/// embedding; accuracy is `O(κ²·ε)` which is ample for embedding purposes.
pub fn tall_thin_svd(y: &DenseMatrix) -> SmallSvd {
    let gram = y.gram_tn(y); // d × d, symmetric PSD
    let gsvd = jacobi_svd(&gram);
    // Eigenvalues of the Gram matrix are σ², eigenvectors are V.
    let sigma: Vec<f32> = gsvd.sigma.iter().map(|&s| s.max(0.0).sqrt()).collect();
    let v = gsvd.u; // for symmetric PSD input, U == V
    let mut u = y.matmul(&v);
    let inv: Vec<f32> = sigma.iter().map(|&s| if s > 1e-12 { 1.0 / s } else { 0.0 }).collect();
    u.scale_columns(&inv);
    SmallSvd { u, sigma, v }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(svd: &SmallSvd) -> DenseMatrix {
        let mut us = svd.u.clone();
        us.scale_columns(&svd.sigma);
        us.matmul(&svd.v.transpose())
    }

    fn assert_orthonormal(q: &DenseMatrix, tol: f32) {
        let g = q.gram_tn(q);
        for i in 0..q.cols() {
            for j in 0..q.cols() {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (g.get(i, j) - want).abs() < tol,
                    "gram[{i},{j}]={} want {want}",
                    g.get(i, j)
                );
            }
        }
    }

    #[test]
    fn round_robin_schedule_meets_every_pair_once() {
        for n in [2usize, 3, 4, 5, 8, 9, 48] {
            let slots = n + (n & 1);
            let mut met = vec![0u32; n * n];
            for round in 0..slots - 1 {
                let pairs = round_robin_pairs(n, round);
                let mut used = vec![false; n];
                for (p, q) in pairs {
                    assert!(p != q && p < n && q < n);
                    assert!(!used[p] && !used[q], "n={n} round={round}: column reused");
                    used[p] = true;
                    used[q] = true;
                    let (lo, hi) = (p.min(q), p.max(q));
                    met[lo * n + hi] += 1;
                }
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    assert_eq!(met[p * n + q], 1, "n={n}: pair ({p},{q}) met wrong count");
                }
            }
        }
    }

    #[test]
    fn diagonal_matrix_svd() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 7.0]]);
        let svd = jacobi_svd(&a);
        assert!((svd.sigma[0] - 7.0).abs() < 1e-5);
        assert!((svd.sigma[1] - 3.0).abs() < 1e-5);
        assert!(reconstruct(&svd).max_abs_diff(&a) < 1e-5);
    }

    #[test]
    fn random_square_reconstruction() {
        for seed in 0..5 {
            let a = DenseMatrix::gaussian(32, 32, seed);
            let svd = jacobi_svd(&a);
            let diff = reconstruct(&svd).max_abs_diff(&a);
            assert!(diff < 1e-3, "seed {seed}: reconstruction error {diff}");
            assert_orthonormal(&svd.u, 1e-4);
            assert_orthonormal(&svd.v, 1e-4);
            // Descending order.
            assert!(svd.sigma.windows(2).all(|w| w[0] >= w[1] - 1e-6));
        }
    }

    #[test]
    fn odd_dimension_reconstruction() {
        // Odd n exercises the dummy tournament slot.
        for n in [3usize, 7, 17] {
            let a = DenseMatrix::gaussian(n + 2, n, 100 + n as u64);
            let svd = jacobi_svd(&a);
            let diff = reconstruct(&svd).max_abs_diff(&a);
            assert!(diff < 1e-3, "n {n}: reconstruction error {diff}");
            assert_orthonormal(&svd.v, 1e-4);
        }
    }

    #[test]
    fn tall_matrix_reconstruction() {
        let a = DenseMatrix::gaussian(50, 10, 3);
        let svd = jacobi_svd(&a);
        assert!(reconstruct(&svd).max_abs_diff(&a) < 1e-3);
        assert_orthonormal(&svd.u, 1e-4);
    }

    #[test]
    fn rank_one_matrix() {
        // a = 2 * u v^T with unit u,v: single nonzero singular value 2·||u||·||v||.
        let mut a = DenseMatrix::zeros(4, 3);
        let u = [0.5f32, 0.5, 0.5, 0.5];
        let v = [1.0f32 / 3.0f32.sqrt(); 3];
        for (i, &ui) in u.iter().enumerate() {
            for (j, &vj) in v.iter().enumerate() {
                a.set(i, j, 2.0 * ui * vj);
            }
        }
        let svd = jacobi_svd(&a);
        assert!((svd.sigma[0] - 2.0).abs() < 1e-5, "{:?}", svd.sigma);
        assert!(svd.sigma[1].abs() < 1e-5);
        assert!(svd.sigma[2].abs() < 1e-5);
    }

    #[test]
    fn singular_values_match_eigendecomposition_of_gram() {
        // For symmetric PSD A, singular values = eigenvalues; check against
        // a hand-built spectrum via Q diag(λ) Qᵀ.
        let mut q = DenseMatrix::gaussian(6, 6, 17);
        crate::qr::orthonormalize_columns(&mut q);
        let lambda = [9.0f32, 5.0, 3.0, 2.0, 1.0, 0.5];
        let mut ql = q.clone();
        ql.scale_columns(&lambda);
        let a = ql.matmul(&q.transpose());
        let svd = jacobi_svd(&a);
        for (got, want) in svd.sigma.iter().zip(lambda.iter()) {
            assert!((got - want).abs() < 1e-3, "sigma {got} want {want}");
        }
    }

    #[test]
    fn zero_matrix() {
        let a = DenseMatrix::zeros(5, 5);
        let svd = jacobi_svd(&a);
        assert!(svd.sigma.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn one_by_one_and_empty() {
        let a = DenseMatrix::from_vec(1, 1, vec![-3.0]);
        let svd = jacobi_svd(&a);
        assert!((svd.sigma[0] - 3.0).abs() < 1e-7);
        assert!(reconstruct(&svd).max_abs_diff(&a) < 1e-6);

        let e = jacobi_svd(&DenseMatrix::zeros(4, 0));
        assert_eq!(e.u.rows(), 4);
        assert_eq!(e.u.cols(), 0);
        assert!(e.sigma.is_empty());
    }

    #[test]
    fn tall_thin_svd_reconstructs() {
        let y = DenseMatrix::gaussian(800, 6, 21);
        let svd = tall_thin_svd(&y);
        assert!(reconstruct(&svd).max_abs_diff(&y) < 2e-3);
        assert_orthonormal(&svd.u, 2e-3);
        assert!(svd.sigma.windows(2).all(|w| w[0] >= w[1] - 1e-4));
    }

    #[test]
    fn tall_thin_svd_matches_jacobi_on_small_input() {
        let y = DenseMatrix::gaussian(40, 5, 22);
        let a = tall_thin_svd(&y);
        let b = jacobi_svd(&y);
        for (x, z) in a.sigma.iter().zip(&b.sigma) {
            assert!((x - z).abs() < 1e-2 * z.max(1.0), "{x} vs {z}");
        }
    }

    #[test]
    fn tall_thin_svd_rank_deficient() {
        // Two identical columns → one zero singular value, zeroed U column.
        let g = DenseMatrix::gaussian(100, 1, 23);
        let mut y = DenseMatrix::zeros(100, 2);
        for i in 0..100 {
            y.set(i, 0, g.get(i, 0));
            y.set(i, 1, g.get(i, 0));
        }
        let svd = tall_thin_svd(&y);
        assert!(svd.sigma[1] < 1e-2 * svd.sigma[0]);
        assert!(reconstruct(&svd).max_abs_diff(&y) < 2e-3);
    }
}
