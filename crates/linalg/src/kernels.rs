//! Cache- and register-blocked dense kernels — the hot-path engine room
//! behind [`crate::dense::DenseMatrix::matmul`], the panel QR in
//! [`crate::qr`] and the blocked Jacobi SVD in [`crate::svd`].
//!
//! The design follows the classic GotoBLAS/BLIS decomposition, shrunk to
//! the shapes LightNE cares about (tall-skinny times small-square):
//!
//! * **GEMM** — `C += A·B` is computed k-panel by k-panel. For each panel
//!   the relevant `KC` rows of `B` are packed once into contiguous
//!   `KC×NR` strips, row blocks of `A` are packed into `KC×MR` strips
//!   (a small blocked transpose), and an `MR×NR` register-tile
//!   micro-kernel runs over the packed buffers with unit-stride loads.
//! * **Determinism** — every blocking parameter below is a fixed
//!   constant, *never* derived from the thread count. Parallelism only
//!   splits the `M` dimension (disjoint output tiles); the k-panels are
//!   accumulated strictly in ascending order inside each output element,
//!   so the floating-point bracketing — and therefore the output bytes —
//!   are identical at any rayon pool size. This is what carries the
//!   PR 1 bitwise thread-count-determinism guarantee through the
//!   register-blocked rewrite.
//! * **Projection kernels** — the panel QR needs `coef = Q_done ·
//!   Panelᵀ` (an NT product over the tall dimension, accumulated in
//!   `f64`) and `Panel -= coefᵀ · Q_done` (a wide low-rank update). Both
//!   are provided here with fixed-block accumulation orders.
//! * **Rotation kernels** — the one-sided Jacobi SVD applies its plane
//!   rotations through the fused [`gram2`]/[`rot2`] pair so the column
//!   sweeps run at memory speed instead of through nested `Vec`s.
//! * **SIMD dispatch** — each kernel's innermost loop dispatches once per
//!   call on [`crate::simd::active_tier`]: the scalar bodies below are
//!   the portable fallback *and* the correctness oracle, the
//!   [`crate::simd`] module holds the explicit AVX2/AVX-512 variants.
//!   The `f64`-accumulating kernels are bitwise identical across tiers
//!   (lane assignment and fold bracketing live here, shared by both
//!   paths); only the `f32` GEMM micro-kernel diverges within a √k-scaled
//!   tolerance (FMA contraction), documented in [`crate::simd`].

use crate::simd::{self, SimdTier};
use rayon::prelude::*;

/// Micro-kernel tile height (rows of `A` held in registers).
pub const MR: usize = 4;
/// Micro-kernel tile width (columns of `B` held in registers).
///
/// `4×16` measured fastest across both the portable baseline build and
/// `-C target-cpu=native` on AVX-512 hosts: the 16-wide inner loop maps
/// to two packed FMAs per row and the 4×16 accumulator stays register
/// resident in either ISA.
pub const NR: usize = 16;
/// K-panel depth: `KC×MR` and `KC×NR` strips must fit in L1.
pub const KC: usize = 256;
/// Rows of `A` packed per parallel task (`MC×KC` block targets L2).
pub const MC: usize = 128;
/// Tile edge of the blocked transpose (32×32×4 B = 4 KiB per tile).
pub const TILE: usize = 32;

/// Below this `m·n·k` volume the packing overhead outweighs the
/// micro-kernel win and a plain branchless triple loop is used instead.
const SMALL_GEMM_FLOPS: usize = 16 * 1024;

/// Fixed row-block length for deterministic `f64` reductions over the
/// tall dimension (dot products, columnwise dots, projection
/// coefficients). Independent of the thread count on purpose.
pub const REDUCE_BLOCK: usize = 4096;

/// Nominal FLOP count of a dense `m×k · k×n` GEMM.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// Copies the transpose of an `rows×cols` tile: `dst[c·dst_stride + r] =
/// src[r·src_stride + c]`. Shared by [`crate::dense::DenseMatrix::transpose`]
/// (which walks the matrix in `TILE×TILE` tiles) and by the GEMM A-panel
/// packing (which is the same gather with `dst_stride = MR`).
#[inline]
pub(crate) fn transpose_tile(
    src: &[f32],
    src_stride: usize,
    dst: &mut [f32],
    dst_stride: usize,
    rows: usize,
    cols: usize,
) {
    for r in 0..rows {
        let srow = &src[r * src_stride..r * src_stride + cols];
        for (c, &v) in srow.iter().enumerate() {
            dst[c * dst_stride + r] = v;
        }
    }
}

/// Packs the `kc` rows starting at `k0` of row-major `b` (`?×n`) into
/// `⌈n/NR⌉` contiguous `kc×NR` strips (zero-padded on the right edge).
fn pack_b(b: &[f32], n: usize, k0: usize, kc: usize, pack: &mut Vec<f32>) {
    let strips = n.div_ceil(NR);
    pack.clear();
    pack.resize(strips * kc * NR, 0.0);
    pack.par_chunks_mut(kc * NR).enumerate().for_each(|(sj, strip)| {
        let c0 = sj * NR;
        let cols = NR.min(n - c0);
        for kk in 0..kc {
            let src = &b[(k0 + kk) * n + c0..(k0 + kk) * n + c0 + cols];
            strip[kk * NR..kk * NR + cols].copy_from_slice(src);
        }
    });
}

/// Packs rows `[i0, i0+mc)` of row-major `a` (`?×k`) restricted to
/// columns `[k0, k0+kc)` into `⌈mc/MR⌉` strips of layout
/// `strip[kk·MR + r]` — i.e. a blocked transpose of each `MR×kc` slab,
/// done through the same [`transpose_tile`] the dense transpose uses.
fn pack_a(a: &[f32], k: usize, i0: usize, mc: usize, k0: usize, kc: usize, pack: &mut [f32]) {
    for (si, strip) in pack.chunks_exact_mut(kc * MR).enumerate() {
        let r0 = i0 + si * MR;
        let rows = MR.min(i0 + mc - r0);
        transpose_tile(&a[r0 * k + k0..], k, strip, MR, rows, kc);
    }
}

/// The register tile: `acc[r][c] += Σ_kk a[kk·MR+r] · b[kk·NR+c]`, with
/// both operands walked at unit stride through the packed strips.
///
/// Deliberately `inline(never)`: compiled as its own small function the
/// loop vectorizer reliably turns the `NR`-wide inner loop into packed
/// FMAs, whereas inlined into the (large) blocked-GEMM closure it
/// degrades to scalar unrolling — an order-of-magnitude difference. The
/// call costs one `call` per `MR×NR×KC` tile (~64k flops), i.e. nothing.
#[inline(never)]
fn micro_kernel(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    let mut local = [[0.0f32; NR]; MR];
    for (ak, bk) in a.chunks_exact(MR).zip(b.chunks_exact(NR)).take(kc) {
        for (r, lr) in local.iter_mut().enumerate() {
            let ar = ak[r];
            for (av, &bv) in lr.iter_mut().zip(bk) {
                *av += ar * bv;
            }
        }
    }
    for (ar, lr) in acc.iter_mut().zip(&local) {
        for (av, &lv) in ar.iter_mut().zip(lr) {
            *av += lv;
        }
    }
}

/// One staging-buffer tile: the scalar micro-kernel accumulates into a
/// zeroed `MR×NR` register tile, then the live `rows×cols` corner is
/// added into the output block. The portable fallback for every tile on
/// the scalar tier and for the ragged edge tiles on the SIMD tiers
/// (which write their full tiles directly, skipping the staging pass).
#[allow(clippy::too_many_arguments)]
fn tile_acc(
    kc: usize,
    astrip: &[f32],
    bstrip: &[f32],
    rows: usize,
    cols: usize,
    oblock: &mut [f32],
    r0: usize,
    c0: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    micro_kernel(kc, astrip, bstrip, &mut acc);
    for (r, accr) in acc.iter().enumerate().take(rows) {
        let off = (r0 + r) * n + c0;
        for (o, &v) in out_slice(oblock, off, cols).iter_mut().zip(accr) {
            *o += v;
        }
    }
}

/// Branchless naive triple loop for tiny problems (and the `k == 0`
/// degenerate case); sequential, so trivially deterministic.
fn gemm_small(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (l, &av) in arow.iter().enumerate() {
            let brow = &b[l * n..(l + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Packed-panel GEMM: `out += a (m×k) · b (k×n)`, all row-major flat
/// slices. `out` is accumulated into (callers pass a zeroed buffer for a
/// plain product).
///
/// Parallelism is over `MC`-row blocks of the output only; k-panels run
/// sequentially in ascending order, so every output element sees the
/// same summation bracketing at any thread count.
///
/// # Panics
/// Panics (via slice indexing) if the buffers are smaller than the
/// stated shapes.
pub fn gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(a.len() >= m * k && b.len() >= k * n && out.len() >= m * n, "gemm buffer too small");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if m * n * k <= SMALL_GEMM_FLOPS {
        gemm_small(m, n, k, a, b, out);
        return;
    }
    let strips_n = n.div_ceil(NR);
    let tier = simd::active_tier();
    let mut bpack = Vec::new();
    for k0 in (0..k).step_by(KC) {
        let kc = KC.min(k - k0);
        pack_b(b, n, k0, kc, &mut bpack);
        out[..m * n].par_chunks_mut(MC * n).enumerate().for_each(|(blk, oblock)| {
            let i0 = blk * MC;
            let mc = oblock.len() / n;
            let mut apack = vec![0.0f32; mc.div_ceil(MR) * kc * MR];
            pack_a(a, k, i0, mc, k0, kc, &mut apack);
            // Full tiles first, B strip outermost so it stays L1-resident
            // across the whole MC block (the A strips stream from L2 —
            // 8× less traffic than streaming all B strips per A strip);
            // on AVX-512, two adjacent full strips per kernel call. Tile
            // order never changes any output element's summation
            // bracketing (tiles are disjoint; k-panels remain ascending
            // in the outer loop), so all three tiers stay bitwise
            // thread-count deterministic and the scalar tier reproduces
            // the PR 4 bytes exactly.
            let full_si = mc / MR; // A strips with all MR rows live
            let full_sj = n / NR; // B strips with all NR columns live
            let mut sj = 0usize;
            match tier {
                SimdTier::Avx512 => {
                    while sj + 2 <= full_sj {
                        let b0s = &bpack[sj * kc * NR..][..kc * NR];
                        let b1s = &bpack[(sj + 1) * kc * NR..][..kc * NR];
                        for si in 0..full_si {
                            let astrip = &apack[si * kc * MR..][..kc * MR];
                            let off = si * MR * n + sj * NR;
                            simd::microkernel_avx512_pair(kc, astrip, b0s, b1s, oblock, off, n);
                        }
                        sj += 2;
                    }
                    // Odd leftover full strip: single-strip AVX2 kernel
                    // (fixed choice, so the tier stays deterministic).
                    if sj < full_sj {
                        let bstrip = &bpack[sj * kc * NR..][..kc * NR];
                        for si in 0..full_si {
                            let astrip = &apack[si * kc * MR..][..kc * MR];
                            let off = si * MR * n + sj * NR;
                            simd::microkernel_avx2_direct(kc, astrip, bstrip, oblock, off, n);
                        }
                        sj = full_sj;
                    }
                }
                SimdTier::Avx2 => {
                    while sj < full_sj {
                        let bstrip = &bpack[sj * kc * NR..][..kc * NR];
                        for si in 0..full_si {
                            let astrip = &apack[si * kc * MR..][..kc * MR];
                            let off = si * MR * n + sj * NR;
                            simd::microkernel_avx2_direct(kc, astrip, bstrip, oblock, off, n);
                        }
                        sj += 1;
                    }
                }
                SimdTier::Scalar => {
                    while sj < full_sj {
                        let bstrip = &bpack[sj * kc * NR..][..kc * NR];
                        for si in 0..full_si {
                            let astrip = &apack[si * kc * MR..][..kc * MR];
                            tile_acc(kc, astrip, bstrip, MR, NR, oblock, si * MR, sj * NR, n);
                        }
                        sj += 1;
                    }
                }
            }
            // Edge tiles — ragged last column strip over the full-row A
            // strips, then the partial-row A strip over every B strip —
            // always through the scalar micro-kernel + staging buffer
            // (a fixed per-tier choice; at most one strip each way).
            if sj < strips_n {
                let bstrip = &bpack[sj * kc * NR..][..kc * NR];
                let cols = n - sj * NR;
                for si in 0..full_si {
                    let astrip = &apack[si * kc * MR..][..kc * MR];
                    tile_acc(kc, astrip, bstrip, MR, cols, oblock, si * MR, sj * NR, n);
                }
            }
            if full_si * MR < mc {
                let rows = mc - full_si * MR;
                let astrip = &apack[full_si * kc * MR..][..kc * MR];
                for (sj, bstrip) in bpack.chunks_exact(kc * NR).enumerate().take(strips_n) {
                    let c0 = sj * NR;
                    let cols = NR.min(n - c0);
                    tile_acc(kc, astrip, bstrip, rows, cols, oblock, full_si * MR, c0, n);
                }
            }
        });
    }
}

#[inline(always)]
fn out_slice(block: &mut [f32], off: usize, len: usize) -> &mut [f32] {
    &mut block[off..off + len]
}

/// Number of independent `f64` accumulator lanes in [`dot_f64`]. Fixed
/// lane assignment → bitwise deterministic; 32 lanes keep several
/// vectors of partial sums in flight, hiding FMA latency that throttles
/// a single-accumulator loop (~3× over an 8-lane version measured).
pub const DOT_LANES: usize = 32;

/// Dot product of two `f32` slices accumulated in `f64` across
/// [`DOT_LANES`] fixed lanes, folded pairwise in a fixed bracketing.
/// Bitwise identical across dispatch tiers: widened `f32` products are
/// exact in `f64`, so the SIMD path's fused multiply-add rounds the same
/// value once, exactly like the scalar mul-then-add.
#[inline]
pub fn dot_f64(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; DOT_LANES];
    let main = a.len() - a.len() % DOT_LANES;
    match simd::active_tier() {
        SimdTier::Scalar => {
            let ac = a[..main].chunks_exact(DOT_LANES);
            let bc = b[..main].chunks_exact(DOT_LANES);
            for (x, y) in ac.zip(bc) {
                for lane in 0..DOT_LANES {
                    acc[lane] += x[lane] as f64 * y[lane] as f64;
                }
            }
        }
        SimdTier::Avx2 | SimdTier::Avx512 => simd::dot_accumulate(&a[..main], &b[..main], &mut acc),
    }
    let mut tail = 0.0f64;
    for (&x, &y) in a[main..].iter().zip(&b[main..]) {
        tail += x as f64 * y as f64;
    }
    // Pairwise tree fold, always the same bracketing.
    let mut width = DOT_LANES;
    while width > 1 {
        for i in 0..width / 2 {
            acc[i] = acc[2 * i] + acc[2 * i + 1];
        }
        width /= 2;
    }
    acc[0] + tail
}

/// Projection coefficients for the panel QR: `coef[q·nb + c] =
/// ⟨done_q, panel_c⟩` in `f64`, where `done` holds `ndone` finished rows
/// and `panel` holds `nb` in-flight rows, all of length `len`.
///
/// One parallel task per finished row; each coefficient is a single
/// fixed-pattern [`dot_f64`], so the result is thread-count independent.
pub fn proj_coef(done: &[f32], panel: &[f32], ndone: usize, nb: usize, len: usize) -> Vec<f64> {
    let mut coef = vec![0.0f64; ndone * nb];
    coef.par_chunks_mut(nb.max(1)).enumerate().for_each(|(q, crow)| {
        let qrow = &done[q * len..(q + 1) * len];
        for (c, out) in crow.iter_mut().enumerate() {
            *out = dot_f64(qrow, &panel[c * len..(c + 1) * len]);
        }
    });
    coef
}

/// Low-rank panel update for the panel QR:
/// `panel_c -= Σ_q coef[q·nb + c] · done_q` for every panel row `c`.
///
/// The tall dimension is walked in fixed `REDUCE_BLOCK` column chunks
/// (cache blocking: the `done` chunk rows stay hot across all panel
/// rows); within a chunk the q-loop runs in ascending fixed groups of
/// four, so the per-element bracketing never depends on the thread
/// count. Coefficients are applied in `f32`, matching the MGS update.
pub fn sub_proj(
    panel: &mut [f32],
    done: &[f32],
    coef: &[f64],
    nb: usize,
    ndone: usize,
    len: usize,
) {
    if nb == 0 || ndone == 0 || len == 0 {
        return;
    }
    let tier = simd::active_tier();
    for lo in (0..len).step_by(REDUCE_BLOCK) {
        let hi = (lo + REDUCE_BLOCK).min(len);
        panel[..nb * len].par_chunks_mut(len).enumerate().for_each(|(c, row)| {
            let seg = &mut row[lo..hi];
            let mut q = 0;
            while q + 4 <= ndone {
                let c0 = coef[q * nb + c] as f32;
                let c1 = coef[(q + 1) * nb + c] as f32;
                let c2 = coef[(q + 2) * nb + c] as f32;
                let c3 = coef[(q + 3) * nb + c] as f32;
                let d0 = &done[q * len + lo..q * len + hi];
                let d1 = &done[(q + 1) * len + lo..(q + 1) * len + hi];
                let d2 = &done[(q + 2) * len + lo..(q + 2) * len + hi];
                let d3 = &done[(q + 3) * len + lo..(q + 3) * len + hi];
                match tier {
                    SimdTier::Scalar => {
                        for ((((s, &v0), &v1), &v2), &v3) in
                            seg.iter_mut().zip(d0).zip(d1).zip(d2).zip(d3)
                        {
                            *s -= c0 * v0 + c1 * v1 + c2 * v2 + c3 * v3;
                        }
                    }
                    // Bitwise identical: same multiply/add association,
                    // vectorized across independent elements only.
                    SimdTier::Avx2 | SimdTier::Avx512 => {
                        simd::axpy4(seg, [d0, d1, d2, d3], c0, c1, c2, c3);
                    }
                }
                q += 4;
            }
            while q < ndone {
                let cf = coef[q * nb + c] as f32;
                let d = &done[q * len + lo..q * len + hi];
                for (s, &v) in seg.iter_mut().zip(d) {
                    *s -= cf * v;
                }
                q += 1;
            }
        });
    }
}

/// Columnwise dots of two row-major `rows×cols` matrices:
/// `out[j] = Σ_i a[i][j]·b[i][j]` in `f64`.
///
/// Fixed `REDUCE_BLOCK` row blocks, per-block partial vectors folded in
/// block order — deterministic at any pool size (same scheme as
/// `DenseMatrix::gram_tn`).
pub fn columnwise_dots(a: &[f32], b: &[f32], cols: usize) -> Vec<f64> {
    if cols == 0 {
        return Vec::new();
    }
    debug_assert_eq!(a.len(), b.len());
    let tier = simd::active_tier();
    let blocks: Vec<Vec<f64>> = a
        .par_chunks(REDUCE_BLOCK * cols)
        .zip(b.par_chunks(REDUCE_BLOCK * cols))
        .map(|(ab, bb)| {
            let mut local = vec![0.0f64; cols];
            match tier {
                SimdTier::Scalar => {
                    for (ar, br) in ab.chunks_exact(cols).zip(bb.chunks_exact(cols)) {
                        for ((l, &x), &y) in local.iter_mut().zip(ar).zip(br) {
                            *l += x as f64 * y as f64;
                        }
                    }
                }
                // Bitwise identical: per-column f64 accumulators are
                // independent and the widened products are exact.
                SimdTier::Avx2 | SimdTier::Avx512 => {
                    simd::col_dots_block(ab, bb, cols, &mut local);
                }
            }
            local
        })
        .collect();
    let mut acc = vec![0.0f64; cols];
    for block in blocks {
        for (x, y) in acc.iter_mut().zip(block) {
            *x += y;
        }
    }
    acc
}

/// Number of independent `f64` accumulator lanes in [`gram2`] — two
/// 4-wide vectors per Gram entry on the SIMD path; the scalar path uses
/// the same fixed lane assignment so both tiers fold identically.
pub const GRAM_LANES: usize = 8;

/// Scalar main-loop accumulation of [`gram2`] over whole
/// [`GRAM_LANES`]-element groups — the oracle the SIMD variant matches
/// bitwise (separate multiply and add per lane, no FMA contraction).
fn gram2_acc_scalar(
    cp: &[f64],
    cq: &[f64],
    aa: &mut [f64; GRAM_LANES],
    bb: &mut [f64; GRAM_LANES],
    gg: &mut [f64; GRAM_LANES],
) {
    for (x, y) in cp.chunks_exact(GRAM_LANES).zip(cq.chunks_exact(GRAM_LANES)) {
        for lane in 0..GRAM_LANES {
            aa[lane] += x[lane] * x[lane];
            bb[lane] += y[lane] * y[lane];
            gg[lane] += x[lane] * y[lane];
        }
    }
}

/// Pairwise tree fold of the fixed accumulator lanes — shared by both
/// dispatch tiers so the bracketing is identical.
#[inline]
fn fold_lanes(acc: &mut [f64; GRAM_LANES]) -> f64 {
    let mut width = GRAM_LANES;
    while width > 1 {
        for i in 0..width / 2 {
            acc[i] = acc[2 * i] + acc[2 * i + 1];
        }
        width /= 2;
    }
    acc[0]
}

/// Fused 2×2 Gram entries of two equal-length `f64` columns:
/// `(⟨p,p⟩, ⟨q,q⟩, ⟨p,q⟩)` across [`GRAM_LANES`] fixed accumulator lanes
/// folded pairwise. Bitwise identical across dispatch tiers.
#[inline]
pub fn gram2(cp: &[f64], cq: &[f64]) -> (f64, f64, f64) {
    debug_assert_eq!(cp.len(), cq.len());
    let mut aa = [0.0f64; GRAM_LANES];
    let mut bb = [0.0f64; GRAM_LANES];
    let mut gg = [0.0f64; GRAM_LANES];
    let main = cp.len() - cp.len() % GRAM_LANES;
    match simd::active_tier() {
        SimdTier::Scalar => gram2_acc_scalar(&cp[..main], &cq[..main], &mut aa, &mut bb, &mut gg),
        SimdTier::Avx2 | SimdTier::Avx512 => {
            simd::gram2_accumulate(&cp[..main], &cq[..main], &mut aa, &mut bb, &mut gg);
        }
    }
    let mut alpha = fold_lanes(&mut aa);
    let mut beta = fold_lanes(&mut bb);
    let mut gamma = fold_lanes(&mut gg);
    for (&x, &y) in cp[main..].iter().zip(&cq[main..]) {
        alpha += x * x;
        beta += y * y;
        gamma += x * y;
    }
    (alpha, beta, gamma)
}

/// Applies the plane rotation `[c -s; s c]` to the column pair
/// `(cp, cq)` in place — the Jacobi SVD's update, fused so both columns
/// stream through once. Bitwise identical across dispatch tiers (the
/// SIMD path keeps the multiplies, subtract and add separate in the same
/// order, vectorized over independent elements).
#[inline]
pub fn rot2(cp: &mut [f64], cq: &mut [f64], c: f64, s: f64) {
    debug_assert_eq!(cp.len(), cq.len());
    let main = match simd::active_tier() {
        SimdTier::Scalar => 0,
        SimdTier::Avx2 | SimdTier::Avx512 => cp.len() - cp.len() % 4,
    };
    if main > 0 {
        let (ph, pt) = cp.split_at_mut(main);
        let (qh, qt) = cq.split_at_mut(main);
        simd::rot2(ph, qh, c, s);
        rot2_scalar(pt, qt, c, s);
    } else {
        rot2_scalar(cp, cq, c, s);
    }
}

#[inline]
fn rot2_scalar(cp: &mut [f64], cq: &mut [f64], c: f64, s: f64) {
    for (x, y) in cp.iter_mut().zip(cq) {
        let (xv, yv) = (*x, *y);
        *x = c * xv - s * yv;
        *y = s * xv + c * yv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for l in 0..k {
                for j in 0..n {
                    out[i * n + j] += a[i * k + l] * b[l * n + j];
                }
            }
        }
        out
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = lightne_utils::rng::XorShiftStream::new(seed, 0);
        (0..len).map(|_| rng.unit_f32() * 2.0 - 1.0).collect()
    }

    #[test]
    fn gemm_matches_naive_across_blocking_boundaries() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (MR - 1, NR + 1, 3),
            (MR, NR, KC),
            (MR + 1, NR - 1, KC + 1),
            (MC - 1, 2 * NR + 3, KC - 1),
            (MC + 1, NR, 2 * KC + 1),
            (3 * MR + 2, 3 * NR + 5, 37),
        ] {
            let a = fill(m * k, 1 + m as u64);
            let b = fill(k * n, 2 + n as u64);
            let mut out = vec![0.0f32; m * n];
            gemm(m, n, k, &a, &b, &mut out);
            let want = naive(m, n, k, &a, &b);
            let tol = 1e-4 * (k as f32).sqrt().max(1.0);
            for (got, want) in out.iter().zip(&want) {
                assert!((got - want).abs() < tol, "({m},{n},{k}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn gemm_degenerate_shapes() {
        let mut out = vec![0.0f32; 0];
        gemm(0, 4, 3, &[], &fill(12, 3), &mut out);
        let mut out = vec![7.0f32; 6];
        gemm(2, 3, 0, &[], &[], &mut out);
        assert_eq!(out, vec![7.0; 6]); // k = 0 leaves the accumulator alone
    }

    #[test]
    fn gemm_accumulates_into_out() {
        let a = fill(4, 5);
        let b = fill(4, 6);
        let mut out = vec![1.0f32; 4];
        gemm(2, 2, 2, &a, &b, &mut out);
        let want = naive(2, 2, 2, &a, &b);
        for (o, w) in out.iter().zip(&want) {
            assert!((o - (w + 1.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn dot_f64_matches_reference() {
        let a = fill(1031, 7);
        let b = fill(1031, 8);
        let slow: f64 = a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
        assert!((dot_f64(&a, &b) - slow).abs() < 1e-9);
    }

    #[test]
    fn transpose_tile_roundtrip() {
        let src = fill(5 * 9, 9);
        let mut dst = vec![0.0f32; 9 * 5];
        transpose_tile(&src, 9, &mut dst, 5, 5, 9);
        for r in 0..5 {
            for c in 0..9 {
                assert_eq!(dst[c * 5 + r], src[r * 9 + c]);
            }
        }
    }

    #[test]
    fn columnwise_dots_matches_naive() {
        let cols = 5;
        let rows = 2 * REDUCE_BLOCK + 17;
        let a = fill(rows * cols, 11);
        let b = fill(rows * cols, 12);
        let got = columnwise_dots(&a, &b, cols);
        for j in 0..cols {
            let want: f64 =
                (0..rows).map(|i| a[i * cols + j] as f64 * b[i * cols + j] as f64).sum();
            assert!((got[j] - want).abs() < 1e-6, "col {j}");
        }
    }

    #[test]
    fn sub_proj_matches_sequential_axpys() {
        let (nb, ndone, len) = (3, 7, 2 * REDUCE_BLOCK + 5);
        let done = fill(ndone * len, 13);
        let coef: Vec<f64> = fill(ndone * nb, 14).iter().map(|&x| x as f64).collect();
        let mut panel = fill(nb * len, 15);
        let mut want = panel.clone();
        for c in 0..nb {
            for q in 0..ndone {
                let cf = coef[q * nb + c] as f32;
                for i in 0..len {
                    want[c * len + i] -= cf * done[q * len + i];
                }
            }
        }
        sub_proj(&mut panel, &done, &coef, nb, ndone, len);
        for (got, want) in panel.iter().zip(&want) {
            assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
    }

    #[test]
    fn gram2_and_rot2_roundtrip() {
        let mut p: Vec<f64> = (0..33).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut q: Vec<f64> = (0..33).map(|i| (i as f64 * 0.71).cos()).collect();
        let (a0, b0, _) = gram2(&p, &q);
        let (c, s) = (0.8, 0.6); // c² + s² = 1 → rotation preserves Σ of squares
        rot2(&mut p, &mut q, c, s);
        let (a1, b1, _) = gram2(&p, &q);
        assert!((a0 + b0 - (a1 + b1)).abs() < 1e-9);
    }
}
