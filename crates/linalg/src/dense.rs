//! Row-major dense `f32` matrices with rayon-parallel kernels.
//!
//! The shapes that matter in LightNE are *tall and skinny*: `n × d` with
//! `n` up to billions and `d` ≤ a few hundred. Every kernel here is laid
//! out for that case — row-major storage so a vertex's embedding is one
//! contiguous cache line run, parallelism across rows, and `f64`
//! accumulation inside dot products for stability (MKL does the same
//! internally for its `s` routines on modern CPUs).

use lightne_utils::parallel::parallel_reduce_sum;
use lightne_utils::rng::XorShiftStream;
use rayon::prelude::*;
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DenseMatrix({}x{})", self.rows, self.cols)?;
        if self.rows <= 8 && self.cols <= 8 {
            writeln!(f)?;
            for i in 0..self.rows {
                writeln!(f, "  {:?}", self.row(i))?;
            }
        }
        Ok(())
    }
}

impl DenseMatrix {
    /// A zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Self { rows, cols, data }
    }

    /// Builds from nested rows (convenient in tests).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// An i.i.d. standard-Gaussian random matrix (MKL `vsRngGaussian`),
    /// filled in parallel with one deterministic stream per row.
    pub fn gaussian(rows: usize, cols: usize, seed: u64) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.par_chunks_mut(cols.max(1)).enumerate().for_each(|(i, row)| {
            let mut rng = XorShiftStream::new(seed, i as u64);
            for x in row {
                *x = rng.gaussian() as f32;
            }
        });
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Parallel iterator over rows.
    pub fn par_rows(&self) -> rayon::slice::Chunks<'_, f32> {
        self.data.par_chunks(self.cols)
    }

    /// Parallel mutable iterator over rows.
    pub fn par_rows_mut(&mut self) -> rayon::slice::ChunksMut<'_, f32> {
        self.data.par_chunks_mut(self.cols)
    }

    /// The transpose, walked in `TILE×TILE` cache tiles (the old strided
    /// scatter thrashed on tall embedding matrices). Parallel over
    /// `TILE`-wide bands of output rows; each tile is copied through the
    /// same [`crate::kernels::transpose_tile`] gather the GEMM A-packing
    /// uses.
    pub fn transpose(&self) -> DenseMatrix {
        use crate::kernels::{transpose_tile, TILE};
        let (r, c) = (self.rows, self.cols);
        let mut out = DenseMatrix::zeros(c, r);
        if r == 0 || c == 0 {
            return out;
        }
        out.data.par_chunks_mut(TILE * r).enumerate().for_each(|(band, oband)| {
            let j0 = band * TILE; // first input column of this band
            let jb = TILE.min(c - j0);
            for i0 in (0..r).step_by(TILE) {
                let ib = TILE.min(r - i0);
                transpose_tile(&self.data[i0 * c + j0..], c, &mut oband[i0..], r, ib, jb);
            }
        });
        out
    }

    /// Dense GEMM: `self (m×n) · other (n×k) → (m×k)`, replacing
    /// `cblas_sgemm`, via the packed-panel register-blocked kernel in
    /// [`crate::kernels`] (branchless; parallel over output row blocks
    /// with a fixed k-panel accumulation order, so the bytes are
    /// identical at any thread count).
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "gemm shape mismatch");
        let (m, n, k) = (self.rows, self.cols, other.cols);
        let mut out = DenseMatrix::zeros(m, k);
        crate::kernels::gemm(m, k, n, &self.data, &other.data, &mut out.data);
        out
    }

    /// Gram-style product for tall matrices: `selfᵀ (c×r) · other (r×k) →
    /// (c×k)` where both inputs have the same (large) row count and few
    /// columns. Computed as a parallel reduction of per-chunk outer
    /// products, so the big dimension is traversed once.
    pub fn gram_tn(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.rows, other.rows, "gram shape mismatch");
        let (_r, c, k) = (self.rows, self.cols, other.cols);
        // Fixed row-block size (not derived from the thread count) and a
        // sequential fold in block order: the accumulation bracketing is
        // identical at any pool size, so the result is bitwise reproducible.
        const GRAM_BLOCK_ROWS: usize = 4096;
        let blocks: Vec<Vec<f64>> = self
            .data
            .par_chunks(GRAM_BLOCK_ROWS * c)
            .zip(other.data.par_chunks(GRAM_BLOCK_ROWS * k))
            .map(|(ablock, bblock)| {
                let mut local = vec![0.0f64; c * k];
                for (arow, brow) in ablock.chunks_exact(c).zip(bblock.chunks_exact(k)) {
                    for (j, &a) in arow.iter().enumerate() {
                        let dst = &mut local[j * k..(j + 1) * k];
                        for (d, &b) in dst.iter_mut().zip(brow) {
                            *d += a as f64 * b as f64;
                        }
                    }
                }
                local
            })
            .collect();
        let mut acc = vec![0.0f64; c * k];
        for block in blocks {
            for (x, y) in acc.iter_mut().zip(block) {
                *x += y;
            }
        }
        DenseMatrix::from_vec(c, k, acc.into_iter().map(|x| x as f32).collect())
    }

    /// Scales every entry by `s`, in parallel.
    pub fn scale(&mut self, s: f32) {
        self.data.par_iter_mut().for_each(|x| *x *= s);
    }

    /// `self += s · other`, in parallel.
    pub fn axpy(&mut self, s: f32, other: &DenseMatrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.par_iter_mut().zip(other.data.par_iter()).for_each(|(a, &b)| *a += s * b);
    }

    /// Applies `f` to every entry, in parallel.
    pub fn map_inplace<F>(&mut self, f: F)
    where
        F: Fn(f32) -> f32 + Sync + Send,
    {
        self.data.par_iter_mut().for_each(|x| *x = f(*x));
    }

    /// Multiplies each column `j` by `scale[j]` (e.g. `X ← X·Σ^{1/2}`).
    pub fn scale_columns(&mut self, scale: &[f32]) {
        assert_eq!(scale.len(), self.cols);
        self.data.par_chunks_mut(self.cols).for_each(|row| {
            for (x, &s) in row.iter_mut().zip(scale) {
                *x *= s;
            }
        });
    }

    /// L2-normalizes every row (common post-processing for embeddings).
    pub fn normalize_rows(&mut self) {
        self.data.par_chunks_mut(self.cols).for_each(|row| {
            let norm = row.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt();
            if norm > 0.0 {
                let inv = (1.0 / norm) as f32;
                for x in row {
                    *x *= inv;
                }
            }
        });
    }

    /// Frobenius norm, accumulated in `f64`.
    ///
    /// Uses the fixed-block deterministic reduction so the norm is
    /// bitwise identical at any thread count.
    pub fn frobenius_norm(&self) -> f64 {
        parallel_reduce_sum(self.data.len(), |i| {
            let x = self.data[i] as f64;
            x * x
        })
        .sqrt()
    }

    /// Maximum absolute entry difference to another matrix (∞-distance).
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .par_iter()
            .zip(other.data.par_iter())
            .map(|(&a, &b)| (a - b).abs())
            // xtask:allow(L3): f32::max is commutative and associative,
            // so the parallel reduction order cannot change the result.
            .reduce(|| 0.0, f32::max)
    }
}

impl lightne_utils::mem::MemUsage for DenseMatrix {
    fn heap_bytes(&self) -> usize {
        lightne_utils::mem::MemUsage::heap_bytes(&self.data)
    }
}

/// Dot product of two equal-length slices with `f64` accumulation
/// (four fixed accumulator lanes — see [`crate::kernels::dot_f64`]).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    crate::kernels::dot_f64(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = DenseMatrix::gaussian(20, 20, 1);
        let i = DenseMatrix::identity(20);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-6);
        assert!(i.matmul(&a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn gram_tn_matches_explicit_transpose() {
        let a = DenseMatrix::gaussian(500, 7, 2);
        let b = DenseMatrix::gaussian(500, 5, 3);
        let fast = a.gram_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.max_abs_diff(&slow) < 1e-3, "diff {}", fast.max_abs_diff(&slow));
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::gaussian(13, 7, 4);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gaussian_is_deterministic_and_standard() {
        let a = DenseMatrix::gaussian(200, 50, 9);
        let b = DenseMatrix::gaussian(200, 50, 9);
        assert_eq!(a, b);
        let n = (a.rows() * a.cols()) as f64;
        let mean: f64 = a.as_slice().iter().map(|&x| x as f64).sum::<f64>() / n;
        let var: f64 = a.as_slice().iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn scale_and_axpy() {
        let mut a = DenseMatrix::from_rows(&[&[1.0, 2.0]]);
        let b = DenseMatrix::from_rows(&[&[10.0, 20.0]]);
        a.scale(2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.row(0), &[7.0, 14.0]);
    }

    #[test]
    fn scale_columns_works() {
        let mut a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.scale_columns(&[2.0, 10.0]);
        assert_eq!(a.row(0), &[2.0, 20.0]);
        assert_eq!(a.row(1), &[6.0, 40.0]);
    }

    #[test]
    fn normalize_rows_unit_norm() {
        let mut a = DenseMatrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        a.normalize_rows();
        assert!((dot(a.row(0), a.row(0)) - 1.0).abs() < 1e-6);
        assert_eq!(a.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn frobenius_norm_known() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn map_inplace_trunc_log() {
        let mut a = DenseMatrix::from_rows(&[&[0.5, 1.0, std::f32::consts::E]]);
        a.map_inplace(|x| x.ln().max(0.0));
        assert_eq!(a.get(0, 0), 0.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert!((a.get(0, 2) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "gemm shape mismatch")]
    fn matmul_shape_checked() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
