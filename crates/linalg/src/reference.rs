//! The first-port ("pre register-blocking") kernels, kept verbatim.
//!
//! These are the naive implementations [`crate::kernels`] replaced: the
//! i-l-j row-parallel GEMM with its per-element `a != 0.0` branch, the
//! strictly sequential-over-columns MGS QR, and the `Vec<Vec<f64>>`
//! column-at-a-time cyclic Jacobi SVD. They are retained for two jobs:
//!
//! 1. **Oracles** — the kernel property tests pin the blocked kernels
//!    against these at adversarial shapes.
//! 2. **Baselines** — `bench_linalg` and `bench_linalg_json` measure the
//!    blocked kernels' speedup over exactly this code, which is what the
//!    committed `BENCH_linalg.json` trajectory and the
//!    `check_linalg_regression.sh` gate track.
//!
//! Do not "fix" or optimize anything here; the whole point is that it
//! stays the pre-PR baseline.

use crate::dense::DenseMatrix;
use crate::svd::SmallSvd;
use rayon::prelude::*;

/// Pre-PR dense GEMM: parallel over output rows, i-l-j loop order, with
/// the per-element zero-skip branch.
pub fn matmul(a: &DenseMatrix, other: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.cols(), other.rows(), "gemm shape mismatch");
    let (m, n, k) = (a.rows(), a.cols(), other.cols());
    let mut out = DenseMatrix::zeros(m, k);
    out.as_mut_slice().par_chunks_mut(k.max(1)).enumerate().for_each(|(i, orow)| {
        let arow = &a.as_slice()[i * n..(i + 1) * n];
        for (l, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                let brow = &other.as_slice()[l * k..(l + 1) * k];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += av * b;
                }
            }
        }
    });
    out
}

/// Threshold below which vector ops stay sequential (pre-PR value).
const PAR_THRESHOLD: usize = 1 << 14;
/// Fixed block length of the pre-PR parallel dot product.
const DOT_BLOCK: usize = 1 << 13;

fn seq_dot(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

fn par_dot(a: &[f32], b: &[f32]) -> f64 {
    if a.len() < PAR_THRESHOLD {
        seq_dot(a, b)
    } else {
        let partials: Vec<f64> = a
            .par_chunks(DOT_BLOCK)
            .zip(b.par_chunks(DOT_BLOCK))
            .map(|(x, y)| seq_dot(x, y))
            .collect();
        partials.iter().sum()
    }
}

fn par_axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    if y.len() < PAR_THRESHOLD {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    } else {
        y.par_iter_mut().zip(x.par_iter()).for_each(|(yi, &xi)| *yi += alpha * xi);
    }
}

fn par_scale(y: &mut [f32], alpha: f32) {
    if y.len() < PAR_THRESHOLD {
        for yi in y.iter_mut() {
            *yi *= alpha;
        }
    } else {
        y.par_iter_mut().for_each(|yi| *yi *= alpha);
    }
}

/// Pre-PR MGS orthonormalization: strictly sequential over columns, two
/// re-orthogonalization passes of `par_dot`/`par_axpy` sweeps each.
pub fn orthonormalize_columns(x: &mut DenseMatrix) -> usize {
    let d = x.cols();
    let mut xt = x.transpose();
    let n = xt.cols();
    let mut rank = 0usize;

    let mut cols: Vec<&mut [f32]> = xt.as_mut_slice().chunks_mut(n.max(1)).collect();

    for j in 0..d {
        let orig_norm = {
            let cur = &*cols[j];
            par_dot(cur, cur).sqrt()
        };
        for _pass in 0..2 {
            let (done, rest) = cols.split_at_mut(j);
            let cur = &mut *rest[0];
            for q in done.iter() {
                let r = par_dot(q, cur) as f32;
                if r != 0.0 {
                    par_axpy(cur, -r, q);
                }
            }
        }
        let cur = &mut *cols[j];
        let norm = par_dot(cur, cur).sqrt();
        if norm > orig_norm * 1e-5 && norm > 1e-12 {
            par_scale(cur, (1.0 / norm) as f32);
            rank += 1;
        } else {
            cur.fill(0.0);
        }
    }
    drop(cols);
    *x = xt.transpose();
    rank
}

/// Pre-PR one-sided Jacobi SVD: `Vec<Vec<f64>>` column storage, cyclic
/// `(p, q)` sweep order, sequential throughout.
pub fn jacobi_svd(a: &DenseMatrix) -> SmallSvd {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "jacobi_svd requires rows >= cols");

    let mut cols: Vec<Vec<f64>> =
        (0..n).map(|j| (0..m).map(|i| a.get(i, j) as f64).collect()).collect();
    let mut v: Vec<Vec<f64>> = (0..n)
        .map(|j| {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            e
        })
        .collect();

    let eps = 1e-14;
    let max_sweeps = 60;
    for _sweep in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let (alpha, beta, gamma) = {
                    let (cp, cq) = (&cols[p], &cols[q]);
                    let mut alpha = 0.0;
                    let mut beta = 0.0;
                    let mut gamma = 0.0;
                    for i in 0..m {
                        alpha += cp[i] * cp[i];
                        beta += cq[i] * cq[i];
                        gamma += cp[i] * cq[i];
                    }
                    (alpha, beta, gamma)
                };
                let denom = (alpha * beta).sqrt();
                if denom <= 0.0 || gamma.abs() <= eps * denom {
                    continue;
                }
                off = off.max(gamma.abs() / denom);
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;

                let (lo, hi) = cols.split_at_mut(q);
                let (cp, cq) = (&mut lo[p], &mut hi[0]);
                for i in 0..m {
                    let (x, y) = (cp[i], cq[i]);
                    cp[i] = c * x - s * y;
                    cq[i] = s * x + c * y;
                }
                let (lo, hi) = v.split_at_mut(q);
                let (vp, vq) = (&mut lo[p], &mut hi[0]);
                for i in 0..n {
                    let (x, y) = (vp[i], vq[i]);
                    vp[i] = c * x - s * y;
                    vq[i] = s * x + c * y;
                }
            }
        }
        if off < 1e-12 {
            break;
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> =
        cols.iter().map(|c| c.iter().map(|x| x * x).sum::<f64>().sqrt()).collect();
    // xtask:panic-ok(norms are sums of squares, never NaN, so partial_cmp always succeeds)
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

    let mut u = DenseMatrix::zeros(m, n);
    let mut vm = DenseMatrix::zeros(n, n);
    let mut sigma = vec![0.0f32; n];
    for (jj, &j) in order.iter().enumerate() {
        let s = norms[j];
        sigma[jj] = s as f32;
        if s > 0.0 {
            for (i, &x) in cols[j].iter().enumerate().take(m) {
                u.set(i, jj, (x / s) as f32);
            }
        }
        for (i, &x) in v[j].iter().enumerate().take(n) {
            vm.set(i, jj, x as f32);
        }
    }
    SmallSvd { u, sigma, v: vm }
}
