//! Orthonormalization of tall matrices (replacing `LAPACKE_sgeqrf` +
//! `LAPACKE_sorgqr` in Algorithm 3).
//!
//! The algorithm is block classical Gram–Schmidt with reorthogonalization
//! (BCGS2, "twice is enough", Giraud et al.): columns are processed in
//! panels of [`QR_PANEL`]; each panel is first projected against *all*
//! finished columns with two blocked products (one `proj_coef` NT
//! product for the coefficients, one `sub_proj` low-rank update —
//! replacing the `d` sequential `par_dot`/`par_axpy` sweeps of the first
//! port), then orthonormalized internally by two-pass MGS. For
//! single-precision inputs this yields `Qᵀ Q = I` to ~1e-6 even for
//! ill-conditioned inputs, which is all the randomized SVD needs.
//!
//! To keep products over the tall dimension contiguous, the matrix is
//! transposed once up front (columns become rows, via the cache-blocked
//! transpose), everything runs over contiguous length-`n` vectors, and
//! the result is transposed back.
//!
//! Determinism: the blocked products accumulate in fixed-size blocks and
//! fixed q-group order (see [`crate::kernels`]), and the in-panel sweeps
//! use the fixed [`DOT_BLOCK`] bracketing — so the output bytes are
//! independent of the rayon pool size.

use crate::dense::DenseMatrix;
use crate::kernels;
use rayon::prelude::*;

/// Panel width of the blocked Gram–Schmidt. Fixed (not thread-derived).
/// The in-panel column-at-a-time sweep costs `O(QR_PANEL · n)` per
/// column while the panel×finished projection runs as blocked products,
/// so a narrower panel shifts work into the fast path; 16 measured best
/// for the d ∈ [128, 256] sketches the randomized SVD produces.
pub const QR_PANEL: usize = 16;

/// Threshold below which vector ops stay sequential.
const PAR_THRESHOLD: usize = 1 << 14;

/// Fixed block length for the parallel dot product. Independent of the
/// thread count so the summation bracketing — and hence the rounded
/// result — is bitwise identical at any pool size.
const DOT_BLOCK: usize = 1 << 13;

fn par_dot(a: &[f32], b: &[f32]) -> f64 {
    if a.len() < PAR_THRESHOLD {
        crate::dense::dot(a, b)
    } else {
        let partials: Vec<f64> = a
            .par_chunks(DOT_BLOCK)
            .zip(b.par_chunks(DOT_BLOCK))
            .map(|(x, y)| crate::dense::dot(x, y))
            .collect();
        partials.iter().sum()
    }
}

fn par_axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    if y.len() < PAR_THRESHOLD {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    } else {
        y.par_iter_mut().zip(x.par_iter()).for_each(|(yi, &xi)| *yi += alpha * xi);
    }
}

fn par_scale(y: &mut [f32], alpha: f32) {
    if y.len() < PAR_THRESHOLD {
        for yi in y.iter_mut() {
            *yi *= alpha;
        }
    } else {
        y.par_iter_mut().for_each(|yi| *yi *= alpha);
    }
}

/// Orthonormalizes the columns of `x` (n×d) in place.
///
/// Returns the number of numerically independent columns found; dependent
/// columns are replaced by zero vectors (rank-revealing behaviour — the
/// randomized SVD then simply reports zero singular values for them).
pub fn orthonormalize_columns(x: &mut DenseMatrix) -> usize {
    let d = x.cols();
    let n = x.rows();
    if d == 0 || n == 0 {
        return 0;
    }
    let mut xt = x.transpose(); // d × n, rows are the columns of x
    let buf = xt.as_mut_slice();
    let mut rank = 0usize;

    for p0 in (0..d).step_by(QR_PANEL) {
        let pw = QR_PANEL.min(d - p0);
        // Norms before any projection: the reference point of the
        // relative rank test (a column whose residual collapses by more
        // than ~5 f32 digits is numerically dependent).
        let orig: Vec<f64> = (0..pw)
            .map(|c| {
                let row = &buf[(p0 + c) * n..(p0 + c + 1) * n];
                par_dot(row, row).sqrt()
            })
            .collect();

        // Two BCGS passes of the whole panel against all finished
        // columns: coef = Q_done · Panelᵀ, Panel -= coefᵀ · Q_done.
        // Zeroed (dependent) finished columns contribute zero
        // coefficients, so they are harmless here, exactly as in the
        // column-at-a-time version.
        if p0 > 0 {
            for _pass in 0..2 {
                let (done, rest) = buf.split_at_mut(p0 * n);
                let panel = &mut rest[..pw * n];
                let coef = kernels::proj_coef(done, panel, p0, pw, n);
                kernels::sub_proj(panel, done, &coef, pw, p0, n);
            }
        }

        // In-panel two-pass MGS over the (at most QR_PANEL) columns.
        for (c, &onorm) in orig.iter().enumerate() {
            let j = p0 + c;
            for _pass in 0..2 {
                let (done, rest) = buf.split_at_mut(j * n);
                let cur = &mut rest[..n];
                for q in p0..j {
                    let qrow = &done[q * n..(q + 1) * n];
                    let r = par_dot(qrow, cur) as f32;
                    if r != 0.0 {
                        par_axpy(cur, -r, qrow);
                    }
                }
            }
            let cur = &mut buf[j * n..(j + 1) * n];
            let norm = par_dot(cur, cur).sqrt();
            if norm > onorm * 1e-5 && norm > 1e-12 {
                par_scale(cur, (1.0 / norm) as f32);
                rank += 1;
            } else {
                cur.fill(0.0);
            }
        }
    }
    *x = xt.transpose();
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_orthonormal(q: &DenseMatrix, expected_rank: usize) {
        let gram = q.gram_tn(q);
        for i in 0..q.cols() {
            for j in 0..q.cols() {
                let want = if i == j && i < expected_rank { 1.0 } else { 0.0 };
                let got = gram.get(i, j);
                // Zeroed dependent columns give 0 on their diagonal.
                let tol = 5e-5;
                if i == j && got.abs() < tol && want == 1.0 {
                    panic!("column {i} unexpectedly zero");
                }
                assert!(
                    (got - want).abs() < tol || (i == j && got.abs() < tol),
                    "gram[{i},{j}] = {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn orthonormalizes_random_tall_matrix() {
        let mut x = DenseMatrix::gaussian(1000, 16, 42);
        let rank = orthonormalize_columns(&mut x);
        assert_eq!(rank, 16);
        check_orthonormal(&x, 16);
    }

    #[test]
    fn orthonormalizes_large_parallel_path() {
        let mut x = DenseMatrix::gaussian(40_000, 8, 7);
        let rank = orthonormalize_columns(&mut x);
        assert_eq!(rank, 8);
        check_orthonormal(&x, 8);
    }

    #[test]
    fn orthonormalizes_across_panel_boundaries() {
        // More columns than one panel: the blocked projection path runs.
        for d in [QR_PANEL - 1, QR_PANEL, QR_PANEL + 1, 2 * QR_PANEL + 3] {
            let mut x = DenseMatrix::gaussian(600, d, 5 + d as u64);
            let rank = orthonormalize_columns(&mut x);
            assert_eq!(rank, d, "d = {d}");
            check_orthonormal(&x, d);
        }
    }

    #[test]
    fn detects_rank_deficiency() {
        // Third column = first + second.
        let mut x = DenseMatrix::zeros(100, 3);
        let g = DenseMatrix::gaussian(100, 2, 3);
        for i in 0..100 {
            x.set(i, 0, g.get(i, 0));
            x.set(i, 1, g.get(i, 1));
            x.set(i, 2, g.get(i, 0) + g.get(i, 1));
        }
        let rank = orthonormalize_columns(&mut x);
        assert_eq!(rank, 2);
        // The dependent column must be zero.
        for i in 0..100 {
            assert_eq!(x.get(i, 2), 0.0);
        }
    }

    #[test]
    fn detects_rank_deficiency_across_panels() {
        // Column QR_PANEL + 2 duplicates column 1: the dependency spans
        // the panel boundary, so it is caught by the blocked projection,
        // not the in-panel sweep.
        let d = QR_PANEL + 4;
        let g = DenseMatrix::gaussian(500, d, 9);
        let mut x = g.clone();
        for i in 0..500 {
            x.set(i, QR_PANEL + 2, g.get(i, 1));
        }
        let rank = orthonormalize_columns(&mut x);
        assert_eq!(rank, d - 1);
        for i in 0..500 {
            assert_eq!(x.get(i, QR_PANEL + 2), 0.0);
        }
    }

    #[test]
    fn preserves_span() {
        // Q must span the same space: projecting the original columns onto Q
        // reconstructs them.
        let orig = DenseMatrix::gaussian(300, 5, 11);
        let mut q = orig.clone();
        orthonormalize_columns(&mut q);
        // X ≈ Q (Qᵀ X)
        let coeff = q.gram_tn(&orig); // 5×5
        let recon = q.matmul(&coeff);
        assert!(
            recon.max_abs_diff(&orig) < 1e-3,
            "span not preserved: {}",
            recon.max_abs_diff(&orig)
        );
    }

    #[test]
    fn single_column_normalizes() {
        let mut x = DenseMatrix::from_vec(4, 1, vec![2.0, 0.0, 0.0, 0.0]);
        assert_eq!(orthonormalize_columns(&mut x), 1);
        assert_eq!(x.get(0, 0), 1.0);
    }

    #[test]
    fn zero_matrix_rank_zero() {
        let mut x = DenseMatrix::zeros(10, 3);
        assert_eq!(orthonormalize_columns(&mut x), 0);
    }

    #[test]
    fn degenerate_shapes() {
        let mut x = DenseMatrix::zeros(0, 3);
        assert_eq!(orthonormalize_columns(&mut x), 0);
        let mut x = DenseMatrix::zeros(5, 0);
        assert_eq!(orthonormalize_columns(&mut x), 0);
    }
}
