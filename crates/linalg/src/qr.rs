//! Orthonormalization of tall matrices (replacing `LAPACKE_sgeqrf` +
//! `LAPACKE_sorgqr` in Algorithm 3).
//!
//! We use modified Gram–Schmidt with one re-orthogonalization pass
//! ("twice is enough", Giraud et al.): for single-precision inputs this
//! yields `Qᵀ Q = I` to ~1e-6 even for ill-conditioned inputs, which is all
//! the randomized SVD needs.
//!
//! To keep dot products over the tall dimension contiguous, the matrix is
//! transposed once up front (columns become rows), MGS runs over contiguous
//! length-`n` vectors with rayon-parallel dots/axpys, and the result is
//! transposed back.

use crate::dense::DenseMatrix;
use rayon::prelude::*;

/// Threshold below which vector ops stay sequential.
const PAR_THRESHOLD: usize = 1 << 14;

/// Fixed block length for the parallel dot product. Independent of the
/// thread count so the summation bracketing — and hence the rounded
/// result — is bitwise identical at any pool size.
const DOT_BLOCK: usize = 1 << 13;

fn par_dot(a: &[f32], b: &[f32]) -> f64 {
    if a.len() < PAR_THRESHOLD {
        crate::dense::dot(a, b)
    } else {
        let partials: Vec<f64> = a
            .par_chunks(DOT_BLOCK)
            .zip(b.par_chunks(DOT_BLOCK))
            .map(|(x, y)| crate::dense::dot(x, y))
            .collect();
        partials.iter().sum()
    }
}

fn par_axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    if y.len() < PAR_THRESHOLD {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    } else {
        y.par_iter_mut().zip(x.par_iter()).for_each(|(yi, &xi)| *yi += alpha * xi);
    }
}

fn par_scale(y: &mut [f32], alpha: f32) {
    if y.len() < PAR_THRESHOLD {
        for yi in y.iter_mut() {
            *yi *= alpha;
        }
    } else {
        y.par_iter_mut().for_each(|yi| *yi *= alpha);
    }
}

/// Orthonormalizes the columns of `x` (n×d, n ≥ d) in place.
///
/// Returns the number of numerically independent columns found; dependent
/// columns are replaced by zero vectors (rank-revealing behaviour — the
/// randomized SVD then simply reports zero singular values for them).
pub fn orthonormalize_columns(x: &mut DenseMatrix) -> usize {
    let d = x.cols();
    let mut xt = x.transpose(); // d × n, rows are the columns of x
    let n = xt.cols();
    let mut rank = 0usize;

    // Split the transposed buffer into per-column slices so finished
    // columns can be read while the current one is mutated.
    let mut cols: Vec<&mut [f32]> = xt.as_mut_slice().chunks_mut(n).collect();

    for j in 0..d {
        let orig_norm = {
            let cur = &*cols[j];
            par_dot(cur, cur).sqrt()
        };
        // Two MGS passes against all previous columns.
        for _pass in 0..2 {
            let (done, rest) = cols.split_at_mut(j);
            let cur = &mut *rest[0];
            for q in done.iter() {
                let r = par_dot(q, cur) as f32;
                if r != 0.0 {
                    par_axpy(cur, -r, q);
                }
            }
        }
        let cur = &mut *cols[j];
        let norm = par_dot(cur, cur).sqrt();
        // Relative rank test: a column whose residual collapsed by more
        // than ~5 f32 digits is numerically dependent on its predecessors.
        if norm > orig_norm * 1e-5 && norm > 1e-12 {
            par_scale(cur, (1.0 / norm) as f32);
            rank += 1;
        } else {
            cur.fill(0.0);
        }
    }
    drop(cols);
    *x = xt.transpose();
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_orthonormal(q: &DenseMatrix, expected_rank: usize) {
        let gram = q.gram_tn(q);
        for i in 0..q.cols() {
            for j in 0..q.cols() {
                let want = if i == j && i < expected_rank { 1.0 } else { 0.0 };
                let got = gram.get(i, j);
                // Zeroed dependent columns give 0 on their diagonal.
                let tol = 5e-5;
                if i == j && got.abs() < tol && want == 1.0 {
                    panic!("column {i} unexpectedly zero");
                }
                assert!(
                    (got - want).abs() < tol || (i == j && got.abs() < tol),
                    "gram[{i},{j}] = {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn orthonormalizes_random_tall_matrix() {
        let mut x = DenseMatrix::gaussian(1000, 16, 42);
        let rank = orthonormalize_columns(&mut x);
        assert_eq!(rank, 16);
        check_orthonormal(&x, 16);
    }

    #[test]
    fn orthonormalizes_large_parallel_path() {
        let mut x = DenseMatrix::gaussian(40_000, 8, 7);
        let rank = orthonormalize_columns(&mut x);
        assert_eq!(rank, 8);
        check_orthonormal(&x, 8);
    }

    #[test]
    fn detects_rank_deficiency() {
        // Third column = first + second.
        let mut x = DenseMatrix::zeros(100, 3);
        let g = DenseMatrix::gaussian(100, 2, 3);
        for i in 0..100 {
            x.set(i, 0, g.get(i, 0));
            x.set(i, 1, g.get(i, 1));
            x.set(i, 2, g.get(i, 0) + g.get(i, 1));
        }
        let rank = orthonormalize_columns(&mut x);
        assert_eq!(rank, 2);
        // The dependent column must be zero.
        for i in 0..100 {
            assert_eq!(x.get(i, 2), 0.0);
        }
    }

    #[test]
    fn preserves_span() {
        // Q must span the same space: projecting the original columns onto Q
        // reconstructs them.
        let orig = DenseMatrix::gaussian(300, 5, 11);
        let mut q = orig.clone();
        orthonormalize_columns(&mut q);
        // X ≈ Q (Qᵀ X)
        let coeff = q.gram_tn(&orig); // 5×5
        let recon = q.matmul(&coeff);
        assert!(
            recon.max_abs_diff(&orig) < 1e-3,
            "span not preserved: {}",
            recon.max_abs_diff(&orig)
        );
    }

    #[test]
    fn single_column_normalizes() {
        let mut x = DenseMatrix::from_vec(4, 1, vec![2.0, 0.0, 0.0, 0.0]);
        assert_eq!(orthonormalize_columns(&mut x), 1);
        assert_eq!(x.get(0, 0), 1.0);
    }

    #[test]
    fn zero_matrix_rank_zero() {
        let mut x = DenseMatrix::zeros(10, 3);
        assert_eq!(orthonormalize_columns(&mut x), 0);
    }
}
