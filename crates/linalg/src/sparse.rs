//! CSR sparse matrices with parallel SPMM (replacing MKL Sparse BLAS).
//!
//! The two sparse kernels LightNE needs are (1) building a CSR matrix from
//! an unsorted stream of `(row, col, value)` triples — the output of the
//! sparsifier's hash table — and (2) multiplying a sparse `n × n` matrix by
//! a dense `n × d` panel (`mkl_sparse_s_mm`), which dominates both the
//! randomized SVD's projections and ProNE's spectral propagation.

use crate::dense::DenseMatrix;
use crate::simd;
use lightne_utils::mem::MemUsage;
use lightne_utils::parallel::{parallel_prefix_sum, parallel_reduce_sum};
use rayon::prelude::*;
use std::ops::Range;

/// One shard's drained output: a contiguous row range plus its
/// `(row, col, value)` entries sorted by `(row, col)` with unique
/// coordinates. See [`CsrMatrix::from_sharded_rows`].
pub type SortedRun = (Range<u32>, Vec<(u32, u32, f32)>);

/// Row-major packed sort key of a COO triple.
#[inline]
fn coo_key(e: &(u32, u32, f32)) -> u64 {
    ((e.0 as u64) << 32) | e.1 as u64
}

/// Below this length the duplicate-combining pass runs sequentially; the
/// chunk bookkeeping is not worth it.
const PAR_DEDUP_THRESHOLD: usize = 1 << 15;

/// Output rows per SPMM tile: 64 rows × d floats keeps the tile's output
/// panel in L2 while amortizing per-task dispatch over many rows.
const SPMM_ROW_BLOCK: usize = 64;

/// Prefetch distance of the SPMM column gather: while multiplying the
/// `x` row for non-zero `j`, the row for non-zero `j + SPMM_PREFETCH` is
/// requested. At `d = 32..256` one gather costs roughly a cache-line
/// fill, so ~8 in flight covers DRAM latency without thrashing the L1
/// fill buffers (measured flat from 4 to 16 on the bench profiles).
const SPMM_PREFETCH: usize = 8;

/// Combines adjacent duplicate coordinates of a sorted COO list by
/// summation. Chunk boundaries are advanced to duplicate-group starts, so
/// every group is summed left-to-right within one chunk — the result is
/// bitwise identical to the sequential pass at any thread count.
fn combine_sorted_duplicates(mut coo: Vec<(u32, u32, f32)>) -> Vec<(u32, u32, f32)> {
    let len = coo.len();
    let workers = rayon::current_num_threads().max(1);
    if len < PAR_DEDUP_THRESHOLD || workers == 1 {
        let mut write = 0usize;
        for read in 0..coo.len() {
            if write > 0 && coo[write - 1].0 == coo[read].0 && coo[write - 1].1 == coo[read].1 {
                coo[write - 1].2 += coo[read].2;
            } else {
                coo[write] = coo[read];
                write += 1;
            }
        }
        coo.truncate(write);
        return coo;
    }

    // Chunk bounds, snapped forward so no duplicate group spans a bound.
    let mut bounds: Vec<usize> = Vec::with_capacity(workers + 1);
    bounds.push(0);
    for k in 1..workers {
        let mut b = k * len / workers;
        // xtask:panic-ok(invariant: bounds starts with one element and only grows)
        let prev = *bounds.last().unwrap();
        if b <= prev {
            continue;
        }
        while b < len && coo_key(&coo[b]) == coo_key(&coo[b - 1]) {
            b += 1;
        }
        if b > prev && b < len {
            bounds.push(b);
        }
    }
    bounds.push(len);

    let spans: Vec<Range<usize>> = bounds.windows(2).map(|w| w[0]..w[1]).collect();
    let coo_ref = &coo;
    let parts: Vec<Vec<(u32, u32, f32)>> = spans
        .into_par_iter()
        .map(|span| {
            let chunk = &coo_ref[span];
            let mut out: Vec<(u32, u32, f32)> = Vec::with_capacity(chunk.len());
            for &e in chunk {
                match out.last_mut() {
                    Some(last) if last.0 == e.0 && last.1 == e.1 => last.2 += e.2,
                    _ => out.push(e),
                }
            }
            out
        })
        .collect();
    parts.concat()
}

/// A sparse matrix in CSR format with `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<u64>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds from raw CSR arrays.
    ///
    /// # Panics
    /// Panics on inconsistent arrays (see asserts).
    pub fn from_raw(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<u64>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(row_ptr.len(), n_rows + 1);
        assert_eq!(col_idx.len(), values.len());
        // xtask:panic-ok(invariant: row_ptr length n_rows+1 asserted on the line above)
        assert_eq!(*row_ptr.last().unwrap() as usize, col_idx.len());
        assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
        assert!(col_idx.iter().all(|&c| (c as usize) < n_cols));
        Self { n_rows, n_cols, row_ptr, col_idx, values }
    }

    /// Builds from an unsorted COO triple list. Duplicate coordinates are
    /// combined by summation (the semantics the sampler needs: repeated
    /// samples of the same edge accumulate weight).
    pub fn from_coo(n_rows: usize, n_cols: usize, mut coo: Vec<(u32, u32, f32)>) -> Self {
        coo.par_sort_unstable_by_key(coo_key);
        // Combine duplicates in a group-aligned parallel pass (bitwise
        // identical to the sequential scan; see combine_sorted_duplicates).
        let coo = combine_sorted_duplicates(coo);

        let mut counts = vec![0u64; n_rows];
        for &(r, _, _) in &coo {
            counts[r as usize] += 1;
        }
        let row_ptr = parallel_prefix_sum(&counts);
        let col_idx: Vec<u32> = coo.par_iter().map(|&(_, c, _)| c).collect();
        let values: Vec<f32> = coo.par_iter().map(|&(_, _, v)| v).collect();
        Self::from_raw(n_rows, n_cols, row_ptr, col_idx, values)
    }

    /// Assembles a CSR matrix from per-shard sorted runs: each run is a
    /// contiguous row range plus its entries already sorted by `(row,
    /// col)` with unique coordinates (the output of
    /// `ShardedEdgeTable::drain_map`). Ranges must be disjoint and
    /// increasing; rows not covered by any run are empty. The assembly
    /// never concatenates the runs into a global COO: each run histograms
    /// its own row span and copies into its contiguous slice of the entry
    /// arrays, all in parallel.
    ///
    /// # Panics
    /// Panics if runs overlap, run out of bounds, or (debug only) a run's
    /// entries are unsorted or outside its range.
    pub fn from_sharded_rows(n_rows: usize, n_cols: usize, runs: Vec<SortedRun>) -> Self {
        let mut prev_end = 0u32;
        for (rows, entries) in &runs {
            assert!(rows.start >= prev_end, "sharded runs must be disjoint and increasing");
            assert!(rows.end as usize <= n_rows, "run range exceeds n_rows");
            prev_end = rows.end.max(rows.start);
            debug_assert!(entries.iter().all(|&(r, _, _)| rows.contains(&r)));
            debug_assert!(entries.windows(2).all(|w| coo_key(&w[0]) < coo_key(&w[1])));
        }

        // Per-row counts: each run histograms its own disjoint row span.
        let mut counts = vec![0u64; n_rows];
        {
            let mut rest: &mut [u64] = &mut counts;
            let mut consumed = 0usize;
            let mut jobs = Vec::with_capacity(runs.len());
            for (rows, entries) in &runs {
                let tail = std::mem::take(&mut rest);
                let (_, tail) = tail.split_at_mut(rows.start as usize - consumed);
                let (mine, tail) = tail.split_at_mut(rows.len());
                rest = tail;
                consumed = rows.end as usize;
                jobs.push((mine, entries, rows.start));
            }
            jobs.into_par_iter().for_each(|(slice, entries, base)| {
                for &(r, _, _) in entries {
                    slice[(r - base) as usize] += 1;
                }
            });
        }
        let row_ptr = parallel_prefix_sum(&counts);

        // Entry arrays: each run copies into its contiguous output span.
        let total: usize = runs.iter().map(|(_, e)| e.len()).sum();
        let mut col_idx = vec![0u32; total];
        let mut values = vec![0f32; total];
        {
            let mut col_rest: &mut [u32] = &mut col_idx;
            let mut val_rest: &mut [f32] = &mut values;
            let mut jobs = Vec::with_capacity(runs.len());
            for (_, entries) in &runs {
                let (c, cr) = std::mem::take(&mut col_rest).split_at_mut(entries.len());
                let (v, vr) = std::mem::take(&mut val_rest).split_at_mut(entries.len());
                col_rest = cr;
                val_rest = vr;
                jobs.push((c, v, entries));
            }
            jobs.into_par_iter().for_each(|(c, v, entries)| {
                for (k, &(_, col, val)) in entries.iter().enumerate() {
                    c[k] = col;
                    v[k] = val;
                }
            });
        }
        Self::from_raw(n_rows, n_cols, row_ptr, col_idx, values)
    }

    /// The zero matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            row_ptr: vec![0; n_rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        Self {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n as u64).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Reads entry `(i, j)` (binary search; 0.0 if absent).
    pub fn get(&self, i: usize, j: usize) -> f32 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Sparse × dense: `self (r×c) · x (c×d) → (r×d)`. This is the
    /// workhorse SPMM of both the randomized SVD and spectral propagation.
    ///
    /// Parallelism is cache-blocked: each task owns a tile of
    /// `SPMM_ROW_BLOCK` contiguous output rows, so the tile's output
    /// panel stays resident while its column gathers walk `x`. Per-row
    /// accumulation order is exactly the row-at-a-time order, so results
    /// are bitwise identical to the unblocked kernel. The column indices
    /// are irregular, so each gather software-prefetches the `x` row
    /// [`SPMM_PREFETCH`] entries ahead — a scheduling hint with no effect
    /// on values.
    pub fn spmm(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.n_cols, x.rows(), "spmm shape mismatch");
        let d = x.cols();
        let mut out = DenseMatrix::zeros(self.n_rows, d);
        if d == 0 {
            return out;
        }
        let tile = d * SPMM_ROW_BLOCK;
        out.as_mut_slice().par_chunks_mut(tile).enumerate().for_each(|(blk, chunk)| {
            let row0 = blk * SPMM_ROW_BLOCK;
            for (k, orow) in chunk.chunks_mut(d).enumerate() {
                let (cols, vals) = self.row(row0 + k);
                for (j, (&c, &v)) in cols.iter().zip(vals).enumerate() {
                    if let Some(&cn) = cols.get(j + SPMM_PREFETCH) {
                        let next: *const u8 = x.row(cn as usize).as_ptr().cast();
                        simd::prefetch_read(next);
                        if d * 4 > 64 {
                            // Second cache line of the row (in bounds:
                            // the row spans > 64 bytes; wrapping_ math
                            // keeps the hint free of pointer-arith UB).
                            simd::prefetch_read(next.wrapping_add(64));
                        }
                    }
                    let xrow = x.row(c as usize);
                    for (o, &xv) in orow.iter_mut().zip(xrow) {
                        *o += v * xv;
                    }
                }
            }
        });
        out
    }

    /// Sparse matrix × vector.
    pub fn mul_vec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(self.n_cols, x.len());
        (0..self.n_rows)
            .into_par_iter()
            .map(|i| {
                let (cols, vals) = self.row(i);
                cols.iter().zip(vals).map(|(&c, &v)| v as f64 * x[c as usize] as f64).sum::<f64>()
                    as f32
            })
            .collect()
    }

    /// The transpose (parallel histogram + scatter).
    pub fn transpose(&self) -> CsrMatrix {
        let coo: Vec<(u32, u32, f32)> = (0..self.n_rows)
            .into_par_iter()
            .flat_map_iter(|i| {
                let (cols, vals) = self.row(i);
                cols.iter().zip(vals).map(move |(&c, &v)| (c, i as u32, v)).collect::<Vec<_>>()
            })
            .collect();
        CsrMatrix::from_coo(self.n_cols, self.n_rows, coo)
    }

    /// Applies `f` to every stored value, in parallel. Entries mapped to
    /// exactly 0.0 are *kept* (structure is unchanged) — call
    /// [`CsrMatrix::prune`] to drop them.
    pub fn map_values<F>(&mut self, f: F)
    where
        F: Fn(f32) -> f32 + Sync + Send,
    {
        self.values.par_iter_mut().for_each(|v| *v = f(*v));
    }

    /// Removes stored entries with `|value| <= threshold`, recompacting.
    pub fn prune(&self, threshold: f32) -> CsrMatrix {
        let coo: Vec<(u32, u32, f32)> = (0..self.n_rows)
            .into_par_iter()
            .flat_map_iter(|i| {
                let (cols, vals) = self.row(i);
                cols.iter()
                    .zip(vals)
                    .filter(|(_, &v)| v.abs() > threshold)
                    .map(move |(&c, &v)| (i as u32, c, v))
                    .collect::<Vec<_>>()
            })
            .collect();
        CsrMatrix::from_coo(self.n_rows, self.n_cols, coo)
    }

    /// Scales row `i` by `s[i]` (e.g. `D⁻¹ A`).
    pub fn scale_rows(&mut self, s: &[f32]) {
        assert_eq!(s.len(), self.n_rows);
        let row_ptr = &self.row_ptr;
        let values = &mut self.values;
        // Parallel over rows via chunk boundaries derived from row_ptr.
        (0..self.n_rows).for_each(|i| {
            let (lo, hi) = (row_ptr[i] as usize, row_ptr[i + 1] as usize);
            for v in &mut values[lo..hi] {
                *v *= s[i];
            }
        });
    }

    /// Scales column `j` by `s[j]` (e.g. `A D⁻¹`), in parallel.
    pub fn scale_cols(&mut self, s: &[f32]) {
        assert_eq!(s.len(), self.n_cols);
        let col_idx = &self.col_idx;
        self.values.par_iter_mut().zip(col_idx.par_iter()).for_each(|(v, &c)| *v *= s[c as usize]);
    }

    /// Linear combination `alpha·self + beta·other` (same shape).
    pub fn add(&self, other: &CsrMatrix, alpha: f32, beta: f32) -> CsrMatrix {
        assert_eq!((self.n_rows, self.n_cols), (other.n_rows, other.n_cols));
        let mut coo: Vec<(u32, u32, f32)> = Vec::with_capacity(self.nnz() + other.nnz());
        for i in 0..self.n_rows {
            let (c1, v1) = self.row(i);
            for (&c, &v) in c1.iter().zip(v1) {
                coo.push((i as u32, c, alpha * v));
            }
            let (c2, v2) = other.row(i);
            for (&c, &v) in c2.iter().zip(v2) {
                coo.push((i as u32, c, beta * v));
            }
        }
        CsrMatrix::from_coo(self.n_rows, self.n_cols, coo)
    }

    /// Densifies (test helper; quadratic memory).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.n_rows, self.n_cols);
        for i in 0..self.n_rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                out.set(i, c as usize, v);
            }
        }
        out
    }

    /// Sum of all stored values (deterministic fixed-block reduction).
    pub fn sum_values(&self) -> f64 {
        parallel_reduce_sum(self.values.len(), |i| self.values[i] as f64)
    }

    /// Whether the matrix is exactly symmetric in structure and values.
    pub fn is_symmetric(&self, tol: f32) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        (0..self.n_rows).into_par_iter().all(|i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).all(|(&c, &v)| (self.get(c as usize, i) - v).abs() <= tol)
        })
    }
}

impl MemUsage for CsrMatrix {
    fn heap_bytes(&self) -> usize {
        self.row_ptr.heap_bytes() + self.col_idx.heap_bytes() + self.values.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        CsrMatrix::from_coo(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0), (2, 2, 5.0)],
        )
    }

    #[test]
    fn from_coo_sorts_and_sums_duplicates() {
        let m = CsrMatrix::from_coo(2, 2, vec![(1, 1, 1.0), (0, 0, 2.0), (1, 1, 3.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = small();
        let x = DenseMatrix::gaussian(3, 4, 5);
        let fast = m.spmm(&x);
        let slow = m.to_dense().matmul(&x);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn mul_vec_known() {
        let m = small();
        let y = m.mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![3.0, 3.0, 9.0]);
    }

    #[test]
    fn transpose_twice_identity() {
        let m = small();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(0, 2), 4.0);
    }

    #[test]
    fn scale_rows_cols() {
        let mut m = small();
        m.scale_rows(&[1.0, 2.0, 0.5]);
        assert_eq!(m.get(1, 1), 6.0);
        assert_eq!(m.get(2, 2), 2.5);
        m.scale_cols(&[0.0, 1.0, 2.0]);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(2, 2), 5.0);
    }

    #[test]
    fn prune_drops_small_entries() {
        let mut m = small();
        m.map_values(|v| if v < 3.0 { 0.0 } else { v });
        assert_eq!(m.nnz(), 5, "map_values must not change structure");
        let p = m.prune(0.0);
        assert_eq!(p.nnz(), 3);
        assert_eq!(p.get(0, 0), 0.0);
        assert_eq!(p.get(2, 2), 5.0);
    }

    #[test]
    fn add_combines() {
        let m = small();
        let s = m.add(&m, 1.0, 2.0);
        assert_eq!(s.get(0, 2), 6.0);
        assert_eq!(s.nnz(), m.nnz());
    }

    #[test]
    fn identity_spmm_is_noop() {
        let i = CsrMatrix::identity(6);
        let x = DenseMatrix::gaussian(6, 3, 2);
        assert!(i.spmm(&x).max_abs_diff(&x) < 1e-7);
    }

    #[test]
    fn symmetric_detection() {
        let sym = CsrMatrix::from_coo(2, 2, vec![(0, 1, 2.0), (1, 0, 2.0)]);
        assert!(sym.is_symmetric(0.0));
        let asym = CsrMatrix::from_coo(2, 2, vec![(0, 1, 2.0)]);
        assert!(!asym.is_symmetric(0.0));
    }

    #[test]
    fn empty_rows_handled() {
        let m = CsrMatrix::from_coo(4, 4, vec![(3, 0, 1.0)]);
        assert_eq!(m.row(0).0.len(), 0);
        assert_eq!(m.row(3).0, &[0]);
        let x = DenseMatrix::identity(4);
        let y = m.spmm(&x);
        assert_eq!(y.get(3, 0), 1.0);
        assert_eq!(y.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "spmm shape mismatch")]
    fn spmm_checks_shapes() {
        let m = small();
        let x = DenseMatrix::zeros(4, 2);
        let _ = m.spmm(&x);
    }

    #[test]
    fn spmm_blocked_matches_dense_on_many_rows() {
        // More rows than one SPMM tile, with ragged final block.
        let n = 3 * super::SPMM_ROW_BLOCK + 17;
        let coo: Vec<(u32, u32, f32)> =
            (0..n as u32).map(|i| (i, (i * 7) % n as u32, 0.5 + (i % 5) as f32)).collect();
        let m = CsrMatrix::from_coo(n, n, coo);
        let x = DenseMatrix::gaussian(n, 6, 11);
        let fast = m.spmm(&x);
        let slow = m.to_dense().matmul(&x);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn parallel_dedup_matches_sequential() {
        // Big enough to exercise the parallel duplicate-combining path.
        let n = super::PAR_DEDUP_THRESHOLD * 3;
        let mut coo: Vec<(u32, u32, f32)> = Vec::with_capacity(n);
        let mut state = 42u64;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = ((state >> 33) % 500) as u32;
            let c = ((state >> 13) % 500) as u32;
            coo.push((r, c, 1.0 + (state % 3) as f32 * 0.5));
        }
        let m = CsrMatrix::from_coo(500, 500, coo.clone());
        // Reference: fully sequential sort + combine.
        coo.sort_unstable_by_key(super::coo_key);
        let mut seq: Vec<(u32, u32, f32)> = Vec::new();
        for e in coo {
            match seq.last_mut() {
                Some(last) if last.0 == e.0 && last.1 == e.1 => last.2 += e.2,
                _ => seq.push(e),
            }
        }
        assert_eq!(m.nnz(), seq.len());
        for &(r, c, v) in &seq {
            assert_eq!(m.get(r as usize, c as usize).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn from_sharded_rows_matches_from_coo() {
        // Three disjoint row blocks with a gap (rows 6..8 empty).
        let runs = vec![
            (0u32..3u32, vec![(0u32, 1u32, 1.0f32), (0, 4, 2.0), (2, 0, 3.0)]),
            (3..6, vec![(3, 3, 4.0), (5, 9, 5.0)]),
            (8..10, vec![(9, 2, 6.0)]),
        ];
        let flat: Vec<(u32, u32, f32)> = runs.iter().flat_map(|(_, e)| e.clone()).collect();
        let a = CsrMatrix::from_sharded_rows(10, 10, runs);
        let b = CsrMatrix::from_coo(10, 10, flat);
        assert_eq!(a, b);
        assert_eq!(a.row(6).0.len(), 0);
        assert_eq!(a.get(9, 2), 6.0);
    }

    #[test]
    fn from_sharded_rows_empty_runs() {
        let m = CsrMatrix::from_sharded_rows(4, 4, vec![(0..2, vec![]), (2..4, vec![])]);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m, CsrMatrix::zeros(4, 4));
        let empty = CsrMatrix::from_sharded_rows(4, 4, vec![]);
        assert_eq!(empty.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "disjoint and increasing")]
    fn from_sharded_rows_rejects_overlap() {
        let _ = CsrMatrix::from_sharded_rows(
            4,
            4,
            vec![(0..3, vec![(0, 0, 1.0)]), (2..4, vec![(2, 0, 1.0)])],
        );
    }
}
