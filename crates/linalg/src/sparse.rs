//! CSR sparse matrices with parallel SPMM (replacing MKL Sparse BLAS).
//!
//! The two sparse kernels LightNE needs are (1) building a CSR matrix from
//! an unsorted stream of `(row, col, value)` triples — the output of the
//! sparsifier's hash table — and (2) multiplying a sparse `n × n` matrix by
//! a dense `n × d` panel (`mkl_sparse_s_mm`), which dominates both the
//! randomized SVD's projections and ProNE's spectral propagation.

use crate::dense::DenseMatrix;
use lightne_utils::mem::MemUsage;
use lightne_utils::parallel::parallel_prefix_sum;
use rayon::prelude::*;

/// A sparse matrix in CSR format with `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<u64>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds from raw CSR arrays.
    ///
    /// # Panics
    /// Panics on inconsistent arrays (see asserts).
    pub fn from_raw(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<u64>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(row_ptr.len(), n_rows + 1);
        assert_eq!(col_idx.len(), values.len());
        assert_eq!(*row_ptr.last().unwrap() as usize, col_idx.len());
        assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
        assert!(col_idx.iter().all(|&c| (c as usize) < n_cols));
        Self { n_rows, n_cols, row_ptr, col_idx, values }
    }

    /// Builds from an unsorted COO triple list. Duplicate coordinates are
    /// combined by summation (the semantics the sampler needs: repeated
    /// samples of the same edge accumulate weight).
    pub fn from_coo(n_rows: usize, n_cols: usize, mut coo: Vec<(u32, u32, f32)>) -> Self {
        coo.par_sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);
        // Combine duplicates in one sequential pass (cheap relative to sort).
        let mut write = 0usize;
        for read in 0..coo.len() {
            if write > 0 && coo[write - 1].0 == coo[read].0 && coo[write - 1].1 == coo[read].1 {
                coo[write - 1].2 += coo[read].2;
            } else {
                coo[write] = coo[read];
                write += 1;
            }
        }
        coo.truncate(write);

        let mut counts = vec![0u64; n_rows];
        for &(r, _, _) in &coo {
            counts[r as usize] += 1;
        }
        let row_ptr = parallel_prefix_sum(&counts);
        let col_idx: Vec<u32> = coo.par_iter().map(|&(_, c, _)| c).collect();
        let values: Vec<f32> = coo.par_iter().map(|&(_, _, v)| v).collect();
        Self::from_raw(n_rows, n_cols, row_ptr, col_idx, values)
    }

    /// The zero matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            row_ptr: vec![0; n_rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        Self {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n as u64).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Reads entry `(i, j)` (binary search; 0.0 if absent).
    pub fn get(&self, i: usize, j: usize) -> f32 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Sparse × dense: `self (r×c) · x (c×d) → (r×d)`, parallel over rows.
    /// This is the workhorse SPMM of both the randomized SVD and spectral
    /// propagation.
    pub fn spmm(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.n_cols, x.rows(), "spmm shape mismatch");
        let d = x.cols();
        let mut out = DenseMatrix::zeros(self.n_rows, d);
        out.as_mut_slice().par_chunks_mut(d.max(1)).enumerate().for_each(|(i, orow)| {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                let xrow = x.row(c as usize);
                for (o, &xv) in orow.iter_mut().zip(xrow) {
                    *o += v * xv;
                }
            }
        });
        out
    }

    /// Sparse matrix × vector.
    pub fn mul_vec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(self.n_cols, x.len());
        (0..self.n_rows)
            .into_par_iter()
            .map(|i| {
                let (cols, vals) = self.row(i);
                cols.iter().zip(vals).map(|(&c, &v)| v as f64 * x[c as usize] as f64).sum::<f64>()
                    as f32
            })
            .collect()
    }

    /// The transpose (parallel histogram + scatter).
    pub fn transpose(&self) -> CsrMatrix {
        let coo: Vec<(u32, u32, f32)> = (0..self.n_rows)
            .into_par_iter()
            .flat_map_iter(|i| {
                let (cols, vals) = self.row(i);
                cols.iter().zip(vals).map(move |(&c, &v)| (c, i as u32, v)).collect::<Vec<_>>()
            })
            .collect();
        CsrMatrix::from_coo(self.n_cols, self.n_rows, coo)
    }

    /// Applies `f` to every stored value, in parallel. Entries mapped to
    /// exactly 0.0 are *kept* (structure is unchanged) — call
    /// [`CsrMatrix::prune`] to drop them.
    pub fn map_values<F>(&mut self, f: F)
    where
        F: Fn(f32) -> f32 + Sync + Send,
    {
        self.values.par_iter_mut().for_each(|v| *v = f(*v));
    }

    /// Removes stored entries with `|value| <= threshold`, recompacting.
    pub fn prune(&self, threshold: f32) -> CsrMatrix {
        let coo: Vec<(u32, u32, f32)> = (0..self.n_rows)
            .into_par_iter()
            .flat_map_iter(|i| {
                let (cols, vals) = self.row(i);
                cols.iter()
                    .zip(vals)
                    .filter(|(_, &v)| v.abs() > threshold)
                    .map(move |(&c, &v)| (i as u32, c, v))
                    .collect::<Vec<_>>()
            })
            .collect();
        CsrMatrix::from_coo(self.n_rows, self.n_cols, coo)
    }

    /// Scales row `i` by `s[i]` (e.g. `D⁻¹ A`).
    pub fn scale_rows(&mut self, s: &[f32]) {
        assert_eq!(s.len(), self.n_rows);
        let row_ptr = &self.row_ptr;
        let values = &mut self.values;
        // Parallel over rows via chunk boundaries derived from row_ptr.
        (0..self.n_rows).for_each(|i| {
            let (lo, hi) = (row_ptr[i] as usize, row_ptr[i + 1] as usize);
            for v in &mut values[lo..hi] {
                *v *= s[i];
            }
        });
    }

    /// Scales column `j` by `s[j]` (e.g. `A D⁻¹`), in parallel.
    pub fn scale_cols(&mut self, s: &[f32]) {
        assert_eq!(s.len(), self.n_cols);
        let col_idx = &self.col_idx;
        self.values.par_iter_mut().zip(col_idx.par_iter()).for_each(|(v, &c)| *v *= s[c as usize]);
    }

    /// Linear combination `alpha·self + beta·other` (same shape).
    pub fn add(&self, other: &CsrMatrix, alpha: f32, beta: f32) -> CsrMatrix {
        assert_eq!((self.n_rows, self.n_cols), (other.n_rows, other.n_cols));
        let mut coo: Vec<(u32, u32, f32)> = Vec::with_capacity(self.nnz() + other.nnz());
        for i in 0..self.n_rows {
            let (c1, v1) = self.row(i);
            for (&c, &v) in c1.iter().zip(v1) {
                coo.push((i as u32, c, alpha * v));
            }
            let (c2, v2) = other.row(i);
            for (&c, &v) in c2.iter().zip(v2) {
                coo.push((i as u32, c, beta * v));
            }
        }
        CsrMatrix::from_coo(self.n_rows, self.n_cols, coo)
    }

    /// Densifies (test helper; quadratic memory).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.n_rows, self.n_cols);
        for i in 0..self.n_rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                out.set(i, c as usize, v);
            }
        }
        out
    }

    /// Sum of all stored values.
    pub fn sum_values(&self) -> f64 {
        self.values.par_iter().map(|&v| v as f64).sum()
    }

    /// Whether the matrix is exactly symmetric in structure and values.
    pub fn is_symmetric(&self, tol: f32) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        (0..self.n_rows).into_par_iter().all(|i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).all(|(&c, &v)| (self.get(c as usize, i) - v).abs() <= tol)
        })
    }
}

impl MemUsage for CsrMatrix {
    fn heap_bytes(&self) -> usize {
        self.row_ptr.heap_bytes() + self.col_idx.heap_bytes() + self.values.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        CsrMatrix::from_coo(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0), (2, 2, 5.0)],
        )
    }

    #[test]
    fn from_coo_sorts_and_sums_duplicates() {
        let m = CsrMatrix::from_coo(2, 2, vec![(1, 1, 1.0), (0, 0, 2.0), (1, 1, 3.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = small();
        let x = DenseMatrix::gaussian(3, 4, 5);
        let fast = m.spmm(&x);
        let slow = m.to_dense().matmul(&x);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn mul_vec_known() {
        let m = small();
        let y = m.mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![3.0, 3.0, 9.0]);
    }

    #[test]
    fn transpose_twice_identity() {
        let m = small();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(0, 2), 4.0);
    }

    #[test]
    fn scale_rows_cols() {
        let mut m = small();
        m.scale_rows(&[1.0, 2.0, 0.5]);
        assert_eq!(m.get(1, 1), 6.0);
        assert_eq!(m.get(2, 2), 2.5);
        m.scale_cols(&[0.0, 1.0, 2.0]);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(2, 2), 5.0);
    }

    #[test]
    fn prune_drops_small_entries() {
        let mut m = small();
        m.map_values(|v| if v < 3.0 { 0.0 } else { v });
        assert_eq!(m.nnz(), 5, "map_values must not change structure");
        let p = m.prune(0.0);
        assert_eq!(p.nnz(), 3);
        assert_eq!(p.get(0, 0), 0.0);
        assert_eq!(p.get(2, 2), 5.0);
    }

    #[test]
    fn add_combines() {
        let m = small();
        let s = m.add(&m, 1.0, 2.0);
        assert_eq!(s.get(0, 2), 6.0);
        assert_eq!(s.nnz(), m.nnz());
    }

    #[test]
    fn identity_spmm_is_noop() {
        let i = CsrMatrix::identity(6);
        let x = DenseMatrix::gaussian(6, 3, 2);
        assert!(i.spmm(&x).max_abs_diff(&x) < 1e-7);
    }

    #[test]
    fn symmetric_detection() {
        let sym = CsrMatrix::from_coo(2, 2, vec![(0, 1, 2.0), (1, 0, 2.0)]);
        assert!(sym.is_symmetric(0.0));
        let asym = CsrMatrix::from_coo(2, 2, vec![(0, 1, 2.0)]);
        assert!(!asym.is_symmetric(0.0));
    }

    #[test]
    fn empty_rows_handled() {
        let m = CsrMatrix::from_coo(4, 4, vec![(3, 0, 1.0)]);
        assert_eq!(m.row(0).0.len(), 0);
        assert_eq!(m.row(3).0, &[0]);
        let x = DenseMatrix::identity(4);
        let y = m.spmm(&x);
        assert_eq!(y.get(3, 0), 1.0);
        assert_eq!(y.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "spmm shape mismatch")]
    fn spmm_checks_shapes() {
        let m = small();
        let x = DenseMatrix::zeros(4, 2);
        let _ = m.spmm(&x);
    }
}
