//! Special functions for ProNE's spectral filter.
//!
//! ProNE modulates the graph spectrum with a Gaussian band-pass kernel
//! `g(λ) = e^{-θ/2·((λ-μ)² - 1)}` and expands it in Chebyshev polynomials;
//! the expansion coefficients are modified Bessel functions of the first
//! kind, `c_r = (-1)^r · 2·I_r(θ)` (with `c_0 = I_0(θ)`). SciPy provides
//! `iv`; here we implement the ascending power series, which converges in a
//! handful of terms for the small arguments ProNE uses (θ ≈ 0.5).

/// Modified Bessel function of the first kind `I_v(x)` for integer order
/// `v ≥ 0`, via the ascending series
/// `I_v(x) = Σ_k (x/2)^{2k+v} / (k! (k+v)!)`.
///
/// Accurate to ~1e-12 for `|x| ≤ 20`, far beyond the range ProNE uses.
pub fn bessel_i(v: u32, x: f64) -> f64 {
    let half = x / 2.0;
    // First term: (x/2)^v / v!
    let mut term = 1.0f64;
    for k in 1..=v as u64 {
        term *= half / k as f64;
    }
    let mut sum = term;
    let x2 = half * half;
    for k in 1..200u64 {
        term *= x2 / (k as f64 * (k as f64 + v as f64));
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum
}

/// The Chebyshev–Gaussian coefficients used by ProNE's propagation:
/// `c_0 = I_0(θ)`, `c_r = 2·(-1)^r·I_r(θ)` for `r ≥ 1`, up to order `k`.
pub fn chebyshev_gaussian_coefficients(k: usize, theta: f64) -> Vec<f64> {
    (0..=k)
        .map(|r| {
            let i = bessel_i(r as u32, theta);
            if r == 0 {
                i
            } else if r % 2 == 0 {
                2.0 * i
            } else {
                -2.0 * i
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bessel_i0_known_values() {
        // Reference values from Abramowitz & Stegun.
        assert!((bessel_i(0, 0.0) - 1.0).abs() < 1e-14);
        assert!((bessel_i(0, 1.0) - 1.266_065_877_752_008).abs() < 1e-12);
        assert!((bessel_i(0, 2.0) - 2.279_585_302_336_067).abs() < 1e-12);
    }

    #[test]
    fn bessel_i1_known_values() {
        assert!((bessel_i(1, 0.0)).abs() < 1e-14);
        assert!((bessel_i(1, 1.0) - 0.565_159_103_992_485).abs() < 1e-12);
        assert!((bessel_i(1, 2.0) - 1.590_636_854_637_329).abs() < 1e-12);
    }

    #[test]
    fn bessel_higher_orders_small_at_small_x() {
        // I_v(x) ~ (x/2)^v / v! for small x.
        let x = 0.5;
        for v in 2..8u32 {
            let approx = (x / 2.0f64).powi(v as i32) / (1..=v as u64).product::<u64>() as f64;
            let exact = bessel_i(v, x);
            assert!((exact - approx).abs() / approx < 0.05, "v={v}: {exact} vs {approx}");
        }
    }

    #[test]
    fn bessel_recurrence_holds() {
        // I_{v-1}(x) - I_{v+1}(x) = (2v/x) I_v(x)
        let x = 1.7;
        for v in 1..6u32 {
            let lhs = bessel_i(v - 1, x) - bessel_i(v + 1, x);
            let rhs = 2.0 * v as f64 / x * bessel_i(v, x);
            assert!((lhs - rhs).abs() < 1e-10, "v={v}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn coefficients_alternate_and_decay() {
        let c = chebyshev_gaussian_coefficients(10, 0.5);
        assert_eq!(c.len(), 11);
        assert!(c[0] > 1.0); // I_0(θ) > 1
        assert!(c[1] < 0.0 && c[2] > 0.0 && c[3] < 0.0, "{c:?}");
        // |c_r| decays rapidly for θ = 0.5.
        for r in 2..11 {
            assert!(c[r].abs() < c[r - 1].abs());
        }
    }

    #[test]
    fn generating_function_identity() {
        // e^x = I_0(x) + 2 Σ_{r≥1} I_r(x)  (Chebyshev expansion at t = 1).
        let x = 0.8;
        let mut sum = bessel_i(0, x);
        for r in 1..30 {
            sum += 2.0 * bessel_i(r, x);
        }
        assert!((sum - x.exp()).abs() < 1e-12, "{sum} vs {}", x.exp());
    }
}
