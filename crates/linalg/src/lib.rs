//! Parallel dense & sparse linear algebra for LightNE.
//!
//! The paper offloads all numerical work to Intel MKL (Section 4.3):
//! Sparse BLAS `mkl_sparse_s_mm` for sparse×dense products, `cblas_sgemm`
//! for dense products, `LAPACKE_sgeqrf`/`sorgqr` for orthonormalization and
//! `LAPACKE_sgesvd` for the small SVD. This crate provides from-scratch,
//! rayon-parallel replacements for exactly those kernels, in the same
//! single precision MKL's `s` routines use:
//!
//! * [`dense::DenseMatrix`] — row-major `f32` matrices with parallel GEMM
//!   (`matmul`), tall-matrix Gram products (`gram_tn`), Gaussian random
//!   matrices and elementwise maps.
//! * [`qr`] — modified Gram–Schmidt orthonormalization with
//!   re-orthogonalization ("twice is enough"), replacing `sgeqrf + sorgqr`.
//! * [`svd`] — one-sided Jacobi SVD for the small `d×d` projected matrix,
//!   replacing `sgesvd`.
//! * [`sparse::CsrMatrix`] — CSR sparse matrices built in parallel from
//!   COO triples, with parallel SPMM, replacing MKL Sparse BLAS.
//! * [`rsvd`] — Algorithm 3 of the paper (the randomized SVD of Halko,
//!   Martinsson & Tropp) composed from the kernels above, plus optional
//!   power iterations.
//! * [`special`] — modified Bessel functions `I_r(θ)`, the coefficients of
//!   ProNE's Chebyshev–Gaussian spectral filter.
//! * [`matio`] — text serialization of dense matrices (the embedding
//!   interchange format).
//! * [`kernels`] — the cache-/register-blocked compute kernels behind the
//!   modules above: packed-panel GEMM with an `MR×NR` register micro-kernel,
//!   blocked projection products for the panel QR, and the fused
//!   Gram/rotation primitives of the Jacobi SVD. All blocking constants are
//!   fixed (never thread-derived), so results are bitwise identical at any
//!   rayon pool size.
//! * [`reference`] — the pre-blocking first-port kernels, kept verbatim as
//!   correctness oracles and benchmark baselines.
//! * [`simd`] — explicit AVX2/AVX-512 implementations of the hot kernels
//!   behind runtime CPU-feature dispatch; the crate's sole unsafe module
//!   (`#![allow(unsafe_code)]` against the crate-wide deny, isolation
//!   enforced by xtask lints L1/L6).

#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod dense;
pub mod eigen;
pub mod kernels;
pub mod matio;
pub mod qr;
pub mod reference;
pub mod rsvd;
pub mod simd;
pub mod sparse;
pub mod special;
pub mod svd;

pub use dense::DenseMatrix;
pub use rsvd::{randomized_svd, RsvdConfig, Svd};
pub use sparse::CsrMatrix;
