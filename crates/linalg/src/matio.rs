//! Dense-matrix text I/O: the embedding interchange format.
//!
//! Embeddings leave the system as whitespace-separated text, one row per
//! vertex — the format every downstream tool in this literature consumes
//! (word2vec's text format without the header). A `#`-prefixed header
//! records the shape for validation on load.

use crate::dense::DenseMatrix;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from matrix text I/O.
#[derive(Debug)]
pub enum MatIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed content (line number, description).
    Parse(usize, String),
}

impl fmt::Display for MatIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatIoError::Io(e) => write!(f, "i/o error: {e}"),
            MatIoError::Parse(line, what) => write!(f, "parse error on line {line}: {what}"),
        }
    }
}

impl std::error::Error for MatIoError {}

impl From<io::Error> for MatIoError {
    fn from(e: io::Error) -> Self {
        MatIoError::Io(e)
    }
}

/// Writes a matrix as text: a `# rows cols` header, then one
/// whitespace-separated row per line.
pub fn write_matrix(m: &DenseMatrix, path: impl AsRef<Path>) -> Result<(), MatIoError> {
    let mut w = BufWriter::with_capacity(1 << 20, File::create(path)?);
    writeln!(w, "# {} {}", m.rows(), m.cols())?;
    for i in 0..m.rows() {
        let mut first = true;
        for &v in m.row(i) {
            if first {
                first = false;
            } else {
                w.write_all(b" ")?;
            }
            write!(w, "{v}")?;
        }
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a matrix written by [`write_matrix`]. The header is optional;
/// without it the shape is inferred from the first row.
pub fn read_matrix(path: impl AsRef<Path>) -> Result<DenseMatrix, MatIoError> {
    let reader = BufReader::with_capacity(1 << 20, File::open(path)?);
    let mut declared: Option<(usize, usize)> = None;
    let mut data: Vec<f32> = Vec::new();
    let mut cols: Option<usize> = None;
    let mut rows = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if let Some(rest) = t.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            if let (Some(r), Some(c)) = (it.next(), it.next()) {
                if let (Ok(r), Ok(c)) = (r.parse(), c.parse()) {
                    declared = Some((r, c));
                }
            }
            continue;
        }
        let row: Result<Vec<f32>, _> = t.split_whitespace().map(str::parse).collect();
        let row = row.map_err(|e| MatIoError::Parse(lineno + 1, format!("{e}")))?;
        match cols {
            None => cols = Some(row.len()),
            Some(c) if c != row.len() => {
                return Err(MatIoError::Parse(
                    lineno + 1,
                    format!("expected {c} columns, found {}", row.len()),
                ))
            }
            _ => {}
        }
        data.extend(row);
        rows += 1;
    }
    let cols = cols.ok_or_else(|| MatIoError::Parse(0, "empty matrix file".into()))?;
    if let Some((dr, dc)) = declared {
        if (dr, dc) != (rows, cols) {
            return Err(MatIoError::Parse(
                0,
                format!("header says {dr}x{dc}, body is {rows}x{cols}"),
            ));
        }
    }
    Ok(DenseMatrix::from_vec(rows, cols, data))
}

/// Writes a COO entry list as text: a `#coo rows cols nnz` header, then
/// one `row col weight` triple per line.
///
/// Weights are written with Rust's shortest-round-trip `f32` formatting,
/// so a write/read cycle is bitwise lossless — checkpointed artifacts
/// resume to exactly the state that was saved.
pub fn write_coo(
    path: impl AsRef<Path>,
    n_rows: usize,
    n_cols: usize,
    entries: &[(u32, u32, f32)],
) -> Result<(), MatIoError> {
    let mut w = BufWriter::with_capacity(1 << 20, File::create(path)?);
    writeln!(w, "#coo {n_rows} {n_cols} {}", entries.len())?;
    for &(r, c, v) in entries {
        writeln!(w, "{r} {c} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Shape and entries of a COO file: `(n_rows, n_cols, entries)`.
pub type CooData = (usize, usize, Vec<(u32, u32, f32)>);

/// Reads a COO file written by [`write_coo`]; returns `(n_rows, n_cols,
/// entries)` with entries in file order.
pub fn read_coo(path: impl AsRef<Path>) -> Result<CooData, MatIoError> {
    let reader = BufReader::with_capacity(1 << 20, File::open(path)?);
    let mut shape: Option<(usize, usize, usize)> = None;
    let mut entries: Vec<(u32, u32, f32)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if let Some(rest) = t.strip_prefix("#coo") {
            let mut it = rest.split_whitespace();
            match (it.next(), it.next(), it.next()) {
                (Some(r), Some(c), Some(z)) => {
                    let parse = |s: &str| {
                        s.parse::<usize>()
                            .map_err(|e| MatIoError::Parse(lineno + 1, format!("{e}")))
                    };
                    shape = Some((parse(r)?, parse(c)?, parse(z)?));
                }
                _ => {
                    return Err(MatIoError::Parse(lineno + 1, "malformed #coo header".into()));
                }
            }
            continue;
        }
        if t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (r, c, v) = match (it.next(), it.next(), it.next()) {
            (Some(r), Some(c), Some(v)) => (r, c, v),
            _ => return Err(MatIoError::Parse(lineno + 1, "expected `row col weight`".into())),
        };
        let r: u32 = r.parse().map_err(|e| MatIoError::Parse(lineno + 1, format!("{e}")))?;
        let c: u32 = c.parse().map_err(|e| MatIoError::Parse(lineno + 1, format!("{e}")))?;
        let v: f32 = v.parse().map_err(|e| MatIoError::Parse(lineno + 1, format!("{e}")))?;
        entries.push((r, c, v));
    }
    let (n_rows, n_cols, nnz) =
        shape.ok_or_else(|| MatIoError::Parse(0, "missing #coo header".into()))?;
    if entries.len() != nnz {
        return Err(MatIoError::Parse(
            0,
            format!("header says {nnz} entries, body has {}", entries.len()),
        ));
    }
    Ok((n_rows, n_cols, entries))
}

/// Writes a CSR matrix as a COO triple list with a `#csr rows cols nnz`
/// header (same body format as [`write_coo`]).
pub fn write_csr(m: &crate::sparse::CsrMatrix, path: impl AsRef<Path>) -> Result<(), MatIoError> {
    let mut w = BufWriter::with_capacity(1 << 20, File::create(path)?);
    writeln!(w, "#csr {} {} {}", m.n_rows(), m.n_cols(), m.nnz())?;
    for i in 0..m.n_rows() {
        let (cols, vals) = m.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            writeln!(w, "{i} {c} {v}")?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a CSR file written by [`write_csr`] and rebuilds the matrix.
///
/// Reconstruction goes through [`CsrMatrix::from_coo`]
/// (sort-by-key, no duplicate keys on disk), so the rebuilt matrix is
/// bitwise identical to the one that was written.
///
/// [`CsrMatrix::from_coo`]: crate::sparse::CsrMatrix::from_coo
pub fn read_csr(path: impl AsRef<Path>) -> Result<crate::sparse::CsrMatrix, MatIoError> {
    let reader = BufReader::with_capacity(1 << 20, File::open(path)?);
    let mut shape: Option<(usize, usize, usize)> = None;
    let mut entries: Vec<(u32, u32, f32)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if let Some(rest) = t.strip_prefix("#csr") {
            let mut it = rest.split_whitespace();
            match (it.next(), it.next(), it.next()) {
                (Some(r), Some(c), Some(z)) => {
                    let parse = |s: &str| {
                        s.parse::<usize>()
                            .map_err(|e| MatIoError::Parse(lineno + 1, format!("{e}")))
                    };
                    shape = Some((parse(r)?, parse(c)?, parse(z)?));
                }
                _ => {
                    return Err(MatIoError::Parse(lineno + 1, "malformed #csr header".into()));
                }
            }
            continue;
        }
        if t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (r, c, v) = match (it.next(), it.next(), it.next()) {
            (Some(r), Some(c), Some(v)) => (r, c, v),
            _ => return Err(MatIoError::Parse(lineno + 1, "expected `row col value`".into())),
        };
        let r: u32 = r.parse().map_err(|e| MatIoError::Parse(lineno + 1, format!("{e}")))?;
        let c: u32 = c.parse().map_err(|e| MatIoError::Parse(lineno + 1, format!("{e}")))?;
        let v: f32 = v.parse().map_err(|e| MatIoError::Parse(lineno + 1, format!("{e}")))?;
        entries.push((r, c, v));
    }
    let (n_rows, n_cols, nnz) =
        shape.ok_or_else(|| MatIoError::Parse(0, "missing #csr header".into()))?;
    if entries.len() != nnz {
        return Err(MatIoError::Parse(
            0,
            format!("header says {nnz} entries, body has {}", entries.len()),
        ));
    }
    Ok(crate::sparse::CsrMatrix::from_coo(n_rows, n_cols, entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lightne_matio_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip() {
        let m = DenseMatrix::gaussian(50, 7, 1);
        let p = tmp("rt.txt");
        write_matrix(&m, &p).unwrap();
        let m2 = read_matrix(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(m.rows(), m2.rows());
        assert_eq!(m.cols(), m2.cols());
        assert!(m.max_abs_diff(&m2) < 1e-5);
    }

    #[test]
    fn headerless_file_inferred() {
        let p = tmp("nohdr.txt");
        std::fs::write(&p, "1 2 3\n4 5 6\n").unwrap();
        let m = read_matrix(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn ragged_rejected() {
        let p = tmp("ragged.txt");
        std::fs::write(&p, "1 2\n3\n").unwrap();
        assert!(matches!(read_matrix(&p), Err(MatIoError::Parse(2, _))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn header_mismatch_rejected() {
        let p = tmp("mismatch.txt");
        std::fs::write(&p, "# 3 2\n1 2\n3 4\n").unwrap();
        assert!(matches!(read_matrix(&p), Err(MatIoError::Parse(0, _))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn coo_roundtrip_is_bitwise() {
        let entries = vec![
            (0u32, 3u32, 1.5f32),
            (2, 1, 0.123_456_79),
            (4, 4, -7.25e-3),
            (1, 0, f32::MIN_POSITIVE),
        ];
        let p = tmp("coo.txt");
        write_coo(&p, 5, 5, &entries).unwrap();
        let (r, c, got) = read_coo(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!((r, c), (5, 5));
        assert_eq!(got.len(), entries.len());
        for ((ru, rv, rw), (gu, gv, gw)) in entries.iter().zip(&got) {
            assert_eq!((ru, rv), (gu, gv));
            assert_eq!(rw.to_bits(), gw.to_bits(), "weight not bitwise round-tripped");
        }
    }

    #[test]
    fn coo_nnz_mismatch_rejected() {
        let p = tmp("coo_bad.txt");
        std::fs::write(&p, "#coo 3 3 2\n0 1 1.0\n").unwrap();
        assert!(read_coo(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn csr_roundtrip_is_bitwise() {
        let coo = vec![(0u32, 1u32, 0.3f32), (0, 2, 1.7), (3, 0, -2.5), (2, 2, 0.0625)];
        let m = crate::sparse::CsrMatrix::from_coo(4, 4, coo);
        let p = tmp("csr.txt");
        write_csr(&m, &p).unwrap();
        let m2 = read_csr(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(m.n_rows(), m2.n_rows());
        assert_eq!(m.n_cols(), m2.n_cols());
        assert_eq!(m.nnz(), m2.nnz());
        for i in 0..m.n_rows() {
            let (ac, av) = m.row(i);
            let (bc, bv) = m2.row(i);
            assert_eq!(ac, bc);
            for (x, y) in av.iter().zip(bv) {
                assert_eq!(x.to_bits(), y.to_bits(), "row {i} not bitwise identical");
            }
        }
    }

    #[test]
    fn empty_rejected() {
        let p = tmp("empty.txt");
        std::fs::write(&p, "").unwrap();
        assert!(read_matrix(&p).is_err());
        std::fs::remove_file(&p).ok();
    }
}
