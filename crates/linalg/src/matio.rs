//! Dense-matrix text I/O: the embedding interchange format.
//!
//! Embeddings leave the system as whitespace-separated text, one row per
//! vertex — the format every downstream tool in this literature consumes
//! (word2vec's text format without the header). A `#`-prefixed header
//! records the shape for validation on load.

use crate::dense::DenseMatrix;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from matrix text I/O.
#[derive(Debug)]
pub enum MatIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed content (line number, description).
    Parse(usize, String),
}

impl fmt::Display for MatIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatIoError::Io(e) => write!(f, "i/o error: {e}"),
            MatIoError::Parse(line, what) => write!(f, "parse error on line {line}: {what}"),
        }
    }
}

impl std::error::Error for MatIoError {}

impl From<io::Error> for MatIoError {
    fn from(e: io::Error) -> Self {
        MatIoError::Io(e)
    }
}

/// Writes a matrix as text: a `# rows cols` header, then one
/// whitespace-separated row per line.
pub fn write_matrix(m: &DenseMatrix, path: impl AsRef<Path>) -> Result<(), MatIoError> {
    let mut w = BufWriter::with_capacity(1 << 20, File::create(path)?);
    writeln!(w, "# {} {}", m.rows(), m.cols())?;
    for i in 0..m.rows() {
        let mut first = true;
        for &v in m.row(i) {
            if first {
                first = false;
            } else {
                w.write_all(b" ")?;
            }
            write!(w, "{v}")?;
        }
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a matrix written by [`write_matrix`]. The header is optional;
/// without it the shape is inferred from the first row.
pub fn read_matrix(path: impl AsRef<Path>) -> Result<DenseMatrix, MatIoError> {
    let reader = BufReader::with_capacity(1 << 20, File::open(path)?);
    let mut declared: Option<(usize, usize)> = None;
    let mut data: Vec<f32> = Vec::new();
    let mut cols: Option<usize> = None;
    let mut rows = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if let Some(rest) = t.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            if let (Some(r), Some(c)) = (it.next(), it.next()) {
                if let (Ok(r), Ok(c)) = (r.parse(), c.parse()) {
                    declared = Some((r, c));
                }
            }
            continue;
        }
        let row: Result<Vec<f32>, _> = t.split_whitespace().map(str::parse).collect();
        let row = row.map_err(|e| MatIoError::Parse(lineno + 1, format!("{e}")))?;
        match cols {
            None => cols = Some(row.len()),
            Some(c) if c != row.len() => {
                return Err(MatIoError::Parse(
                    lineno + 1,
                    format!("expected {c} columns, found {}", row.len()),
                ))
            }
            _ => {}
        }
        data.extend(row);
        rows += 1;
    }
    let cols = cols.ok_or_else(|| MatIoError::Parse(0, "empty matrix file".into()))?;
    if let Some((dr, dc)) = declared {
        if (dr, dc) != (rows, cols) {
            return Err(MatIoError::Parse(
                0,
                format!("header says {dr}x{dc}, body is {rows}x{cols}"),
            ));
        }
    }
    Ok(DenseMatrix::from_vec(rows, cols, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lightne_matio_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip() {
        let m = DenseMatrix::gaussian(50, 7, 1);
        let p = tmp("rt.txt");
        write_matrix(&m, &p).unwrap();
        let m2 = read_matrix(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(m.rows(), m2.rows());
        assert_eq!(m.cols(), m2.cols());
        assert!(m.max_abs_diff(&m2) < 1e-5);
    }

    #[test]
    fn headerless_file_inferred() {
        let p = tmp("nohdr.txt");
        std::fs::write(&p, "1 2 3\n4 5 6\n").unwrap();
        let m = read_matrix(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn ragged_rejected() {
        let p = tmp("ragged.txt");
        std::fs::write(&p, "1 2\n3\n").unwrap();
        assert!(matches!(read_matrix(&p), Err(MatIoError::Parse(2, _))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn header_mismatch_rejected() {
        let p = tmp("mismatch.txt");
        std::fs::write(&p, "# 3 2\n1 2\n3 4\n").unwrap();
        assert!(matches!(read_matrix(&p), Err(MatIoError::Parse(0, _))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_rejected() {
        let p = tmp("empty.txt");
        std::fs::write(&p, "").unwrap();
        assert!(read_matrix(&p).is_err());
        std::fs::remove_file(&p).ok();
    }
}
