//! Dense- and sparse-matrix text I/O: the embedding interchange format.
//!
//! Embeddings leave the system as whitespace-separated text, one row per
//! vertex — the format every downstream tool in this literature consumes
//! (word2vec's text format without the header). A `#`-prefixed header
//! records the shape for validation on load.
//!
//! Every format has three entry points: a generic writer/reader over
//! `io::Write`/`io::BufRead`, a `*_to_bytes`/`*_from_bytes` pair (used by
//! the artifact store, which needs the full byte image to checksum before
//! anything touches disk), and a path-based convenience wrapper. All
//! numeric output uses Rust's shortest-round-trip float formatting, so a
//! write/read cycle is bitwise lossless — checkpointed artifacts resume to
//! exactly the state that was saved.
//!
//! The generic writer and reader are instrumented with the
//! [`lightne_utils::faults`] fail points in [`FAIL_POINTS`], so the
//! crash-consistency suite can inject I/O errors or crashes into every
//! matrix serialization in the system.

use crate::dense::DenseMatrix;
use lightne_utils::faults;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Fail point hit by every matrix/COO/CSR serialization.
pub const FP_WRITE_MATRIX: &str = "matio.write.matrix";
/// Fail point hit by every matrix/COO/CSR parse.
pub const FP_READ_MATRIX: &str = "matio.read.matrix";
/// All fail points registered by this module.
pub const FAIL_POINTS: &[&str] = &[FP_WRITE_MATRIX, FP_READ_MATRIX];

/// Errors from matrix text I/O.
#[derive(Debug)]
pub enum MatIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed content (line number, description).
    Parse(usize, String),
}

impl fmt::Display for MatIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatIoError::Io(e) => write!(f, "i/o error: {e}"),
            MatIoError::Parse(line, what) => write!(f, "parse error on line {line}: {what}"),
        }
    }
}

impl std::error::Error for MatIoError {}

impl From<io::Error> for MatIoError {
    fn from(e: io::Error) -> Self {
        MatIoError::Io(e)
    }
}

/// Writes a matrix as text to `w`: a `# rows cols` header, then one
/// whitespace-separated row per line.
pub fn write_matrix_to(m: &DenseMatrix, mut w: impl Write) -> Result<(), MatIoError> {
    faults::check(FP_WRITE_MATRIX)?;
    writeln!(w, "# {} {}", m.rows(), m.cols())?;
    for i in 0..m.rows() {
        let mut first = true;
        for &v in m.row(i) {
            if first {
                first = false;
            } else {
                w.write_all(b" ")?;
            }
            write!(w, "{v}")?;
        }
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Serializes a matrix to its text byte image (see [`write_matrix_to`]).
pub fn matrix_to_bytes(m: &DenseMatrix) -> Result<Vec<u8>, MatIoError> {
    let mut buf = Vec::with_capacity(m.rows() * (m.cols() * 10 + 1) + 32);
    write_matrix_to(m, &mut buf)?;
    Ok(buf)
}

/// Writes a matrix to a file (see [`write_matrix_to`]).
pub fn write_matrix(m: &DenseMatrix, path: impl AsRef<Path>) -> Result<(), MatIoError> {
    write_matrix_to(m, BufWriter::with_capacity(1 << 20, File::create(path)?))
}

/// Reads a matrix written by [`write_matrix_to`]. The header is optional;
/// without it the shape is inferred from the first row.
pub fn read_matrix_from(r: impl BufRead) -> Result<DenseMatrix, MatIoError> {
    faults::check(FP_READ_MATRIX)?;
    let mut declared: Option<(usize, usize)> = None;
    let mut data: Vec<f32> = Vec::new();
    let mut cols: Option<usize> = None;
    let mut rows = 0usize;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if let Some(rest) = t.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            if let (Some(r), Some(c)) = (it.next(), it.next()) {
                if let (Ok(r), Ok(c)) = (r.parse(), c.parse()) {
                    declared = Some((r, c));
                }
            }
            continue;
        }
        let row: Result<Vec<f32>, _> = t.split_whitespace().map(str::parse).collect();
        let row = row.map_err(|e| MatIoError::Parse(lineno + 1, format!("{e}")))?;
        match cols {
            None => cols = Some(row.len()),
            Some(c) if c != row.len() => {
                return Err(MatIoError::Parse(
                    lineno + 1,
                    format!("expected {c} columns, found {}", row.len()),
                ))
            }
            _ => {}
        }
        data.extend(row);
        rows += 1;
    }
    let cols = cols.ok_or_else(|| MatIoError::Parse(0, "empty matrix file".into()))?;
    if let Some((dr, dc)) = declared {
        if (dr, dc) != (rows, cols) {
            return Err(MatIoError::Parse(
                0,
                format!("header says {dr}x{dc}, body is {rows}x{cols}"),
            ));
        }
    }
    Ok(DenseMatrix::from_vec(rows, cols, data))
}

/// Parses a matrix from its text byte image (see [`read_matrix_from`]).
pub fn matrix_from_bytes(bytes: &[u8]) -> Result<DenseMatrix, MatIoError> {
    read_matrix_from(bytes)
}

/// Reads a matrix from a file (see [`read_matrix_from`]).
pub fn read_matrix(path: impl AsRef<Path>) -> Result<DenseMatrix, MatIoError> {
    read_matrix_from(BufReader::with_capacity(1 << 20, File::open(path)?))
}

/// Writes `row col value` triples under a `#tag rows cols nnz` header.
fn write_triples_to(
    mut w: impl Write,
    tag: &str,
    n_rows: usize,
    n_cols: usize,
    nnz: usize,
    entries: impl Iterator<Item = (u32, u32, f32)>,
) -> Result<(), MatIoError> {
    faults::check(FP_WRITE_MATRIX)?;
    writeln!(w, "#{tag} {n_rows} {n_cols} {nnz}")?;
    for (r, c, v) in entries {
        writeln!(w, "{r} {c} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads the triple-list body format shared by COO and CSR files: entries
/// are returned in file order and validated against the header's `nnz`.
fn read_triples_from(r: impl BufRead, tag: &str) -> Result<CooData, MatIoError> {
    faults::check(FP_READ_MATRIX)?;
    let header = format!("#{tag}");
    let mut shape: Option<(usize, usize, usize)> = None;
    let mut entries: Vec<(u32, u32, f32)> = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if let Some(rest) = t.strip_prefix(header.as_str()) {
            let mut it = rest.split_whitespace();
            match (it.next(), it.next(), it.next()) {
                (Some(r), Some(c), Some(z)) => {
                    let parse = |s: &str| {
                        s.parse::<usize>()
                            .map_err(|e| MatIoError::Parse(lineno + 1, format!("{e}")))
                    };
                    shape = Some((parse(r)?, parse(c)?, parse(z)?));
                }
                _ => {
                    return Err(MatIoError::Parse(
                        lineno + 1,
                        format!("malformed {header} header"),
                    ));
                }
            }
            continue;
        }
        if t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (r, c, v) = match (it.next(), it.next(), it.next()) {
            (Some(r), Some(c), Some(v)) => (r, c, v),
            _ => return Err(MatIoError::Parse(lineno + 1, "expected `row col value`".into())),
        };
        let r: u32 = r.parse().map_err(|e| MatIoError::Parse(lineno + 1, format!("{e}")))?;
        let c: u32 = c.parse().map_err(|e| MatIoError::Parse(lineno + 1, format!("{e}")))?;
        let v: f32 = v.parse().map_err(|e| MatIoError::Parse(lineno + 1, format!("{e}")))?;
        entries.push((r, c, v));
    }
    let (n_rows, n_cols, nnz) =
        shape.ok_or_else(|| MatIoError::Parse(0, format!("missing {header} header")))?;
    if entries.len() != nnz {
        return Err(MatIoError::Parse(
            0,
            format!("header says {nnz} entries, body has {}", entries.len()),
        ));
    }
    Ok((n_rows, n_cols, entries))
}

/// Writes a COO entry list as text to `w`: a `#coo rows cols nnz` header,
/// then one `row col weight` triple per line.
pub fn write_coo_to(
    w: impl Write,
    n_rows: usize,
    n_cols: usize,
    entries: &[(u32, u32, f32)],
) -> Result<(), MatIoError> {
    write_triples_to(w, "coo", n_rows, n_cols, entries.len(), entries.iter().copied())
}

/// Serializes a COO entry list to its text byte image.
pub fn coo_to_bytes(
    n_rows: usize,
    n_cols: usize,
    entries: &[(u32, u32, f32)],
) -> Result<Vec<u8>, MatIoError> {
    let mut buf = Vec::with_capacity(entries.len() * 16 + 32);
    write_coo_to(&mut buf, n_rows, n_cols, entries)?;
    Ok(buf)
}

/// Writes a COO entry list to a file (see [`write_coo_to`]).
pub fn write_coo(
    path: impl AsRef<Path>,
    n_rows: usize,
    n_cols: usize,
    entries: &[(u32, u32, f32)],
) -> Result<(), MatIoError> {
    write_coo_to(BufWriter::with_capacity(1 << 20, File::create(path)?), n_rows, n_cols, entries)
}

/// Shape and entries of a COO file: `(n_rows, n_cols, entries)`.
pub type CooData = (usize, usize, Vec<(u32, u32, f32)>);

/// Reads a COO stream written by [`write_coo_to`]; returns `(n_rows,
/// n_cols, entries)` with entries in file order.
pub fn read_coo_from(r: impl BufRead) -> Result<CooData, MatIoError> {
    read_triples_from(r, "coo")
}

/// Parses a COO byte image (see [`read_coo_from`]).
pub fn coo_from_bytes(bytes: &[u8]) -> Result<CooData, MatIoError> {
    read_coo_from(bytes)
}

/// Reads a COO file written by [`write_coo`].
pub fn read_coo(path: impl AsRef<Path>) -> Result<CooData, MatIoError> {
    read_coo_from(BufReader::with_capacity(1 << 20, File::open(path)?))
}

/// Writes a CSR matrix to `w` as a COO triple list with a `#csr rows cols
/// nnz` header (same body format as [`write_coo_to`]).
pub fn write_csr_to(m: &crate::sparse::CsrMatrix, w: impl Write) -> Result<(), MatIoError> {
    let triples = (0..m.n_rows()).flat_map(|i| {
        let (cols, vals) = m.row(i);
        cols.iter().zip(vals).map(move |(&c, &v)| (i as u32, c, v))
    });
    write_triples_to(w, "csr", m.n_rows(), m.n_cols(), m.nnz(), triples)
}

/// Serializes a CSR matrix to its text byte image.
pub fn csr_to_bytes(m: &crate::sparse::CsrMatrix) -> Result<Vec<u8>, MatIoError> {
    let mut buf = Vec::with_capacity(m.nnz() * 16 + 32);
    write_csr_to(m, &mut buf)?;
    Ok(buf)
}

/// Writes a CSR matrix to a file (see [`write_csr_to`]).
pub fn write_csr(m: &crate::sparse::CsrMatrix, path: impl AsRef<Path>) -> Result<(), MatIoError> {
    write_csr_to(m, BufWriter::with_capacity(1 << 20, File::create(path)?))
}

/// Reads a CSR stream written by [`write_csr_to`] and rebuilds the matrix.
///
/// Reconstruction goes through [`CsrMatrix::from_coo`]
/// (sort-by-key, no duplicate keys on disk), so the rebuilt matrix is
/// bitwise identical to the one that was written.
///
/// [`CsrMatrix::from_coo`]: crate::sparse::CsrMatrix::from_coo
pub fn read_csr_from(r: impl BufRead) -> Result<crate::sparse::CsrMatrix, MatIoError> {
    let (n_rows, n_cols, entries) = read_triples_from(r, "csr")?;
    Ok(crate::sparse::CsrMatrix::from_coo(n_rows, n_cols, entries))
}

/// Parses a CSR byte image (see [`read_csr_from`]).
pub fn csr_from_bytes(bytes: &[u8]) -> Result<crate::sparse::CsrMatrix, MatIoError> {
    read_csr_from(bytes)
}

/// Reads a CSR file written by [`write_csr`].
pub fn read_csr(path: impl AsRef<Path>) -> Result<crate::sparse::CsrMatrix, MatIoError> {
    read_csr_from(BufReader::with_capacity(1 << 20, File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lightne_matio_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip() {
        let m = DenseMatrix::gaussian(50, 7, 1);
        let p = tmp("rt.txt");
        write_matrix(&m, &p).unwrap();
        let m2 = read_matrix(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(m.rows(), m2.rows());
        assert_eq!(m.cols(), m2.cols());
        assert!(m.max_abs_diff(&m2) < 1e-5);
    }

    #[test]
    fn bytes_roundtrip_matches_file_roundtrip() {
        let m = DenseMatrix::gaussian(12, 5, 9);
        let bytes = matrix_to_bytes(&m).unwrap();
        let p = tmp("bytes.txt");
        write_matrix(&m, &p).unwrap();
        let file_bytes = std::fs::read(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(bytes, file_bytes, "bytes and file serializations must agree");
        let m2 = matrix_from_bytes(&bytes).unwrap();
        assert_eq!(m.rows(), m2.rows());
        for i in 0..m.rows() {
            for (x, y) in m.row(i).iter().zip(m2.row(i)) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn headerless_file_inferred() {
        let p = tmp("nohdr.txt");
        std::fs::write(&p, "1 2 3\n4 5 6\n").unwrap();
        let m = read_matrix(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn ragged_rejected() {
        let p = tmp("ragged.txt");
        std::fs::write(&p, "1 2\n3\n").unwrap();
        assert!(matches!(read_matrix(&p), Err(MatIoError::Parse(2, _))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn header_mismatch_rejected() {
        let p = tmp("mismatch.txt");
        std::fs::write(&p, "# 3 2\n1 2\n3 4\n").unwrap();
        assert!(matches!(read_matrix(&p), Err(MatIoError::Parse(0, _))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn coo_roundtrip_is_bitwise() {
        let entries = vec![
            (0u32, 3u32, 1.5f32),
            (2, 1, 0.123_456_79),
            (4, 4, -7.25e-3),
            (1, 0, f32::MIN_POSITIVE),
        ];
        let p = tmp("coo.txt");
        write_coo(&p, 5, 5, &entries).unwrap();
        let (r, c, got) = read_coo(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!((r, c), (5, 5));
        assert_eq!(got.len(), entries.len());
        for ((ru, rv, rw), (gu, gv, gw)) in entries.iter().zip(&got) {
            assert_eq!((ru, rv), (gu, gv));
            assert_eq!(rw.to_bits(), gw.to_bits(), "weight not bitwise round-tripped");
        }
    }

    #[test]
    fn coo_nnz_mismatch_rejected() {
        let p = tmp("coo_bad.txt");
        std::fs::write(&p, "#coo 3 3 2\n0 1 1.0\n").unwrap();
        assert!(read_coo(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn csr_roundtrip_is_bitwise() {
        let coo = vec![(0u32, 1u32, 0.3f32), (0, 2, 1.7), (3, 0, -2.5), (2, 2, 0.0625)];
        let m = crate::sparse::CsrMatrix::from_coo(4, 4, coo);
        let p = tmp("csr.txt");
        write_csr(&m, &p).unwrap();
        let m2 = read_csr(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(m.n_rows(), m2.n_rows());
        assert_eq!(m.n_cols(), m2.n_cols());
        assert_eq!(m.nnz(), m2.nnz());
        for i in 0..m.n_rows() {
            let (ac, av) = m.row(i);
            let (bc, bv) = m2.row(i);
            assert_eq!(ac, bc);
            for (x, y) in av.iter().zip(bv) {
                assert_eq!(x.to_bits(), y.to_bits(), "row {i} not bitwise identical");
            }
        }
    }

    #[test]
    fn empty_rejected() {
        let p = tmp("empty.txt");
        std::fs::write(&p, "").unwrap();
        assert!(read_matrix(&p).is_err());
        std::fs::remove_file(&p).ok();
    }
}
