//! Truncated symmetric eigendecomposition by blocked subspace iteration.
//!
//! NetMF's "large-window" variant (Qiu et al., WSDM 2018 — the algorithm
//! LightNE's matrix lineage starts from) avoids dense powers of `D⁻¹A` by
//! eigen-decomposing the symmetric normalized adjacency
//! `N = D^{-1/2} A D^{-1/2}` once and evaluating the window polynomial on
//! the eigenvalues. SciPy's `eigsh` supplies that decomposition there;
//! this module supplies it here, via blocked subspace (orthogonal) power
//! iteration with Rayleigh–Ritz extraction — simple, robust, and built
//! entirely from this crate's kernels.
//!
//! Note: plain subspace iteration converges on the eigenvalues of largest
//! *magnitude*. For spectra that are symmetric-ish around zero (bipartite
//! graphs) the most-negative eigenvalues can displace small positive
//! ones; NetMF-large accepts exactly that behaviour from `eigsh('LM')`.

use crate::dense::DenseMatrix;
use crate::qr::orthonormalize_columns;
use crate::sparse::CsrMatrix;
use crate::svd::jacobi_svd;

/// Top-`k` (by magnitude) eigenpairs of a symmetric sparse matrix.
#[derive(Debug, Clone)]
pub struct EigenPairs {
    /// Eigenvalues, sorted by descending magnitude.
    pub values: Vec<f32>,
    /// Corresponding orthonormal eigenvectors (`n × k`).
    pub vectors: DenseMatrix,
}

/// Computes the `k` largest-magnitude eigenpairs of symmetric `a` by
/// subspace iteration (`iters` rounds; 20–50 suffice for well-separated
/// spectra).
///
/// # Panics
/// Panics if `a` is not square or `k` is zero or exceeds `n`.
pub fn symmetric_eigs(a: &CsrMatrix, k: usize, iters: usize, seed: u64) -> EigenPairs {
    let n = a.n_rows();
    assert_eq!(n, a.n_cols(), "matrix must be square");
    assert!(k >= 1 && k <= n, "need 1 <= k <= n");
    let block = (k + 8).min(n);

    let mut q = DenseMatrix::gaussian(n, block, seed);
    orthonormalize_columns(&mut q);
    for _ in 0..iters {
        q = a.spmm(&q);
        orthonormalize_columns(&mut q);
    }

    // Rayleigh–Ritz: diagonalize the projected matrix T = Qᵀ A Q.
    let aq = a.spmm(&q);
    let t = q.gram_tn(&aq); // block × block, symmetric
                            // Jacobi SVD of symmetric T gives |λ| and vectors; recover signs via
                            // the Rayleigh quotient of each Ritz vector.
    let svd = jacobi_svd(&t);
    let ritz = q.matmul(&svd.u); // n × block

    // sign(λ_j) = sign(v_jᵀ A v_j); magnitude from the SVD. One blocked
    // SPMM + columnwise dots for all Ritz vectors at once (the first port
    // did an n×1 SPMM per column here).
    let aritz = a.spmm(&ritz);
    let quots = crate::kernels::columnwise_dots(ritz.as_slice(), aritz.as_slice(), block);
    let mut pairs: Vec<(f32, usize)> = Vec::with_capacity(block);
    for (j, &quot) in quots.iter().enumerate() {
        let lambda = if quot >= 0.0 { svd.sigma[j] } else { -svd.sigma[j] };
        pairs.push((lambda, j));
    }
    pairs.sort_by(|a, b| b.0.abs().partial_cmp(&a.0.abs()).unwrap());
    pairs.truncate(k);

    let mut vectors = DenseMatrix::zeros(n, k);
    let mut values = Vec::with_capacity(k);
    for (out_j, &(lambda, j)) in pairs.iter().enumerate() {
        values.push(lambda);
        for i in 0..n {
            vectors.set(i, out_j, ritz.get(i, j));
        }
    }
    EigenPairs { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Symmetric matrix with planted spectrum Q diag(λ) Qᵀ.
    fn planted(n: usize, lambda: &[f32], seed: u64) -> (CsrMatrix, DenseMatrix) {
        let mut q = DenseMatrix::gaussian(n, lambda.len(), seed);
        orthonormalize_columns(&mut q);
        let mut ql = q.clone();
        ql.scale_columns(lambda);
        let dense = ql.matmul(&q.transpose());
        let mut coo = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let v = dense.get(i, j);
                if v != 0.0 {
                    coo.push((i as u32, j as u32, v));
                }
            }
        }
        (CsrMatrix::from_coo(n, n, coo), q)
    }

    #[test]
    fn recovers_planted_eigenvalues_with_signs() {
        let lambda = [8.0f32, -5.0, 3.0, 1.0];
        let (a, _) = planted(60, &lambda, 1);
        let e = symmetric_eigs(&a, 3, 60, 2);
        assert!((e.values[0] - 8.0).abs() < 0.02, "{:?}", e.values);
        assert!((e.values[1] + 5.0).abs() < 0.02, "{:?}", e.values);
        assert!((e.values[2] - 3.0).abs() < 0.05, "{:?}", e.values);
    }

    #[test]
    fn vectors_are_orthonormal_and_satisfy_av_lv() {
        let lambda = [6.0f32, 4.0, 2.0];
        let (a, _) = planted(50, &lambda, 3);
        let e = symmetric_eigs(&a, 3, 80, 4);
        let gram = e.vectors.gram_tn(&e.vectors);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((gram.get(i, j) - want).abs() < 1e-3);
            }
        }
        // ‖A v − λ v‖ small for each pair.
        let av = a.spmm(&e.vectors);
        for j in 0..3 {
            let mut err = 0.0f64;
            for i in 0..50 {
                let r = av.get(i, j) as f64 - e.values[j] as f64 * e.vectors.get(i, j) as f64;
                err += r * r;
            }
            assert!(err.sqrt() < 0.05, "pair {j}: residual {}", err.sqrt());
        }
    }

    #[test]
    fn identity_matrix_eigs() {
        let a = CsrMatrix::identity(20);
        let e = symmetric_eigs(&a, 4, 20, 5);
        for v in &e.values {
            assert!((v - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "must be square")]
    fn rejects_rectangular() {
        let a = CsrMatrix::zeros(3, 4);
        let _ = symmetric_eigs(&a, 1, 5, 6);
    }
}
