//! Randomized SVD — Algorithm 3 of the LightNE paper (after Halko,
//! Martinsson & Tropp, *Finding structure with randomness*, 2011).
//!
//! The paper's pseudo-code, with the MKL routine each line used and the
//! kernel from this workspace that replaces it:
//!
//! ```text
//! 1  sample Gaussian O (n×l), P (l×l)      vsRngGaussian   → DenseMatrix::gaussian
//! 2  Y = Aᵀ O                              mkl_sparse_s_mm → CsrMatrix::spmm (A symmetric)
//! 3  orthonormalize Y                      sgeqrf/sorgqr   → qr::orthonormalize_columns
//! 4  B = A Y                               mkl_sparse_s_mm → CsrMatrix::spmm
//! 5  Z = B P                               cblas_sgemm     → DenseMatrix::matmul
//! 6  orthonormalize Z                      sgeqrf/sorgqr   → qr::orthonormalize_columns
//! 7  C = Zᵀ B                              cblas_sgemm     → DenseMatrix::gram_tn
//! 8  SVD  C = U Σ Vᵀ                       sgesvd          → svd::jacobi_svd
//! 9  return Z U, Σ, Y V                    cblas_sgemm     → DenseMatrix::matmul
//! ```
//!
//! where `l = rank + oversampling`. We additionally support subspace
//! (power) iterations `q`, which sharpen the spectrum for matrices with a
//! slowly decaying tail at the cost of extra SPMMs; `q = 0` reproduces the
//! paper exactly.

use crate::dense::DenseMatrix;
use crate::qr::orthonormalize_columns;
use crate::sparse::CsrMatrix;
use crate::svd::jacobi_svd;

/// Configuration for [`randomized_svd`].
#[derive(Debug, Clone, Copy)]
pub struct RsvdConfig {
    /// Target rank `d` (the embedding dimension).
    pub rank: usize,
    /// Extra Gaussian directions beyond `rank`; 8–16 is typical.
    pub oversampling: usize,
    /// Subspace-iteration count (0 = the paper's single-pass variant).
    pub power_iters: usize,
    /// RNG seed for the Gaussian test matrices.
    pub seed: u64,
}

impl Default for RsvdConfig {
    fn default() -> Self {
        Self { rank: 128, oversampling: 16, power_iters: 1, seed: 0x051D_5EED }
    }
}

impl RsvdConfig {
    /// Config with the given rank and defaults elsewhere.
    pub fn with_rank(rank: usize) -> Self {
        Self { rank, ..Self::default() }
    }
}

/// A truncated SVD `A ≈ U · diag(sigma) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (`n × rank`).
    pub u: DenseMatrix,
    /// Singular values, descending (`rank`).
    pub sigma: Vec<f32>,
    /// Right singular vectors (`n × rank`).
    pub v: DenseMatrix,
}

impl Svd {
    /// The embedding the paper derives from the factorization:
    /// `X = U · Σ^{1/2}` (`n × rank`).
    pub fn embedding(&self) -> DenseMatrix {
        let mut x = self.u.clone();
        let scale: Vec<f32> = self.sigma.iter().map(|&s| s.max(0.0).sqrt()).collect();
        x.scale_columns(&scale);
        x
    }
}

/// Nominal floating-point operation count of [`randomized_svd`] on an
/// `n × n` sparse matrix with `nnz` stored entries, used by the engine's
/// per-stage GFLOP/s accounting. Counts the dominant terms with the
/// conventional 2-flops-per-multiply-add convention: `(2 + 2q)` SPMMs at
/// `2·nnz·l`, `(2 + q)` orthonormalizations at `~4·n·l²` (two blocked
/// projection/normalization passes), the dense products of steps 5, 7
/// and 9 at `8·n·l²` total, and `~12·l³` for the small Jacobi SVD.
pub fn rsvd_flops(n: usize, nnz: u64, cfg: &RsvdConfig) -> u64 {
    let l = (cfg.rank + cfg.oversampling).min(n).max(1) as u64;
    let (n, q) = (n as u64, cfg.power_iters as u64);
    let spmms = (2 + 2 * q) * 2 * nnz * l;
    let orths = (2 + q) * 4 * n * l * l;
    let gemms = 8 * n * l * l;
    let small = 12 * l * l * l;
    spmms + orths + gemms + small
}

/// Computes a rank-`cfg.rank` randomized SVD of the sparse matrix `a`
/// (`n × n`; LightNE's sparsifier is symmetric but symmetry is not
/// required — line 2 uses `Aᵀ`).
///
/// ```
/// use lightne_linalg::{randomized_svd, CsrMatrix, RsvdConfig};
/// // 4x4 diagonal matrix: singular values are the diagonal.
/// let a = CsrMatrix::from_coo(4, 4, vec![(0,0,5.0), (1,1,3.0), (2,2,2.0), (3,3,1.0)]);
/// let svd = randomized_svd(&a, &RsvdConfig { rank: 2, oversampling: 2, power_iters: 2, seed: 7 });
/// assert!((svd.sigma[0] - 5.0).abs() < 1e-3);
/// assert!((svd.sigma[1] - 3.0).abs() < 1e-3);
/// assert_eq!(svd.embedding().rows(), 4);
/// ```
pub fn randomized_svd(a: &CsrMatrix, cfg: &RsvdConfig) -> Svd {
    let n = a.n_rows();
    assert_eq!(a.n_cols(), n, "randomized_svd expects a square matrix");
    let l = (cfg.rank + cfg.oversampling).min(n).max(1);
    let at = if a.is_symmetric(0.0) { None } else { Some(a.transpose()) };
    let spmm_t = |x: &DenseMatrix| match &at {
        Some(t) => t.spmm(x),
        None => a.spmm(x),
    };

    // 1–3: ranged sketch Y = Aᵀ O, orthonormalized.
    let o = DenseMatrix::gaussian(n, l, cfg.seed);
    let mut y = spmm_t(&o);
    orthonormalize_columns(&mut y);

    // Optional subspace iterations: Y ← orth(Aᵀ (A Y)).
    for _ in 0..cfg.power_iters {
        let ay = a.spmm(&y);
        y = spmm_t(&ay);
        orthonormalize_columns(&mut y);
    }

    // 4: B = A Y (n × l).
    let b = a.spmm(&y);

    // 5–6: Z = orth(B P) — a second sketch on the left.
    let p = DenseMatrix::gaussian(l, l, cfg.seed.wrapping_add(1));
    let mut z = b.matmul(&p);
    orthonormalize_columns(&mut z);

    // 7: C = Zᵀ B (l × l).
    let c = z.gram_tn(&b);

    // 8: small SVD.
    let small = jacobi_svd(&c);

    // 9: lift and truncate to the requested rank.
    let rank = cfg.rank.min(l);
    let u_full = z.matmul(&small.u);
    let v_full = y.matmul(&small.v);
    let mut u = DenseMatrix::zeros(n, rank);
    let mut v = DenseMatrix::zeros(n, rank);
    for i in 0..n {
        u.row_mut(i).copy_from_slice(&u_full.row(i)[..rank]);
        v.row_mut(i).copy_from_slice(&v_full.row(i)[..rank]);
    }
    let sigma = small.sigma[..rank].to_vec();
    Svd { u, sigma, v }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a symmetric matrix with known spectrum Q diag(λ) Qᵀ as CSR.
    fn known_spectrum(n: usize, lambda: &[f32], seed: u64) -> (CsrMatrix, DenseMatrix) {
        let mut q = DenseMatrix::gaussian(n, lambda.len(), seed);
        orthonormalize_columns(&mut q);
        let mut ql = q.clone();
        ql.scale_columns(lambda);
        let dense = ql.matmul(&q.transpose());
        let mut coo = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let v = dense.get(i, j);
                if v != 0.0 {
                    coo.push((i as u32, j as u32, v));
                }
            }
        }
        (CsrMatrix::from_coo(n, n, coo), q)
    }

    #[test]
    fn recovers_known_singular_values() {
        let lambda = [10.0f32, 8.0, 6.0, 4.0, 2.0];
        let (a, _) = known_spectrum(80, &lambda, 3);
        let cfg = RsvdConfig { rank: 5, oversampling: 10, power_iters: 2, seed: 1 };
        let svd = randomized_svd(&a, &cfg);
        for (got, want) in svd.sigma.iter().zip(lambda.iter()) {
            assert!((got - want).abs() < 0.05, "sigma {got} want {want}");
        }
    }

    #[test]
    fn low_rank_reconstruction() {
        let lambda = [5.0f32, 3.0, 1.0];
        let (a, _) = known_spectrum(60, &lambda, 7);
        let cfg = RsvdConfig { rank: 3, oversampling: 12, power_iters: 2, seed: 2 };
        let svd = randomized_svd(&a, &cfg);
        // Reconstruct and compare to the dense original.
        let mut us = svd.u.clone();
        us.scale_columns(&svd.sigma);
        let recon = us.matmul(&svd.v.transpose());
        let orig = a.to_dense();
        let err = recon.max_abs_diff(&orig);
        assert!(err < 0.05, "reconstruction error {err}");
    }

    #[test]
    fn single_pass_paper_variant_reasonable() {
        // power_iters = 0 reproduces Algorithm 3 exactly; accuracy is lower
        // but the leading singular value must still be close.
        let lambda = [10.0f32, 1.0, 0.5];
        let (a, _) = known_spectrum(100, &lambda, 11);
        let cfg = RsvdConfig { rank: 3, oversampling: 20, power_iters: 0, seed: 3 };
        let svd = randomized_svd(&a, &cfg);
        assert!((svd.sigma[0] - 10.0).abs() < 0.5, "sigma0 {}", svd.sigma[0]);
    }

    #[test]
    fn embedding_shape_and_scaling() {
        let lambda = [4.0f32, 1.0];
        let (a, _) = known_spectrum(30, &lambda, 5);
        let svd =
            randomized_svd(&a, &RsvdConfig { rank: 2, oversampling: 8, power_iters: 2, seed: 4 });
        let x = svd.embedding();
        assert_eq!(x.rows(), 30);
        assert_eq!(x.cols(), 2);
        // Column norms of U·Σ^½ are √σ.
        let mut norm0 = 0.0f64;
        for i in 0..30 {
            norm0 += (x.get(i, 0) as f64).powi(2);
        }
        assert!((norm0.sqrt() - (lambda[0] as f64).sqrt()).abs() < 0.1, "norm {}", norm0.sqrt());
    }

    #[test]
    fn asymmetric_matrix_supported() {
        // Rank-1 asymmetric: a = s * u v^T.
        let n = 40;
        let mut coo = Vec::new();
        for i in 0..n {
            coo.push((i as u32, ((i + 1) % n) as u32, 2.0));
        }
        let a = CsrMatrix::from_coo(n, n, coo);
        let svd =
            randomized_svd(&a, &RsvdConfig { rank: 4, oversampling: 8, power_iters: 2, seed: 6 });
        // A cyclic permutation scaled by 2 has all singular values = 2.
        for s in &svd.sigma {
            assert!((s - 2.0).abs() < 0.05, "sigma {s}");
        }
    }

    #[test]
    fn rank_larger_than_n_clamped() {
        let (a, _) = known_spectrum(6, &[3.0, 1.0], 8);
        let svd =
            randomized_svd(&a, &RsvdConfig { rank: 50, oversampling: 10, power_iters: 1, seed: 7 });
        assert_eq!(svd.u.cols(), 6);
        assert_eq!(svd.sigma.len(), 6);
    }
}
