//! Sparse-matrix views of a graph.
//!
//! The propagation stage and the ProNE+ baseline both operate on matrices
//! derived from the adjacency structure: the adjacency matrix `A`, the
//! random-walk transition matrix `D⁻¹A` and the normalized graph Laplacian
//! `L = I − D⁻¹A` (Table 1 of the paper). These constructors build them in
//! parallel directly from CSR neighbor lists.

use lightne_graph::GraphOps;
use lightne_linalg::CsrMatrix;
use rayon::prelude::*;

/// Collects a graph's arcs as weighted COO triples, applying `weight(u, v)`.
fn arcs_coo<G, W>(g: &G, weight: W) -> Vec<(u32, u32, f32)>
where
    G: GraphOps,
    W: Fn(u32, u32) -> f32 + Sync + Send,
{
    (0..g.num_vertices() as u32)
        .into_par_iter()
        .flat_map_iter(|u| {
            let mut row = Vec::with_capacity(g.degree(u));
            g.for_each_neighbor(u, &mut |v| row.push((u, v, weight(u, v))));
            row
        })
        .collect()
}

/// The (unweighted) adjacency matrix `A`.
pub fn adjacency<G: GraphOps>(g: &G) -> CsrMatrix {
    CsrMatrix::from_coo(g.num_vertices(), g.num_vertices(), arcs_coo(g, |_, _| 1.0))
}

/// The random-walk transition matrix `D⁻¹A` (rows sum to 1).
pub fn transition<G: GraphOps>(g: &G) -> CsrMatrix {
    CsrMatrix::from_coo(
        g.num_vertices(),
        g.num_vertices(),
        arcs_coo(g, |u, _| 1.0 / g.degree(u) as f32),
    )
}

/// The normalized graph Laplacian `L = I − D⁻¹A`. Isolated vertices get
/// `L_vv = 1` (their row of `D⁻¹A` is zero).
pub fn normalized_laplacian<G: GraphOps>(g: &G) -> CsrMatrix {
    let n = g.num_vertices();
    let mut coo = arcs_coo(g, |u, _| -1.0 / g.degree(u) as f32);
    coo.extend((0..n as u32).map(|v| (v, v, 1.0f32)));
    CsrMatrix::from_coo(n, n, coo)
}

/// The self-looped transition matrix `D̃⁻¹Ã` with `Ã = A + I`, the
/// smoothed operator ProNE's filter is built on (self-loops bound the
/// spectrum away from bipartite oscillation).
pub fn transition_with_self_loops<G: GraphOps>(g: &G) -> CsrMatrix {
    let n = g.num_vertices();
    let mut coo = arcs_coo(g, |u, _| 1.0 / (g.degree(u) + 1) as f32);
    coo.extend((0..n as u32).map(|v| (v, v, 1.0 / (g.degree(v) + 1) as f32)));
    CsrMatrix::from_coo(n, n, coo)
}

/// Weighted self-looped transition `D̃⁻¹Ã` with `Ã = A + I` (the unit
/// self-loop convention ProNE uses carries over to weighted graphs).
pub fn weighted_transition_with_self_loops(g: &lightne_graph::WeightedGraph) -> CsrMatrix {
    let n = g.num_vertices();
    let mut coo: Vec<(u32, u32, f32)> = Vec::with_capacity(g.num_arcs() + n);
    for u in 0..n as u32 {
        let d = (g.weighted_degree(u) + 1.0) as f32;
        let (nb, ws) = g.neighbors(u);
        for (&v, &w) in nb.iter().zip(ws) {
            coo.push((u, v, w / d));
        }
        coo.push((u, u, 1.0 / d));
    }
    CsrMatrix::from_coo(n, n, coo)
}

/// Weighted self-looped adjacency `A + I`.
pub fn weighted_adjacency_plus_i(g: &lightne_graph::WeightedGraph) -> CsrMatrix {
    let n = g.num_vertices();
    let mut coo: Vec<(u32, u32, f32)> = Vec::with_capacity(g.num_arcs() + n);
    for u in 0..n as u32 {
        let (nb, ws) = g.neighbors(u);
        for (&v, &w) in nb.iter().zip(ws) {
            coo.push((u, v, w));
        }
        coo.push((u, u, 1.0));
    }
    CsrMatrix::from_coo(n, n, coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_gen::generators::erdos_renyi;
    use lightne_graph::GraphBuilder;

    #[test]
    fn weighted_transition_rows_stochastic() {
        let g = lightne_graph::WeightedGraph::from_edges(3, &[(0, 1, 2.0), (1, 2, 3.0)]);
        let p = weighted_transition_with_self_loops(&g);
        for i in 0..3 {
            let s: f32 = p.row(i).1.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {i}: {s}");
        }
        // P[0,1] = 2/(2+1)
        assert!((p.get(0, 1) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_adjacency_keeps_weights_and_loops() {
        let g = lightne_graph::WeightedGraph::from_edges(2, &[(0, 1, 5.0)]);
        let a = weighted_adjacency_plus_i(&g);
        assert_eq!(a.get(0, 1), 5.0);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 1), 1.0);
    }

    #[test]
    fn adjacency_matches_graph() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let a = adjacency(&g);
        assert_eq!(a.nnz(), 6);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    fn transition_rows_sum_to_one() {
        let g = erdos_renyi(100, 600, 1);
        let p = transition(&g);
        for i in 0..100 {
            let (_, vals) = p.row(i);
            if g.degree(i as u32) > 0 {
                let s: f32 = vals.iter().sum();
                assert!((s - 1.0).abs() < 1e-5, "row {i}: {s}");
            }
        }
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let g = erdos_renyi(100, 600, 2);
        let l = normalized_laplacian(&g);
        let ones = vec![1.0f32; 100];
        let y = l.mul_vec(&ones);
        for (i, v) in y.iter().enumerate() {
            if g.degree(i as u32) > 0 {
                assert!(v.abs() < 1e-5, "row {i}: {v}");
            } else {
                assert!((v - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn self_loop_transition_stochastic() {
        let g = GraphBuilder::from_edges(3, &[(0, 1)]);
        let p = transition_with_self_loops(&g);
        // Vertex 2 is isolated: with the self-loop its row is just itself.
        assert_eq!(p.get(2, 2), 1.0);
        let s: f32 = p.row(0).1.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn laplacian_psd_quadratic_form() {
        // xᵀ D L x = Σ_{(u,v)∈E} (x_u − x_v)² ≥ 0 for the normalized
        // Laplacian; check on random vectors via the unnormalized identity.
        let g = erdos_renyi(60, 300, 3);
        let l = normalized_laplacian(&g);
        use lightne_utils::rng::XorShiftStream;
        let mut rng = XorShiftStream::new(5, 0);
        for _ in 0..10 {
            let x: Vec<f32> = (0..60).map(|_| rng.gaussian() as f32).collect();
            let lx = l.mul_vec(&x);
            // xᵀ D (Lx)
            let quad: f64 =
                (0..60).map(|i| g.degree(i as u32) as f64 * x[i] as f64 * lx[i] as f64).sum();
            assert!(quad > -1e-3, "quadratic form negative: {quad}");
        }
    }
}
