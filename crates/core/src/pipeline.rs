//! The end-to-end LightNE pipeline.
//!
//! Wires the three stages together with the timing instrumentation the
//! paper's Table 5 reports: parallel sparsifier construction → randomized
//! SVD → spectral propagation. Every stage is generic over [`GraphOps`],
//! so the same pipeline runs on the uncompressed CSR or the parallel-byte
//! compressed graph.

use crate::engine::{run_pipeline, EngineError, PipelineSource, RunOptions, RunStats};
use crate::propagation::{spectral_propagation, PropagationConfig};
use lightne_graph::GraphOps;
use lightne_hash::ShardedEdgeTable;
use lightne_linalg::{CsrMatrix, DenseMatrix};
use lightne_sparsifier::construct::{
    build_sparsifier, SamplerConfig, SamplerError, SamplerStats, SparsifierOutput,
};
use lightne_sparsifier::downsample::ProbScheme;
use lightne_sparsifier::netmf::sparsifier_to_netmf;
use lightne_sparsifier::sharded::{
    build_sharded_sparsifier, build_weighted_sharded_sparsifier, sharded_to_netmf,
    weighted_sharded_to_netmf,
};
use lightne_utils::timer::StageTimer;

/// Full configuration of a LightNE run.
#[derive(Debug, Clone, Copy)]
pub struct LightNeConfig {
    /// Embedding dimension `d`.
    pub dim: usize,
    /// Context window `T`.
    pub window: usize,
    /// Number of PathSampling trials, expressed as the paper's ratio:
    /// `M = sample_ratio · T · m`. LightNE-Small uses 0.1, LightNE-Large 20.
    pub sample_ratio: f64,
    /// Degree-based edge downsampling on/off (Section 3.2).
    pub downsample: bool,
    /// Downsampling constant override (`None` = `log n`).
    pub c_factor: Option<f64>,
    /// Edge-survival probability scheme for the downsampling coin.
    pub prob: ProbScheme,
    /// Negative-sample count `b` in the NetMF matrix.
    pub negative: f64,
    /// Randomized-SVD oversampling.
    pub oversampling: usize,
    /// Randomized-SVD subspace iterations (0 = the paper's single pass).
    pub power_iters: usize,
    /// Spectral propagation settings; `None` skips the stage (the paper
    /// does this for the very-large graphs, Section 5.3).
    pub propagation: Option<PropagationConfig>,
    /// Master RNG seed.
    pub seed: u64,
    /// Shard count for the vertex-range-sharded aggregation path
    /// (`0` = automatic heuristic, see `ShardedEdgeTable::auto_shards`).
    pub shards: usize,
    /// Forces the legacy single-global-table data path instead of the
    /// sharded one. Output bytes are identical either way; this exists
    /// for A/B benchmarking and as an escape hatch.
    pub global_table: bool,
    /// Pins rayon workers to cores for the sample→aggregate stage
    /// (`--pin-shards`), keeping each shard's table cache-resident on
    /// one core. Off by default; output bytes are identical either way
    /// (see `lightne_utils::affinity`).
    pub pin_shards: bool,
}

impl Default for LightNeConfig {
    fn default() -> Self {
        Self {
            dim: 128,
            window: 10,
            sample_ratio: 1.0,
            downsample: true,
            c_factor: None,
            prob: ProbScheme::Degree,
            negative: 1.0,
            oversampling: 16,
            power_iters: 1,
            propagation: Some(PropagationConfig::default()),
            seed: 0x11_97,
            shards: 0,
            global_table: false,
            pin_shards: false,
        }
    }
}

impl LightNeConfig {
    /// The paper's LightNE-Small operating point (`M = 0.1·T·m`).
    pub fn small() -> Self {
        Self { sample_ratio: 0.1, ..Default::default() }
    }

    /// The paper's LightNE-Large operating point (`M = 20·T·m`).
    pub fn large() -> Self {
        Self { sample_ratio: 20.0, ..Default::default() }
    }

    /// Canonical text rendering of every parameter that shapes the
    /// checkpointed pipeline state, one `key value` line each. This feeds
    /// the run fingerprint stored in artifact metadata, so resuming with
    /// artifacts from a differently-parameterized run is rejected.
    ///
    /// Deliberately excluded: `shards`, `global_table` and `pin_shards`
    /// (alternate data paths / scheduling modes with byte-identical
    /// output) and `propagation` (runs after the
    /// deepest checkpointed artifact, so it never invalidates one). Floats
    /// are rendered by their exact bit patterns — fingerprints compare
    /// identity, not approximate equality.
    pub fn fingerprint_text(&self) -> String {
        let c_factor = match self.c_factor {
            Some(c) => format!("{:016x}", c.to_bits()),
            None => "none".to_string(),
        };
        format!(
            "dim {}\nwindow {}\nsample_ratio {:016x}\ndownsample {}\nc_factor {}\nprob {}\n\
             negative {:016x}\noversampling {}\npower_iters {}\nseed {}\n",
            self.dim,
            self.window,
            self.sample_ratio.to_bits(),
            self.downsample,
            c_factor,
            self.prob.name(),
            self.negative.to_bits(),
            self.oversampling,
            self.power_iters,
            self.seed,
        )
    }
}

/// Result of a LightNE run.
#[derive(Debug, Clone)]
pub struct LightNeOutput {
    /// The final `n × d` embedding.
    pub embedding: DenseMatrix,
    /// The initial (pre-propagation) embedding, kept for ablations.
    /// `None` when propagation is disabled — the initial embedding then
    /// *is* [`LightNeOutput::embedding`] (moved, not cloned).
    pub initial_embedding: Option<DenseMatrix>,
    /// Sampling statistics (trials, kept, distinct entries, memory).
    pub sampler: SamplerStats,
    /// Non-zeros of the factorized NetMF matrix.
    pub netmf_nnz: usize,
    /// Per-stage wall-clock breakdown (Table 5 rows).
    pub timings: StageTimer,
    /// Full per-stage run statistics (wall time, counters, heap bytes).
    pub stats: RunStats,
}

impl LightNeOutput {
    /// The initial (pre-propagation) embedding. When propagation was
    /// disabled the final embedding *is* the initial one.
    pub fn initial(&self) -> &DenseMatrix {
        self.initial_embedding.as_ref().unwrap_or(&self.embedding)
    }
}

/// The LightNE system.
#[derive(Debug, Clone)]
pub struct LightNe {
    cfg: LightNeConfig,
}

/// Stage name used in [`LightNeOutput::timings`].
pub const STAGE_SPARSIFIER: &str = "parallel sparsifier construction";
/// Stage name used in [`LightNeOutput::timings`].
pub const STAGE_NETMF: &str = "netmf conversion";
/// Stage name used in [`LightNeOutput::timings`].
pub const STAGE_RSVD: &str = "randomized svd";
/// Stage name used in [`LightNeOutput::timings`].
pub const STAGE_PROPAGATION: &str = "spectral propagation";

/// [`PipelineSource`] for the unweighted pipeline over any [`GraphOps`]
/// graph (uncompressed CSR or parallel-byte compressed).
pub struct UnweightedSource<'a, G: GraphOps>(pub &'a G);

impl<G: GraphOps> PipelineSource for UnweightedSource<'_, G> {
    fn num_vertices(&self) -> usize {
        self.0.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.0.num_edges()
    }

    fn graph_resident_bytes(&self) -> usize {
        self.0.resident_bytes()
    }

    fn sparsify(&self, cfg: &SamplerConfig) -> SparsifierOutput {
        build_sparsifier(self.0, cfg)
    }

    fn sparsify_sharded(
        &self,
        cfg: &SamplerConfig,
        shards: usize,
    ) -> Option<Result<(ShardedEdgeTable, SamplerStats), SamplerError>> {
        Some(build_sharded_sparsifier(self.0, cfg, shards))
    }

    fn netmf(&self, coo: Vec<(u32, u32, f32)>, samples: u64, negative: f64) -> CsrMatrix {
        sparsifier_to_netmf(self.0, coo, samples, negative)
    }

    fn netmf_sharded(&self, table: ShardedEdgeTable, samples: u64, negative: f64) -> CsrMatrix {
        sharded_to_netmf(self.0, table, samples, negative)
    }

    fn propagate(&self, initial: &DenseMatrix, cfg: &PropagationConfig) -> DenseMatrix {
        spectral_propagation(self.0, initial, cfg)
    }
}

/// [`PipelineSource`] for the weighted pipeline: weight-proportional
/// PathSampling, the weighted NetMF inversion, and propagation over the
/// weighted operators.
pub struct WeightedSource<'a>(pub &'a lightne_graph::WeightedGraph);

impl PipelineSource for WeightedSource<'_> {
    fn num_vertices(&self) -> usize {
        self.0.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.0.num_edges()
    }

    fn is_weighted(&self) -> bool {
        true
    }

    fn graph_resident_bytes(&self) -> usize {
        use lightne_utils::mem::MemUsage;
        self.0.heap_bytes()
    }

    fn sparsify(&self, cfg: &SamplerConfig) -> SparsifierOutput {
        lightne_sparsifier::weighted::build_weighted_sparsifier(self.0, cfg)
    }

    fn sparsify_sharded(
        &self,
        cfg: &SamplerConfig,
        shards: usize,
    ) -> Option<Result<(ShardedEdgeTable, SamplerStats), SamplerError>> {
        Some(build_weighted_sharded_sparsifier(self.0, cfg, shards))
    }

    fn netmf(&self, coo: Vec<(u32, u32, f32)>, samples: u64, negative: f64) -> CsrMatrix {
        lightne_sparsifier::weighted::weighted_sparsifier_to_netmf(self.0, coo, samples, negative)
    }

    fn netmf_sharded(&self, table: ShardedEdgeTable, samples: u64, negative: f64) -> CsrMatrix {
        weighted_sharded_to_netmf(self.0, table, samples, negative)
    }

    fn propagate(&self, initial: &DenseMatrix, cfg: &PropagationConfig) -> DenseMatrix {
        let da = crate::graphmat::weighted_transition_with_self_loops(self.0);
        let ai = crate::graphmat::weighted_adjacency_plus_i(self.0);
        crate::propagation::spectral_propagation_matrices(&da, &ai, initial, cfg)
    }
}

impl LightNe {
    /// Creates a pipeline with the given configuration.
    pub fn new(cfg: LightNeConfig) -> Self {
        assert!(cfg.dim >= 1 && cfg.window >= 1 && cfg.sample_ratio > 0.0);
        Self { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &LightNeConfig {
        &self.cfg
    }

    /// Runs the full pipeline on a *weighted* graph: weight-proportional
    /// PathSampling (Theorem 3.1's general form), the weighted NetMF
    /// inversion, and propagation over the weighted operators.
    ///
    /// # Panics
    /// Panics if the graph cannot be sampled (no edges) — use
    /// [`LightNe::embed_weighted_with`] for a recoverable error.
    pub fn embed_weighted(&self, g: &lightne_graph::WeightedGraph) -> LightNeOutput {
        // xtask:panic-ok(documented panicking convenience wrapper; the fallible form is embed_weighted_with)
        self.embed_weighted_with(g, RunOptions::default())
            .unwrap_or_else(|e| panic!("pipeline failed: {e}"))
    }

    /// Weighted pipeline with engine options (checkpointing, resume,
    /// progress reporting).
    pub fn embed_weighted_with(
        &self,
        g: &lightne_graph::WeightedGraph,
        opts: RunOptions,
    ) -> Result<LightNeOutput, EngineError> {
        run_pipeline(&self.cfg, &WeightedSource(g), opts)
    }

    /// Runs the full pipeline on `g`.
    ///
    /// # Panics
    /// Panics if the graph cannot be sampled (no edges) — use
    /// [`LightNe::embed_with`] for a recoverable error.
    pub fn embed<G: GraphOps>(&self, g: &G) -> LightNeOutput {
        // xtask:panic-ok(documented panicking convenience wrapper; the fallible form is embed_with)
        self.embed_with(g, RunOptions::default()).unwrap_or_else(|e| panic!("pipeline failed: {e}"))
    }

    /// Unweighted pipeline with engine options (checkpointing, resume,
    /// progress reporting).
    pub fn embed_with<G: GraphOps>(
        &self,
        g: &G,
        opts: RunOptions,
    ) -> Result<LightNeOutput, EngineError> {
        run_pipeline(&self.cfg, &UnweightedSource(g), opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_gen::generators::erdos_renyi;
    use lightne_gen::sbm::{labelled_sbm, SbmConfig};
    use lightne_graph::CompressedGraph;

    fn tiny_cfg() -> LightNeConfig {
        LightNeConfig {
            dim: 16,
            window: 5,
            sample_ratio: 2.0,
            power_iters: 1,
            ..Default::default()
        }
    }

    #[test]
    fn end_to_end_shapes_and_stages() {
        let g = erdos_renyi(400, 4_000, 1);
        let out = LightNe::new(tiny_cfg()).embed(&g);
        assert_eq!(out.embedding.rows(), 400);
        assert_eq!(out.embedding.cols(), 16);
        assert!(out.netmf_nnz > 0);
        assert!(out.sampler.trials > 0);
        let names: Vec<_> = out.timings.stages().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, [STAGE_SPARSIFIER, STAGE_NETMF, STAGE_RSVD, STAGE_PROPAGATION]);
        // The engine's stats mirror the timer and carry the counters.
        assert_eq!(out.stats.stages.len(), 4);
        let sp = out.stats.get(STAGE_SPARSIFIER).unwrap();
        assert_eq!(sp.counter("trials"), Some(out.sampler.trials));
        assert!(sp.heap_bytes > 0);
        let nm = out.stats.get(STAGE_NETMF).unwrap();
        assert_eq!(nm.counter("nnz"), Some(out.netmf_nnz as u64));
    }

    #[test]
    fn propagation_none_skips_stage() {
        let g = erdos_renyi(200, 2_000, 2);
        let cfg = LightNeConfig { propagation: None, ..tiny_cfg() };
        let out = LightNe::new(cfg).embed(&g);
        assert!(out.timings.get(STAGE_PROPAGATION).is_none());
        // The initial embedding is *moved* into the output, not cloned.
        assert!(out.initial_embedding.is_none());
        assert_eq!(out.initial().max_abs_diff(&out.embedding), 0.0);
    }

    #[test]
    fn compressed_graph_gives_same_embedding() {
        let g = erdos_renyi(300, 3_000, 3);
        let c = CompressedGraph::from_graph(&g);
        let pipe = LightNe::new(tiny_cfg());
        let a = pipe.embed(&g);
        let b = pipe.embed(&c);
        // Same deterministic sample streams ⇒ numerically identical output.
        assert!(a.embedding.max_abs_diff(&b.embedding) < 1e-4);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = erdos_renyi(200, 2_000, 4);
        let a = LightNe::new(tiny_cfg()).embed(&g);
        let b = LightNe::new(tiny_cfg()).embed(&g);
        assert!(a.embedding.max_abs_diff(&b.embedding) < 1e-6);
    }

    #[test]
    fn embedding_separates_communities() {
        // The qualitative claim behind all accuracy tables: LightNE
        // embeddings place same-community vertices closer.
        let cfg = SbmConfig {
            n: 800,
            communities: 4,
            avg_degree: 24.0,
            mixing: 0.05,
            overlap: 0.0,
            gamma: 2.5,
        };
        let (g, labels) = labelled_sbm(&cfg, 5);
        let out = LightNe::new(tiny_cfg()).embed(&g);
        let y = &out.embedding;
        let dot = |a: &[f32], b: &[f32]| -> f64 {
            a.iter().zip(b).map(|(&p, &q)| p as f64 * q as f64).sum()
        };
        let mut same = (0.0, 0usize);
        let mut diff = (0.0, 0usize);
        for i in (0..800).step_by(5) {
            for j in (2..800).step_by(11) {
                if i == j {
                    continue;
                }
                let s = dot(y.row(i), y.row(j));
                if labels.of(i) == labels.of(j) {
                    same = (same.0 + s, same.1 + 1);
                } else {
                    diff = (diff.0 + s, diff.1 + 1);
                }
            }
        }
        let (s, d) = (same.0 / same.1 as f64, diff.0 / diff.1 as f64);
        assert!(s > d + 0.1, "no separation: same {s:.4} diff {d:.4}");
    }

    #[test]
    fn weighted_pipeline_matches_unweighted_on_unit_weights() {
        // Unit-weight graphs through the weighted path must land in the
        // same quality band as the unweighted path (sampling differs in
        // RNG consumption, so outputs are statistically — not bitwise —
        // equal; compare community separation).
        use lightne_graph::WeightedGraph;
        let cfg = SbmConfig {
            n: 500,
            communities: 4,
            avg_degree: 20.0,
            mixing: 0.05,
            overlap: 0.0,
            gamma: 2.5,
        };
        let (g, labels) = labelled_sbm(&cfg, 8);
        let gw = WeightedGraph::from_unweighted(&g);
        let pipe = LightNe::new(tiny_cfg());
        let a = pipe.embed(&g);
        let b = pipe.embed_weighted(&gw);
        let sep = |y: &lightne_linalg::DenseMatrix| {
            let mut yn = y.clone();
            yn.normalize_rows();
            let dot = |a: &[f32], b: &[f32]| -> f64 {
                a.iter().zip(b).map(|(&p, &q)| p as f64 * q as f64).sum()
            };
            let (mut s, mut sn, mut d, mut dn) = (0.0, 0, 0.0, 0);
            for i in (0..500).step_by(5) {
                for j in (2..500).step_by(11) {
                    if i == j {
                        continue;
                    }
                    let v = dot(yn.row(i), yn.row(j));
                    if labels.of(i) == labels.of(j) {
                        s += v;
                        sn += 1;
                    } else {
                        d += v;
                        dn += 1;
                    }
                }
            }
            s / sn as f64 - d / dn as f64
        };
        let (sa, sb) = (sep(&a.embedding), sep(&b.embedding));
        assert!(sa > 0.1 && sb > 0.1, "separation collapsed: {sa} vs {sb}");
        assert!((sa - sb).abs() < 0.3 * sa.max(sb), "quality bands diverge: {sa} vs {sb}");
    }

    #[test]
    fn weighted_pipeline_respects_heavy_edges() {
        // Two cliques joined by one bridge; heavy intra-clique weights →
        // embedding separates cliques despite the bridge.
        use lightne_graph::WeightedGraph;
        let mut edges = Vec::new();
        for base in [0u32, 10] {
            for i in 0..10u32 {
                for j in 0..i {
                    edges.push((base + i, base + j, 10.0));
                }
            }
        }
        edges.push((0, 10, 1.0)); // light bridge
        let g = WeightedGraph::from_edges(20, &edges);
        let out = LightNe::new(LightNeConfig {
            dim: 4,
            window: 3,
            sample_ratio: 50.0,
            ..Default::default()
        })
        .embed_weighted(&g);
        let y = &out.embedding;
        let dot = |a: &[f32], b: &[f32]| -> f64 {
            a.iter().zip(b).map(|(&p, &q)| p as f64 * q as f64).sum()
        };
        let intra = dot(y.row(1), y.row(2));
        let inter = dot(y.row(1), y.row(12));
        assert!(intra > inter + 0.2, "cliques not separated: intra {intra:.3} vs inter {inter:.3}");
    }

    #[test]
    fn more_samples_reduce_matrix_noise() {
        // With more trials, the NetMF estimate keeps more (accurate)
        // entries; nnz should grow toward the T-hop neighborhood size.
        let g = erdos_renyi(300, 1_500, 6);
        let small = LightNe::new(LightNeConfig { sample_ratio: 0.2, ..tiny_cfg() }).embed(&g);
        let large = LightNe::new(LightNeConfig { sample_ratio: 8.0, ..tiny_cfg() }).embed(&g);
        assert!(large.sampler.trials > 10 * small.sampler.trials);
        assert!(large.netmf_nnz >= small.netmf_nnz);
    }
}
