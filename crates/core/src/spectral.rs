//! Spectral-gap estimation — the safety check for degree downsampling.
//!
//! Theorem 3.2 (Lovász) bounds the effective resistance by
//! `R_uv ≤ (1/d_u + 1/d_v) / (1 − λ₂)`: the degree-based sampling
//! probabilities LightNE uses are a faithful effective-resistance proxy
//! exactly when the spectral gap `1 − λ₂` of the normalized Laplacian is
//! bounded away from zero. The paper argues this holds for its workloads
//! (BlogCatalog's gap ≈ 0.43; web graphs are "well connected"); this
//! module lets a user *measure* the gap on their own graph before
//! trusting the downsampled estimator.
//!
//! Method: power iteration on the symmetric normalized adjacency
//! `N = D^{-1/2} A D^{-1/2}` with deflation of the known top eigenvector
//! `v₁ ∝ D^{1/2}·1` (eigenvalue 1 on a connected graph). The dominant
//! remaining eigenvalue is `λ₂`; we iterate on `(N + I)/2` so the result
//! is the largest *signed* λ₂ rather than the largest magnitude
//! (bipartite-ish graphs have eigenvalues near −1 that would otherwise
//! win).

use lightne_graph::GraphOps;
use lightne_utils::rng::XorShiftStream;
use rayon::prelude::*;

/// Result of a spectral-gap estimation.
#[derive(Debug, Clone, Copy)]
pub struct SpectralGap {
    /// Estimated second eigenvalue λ₂ of `D^{-1/2} A D^{-1/2}`.
    pub lambda2: f64,
    /// The gap `1 − λ₂` (Theorem 3.2's denominator).
    pub gap: f64,
    /// Power iterations executed.
    pub iterations: usize,
}

/// Estimates λ₂ by deflated power iteration (`iters` steps; 100–300 is
/// plenty for 3-digit accuracy on well-conditioned graphs).
///
/// Isolated vertices are ignored (their rows of `N` are zero). On a
/// disconnected graph the second eigenvalue of `N` is exactly 1, and the
/// estimate will (correctly) report a gap near 0.
pub fn estimate_spectral_gap<G: GraphOps>(g: &G, iters: usize, seed: u64) -> SpectralGap {
    let n = g.num_vertices();
    assert!(n > 1, "need at least two vertices");
    let deg: Vec<f64> = (0..n).map(|v| g.degree(v as u32) as f64).collect();
    let sqrt_d: Vec<f64> = deg.iter().map(|&d| d.sqrt()).collect();

    // Top eigenvector v1 ∝ D^{1/2}·1, normalized.
    let norm1: f64 = deg.iter().sum::<f64>().sqrt();
    let v1: Vec<f64> = sqrt_d.iter().map(|&s| s / norm1).collect();

    // N·x computed matrix-free: (N x)_u = Σ_{v∈N(u)} x_v / √(d_u d_v).
    let apply_n = |x: &[f64]| -> Vec<f64> {
        (0..n as u32)
            .into_par_iter()
            .map(|u| {
                if deg[u as usize] == 0.0 {
                    return 0.0;
                }
                let mut acc = 0.0;
                g.for_each_neighbor(u, &mut |v| {
                    acc += x[v as usize] / sqrt_d[v as usize];
                });
                acc / sqrt_d[u as usize]
            })
            .collect()
    };

    let deflate = |x: &mut [f64]| {
        let proj: f64 = x.iter().zip(&v1).map(|(a, b)| a * b).sum();
        for (xi, &v) in x.iter_mut().zip(&v1) {
            *xi -= proj * v;
        }
    };
    let normalize = |x: &mut [f64]| -> f64 {
        let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            for xi in x.iter_mut() {
                *xi /= norm;
            }
        }
        norm
    };

    let mut rng = XorShiftStream::new(seed, 0);
    let mut x: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
    deflate(&mut x);
    normalize(&mut x);

    // Iterate on (N + I)/2: spectrum maps λ → (λ+1)/2 ∈ [0,1], so the
    // dominant deflated direction is the largest signed λ₂.
    let mut mu = 0.0;
    for _ in 0..iters {
        let nx = apply_n(&x);
        let mut y: Vec<f64> = nx.iter().zip(&x).map(|(a, b)| 0.5 * (a + b)).collect();
        deflate(&mut y);
        mu = normalize(&mut y);
        x = y;
        if mu == 0.0 {
            break;
        }
    }
    let lambda2 = (2.0 * mu - 1.0).clamp(-1.0, 1.0);
    SpectralGap { lambda2, gap: 1.0 - lambda2, iterations: iters }
}

/// The downsampling-safety heuristic implied by Theorem 3.2: with gap
/// `γ`, degree probabilities underestimate effective resistances by at
/// most `1/γ`, so the constant `C = log n` should be inflated to
/// `log(n)/γ` on poorly connected graphs. Returns that suggested `C`.
pub fn suggested_c_factor<G: GraphOps>(g: &G, gap: &SpectralGap) -> f64 {
    let base = (g.num_vertices().max(2) as f64).ln();
    base / gap.gap.clamp(0.05, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_gen::generators::{erdos_renyi, watts_strogatz};
    use lightne_graph::GraphBuilder;

    #[test]
    fn complete_graph_has_large_gap() {
        // K_n: λ₂ = −1/(n−1) → gap ≈ 1.
        let n = 30u32;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..u {
                edges.push((u, v));
            }
        }
        let g = GraphBuilder::from_edges(n as usize, &edges);
        let s = estimate_spectral_gap(&g, 300, 1);
        assert!((s.lambda2 - (-1.0 / 29.0)).abs() < 0.01, "λ₂ {}", s.lambda2);
        assert!(s.gap > 1.0, "gap {}", s.gap);
    }

    #[test]
    fn cycle_gap_matches_closed_form() {
        // Cycle C_n: λ₂ = cos(2π/n).
        let n = 40usize;
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, (v + 1) % n as u32)).collect();
        let g = GraphBuilder::from_edges(n, &edges);
        let s = estimate_spectral_gap(&g, 2000, 2);
        let want = (2.0 * std::f64::consts::PI / n as f64).cos();
        assert!((s.lambda2 - want).abs() < 0.01, "λ₂ {} want {want}", s.lambda2);
    }

    #[test]
    fn disconnected_graph_reports_no_gap() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let s = estimate_spectral_gap(&g, 500, 3);
        assert!(s.gap < 0.02, "disconnected graph must have gap ≈ 0, got {}", s.gap);
    }

    #[test]
    fn expander_beats_lattice() {
        // A sparse ER graph is an expander; a barely-rewired ring is not.
        let expander = erdos_renyi(400, 4000, 4);
        let lattice = watts_strogatz(400, 3, 0.01, 5);
        let ge = estimate_spectral_gap(&expander, 300, 6);
        let gl = estimate_spectral_gap(&lattice, 300, 6);
        assert!(
            ge.gap > 3.0 * gl.gap,
            "expander gap {} should dwarf lattice gap {}",
            ge.gap,
            gl.gap
        );
    }

    #[test]
    fn suggested_c_grows_when_gap_shrinks() {
        let g = erdos_renyi(200, 2000, 7);
        let tight = SpectralGap { lambda2: 0.9, gap: 0.1, iterations: 0 };
        let wide = SpectralGap { lambda2: 0.2, gap: 0.8, iterations: 0 };
        assert!(suggested_c_factor(&g, &tight) > suggested_c_factor(&g, &wide));
    }
}
