//! The LightNE embedding pipeline (Sections 3.2 and 4 of the paper).
//!
//! LightNE computes network embeddings in three timed stages:
//!
//! 1. **Parallel sparsifier construction** — Algorithm 2 over the (possibly
//!    compressed) graph, aggregated by the sparse parallel hash table and
//!    converted to the truncated-log NetMF matrix
//!    (`lightne-sparsifier`).
//! 2. **Randomized SVD** — Algorithm 3 on the sparse matrix; the initial
//!    embedding is `X = U·Σ^{1/2}` (`lightne-linalg`).
//! 3. **Spectral propagation** — ProNE's Chebyshev–Gaussian filter applied
//!    to `X`, followed by a thin re-factorization
//!    ([`propagation`]).
//!
//! [`dynamic::DynamicLightNe`] extends the pipeline to the streaming
//! setting the paper names as future work: the sparsifier hash table is
//! persistent, new edges contribute samples incrementally, and
//! re-embedding reruns only the factorization stages.
//!
//! The entry point is [`LightNe`], configured by [`LightNeConfig`]; the
//! result carries the embedding plus the per-stage timings and sampler
//! statistics that the benchmark harness turns into the paper's Tables 4–5
//! and Figures 2–3.
//!
//! ```
//! use lightne_core::{LightNe, LightNeConfig};
//! use lightne_gen::generators::erdos_renyi;
//!
//! let g = erdos_renyi(500, 5_000, 7);
//! let cfg = LightNeConfig { dim: 16, window: 5, sample_ratio: 2.0, ..Default::default() };
//! let out = LightNe::new(cfg).embed(&g);
//! assert_eq!(out.embedding.rows(), 500);
//! assert_eq!(out.embedding.cols(), 16);
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod dynamic;
pub mod engine;
pub mod graphmat;
pub mod pipeline;
pub mod propagation;
pub mod spectral;

pub use artifacts::{ArtifactState, ArtifactStore, Inspection, Manifest, ManifestEntry, RunMeta};
pub use dynamic::DynamicLightNe;
pub use engine::{
    run_fingerprint, run_pipeline, EngineError, PipelineSource, RunContext, RunOptions, RunStats,
    StageKind, StageRecord,
};
pub use pipeline::{LightNe, LightNeConfig, LightNeOutput};
pub use propagation::{spectral_propagation, PropagationConfig};
pub use spectral::{estimate_spectral_gap, SpectralGap};
