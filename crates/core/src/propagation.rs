//! Spectral propagation — ProNE's Chebyshev–Gaussian filter (Step 2 of
//! the LightNE algorithm, Section 3.2).
//!
//! The initial factorization captures local co-occurrence; propagation
//! passes it through a Gaussian band-pass of the graph spectrum,
//! `g(λ) = e^{-θ/2((λ-μ)²-1)}`, which amplifies the community-scale
//! eigendirections and damps noise. We follow ProNE's released
//! implementation exactly (its quirks are what the paper benchmarked as
//! ProNE+ and as LightNE's second stage):
//!
//! * operator: `M = L − μI` with `L = I − D̃⁻¹Ã`, `Ã = A + I`;
//! * the Chebyshev recurrence runs in `M²` (each step applies `M` twice),
//!   which realizes the *squared* distance `(λ−μ)²` of the Gaussian:
//!   `P_1 = (M²/2 − I)X`, `P_{r+1} = (M² − 2I)P_r − P_{r-1}`;
//! * coefficients: modified Bessel values, `conv = I_0(θ)X − 2I_1(θ)P_1
//!   + 2I_2(θ)P_2 − ...` up to `order` (the paper sets ~10);
//! * output: `(A + I)·(X − conv)` — the *unnormalized* self-looped
//!   adjacency, exactly as in ProNE — re-factorized by a thin SVD to
//!   `U·Σ^{1/2}` with L2-normalized rows (ProNE's
//!   `get_embedding_dense`).
//!
//! Each Chebyshev step is two SPMMs, so the stage is cheap — the paper's
//! Table 5 reports ~8 min on OAG for both ProNE+ and LightNE, and our
//! `exp_table5_breakdown` reproduces the equality (identical code path).

use crate::graphmat::{adjacency, transition_with_self_loops};
use lightne_graph::GraphOps;
use lightne_linalg::special::bessel_i;
use lightne_linalg::svd::tall_thin_svd;
use lightne_linalg::{CsrMatrix, DenseMatrix};

/// Parameters of the Chebyshev–Gaussian filter (ProNE defaults).
#[derive(Debug, Clone, Copy)]
pub struct PropagationConfig {
    /// Chebyshev expansion order `k` (the paper sets ~10).
    pub order: usize,
    /// Center `μ` of the Gaussian kernel.
    pub mu: f64,
    /// Bandwidth `θ` of the Gaussian kernel.
    pub theta: f64,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        Self { order: 10, mu: 0.2, theta: 0.5 }
    }
}

/// Nominal floating-point operation count of the propagation stage on a
/// graph whose transition matrix has `da_nnz` stored entries
/// (`a_plus_i` has the same sparsity): `2·order − 2` SPMM applications of
/// `M` (2 per Chebyshev step) at `2·nnz·d` each plus the shift/axpy
/// traffic, the final `(A+I)` SPMM, and the Gram + lift of the thin SVD
/// refactorization (`~6·n·d²`).
pub fn propagation_flops(n: usize, da_nnz: u64, d: usize, cfg: &PropagationConfig) -> u64 {
    let (n, d) = (n as u64, d as u64);
    let applies = 2 * cfg.order.max(1) as u64 - 2;
    let spmms = (applies + 1) * 2 * da_nnz * d;
    let axpys = (applies * 2 + cfg.order as u64 + 3) * 2 * n * d;
    let refactor = 6 * n * d * d;
    spmms + axpys + refactor
}

/// Applies the filter to an embedding, returning the enhanced embedding
/// (same shape, rows L2-normalized).
pub fn spectral_propagation<G: GraphOps>(
    g: &G,
    x: &DenseMatrix,
    cfg: &PropagationConfig,
) -> DenseMatrix {
    let da = transition_with_self_loops(g);
    let a_plus_i = adjacency(g).add(&CsrMatrix::identity(g.num_vertices()), 1.0, 1.0);
    spectral_propagation_matrices(&da, &a_plus_i, x, cfg)
}

/// The filter on explicit operator matrices: `da` is the (row-stochastic)
/// self-looped transition `D̃⁻¹Ã` and `a_plus_i` the self-looped
/// adjacency `A + I` (weighted or unweighted). This is the shared core
/// of the unweighted and [weighted](crate::pipeline::LightNe::embed_weighted)
/// pipelines.
pub fn spectral_propagation_matrices(
    da: &CsrMatrix,
    a_plus_i: &CsrMatrix,
    x: &DenseMatrix,
    cfg: &PropagationConfig,
) -> DenseMatrix {
    assert_eq!(x.rows(), da.n_rows(), "embedding/graph size mismatch");
    assert!(cfg.order >= 2, "propagation order must be at least 2");
    // M·v = (L − μI)v = (1−μ)v − D̃⁻¹Ã v, applied matrix-free.
    let shift = (1.0 - cfg.mu) as f32;
    let apply_m = |v: &DenseMatrix| -> DenseMatrix {
        let mut out = da.spmm(v);
        out.scale(-1.0);
        out.axpy(shift, v);
        out
    };

    // P_1 = (M²/2 − I) X
    let mut p1 = apply_m(x);
    p1 = {
        let mut t = apply_m(&p1);
        t.scale(0.5);
        t.axpy(-1.0, x);
        t
    };

    // conv = I_0(θ)·X − 2I_1(θ)·P_1 ± ...
    let mut conv = x.clone();
    conv.scale(bessel_i(0, cfg.theta) as f32);
    conv.axpy(-2.0 * bessel_i(1, cfg.theta) as f32, &p1);

    let mut prev = x.clone();
    let mut cur = p1;
    for i in 2..cfg.order {
        // P_{r+1} = (M² − 2I) P_r − P_{r-1}
        let mut next = apply_m(&cur);
        next = {
            let mut t = apply_m(&next);
            t.axpy(-2.0, &cur);
            t.axpy(-1.0, &prev);
            t
        };
        let sign = if i % 2 == 0 { 2.0 } else { -2.0 };
        conv.axpy(sign * bessel_i(i as u32, cfg.theta) as f32, &next);
        prev = cur;
        cur = next;
    }

    // mm = (A + I)·(X − conv), with the raw (unnormalized) adjacency as
    // in ProNE's release.
    let mut diff = x.clone();
    diff.axpy(-1.0, &conv);
    let mm = a_plus_i.spmm(&diff);

    // Re-factorize: U·√Σ, rows normalized (ProNE's get_embedding_dense).
    let svd = tall_thin_svd(&mm);
    let mut emb = svd.u;
    let scale: Vec<f32> = svd.sigma.iter().map(|&s| s.max(0.0).sqrt()).collect();
    emb.scale_columns(&scale);
    emb.normalize_rows();
    emb
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_gen::generators::erdos_renyi;
    use lightne_gen::sbm::{labelled_sbm, SbmConfig};

    #[test]
    fn output_shape_and_normalization() {
        let g = erdos_renyi(300, 3000, 1);
        let x = DenseMatrix::gaussian(300, 8, 2);
        let y = spectral_propagation(&g, &x, &PropagationConfig::default());
        assert_eq!(y.rows(), 300);
        assert_eq!(y.cols(), 8);
        for i in 0..300 {
            let norm: f64 = y.row(i).iter().map(|&v| (v as f64).powi(2)).sum();
            assert!((norm - 1.0).abs() < 1e-4 || norm < 1e-8, "row {i}: {norm}");
        }
    }

    #[test]
    fn order_two_is_valid() {
        let g = erdos_renyi(100, 500, 3);
        let x = DenseMatrix::gaussian(100, 4, 4);
        let y = spectral_propagation(&g, &x, &PropagationConfig { order: 2, ..Default::default() });
        assert_eq!(y.rows(), 100);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn propagation_is_deterministic() {
        let g = erdos_renyi(100, 500, 5);
        let x = DenseMatrix::gaussian(100, 4, 6);
        let cfg = PropagationConfig::default();
        let y1 = spectral_propagation(&g, &x, &cfg);
        let y2 = spectral_propagation(&g, &x, &cfg);
        assert!(y1.max_abs_diff(&y2) < 1e-6);
    }

    /// Community-separation score of an embedding on labelled data.
    fn separation(y: &DenseMatrix, labels: &lightne_gen::Labels, n: usize) -> f64 {
        let mut yn = y.clone();
        yn.normalize_rows();
        let cos = |a: &[f32], b: &[f32]| -> f64 {
            a.iter().zip(b).map(|(&p, &q)| p as f64 * q as f64).sum()
        };
        let (mut same, mut same_n, mut diff, mut diff_n) = (0.0, 0usize, 0.0, 0usize);
        for i in (0..n).step_by(3) {
            for j in (1..n).step_by(7) {
                if i == j {
                    continue;
                }
                let s = cos(yn.row(i), yn.row(j));
                if labels.of(i) == labels.of(j) {
                    same += s;
                    same_n += 1;
                } else {
                    diff += s;
                    diff_n += 1;
                }
            }
        }
        same / same_n as f64 - diff / diff_n as f64
    }

    #[test]
    fn propagation_improves_noisy_community_signal() {
        // The filter amplifies community-scale eigendirections: starting
        // from indicator + heavy noise, separation must increase.
        let n = 600;
        let k = 4;
        let cfg = SbmConfig {
            n,
            communities: k,
            avg_degree: 20.0,
            mixing: 0.05,
            overlap: 0.0,
            gamma: 2.5,
        };
        let (g, labels) = labelled_sbm(&cfg, 7);
        let mut x = DenseMatrix::gaussian(n, 8, 8);
        for i in 0..n {
            let c = labels.of(i)[0] as usize;
            let v = x.get(i, c) + 1.0;
            x.set(i, c, v);
        }
        let before = separation(&x, &labels, n);
        let y = spectral_propagation(&g, &x, &PropagationConfig::default());
        let after = separation(&y, &labels, n);
        assert!(
            after > before * 1.5,
            "propagation did not amplify community signal: before {before:.4}, after {after:.4}"
        );
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn rejects_wrong_shape() {
        let g = erdos_renyi(10, 30, 9);
        let x = DenseMatrix::zeros(11, 4);
        spectral_propagation(&g, &x, &PropagationConfig::default());
    }
}
