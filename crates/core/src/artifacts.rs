//! Checkpointed stage artifacts: crash-safe save/resume for staged runs.
//!
//! Each stage of the engine can persist its output into a directory —
//! the sparsifier COO, the NetMF CSR matrix, and the initial (pre-
//! propagation) embedding — alongside a `meta.txt` describing the run
//! that produced them. A later run pointed at the same directory resumes
//! from the *deepest* artifact present, replaying the recorded counters
//! so its statistics stay complete.
//!
//! # The v2 format
//!
//! Version 2 hardens the store against crashes and silent storage
//! corruption:
//!
//! * **Atomic writes.** Every file is written to a `<name>.tmp` sibling,
//!   `fsync`ed, and renamed into place. A crash mid-write leaves at worst
//!   a stray `.tmp`; the committed name is either the old content or the
//!   new, never a torn mix.
//! * **Manifest as commit record.** `manifest.txt` lists each payload
//!   file with its byte size and FNV-1a checksum, plus the run's
//!   [fingerprint](RunMeta::fingerprint). The manifest is written *after*
//!   its payload, so a payload on disk but absent from (or mismatching)
//!   the manifest is untrusted and the resume degrades to an earlier
//!   stage instead of loading it.
//! * **Self-sealed text files.** `meta.txt` and `manifest.txt` end with a
//!   `checksum <hex>` line over all preceding bytes; a bit flip anywhere
//!   in them is detected before a single field is trusted.
//! * **Typed failures.** Every corruption class maps to a distinct
//!   [`EngineError`] variant ([`EngineError::Corrupt`],
//!   [`EngineError::MetaVersion`], [`EngineError::FingerprintMismatch`],
//!   [`EngineError::ArtifactDir`]), never an untyped parse error or a
//!   silently wrong embedding.
//!
//! All files are plain text. Floats use Rust's shortest-round-trip
//! formatting, so a save/load cycle is bitwise lossless and a resumed
//! run reproduces the straight run's embedding exactly (same seed).
//!
//! Every write and read is instrumented with a [`lightne_utils::faults`]
//! fail point (see [`FAIL_POINTS`]); the crash-consistency suite arms
//! them to prove each failure ends in a typed error or a byte-identical
//! recovery.

use crate::engine::EngineError;
use lightne_linalg::matio;
use lightne_linalg::{CsrMatrix, DenseMatrix};
use lightne_utils::checksum::fnv1a64;
use lightne_utils::faults;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Current artifact metadata format version.
pub const META_VERSION: u32 = 2;

/// File name of the run metadata.
pub const META_FILE: &str = "meta.txt";
/// File name of the integrity manifest.
pub const MANIFEST_FILE: &str = "manifest.txt";
/// File name of the sparsifier COO checkpoint.
pub const SPARSIFIER_FILE: &str = "sparsifier.coo";
/// File name of the NetMF matrix checkpoint.
pub const NETMF_FILE: &str = "netmf.csr";
/// File name of the initial-embedding checkpoint.
pub const INITIAL_FILE: &str = "initial.emb";

/// Every file a store may own (used by [`ArtifactStore::create`] to tell
/// a stale store apart from a foreign directory).
const STORE_FILES: &[&str] = &[META_FILE, MANIFEST_FILE, SPARSIFIER_FILE, NETMF_FILE, INITIAL_FILE];

/// Fail point in metadata writes.
pub const FP_WRITE_META: &str = "artifacts.write.meta";
/// Fail point in manifest writes.
pub const FP_WRITE_MANIFEST: &str = "artifacts.write.manifest";
/// Fail point in sparsifier-checkpoint writes.
pub const FP_WRITE_SPARSIFIER: &str = "artifacts.write.sparsifier";
/// Fail point in NetMF-checkpoint writes.
pub const FP_WRITE_NETMF: &str = "artifacts.write.netmf";
/// Fail point in initial-embedding-checkpoint writes.
pub const FP_WRITE_INITIAL: &str = "artifacts.write.initial";
/// Fail point in metadata reads.
pub const FP_READ_META: &str = "artifacts.read.meta";
/// Fail point in manifest reads.
pub const FP_READ_MANIFEST: &str = "artifacts.read.manifest";
/// Fail point in sparsifier-checkpoint reads.
pub const FP_READ_SPARSIFIER: &str = "artifacts.read.sparsifier";
/// Fail point in NetMF-checkpoint reads.
pub const FP_READ_NETMF: &str = "artifacts.read.netmf";
/// Fail point in initial-embedding-checkpoint reads.
pub const FP_READ_INITIAL: &str = "artifacts.read.initial";
/// All fail points registered by this module.
pub const FAIL_POINTS: &[&str] = &[
    FP_WRITE_META,
    FP_WRITE_MANIFEST,
    FP_WRITE_SPARSIFIER,
    FP_WRITE_NETMF,
    FP_WRITE_INITIAL,
    FP_READ_META,
    FP_READ_MANIFEST,
    FP_READ_SPARSIFIER,
    FP_READ_NETMF,
    FP_READ_INITIAL,
];

fn corrupt(file: &str, detail: impl Into<String>) -> EngineError {
    EngineError::Corrupt { file: file.to_string(), detail: detail.into() }
}

/// Appends the `checksum <hex>` seal line over `text`.
fn seal(text: &str) -> String {
    format!("{text}checksum {:016x}\n", fnv1a64(text.as_bytes()))
}

/// Validates a sealed file's trailing checksum line and returns the body
/// it covers.
fn unseal<'a>(text: &'a str, file: &str) -> Result<&'a str, EngineError> {
    let stripped =
        text.strip_suffix('\n').ok_or_else(|| corrupt(file, "missing trailing newline"))?;
    let (body, last) = match stripped.rfind('\n') {
        Some(pos) => (&text[..pos + 1], &stripped[pos + 1..]),
        None => ("", stripped),
    };
    let recorded = last
        .strip_prefix("checksum ")
        .ok_or_else(|| corrupt(file, "missing checksum seal line"))?;
    let recorded = u64::from_str_radix(recorded.trim(), 16)
        .map_err(|_| corrupt(file, format!("malformed checksum seal {recorded:?}")))?;
    let computed = fnv1a64(body.as_bytes());
    if computed != recorded {
        return Err(corrupt(
            file,
            format!("seal mismatch: recorded {recorded:016x}, computed {computed:016x}"),
        ));
    }
    Ok(body)
}

/// Metadata describing the run that produced a set of artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// Format version ([`META_VERSION`]).
    pub version: u32,
    /// Master RNG seed of the run.
    pub seed: u64,
    /// Fingerprint of the graph and embedding parameters (see
    /// [`crate::engine::run_fingerprint`]); resuming under a different
    /// fingerprint is rejected outright.
    pub fingerprint: u64,
    /// Whether the weighted pipeline produced the artifacts.
    pub weighted: bool,
    /// Number of vertices of the source graph.
    pub n: usize,
    /// Sample budget `M` the sparsifier was built with (downstream
    /// stages normalize by it, so resume must reuse it).
    pub samples: u64,
    /// Sampling trials actually drawn.
    pub trials: u64,
    /// Trials kept after downsampling.
    pub kept: u64,
    /// Distinct aggregator entries.
    pub distinct_entries: usize,
    /// Aggregator heap bytes.
    pub aggregator_bytes: usize,
    /// NetMF non-zeros, once the conversion stage has run.
    pub netmf_nnz: Option<usize>,
}

impl RunMeta {
    fn to_text(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str(&format!("version {}\n", self.version));
        s.push_str(&format!("seed {}\n", self.seed));
        s.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        s.push_str(&format!("weighted {}\n", self.weighted));
        s.push_str(&format!("n {}\n", self.n));
        s.push_str(&format!("samples {}\n", self.samples));
        s.push_str(&format!("trials {}\n", self.trials));
        s.push_str(&format!("kept {}\n", self.kept));
        s.push_str(&format!("distinct_entries {}\n", self.distinct_entries));
        s.push_str(&format!("aggregator_bytes {}\n", self.aggregator_bytes));
        if let Some(nnz) = self.netmf_nnz {
            s.push_str(&format!("netmf_nnz {nnz}\n"));
        }
        s
    }

    fn from_text(text: &str) -> Result<Self, EngineError> {
        let mut meta = RunMeta {
            version: 0,
            seed: 0,
            fingerprint: 0,
            weighted: false,
            n: 0,
            samples: 0,
            trials: 0,
            kept: 0,
            distinct_entries: 0,
            aggregator_bytes: 0,
            netmf_nnz: None,
        };
        let mut seen_version = false;
        for line in text.lines() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let (key, value) = t
                .split_once(char::is_whitespace)
                .ok_or_else(|| EngineError::Resume(format!("malformed meta line: {t:?}")))?;
            let value = value.trim();
            let parse_u64 = || {
                value
                    .parse::<u64>()
                    .map_err(|e| EngineError::Resume(format!("meta key {key}: {e}")))
            };
            let parse_usize = || {
                value
                    .parse::<usize>()
                    .map_err(|e| EngineError::Resume(format!("meta key {key}: {e}")))
            };
            match key {
                "version" => {
                    meta.version = value
                        .parse()
                        .map_err(|e| EngineError::Resume(format!("meta version: {e}")))?;
                    seen_version = true;
                }
                "seed" => meta.seed = parse_u64()?,
                "fingerprint" => {
                    meta.fingerprint = u64::from_str_radix(value, 16)
                        .map_err(|e| EngineError::Resume(format!("meta fingerprint: {e}")))?;
                }
                "weighted" => {
                    meta.weighted = value
                        .parse()
                        .map_err(|e| EngineError::Resume(format!("meta weighted: {e}")))?;
                }
                "n" => meta.n = parse_usize()?,
                "samples" => meta.samples = parse_u64()?,
                "trials" => meta.trials = parse_u64()?,
                "kept" => meta.kept = parse_u64()?,
                "distinct_entries" => meta.distinct_entries = parse_usize()?,
                "aggregator_bytes" => meta.aggregator_bytes = parse_usize()?,
                "netmf_nnz" => meta.netmf_nnz = Some(parse_usize()?),
                _ => {} // forward compatibility: unknown keys are ignored
            }
        }
        if !seen_version {
            return Err(EngineError::Resume("meta file missing version".into()));
        }
        if meta.version != META_VERSION {
            return Err(EngineError::MetaVersion { found: meta.version, supported: META_VERSION });
        }
        Ok(meta)
    }
}

/// One payload file tracked by the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// File name within the artifact directory.
    pub name: String,
    /// Byte size of the file as written.
    pub size: u64,
    /// FNV-1a digest of the file's bytes as written.
    pub checksum: u64,
}

/// The store's integrity commit record: every trusted payload file with
/// its size and checksum, plus the run fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Fingerprint of the run that owns these artifacts.
    pub fingerprint: u64,
    /// Tracked payload files, in first-write order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Looks up a payload file's entry.
    pub fn entry(&self, name: &str) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    fn upsert(&mut self, entry: ManifestEntry) {
        if let Some(slot) = self.entries.iter_mut().find(|e| e.name == entry.name) {
            *slot = entry;
        } else {
            self.entries.push(entry);
        }
    }

    fn to_text(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str(&format!("manifest-version {META_VERSION}\n"));
        s.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        for e in &self.entries {
            s.push_str(&format!("file {} {} {:016x}\n", e.name, e.size, e.checksum));
        }
        s
    }

    fn from_text(text: &str) -> Result<Self, EngineError> {
        let mut fingerprint = None;
        let mut version = None;
        let mut entries = Vec::new();
        for line in text.lines() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let (key, value) = t
                .split_once(char::is_whitespace)
                .ok_or_else(|| corrupt(MANIFEST_FILE, format!("malformed line: {t:?}")))?;
            let value = value.trim();
            match key {
                "manifest-version" => {
                    let v: u32 = value.parse().map_err(|e| {
                        corrupt(MANIFEST_FILE, format!("bad manifest-version: {e}"))
                    })?;
                    version = Some(v);
                }
                "fingerprint" => {
                    fingerprint =
                        Some(u64::from_str_radix(value, 16).map_err(|e| {
                            corrupt(MANIFEST_FILE, format!("bad fingerprint: {e}"))
                        })?);
                }
                "file" => {
                    let mut it = value.split_whitespace();
                    let (name, size, sum) = match (it.next(), it.next(), it.next()) {
                        (Some(n), Some(s), Some(c)) => (n, s, c),
                        _ => {
                            return Err(corrupt(
                                MANIFEST_FILE,
                                format!("malformed file line: {t:?}"),
                            ))
                        }
                    };
                    entries.push(ManifestEntry {
                        name: name.to_string(),
                        size: size.parse().map_err(|e| {
                            corrupt(MANIFEST_FILE, format!("bad size for {name}: {e}"))
                        })?,
                        checksum: u64::from_str_radix(sum, 16).map_err(|e| {
                            corrupt(MANIFEST_FILE, format!("bad checksum for {name}: {e}"))
                        })?,
                    });
                }
                _ => {} // forward compatibility
            }
        }
        match version {
            Some(v) if v == META_VERSION => {}
            Some(v) => return Err(EngineError::MetaVersion { found: v, supported: META_VERSION }),
            None => return Err(corrupt(MANIFEST_FILE, "missing manifest-version")),
        }
        let fingerprint =
            fingerprint.ok_or_else(|| corrupt(MANIFEST_FILE, "missing fingerprint"))?;
        Ok(Self { fingerprint, entries })
    }
}

/// Validation verdict for one payload file (see [`ArtifactStore::inspect`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactState {
    /// Present, listed in the manifest, and bytes match size + checksum.
    Valid,
    /// Not present and not expected.
    Absent,
    /// Untrusted: missing-but-listed, unlisted-but-present, checksum or
    /// size mismatch, or an unusable manifest. The string says why.
    Invalid(String),
}

impl ArtifactState {
    /// Whether the artifact can be loaded and trusted.
    pub fn is_valid(&self) -> bool {
        matches!(self, ArtifactState::Valid)
    }
}

/// Validation verdicts for every payload in a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inspection {
    /// State of the sparsifier COO checkpoint.
    pub sparsifier: ArtifactState,
    /// State of the NetMF matrix checkpoint.
    pub netmf: ArtifactState,
    /// State of the initial-embedding checkpoint.
    pub initial: ArtifactState,
}

/// A directory holding checkpointed stage artifacts.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
    /// Fingerprint recorded in manifests this store writes. Zero for
    /// read-only stores opened with [`ArtifactStore::open`].
    fingerprint: u64,
}

impl ArtifactStore {
    /// Creates a fresh artifact directory for writing.
    ///
    /// If the directory already exists and holds only artifact files (a
    /// stale store), those files are removed first — artifacts from a
    /// previous run must never leak into this run's manifest. If it holds
    /// anything else, creation fails with [`EngineError::ArtifactDir`]
    /// rather than deleting foreign files.
    pub fn create(dir: impl AsRef<Path>, fingerprint: u64) -> Result<Self, EngineError> {
        let dir = dir.as_ref();
        if dir.exists() {
            let mut stale = Vec::new();
            for entry in fs::read_dir(dir)? {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                if STORE_FILES.contains(&name.as_str()) || name.ends_with(".tmp") {
                    stale.push(entry.path());
                } else {
                    return Err(EngineError::ArtifactDir(format!(
                        "refusing to reset {}: it contains non-artifact entry {name:?}",
                        dir.display()
                    )));
                }
            }
            for path in stale {
                fs::remove_file(path)?;
            }
        } else {
            fs::create_dir_all(dir)?;
        }
        Ok(Self { dir: dir.to_path_buf(), fingerprint })
    }

    /// Attaches to an existing store for continued writing (no reset).
    ///
    /// Used when the same directory is both resumed from and saved to:
    /// already-validated artifacts stay in place and later stages append
    /// to the same manifest.
    pub fn attach(dir: impl AsRef<Path>, fingerprint: u64) -> Self {
        Self { dir: dir.as_ref().to_path_buf(), fingerprint }
    }

    /// Opens an existing artifact directory for reading.
    pub fn open(dir: impl AsRef<Path>) -> Self {
        Self { dir: dir.as_ref().to_path_buf(), fingerprint: 0 }
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, file: &str) -> PathBuf {
        self.dir.join(file)
    }

    /// Whether a sparsifier checkpoint file is present (existence only;
    /// see [`ArtifactStore::inspect`] for integrity).
    pub fn has_sparsifier(&self) -> bool {
        self.path(SPARSIFIER_FILE).is_file()
    }

    /// Whether a NetMF checkpoint file is present.
    pub fn has_netmf(&self) -> bool {
        self.path(NETMF_FILE).is_file()
    }

    /// Whether an initial-embedding checkpoint file is present.
    pub fn has_initial(&self) -> bool {
        self.path(INITIAL_FILE).is_file()
    }

    /// Writes `bytes` crash-safely: to a `.tmp` sibling, synced, then
    /// renamed over the final name (atomic on POSIX filesystems).
    fn write_atomic(&self, file: &str, bytes: &[u8]) -> Result<(), EngineError> {
        let tmp = self.dir.join(format!("{file}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path(file))?;
        Ok(())
    }

    /// Writes the run metadata (overwrites any previous version).
    pub fn save_meta(&self, meta: &RunMeta) -> Result<(), EngineError> {
        let mut bytes = seal(&meta.to_text()).into_bytes();
        faults::mangle(FP_WRITE_META, &mut bytes)?;
        self.write_atomic(META_FILE, &bytes)
    }

    /// Reads and validates the run metadata.
    pub fn load_meta(&self) -> Result<RunMeta, EngineError> {
        faults::check(FP_READ_META)?;
        let text = fs::read_to_string(self.path(META_FILE))?;
        RunMeta::from_text(unseal(&text, META_FILE)?)
    }

    /// Reads and validates the manifest; `None` when no manifest has been
    /// committed yet.
    pub fn load_manifest(&self) -> Result<Option<Manifest>, EngineError> {
        faults::check(FP_READ_MANIFEST)?;
        let path = self.path(MANIFEST_FILE);
        if !path.is_file() {
            return Ok(None);
        }
        let text = fs::read_to_string(path)?;
        Ok(Some(Manifest::from_text(unseal(&text, MANIFEST_FILE)?)?))
    }

    fn save_manifest(&self, manifest: &Manifest) -> Result<(), EngineError> {
        let mut bytes = seal(&manifest.to_text()).into_bytes();
        faults::mangle(FP_WRITE_MANIFEST, &mut bytes)?;
        self.write_atomic(MANIFEST_FILE, &bytes)
    }

    /// Commits a payload: checksums the clean bytes, writes the file
    /// atomically, then records it in the manifest. The manifest write
    /// comes second, so a crash between the two leaves the payload
    /// *untrusted* (resume degrades past it) rather than half-trusted.
    fn save_payload(&self, file: &str, fp: &str, mut bytes: Vec<u8>) -> Result<(), EngineError> {
        let size = bytes.len() as u64;
        let checksum = fnv1a64(&bytes);
        // Mangling (torn write / bit flip) happens after the checksum is
        // taken — exactly the silent-corruption model the manifest exists
        // to catch on the next load.
        faults::mangle(fp, &mut bytes)?;
        self.write_atomic(file, &bytes)?;
        let mut manifest = self
            .load_manifest()?
            .unwrap_or(Manifest { fingerprint: self.fingerprint, entries: Vec::new() });
        manifest.upsert(ManifestEntry { name: file.to_string(), size, checksum });
        self.save_manifest(&manifest)
    }

    /// Loads a payload's bytes after validating them against the manifest.
    fn load_payload(&self, file: &str, fp: &str) -> Result<Vec<u8>, EngineError> {
        faults::check(fp)?;
        let manifest =
            self.load_manifest()?.ok_or_else(|| corrupt(file, "no manifest commits this file"))?;
        let entry =
            manifest.entry(file).ok_or_else(|| corrupt(file, "not listed in the manifest"))?;
        let bytes = fs::read(self.path(file))?;
        Self::verify_bytes(file, entry, &bytes)?;
        Ok(bytes)
    }

    fn verify_bytes(file: &str, entry: &ManifestEntry, bytes: &[u8]) -> Result<(), EngineError> {
        if bytes.len() as u64 != entry.size {
            return Err(corrupt(
                file,
                format!(
                    "size mismatch: manifest says {} bytes, file has {}",
                    entry.size,
                    bytes.len()
                ),
            ));
        }
        let computed = fnv1a64(bytes);
        if computed != entry.checksum {
            return Err(corrupt(
                file,
                format!(
                    "checksum mismatch: manifest says {:016x}, file hashes to {computed:016x}",
                    entry.checksum
                ),
            ));
        }
        Ok(())
    }

    /// Validates every payload against the manifest without parsing any
    /// of them. Never fails: unusable manifests or unreadable files
    /// surface as [`ArtifactState::Invalid`] so the caller can degrade.
    pub fn inspect(&self) -> Inspection {
        let manifest = self.load_manifest();
        let state = |file: &str| -> ArtifactState {
            let present = self.path(file).is_file();
            let manifest = match &manifest {
                Err(_) | Ok(None) if !present => return ArtifactState::Absent,
                Err(e) => return ArtifactState::Invalid(format!("manifest unusable: {e}")),
                Ok(None) => return ArtifactState::Invalid("present but no manifest".into()),
                Ok(Some(m)) => m,
            };
            match (present, manifest.entry(file)) {
                (false, None) => ArtifactState::Absent,
                (false, Some(_)) => {
                    ArtifactState::Invalid("listed in the manifest but missing".into())
                }
                (true, None) => {
                    ArtifactState::Invalid("present but not listed in the manifest".into())
                }
                (true, Some(entry)) => match fs::read(self.path(file)) {
                    Err(e) => ArtifactState::Invalid(format!("unreadable: {e}")),
                    Ok(bytes) => match Self::verify_bytes(file, entry, &bytes) {
                        Ok(()) => ArtifactState::Valid,
                        // The file name is already carried by the state's
                        // owner; keep only the failure detail.
                        Err(EngineError::Corrupt { detail, .. }) => ArtifactState::Invalid(detail),
                        Err(e) => ArtifactState::Invalid(e.to_string()),
                    },
                },
            }
        };
        Inspection {
            sparsifier: state(SPARSIFIER_FILE),
            netmf: state(NETMF_FILE),
            initial: state(INITIAL_FILE),
        }
    }

    /// Checkpoints the sparsifier COO (an `n × n` entry list).
    pub fn save_sparsifier(&self, n: usize, coo: &[(u32, u32, f32)]) -> Result<(), EngineError> {
        self.save_payload(SPARSIFIER_FILE, FP_WRITE_SPARSIFIER, matio::coo_to_bytes(n, n, coo)?)
    }

    /// Loads and validates the sparsifier COO checkpoint.
    pub fn load_sparsifier(&self) -> Result<matio::CooData, EngineError> {
        let bytes = self.load_payload(SPARSIFIER_FILE, FP_READ_SPARSIFIER)?;
        Ok(matio::coo_from_bytes(&bytes)?)
    }

    /// Checkpoints the NetMF matrix.
    pub fn save_netmf(&self, m: &CsrMatrix) -> Result<(), EngineError> {
        self.save_payload(NETMF_FILE, FP_WRITE_NETMF, matio::csr_to_bytes(m)?)
    }

    /// Loads and validates the NetMF matrix checkpoint.
    pub fn load_netmf(&self) -> Result<CsrMatrix, EngineError> {
        let bytes = self.load_payload(NETMF_FILE, FP_READ_NETMF)?;
        Ok(matio::csr_from_bytes(&bytes)?)
    }

    /// Checkpoints the initial (pre-propagation) embedding.
    pub fn save_initial(&self, x: &DenseMatrix) -> Result<(), EngineError> {
        self.save_payload(INITIAL_FILE, FP_WRITE_INITIAL, matio::matrix_to_bytes(x)?)
    }

    /// Loads and validates the initial-embedding checkpoint.
    pub fn load_initial(&self) -> Result<DenseMatrix, EngineError> {
        let bytes = self.load_payload(INITIAL_FILE, FP_READ_INITIAL)?;
        Ok(matio::matrix_from_bytes(&bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lightne_artifacts_{}_{name}", std::process::id()));
        p
    }

    const FP: u64 = 0xfeed_beef;

    fn sample_meta() -> RunMeta {
        RunMeta {
            version: META_VERSION,
            seed: 0x11_97,
            fingerprint: FP,
            weighted: false,
            n: 400,
            samples: 12_000,
            trials: 12_003,
            kept: 9_500,
            distinct_entries: 4_200,
            aggregator_bytes: 131_072,
            netmf_nnz: Some(3_800),
        }
    }

    #[test]
    fn meta_roundtrip() {
        let meta = sample_meta();
        let parsed = RunMeta::from_text(&meta.to_text()).unwrap();
        assert_eq!(meta, parsed);
    }

    #[test]
    fn meta_without_nnz_roundtrip() {
        let meta = RunMeta { netmf_nnz: None, weighted: true, ..sample_meta() };
        let parsed = RunMeta::from_text(&meta.to_text()).unwrap();
        assert_eq!(meta, parsed);
    }

    #[test]
    fn meta_rejects_missing_and_mismatched_versions() {
        assert!(RunMeta::from_text("seed 3\n").is_err());
        for bad in [META_VERSION + 1, META_VERSION - 1] {
            let text = format!("version {bad}\nseed 1\n");
            match RunMeta::from_text(&text) {
                Err(EngineError::MetaVersion { found, supported }) => {
                    assert_eq!((found, supported), (bad, META_VERSION));
                }
                other => panic!("expected MetaVersion error, got {other:?}"),
            }
        }
    }

    #[test]
    fn seal_roundtrip_and_tamper_detection() {
        let sealed = seal("key value\nother 7\n");
        assert_eq!(unseal(&sealed, "t").unwrap(), "key value\nother 7\n");
        // Flip any single byte of the sealed file: always detected.
        let bytes = sealed.as_bytes();
        for i in 0..bytes.len() {
            let mut t = bytes.to_vec();
            t[i] ^= 0x01;
            let Ok(text) = String::from_utf8(t) else { continue };
            assert!(unseal(&text, "t").is_err(), "undetected tamper at byte {i}");
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let m = Manifest {
            fingerprint: FP,
            entries: vec![
                ManifestEntry { name: SPARSIFIER_FILE.into(), size: 120, checksum: 7 },
                ManifestEntry { name: NETMF_FILE.into(), size: 88, checksum: 0xdead },
            ],
        };
        assert_eq!(Manifest::from_text(&m.to_text()).unwrap(), m);
    }

    #[test]
    fn store_roundtrips_all_artifacts() {
        let dir = tmp_dir("full");
        std::fs::remove_dir_all(&dir).ok();
        let store = ArtifactStore::create(&dir, FP).unwrap();
        assert!(!store.has_sparsifier() && !store.has_netmf() && !store.has_initial());
        store.save_meta(&sample_meta()).unwrap();

        let coo = vec![(0u32, 1u32, 2.5f32), (3, 2, 0.125)];
        store.save_sparsifier(4, &coo).unwrap();
        let m = CsrMatrix::from_coo(4, 4, coo.clone());
        store.save_netmf(&m).unwrap();
        let x = DenseMatrix::gaussian(4, 3, 5);
        store.save_initial(&x).unwrap();

        let back = ArtifactStore::open(&dir);
        assert!(back.has_sparsifier() && back.has_netmf() && back.has_initial());
        let inspection = back.inspect();
        assert!(inspection.sparsifier.is_valid(), "{:?}", inspection.sparsifier);
        assert!(inspection.netmf.is_valid() && inspection.initial.is_valid());
        let (r, c, entries) = back.load_sparsifier().unwrap();
        assert_eq!((r, c), (4, 4));
        assert_eq!(entries, coo);
        let m2 = back.load_netmf().unwrap();
        assert_eq!(m2.nnz(), m.nnz());
        let x2 = back.load_initial().unwrap();
        assert_eq!(x.max_abs_diff(&x2), 0.0);
        assert_eq!(back.load_meta().unwrap(), sample_meta());
        let manifest = back.load_manifest().unwrap().unwrap();
        assert_eq!(manifest.fingerprint, FP);
        assert_eq!(manifest.entries.len(), 3);

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_resets_stale_store_but_refuses_foreign_dir() {
        let dir = tmp_dir("reset");
        std::fs::remove_dir_all(&dir).ok();
        let store = ArtifactStore::create(&dir, FP).unwrap();
        store.save_meta(&sample_meta()).unwrap();
        store.save_sparsifier(2, &[(0, 1, 1.0)]).unwrap();
        assert!(store.has_sparsifier());

        // Re-creating resets the stale store: no old artifact survives.
        let fresh = ArtifactStore::create(&dir, FP + 1).unwrap();
        assert!(!fresh.has_sparsifier());
        assert!(!fresh.path(META_FILE).is_file());
        assert!(fresh.load_manifest().unwrap().is_none());

        // A directory holding anything else is refused, untouched.
        fs::write(dir.join("notes.txt"), "do not delete").unwrap();
        match ArtifactStore::create(&dir, FP) {
            Err(EngineError::ArtifactDir(msg)) => assert!(msg.contains("notes.txt"), "{msg}"),
            other => panic!("expected ArtifactDir error, got {other:?}"),
        }
        assert_eq!(fs::read_to_string(dir.join("notes.txt")).unwrap(), "do not delete");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_payload_is_rejected_and_inspect_flags_it() {
        let dir = tmp_dir("corrupt");
        std::fs::remove_dir_all(&dir).ok();
        let store = ArtifactStore::create(&dir, FP).unwrap();
        store.save_meta(&sample_meta()).unwrap();
        store.save_sparsifier(3, &[(0, 1, 1.5), (2, 0, 0.25)]).unwrap();

        let path = dir.join(SPARSIFIER_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&path, &bytes).unwrap();

        let back = ArtifactStore::open(&dir);
        match back.load_sparsifier() {
            Err(EngineError::Corrupt { file, detail }) => {
                assert_eq!(file, SPARSIFIER_FILE);
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("expected Corrupt error, got {other:?}"),
        }
        assert!(matches!(back.inspect().sparsifier, ArtifactState::Invalid(_)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_meta_is_rejected() {
        let dir = tmp_dir("meta_tamper");
        std::fs::remove_dir_all(&dir).ok();
        let store = ArtifactStore::create(&dir, FP).unwrap();
        store.save_meta(&sample_meta()).unwrap();
        let path = dir.join(META_FILE);
        // "samples 12000" -> "samples 12001": a load-bearing field.
        let text = fs::read_to_string(&path).unwrap().replace("samples 12000", "samples 12001");
        fs::write(&path, text).unwrap();
        match store.load_meta() {
            Err(EngineError::Corrupt { file, .. }) => assert_eq!(file, META_FILE),
            other => panic!("expected Corrupt error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unlisted_and_missing_payloads_are_invalid() {
        let dir = tmp_dir("manifest_drift");
        std::fs::remove_dir_all(&dir).ok();
        let store = ArtifactStore::create(&dir, FP).unwrap();
        store.save_meta(&sample_meta()).unwrap();
        store.save_sparsifier(2, &[(0, 1, 1.0)]).unwrap();

        // A payload written but never committed to the manifest (crash
        // between rename and manifest write) is untrusted.
        fs::write(dir.join(NETMF_FILE), "#csr 2 2 0\n").unwrap();
        let i = store.inspect();
        assert!(i.sparsifier.is_valid());
        assert!(matches!(i.netmf, ArtifactState::Invalid(ref why) if why.contains("not listed")));

        // A manifest-listed payload that vanished is also untrusted.
        fs::remove_file(dir.join(SPARSIFIER_FILE)).unwrap();
        let i = store.inspect();
        assert!(matches!(i.sparsifier, ArtifactState::Invalid(ref why) if why.contains("missing")));
        fs::remove_dir_all(&dir).ok();
    }
}
