//! Checkpointed stage artifacts: save/resume for staged pipeline runs.
//!
//! Each stage of the engine can persist its output into a directory —
//! the sparsifier COO, the NetMF CSR matrix, and the initial (pre-
//! propagation) embedding — alongside a `meta.txt` describing the run
//! that produced them. A later run pointed at the same directory resumes
//! from the *deepest* artifact present, replaying the recorded counters
//! so its statistics stay complete.
//!
//! All files are plain text. Floats use Rust's shortest-round-trip
//! formatting, so a save/load cycle is bitwise lossless and a resumed
//! run reproduces the straight run's embedding exactly (same seed).

use crate::engine::EngineError;
use lightne_linalg::matio;
use lightne_linalg::{CsrMatrix, DenseMatrix};
use std::fs;
use std::path::{Path, PathBuf};

/// Current artifact metadata format version.
pub const META_VERSION: u32 = 1;

/// File name of the run metadata.
pub const META_FILE: &str = "meta.txt";
/// File name of the sparsifier COO checkpoint.
pub const SPARSIFIER_FILE: &str = "sparsifier.coo";
/// File name of the NetMF matrix checkpoint.
pub const NETMF_FILE: &str = "netmf.csr";
/// File name of the initial-embedding checkpoint.
pub const INITIAL_FILE: &str = "initial.emb";

/// Metadata describing the run that produced a set of artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// Format version ([`META_VERSION`]).
    pub version: u32,
    /// Master RNG seed of the run.
    pub seed: u64,
    /// Whether the weighted pipeline produced the artifacts.
    pub weighted: bool,
    /// Number of vertices of the source graph.
    pub n: usize,
    /// Sample budget `M` the sparsifier was built with (downstream
    /// stages normalize by it, so resume must reuse it).
    pub samples: u64,
    /// Sampling trials actually drawn.
    pub trials: u64,
    /// Trials kept after downsampling.
    pub kept: u64,
    /// Distinct aggregator entries.
    pub distinct_entries: usize,
    /// Aggregator heap bytes.
    pub aggregator_bytes: usize,
    /// NetMF non-zeros, once the conversion stage has run.
    pub netmf_nnz: Option<usize>,
}

impl RunMeta {
    fn to_text(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str(&format!("version {}\n", self.version));
        s.push_str(&format!("seed {}\n", self.seed));
        s.push_str(&format!("weighted {}\n", self.weighted));
        s.push_str(&format!("n {}\n", self.n));
        s.push_str(&format!("samples {}\n", self.samples));
        s.push_str(&format!("trials {}\n", self.trials));
        s.push_str(&format!("kept {}\n", self.kept));
        s.push_str(&format!("distinct_entries {}\n", self.distinct_entries));
        s.push_str(&format!("aggregator_bytes {}\n", self.aggregator_bytes));
        if let Some(nnz) = self.netmf_nnz {
            s.push_str(&format!("netmf_nnz {nnz}\n"));
        }
        s
    }

    fn from_text(text: &str) -> Result<Self, EngineError> {
        let mut meta = RunMeta {
            version: 0,
            seed: 0,
            weighted: false,
            n: 0,
            samples: 0,
            trials: 0,
            kept: 0,
            distinct_entries: 0,
            aggregator_bytes: 0,
            netmf_nnz: None,
        };
        let mut seen_version = false;
        for line in text.lines() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let (key, value) = t
                .split_once(char::is_whitespace)
                .ok_or_else(|| EngineError::Resume(format!("malformed meta line: {t:?}")))?;
            let value = value.trim();
            let parse_u64 = || {
                value
                    .parse::<u64>()
                    .map_err(|e| EngineError::Resume(format!("meta key {key}: {e}")))
            };
            let parse_usize = || {
                value
                    .parse::<usize>()
                    .map_err(|e| EngineError::Resume(format!("meta key {key}: {e}")))
            };
            match key {
                "version" => {
                    meta.version = value
                        .parse()
                        .map_err(|e| EngineError::Resume(format!("meta version: {e}")))?;
                    seen_version = true;
                }
                "seed" => meta.seed = parse_u64()?,
                "weighted" => {
                    meta.weighted = value
                        .parse()
                        .map_err(|e| EngineError::Resume(format!("meta weighted: {e}")))?;
                }
                "n" => meta.n = parse_usize()?,
                "samples" => meta.samples = parse_u64()?,
                "trials" => meta.trials = parse_u64()?,
                "kept" => meta.kept = parse_u64()?,
                "distinct_entries" => meta.distinct_entries = parse_usize()?,
                "aggregator_bytes" => meta.aggregator_bytes = parse_usize()?,
                "netmf_nnz" => meta.netmf_nnz = Some(parse_usize()?),
                _ => {} // forward compatibility: unknown keys are ignored
            }
        }
        if !seen_version {
            return Err(EngineError::Resume("meta file missing version".into()));
        }
        if meta.version > META_VERSION {
            return Err(EngineError::Resume(format!(
                "meta version {} is newer than supported {META_VERSION}",
                meta.version
            )));
        }
        Ok(meta)
    }
}

/// A directory holding checkpointed stage artifacts.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// Opens (and creates if needed) an artifact directory for writing.
    pub fn create(dir: impl AsRef<Path>) -> Result<Self, EngineError> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(Self { dir: dir.as_ref().to_path_buf() })
    }

    /// Opens an existing artifact directory for reading.
    pub fn open(dir: impl AsRef<Path>) -> Self {
        Self { dir: dir.as_ref().to_path_buf() }
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, file: &str) -> PathBuf {
        self.dir.join(file)
    }

    /// Whether a sparsifier checkpoint is present.
    pub fn has_sparsifier(&self) -> bool {
        self.path(SPARSIFIER_FILE).is_file()
    }

    /// Whether a NetMF checkpoint is present.
    pub fn has_netmf(&self) -> bool {
        self.path(NETMF_FILE).is_file()
    }

    /// Whether an initial-embedding checkpoint is present.
    pub fn has_initial(&self) -> bool {
        self.path(INITIAL_FILE).is_file()
    }

    /// Writes the run metadata (overwrites any previous version).
    pub fn save_meta(&self, meta: &RunMeta) -> Result<(), EngineError> {
        fs::write(self.path(META_FILE), meta.to_text())?;
        Ok(())
    }

    /// Reads the run metadata.
    pub fn load_meta(&self) -> Result<RunMeta, EngineError> {
        let text = fs::read_to_string(self.path(META_FILE))?;
        RunMeta::from_text(&text)
    }

    /// Checkpoints the sparsifier COO (an `n × n` entry list).
    pub fn save_sparsifier(&self, n: usize, coo: &[(u32, u32, f32)]) -> Result<(), EngineError> {
        matio::write_coo(self.path(SPARSIFIER_FILE), n, n, coo)?;
        Ok(())
    }

    /// Loads the sparsifier COO checkpoint.
    pub fn load_sparsifier(&self) -> Result<lightne_linalg::matio::CooData, EngineError> {
        Ok(matio::read_coo(self.path(SPARSIFIER_FILE))?)
    }

    /// Checkpoints the NetMF matrix.
    pub fn save_netmf(&self, m: &CsrMatrix) -> Result<(), EngineError> {
        matio::write_csr(m, self.path(NETMF_FILE))?;
        Ok(())
    }

    /// Loads the NetMF matrix checkpoint.
    pub fn load_netmf(&self) -> Result<CsrMatrix, EngineError> {
        Ok(matio::read_csr(self.path(NETMF_FILE))?)
    }

    /// Checkpoints the initial (pre-propagation) embedding.
    pub fn save_initial(&self, x: &DenseMatrix) -> Result<(), EngineError> {
        matio::write_matrix(x, self.path(INITIAL_FILE))?;
        Ok(())
    }

    /// Loads the initial-embedding checkpoint.
    pub fn load_initial(&self) -> Result<DenseMatrix, EngineError> {
        Ok(matio::read_matrix(self.path(INITIAL_FILE))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lightne_artifacts_{}_{name}", std::process::id()));
        p
    }

    fn sample_meta() -> RunMeta {
        RunMeta {
            version: META_VERSION,
            seed: 0x11_97,
            weighted: false,
            n: 400,
            samples: 12_000,
            trials: 12_003,
            kept: 9_500,
            distinct_entries: 4_200,
            aggregator_bytes: 131_072,
            netmf_nnz: Some(3_800),
        }
    }

    #[test]
    fn meta_roundtrip() {
        let meta = sample_meta();
        let parsed = RunMeta::from_text(&meta.to_text()).unwrap();
        assert_eq!(meta, parsed);
    }

    #[test]
    fn meta_without_nnz_roundtrip() {
        let meta = RunMeta { netmf_nnz: None, weighted: true, ..sample_meta() };
        let parsed = RunMeta::from_text(&meta.to_text()).unwrap();
        assert_eq!(meta, parsed);
    }

    #[test]
    fn meta_rejects_missing_version_and_future_version() {
        assert!(RunMeta::from_text("seed 3\n").is_err());
        let future = format!("version {}\nseed 1\n", META_VERSION + 1);
        assert!(RunMeta::from_text(&future).is_err());
    }

    #[test]
    fn store_roundtrips_all_artifacts() {
        let dir = tmp_dir("full");
        let store = ArtifactStore::create(&dir).unwrap();
        assert!(!store.has_sparsifier() && !store.has_netmf() && !store.has_initial());

        let coo = vec![(0u32, 1u32, 2.5f32), (3, 2, 0.125)];
        store.save_sparsifier(4, &coo).unwrap();
        let m = CsrMatrix::from_coo(4, 4, coo.clone());
        store.save_netmf(&m).unwrap();
        let x = DenseMatrix::gaussian(4, 3, 5);
        store.save_initial(&x).unwrap();
        store.save_meta(&sample_meta()).unwrap();

        let back = ArtifactStore::open(&dir);
        assert!(back.has_sparsifier() && back.has_netmf() && back.has_initial());
        let (r, c, entries) = back.load_sparsifier().unwrap();
        assert_eq!((r, c), (4, 4));
        assert_eq!(entries, coo);
        let m2 = back.load_netmf().unwrap();
        assert_eq!(m2.nnz(), m.nnz());
        let x2 = back.load_initial().unwrap();
        assert_eq!(x.max_abs_diff(&x2), 0.0);
        assert_eq!(back.load_meta().unwrap(), sample_meta());

        fs::remove_dir_all(&dir).ok();
    }
}
