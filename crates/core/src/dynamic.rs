//! Dynamic / streaming embedding — the paper's stated future work.
//!
//! The conclusion of the paper: *"We also would like to study large-scale
//! network embedding in a streaming or dynamic setting."* The motivating
//! scenarios of Section 1 (Alibaba's and LinkedIn's periodic
//! re-embedding as edges arrive) are exactly this. This module implements
//! the natural LightNE-native design:
//!
//! * the graph is kept as an edge log plus a rebuilt CSR;
//! * the *sparsifier hash table is persistent* across updates — because
//!   the estimator is a sum of independent per-edge sample contributions,
//!   new edges simply contribute additional weighted samples at the
//!   current per-edge rate, while existing mass is retained;
//! * re-embedding re-runs only the cheap stages (NetMF conversion +
//!   randomized SVD + propagation) over the maintained table.
//!
//! The approximation: walks for *old* samples were taken on the old
//! graph. For the incremental regime the paper targets (a few percent of
//! new edges between re-embeds) this drift is second-order, and the
//! `incremental_matches_full_rebuild_quality` test quantifies it.

use crate::engine::{run_pipeline, PipelineSource, RunOptions};
use crate::pipeline::{LightNe, LightNeConfig, LightNeOutput};
use crate::propagation::PropagationConfig;
use lightne_graph::{Graph, GraphBuilder, VertexId};
use lightne_hash::{ConcurrentEdgeTable, EdgeAggregator};
use lightne_linalg::{CsrMatrix, DenseMatrix};
use lightne_sparsifier::construct::{SamplerConfig, SamplerError, SamplerStats, SparsifierOutput};
use lightne_sparsifier::downsample::{default_c, scheme_edge_probability};
use lightne_sparsifier::netmf::sparsifier_to_netmf;
use lightne_sparsifier::path_sampling::path_sample;
use lightne_utils::rng::XorShiftStream;

/// A LightNE instance that absorbs edge insertions and re-embeds
/// incrementally.
pub struct DynamicLightNe {
    cfg: LightNeConfig,
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
    graph: Graph,
    table: ConcurrentEdgeTable,
    /// Total trials contributed to the table so far (the `M` of the
    /// estimator denominator).
    total_trials: u64,
    /// Monotone counter deriving fresh RNG streams for new batches.
    epoch: u64,
}

impl DynamicLightNe {
    /// Creates an empty dynamic embedder over `n` vertices.
    pub fn new(n: usize, cfg: LightNeConfig) -> Self {
        Self {
            cfg,
            n,
            edges: Vec::new(),
            graph: Graph::empty(n),
            table: ConcurrentEdgeTable::with_expected(1024),
            total_trials: 0,
            epoch: 0,
        }
    }

    /// Current number of (undirected) edges absorbed.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// The current graph snapshot.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Trials accumulated in the persistent sparsifier.
    pub fn total_trials(&self) -> u64 {
        self.total_trials
    }

    /// Absorbs a batch of new edges: rebuilds the CSR snapshot and adds
    /// sparsifier samples *only for the new edges*, at the same per-edge
    /// trial rate the existing table was built with.
    pub fn insert_edges(&mut self, batch: &[(VertexId, VertexId)]) -> SamplerStats {
        self.epoch += 1;
        self.edges.extend_from_slice(batch);
        let mut builder = GraphBuilder::new(self.n);
        builder.add_edges(self.edges.iter().copied());
        self.graph = builder.build();

        // Per-arc trial rate: sample_ratio · T · m / (2m) = ratio·T/2.
        let per_arc = (self.cfg.sample_ratio * self.cfg.window as f64 / 2.0).max(0.5);
        let c = self.cfg.c_factor.unwrap_or_else(|| default_c(self.graph.num_vertices()));
        let g = &self.graph;
        let t = self.cfg.window;
        let mut trials = 0u64;
        let mut kept = 0u64;

        for (i, &(u, v)) in batch.iter().enumerate() {
            if u == v {
                continue;
            }
            let mut rng = XorShiftStream::new(self.cfg.seed ^ (self.epoch << 32), i as u64);
            // Both orientations, like the static sampler's MapEdges.
            for (a, b) in [(u, v), (v, u)] {
                let n_e = per_arc.floor() as u64 + u64::from(rng.bernoulli(per_arc.fract()));
                let p_e = if self.cfg.downsample {
                    scheme_edge_probability(self.cfg.prob, g, a, b, c)
                } else {
                    1.0
                };
                let w = (1.0 / p_e) as f32;
                for _ in 0..n_e {
                    trials += 1;
                    if p_e < 1.0 && !rng.bernoulli(p_e) {
                        continue;
                    }
                    kept += 1;
                    let r = 1 + rng.bounded_usize(t);
                    let (x, y) = path_sample(g, a, b, r, &mut rng);
                    self.table.add(x, y, w);
                    self.table.add(y, x, w);
                }
            }
        }
        self.total_trials += trials;
        SamplerStats {
            trials,
            kept,
            distinct_entries: self.table.len(),
            aggregator_bytes: self.table.memory_bytes(),
        }
    }

    /// Re-embeds from the persistent sparsifier: NetMF conversion,
    /// randomized SVD, and (if configured) spectral propagation — without
    /// re-sampling old edges.
    ///
    /// # Panics
    ///
    /// If no edges have been absorbed yet; use
    /// [`DynamicLightNe::reembed_with`] for a fallible variant.
    pub fn reembed(&self) -> LightNeOutput {
        self.reembed_with(RunOptions::default())
            .unwrap_or_else(|e| panic!("re-embed without artifact i/o failed: {e}"))
    }

    /// [`DynamicLightNe::reembed`] with engine options (checkpointing,
    /// resume, progress reporting). Returns a [`SamplerError::EmptyGraph`]
    /// engine error when no edges have been absorbed yet.
    ///
    /// [`SamplerError::EmptyGraph`]: lightne_sparsifier::construct::SamplerError::EmptyGraph
    pub fn reembed_with(
        &self,
        opts: RunOptions,
    ) -> Result<LightNeOutput, crate::engine::EngineError> {
        if self.total_trials == 0 {
            return Err(crate::engine::EngineError::Sampler(SamplerError::EmptyGraph));
        }
        run_pipeline(&self.cfg, &DynamicSource(self), opts)
    }

    /// A full, from-scratch LightNE run on the current snapshot (the
    /// expensive alternative the incremental path avoids).
    pub fn full_rebuild(&self) -> LightNeOutput {
        LightNe::new(self.cfg).embed(&self.graph)
    }

    fn snapshot_entries(&self) -> Vec<(u32, u32, f32)> {
        // ConcurrentEdgeTable drains by value; iterate entries via the
        // cheap route: probe every distinct key through a temporary drain
        // of a clone-free copy. Since the table API is drain-only, we
        // rebuild the entry list from the edge log's perspective instead:
        // read every stored pair through `get` would require knowing the
        // keys, so the table exposes its contents through into_coo on a
        // clone built here.
        self.table.snapshot()
    }
}

/// [`PipelineSource`] backed by the persistent sparsifier table: the
/// "sparsify" stage is a snapshot of accumulated mass (no re-sampling),
/// and the sample budget is the total trials absorbed so far.
struct DynamicSource<'a>(&'a DynamicLightNe);

impl PipelineSource for DynamicSource<'_> {
    fn num_vertices(&self) -> usize {
        self.0.graph.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.0.graph.num_edges()
    }

    fn total_samples(&self, _cfg: &LightNeConfig) -> u64 {
        self.0.total_trials
    }

    fn sparsify(&self, _cfg: &SamplerConfig) -> SparsifierOutput {
        let stats = SamplerStats {
            trials: self.0.total_trials,
            kept: 0,
            distinct_entries: self.0.table.len(),
            aggregator_bytes: self.0.table.memory_bytes(),
        };
        Ok((self.0.snapshot_entries(), stats))
    }

    fn netmf(&self, coo: Vec<(u32, u32, f32)>, samples: u64, negative: f64) -> CsrMatrix {
        sparsifier_to_netmf(&self.0.graph, coo, samples, negative)
    }

    fn propagate(&self, initial: &DenseMatrix, cfg: &PropagationConfig) -> DenseMatrix {
        crate::propagation::spectral_propagation(&self.0.graph, initial, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_eval::classify::evaluate_node_classification;
    use lightne_gen::sbm::{labelled_sbm, SbmConfig};
    use lightne_utils::rng::XorShiftStream;

    fn cfg() -> LightNeConfig {
        LightNeConfig { dim: 16, window: 5, sample_ratio: 2.0, ..Default::default() }
    }

    fn sbm_edges(n: usize, seed: u64) -> (Vec<(u32, u32)>, lightne_gen::Labels) {
        let c = SbmConfig {
            n,
            communities: 5,
            avg_degree: 20.0,
            mixing: 0.08,
            overlap: 0.1,
            gamma: 2.5,
        };
        let (g, labels) = labelled_sbm(&c, seed);
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for &v in g.neighbors(u) {
                if u < v {
                    edges.push((u, v));
                }
            }
        }
        (edges, labels)
    }

    #[test]
    fn absorbs_batches_and_grows() {
        let (edges, _) = sbm_edges(400, 1);
        let mut dyn_ne = DynamicLightNe::new(400, cfg());
        let half = edges.len() / 2;
        let s1 = dyn_ne.insert_edges(&edges[..half]);
        assert!(s1.trials > 0);
        let m1 = dyn_ne.num_edges();
        let s2 = dyn_ne.insert_edges(&edges[half..]);
        assert!(dyn_ne.num_edges() > m1);
        assert!(s2.distinct_entries >= s1.distinct_entries);
        assert_eq!(dyn_ne.total_trials(), s1.trials + s2.trials);
    }

    #[test]
    fn reembed_produces_valid_embedding() {
        let (edges, _) = sbm_edges(300, 2);
        let mut dyn_ne = DynamicLightNe::new(300, cfg());
        dyn_ne.insert_edges(&edges);
        let out = dyn_ne.reembed();
        assert_eq!(out.embedding.rows(), 300);
        assert_eq!(out.embedding.cols(), 16);
        assert!(out.embedding.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn incremental_matches_full_rebuild_quality() {
        // Insert 90% of edges, re-embed, insert the trailing 10%, and
        // compare incremental re-embed vs full rebuild on classification.
        let (mut edges, labels) = sbm_edges(600, 3);
        // Shuffle so the trailing batch is structurally unbiased.
        let mut rng = XorShiftStream::new(9, 0);
        for i in (1..edges.len()).rev() {
            let j = rng.bounded_usize(i + 1);
            edges.swap(i, j);
        }
        let cut = edges.len() * 9 / 10;
        let mut dyn_ne = DynamicLightNe::new(600, cfg());
        dyn_ne.insert_edges(&edges[..cut]);
        dyn_ne.insert_edges(&edges[cut..]);

        let inc = dyn_ne.reembed();
        let full = dyn_ne.full_rebuild();
        let f_inc = evaluate_node_classification(&inc.embedding, &labels, 0.3, 4);
        let f_full = evaluate_node_classification(&full.embedding, &labels, 0.3, 4);
        assert!(
            f_inc.micro > f_full.micro - 8.0,
            "incremental {} far below full {}",
            f_inc.micro,
            f_full.micro
        );
        // And both are far above chance (~20% for 5 communities).
        assert!(f_inc.micro > 50.0, "incremental quality collapsed: {}", f_inc.micro);
    }

    #[test]
    fn new_edges_only_sampling_is_cheaper_than_full() {
        let (edges, _) = sbm_edges(500, 5);
        let cut = edges.len() * 95 / 100;
        let mut dyn_ne = DynamicLightNe::new(500, cfg());
        let s_bulk = dyn_ne.insert_edges(&edges[..cut]);
        let s_inc = dyn_ne.insert_edges(&edges[cut..]);
        assert!(
            s_inc.trials * 10 < s_bulk.trials,
            "incremental batch sampled too much: {} vs {}",
            s_inc.trials,
            s_bulk.trials
        );
    }

    #[test]
    #[should_panic(expected = "graph has no edges")]
    fn reembed_requires_edges() {
        let dyn_ne = DynamicLightNe::new(10, cfg());
        let _ = dyn_ne.reembed();
    }

    #[test]
    fn reembed_with_reports_empty_graph_as_typed_error() {
        let dyn_ne = DynamicLightNe::new(10, cfg());
        let err = dyn_ne.reembed_with(RunOptions::default()).unwrap_err();
        assert!(err.to_string().contains("graph has no edges"), "got: {err}");
    }
}
