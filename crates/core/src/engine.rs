//! The stage engine: one execution path for every staged pipeline.
//!
//! LightNE, its weighted variant, the dynamic re-embedder, and the staged
//! baselines all run the same stage sequence — sparsify → NetMF
//! conversion → randomized SVD → spectral propagation — differing only in
//! how each stage is realized. This module factors the sequencing,
//! instrumentation, and checkpointing out of the four call sites:
//!
//! * [`RunContext`] drives the stages, recording per-stage wall time,
//!   named counters, and peak heap bytes into [`StageRecord`]s, with
//!   deterministic per-stage RNG sub-seeds derived from the master seed
//!   and an optional [`ProgressHook`] for live reporting.
//! * [`PipelineSource`] abstracts what a stage *does*: the unweighted,
//!   weighted, dynamic, and NetSMF pipelines each implement it once.
//! * [`run_pipeline`] executes the sequence over any source, optionally
//!   checkpointing each stage's output ([`RunOptions::save_artifacts`])
//!   and resuming from the deepest artifact found
//!   ([`RunOptions::resume_from`]).
//! * [`RunStats`] is the finished record: queryable, renderable as JSON
//!   (`--stats-json`), and convertible back into the [`StageTimer`]
//!   breakdown the bench harness prints as the paper's Table 5.

use crate::artifacts::{
    ArtifactState, ArtifactStore, RunMeta, INITIAL_FILE, META_VERSION, NETMF_FILE, SPARSIFIER_FILE,
};
use crate::pipeline::{LightNeConfig, LightNeOutput};
use crate::propagation::PropagationConfig;
use lightne_hash::ShardedEdgeTable;
use lightne_linalg::{randomized_svd, CsrMatrix, DenseMatrix, RsvdConfig};
use lightne_sparsifier::construct::{SamplerConfig, SamplerError, SamplerStats, SparsifierOutput};
use lightne_utils::checksum::fnv1a64;
use lightne_utils::faults;
use lightne_utils::mem::MemUsage;
use lightne_utils::timer::StageTimer;
use std::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Fail point at the sparsifier stage boundary.
pub const FP_STAGE_SPARSIFY: &str = "engine.stage.sparsify";
/// Fail point at the NetMF-conversion stage boundary.
pub const FP_STAGE_NETMF: &str = "engine.stage.netmf";
/// Fail point at the randomized-SVD stage boundary.
pub const FP_STAGE_RSVD: &str = "engine.stage.rsvd";
/// All fail points registered by the engine.
pub const FAIL_POINTS: &[&str] = &[FP_STAGE_SPARSIFY, FP_STAGE_NETMF, FP_STAGE_RSVD];

/// The four canonical pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Parallel sparsifier construction (PathSampling + downsampling).
    Sparsify,
    /// Conversion of the sparsifier into the truncated-log NetMF matrix.
    NetMf,
    /// Randomized SVD of the NetMF matrix.
    Rsvd,
    /// ProNE-style spectral propagation of the initial embedding.
    Propagate,
}

impl StageKind {
    /// The stage's display name (also the key in timers and stats).
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Sparsify => crate::pipeline::STAGE_SPARSIFIER,
            StageKind::NetMf => crate::pipeline::STAGE_NETMF,
            StageKind::Rsvd => crate::pipeline::STAGE_RSVD,
            StageKind::Propagate => crate::pipeline::STAGE_PROPAGATION,
        }
    }
}

/// The finished record of one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Stage display name.
    pub name: String,
    /// Wall-clock seconds spent in the stage.
    pub secs: f64,
    /// Peak heap bytes attributed to the stage's main data structure(s).
    pub heap_bytes: usize,
    /// Named counters reported by the stage (samples drawn, nnz, …).
    pub counters: Vec<(String, u64)>,
}

impl StageRecord {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Achieved GFLOP/s, derived from the stage's `flops` counter (the
    /// nominal floating-point operation count reported by the stage body)
    /// and its wall-clock time. `None` for stages that report no `flops`
    /// counter or ran too fast to time.
    pub fn gflops(&self) -> Option<f64> {
        let flops = self.counter("flops")?;
        if self.secs > 0.0 {
            Some(flops as f64 / self.secs / 1e9)
        } else {
            None
        }
    }
}

/// Mutable view handed to a stage body for reporting counters and memory.
#[derive(Debug, Default)]
pub struct StageScope {
    counters: Vec<(String, u64)>,
    heap_bytes: usize,
}

impl StageScope {
    /// Reports a named counter (last write wins for a repeated name).
    pub fn counter(&mut self, name: &str, value: u64) {
        if let Some(slot) = self.counters.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.counters.push((name.to_string(), value));
        }
    }

    /// Folds a structure's heap footprint into the stage's peak.
    pub fn heap<M: MemUsage>(&mut self, m: &M) {
        self.heap_bytes(m.heap_bytes());
    }

    /// Folds a raw byte count into the stage's peak.
    pub fn heap_bytes(&mut self, bytes: usize) {
        self.heap_bytes = self.heap_bytes.max(bytes);
    }
}

/// Events delivered to a [`ProgressHook`] as stages start and finish.
#[derive(Debug)]
pub enum StageEvent<'a> {
    /// A stage has begun.
    Started {
        /// The stage's display name.
        name: &'a str,
    },
    /// A stage has completed; its full record is available.
    Finished {
        /// The finished stage record.
        record: &'a StageRecord,
    },
}

/// Callback invoked on every [`StageEvent`].
pub type ProgressHook = Box<dyn Fn(&StageEvent<'_>) + Send + Sync>;

/// Shared execution state driving a staged run.
pub struct RunContext {
    master_seed: u64,
    records: Vec<StageRecord>,
    fallbacks: Vec<String>,
    progress: Option<ProgressHook>,
}

impl fmt::Debug for RunContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunContext")
            .field("master_seed", &self.master_seed)
            .field("records", &self.records)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl RunContext {
    /// Creates a context with the given master seed.
    pub fn new(master_seed: u64) -> Self {
        Self { master_seed, records: Vec::new(), fallbacks: Vec::new(), progress: None }
    }

    /// Creates a context that reports stage events to `hook`.
    pub fn with_progress(master_seed: u64, hook: ProgressHook) -> Self {
        Self { master_seed, records: Vec::new(), fallbacks: Vec::new(), progress: Some(hook) }
    }

    /// Records a resume degradation: an invalid or missing artifact that
    /// forced the run to recompute from an earlier stage.
    pub fn note_fallback(&mut self, note: String) {
        self.fallbacks.push(note);
    }

    /// The deterministic RNG sub-seed for a stage.
    ///
    /// Sampling stages consume the master seed directly; the randomized
    /// SVD offsets it (so the Gaussian sketch is independent of the
    /// sample streams), matching the constants the pipelines have always
    /// used — resumed runs therefore reproduce straight runs exactly.
    pub fn stage_seed(&self, kind: StageKind) -> u64 {
        match kind {
            StageKind::Sparsify | StageKind::NetMf => self.master_seed,
            StageKind::Rsvd => self.master_seed.wrapping_add(0x5EED),
            StageKind::Propagate => self.master_seed.wrapping_add(0x9A0F),
        }
    }

    /// Runs a canonical stage. See [`RunContext::run_named`].
    pub fn run<T>(&mut self, kind: StageKind, f: impl FnOnce(&mut StageScope) -> T) -> T {
        self.run_named(kind.name(), f)
    }

    /// Runs `f` as a named stage: emits start/finish events, times the
    /// body, and appends the resulting [`StageRecord`].
    pub fn run_named<T>(&mut self, name: &str, f: impl FnOnce(&mut StageScope) -> T) -> T {
        if let Some(hook) = &self.progress {
            hook(&StageEvent::Started { name });
        }
        let mut scope = StageScope::default();
        // xtask:allow(L5): wall-clock stage timing feeds StageRecord.secs
        // (report metadata only); it never influences numeric output.
        let started = Instant::now();
        let out = f(&mut scope);
        let record = StageRecord {
            name: name.to_string(),
            secs: started.elapsed().as_secs_f64(),
            heap_bytes: scope.heap_bytes,
            counters: scope.counters,
        };
        if let Some(hook) = &self.progress {
            hook(&StageEvent::Finished { record: &record });
        }
        self.records.push(record);
        out
    }

    /// The stage records accumulated so far.
    pub fn records(&self) -> &[StageRecord] {
        &self.records
    }

    /// Finalizes the context into queryable run statistics.
    pub fn into_stats(self) -> RunStats {
        RunStats {
            seed: self.master_seed,
            threads: lightne_utils::parallel::num_threads(),
            simd_tier: lightne_linalg::simd::active_tier().name().to_string(),
            simd_features: lightne_linalg::simd::detected_features(),
            pinned: lightne_utils::affinity::pinning_enabled(),
            resume_fallbacks: self.fallbacks,
            stages: self.records,
        }
    }
}

/// The finished statistics of a staged run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Master RNG seed of the run.
    pub seed: u64,
    /// Rayon worker threads the run executed on.
    pub threads: usize,
    /// The SIMD dispatch tier the numeric kernels ran on
    /// (`"scalar"`/`"avx2"`/`"avx512"`; see `lightne_linalg::simd`).
    pub simd_tier: String,
    /// CPU features detected at runtime (comma-separated), independent of
    /// which tier was actually selected.
    pub simd_features: String,
    /// Whether shard→core worker pinning was active (`--pin-shards`).
    pub pinned: bool,
    /// Resume degradations: one note per invalid artifact the run skipped
    /// (empty for straight runs and clean resumes).
    pub resume_fallbacks: Vec<String>,
    /// Per-stage records, in execution order.
    pub stages: Vec<StageRecord>,
}

impl RunStats {
    /// Looks up a stage record by name.
    pub fn get(&self, name: &str) -> Option<&StageRecord> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Total wall-clock seconds across all stages.
    pub fn total_secs(&self) -> f64 {
        self.stages.iter().map(|s| s.secs).sum()
    }

    /// Rebuilds a [`StageTimer`] breakdown from the records (for display
    /// paths that still consume timers).
    pub fn timer(&self) -> StageTimer {
        let mut t = StageTimer::new();
        for s in &self.stages {
            t.record(s.name.clone(), Duration::from_secs_f64(s.secs));
        }
        t
    }

    /// Renders the stats as a JSON document (the `--stats-json` schema).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"simd_tier\": \"{}\",\n", escape_json(&self.simd_tier)));
        out.push_str(&format!("  \"simd_features\": \"{}\",\n", escape_json(&self.simd_features)));
        out.push_str(&format!("  \"pinned\": {},\n", self.pinned));
        out.push_str(&format!("  \"total_secs\": {},\n", self.total_secs()));
        out.push_str("  \"resume_fallbacks\": [");
        for (i, note) in self.resume_fallbacks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", escape_json(note)));
        }
        out.push_str("],\n");
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": \"{}\", ", escape_json(&s.name)));
            out.push_str(&format!("\"secs\": {}, ", s.secs));
            out.push_str(&format!("\"heap_bytes\": {}, ", s.heap_bytes));
            out.push_str("\"counters\": {");
            for (j, (name, v)) in s.counters.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {v}", escape_json(name)));
            }
            out.push('}');
            if let Some(g) = s.gflops() {
                out.push_str(&format!(", \"gflops\": {g:.3}"));
            }
            out.push('}');
            out.push_str(if i + 1 < self.stages.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Errors from the stage engine (artifact I/O, resume validation, and
/// sampler preconditions). Every corruption class a crash or bad storage
/// can produce in an artifact directory maps to a distinct variant, so
/// callers can tell "retry/recompute" states from "wrong directory" ones.
#[derive(Debug)]
pub enum EngineError {
    /// Artifact file I/O or parse failure.
    Io(lightne_linalg::matio::MatIoError),
    /// A resume directory is unusable or inconsistent with the run.
    Resume(String),
    /// The sampler rejected the graph or configuration.
    Sampler(SamplerError),
    /// An artifact's bytes fail integrity validation (checksum or size
    /// mismatch, broken seal, or a file/manifest disagreement).
    Corrupt {
        /// File name within the artifact directory.
        file: String,
        /// What failed.
        detail: String,
    },
    /// The artifact metadata was written by an unsupported format version.
    MetaVersion {
        /// Version recorded on disk.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The artifacts were produced by a run over a different graph or with
    /// different parameters; resuming would produce a garbage embedding.
    FingerprintMismatch {
        /// Fingerprint recorded in the artifacts.
        artifact: u64,
        /// Fingerprint of the current run.
        run: u64,
    },
    /// The artifact directory cannot be (re)used for writing.
    ArtifactDir(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "artifact i/o: {e}"),
            EngineError::Resume(what) => write!(f, "cannot resume: {what}"),
            EngineError::Sampler(e) => write!(f, "sampler: {e}"),
            EngineError::Corrupt { file, detail } => {
                write!(f, "corrupt artifact {file}: {detail}")
            }
            EngineError::MetaVersion { found, supported } => write!(
                f,
                "artifact meta version {found} is not supported (this build reads version \
                 {supported})"
            ),
            EngineError::FingerprintMismatch { artifact, run } => write!(
                f,
                "cannot resume: artifact fingerprint {artifact:016x} does not match this run's \
                 {run:016x} (different graph or parameters)"
            ),
            EngineError::ArtifactDir(what) => write!(f, "artifact directory: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<lightne_linalg::matio::MatIoError> for EngineError {
    fn from(e: lightne_linalg::matio::MatIoError) -> Self {
        EngineError::Io(e)
    }
}

impl From<SamplerError> for EngineError {
    fn from(e: SamplerError) -> Self {
        EngineError::Sampler(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(lightne_linalg::matio::MatIoError::Io(e))
    }
}

/// Per-run execution options for [`run_pipeline`].
#[derive(Default)]
pub struct RunOptions {
    /// Checkpoint each stage's output into this directory.
    pub save_artifacts: Option<PathBuf>,
    /// Resume from the deepest *valid* artifact found in this directory.
    pub resume_from: Option<PathBuf>,
    /// Fail with [`EngineError::Corrupt`] on any invalid artifact instead
    /// of degrading to an earlier stage (`--strict-resume`).
    pub strict_resume: bool,
    /// Stage start/finish callback.
    pub progress: Option<ProgressHook>,
}

impl fmt::Debug for RunOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunOptions")
            .field("save_artifacts", &self.save_artifacts)
            .field("resume_from", &self.resume_from)
            .field("strict_resume", &self.strict_resume)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

/// What a staged pipeline must provide: the realization of each stage.
///
/// The engine owns sequencing, timing, counters, checkpointing, and
/// resume; implementors own the math. [`run_pipeline`] is the only
/// driver, so every source gets artifacts, stats, and progress for free.
pub trait PipelineSource {
    /// Number of vertices in the underlying graph.
    fn num_vertices(&self) -> usize;

    /// Number of undirected edges (drives the sample budget).
    fn num_edges(&self) -> usize;

    /// Whether this source runs the weighted pipeline (recorded in
    /// artifact metadata; a resume across this flag is rejected).
    fn is_weighted(&self) -> bool {
        false
    }

    /// Resident heap bytes of the source graph itself. Memory-mapped
    /// sources return 0 — their payload lives in the page cache, not on
    /// the heap — which is exactly what the out-of-core memory gate
    /// measures. Folded into the sparsify stage's peak (the graph is
    /// resident for the whole run; the sparsifier stage is where it
    /// coexists with the largest transient structure) and reported as
    /// the `graph_bytes` counter.
    fn graph_resident_bytes(&self) -> usize {
        0
    }

    /// Total PathSampling trials for a configuration (`M = ratio·T·m`).
    fn total_samples(&self, cfg: &LightNeConfig) -> u64 {
        let m = (cfg.sample_ratio * cfg.window as f64 * self.num_edges() as f64).round() as u64;
        m.max(1)
    }

    /// Stage 1: builds the sparsifier COO and sampling statistics.
    ///
    /// # Errors
    /// Propagates [`SamplerError`] when the graph or configuration cannot
    /// be sampled (no edges, zero window).
    fn sparsify(&self, cfg: &SamplerConfig) -> SparsifierOutput;

    /// Stage 1, sharded fast path: builds the sparsifier into a
    /// vertex-range-sharded table for the fused stage-2 drain. Sources
    /// without a sharded implementation return `None` (the default) and
    /// the engine falls back to [`PipelineSource::sparsify`].
    ///
    /// `shards == 0` selects the automatic heuristic.
    fn sparsify_sharded(
        &self,
        _cfg: &SamplerConfig,
        _shards: usize,
    ) -> Option<Result<(ShardedEdgeTable, SamplerStats), SamplerError>> {
        None
    }

    /// Stage 2: converts the sparsifier into the NetMF matrix.
    fn netmf(&self, coo: Vec<(u32, u32, f32)>, samples: u64, negative: f64) -> CsrMatrix;

    /// Stage 2, sharded fast path: fused drain of the sharded table
    /// straight into the NetMF matrix. The default flattens the sorted
    /// runs and delegates to [`PipelineSource::netmf`], which is already
    /// byte-identical — sources override it to skip the global COO.
    fn netmf_sharded(&self, table: ShardedEdgeTable, samples: u64, negative: f64) -> CsrMatrix {
        let coo: Vec<(u32, u32, f32)> =
            table.into_sorted_runs().into_iter().flat_map(|(_, run)| run).collect();
        self.netmf(coo, samples, negative)
    }

    /// Stage 4: propagates the initial embedding (only called when the
    /// configuration enables propagation).
    fn propagate(&self, initial: &DenseMatrix, cfg: &PropagationConfig) -> DenseMatrix;
}

/// How deep into the pipeline a resume directory reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ResumeLevel {
    None,
    Sparsifier,
    NetMf,
    Initial,
}

/// What stage 1 hands to stage 2.
enum SparsifierPayload {
    /// Resumed past the point where stage 2 needs input.
    None,
    /// Classic path: the drained global COO.
    Coo(Vec<(u32, u32, f32)>),
    /// Sharded fast path: the live table for the fused drain.
    Sharded(ShardedEdgeTable),
}

/// Fingerprint of a run's graph and embedding parameters.
///
/// Resuming is only sound when the artifacts were produced by the *same*
/// computation: same graph (vertex/edge counts, weightedness), same
/// sampling and factorization parameters, same seed. The fingerprint is
/// an FNV-1a digest over a canonical rendering of exactly the inputs that
/// shape the checkpointed state. Data-path knobs whose output is
/// byte-identical (shard count, global-table) and the propagation stage
/// (never checkpointed — it runs after the deepest artifact) are
/// deliberately excluded.
pub fn run_fingerprint(cfg: &LightNeConfig, n: usize, m: usize, weighted: bool) -> u64 {
    let text = format!("{}n {n}\nm {m}\nweighted {weighted}\n", cfg.fingerprint_text());
    fnv1a64(text.as_bytes())
}

/// Runs the staged pipeline over `src`, with optional checkpointing and
/// resume. This is the single execution path behind [`LightNe::embed`],
/// [`LightNe::embed_weighted`], the dynamic re-embedder, and the staged
/// baselines.
///
/// On resume, the artifact directory's metadata and manifest are
/// validated first; invalid artifacts are skipped (the run degrades to
/// the deepest stage that is still trustworthy, recording each fallback
/// in [`RunStats::resume_fallbacks`]) unless
/// [`RunOptions::strict_resume`] is set, in which case any invalid
/// artifact is a typed error. A fingerprint mismatch — artifacts from a
/// different graph or parameterization — is always a hard error.
///
/// [`LightNe::embed`]: crate::pipeline::LightNe::embed
/// [`LightNe::embed_weighted`]: crate::pipeline::LightNe::embed_weighted
pub fn run_pipeline<S: PipelineSource>(
    cfg: &LightNeConfig,
    src: &S,
    opts: RunOptions,
) -> Result<LightNeOutput, EngineError> {
    let mut ctx = match opts.progress {
        Some(hook) => RunContext::with_progress(cfg.seed, hook),
        None => RunContext::new(cfg.seed),
    };

    // Shard→core affinity for the sample→aggregate stage (`--pin-shards`).
    // Registered for the whole run — scheduling only; output bytes are
    // identical pinned or not.
    lightne_utils::affinity::set_worker_pinning(cfg.pin_shards);

    let n = src.num_vertices();
    let fingerprint = run_fingerprint(cfg, n, src.num_edges(), src.is_weighted());

    // Resolve the resume state before touching the save directory: when
    // both options point at the same store, creation must not reset it.
    let (resume, resume_meta, level) = match &opts.resume_from {
        Some(dir) => {
            let r = ArtifactStore::open(dir);
            let meta = r.load_meta().map_err(|e| match e {
                // Integrity and version failures stay typed; plain I/O and
                // parse failures get the directory context.
                e @ (EngineError::Corrupt { .. } | EngineError::MetaVersion { .. }) => e,
                e => EngineError::Resume(format!("unreadable metadata in {}: {e}", dir.display())),
            })?;
            if meta.weighted != src.is_weighted() {
                return Err(EngineError::Resume(format!(
                    "artifacts are from a {} run, this run is {}",
                    if meta.weighted { "weighted" } else { "unweighted" },
                    if src.is_weighted() { "weighted" } else { "unweighted" },
                )));
            }
            if meta.seed != cfg.seed {
                return Err(EngineError::Resume(format!(
                    "artifact seed {} != run seed {}",
                    meta.seed, cfg.seed
                )));
            }
            if meta.n != n {
                return Err(EngineError::Resume(format!(
                    "artifact graph has {} vertices, this graph has {}",
                    meta.n, n
                )));
            }
            if meta.fingerprint != fingerprint {
                return Err(EngineError::FingerprintMismatch {
                    artifact: meta.fingerprint,
                    run: fingerprint,
                });
            }
            // Deepest-first scan for the first *valid* artifact. Invalid
            // ones fail the run under strict resume; otherwise they are
            // recorded and the run restarts from an earlier stage.
            let inspection = r.inspect();
            let scan = [
                (ResumeLevel::Initial, INITIAL_FILE, &inspection.initial),
                (ResumeLevel::NetMf, NETMF_FILE, &inspection.netmf),
                (ResumeLevel::Sparsifier, SPARSIFIER_FILE, &inspection.sparsifier),
            ];
            let mut level = ResumeLevel::None;
            for (lvl, file, state) in scan {
                match state {
                    ArtifactState::Valid => {
                        level = lvl;
                        break;
                    }
                    ArtifactState::Absent => {}
                    ArtifactState::Invalid(why) => {
                        if opts.strict_resume {
                            return Err(EngineError::Corrupt {
                                file: file.to_string(),
                                detail: why.clone(),
                            });
                        }
                        ctx.note_fallback(format!("skipped invalid artifact {file}: {why}"));
                    }
                }
            }
            if level == ResumeLevel::None {
                if opts.strict_resume {
                    return Err(EngineError::Resume(format!(
                        "no valid stage artifacts found in {}",
                        dir.display()
                    )));
                }
                ctx.note_fallback("no valid stage artifacts; recomputing every stage".to_string());
            }
            (Some(r), Some(meta), level)
        }
        None => (None, None, ResumeLevel::None),
    };

    let store = match &opts.save_artifacts {
        Some(dir) => {
            let same_store = opts.resume_from.as_deref() == Some(dir.as_path());
            Some(if same_store {
                ArtifactStore::attach(dir, fingerprint)
            } else {
                ArtifactStore::create(dir, fingerprint)?
            })
        }
        None => None,
    };

    let samples = match &resume_meta {
        // The sample budget is part of the checkpointed state: downstream
        // stages normalize by it, so a resumed run must reuse it.
        Some(meta) => meta.samples,
        None => src.total_samples(cfg),
    };
    let sampler_cfg = SamplerConfig {
        window: cfg.window,
        samples,
        downsample: cfg.downsample,
        c_factor: cfg.c_factor,
        prob: cfg.prob,
        seed: ctx.stage_seed(StageKind::Sparsify),
    };

    let mut meta = resume_meta.clone().unwrap_or(RunMeta {
        version: META_VERSION,
        seed: cfg.seed,
        fingerprint,
        weighted: src.is_weighted(),
        n,
        samples,
        trials: 0,
        kept: 0,
        distinct_entries: 0,
        aggregator_bytes: 0,
        netmf_nnz: None,
    });
    // Written up front so a crash at *any* later point leaves a store that
    // identifies its run and resumes cleanly (recomputing whatever was not
    // committed yet). Counters are refreshed after stages 1 and 2.
    if let Some(store) = &store {
        store.save_meta(&meta)?;
    }

    // The sharded fast path fuses the stage-2 transform into the shard
    // drain, so it never materializes the untransformed COO. Checkpointing
    // needs that COO on disk (the sparsifier artifact), so runs that save
    // artifacts — and resumed runs, which replay from artifacts — take the
    // classic path. Output bytes are identical either way.
    let use_sharded = level == ResumeLevel::None && store.is_none() && !cfg.global_table;

    // Stage 1: sparsifier construction (or replay from artifacts).
    let (payload, sampler) = ctx.run(StageKind::Sparsify, |scope| -> Result<_, EngineError> {
        faults::check(FP_STAGE_SPARSIFY)?;
        let (payload, stats) = if level >= ResumeLevel::Sparsifier {
            // xtask:panic-ok(invariant: resume_meta was populated by the same level probe that chose this branch)
            let m = resume_meta.as_ref().expect("resume level implies meta");
            scope.counter("resumed", 1);
            let stats = SamplerStats {
                trials: m.trials,
                kept: m.kept,
                distinct_entries: m.distinct_entries,
                aggregator_bytes: m.aggregator_bytes,
            };
            // Only materialize the COO when the next stage will consume it.
            let payload = if level == ResumeLevel::Sparsifier {
                // xtask:panic-ok(invariant: a resume level above None implies the store that produced it is open)
                let r = resume.as_ref().expect("resume level implies store");
                let (_, _, entries) = r.load_sparsifier()?;
                SparsifierPayload::Coo(entries)
            } else {
                SparsifierPayload::None
            };
            (payload, stats)
        } else if let Some(sharded) =
            if use_sharded { src.sparsify_sharded(&sampler_cfg, cfg.shards) } else { None }
        {
            let (table, stats) = sharded?;
            let shard_stats = table.shard_stats();
            scope.counter("shards", shard_stats.len() as u64);
            scope.counter("shard_resizes", table.total_resizes() as u64);
            scope.counter(
                "shard_distinct_max",
                shard_stats.iter().map(|s| s.distinct).max().unwrap_or(0) as u64,
            );
            (SparsifierPayload::Sharded(table), stats)
        } else {
            let (coo, stats) = src.sparsify(&sampler_cfg)?;
            if let Some(store) = &store {
                store.save_sparsifier(n, &coo)?;
            }
            (SparsifierPayload::Coo(coo), stats)
        };
        scope.counter("trials", stats.trials);
        scope.counter("kept", stats.kept);
        scope.counter("distinct_entries", stats.distinct_entries as u64);
        scope.counter("graph_bytes", src.graph_resident_bytes() as u64);
        scope.heap_bytes(stats.aggregator_bytes + src.graph_resident_bytes());
        Ok((payload, stats))
    })?;
    meta.trials = sampler.trials;
    meta.kept = sampler.kept;
    meta.distinct_entries = sampler.distinct_entries;
    meta.aggregator_bytes = sampler.aggregator_bytes;
    if let Some(store) = &store {
        store.save_meta(&meta)?;
    }

    // Stage 2: NetMF conversion (or replay).
    let netmf = ctx.run(StageKind::NetMf, |scope| -> Result<_, EngineError> {
        faults::check(FP_STAGE_NETMF)?;
        let m = if level >= ResumeLevel::NetMf {
            scope.counter("resumed", 1);
            if let Some(nnz) = resume_meta.as_ref().and_then(|m| m.netmf_nnz) {
                scope.counter("nnz", nnz as u64);
            }
            // Only materialize the matrix when the SVD will consume it.
            if level == ResumeLevel::NetMf {
                // xtask:panic-ok(invariant: NetMf resume level implies store)
                let r = resume.as_ref().expect("resume level implies store");
                let m = r.load_netmf()?;
                scope.counter("nnz", m.nnz() as u64);
                scope.heap(&m);
                Some(m)
            } else {
                None
            }
        } else {
            let m = match payload {
                SparsifierPayload::Coo(coo) => src.netmf(coo, samples, cfg.negative),
                SparsifierPayload::Sharded(table) => {
                    src.netmf_sharded(table, samples, cfg.negative)
                }
                SparsifierPayload::None => {
                    // xtask:panic-ok(invariant: the fresh-sparsify branch above always constructs a payload before this match)
                    unreachable!("fresh sparsify stage always yields a payload")
                }
            };
            scope.counter("nnz", m.nnz() as u64);
            scope.heap(&m);
            if let Some(store) = &store {
                store.save_netmf(&m)?;
            }
            Some(m)
        };
        Ok(m)
    })?;
    let netmf_nnz = netmf
        .as_ref()
        .map(CsrMatrix::nnz)
        .or_else(|| resume_meta.as_ref().and_then(|m| m.netmf_nnz))
        .unwrap_or(0);
    meta.netmf_nnz = Some(netmf_nnz);
    if let Some(store) = &store {
        store.save_meta(&meta)?;
    }

    // Stage 3: randomized SVD (or replay).
    let rsvd_seed = ctx.stage_seed(StageKind::Rsvd);
    let initial = ctx.run(StageKind::Rsvd, |scope| -> Result<_, EngineError> {
        faults::check(FP_STAGE_RSVD)?;
        let x = if level >= ResumeLevel::Initial {
            scope.counter("resumed", 1);
            // xtask:panic-ok(invariant: Initial resume level implies store)
            let r = resume.as_ref().expect("resume level implies store");
            r.load_initial()?
        } else {
            // xtask:panic-ok(invariant: non-resumed SVD runs only after the netmf stage stored its matrix)
            let m = netmf.as_ref().expect("svd without netmf matrix");
            let rcfg = RsvdConfig {
                rank: cfg.dim,
                oversampling: cfg.oversampling,
                power_iters: cfg.power_iters,
                seed: rsvd_seed,
            };
            scope.counter(
                "flops",
                lightne_linalg::rsvd::rsvd_flops(m.n_rows(), m.nnz() as u64, &rcfg),
            );
            let svd = randomized_svd(m, &rcfg);
            let x = svd.embedding();
            if let Some(store) = &store {
                store.save_initial(&x)?;
            }
            x
        };
        scope.counter("rank", cfg.dim as u64);
        scope.heap(&x);
        Ok(x)
    })?;

    // Stage 4: spectral propagation (skipped when disabled; the initial
    // embedding is then *moved* into the output, not cloned).
    let (embedding, initial_embedding) = match &cfg.propagation {
        Some(pcfg) => {
            let emb = ctx.run(StageKind::Propagate, |scope| {
                // D̃⁻¹Ã has one entry per directed edge plus a self loop
                // per vertex.
                let da_nnz = 2 * src.num_edges() as u64 + src.num_vertices() as u64;
                scope.counter(
                    "flops",
                    crate::propagation::propagation_flops(
                        src.num_vertices(),
                        da_nnz,
                        initial.cols(),
                        pcfg,
                    ),
                );
                let e = src.propagate(&initial, pcfg);
                scope.heap(&e);
                e
            });
            (emb, Some(initial))
        }
        None => (initial, None),
    };

    let stats = ctx.into_stats();
    let timings = stats.timer();
    Ok(LightNeOutput { embedding, initial_embedding, sampler, netmf_nnz, timings, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_seeds_are_distinct_and_deterministic() {
        let ctx = RunContext::new(42);
        assert_eq!(ctx.stage_seed(StageKind::Sparsify), 42);
        assert_eq!(ctx.stage_seed(StageKind::NetMf), 42);
        assert_eq!(ctx.stage_seed(StageKind::Rsvd), 42 + 0x5EED);
        assert_eq!(ctx.stage_seed(StageKind::Propagate), 42 + 0x9A0F);
    }

    #[test]
    fn run_records_counters_heap_and_order() {
        let mut ctx = RunContext::new(7);
        let out = ctx.run(StageKind::Sparsify, |scope| {
            scope.counter("trials", 100);
            scope.counter("trials", 150); // last write wins
            scope.heap_bytes(64);
            scope.heap_bytes(32); // peak, not last
            "done"
        });
        assert_eq!(out, "done");
        ctx.run_named("extra", |_| ());
        let stats = ctx.into_stats();
        assert_eq!(stats.stages.len(), 2);
        let s = stats.get(StageKind::Sparsify.name()).unwrap();
        assert_eq!(s.counter("trials"), Some(150));
        assert_eq!(s.heap_bytes, 64);
        assert!(stats.get("extra").is_some());
        assert!(stats.threads >= 1);
    }

    #[test]
    fn progress_hook_sees_start_and_finish() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let starts = Arc::new(AtomicU64::new(0));
        let finishes = Arc::new(AtomicU64::new(0));
        let (s, f) = (starts.clone(), finishes.clone());
        let mut ctx = RunContext::with_progress(
            1,
            Box::new(move |ev| match ev {
                StageEvent::Started { .. } => {
                    s.fetch_add(1, Ordering::Relaxed);
                }
                StageEvent::Finished { record } => {
                    assert!(record.secs >= 0.0);
                    f.fetch_add(1, Ordering::Relaxed);
                }
            }),
        );
        ctx.run(StageKind::Rsvd, |_| ());
        ctx.run(StageKind::Propagate, |_| ());
        assert_eq!(starts.load(Ordering::Relaxed), 2);
        assert_eq!(finishes.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn stats_json_shape() {
        let mut ctx = RunContext::new(9);
        ctx.run(StageKind::Sparsify, |scope| {
            scope.counter("trials", 10);
            scope.heap_bytes(1024);
        });
        let stats = ctx.into_stats();
        let json = stats.to_json();
        assert!(json.contains("\"seed\": 9"));
        assert!(json.contains("\"threads\":"));
        assert!(json.contains("\"total_secs\":"));
        assert!(json.contains("\"parallel sparsifier construction\""));
        assert!(json.contains("\"trials\": 10"));
        assert!(json.contains("\"heap_bytes\": 1024"));
    }

    #[test]
    fn gflops_derived_from_flops_counter() {
        let rec = StageRecord {
            name: "x".into(),
            secs: 2.0,
            heap_bytes: 0,
            counters: vec![("flops".into(), 4_000_000_000)],
        };
        assert!((rec.gflops().unwrap() - 2.0).abs() < 1e-12);
        let none = StageRecord { name: "y".into(), secs: 2.0, heap_bytes: 0, counters: vec![] };
        assert!(none.gflops().is_none());

        let stats = RunStats {
            seed: 1,
            threads: 1,
            simd_tier: "scalar".into(),
            simd_features: "sse2".into(),
            pinned: false,
            stages: vec![rec],
            resume_fallbacks: vec![],
        };
        let json = stats.to_json();
        assert!(json.contains("\"gflops\": 2.000"), "{json}");
    }

    #[test]
    fn timer_rebuild_matches_records() {
        let mut ctx = RunContext::new(3);
        ctx.run(StageKind::Sparsify, |_| ());
        ctx.run(StageKind::Rsvd, |_| ());
        let stats = ctx.into_stats();
        let t = stats.timer();
        let names: Vec<_> = t.stages().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, [StageKind::Sparsify.name(), StageKind::Rsvd.name()]);
        assert!((t.total().as_secs_f64() - stats.total_secs()).abs() < 1e-6);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\ny");
    }
}
