//! Loom concurrency models for the folklore edge table (ISSUE 5 tentpole).
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p lightne-hash --release loom_
//! ```
//!
//! Under `--cfg loom` the table's atomics and its resize `RwLock` are the
//! loom shim's model-aware types (see `src/sync_shim.rs`), so every model
//! below runs under the shim's schedule explorer: exhaustively over all
//! interleavings where tractable, otherwise bounded-exhaustive with a
//! CHESS-style preemption bound. Each model encodes an invariant the
//! paper's sparse-parallel-hashing argument (§3.3) relies on:
//!
//! * no lost weight updates when threads accumulate into the *same* key;
//! * no lost or duplicated slots when *distinct* keys race for the same
//!   probe sequence;
//! * stop-the-world resize preserves every entry while inserts race it;
//! * sharded tables resize independently without cross-shard interference.
//!
//! The models use tiny slot capacities (`with_slot_capacity`) so resizes
//! trigger within a handful of inserts and the schedule space stays small.

#![cfg(loom)]

use lightne_hash::{pack_key, ConcurrentEdgeTable, ShardedEdgeTable};
use lightne_utils::rng::mix2;
use loom::model::Builder;
use loom::sync::Arc;
use loom::thread;

/// Initial probe slot for `key` in a table with `cap` slots (must mirror
/// `Slots::add`).
fn probe_slot(u: u32, v: u32, cap: usize) -> usize {
    (mix2(0x9E37_79B9, pack_key(u, v)) as usize) & (cap - 1)
}

/// Two threads accumulate into the same key concurrently: every
/// interleaving must preserve both fixed-point deltas and count the key
/// exactly once. Fully exhaustive (no preemption bound).
#[test]
fn loom_insert_same_key_weight_accumulation() {
    loom::model(|| {
        let t = Arc::new(ConcurrentEdgeTable::with_slot_capacity(8));
        let t2 = Arc::clone(&t);
        let h = thread::spawn(move || {
            t2.add_edge(1, 2, 1.0);
        });
        t.add_edge(1, 2, 1.0);
        h.join().unwrap();
        assert_eq!(t.len(), 1, "same key claimed twice");
        assert_eq!(t.get(1, 2), 2.0, "lost a weight update");
    });
}

/// Two threads insert *distinct* keys whose probe sequences start at the
/// same slot: the CAS loser must continue probing and claim its own slot,
/// never dropping or double-counting either key. Fully exhaustive.
#[test]
fn loom_insert_distinct_key_probe_race() {
    // Find two distinct edges that collide on their initial slot at
    // capacity 4 (deterministic search, done once per execution).
    let (u1, v1) = (0u32, 1u32);
    let home = probe_slot(u1, v1, 4);
    let mut collider = (0u32, 2u32);
    loop {
        if collider != (u1, v1) && probe_slot(collider.0, collider.1, 4) == home {
            break;
        }
        collider.1 += 1;
    }
    let (u2, v2) = collider;

    loom::model(move || {
        let t = Arc::new(ConcurrentEdgeTable::with_slot_capacity(4));
        let t2 = Arc::clone(&t);
        let h = thread::spawn(move || {
            t2.add_edge(u2, v2, 3.0);
        });
        t.add_edge(u1, v1, 1.0);
        h.join().unwrap();
        assert_eq!(t.len(), 2, "probe race lost a distinct key");
        assert_eq!(t.get(u1, v1), 1.0);
        assert_eq!(t.get(u2, v2), 3.0);
    });
}

/// A stop-the-world resize races concurrent inserts: four fresh inserts
/// into a 4-slot table cross the 0.7 load factor, so one thread grows the
/// table while the other may be probing, claiming, or blocked on the
/// lock. Every entry must survive the rehash with its exact fixed-point
/// weight. Bounded-exhaustive (schedules with ≤ 2 preemptions).
#[test]
fn loom_resize_races_concurrent_inserts() {
    Builder::new().preemption_bound(2).check(|| {
        let t = Arc::new(ConcurrentEdgeTable::with_slot_capacity(4));
        let t2 = Arc::clone(&t);
        let h = thread::spawn(move || {
            t2.add_edge(10, 11, 1.0);
            t2.add_edge(12, 13, 2.0);
        });
        t.add_edge(20, 21, 4.0);
        t.add_edge(22, 23, 8.0);
        h.join().unwrap();
        assert_eq!(t.len(), 4);
        assert!(t.capacity() >= 8, "4 fresh inserts at cap 4 must have grown");
        assert_eq!(t.get(10, 11), 1.0);
        assert_eq!(t.get(12, 13), 2.0);
        assert_eq!(t.get(20, 21), 4.0);
        assert_eq!(t.get(22, 23), 8.0);
        let mut coo = t.snapshot();
        coo.sort_unstable_by_key(|&(u, v, _)| pack_key(u, v));
        assert_eq!(
            coo,
            vec![(10, 11, 1.0), (12, 13, 2.0), (20, 21, 4.0), (22, 23, 8.0)],
            "rehash dropped or duplicated an entry"
        );
    });
}

/// The sharded table's independent-resize boundary: one thread drives its
/// shard through a resize while another inserts into a different shard.
/// The resize must stay local — the untouched shard keeps its capacity
/// and resize count — and no entry on either side may be lost.
/// Bounded-exhaustive (≤ 2 preemptions).
#[test]
fn loom_sharded_independent_resize_boundary() {
    Builder::new().preemption_bound(2).check(|| {
        // 8 vertices, 2 shards (rows 0..4 and 4..8), 4 slots per shard.
        let t = Arc::new(ShardedEdgeTable::with_slot_capacity(8, 2, 4));
        let t2 = Arc::clone(&t);
        let h = thread::spawn(move || {
            // Three fresh inserts into shard 0 cross 0.7 * 4: resize.
            t2.add_edge(0, 1, 1.0);
            t2.add_edge(1, 2, 2.0);
            t2.add_edge(2, 3, 4.0);
        });
        t.add_edge(5, 6, 2.5);
        h.join().unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(0, 1), 1.0);
        assert_eq!(t.get(1, 2), 2.0);
        assert_eq!(t.get(2, 3), 4.0);
        assert_eq!(t.get(5, 6), 2.5);
        let stats = t.shard_stats();
        assert_eq!(stats[0].resizes, 1, "shard 0 must have grown exactly once");
        assert_eq!(stats[0].capacity, 8);
        assert_eq!(stats[1].resizes, 0, "resize must not leak into shard 1");
        assert_eq!(stats[1].capacity, 4, "shard 1 capacity must be untouched");
    });
}

/// CAS-loser accumulation path: when the claim CAS fails because another
/// thread just inserted the *same* key, the loser must fall through to
/// `fetch_add` on the winner's slot. Repeated adds from both sides must
/// sum exactly (fixed-point determinism). Bounded-exhaustive (≤ 2
/// preemptions — two adds per thread makes full exploration too wide).
#[test]
fn loom_cas_loser_accumulates_on_winner_slot() {
    Builder::new().preemption_bound(2).check(|| {
        let t = Arc::new(ConcurrentEdgeTable::with_slot_capacity(8));
        let t2 = Arc::clone(&t);
        let h = thread::spawn(move || {
            t2.add_edge(7, 9, 0.25);
            t2.add_edge(7, 9, 0.25);
        });
        t.add_edge(7, 9, 0.5);
        h.join().unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(7, 9), 1.0, "fixed-point deltas must sum exactly");
    });
}
