//! Synchronization-primitive aliases that swap in the `loom` model
//! checker's types under `--cfg loom`.
//!
//! The folklore table's correctness rests on interleaving arguments the
//! compiler cannot check (CAS slot claiming, fixed-point `fetch_add`
//! accumulation, stop-the-world resize under the `RwLock`). Building the
//! crate with `RUSTFLAGS="--cfg loom"` routes every atomic and lock
//! operation through the loom scheduler so the models in
//! `tests/loom_models.rs` can explore the interleavings exhaustively:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p lightne-hash --release loom_
//! ```
//!
//! Production builds (`cfg(not(loom))`) alias the exact same names to the
//! real `std` atomics and `parking_lot::RwLock`, so the hot path is
//! untouched.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
#[cfg(loom)]
pub(crate) use loom::sync::RwLock;

#[cfg(not(loom))]
pub(crate) use parking_lot::RwLock;
#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
