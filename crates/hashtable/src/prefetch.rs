//! Software-prefetch hint for the probe loop — this crate's designated
//! unsafe module under the xtask L1 isolation posture (the only
//! `std::arch` call site outside `lightne_linalg::simd`, see lint L6).
//!
//! The folklore table keeps keys and weights in two separate arrays, so
//! every probe hit costs two dependent cache misses: the key load, then
//! the weight RMW on a different line. Requesting the weight line while
//! the key compare is still in flight overlaps the two misses. Prefetch
//! is purely a scheduling hint — it never faults, never reads
//! architecturally, and cannot change any accumulated value — which is
//! also why this module stays out of the loom models (`cfg(not(loom))`
//! at the call site).

// Designated unsafe module (`#![allow(unsafe_code)]` against the
// crate-wide deny): `#[target_feature]` functions require the call-site
// unsafe below. Duplicated from `lightne_linalg::simd` on purpose — the
// hash table must not depend on the linalg crate for one instruction.
#![allow(unsafe_code)]

#[cfg(target_arch = "x86_64")]
mod imp {
    use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};

    /// PREFETCHT0 is an architectural no-op on invalid addresses — it
    /// never faults and never dereferences `ptr`, so this fn is safe.
    // SAFETY: PREFETCHT0 only hints the cache hierarchy; it performs no
    // architectural load, so any `ptr` value (even dangling) is fine.
    #[target_feature(enable = "sse")]
    fn prefetch_raw(ptr: *const u8) {
        _mm_prefetch::<_MM_HINT_T0>(ptr.cast())
    }

    /// Best-effort read prefetch of the cache line holding `ptr`.
    // PREFETCHT0 performs no architectural dereference (the module doc
    // above), so a safe raw-pointer API is sound here.
    #[allow(clippy::not_unsafe_ptr_arg_deref)]
    #[inline(always)]
    pub fn prefetch_read(ptr: *const u8) {
        // SAFETY: the only feature `prefetch_raw` needs is SSE, which is
        // statically part of the x86_64 baseline every build here
        // targets (the compiler merely insists it be spelled out).
        unsafe { prefetch_raw(ptr) }
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod imp {
    /// No-op on non-x86_64 targets (no portable prefetch hint).
    #[inline(always)]
    pub fn prefetch_read(_ptr: *const u8) {}
}

pub use imp::prefetch_read;
