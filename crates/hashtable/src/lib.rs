//! Sparse parallel hashing for sparsifier construction (Section 4.2).
//!
//! The sampling stage of LightNE generates an enormous stream of weighted
//! edges from all threads at once and must count, per *distinct* edge, the
//! total weight with which it was sampled. The paper evaluates two
//! aggregation strategies and this crate implements both:
//!
//! * [`ConcurrentEdgeTable`] — the winner: a single shared, lock-free,
//!   open-addressing hash table with linear probing. Keys are packed
//!   `(u, v)` pairs; weights are accumulated with atomic adds (`xadd` for
//!   integer counts in the paper; we CAS-add `f32` because downsampling
//!   introduces fractional weights `1/p_e`). Memory is proportional to the
//!   number of *distinct* edges.
//! * [`ThreadLocalAggregator`] — the NetSMF strategy the paper ablates
//!   against: per-thread buffers merged at the end. Simple, but memory
//!   grows with the number of *samples*, which is what limited NetSMF to
//!   8Tm samples on the authors' 1.7 TB machine (Section 5.2.4).
//!
//! Both expose the same drain-to-COO interface so the sparsifier is
//! generic over the aggregator.

#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod concurrent;
pub mod prefetch;
pub mod sharded;
pub(crate) mod sync_shim;
pub mod thread_local;

pub use concurrent::ConcurrentEdgeTable;
pub use sharded::{ShardRun, ShardStats, ShardedEdgeTable};
pub use thread_local::ThreadLocalAggregator;

/// Packs an edge into a table key.
#[inline]
pub fn pack_key(u: u32, v: u32) -> u64 {
    ((u as u64) << 32) | v as u64
}

/// Unpacks a table key into an edge.
#[inline]
pub fn unpack_key(k: u64) -> (u32, u32) {
    ((k >> 32) as u32, k as u32)
}

/// Common interface for edge-weight aggregation strategies, so the
/// sparsifier and the ablation harness can swap them freely.
pub trait EdgeAggregator: Sync {
    /// Adds `weight` to the accumulated weight of edge `(u, v)`.
    fn add(&self, u: u32, v: u32, weight: f32);

    /// Number of distinct edges currently held.
    fn distinct_edges(&self) -> usize;

    /// Heap bytes currently committed by the aggregator (the quantity the
    /// Section 5.2.4 sample-size ablation compares).
    fn memory_bytes(&self) -> usize;

    /// Consumes the aggregator, returning `(u, v, total_weight)` triples
    /// in unspecified order.
    fn into_coo(self) -> Vec<(u32, u32, f32)>
    where
        Self: Sized;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        for &(u, v) in &[(0u32, 0u32), (1, 2), (u32::MAX, 0), (7, u32::MAX)] {
            assert_eq!(unpack_key(pack_key(u, v)), (u, v));
        }
    }
}
