//! The lock-free concurrent edge-weight table (the "folklore" parallel
//! hash table of Maier et al., as used by LightNE).
//!
//! Open addressing with linear probing over a power-of-two slot array.
//! Each slot is an atomic key plus an atomic weight. Claiming a slot is a
//! single CAS on the key; weight accumulation is a single `fetch_add`.
//! There are no deletions (the workload never removes samples), which is
//! what keeps the folklore design correct.
//!
//! **Weights are fixed-point**: each `f32` delta is rounded to a multiple
//! of 2⁻²⁰ and accumulated as an integer `fetch_add` on a `u64`. Integer
//! addition is exactly commutative and associative, so the accumulated
//! weights — and therefore the whole downstream pipeline — are bitwise
//! identical regardless of how sampling threads interleave. (A CAS-loop
//! float add would make the result depend on the add *order*.) With 20
//! fractional bits the quantization error is < 1e-6 per add, far below the
//! sampling estimator's own noise, and 43 integer bits of headroom remain.
//!
//! Resizing: the table starts at a capacity derived from the expected
//! number of distinct edges and doubles under a brief stop-the-world
//! `parking_lot::RwLock` write lock when the load factor crosses 0.7.
//! Inserts hold the shared read lock, so the common path stays concurrent
//! and wait-free with respect to other inserts.

use crate::sync_shim::{AtomicU64, AtomicUsize, Ordering, RwLock};
use crate::{pack_key, unpack_key, EdgeAggregator};
use lightne_utils::rng::mix2;
#[cfg(not(loom))]
use rayon::prelude::*;

/// Fixed-point scale: 20 fractional bits.
const FIXED_ONE: f64 = (1u64 << 20) as f64;

#[inline]
fn to_fixed(w: f32) -> u64 {
    (w as f64 * FIXED_ONE).round() as u64
}

#[inline]
fn from_fixed(raw: u64) -> f32 {
    (raw as f64 / FIXED_ONE) as f32
}

/// Sentinel for an empty slot. `u64::MAX` never collides with a packed
/// edge because vertex ids are `u32` and `(u32::MAX, u32::MAX)` would be a
/// self-loop, which the sampler never emits.
const EMPTY: u64 = u64::MAX;

/// Maximum load factor before the table doubles.
const MAX_LOAD: f64 = 0.7;

struct Slots {
    keys: Vec<AtomicU64>,
    /// Fixed-point accumulated weights (see module docs).
    weights: Vec<AtomicU64>,
    mask: usize,
}

impl Slots {
    fn new(capacity_pow2: usize) -> Self {
        Self {
            keys: (0..capacity_pow2).map(|_| AtomicU64::new(EMPTY)).collect(),
            weights: (0..capacity_pow2).map(|_| AtomicU64::new(0)).collect(),
            mask: capacity_pow2 - 1,
        }
    }

    /// Adds the fixed-point delta `raw` to `key`'s slot. Returns `Ok(true)`
    /// if a fresh slot was claimed, `Ok(false)` if an existing slot was
    /// updated, and `Err(())` if the probe sequence found no free slot
    /// (table critically full).
    fn add(&self, key: u64, raw: u64) -> Result<bool, ()> {
        let mut idx = (mix2(0x9E37_79B9, key) as usize) & self.mask;
        // Bound the probe length so a pathological fill fails loudly into
        // the resize path instead of spinning.
        for _ in 0..=self.mask {
            // Keys and weights live in separate arrays, so a hit takes
            // two dependent misses; request the weight line while the
            // key compare is in flight. A pure scheduling hint (never
            // reads architecturally), so the loom models skip it.
            #[cfg(not(loom))]
            crate::prefetch::prefetch_read((&self.weights[idx] as *const AtomicU64).cast());
            let k = self.keys[idx].load(Ordering::Acquire);
            if k == key {
                // ordering: Relaxed — atomic RMW never loses updates; the
                // accumulated value is only *read* after a join or under
                // the exclusive resize lock, both of which order it.
                self.weights[idx].fetch_add(raw, Ordering::Relaxed);
                return Ok(false);
            }
            if k == EMPTY {
                match self.keys[idx].compare_exchange(
                    EMPTY,
                    key,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        // ordering: Relaxed — see the fetch_add above.
                        self.weights[idx].fetch_add(raw, Ordering::Relaxed);
                        return Ok(true);
                    }
                    Err(actual) if actual == key => {
                        // ordering: Relaxed — see the fetch_add above.
                        self.weights[idx].fetch_add(raw, Ordering::Relaxed);
                        return Ok(false);
                    }
                    Err(_) => { /* someone else claimed it; keep probing */ }
                }
                // Re-examine this slot: it may now hold our key.
                if self.keys[idx].load(Ordering::Acquire) == key {
                    // ordering: Relaxed — see the fetch_add above.
                    self.weights[idx].fetch_add(raw, Ordering::Relaxed);
                    return Ok(false);
                }
            }
            idx = (idx + 1) & self.mask;
        }
        Err(())
    }
}

/// A concurrent, growable edge → weight accumulation table.
///
/// ```
/// use lightne_hash::ConcurrentEdgeTable;
/// let t = ConcurrentEdgeTable::with_expected(16);
/// t.add_edge(1, 2, 0.5);
/// t.add_edge(1, 2, 1.5);
/// assert_eq!(t.get(1, 2), 2.0);
/// assert_eq!(t.len(), 1);
/// ```
pub struct ConcurrentEdgeTable {
    inner: RwLock<Slots>,
    len: AtomicUsize,
    resizes: AtomicUsize,
}

impl ConcurrentEdgeTable {
    /// Creates a table expecting roughly `expected_distinct` distinct
    /// edges. Capacity is the next power of two above
    /// `expected_distinct / MAX_LOAD`, with a small floor.
    pub fn with_expected(expected_distinct: usize) -> Self {
        let target = ((expected_distinct as f64 / MAX_LOAD) as usize).max(1024);
        Self::with_slot_capacity(target.next_power_of_two())
    }

    /// Creates a table with an exact initial slot capacity (must be a
    /// power of two). Test and model-checking hook: the loom models need
    /// tiny tables (4–8 slots) so resizes trigger after a handful of
    /// inserts and the interleaving space stays explorable; production
    /// callers should use [`Self::with_expected`], which keeps the
    /// load-factor floor.
    #[doc(hidden)]
    pub fn with_slot_capacity(cap_pow2: usize) -> Self {
        assert!(cap_pow2.is_power_of_two(), "slot capacity must be a power of two");
        Self {
            inner: RwLock::new(Slots::new(cap_pow2)),
            len: AtomicUsize::new(0),
            resizes: AtomicUsize::new(0),
        }
    }

    /// Current slot capacity.
    pub fn capacity(&self) -> usize {
        self.inner.read().keys.len()
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        // ordering: Relaxed — monotone statistics counter; exact reads
        // happen after a join (sampling finished) which orders them.
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current load factor.
    pub fn load_factor(&self) -> f64 {
        self.len() as f64 / self.capacity() as f64
    }

    /// Number of times the slot array has doubled since construction.
    pub fn resize_count(&self) -> usize {
        // ordering: Relaxed — statistics counter, see `len`.
        self.resizes.load(Ordering::Relaxed)
    }

    fn grow(&self) {
        let mut guard = self.inner.write();
        // Double-check under the write lock: another thread may have grown.
        // ordering: Relaxed — the exclusive write lock excludes every
        // inserter (they hold the read lock across their len update), and
        // lock acquire/release provides the happens-before edge.
        if (self.len.load(Ordering::Relaxed) as f64) < MAX_LOAD * guard.keys.len() as f64 {
            return;
        }
        let new = Slots::new(guard.keys.len() * 2);
        for (k, w) in guard.keys.iter().zip(guard.weights.iter()) {
            // ordering: Relaxed — exclusive access under the write lock.
            let key = k.load(Ordering::Relaxed);
            if key != EMPTY {
                // Transfer the raw fixed-point value: no re-rounding.
                // ordering: Relaxed — exclusive access under the write lock.
                // xtask:panic-ok(invariant: the fresh table was sized to hold every key of the old one)
                new.add(key, w.load(Ordering::Relaxed)).expect("fresh table cannot be full");
            }
        }
        *guard = new;
        // ordering: Relaxed — statistics counter, see `len`.
        self.resizes.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `weight` to edge `(u, v)`.
    pub fn add_edge(&self, u: u32, v: u32, weight: f32) {
        let key = pack_key(u, v);
        let raw = to_fixed(weight);
        loop {
            {
                let guard = self.inner.read();
                match guard.add(key, raw) {
                    Ok(fresh) => {
                        if fresh {
                            // ordering: Relaxed — RMW on a counter; read
                            // exactly only under the write lock or after a
                            // join (see `grow` / `len`). Done while still
                            // holding the read lock so `grow`'s exclusive
                            // section observes a settled count.
                            let new_len = self.len.fetch_add(1, Ordering::Relaxed) + 1;
                            if (new_len as f64) < MAX_LOAD * guard.keys.len() as f64 {
                                return;
                            }
                            // fall through to grow
                        } else {
                            return;
                        }
                    }
                    Err(()) => { /* fall through to grow */ }
                }
            }
            self.grow();
            // A fresh insert that triggered growth has already been
            // recorded; only a failed insert needs retrying.
            if self.contains(u, v) {
                return;
            }
        }
    }

    /// Whether the edge has been recorded.
    pub fn contains(&self, u: u32, v: u32) -> bool {
        let key = pack_key(u, v);
        let guard = self.inner.read();
        let mut idx = (mix2(0x9E37_79B9, key) as usize) & guard.mask;
        for _ in 0..=guard.mask {
            match guard.keys[idx].load(Ordering::Acquire) {
                k if k == key => return true,
                EMPTY => return false,
                _ => idx = (idx + 1) & guard.mask,
            }
        }
        false
    }

    /// Non-destructive snapshot of all entries (used by the dynamic
    /// embedder, which keeps accumulating into the table afterwards).
    /// Taken under the shared read lock; concurrent inserts during the
    /// scan may or may not be included, and an entry whose claiming
    /// insert is still mid-flight can surface with a partial (even zero)
    /// weight — callers that need exact totals must quiesce writers first.
    pub fn snapshot(&self) -> Vec<(u32, u32, f32)> {
        let guard = self.inner.read();
        let scan = |(k, w): (&AtomicU64, &AtomicU64)| {
            // Key load upgraded from Relaxed to Acquire (PR 5 ordering
            // audit): pairs with the AcqRel claim CAS so a concurrent
            // scanner that observes the key also observes every weight
            // update sequenced *before* the claim. The claimer's own
            // first fetch_add follows the CAS, hence the documented
            // mid-flight window above.
            let key = k.load(Ordering::Acquire);
            if key == EMPTY {
                None
            } else {
                let (u, v) = unpack_key(key);
                // ordering: Relaxed — RMW-accumulated value; staleness is
                // accepted per the documented snapshot semantics.
                Some((u, v, from_fixed(w.load(Ordering::Relaxed))))
            }
        };
        #[cfg(not(loom))]
        {
            guard.keys.par_iter().zip(guard.weights.par_iter()).filter_map(scan).collect()
        }
        #[cfg(loom)]
        {
            // Under the model checker only loom-registered threads may
            // touch loom atomics, so the scan stays on the model thread.
            guard.keys.iter().zip(guard.weights.iter()).filter_map(scan).collect()
        }
    }

    /// Reads the accumulated weight of an edge (0.0 if absent).
    pub fn get(&self, u: u32, v: u32) -> f32 {
        let key = pack_key(u, v);
        let guard = self.inner.read();
        let mut idx = (mix2(0x9E37_79B9, key) as usize) & guard.mask;
        for _ in 0..=guard.mask {
            match guard.keys[idx].load(Ordering::Acquire) {
                // ordering: Relaxed — RMW-accumulated weight; exact reads
                // happen after a join, racy reads are documented as
                // point-in-time (see `snapshot`).
                k if k == key => return from_fixed(guard.weights[idx].load(Ordering::Relaxed)),
                EMPTY => return 0.0,
                _ => idx = (idx + 1) & guard.mask,
            }
        }
        0.0
    }
}

impl EdgeAggregator for ConcurrentEdgeTable {
    fn add(&self, u: u32, v: u32, weight: f32) {
        self.add_edge(u, v, weight);
    }

    fn distinct_edges(&self) -> usize {
        self.len()
    }

    fn memory_bytes(&self) -> usize {
        // One u64 key + one u64 fixed-point weight per slot.
        self.capacity() * (2 * std::mem::size_of::<u64>())
    }

    fn into_coo(self) -> Vec<(u32, u32, f32)> {
        let slots = self.inner.into_inner();
        let drain = |(k, w): (&AtomicU64, &AtomicU64)| {
            // ordering: Relaxed — `self` is owned, so every writer has
            // already synchronized (joined or released its guard); these
            // loads cannot race.
            let key = k.load(Ordering::Relaxed);
            if key == EMPTY {
                None
            } else {
                let (u, v) = unpack_key(key);
                // ordering: Relaxed — exclusive ownership, see above.
                Some((u, v, from_fixed(w.load(Ordering::Relaxed))))
            }
        };
        #[cfg(not(loom))]
        {
            slots.keys.par_iter().zip(slots.weights.par_iter()).filter_map(drain).collect()
        }
        #[cfg(loom)]
        {
            // Model-thread-only scan; see `snapshot`.
            slots.keys.iter().zip(slots.weights.iter()).filter_map(drain).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // The multi-threaded stress tests drive the table through rayon,
    // which loom cannot schedule; the loom models in tests/loom_models.rs
    // cover those interleavings under `--cfg loom` instead.
    #[cfg(loom)]
    use rayon::prelude::*;

    #[test]
    fn single_thread_accumulates() {
        let t = ConcurrentEdgeTable::with_expected(16);
        t.add_edge(1, 2, 1.5);
        t.add_edge(1, 2, 2.5);
        t.add_edge(3, 4, 1.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1, 2), 4.0);
        assert_eq!(t.get(3, 4), 1.0);
        assert_eq!(t.get(9, 9), 0.0);
    }

    #[test]
    fn ordered_pairs_are_distinct_keys() {
        let t = ConcurrentEdgeTable::with_expected(16);
        t.add_edge(1, 2, 1.0);
        t.add_edge(2, 1, 3.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1, 2), 1.0);
        assert_eq!(t.get(2, 1), 3.0);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let t = ConcurrentEdgeTable::with_expected(1);
        let initial_cap = t.capacity();
        for i in 0..10_000u32 {
            t.add_edge(i, i + 1, 1.0);
        }
        assert_eq!(t.len(), 10_000);
        assert!(t.capacity() > initial_cap);
        assert!(t.resize_count() > 0);
        for i in 0..10_000u32 {
            assert_eq!(t.get(i, i + 1), 1.0, "lost edge {i} during growth");
        }
    }

    #[test]
    fn concurrent_inserts_exact_counts() {
        let t = ConcurrentEdgeTable::with_expected(4096);
        // 8 logical threads × 50k ops over 1000 distinct edges.
        (0..8).into_par_iter().for_each(|_| {
            for i in 0..50_000u32 {
                let e = i % 1000;
                t.add_edge(e, e + 1, 1.0);
            }
        });
        assert_eq!(t.len(), 1000);
        for e in 0..1000u32 {
            assert_eq!(t.get(e, e + 1), 400.0, "edge {e} lost updates");
        }
    }

    #[test]
    fn concurrent_growth_is_lossless() {
        let t = ConcurrentEdgeTable::with_expected(1);
        (0..8).into_par_iter().for_each(|th: u32| {
            for i in 0..20_000u32 {
                t.add_edge(th, i, 1.0);
            }
        });
        assert_eq!(t.len(), 8 * 20_000);
        let total: f64 = {
            let coo = t.into_coo();
            coo.iter().map(|&(_, _, w)| w as f64).sum()
        };
        assert_eq!(total, 8.0 * 20_000.0);
    }

    #[test]
    fn into_coo_roundtrip() {
        let t = ConcurrentEdgeTable::with_expected(8);
        t.add_edge(5, 6, 2.0);
        t.add_edge(5, 6, 1.0);
        t.add_edge(7, 8, 4.0);
        let mut coo = t.into_coo();
        coo.sort_unstable_by_key(|&(u, v, _)| (u, v));
        assert_eq!(coo, vec![(5, 6, 3.0), (7, 8, 4.0)]);
    }

    #[test]
    fn fractional_weights_accumulate() {
        let t = ConcurrentEdgeTable::with_expected(8);
        for _ in 0..1000 {
            t.add_edge(0, 1, 0.25);
        }
        assert_eq!(t.get(0, 1), 250.0);
    }

    #[test]
    fn memory_reporting_scales_with_capacity() {
        let t = ConcurrentEdgeTable::with_expected(1_000_000);
        let m = t.memory_bytes();
        assert!(m >= 1_000_000 * 12, "memory {m} too small");
    }
}
