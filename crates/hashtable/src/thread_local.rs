//! Per-thread buffer aggregation — the NetSMF strategy (ablated in
//! Section 5.2.4).
//!
//! NetSMF keeps a thread-local sparsifier per worker and merges them after
//! sampling. The crucial difference from the shared hash table is the
//! memory law: buffers grow with the number of *samples drawn*, not the
//! number of *distinct edges*, which is why NetSMF ran out of 1.7 TB at
//! 8Tm samples while LightNE fit 20Tm in 1.5 TB. We reproduce the strategy
//! with one append-only buffer per rayon worker (uncontended mutexes), and
//! merge on drain.

use crate::{pack_key, EdgeAggregator};
use parking_lot::Mutex;
use rayon::prelude::*;

/// Per-thread append-only edge buffers, merged on drain.
pub struct ThreadLocalAggregator {
    shards: Vec<Mutex<Vec<(u32, u32, f32)>>>,
}

impl Default for ThreadLocalAggregator {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadLocalAggregator {
    /// Creates one shard per rayon worker (plus one for non-pool callers).
    pub fn new() -> Self {
        let shards =
            (0..rayon::current_num_threads() + 1).map(|_| Mutex::new(Vec::new())).collect();
        Self { shards }
    }

    #[inline]
    fn shard(&self) -> &Mutex<Vec<(u32, u32, f32)>> {
        let idx = rayon::current_thread_index().map_or(self.shards.len() - 1, |i| i);
        &self.shards[idx]
    }

    /// Total samples buffered (not deduplicated).
    pub fn total_samples(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

impl EdgeAggregator for ThreadLocalAggregator {
    fn add(&self, u: u32, v: u32, weight: f32) {
        self.shard().lock().push((u, v, weight));
    }

    fn distinct_edges(&self) -> usize {
        let mut keys: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().iter().map(|&(u, v, _)| pack_key(u, v)).collect::<Vec<_>>())
            .collect();
        keys.par_sort_unstable();
        keys.dedup();
        keys.len()
    }

    fn memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().capacity() * std::mem::size_of::<(u32, u32, f32)>())
            .sum()
    }

    fn into_coo(self) -> Vec<(u32, u32, f32)> {
        // Merge, then combine duplicate coordinates by summing.
        let mut all: Vec<(u32, u32, f32)> = Vec::with_capacity(self.total_samples());
        for s in self.shards {
            all.append(&mut s.into_inner());
        }
        all.par_sort_unstable_by_key(|&(u, v, _)| pack_key(u, v));
        let mut write = 0usize;
        for read in 0..all.len() {
            if write > 0 && all[write - 1].0 == all[read].0 && all[write - 1].1 == all[read].1 {
                all[write - 1].2 += all[read].2;
            } else {
                all[write] = all[read];
                write += 1;
            }
        }
        all.truncate(write);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConcurrentEdgeTable;

    #[test]
    fn merges_duplicates_on_drain() {
        let agg = ThreadLocalAggregator::new();
        agg.add(1, 2, 1.0);
        agg.add(1, 2, 2.0);
        agg.add(0, 9, 0.5);
        assert_eq!(agg.total_samples(), 3);
        assert_eq!(agg.distinct_edges(), 2);
        let mut coo = agg.into_coo();
        coo.sort_unstable_by_key(|&(u, v, _)| (u, v));
        assert_eq!(coo, vec![(0, 9, 0.5), (1, 2, 3.0)]);
    }

    #[test]
    fn parallel_adds_are_complete() {
        let agg = ThreadLocalAggregator::new();
        (0..4u32).into_par_iter().for_each(|t| {
            for i in 0..10_000u32 {
                agg.add(i % 100, t, 1.0);
            }
        });
        assert_eq!(agg.total_samples(), 40_000);
        let coo = agg.into_coo();
        assert_eq!(coo.len(), 400);
        assert!(coo.iter().all(|&(_, _, w)| w == 100.0));
    }

    #[test]
    fn memory_grows_with_samples_unlike_hash_table() {
        // The ablation's key contrast: same distinct edges, very different
        // memory when samples ≫ distinct edges.
        let buf = ThreadLocalAggregator::new();
        let table = ConcurrentEdgeTable::with_expected(64);
        for _ in 0..100_000 {
            buf.add(1, 2, 1.0);
            table.add(1, 2, 1.0);
        }
        assert!(
            buf.memory_bytes() > 20 * table.memory_bytes(),
            "buffers {} vs table {}",
            buf.memory_bytes(),
            table.memory_bytes()
        );
    }

    #[test]
    fn agrees_with_concurrent_table() {
        use lightne_utils::rng::XorShiftStream;
        let buf = ThreadLocalAggregator::new();
        let table = ConcurrentEdgeTable::with_expected(1024);
        let mut rng = XorShiftStream::new(13, 0);
        for _ in 0..50_000 {
            let u = rng.bounded(64) as u32;
            let v = rng.bounded(64) as u32;
            let w = rng.unit_f32();
            buf.add(u, v, w);
            table.add(u, v, w);
        }
        let mut a = buf.into_coo();
        let mut b = table.into_coo();
        a.sort_unstable_by_key(|&(u, v, _)| (u, v));
        b.sort_unstable_by_key(|&(u, v, _)| (u, v));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.0, x.1), (y.0, y.1));
            assert!(
                (x.2 - y.2).abs() < 1e-2 * x.2.abs().max(1.0),
                "weight mismatch at ({},{}): {} vs {}",
                x.0,
                x.1,
                x.2,
                y.2
            );
        }
    }
}
