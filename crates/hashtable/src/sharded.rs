//! Source-vertex-range sharded edge aggregation.
//!
//! A [`ShardedEdgeTable`] splits the vertex id space `[0, n)` into `N`
//! contiguous ranges and gives each range its own folklore
//! [`ConcurrentEdgeTable`]. Two properties follow:
//!
//! * **Independent resizing.** A shard that crosses its load factor
//!   doubles under its *own* `RwLock`; samplers writing to the other
//!   `N − 1` shards never observe the stall. The single global table's
//!   stop-the-world resize is the main scaling cliff this removes.
//! * **Sorted drain without a global sort.** Shard `s` owns the packed
//!   keys `(u, v)` with `u` in its range, and ranges are increasing in
//!   `s`, so sorting each shard's entries by packed key independently and
//!   concatenating in shard order yields the *globally* sorted COO — the
//!   exact order `CsrMatrix::from_coo` produces. Per-shard drains run in
//!   parallel and each feeds a contiguous CSR row block.
//!
//! Determinism: every shard keeps the fixed-point u64 accumulation of the
//! underlying table, so accumulated weights are bitwise independent of the
//! thread interleaving, and the drain order above is independent of the
//! shard count. The sharded path is therefore byte-identical to the
//! single-table path for any `(threads, shards)` combination.

use crate::{pack_key, ConcurrentEdgeTable, EdgeAggregator};
#[cfg(not(loom))]
use rayon::prelude::*;
use std::ops::Range;

/// Per-shard occupancy and resize counters, surfaced into `RunStats`.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Source-vertex range the shard owns.
    pub rows: Range<u32>,
    /// Distinct edges held.
    pub distinct: usize,
    /// Slot capacity.
    pub capacity: usize,
    /// Number of independent doublings this shard performed.
    pub resizes: usize,
}

/// A sorted per-shard drain: the shard's row range plus its entries in
/// packed-key (row-major) order. Concatenating runs in shard order gives
/// the globally sorted COO.
pub type ShardRun = (Range<u32>, Vec<(u32, u32, f32)>);

/// `N` folklore edge tables keyed by source-vertex range.
///
/// ```
/// use lightne_hash::ShardedEdgeTable;
/// let t = ShardedEdgeTable::new(100, 4, 64);
/// t.add_edge(1, 2, 0.5);
/// t.add_edge(1, 2, 1.5);
/// t.add_edge(80, 3, 1.0);
/// assert_eq!(t.get(1, 2), 2.0);
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.num_shards(), 4);
/// ```
pub struct ShardedEdgeTable {
    tables: Vec<ConcurrentEdgeTable>,
    /// Vertices per shard; shard of `u` is `u / span`.
    span: u32,
    n_vertices: usize,
}

impl ShardedEdgeTable {
    /// Creates a table over vertex ids `[0, n_vertices)` with (up to)
    /// `shards` shards, expecting roughly `expected_distinct` distinct
    /// edges in total. Each shard pre-sizes for its share.
    pub fn new(n_vertices: usize, shards: usize, expected_distinct: usize) -> Self {
        let nshards = Self::shard_ranges(n_vertices, shards).len();
        let per_shard = expected_distinct.div_ceil(nshards);
        Self::with_expectations(n_vertices, shards, &vec![per_shard; nshards])
    }

    /// Like [`Self::new`], but with a per-shard expected-distinct count
    /// (`expectations[s]` sizes shard `s`; its length must match
    /// [`Self::shard_ranges`]). Use when the key distribution over the
    /// vertex ranges is known to be skewed — e.g. sized by degree mass —
    /// so heavy shards start big instead of resizing their way up.
    /// Capacities never influence accumulated values, only resize counts.
    pub fn with_expectations(n_vertices: usize, shards: usize, expectations: &[usize]) -> Self {
        let n = n_vertices.max(1);
        let shards = shards.clamp(1, n);
        let span = n.div_ceil(shards).max(1);
        let nshards = n.div_ceil(span);
        assert_eq!(expectations.len(), nshards, "one expectation per shard");
        let tables = expectations.iter().map(|&e| ConcurrentEdgeTable::with_expected(e)).collect();
        Self { tables, span: span as u32, n_vertices: n }
    }

    /// Like [`Self::new`], but pinning every shard's initial slot
    /// capacity (power of two). Test and model-checking hook: the loom
    /// models need tiny shards so independent resizes trigger within a
    /// handful of inserts. See
    /// [`ConcurrentEdgeTable::with_slot_capacity`].
    #[doc(hidden)]
    pub fn with_slot_capacity(n_vertices: usize, shards: usize, cap_pow2: usize) -> Self {
        let n = n_vertices.max(1);
        let shards = shards.clamp(1, n);
        let span = n.div_ceil(shards).max(1);
        let nshards = n.div_ceil(span);
        let tables =
            (0..nshards).map(|_| ConcurrentEdgeTable::with_slot_capacity(cap_pow2)).collect();
        Self { tables, span: span as u32, n_vertices: n }
    }

    /// The vertex ranges `new` / `with_expectations` would assign to each
    /// shard (the trailing range may be shorter, and rounding can merge
    /// trailing shards — the returned length is the actual shard count).
    pub fn shard_ranges(n_vertices: usize, shards: usize) -> Vec<Range<u32>> {
        let n = n_vertices.max(1);
        let shards = shards.clamp(1, n);
        let span = n.div_ceil(shards).max(1);
        let nshards = n.div_ceil(span);
        (0..nshards)
            .map(|s| {
                let lo = (s * span).min(n) as u32;
                let hi = ((s + 1) * span).min(n) as u32;
                lo..hi
            })
            .collect()
    }

    /// Creates a table with the automatic shard-count heuristic.
    pub fn with_auto(n_vertices: usize, expected_distinct: usize) -> Self {
        Self::new(n_vertices, Self::auto_shards(n_vertices), expected_distinct)
    }

    /// Shard-count heuristic: 4× the worker-thread count (rounded up to a
    /// power of two) so resize stalls stay localized even with skewed
    /// ranges, clamped so every shard still owns ≥ 64 vertices — below
    /// that the per-shard table floors dominate memory.
    pub fn auto_shards(n_vertices: usize) -> usize {
        let by_threads = (rayon::current_num_threads() * 4).next_power_of_two();
        by_threads.clamp(1, (n_vertices / 64).max(1))
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.tables.len()
    }

    /// Shard owning source vertex `u`.
    #[inline]
    pub fn shard_of(&self, u: u32) -> usize {
        ((u / self.span) as usize).min(self.tables.len() - 1)
    }

    /// Source-vertex range owned by shard `s`.
    pub fn shard_rows(&self, s: usize) -> Range<u32> {
        let lo = (s as u32).saturating_mul(self.span);
        let hi = lo.saturating_add(self.span).min(self.n_vertices as u32);
        lo..hi
    }

    /// Adds `weight` to edge `(u, v)`.
    #[inline]
    pub fn add_edge(&self, u: u32, v: u32, weight: f32) {
        self.tables[self.shard_of(u)].add_edge(u, v, weight);
    }

    /// Reads the accumulated weight of an edge (0.0 if absent).
    pub fn get(&self, u: u32, v: u32) -> f32 {
        self.tables[self.shard_of(u)].get(u, v)
    }

    /// Total distinct edges across all shards.
    pub fn len(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Whether no edges have been recorded.
    pub fn is_empty(&self) -> bool {
        self.tables.iter().all(|t| t.is_empty())
    }

    /// Per-shard fill/resize counters.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        (0..self.tables.len())
            .map(|s| ShardStats {
                rows: self.shard_rows(s),
                distinct: self.tables[s].len(),
                capacity: self.tables[s].capacity(),
                resizes: self.tables[s].resize_count(),
            })
            .collect()
    }

    /// Total independent resizes across shards.
    pub fn total_resizes(&self) -> usize {
        self.tables.iter().map(|t| t.resize_count()).sum()
    }

    /// Drains every shard in parallel into sorted runs: shard `s`'s
    /// entries in packed-key order. Concatenating the runs in order gives
    /// exactly the globally sorted COO (see module docs).
    pub fn into_sorted_runs(self) -> Vec<ShardRun> {
        self.drain_map(|_, _, w| Some(w))
    }

    /// Like [`Self::into_sorted_runs`], but applies `f(u, v, w)` to every
    /// entry during the drain, dropping entries mapped to `None`. This is
    /// the hook the sparsifier uses to fuse the NetMF trunc-log transform
    /// into the drain, so the untransformed matrix is never materialized.
    pub fn drain_map<F>(self, f: F) -> Vec<ShardRun>
    where
        F: Fn(u32, u32, f32) -> Option<f32> + Sync,
    {
        let ranges: Vec<Range<u32>> = (0..self.tables.len()).map(|s| self.shard_rows(s)).collect();
        let drain_shard = |(table, rows): (ConcurrentEdgeTable, Range<u32>)| {
            let mut entries = table.into_coo();
            entries.sort_unstable_by_key(|&(u, v, _)| pack_key(u, v));
            let entries: Vec<(u32, u32, f32)> =
                entries.into_iter().filter_map(|(u, v, w)| f(u, v, w).map(|t| (u, v, t))).collect();
            (rows, entries)
        };
        #[cfg(not(loom))]
        {
            self.tables.into_par_iter().zip(ranges).map(drain_shard).collect()
        }
        #[cfg(loom)]
        {
            // Only loom-registered threads may touch loom atomics, so the
            // per-shard drain stays on the model thread.
            self.tables.into_iter().zip(ranges).map(drain_shard).collect()
        }
    }
}

impl EdgeAggregator for ShardedEdgeTable {
    fn add(&self, u: u32, v: u32, weight: f32) {
        self.add_edge(u, v, weight);
    }

    fn distinct_edges(&self) -> usize {
        self.len()
    }

    fn memory_bytes(&self) -> usize {
        self.tables.iter().map(|t| t.memory_bytes()).sum()
    }

    fn into_coo(self) -> Vec<(u32, u32, f32)> {
        self.into_sorted_runs().into_iter().flat_map(|(_, run)| run).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_by_source_range() {
        let t = ShardedEdgeTable::new(100, 4, 16);
        assert_eq!(t.num_shards(), 4);
        assert_eq!(t.shard_rows(0), 0..25);
        assert_eq!(t.shard_rows(3), 75..100);
        assert_eq!(t.shard_of(0), 0);
        assert_eq!(t.shard_of(24), 0);
        assert_eq!(t.shard_of(25), 1);
        assert_eq!(t.shard_of(99), 3);
    }

    #[test]
    fn shard_count_never_exceeds_vertices() {
        let t = ShardedEdgeTable::new(3, 16, 8);
        assert!(t.num_shards() <= 3);
        for u in 0..3u32 {
            t.add_edge(u, (u + 1) % 3, 1.0);
        }
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn accumulates_like_single_table() {
        let t = ShardedEdgeTable::new(1000, 8, 64);
        t.add_edge(1, 2, 1.5);
        t.add_edge(1, 2, 2.5);
        t.add_edge(999, 0, 1.0);
        assert_eq!(t.get(1, 2), 4.0);
        assert_eq!(t.get(999, 0), 1.0);
        assert_eq!(t.get(5, 5), 0.0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn sorted_runs_concatenate_globally_sorted() {
        let t = ShardedEdgeTable::new(64, 4, 16);
        // Insert in scrambled order across shards.
        for &(u, v, w) in
            &[(50u32, 1u32, 1.0f32), (3, 9, 2.0), (3, 1, 0.5), (20, 4, 1.0), (50, 0, 3.0)]
        {
            t.add_edge(u, v, w);
        }
        let runs = t.into_sorted_runs();
        let flat: Vec<(u32, u32, f32)> = runs.iter().flat_map(|(_, r)| r.iter().copied()).collect();
        let mut sorted = flat.clone();
        sorted.sort_unstable_by_key(|&(u, v, _)| pack_key(u, v));
        assert_eq!(flat, sorted);
        for (rows, run) in &runs {
            assert!(run.iter().all(|&(u, _, _)| rows.contains(&u)));
        }
    }

    #[test]
    fn drain_map_filters_and_transforms() {
        let t = ShardedEdgeTable::new(16, 2, 8);
        t.add_edge(1, 2, 2.0);
        t.add_edge(9, 3, 4.0);
        t.add_edge(9, 4, 0.25);
        let runs = t.drain_map(|_, _, w| if w >= 1.0 { Some(w * 2.0) } else { None });
        let flat: Vec<(u32, u32, f32)> = runs.into_iter().flat_map(|(_, r)| r).collect();
        assert_eq!(flat, vec![(1, 2, 4.0), (9, 3, 8.0)]);
    }

    #[test]
    fn matches_concurrent_table_exactly() {
        // Same stream into a global table and a sharded table: the
        // fixed-point accumulation makes the drained sets identical.
        let global = ConcurrentEdgeTable::with_expected(64);
        let sharded = ShardedEdgeTable::new(256, 8, 64);
        let mut state = 0x1234_5678_u64;
        for _ in 0..50_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((state >> 33) % 256) as u32;
            let v = ((state >> 17) % 256) as u32;
            let w = 0.25 + ((state >> 7) % 8) as f32 * 0.125;
            global.add_edge(u, v, w);
            sharded.add_edge(u, v, w);
        }
        let mut a = global.into_coo();
        a.sort_unstable_by_key(|&(u, v, _)| pack_key(u, v));
        let b = sharded.into_coo();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1, y.1);
            assert_eq!(x.2.to_bits(), y.2.to_bits(), "weight mismatch at ({}, {})", x.0, x.1);
        }
    }

    #[test]
    fn stats_report_resizes() {
        let t = ShardedEdgeTable::new(1 << 16, 4, 4);
        for i in 0..20_000u32 {
            t.add_edge(i % (1 << 16), i / 7, 1.0);
        }
        let stats = t.shard_stats();
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|s| s.distinct).sum::<usize>(), t.len());
        assert!(t.total_resizes() > 0, "tiny initial shards must have grown");
    }
}
