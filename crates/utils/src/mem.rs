//! Lightweight memory accounting.
//!
//! Section 5.2.4 of the paper ablates the *affordable sample size*: how many
//! path samples fit in RAM with (a) per-thread NetSMF buffers vs the shared
//! hash table, and (b) downsampling on vs off. To regenerate that analysis
//! without an OS-specific RSS probe we have each large structure report its
//! own heap footprint through [`MemUsage`].

/// Types that can report the bytes of heap memory they own.
pub trait MemUsage {
    /// Heap bytes owned by `self` (excluding `size_of::<Self>()` itself).
    fn heap_bytes(&self) -> usize;
}

impl<T: Copy> MemUsage for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

/// Formats a byte count with binary units, e.g. "1.50 GiB".
pub fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_heap_bytes_uses_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(100);
        v.push(1);
        assert_eq!(v.heap_bytes(), 800);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00 MiB");
        assert!(human_bytes(5 * 1024 * 1024 * 1024).contains("GiB"));
    }
}
