//! Atomic floating-point accumulation.
//!
//! The LightNE sparsifier aggregates edge weights concurrently from many
//! sampling threads (Section 4.2, "Sparse Parallel Hashing"). Integer counts
//! use the hardware `xadd` instruction (`fetch_add`); the downsampled
//! algorithm adds *fractional* weights `1/p_e`, which x86 has no fetch-add
//! for, so we emulate it with a compare-and-swap loop over the bit pattern.
//!
//! Both types use `Ordering::Relaxed` by default: the aggregation is a pure
//! commutative reduction, and the final value is only read after a join
//! (which provides the necessary happens-before edge).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// An `f32` that supports atomic addition via CAS on the bit pattern.
#[derive(Debug, Default)]
pub struct AtomicF32(AtomicU32);

impl AtomicF32 {
    /// Creates a new atomic float with the given initial value.
    #[inline]
    pub fn new(v: f32) -> Self {
        Self(AtomicU32::new(v.to_bits()))
    }

    /// Atomically adds `delta` and returns the *previous* value.
    #[inline]
    pub fn fetch_add(&self, delta: f32) -> f32 {
        // ordering: pure value CAS — the float's bits are the whole
        // payload, nothing else is published through this location, and
        // the retry loop tolerates stale reads by re-reading on failure.
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(cur) + delta).to_bits();
            match self.0.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return f32::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self) -> f32 {
        // ordering: value-only location, see fetch_add.
        f32::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Stores a new value.
    #[inline]
    pub fn store(&self, v: f32) {
        // ordering: value-only location, see fetch_add.
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }
}

/// An `f64` that supports atomic addition via CAS on the bit pattern.
#[derive(Debug, Default)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// Creates a new atomic float with the given initial value.
    #[inline]
    pub fn new(v: f64) -> Self {
        Self(AtomicU64::new(v.to_bits()))
    }

    /// Atomically adds `delta` and returns the *previous* value.
    #[inline]
    pub fn fetch_add(&self, delta: f64) -> f64 {
        // ordering: pure value CAS — the float's bits are the whole
        // payload, nothing else is published through this location, and
        // the retry loop tolerates stale reads by re-reading on failure.
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + delta).to_bits();
            match self.0.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self) -> f64 {
        // ordering: value-only location, see fetch_add.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Stores a new value.
    #[inline]
    pub fn store(&self, v: f64) {
        // ordering: value-only location, see fetch_add.
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }
}

/// A cache-line padded `AtomicU64` counter, for per-thread statistics that
/// would otherwise false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct PaddedCounter(pub AtomicU64);

impl PaddedCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically increments by `n`, returning the previous value.
    #[inline]
    pub fn add(&self, n: u64) -> u64 {
        // ordering: statistics counter; commutative adds, read for
        // reporting after the workers quiesce.
        self.0.fetch_add(n, Ordering::Relaxed)
    }

    /// Reads the counter.
    #[inline]
    pub fn get(&self) -> u64 {
        // ordering: statistics counter, see add.
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_add_sequential() {
        let a = AtomicF32::new(1.5);
        assert_eq!(a.fetch_add(2.5), 1.5);
        assert_eq!(a.load(), 4.0);
    }

    #[test]
    fn f64_add_sequential() {
        let a = AtomicF64::new(0.0);
        for _ in 0..1000 {
            a.fetch_add(0.125);
        }
        assert_eq!(a.load(), 125.0);
    }

    #[test]
    fn f32_store_load_roundtrip() {
        let a = AtomicF32::new(0.0);
        a.store(-3.25);
        assert_eq!(a.load(), -3.25);
    }

    #[test]
    fn f64_concurrent_add_is_exact_for_dyadic_deltas() {
        use std::sync::Arc;
        let a = Arc::new(AtomicF64::new(0.0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        a.fetch_add(0.5);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // 0.5 is exactly representable, so the CAS loop must not lose updates.
        assert_eq!(a.load(), 8.0 * 10_000.0 * 0.5);
    }

    #[test]
    fn padded_counter_concurrent() {
        use std::sync::Arc;
        let c = Arc::new(PaddedCounter::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..25_000 {
                        c.add(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 100_000);
    }
}
