//! Deterministic, splittable pseudo-random number streams.
//!
//! The sampling stage of LightNE draws billions of random numbers from many
//! threads at once. We use Xoshiro256++ state seeded through SplitMix64:
//! each logical unit of work (an edge, a block of vertices) derives its own
//! statistically independent stream from `(seed, stream_id)`, so results are
//! reproducible regardless of thread scheduling — a property the benchmark
//! harness relies on.

/// SplitMix64 step: the standard 64-bit finalizer used to seed other PRNGs
/// and as a cheap hash.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a `(seed, stream)` pair to a well-mixed 64-bit value.
#[inline]
pub fn mix2(seed: u64, stream: u64) -> u64 {
    let mut s = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

/// A small, fast Xoshiro256++ PRNG.
///
/// Not cryptographically secure; passes BigCrush per its authors. One
/// instance per work item, never shared across threads.
#[derive(Debug, Clone)]
pub struct XorShiftStream {
    s: [u64; 4],
    /// Cached spare Gaussian variate from the polar method.
    spare: Option<f64>,
}

impl XorShiftStream {
    /// Creates a stream from a global seed and a per-work-item stream id.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut sm = seed ^ stream.wrapping_mul(0xD2B7_4407_B1CE_6E93);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // Xoshiro must not start at the all-zero state.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s, spare: None }
    }

    /// Next raw 64-bit value (Xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// (unbiased enough for sampling purposes; bound must be non-zero).
    #[inline]
    pub fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn bounded_usize(&mut self, bound: usize) -> usize {
        self.bounded(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`, 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Standard normal variate via the Marsaglia polar method.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        loop {
            let u = 2.0 * self.unit_f64() - 1.0;
            let v = 2.0 * self.unit_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor;
            }
        }
    }
}

/// Types that can derive statistically independent child streams.
pub trait Splittable {
    /// Derives the `i`-th child stream.
    fn split(&self, i: u64) -> XorShiftStream;
}

/// A root seed from which any number of independent streams can be derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedRoot(pub u64);

impl Splittable for SeedRoot {
    fn split(&self, i: u64) -> XorShiftStream {
        XorShiftStream::new(self.0, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed_and_stream() {
        let mut a = XorShiftStream::new(42, 7);
        let mut b = XorShiftStream::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = XorShiftStream::new(42, 1);
        let mut b = XorShiftStream::new(42, 2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be essentially uncorrelated");
    }

    #[test]
    fn bounded_respects_bound() {
        let mut r = XorShiftStream::new(1, 0);
        for _ in 0..10_000 {
            assert!(r.bounded(17) < 17);
        }
    }

    #[test]
    fn unit_f64_in_range_and_roughly_uniform() {
        let mut r = XorShiftStream::new(9, 0);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| {
                let x = r.unit_f64();
                assert!((0.0..1.0).contains(&x));
                x
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = XorShiftStream::new(5, 3);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.gaussian();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "gaussian mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "gaussian var {var}");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = XorShiftStream::new(11, 0);
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "bernoulli rate {p}");
    }

    #[test]
    fn seed_root_split_is_deterministic_and_independent() {
        let root = SeedRoot(99);
        let mut a1 = root.split(5);
        let mut a2 = root.split(5);
        let mut b = root.split(6);
        let mut agree_with_sibling = 0;
        for _ in 0..64 {
            let x = a1.next_u64();
            assert_eq!(x, a2.next_u64());
            if x == b.next_u64() {
                agree_with_sibling += 1;
            }
        }
        assert!(agree_with_sibling < 2);
    }

    #[test]
    fn mix2_changes_with_both_inputs() {
        assert_ne!(mix2(1, 2), mix2(1, 3));
        assert_ne!(mix2(1, 2), mix2(2, 2));
        assert_eq!(mix2(7, 8), mix2(7, 8));
    }

    #[test]
    fn splitmix_known_sequence_is_stable() {
        // Lock in determinism across refactors.
        let mut s = 0u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
        let mut s2 = 0u64;
        assert_eq!(splitmix64(&mut s2), a);
    }
}
