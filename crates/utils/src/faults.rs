//! Deterministic fault injection for crash-consistency testing.
//!
//! The artifact store, the stage engine, and the matrix I/O layer are
//! instrumented with *named fail points*. A fail point does nothing until a
//! test (or the `--fail-point` CLI flag / `LIGHTNE_FAIL_POINTS` env var)
//! **arms** it with a [`FaultAction`]:
//!
//! * `io-error` — the instrumented operation returns an injected
//!   [`std::io::Error`] (propagated as the caller's typed error);
//! * `truncate:N` — the bytes about to be written are cut to `N` bytes,
//!   *after* their checksum was recorded, simulating a torn write that the
//!   storage layer acknowledged (e.g. power loss with a lying page cache);
//! * `bitflip:SEED` — one bit of the outgoing bytes is flipped at a
//!   position derived deterministically from `SEED`, simulating silent
//!   storage corruption;
//! * `panic` — the process panics at the fail point, simulating a crash.
//!
//! Everything is deterministic: no clocks, no OS randomness — a seed
//! selects the flipped bit, so a failing case replays exactly.
//!
//! The whole subsystem is compiled away unless the `failpoints` feature is
//! enabled: with the feature off, [`check`] and [`mangle`] are inlined
//! no-ops and release binaries pay zero cost. The workspace enables the
//! feature for test builds only (via dev-dependency feature unification),
//! so `cargo test` exercises the fault paths while `cargo build --release`
//! does not carry them.

/// What an armed fail point does when execution reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Return an injected I/O error from the instrumented operation.
    IoError,
    /// Truncate outgoing bytes to this length (only affects write points
    /// that go through [`mangle`]; a no-op at read/boundary points).
    Truncate(usize),
    /// Flip one bit of the outgoing bytes at a seed-derived position
    /// (write points only, like [`FaultAction::Truncate`]).
    BitFlip(u64),
    /// Panic at the fail point (simulated crash).
    Panic,
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultAction::IoError => write!(f, "io-error"),
            FaultAction::Truncate(n) => write!(f, "truncate:{n}"),
            FaultAction::BitFlip(s) => write!(f, "bitflip:{s}"),
            FaultAction::Panic => write!(f, "panic"),
        }
    }
}

/// Parses one action spec: `io-error`, `truncate:N`, `bitflip:SEED`, or
/// `panic`.
pub fn parse_action(s: &str) -> Result<FaultAction, String> {
    let s = s.trim();
    if let Some(n) = s.strip_prefix("truncate:") {
        return n
            .parse()
            .map(FaultAction::Truncate)
            .map_err(|e| format!("bad truncate length {n:?}: {e}"));
    }
    if let Some(seed) = s.strip_prefix("bitflip:") {
        return seed
            .parse()
            .map(FaultAction::BitFlip)
            .map_err(|e| format!("bad bitflip seed {seed:?}: {e}"));
    }
    match s {
        "io-error" => Ok(FaultAction::IoError),
        "panic" => Ok(FaultAction::Panic),
        other => Err(format!(
            "unknown fault action {other:?} (expected io-error | truncate:N | bitflip:SEED | panic)"
        )),
    }
}

/// Environment variable read by [`arm_from_env`]:
/// `point=action[;point=action...]`.
pub const ENV_VAR: &str = "LIGHTNE_FAIL_POINTS";

#[cfg(feature = "failpoints")]
mod imp {
    use super::{parse_action, FaultAction};
    use std::collections::BTreeMap;
    use std::io;
    use std::sync::{Mutex, OnceLock};

    #[derive(Default)]
    struct Registry {
        armed: BTreeMap<String, FaultAction>,
        hits: BTreeMap<String, u64>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
    }

    fn lock() -> std::sync::MutexGuard<'static, Registry> {
        registry().lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether fault injection is compiled into this build.
    pub fn enabled() -> bool {
        true
    }

    /// Arms `point` with `action`; replaces any previous arming.
    pub fn arm(point: &str, action: FaultAction) -> Result<(), String> {
        lock().armed.insert(point.to_string(), action);
        Ok(())
    }

    /// Arms a `point=action[;point=action...]` spec (`,` also separates).
    pub fn arm_spec(spec: &str) -> Result<(), String> {
        for part in spec.split([';', ',']).map(str::trim).filter(|p| !p.is_empty()) {
            let (point, action) = part
                .split_once('=')
                .ok_or_else(|| format!("bad fail-point spec {part:?} (expected point=action)"))?;
            arm(point.trim(), parse_action(action)?)?;
        }
        Ok(())
    }

    /// Arms every fail point named in [`super::ENV_VAR`], if set.
    pub fn arm_from_env() -> Result<(), String> {
        match std::env::var(super::ENV_VAR) {
            Ok(spec) => arm_spec(&spec),
            Err(_) => Ok(()),
        }
    }

    /// Disarms one fail point.
    pub fn disarm(point: &str) {
        lock().armed.remove(point);
    }

    /// Disarms every fail point.
    pub fn disarm_all() {
        lock().armed.clear();
    }

    /// Clears the hit counters.
    pub fn reset_hits() {
        lock().hits.clear();
    }

    /// Hit counts per fail point since the last [`reset_hits`], recorded
    /// whether or not the point was armed.
    pub fn hits() -> Vec<(String, u64)> {
        lock().hits.iter().map(|(k, &v)| (k.clone(), v)).collect()
    }

    fn record_and_get(point: &str) -> Option<FaultAction> {
        let mut reg = lock();
        *reg.hits.entry(point.to_string()).or_insert(0) += 1;
        reg.armed.get(point).copied()
    }

    fn injected_error(point: &str) -> io::Error {
        io::Error::other(format!("injected fault at {point}"))
    }

    /// Evaluates a fail point with no byte stream attached (reads, stage
    /// boundaries). `Truncate`/`BitFlip` are no-ops here.
    pub fn check(point: &str) -> io::Result<()> {
        match record_and_get(point) {
            Some(FaultAction::IoError) => Err(injected_error(point)),
            // xtask:panic-ok(fault injection: panicking is the feature)
            Some(FaultAction::Panic) => panic!("injected fault panic at {point}"),
            _ => Ok(()),
        }
    }

    /// Evaluates a fail point over bytes about to be written, possibly
    /// corrupting them in place (`Truncate` / `BitFlip`).
    pub fn mangle(point: &str, bytes: &mut Vec<u8>) -> io::Result<()> {
        match record_and_get(point) {
            Some(FaultAction::IoError) => Err(injected_error(point)),
            // xtask:panic-ok(fault injection: panicking is the feature)
            Some(FaultAction::Panic) => panic!("injected fault panic at {point}"),
            Some(FaultAction::Truncate(n)) => {
                bytes.truncate(n);
                Ok(())
            }
            Some(FaultAction::BitFlip(seed)) => {
                if !bytes.is_empty() {
                    let bit = (seed as usize) % (bytes.len() * 8);
                    bytes[bit / 8] ^= 1 << (bit % 8);
                }
                Ok(())
            }
            None => Ok(()),
        }
    }
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    use super::FaultAction;
    use std::io;

    const DISABLED: &str =
        "fail points are not compiled into this build (enable the `failpoints` feature)";

    /// Whether fault injection is compiled into this build.
    pub fn enabled() -> bool {
        false
    }

    /// Arming always fails: fail points are compiled out.
    pub fn arm(_point: &str, _action: FaultAction) -> Result<(), String> {
        Err(DISABLED.into())
    }

    /// Arming always fails: fail points are compiled out.
    pub fn arm_spec(_spec: &str) -> Result<(), String> {
        Err(DISABLED.into())
    }

    /// Errors only if the environment actually asks for fail points.
    pub fn arm_from_env() -> Result<(), String> {
        match std::env::var(super::ENV_VAR) {
            Ok(_) => Err(DISABLED.into()),
            Err(_) => Ok(()),
        }
    }

    /// No-op (compiled out).
    pub fn disarm(_point: &str) {}

    /// No-op (compiled out).
    pub fn disarm_all() {}

    /// No-op (compiled out).
    pub fn reset_hits() {}

    /// Always empty (compiled out).
    pub fn hits() -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Zero-cost no-op (compiled out).
    #[inline(always)]
    pub fn check(_point: &str) -> io::Result<()> {
        Ok(())
    }

    /// Zero-cost no-op (compiled out).
    #[inline(always)]
    pub fn mangle(_point: &str, _bytes: &mut Vec<u8>) -> io::Result<()> {
        Ok(())
    }
}

pub use imp::{
    arm, arm_from_env, arm_spec, check, disarm, disarm_all, enabled, hits, mangle, reset_hits,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_parsing() {
        assert_eq!(parse_action("io-error").unwrap(), FaultAction::IoError);
        assert_eq!(parse_action("truncate:16").unwrap(), FaultAction::Truncate(16));
        assert_eq!(parse_action("bitflip:77").unwrap(), FaultAction::BitFlip(77));
        assert_eq!(parse_action("panic").unwrap(), FaultAction::Panic);
        assert!(parse_action("explode").is_err());
        assert!(parse_action("truncate:x").is_err());
    }

    #[test]
    fn action_display_roundtrips_through_parse() {
        for a in [
            FaultAction::IoError,
            FaultAction::Truncate(3),
            FaultAction::BitFlip(9),
            FaultAction::Panic,
        ] {
            assert_eq!(parse_action(&a.to_string()).unwrap(), a);
        }
    }

    #[cfg(feature = "failpoints")]
    mod enabled {
        use super::super::*;

        // All tests below share the process-global registry; serialize them.
        fn guard() -> std::sync::MutexGuard<'static, ()> {
            static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
            LOCK.lock().unwrap_or_else(|e| e.into_inner())
        }

        #[test]
        fn armed_io_error_and_disarm() {
            let _g = guard();
            disarm_all();
            assert!(check("t.point").is_ok());
            arm("t.point", FaultAction::IoError).unwrap();
            let err = check("t.point").unwrap_err();
            assert!(err.to_string().contains("injected fault at t.point"));
            disarm("t.point");
            assert!(check("t.point").is_ok());
        }

        #[test]
        fn mangle_truncates_and_flips_deterministically() {
            let _g = guard();
            disarm_all();
            arm("t.trunc", FaultAction::Truncate(2)).unwrap();
            let mut b = vec![1u8, 2, 3, 4];
            mangle("t.trunc", &mut b).unwrap();
            assert_eq!(b, [1, 2]);

            arm("t.flip", FaultAction::BitFlip(11)).unwrap();
            let mut x = vec![0u8; 4];
            let mut y = vec![0u8; 4];
            mangle("t.flip", &mut x).unwrap();
            mangle("t.flip", &mut y).unwrap();
            assert_eq!(x, y, "bit flip must be deterministic");
            assert_eq!(x.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
            disarm_all();
        }

        #[test]
        fn spec_parsing_arms_multiple_points() {
            let _g = guard();
            disarm_all();
            arm_spec("a.one=io-error; b.two=truncate:8").unwrap();
            assert!(check("a.one").is_err());
            let mut b = vec![0u8; 16];
            mangle("b.two", &mut b).unwrap();
            assert_eq!(b.len(), 8);
            assert!(arm_spec("garbage").is_err());
            disarm_all();
        }

        #[test]
        fn hits_are_recorded_even_when_disarmed() {
            let _g = guard();
            disarm_all();
            reset_hits();
            check("t.hit").unwrap();
            check("t.hit").unwrap();
            let hits = hits();
            let n = hits.iter().find(|(p, _)| p == "t.hit").map(|&(_, n)| n);
            assert_eq!(n, Some(2));
            reset_hits();
        }

        #[test]
        #[should_panic(expected = "injected fault panic at t.panic")]
        fn panic_action_panics() {
            // No guard: arming is scoped to a unique name, and the panic
            // would poison a held guard for the other tests.
            arm("t.panic", FaultAction::Panic).unwrap();
            let _ = check("t.panic");
        }
    }
}
