//! Content checksums for artifact integrity (FNV-1a, 64-bit).
//!
//! The artifact store records an FNV-1a digest of every file it writes and
//! refuses to load bytes that no longer match. FNV-1a is not cryptographic,
//! but it detects every *single-byte substitution* deterministically: each
//! step `h ← (h ⊕ b) · p` is a bijection of the 64-bit state for fixed
//! `(b, p)` (the prime is odd, hence invertible mod 2^64), so two inputs
//! of equal length that differ in any byte keep differing through every
//! subsequent step. Length changes are caught by the recorded size.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Computes the FNV-1a 64-bit digest of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values of the standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn any_single_byte_substitution_changes_the_digest() {
        let base = b"version 2\nseed 7\nsamples 120000\n".to_vec();
        let want = fnv1a64(&base);
        for i in 0..base.len() {
            for delta in [0x01u8, 0x20, 0x80, 0xff] {
                let mut tampered = base.clone();
                tampered[i] ^= delta;
                assert_ne!(fnv1a64(&tampered), want, "undetected flip at byte {i}");
            }
        }
    }

    #[test]
    fn truncation_changes_digest_or_length() {
        let base = b"0 1 2.5\n3 2 0.125\n".to_vec();
        let want = (base.len(), fnv1a64(&base));
        for cut in 0..base.len() {
            let t = &base[..cut];
            assert_ne!((t.len(), fnv1a64(t)), want);
        }
    }
}
