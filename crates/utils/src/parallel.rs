//! Bulk-parallel primitives in the style of GBBS/Ligra.
//!
//! GBBS exposes `parallel_for`, scans and reductions with automatic
//! granularity control; rayon's work-stealing pool gives us the same
//! scheduling model, and this module adds the handful of patterns the rest
//! of the workspace needs on top of it: chunked index loops, an exclusive
//! parallel prefix sum (the core of CSR construction), and a pack/filter.

use rayon::prelude::*;

/// Number of worker threads in the global rayon pool.
pub fn num_threads() -> usize {
    rayon::current_num_threads()
}

/// Sizes the global rayon pool to `n` worker threads (0 = the default,
/// one per available core) and returns the resulting pool size.
///
/// Call this once, before any parallel stage runs. If the global pool was
/// already built (e.g. by an earlier parallel call), rayon rejects the
/// rebuild; the error is deliberately ignored so late callers degrade to
/// the existing pool instead of aborting the run.
pub fn configure_threads(n: usize) -> usize {
    let _ = rayon::ThreadPoolBuilder::new().num_threads(n).build_global();
    num_threads()
}

/// A reasonable per-task chunk size for a loop of `n` items: large enough to
/// amortize stealing, small enough to load-balance (~8 tasks per thread).
pub fn par_chunk_size(n: usize) -> usize {
    let tasks = num_threads().saturating_mul(8).max(1);
    (n / tasks).max(1024).min(n.max(1))
}

/// Parallel loop over `0..n`, calling `f(i)` for each index.
///
/// `f` must be safe to call concurrently; use this for side-effecting loops
/// over disjoint state (e.g. writing disjoint slices through raw indices).
pub fn par_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync + Send,
{
    if n == 0 {
        return;
    }
    let chunk = par_chunk_size(n);
    (0..n).into_par_iter().with_min_len(chunk.min(1 << 14)).for_each(f);
}

/// Exclusive parallel prefix sum over `u64` values.
///
/// Returns a vector `out` of length `input.len() + 1` with `out[0] == 0` and
/// `out[i] == input[0] + .. + input[i-1]`; `out[n]` is the total. This is the
/// classic two-pass (block-sums then rescan) algorithm used by GBBS for CSR
/// offset construction.
pub fn parallel_prefix_sum(input: &[u64]) -> Vec<u64> {
    let n = input.len();
    let mut out = vec![0u64; n + 1];
    if n == 0 {
        return out;
    }
    let chunk = par_chunk_size(n);
    let nblocks = n.div_ceil(chunk);
    if nblocks <= 1 {
        let mut acc = 0u64;
        for (i, &v) in input.iter().enumerate() {
            out[i] = acc;
            acc += v;
        }
        out[n] = acc;
        return out;
    }

    // Pass 1: per-block sums.
    let block_sums: Vec<u64> = (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let lo = b * chunk;
            let hi = ((b + 1) * chunk).min(n);
            input[lo..hi].iter().sum()
        })
        .collect();

    // Sequential scan over block sums (nblocks is small).
    let mut block_offsets = vec![0u64; nblocks + 1];
    for b in 0..nblocks {
        block_offsets[b + 1] = block_offsets[b] + block_sums[b];
    }
    let total = block_offsets[nblocks];

    // Pass 2: rescan each block with its offset, writing disjoint slices.
    out[..n].par_chunks_mut(chunk).enumerate().for_each(|(b, out_block)| {
        let lo = b * chunk;
        let mut acc = block_offsets[b];
        for (o, &v) in out_block.iter_mut().zip(&input[lo..]) {
            *o = acc;
            acc += v;
        }
    });
    out[n] = total;
    out
}

/// Parallel filter ("pack" in GBBS terminology): returns the elements of
/// `0..n` for which `keep(i)` is true, in increasing order.
pub fn parallel_pack<F>(n: usize, keep: F) -> Vec<usize>
where
    F: Fn(usize) -> bool + Sync + Send,
{
    let chunk = par_chunk_size(n);
    let nblocks = n.div_ceil(chunk).max(1);
    let mut blocks: Vec<Vec<usize>> = (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let lo = b * chunk;
            let hi = ((b + 1) * chunk).min(n);
            (lo..hi).filter(|&i| keep(i)).collect()
        })
        .collect();
    let total: usize = blocks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for b in blocks.iter_mut() {
        out.append(b);
    }
    out
}

/// Block size for deterministic floating-point reductions. Fixed (not
/// derived from the thread count) so the summation bracketing — and hence
/// the rounded result — is identical at any pool size.
const DET_SUM_BLOCK: usize = 1 << 14;

/// Parallel sum reduction of `f(i)` over `0..n`.
///
/// Deterministic: the range is cut into fixed-size blocks, each block is
/// summed sequentially, and the per-block partials are folded in block
/// order. The bracketing is independent of the thread count, so the
/// result is bitwise identical across runs and pool sizes.
pub fn parallel_reduce_sum<F>(n: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync + Send,
{
    let nblocks = n.div_ceil(DET_SUM_BLOCK);
    let partials: Vec<f64> = (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let lo = b * DET_SUM_BLOCK;
            let hi = ((b + 1) * DET_SUM_BLOCK).min(n);
            let mut acc = 0.0;
            for i in lo..hi {
                acc += f(i);
            }
            acc
        })
        .collect();
    partials.iter().sum()
}

/// Parallel maximum of `f(i)` over `0..n`; returns `None` for an empty range.
pub fn parallel_reduce_max<F>(n: usize, f: F) -> Option<u64>
where
    F: Fn(usize) -> u64 + Sync + Send,
{
    (0..n).into_par_iter().map(f).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sum_empty() {
        assert_eq!(parallel_prefix_sum(&[]), vec![0]);
    }

    #[test]
    fn prefix_sum_small() {
        assert_eq!(parallel_prefix_sum(&[3, 1, 4]), vec![0, 3, 4, 8]);
    }

    #[test]
    fn prefix_sum_matches_sequential_large() {
        let input: Vec<u64> = (0..100_000).map(|i| (i * 7 + 3) % 11).collect();
        let got = parallel_prefix_sum(&input);
        let mut acc = 0u64;
        for (i, &v) in input.iter().enumerate() {
            assert_eq!(got[i], acc, "mismatch at {i}");
            acc += v;
        }
        assert_eq!(got[input.len()], acc);
    }

    #[test]
    fn pack_keeps_order() {
        let evens = parallel_pack(10_000, |i| i % 2 == 0);
        assert_eq!(evens.len(), 5_000);
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
        assert!(evens.iter().all(|&i| i % 2 == 0));
    }

    #[test]
    fn reduce_sum_matches() {
        let s = parallel_reduce_sum(1000, |i| i as f64);
        assert_eq!(s, 999.0 * 1000.0 / 2.0);
    }

    #[test]
    fn reduce_sum_bitwise_reproducible() {
        // Irrational-ish terms over multiple blocks: the fixed bracketing
        // must give the identical floating-point result on every call.
        let f = |i: usize| 1.0 / (i as f64 + 0.73);
        let a = parallel_reduce_sum(100_000, f);
        let b = parallel_reduce_sum(100_000, f);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn configure_threads_reports_pool_size() {
        let n = configure_threads(0);
        assert!(n >= 1);
        assert_eq!(n, num_threads());
    }

    #[test]
    fn reduce_max_matches() {
        assert_eq!(parallel_reduce_max(1000, |i| (i as u64 * 37) % 101), Some(100));
        assert_eq!(parallel_reduce_max(0, |i| i as u64), None);
    }

    #[test]
    fn par_for_covers_all_indices() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let hits: Vec<AtomicU64> = (0..5000).map(|_| AtomicU64::new(0)).collect();
        par_for(5000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
