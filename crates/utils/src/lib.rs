//! Shared low-level utilities for the LightNE workspace.
//!
//! This crate hosts the small, dependency-free building blocks every other
//! crate needs:
//!
//! * [`parallel`] — chunked parallel loops, parallel prefix sums and
//!   reductions built on [rayon]. These mirror the bulk-parallel primitives
//!   of GBBS/Ligra that the paper's system layer is built on.
//! * [`atomic`] — atomic floating-point accumulation (the `xadd`-style
//!   aggregation of Section 4.2) and padded counters.
//! * [`rng`] — tiny, deterministic, splittable PRNG streams
//!   (SplitMix64 seeded Xoshiro256++) so that every experiment in the
//!   benchmark harness is reproducible from a single seed.
//! * [`timer`] — wall-clock stage timers used to regenerate the paper's
//!   running-time breakdown (Table 5).
//! * [`mem`] — lightweight memory accounting used by the sample-size
//!   ablation (Section 5.2.4).
//! * [`checksum`] — FNV-1a content digests used by the artifact store to
//!   detect silent checkpoint corruption.
//! * [`faults`] — deterministic named fail points (feature-gated behind
//!   `failpoints`) that the crash-consistency test matrix arms to inject
//!   I/O errors, torn writes, bit flips and crashes at every checkpoint
//!   boundary.
//! * [`affinity`] — opt-in shard→core worker pinning for the
//!   sample→aggregate stage (`--pin-shards`); the crate's sole unsafe
//!   module (one raw `sched_setaffinity` syscall, xtask-L1-isolated).

#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod affinity;
pub mod atomic;
pub mod checksum;
pub mod faults;
pub mod mem;
pub mod parallel;
pub mod rng;
pub mod timer;

pub use atomic::{AtomicF32, AtomicF64};
pub use parallel::{num_threads, par_chunk_size, parallel_prefix_sum};
pub use rng::{Splittable, XorShiftStream};
pub use timer::{Stage, StageTimer, Timer};
