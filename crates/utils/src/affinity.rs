//! Opt-in shard→core affinity pinning for the sample→aggregate stage —
//! this crate's designated unsafe module under the xtask L1 isolation
//! posture (one raw `sched_setaffinity` syscall; no libc is available in
//! this workspace, so the syscall is issued through inline assembly).
//!
//! # Pinning model
//!
//! The sharded aggregation path assigns vertex ranges to shards and
//! shards to rayon workers; with the default free scheduling the OS may
//! migrate a worker between cores mid-stage, dragging each shard's hot
//! probe window out of the old core's private cache. [`set_worker_pinning`]
//! registers a worker-start hook (see `rayon::set_worker_start_hook`)
//! that pins worker `i` to core `i % cores` at every parallel-region
//! entry, so a shard's table lines stay resident in one core's L1/L2 for
//! the whole stage. Pinning is strictly opt-in (`--pin-shards`): on
//! oversubscribed or cgroup-restricted machines a hard pin can *hurt*,
//! and the unpinned default keeps scheduling decisions with the OS.
//! Embedding output is byte-identical either way — pinning changes where
//! work runs, never what is computed (the engine's determinism tests
//! cover it).
//!
//! Off Linux/x86_64 the pin request is a silent no-op that reports
//! `false`, and the hook is simply never registered.

// Designated unsafe module (`#![allow(unsafe_code)]` against the
// crate-wide deny): the raw syscall needs `asm!`.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Whether the pinning hook is currently registered (mirrored into
/// `RunStats` so bench JSONs record the scheduling mode).
static PINNING: AtomicBool = AtomicBool::new(false);

/// Core count snapshot taken when pinning was enabled; the hook maps
/// worker `i` to core `i % NCORES`.
static NCORES: AtomicUsize = AtomicUsize::new(1);

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    /// Bits in the CPU mask passed to the kernel: 16×u64 = 1024 CPUs,
    /// the kernel's own default `CONFIG_NR_CPUS` ceiling.
    const MASK_WORDS: usize = 16;

    /// `sched_setaffinity` on x86_64 Linux.
    const SYS_SCHED_SETAFFINITY: usize = 203;

    /// Issues `sched_setaffinity(0, size, mask)` — pid 0 means the
    /// calling thread. Returns the raw kernel result (0 on success).
    ///
    /// # Safety
    /// `mask` must point to `size` readable bytes. The syscall itself
    /// only ever *reads* the mask and mutates kernel scheduling state
    /// for this thread; it cannot corrupt process memory.
    // SAFETY: contract above — the body's asm! is justified at the site.
    unsafe fn sched_setaffinity_raw(size: usize, mask: *const u64) -> isize {
        let ret: isize;
        // SAFETY: per the function contract, `mask`/`size` describe a
        // valid readable buffer; register constraints follow the x86_64
        // Linux syscall ABI (rax = nr/result, rdi/rsi/rdx = args, rcx
        // and r11 clobbered by `syscall`).
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_SCHED_SETAFFINITY as isize => ret,
                in("rdi") 0usize,
                in("rsi") size,
                in("rdx") mask,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// Pins the calling thread to `core`. Returns `true` on success.
    pub fn pin_current_thread(core: usize) -> bool {
        if core >= MASK_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[core / 64] = 1u64 << (core % 64);
        // SAFETY: `mask` is a live, properly sized local buffer for the
        // whole call.
        let ret = unsafe { sched_setaffinity_raw(MASK_WORDS * 8, mask.as_ptr()) };
        ret == 0
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod imp {
    /// Pinning is unsupported on this target; always reports `false`.
    pub fn pin_current_thread(_core: usize) -> bool {
        false
    }
}

pub use imp::pin_current_thread;

/// The worker-start hook: pin worker `idx` to core `idx % cores`. Kept a
/// plain `fn` so it can be registered through the rayon shim without
/// captured state.
fn pin_hook(idx: usize) {
    let cores = NCORES.load(Ordering::Relaxed).max(1);
    let _ = pin_current_thread(idx % cores);
}

/// Enables or disables shard→core worker pinning process-wide. With
/// `true`, every rayon worker pins itself to core `index % cores` at
/// each parallel-region entry; with `false`, the hook is removed and the
/// OS schedules freely again (threads keep their last mask — the next
/// stage simply stops re-asserting it).
pub fn set_worker_pinning(enabled: bool) {
    if enabled {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        // ordering: advisory config flags read by worker hooks; a stale
        // read only delays pinning by one region, never corrupts data.
        NCORES.store(cores, Ordering::Relaxed);
        rayon::set_worker_start_hook(Some(pin_hook));
    } else {
        rayon::set_worker_start_hook(None);
    }
    // ordering: same advisory-flag argument as NCORES above.
    PINNING.store(enabled, Ordering::Relaxed);
}

/// Whether worker pinning is currently enabled (recorded in `RunStats`).
pub fn pinning_enabled() -> bool {
    // ordering: advisory flag for stats reporting only.
    PINNING.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_to_core_zero_succeeds_on_linux() {
        let ok = pin_current_thread(0);
        if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
            assert!(ok, "pinning to core 0 should always be permitted");
        } else {
            assert!(!ok);
        }
    }

    #[test]
    fn out_of_range_core_is_rejected() {
        assert!(!pin_current_thread(1 << 20));
    }

    #[test]
    fn toggle_updates_state_and_survives_parallel_work() {
        set_worker_pinning(true);
        assert!(pinning_enabled());
        // Drive a parallel region so the hook actually runs on workers.
        use rayon::prelude::*;
        let s: u64 = (0..1000u64).collect::<Vec<_>>().par_iter().map(|&x| x).sum();
        assert_eq!(s, 499_500);
        set_worker_pinning(false);
        assert!(!pinning_enabled());
    }
}
