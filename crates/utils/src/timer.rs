//! Wall-clock timing with named stages.
//!
//! The paper reports a per-stage running-time breakdown (Table 5:
//! sparsifier construction / randomized SVD / spectral propagation). The
//! [`StageTimer`] here is what the pipeline uses to produce the same rows.

use std::fmt;
use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
#[derive(Debug, Clone)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts a new timer.
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as `f64`.
    pub fn secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Restarts the timer and returns the elapsed time up to now.
    pub fn lap(&mut self) -> Duration {
        let e = self.start.elapsed();
        self.start = Instant::now();
        e
    }
}

impl Default for Timer {
    fn default() -> Self {
        Self::start()
    }
}

/// One named, timed stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Human-readable stage name.
    pub name: String,
    /// Wall-clock duration of the stage.
    pub duration: Duration,
}

/// Records a sequence of named stages and renders a breakdown.
#[derive(Debug, Default, Clone)]
pub struct StageTimer {
    stages: Vec<Stage>,
    current: Option<(String, Instant)>,
}

impl StageTimer {
    /// Creates an empty stage timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins a new stage, finishing the previous one if still open.
    pub fn begin(&mut self, name: impl Into<String>) {
        self.finish();
        self.current = Some((name.into(), Instant::now()));
    }

    /// Finishes the currently open stage, if any.
    pub fn finish(&mut self) {
        if let Some((name, started)) = self.current.take() {
            self.stages.push(Stage { name, duration: started.elapsed() });
        }
    }

    /// All stages, in order. A still-open stage is folded in with its
    /// elapsed-so-far duration, so reading mid-run is always safe.
    pub fn stages(&self) -> Vec<Stage> {
        let mut out = self.stages.clone();
        if let Some((name, started)) = &self.current {
            out.push(Stage { name: name.clone(), duration: started.elapsed() });
        }
        out
    }

    /// Appends an already-measured stage (e.g. replayed from a run record).
    pub fn record(&mut self, name: impl Into<String>, duration: Duration) {
        self.finish();
        self.stages.push(Stage { name: name.into(), duration });
    }

    /// Duration of the stage with the given name, if recorded. An
    /// in-flight stage is visible with its elapsed-so-far duration.
    pub fn get(&self, name: &str) -> Option<Duration> {
        if let Some(d) = self.stages.iter().find(|s| s.name == name).map(|s| s.duration) {
            return Some(d);
        }
        match &self.current {
            Some((n, started)) if n == name => Some(started.elapsed()),
            _ => None,
        }
    }

    /// Total time across all stages, including an in-flight one.
    pub fn total(&self) -> Duration {
        self.stages().iter().map(|s| s.duration).sum()
    }
}

impl fmt::Display for StageTimer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in self.stages() {
            writeln!(f, "{:<32} {}", s.name, humanize(s.duration))?;
        }
        write!(f, "{:<32} {}", "total", humanize(self.total()))
    }
}

/// Formats a duration the way the paper reports times ("32.8 min", "1.53 h").
pub fn humanize(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2} s")
    } else if s < 7200.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{:.2} h", s / 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_timer_records_in_order() {
        let mut t = StageTimer::new();
        t.begin("a");
        t.begin("b");
        t.finish();
        let stages = t.stages();
        let names: Vec<_> = stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert!(t.get("a").is_some());
        assert!(t.get("c").is_none());
    }

    #[test]
    fn total_is_sum() {
        let mut t = StageTimer::new();
        t.begin("x");
        std::thread::sleep(Duration::from_millis(5));
        t.finish();
        assert!(t.total() >= Duration::from_millis(5));
        assert_eq!(t.total(), t.stages().iter().map(|s| s.duration).sum());
    }

    #[test]
    fn open_stage_is_visible_while_running() {
        let mut t = StageTimer::new();
        t.begin("done");
        t.finish();
        t.begin("running");
        // Reading with a stage still open must not panic and must fold the
        // in-flight stage in with its elapsed-so-far duration.
        let stages = t.stages();
        let names: Vec<_> = stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["done", "running"]);
        assert!(t.get("running").is_some());
        assert!(t.total() >= t.get("done").unwrap());
        // A later read sees a longer elapsed time for the open stage.
        std::thread::sleep(Duration::from_millis(2));
        assert!(t.get("running").unwrap() >= Duration::from_millis(2));
        // Finishing converts the in-flight stage into a recorded one.
        t.finish();
        assert_eq!(t.stages().len(), 2);
    }

    #[test]
    fn display_with_open_stage_does_not_panic() {
        let mut t = StageTimer::new();
        t.begin("open");
        let rendered = format!("{t}");
        assert!(rendered.contains("open"));
        assert!(rendered.contains("total"));
    }

    #[test]
    fn record_appends_measured_stage() {
        let mut t = StageTimer::new();
        t.begin("live");
        t.record("replayed", Duration::from_millis(250));
        // `record` closes the open stage first, then appends.
        let stages = t.stages();
        let names: Vec<_> = stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["live", "replayed"]);
        assert_eq!(t.get("replayed"), Some(Duration::from_millis(250)));
    }

    #[test]
    fn humanize_bands() {
        assert!(humanize(Duration::from_millis(10)).ends_with("ms"));
        assert!(humanize(Duration::from_secs(30)).ends_with('s'));
        assert!(humanize(Duration::from_secs(600)).ends_with("min"));
        assert!(humanize(Duration::from_secs(8000)).ends_with('h'));
    }

    #[test]
    fn timer_lap_resets() {
        let mut t = Timer::start();
        std::thread::sleep(Duration::from_millis(2));
        let lap = t.lap();
        assert!(lap >= Duration::from_millis(2));
        assert!(t.elapsed() < lap + Duration::from_millis(50));
    }
}
