//! Sparsifier → sparse NetMF matrix.
//!
//! Inverts the estimator of Algorithm 2 (see `construct.rs`): with
//! aggregated weight `w(i,j)` from `M` trials,
//!
//! ```text
//! Σ_{r=1..T} (D⁻¹A)^r_{ij}  ≈  w(i,j) · m · T / (M · d_i)
//! ```
//!
//! so the NetMF matrix entry becomes
//!
//! ```text
//! M_ij = trunc_log( vol(G)/(b·T) · Σ_r (D⁻¹A)^r_{ij} / d_j )
//!      = trunc_log( vol(G)² · w(i,j) / (2 · b · M · d_i · d_j) )
//! ```
//!
//! using `vol(G) = 2m`. Entries whose argument falls below 1 truncate to
//! zero and are pruned, which is what makes the factorized matrix even
//! sparser than the raw sparsifier — the paper notes LightNE-Small's
//! matrix can end up with fewer than `m` non-zeros.

use lightne_graph::GraphOps;
use lightne_linalg::CsrMatrix;
use rayon::prelude::*;

/// Per-entry truncated-log transform, shared by the COO path below and
/// the fused sharded drain (`crate::sharded`). Both paths must apply
/// bit-identical arithmetic — keep this the single definition.
#[inline]
pub(crate) fn trunc_log_entry(factor: f64, di: f64, dj: f64, w: f32) -> Option<f32> {
    if di <= 0.0 || dj <= 0.0 {
        return None;
    }
    let val = (factor * w as f64 / (di * dj)).ln();
    if val > 0.0 {
        Some(val as f32)
    } else {
        None
    }
}

/// The `vol(G)²/(2·b·M)` prefactor of the NetMF inversion.
#[inline]
pub(crate) fn netmf_factor(vol: f64, total_samples: u64, b: f64) -> f64 {
    vol * vol / (2.0 * b * total_samples as f64)
}

/// Converts aggregated sample weights into the truncated-log NetMF matrix.
///
/// * `coo` — `(i, j, w)` triples from [`crate::build_sparsifier`].
/// * `total_samples` — the `M` the sampler was configured with.
/// * `b` — the number of negative samples in the DeepWalk equivalence
///   (the paper uses `b = 1`).
pub fn sparsifier_to_netmf<G: GraphOps>(
    g: &G,
    coo: Vec<(u32, u32, f32)>,
    total_samples: u64,
    b: f64,
) -> CsrMatrix {
    let n = g.num_vertices();
    let degrees: Vec<f64> = (0..n).map(|v| g.degree(v as u32) as f64).collect();
    let factor = netmf_factor(g.volume(), total_samples, b);

    let entries: Vec<(u32, u32, f32)> = coo
        .into_par_iter()
        .filter_map(|(i, j, w)| {
            trunc_log_entry(factor, degrees[i as usize], degrees[j as usize], w)
                .map(|val| (i, j, val))
        })
        .collect();
    CsrMatrix::from_coo(n, n, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_sparsifier, SamplerConfig};
    use crate::downsample::ProbScheme;
    use crate::exact::exact_netmf;
    use lightne_gen::generators::erdos_renyi;

    #[test]
    fn approximates_exact_netmf() {
        // With enough samples the sparse estimate must match the dense
        // NetMF matrix entrywise on a small graph.
        let g = erdos_renyi(50, 300, 17);
        let t = 3;
        let cfg = SamplerConfig {
            window: t,
            samples: 4_000_000,
            downsample: false,
            c_factor: None,
            prob: ProbScheme::Degree,
            seed: 9,
        };
        let (coo, _) = build_sparsifier(&g, &cfg).unwrap();
        let approx = sparsifier_to_netmf(&g, coo, cfg.samples, 1.0);
        let exact = exact_netmf(&g, t, 1.0);
        let mut err_sum = 0.0f64;
        let mut ref_sum = 0.0f64;
        for i in 0..50 {
            for j in 0..50 {
                let e = exact.get(i, j) as f64;
                let a = approx.get(i, j) as f64;
                err_sum += (e - a).abs();
                ref_sum += e;
            }
        }
        let rel = err_sum / ref_sum;
        assert!(rel < 0.05, "relative entrywise error {rel}");
    }

    #[test]
    fn truncation_prunes_nonpositive_entries() {
        let g = erdos_renyi(100, 600, 3);
        let cfg = SamplerConfig {
            window: 2,
            samples: 200_000,
            downsample: true,
            c_factor: None,
            prob: ProbScheme::Degree,
            seed: 2,
        };
        let (coo, _) = build_sparsifier(&g, &cfg).unwrap();
        let raw_len = coo.len();
        let m = sparsifier_to_netmf(&g, coo, cfg.samples, 1.0);
        assert!(m.nnz() <= raw_len);
        // trunc_log keeps only strictly positive values.
        for i in 0..100 {
            let (_, vals) = m.row(i);
            assert!(vals.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn larger_b_shrinks_matrix() {
        // b divides inside the log; larger b → smaller entries → more
        // truncation.
        let g = erdos_renyi(100, 600, 4);
        let cfg = SamplerConfig {
            window: 3,
            samples: 500_000,
            downsample: false,
            c_factor: None,
            prob: ProbScheme::Degree,
            seed: 3,
        };
        let (coo, _) = build_sparsifier(&g, &cfg).unwrap();
        let m1 = sparsifier_to_netmf(&g, coo.clone(), cfg.samples, 1.0);
        let m5 = sparsifier_to_netmf(&g, coo, cfg.samples, 5.0);
        assert!(m5.nnz() <= m1.nnz());
        assert!(m5.sum_values() < m1.sum_values());
    }

    #[test]
    fn result_is_roughly_symmetric() {
        let g = erdos_renyi(80, 500, 5);
        let cfg = SamplerConfig {
            window: 4,
            samples: 1_000_000,
            downsample: false,
            c_factor: None,
            prob: ProbScheme::Degree,
            seed: 6,
        };
        let (coo, _) = build_sparsifier(&g, &cfg).unwrap();
        let m = sparsifier_to_netmf(&g, coo, cfg.samples, 1.0);
        // The weight matrix is exactly symmetric by construction; after the
        // entrywise log the values stay symmetric.
        assert!(m.is_symmetric(1e-4));
    }
}
