//! Exact (dense) NetMF matrix — the ground truth the sampler approximates.
//!
//! Computes `trunc_log( vol(G)/(b·T) · Σ_{r=1..T} (D⁻¹A)^r · D⁻¹ )` by
//! explicit dense matrix powers. O(n³) time and O(n²) memory: only viable
//! for the small benchmark graphs (BlogCatalog-scale), which is exactly
//! the regime where the paper's predecessors ran exact NetMF. Used by the
//! NetMF baseline in `lightne-baselines` and by statistical tests.

use lightne_graph::GraphOps;
use lightne_linalg::{CsrMatrix, DenseMatrix};

/// Dense random-walk matrix `D⁻¹A`.
pub fn transition_matrix<G: GraphOps>(g: &G) -> DenseMatrix {
    let n = g.num_vertices();
    let mut p = DenseMatrix::zeros(n, n);
    for u in 0..n as u32 {
        let du = g.degree(u);
        if du == 0 {
            continue;
        }
        let inv = 1.0 / du as f32;
        g.for_each_neighbor(u, &mut |v| {
            p.set(u as usize, v as usize, inv);
        });
    }
    p
}

/// The exact dense NetMF matrix (Equation 1 of the paper).
pub fn exact_netmf_dense<G: GraphOps>(g: &G, window: usize, b: f64) -> DenseMatrix {
    assert!(window >= 1);
    let n = g.num_vertices();
    let p = transition_matrix(g);
    let mut power = p.clone();
    let mut sum = p.clone();
    for _ in 1..window {
        power = power.matmul(&p);
        sum.axpy(1.0, &power);
    }
    // sum ← vol/(bT) · sum · D⁻¹, then trunc_log.
    let scale = (g.volume() / (b * window as f64)) as f32;
    let inv_deg: Vec<f32> = (0..n)
        .map(|v| {
            let d = g.degree(v as u32);
            if d == 0 {
                0.0
            } else {
                1.0 / d as f32
            }
        })
        .collect();
    sum.scale_columns(&inv_deg);
    sum.scale(scale);
    sum.map_inplace(|x| if x > 1.0 { x.ln() } else { 0.0 });
    sum
}

/// The exact NetMF matrix in sparse form (zeros pruned).
pub fn exact_netmf<G: GraphOps>(g: &G, window: usize, b: f64) -> CsrMatrix {
    let dense = exact_netmf_dense(g, window, b);
    let n = g.num_vertices();
    let mut coo = Vec::new();
    for i in 0..n {
        for (j, &v) in dense.row(i).iter().enumerate() {
            if v > 0.0 {
                coo.push((i as u32, j as u32, v));
            }
        }
    }
    CsrMatrix::from_coo(n, n, coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_gen::generators::{erdos_renyi, watts_strogatz};
    use lightne_graph::GraphBuilder;

    #[test]
    fn transition_matrix_rows_sum_to_one() {
        let g = erdos_renyi(40, 200, 1);
        let p = transition_matrix(&g);
        for i in 0..40 {
            let s: f32 = p.row(i).iter().sum();
            if g.degree(i as u32) > 0 {
                assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
            } else {
                assert_eq!(s, 0.0);
            }
        }
    }

    #[test]
    fn netmf_matrix_nonnegative_and_symmetric() {
        let g = watts_strogatz(60, 3, 0.1, 2);
        let m = exact_netmf_dense(&g, 5, 1.0);
        for i in 0..60 {
            for j in 0..60 {
                assert!(m.get(i, j) >= 0.0);
                // D⁻¹ P^r D⁻¹-style matrices are symmetric for undirected
                // graphs; trunc_log preserves symmetry.
                assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-4, "asymmetry at ({i},{j})");
            }
        }
    }

    #[test]
    fn window_one_matches_line_formula() {
        // For T=1 the matrix is trunc_log(vol/b · A_ij/(d_i d_j)).
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let m = exact_netmf_dense(&g, 1, 1.0);
        let vol = 8.0f32;
        let expected = (vol / (2.0 * 2.0)).ln(); // every vertex has degree 2
        for i in 0..4u32 {
            for &j in g.neighbors(i) {
                assert!((m.get(i as usize, j as usize) - expected).abs() < 1e-5);
            }
            assert_eq!(m.get(i as usize, i as usize), 0.0);
        }
    }

    #[test]
    fn sparse_form_matches_dense() {
        let g = erdos_renyi(50, 250, 3);
        let dense = exact_netmf_dense(&g, 3, 1.0);
        let sparse = exact_netmf(&g, 3, 1.0);
        assert!(sparse.to_dense().max_abs_diff(&dense) < 1e-6);
    }

    #[test]
    fn isolated_vertices_yield_empty_rows() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 2)]);
        let m = exact_netmf(&g, 3, 1.0);
        assert_eq!(m.row(4).0.len(), 0);
    }
}
