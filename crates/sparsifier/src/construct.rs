//! Algorithm 2: downsampled per-edge PathSampling.
//!
//! Instead of drawing `M` (edge, length) pairs uniformly — which requires
//! O(1) access to a random edge and defeats compression — the paper maps
//! over the edges in parallel and gives each edge a Binomial-like trial
//! count `n_e = ⌊M/arcs⌋ + Bernoulli({M/arcs})`, so the expected total is
//! exactly `M` while every trial is generated where the edge already is in
//! memory (cache-friendly, compression-friendly).
//!
//! Every trial flips the downsampling coin (`p_e`), and survivors run
//! Algorithm 1 and deposit weight `1/p_e` at *both* orientations of the
//! resulting endpoint pair in the aggregator (keeping the accumulated
//! matrix symmetric in expectation and in structure).
//!
//! ## The estimator (used by `netmf.rs`)
//!
//! For one trial from the directed arc `(u, v)` with walk length `r`,
//! reversibility of the random walk makes the landing probability of the
//! ordered pair `(i, j)` equal to `d_i (D⁻¹A)^r_{ij} / (2m)`, independent
//! of the split point. Summing over arcs, trials, lengths, and the mirror
//! insertion, the aggregated weight `w(i, j)` satisfies
//!
//! ```text
//! E[w(i,j)] = (M / (m·T)) · d_i · Σ_{r=1..T} (D⁻¹A)^r_{ij}
//! ```
//!
//! which `netmf.rs` inverts to recover the NetMF matrix entry.

use crate::downsample::{default_c, expected_kept_samples, scheme_edge_probability, ProbScheme};
use crate::path_sampling::path_sample;
use lightne_graph::GraphOps;
use lightne_hash::{ConcurrentEdgeTable, EdgeAggregator};
use lightne_utils::rng::XorShiftStream;
use std::sync::atomic::{AtomicU64, Ordering};

/// Typed failure of the sampling stage. The sampler used to `assert!` on
/// these, which tore down the whole process on degenerate inputs that
/// callers (CLI, library embedders) can perfectly well report and survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerError {
    /// The graph has no arcs — there is nothing to sample from.
    EmptyGraph,
    /// `window` was 0; walk lengths are drawn from `[1, T]`.
    ZeroWindow,
}

impl std::fmt::Display for SamplerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplerError::EmptyGraph => write!(f, "graph has no edges"),
            SamplerError::ZeroWindow => write!(f, "window T must be >= 1"),
        }
    }
}

impl std::error::Error for SamplerError {}

/// Configuration of the sampling stage.
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Context window size `T` (walk lengths are uniform in `[1, T]`).
    pub window: usize,
    /// Total expected number of PathSampling trials `M`.
    pub samples: u64,
    /// Whether the degree-based downsampling layer is active.
    pub downsample: bool,
    /// Downsampling constant `C`; `None` means the paper's `log n`.
    pub c_factor: Option<f64>,
    /// Edge-survival probability scheme for the downsampling coin.
    pub prob: ProbScheme,
    /// RNG seed; every arc derives an independent stream from it.
    pub seed: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            window: 10,
            samples: 0,
            downsample: true,
            c_factor: None,
            prob: ProbScheme::Degree,
            seed: 0xFACE,
        }
    }
}

impl SamplerConfig {
    /// The paper's `M = ratio · T · m` convention (e.g. LightNE-Small uses
    /// `0.1·T·m`, LightNE-Large `20·T·m`).
    pub fn with_sample_ratio<G: GraphOps>(mut self, g: &G, ratio: f64) -> Self {
        self.samples = (ratio * self.window as f64 * g.num_edges() as f64).round() as u64;
        self
    }
}

/// Statistics reported by a sampling run (consumed by the Section 5.2.4
/// memory/sample-size ablation).
#[derive(Debug, Clone, Copy, Default)]
pub struct SamplerStats {
    /// Trials actually generated (≈ `config.samples`).
    pub trials: u64,
    /// Trials that survived the downsampling coin.
    pub kept: u64,
    /// Distinct ordered pairs in the aggregator afterwards.
    pub distinct_entries: usize,
    /// Aggregator heap bytes afterwards.
    pub aggregator_bytes: usize,
}

/// Runs Algorithm 2 over `g`, depositing weighted samples into `agg`.
///
/// # Errors
/// [`SamplerError::ZeroWindow`] if `cfg.window == 0`;
/// [`SamplerError::EmptyGraph`] if `g` has no arcs.
pub fn sample_into<G: GraphOps, A: EdgeAggregator>(
    g: &G,
    cfg: &SamplerConfig,
    agg: &A,
) -> Result<SamplerStats, SamplerError> {
    if cfg.window < 1 {
        return Err(SamplerError::ZeroWindow);
    }
    let arcs = g.num_arcs() as u64;
    if arcs == 0 {
        return Err(SamplerError::EmptyGraph);
    }
    let base = cfg.samples / arcs;
    let frac = (cfg.samples % arcs) as f64 / arcs as f64;
    let c = cfg.c_factor.unwrap_or_else(|| default_c(g.num_vertices()));
    let t = cfg.window;

    let trials_ctr = AtomicU64::new(0);
    let kept_ctr = AtomicU64::new(0);

    g.map_edges(|u, v, arc_idx| {
        let mut rng = XorShiftStream::new(cfg.seed, arc_idx);
        let n_e = base + u64::from(rng.bernoulli(frac));
        if n_e == 0 {
            return;
        }
        let p_e = if cfg.downsample { scheme_edge_probability(cfg.prob, g, u, v, c) } else { 1.0 };
        let w = (1.0 / p_e) as f32;
        let mut kept = 0u64;
        for _ in 0..n_e {
            if p_e < 1.0 && !rng.bernoulli(p_e) {
                continue;
            }
            kept += 1;
            let r = 1 + rng.bounded_usize(t);
            let (a, b) = path_sample(g, u, v, r, &mut rng);
            agg.add(a, b, w);
            agg.add(b, a, w);
        }
        // ordering: advisory stats counters; commutative adds, read only
        // after the parallel region joins (join is the synchronisation).
        trials_ctr.fetch_add(n_e, Ordering::Relaxed);
        kept_ctr.fetch_add(kept, Ordering::Relaxed);
    });

    // ordering: single-threaded here, post-join reads of the counters.
    Ok(SamplerStats {
        trials: trials_ctr.load(Ordering::Relaxed),
        kept: kept_ctr.load(Ordering::Relaxed),
        distinct_entries: agg.distinct_edges(),
        aggregator_bytes: agg.memory_bytes(),
    })
}

/// Expected distinct-entry count used to pre-size the aggregation table.
/// Table memory must track *distinct* entries, not kept samples — that is
/// the whole point of the shared hash table (Section 5.2.4). Distinct
/// entries are bounded by both 2× kept samples and the T-hop neighborhood
/// mass, which O(n·C·T²) comfortably over-estimates; the table grows if
/// the workload exceeds the initial guess.
pub(crate) fn distinct_guess<G: GraphOps>(g: &G, cfg: &SamplerConfig) -> usize {
    let c = cfg.c_factor.unwrap_or_else(|| default_c(g.num_vertices()));
    let expected_kept = if cfg.downsample {
        expected_kept_samples(g, cfg.samples, c, cfg.prob)
    } else {
        cfg.samples as f64
    };
    (2.0 * expected_kept)
        .min(g.num_vertices() as f64 * c * (cfg.window * cfg.window) as f64)
        .max(1024.0) as usize
}

/// What a sparsifier build yields: the aggregated `(src, dst, weight)`
/// COO triples together with the run statistics.
pub type SparsifierOutput = Result<(Vec<(u32, u32, f32)>, SamplerStats), SamplerError>;

/// Convenience wrapper: sizes a [`ConcurrentEdgeTable`] from the expected
/// kept-sample count, runs [`sample_into`], and returns the aggregated COO
/// triples together with the run statistics.
///
/// ```
/// use lightne_graph::GraphBuilder;
/// use lightne_sparsifier::{build_sparsifier, SamplerConfig};
/// let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
/// let cfg = SamplerConfig { window: 2, samples: 10_000, ..Default::default() };
/// let (coo, stats) = build_sparsifier(&g, &cfg).unwrap();
/// assert!(!coo.is_empty());
/// assert!(stats.trials >= 9_000 && stats.trials <= 11_000);
/// ```
///
/// # Errors
/// Propagates [`SamplerError`] from [`sample_into`].
pub fn build_sparsifier<G: GraphOps>(g: &G, cfg: &SamplerConfig) -> SparsifierOutput {
    let table = ConcurrentEdgeTable::with_expected(distinct_guess(g, cfg));
    let stats = sample_into(g, cfg, &table)?;
    Ok((table.into_coo(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_gen::generators::{erdos_renyi, watts_strogatz};
    use lightne_graph::{CompressedGraph, Graph};
    use lightne_linalg::DenseMatrix;

    /// Dense Σ_{r=1..T} (D⁻¹A)^r for ground truth.
    fn exact_walk_sum(g: &Graph, t: usize) -> DenseMatrix {
        let n = g.num_vertices();
        let mut p = DenseMatrix::zeros(n, n);
        for u in 0..n as u32 {
            let du = g.degree(u) as f32;
            for &v in g.neighbors(u) {
                p.set(u as usize, v as usize, 1.0 / du);
            }
        }
        let mut power = p.clone();
        let mut sum = p.clone();
        for _ in 1..t {
            power = power.matmul(&p);
            sum.axpy(1.0, &power);
        }
        sum
    }

    /// Aggregates sampled weights into a dense matrix for comparison.
    fn sampled_dense(g: &Graph, cfg: &SamplerConfig) -> (DenseMatrix, SamplerStats) {
        let n = g.num_vertices();
        let (coo, stats) = build_sparsifier(g, cfg).unwrap();
        let mut w = DenseMatrix::zeros(n, n);
        for (u, v, x) in coo {
            w.set(u as usize, v as usize, w.get(u as usize, v as usize) + x);
        }
        (w, stats)
    }

    /// Checks E[w(i,j)] = M/(mT) · d_i · Σ_r P^r_ij within statistical tol.
    fn check_estimator(g: &Graph, cfg: &SamplerConfig, rel_tol: f64) {
        let n = g.num_vertices();
        let m = g.num_edges() as f64;
        let (w, _) = sampled_dense(g, cfg);
        let exact = exact_walk_sum(g, cfg.window);
        let scale = cfg.samples as f64 / (m * cfg.window as f64);
        let mut total_err = 0.0;
        let mut total_ref = 0.0;
        for i in 0..n {
            let di = g.degree(i as u32) as f64;
            for j in 0..n {
                let expect = scale * di * exact.get(i, j) as f64;
                let got = w.get(i, j) as f64;
                total_err += (got - expect).abs();
                total_ref += expect;
            }
        }
        let rel = total_err / total_ref;
        assert!(rel < rel_tol, "aggregate estimator error {rel} (tol {rel_tol})");
    }

    #[test]
    fn estimator_unbiased_no_downsampling() {
        let g = erdos_renyi(60, 400, 11);
        let cfg = SamplerConfig {
            window: 3,
            samples: 3_000_000,
            downsample: false,
            c_factor: None,
            prob: ProbScheme::Degree,
            seed: 1,
        };
        check_estimator(&g, &cfg, 0.03);
    }

    #[test]
    fn estimator_unbiased_with_downsampling() {
        let g = erdos_renyi(60, 400, 13);
        let cfg = SamplerConfig {
            window: 3,
            samples: 3_000_000,
            downsample: true,
            c_factor: Some(0.5), // aggressive, to actually exercise p_e < 1
            prob: ProbScheme::Degree,
            seed: 2,
        };
        check_estimator(&g, &cfg, 0.10);
    }

    #[test]
    fn estimator_unbiased_with_psne_downsampling() {
        // The sharper PSNE bound keeps fewer trials but the 1/p_e
        // reweighting still makes the estimator exact in expectation.
        let g = erdos_renyi(60, 600, 40);
        let cfg = SamplerConfig {
            window: 3,
            samples: 3_000_000,
            downsample: true,
            c_factor: Some(0.5),
            prob: ProbScheme::Psne,
            seed: 2,
        };
        check_estimator(&g, &cfg, 0.10);
    }

    #[test]
    fn psne_scheme_keeps_fewer_samples_on_dense_overlap() {
        // On a clique every edge has cn = n-2 common neighbours, so the
        // PSNE conductance bound 2/(2+cn) is strictly below the degree
        // bound 2/(n-1): with the same seed the PSNE sampler must keep
        // measurably fewer trials. This pins the scheme plumbing end to
        // end — on common-neighbour-poor graphs (cn below the harmonic
        // mean degree) the two schemes coincide and nothing would differ.
        let n = 30u32;
        let edges: Vec<(u32, u32)> = (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v))).collect();
        let g = lightne_graph::GraphBuilder::from_edges(n as usize, &edges);
        let base = SamplerConfig {
            window: 3,
            samples: 400_000,
            downsample: true,
            c_factor: Some(1.0), // keeps both schemes' p_e well below 1
            prob: ProbScheme::Degree,
            seed: 11,
        };
        let (_, s_deg) = build_sparsifier(&g, &base).unwrap();
        let (_, s_psne) =
            build_sparsifier(&g, &SamplerConfig { prob: ProbScheme::Psne, ..base }).unwrap();
        // p_deg = 2/29 per edge, p_psne = 2/30: ~3% fewer kept samples,
        // far outside Bernoulli noise at 400k trials.
        assert!(
            s_psne.kept < s_deg.kept,
            "psne kept {} !< degree kept {}",
            s_psne.kept,
            s_deg.kept
        );
        let ratio = s_psne.kept as f64 / s_deg.kept as f64;
        let expect = (2.0 / 30.0) / (2.0 / 29.0);
        assert!((ratio - expect).abs() < 0.02, "kept ratio {ratio}, expected {expect}");
    }

    #[test]
    fn downsampling_reduces_kept_samples() {
        let g = erdos_renyi(500, 20_000, 3);
        let base = SamplerConfig {
            window: 5,
            samples: 500_000,
            downsample: false,
            c_factor: None,
            prob: ProbScheme::Degree,
            seed: 3,
        };
        let (_, s_off) = build_sparsifier(&g, &base).unwrap();
        let (_, s_on) = build_sparsifier(&g, &SamplerConfig { downsample: true, ..base }).unwrap();
        assert!(s_on.kept < s_off.kept / 2, "kept {} vs {}", s_on.kept, s_off.kept);
        assert!(s_on.distinct_entries < s_off.distinct_entries);
        // Trials are the same in expectation.
        let ratio = s_on.trials as f64 / s_off.trials as f64;
        assert!((ratio - 1.0).abs() < 0.05);
    }

    #[test]
    fn trial_count_concentrates_around_m() {
        let g = erdos_renyi(200, 1_000, 5);
        for &m in &[1_000u64, 33_333, 100_000] {
            let cfg = SamplerConfig {
                window: 4,
                samples: m,
                downsample: false,
                seed: 7,
                ..Default::default()
            };
            let (_, stats) = build_sparsifier(&g, &cfg).unwrap();
            let rel = (stats.trials as f64 - m as f64).abs() / m as f64;
            assert!(rel < 0.1, "M={m}: got {} trials", stats.trials);
        }
    }

    #[test]
    fn sparsifier_is_structurally_symmetric() {
        let g = erdos_renyi(100, 800, 9);
        let cfg = SamplerConfig {
            window: 5,
            samples: 100_000,
            downsample: true,
            c_factor: None,
            prob: ProbScheme::Degree,
            seed: 4,
        };
        let (coo, _) = build_sparsifier(&g, &cfg).unwrap();
        use std::collections::HashMap;
        let map: HashMap<(u32, u32), f32> = coo.iter().map(|&(u, v, w)| ((u, v), w)).collect();
        for &(u, v, w) in &coo {
            let mirror = *map.get(&(v, u)).unwrap_or(&0.0);
            assert!((w - mirror).abs() < 1e-3 * w.abs().max(1.0), "asymmetry at ({u},{v})");
        }
    }

    #[test]
    fn compressed_and_uncompressed_graphs_agree() {
        let g = erdos_renyi(150, 2_000, 21);
        let c = CompressedGraph::from_graph(&g);
        let cfg = SamplerConfig { window: 4, samples: 50_000, seed: 5, ..Default::default() };
        let (mut coo_a, _) = build_sparsifier(&g, &cfg).unwrap();
        let (mut coo_b, _) = build_sparsifier(&c, &cfg).unwrap();
        // Deterministic per-arc streams + identical arc indexing ⇒ the two
        // representations generate the identical sample multiset.
        coo_a.sort_by_key(|e| (e.0, e.1));
        coo_b.sort_by_key(|e| (e.0, e.1));
        assert_eq!(coo_a.len(), coo_b.len());
        for (x, y) in coo_a.iter().zip(&coo_b) {
            assert_eq!((x.0, x.1), (y.0, y.1));
            assert!((x.2 - y.2).abs() < 1e-3 * x.2.abs().max(1.0));
        }
    }

    #[test]
    fn window_one_only_samples_edges() {
        let g = watts_strogatz(64, 2, 0.0, 6);
        let cfg = SamplerConfig {
            window: 1,
            samples: 20_000,
            downsample: false,
            c_factor: None,
            prob: ProbScheme::Degree,
            seed: 8,
        };
        let (coo, _) = build_sparsifier(&g, &cfg).unwrap();
        for (u, v, _) in coo {
            assert!(g.has_edge(u, v), "T=1 sample ({u},{v}) is not an edge");
        }
    }

    #[test]
    fn empty_graph_is_a_typed_error() {
        let g = lightne_graph::GraphBuilder::from_edges(4, &[]);
        let cfg = SamplerConfig { samples: 100, ..Default::default() };
        assert_eq!(build_sparsifier(&g, &cfg).unwrap_err(), super::SamplerError::EmptyGraph);
        let table = ConcurrentEdgeTable::with_expected(16);
        assert_eq!(sample_into(&g, &cfg, &table).unwrap_err(), super::SamplerError::EmptyGraph);
    }

    #[test]
    fn zero_window_is_a_typed_error() {
        let g = lightne_graph::GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        let cfg = SamplerConfig { window: 0, samples: 100, ..Default::default() };
        let err = build_sparsifier(&g, &cfg).unwrap_err();
        assert_eq!(err, super::SamplerError::ZeroWindow);
        assert_eq!(err.to_string(), "window T must be >= 1");
    }
}
