//! NetSMF sparsifier construction with edge downsampling (Sections 3.2
//! and 4.2 of the LightNE paper).
//!
//! The goal of this crate is an `O(n log n)`-sparse, unbiased estimator of
//! the NetMF matrix
//!
//! ```text
//! M = trunc_log( vol(G)/(b·T) · Σ_{r=1..T} (D⁻¹A)^r · D⁻¹ )
//! ```
//!
//! built from random-walk samples instead of dense matrix powers:
//!
//! * [`path_sampling::path_sample`] — **Algorithm 1**: a two-sided random
//!   walk from a given edge, producing one endpoint pair of an `r`-step
//!   path through that edge.
//! * [`downsample`] — the paper's new degree-based edge downsampling:
//!   each trial survives with probability
//!   `p_e = min(1, C·(1/d_u + 1/d_v))`, `C = log n`, and surviving samples
//!   carry weight `1/p_e` (unbiased by Theorem 3.1; a good effective-
//!   resistance proxy by Theorem 3.2). A sharper PSNE-grade bound that
//!   also counts common-neighbour two-hop paths is selectable via
//!   [`ProbScheme`].
//! * [`construct`] — **Algorithm 2**: the per-edge parallel sampling loop
//!   (`G.MapEdges`), generic over the graph representation and the edge
//!   aggregator.
//! * [`netmf`] — converts aggregated sample weights into the sparse
//!   truncated-log NetMF matrix fed to the randomized SVD.
//! * [`exact`] — the dense, exactly-computed NetMF matrix (feasible for
//!   small `n`); used by the NetMF baseline and as the ground truth in
//!   this crate's statistical tests.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod construct;
pub mod downsample;
pub mod exact;
pub mod netmf;
pub mod path_sampling;
pub mod sharded;
pub mod weighted;

pub use construct::{
    build_sparsifier, SamplerConfig, SamplerError, SamplerStats, SparsifierOutput,
};
pub use downsample::ProbScheme;
pub use netmf::sparsifier_to_netmf;
pub use sharded::{
    build_sharded_sparsifier, build_weighted_sharded_sparsifier, resolve_shards, sharded_to_netmf,
    weighted_sharded_to_netmf,
};
